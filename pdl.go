// Package repro is the historical root facade of the parity-declustered
// layout library, a full reproduction of Schwabe & Sutherland, "Improved
// Parity-Declustered Layouts for Disk Arrays" (SPAA 1994 / JCSS 1996).
//
// Deprecated: the supported public API now lives in the repro/pdl package
// tree — see repro/pdl (builder, method registry, Mapper, structured
// errors) and repro/pdl/layout (value types, metrics, data engine, JSON).
// This package remains as thin delegating wrappers for source
// compatibility. Migration:
//
//	repro.Layout(v, k)              ->  pdl.Build(v, k)
//	repro.RingLayout(v, k)          ->  pdl.Build(v, k, pdl.WithMethod("ring"))
//	repro.BalancedLayout(v, k)      ->  pdl.Build(v, k, pdl.WithMethod("balanced-bibd"))
//	repro.HollandGibsonLayout(v, k) ->  pdl.Build(v, k, pdl.WithMethod("holland-gibson"))
//	repro.Report(l)                 ->  pdl.Report(l)
package repro

import (
	"repro/pdl"
	"repro/pdl/layout"
)

// Layout builds a parity-declustered layout for an array of v disks with
// parity stripe size k, choosing the best construction the paper offers.
// The returned string names the method used.
//
// Deprecated: use pdl.Build(v, k); the method tag is Result.Method.
func Layout(v, k int) (*layout.Layout, string, error) {
	res, err := pdl.Build(v, k)
	if err != nil {
		return nil, "", err
	}
	return res.Layout, res.Method, nil
}

// RingLayout builds the Section 3.1 ring-based layout (perfect balance,
// size k(v-1)); v must allow k <= M(v) generators.
//
// Deprecated: use pdl.Build(v, k, pdl.WithMethod("ring")).
func RingLayout(v, k int) (*layout.Layout, error) {
	res, err := pdl.Build(v, k, pdl.WithMethod("ring"))
	if err != nil {
		return nil, err
	}
	return res.Layout, nil
}

// BalancedLayout builds a single-copy layout from the smallest known BIBD
// for (v, k) with network-flow-balanced parity.
//
// Deprecated: use pdl.Build(v, k, pdl.WithMethod("balanced-bibd")).
func BalancedLayout(v, k int) (*layout.Layout, error) {
	res, err := pdl.Build(v, k, pdl.WithMethod("balanced-bibd"))
	if err != nil {
		return nil, err
	}
	return res.Layout, nil
}

// HollandGibsonLayout builds the baseline k-copy rotated-parity layout of
// Holland and Gibson from the smallest known BIBD for (v, k).
//
// Deprecated: use pdl.Build(v, k, pdl.WithMethod("holland-gibson")).
func HollandGibsonLayout(v, k int) (*layout.Layout, error) {
	res, err := pdl.Build(v, k, pdl.WithMethod("holland-gibson"))
	if err != nil {
		return nil, err
	}
	return res.Layout, nil
}

// Report summarizes a layout against the paper's four conditions.
//
// Deprecated: use pdl.Report.
func Report(l *layout.Layout) string { return pdl.Report(l) }
