// Package repro is the public facade of the parity-declustered layout
// library, a full reproduction of Schwabe & Sutherland, "Improved
// Parity-Declustered Layouts for Disk Arrays" (SPAA 1994 / JCSS 1996).
//
// The facade wires together the substrates in internal/:
//
//   - algebra: finite commutative rings with unit (fields GF(p^m), Z_n,
//     cross products) — the raw material of ring-based block designs;
//   - design: BIBDs — ring-based designs (Theorem 1), the k <= M(v)
//     characterization (Theorem 2), redundancy-reduced designs
//     (Theorems 4-6), the size lower bound (Theorem 7), and a catalog of
//     known designs;
//   - layout: parity-declustered data layouts, the four Holland-Gibson
//     conditions, exact balance metrics, address mapping, XOR parity;
//   - core: ring-based layouts, approximately balanced layouts by disk
//     removal (Theorems 8-9) and the stairway transformation
//     (Theorems 10-12), and flow-based optimal parity distribution
//     (Theorems 13-14, Corollaries 15-17);
//   - flow, baseline, workload, disksim, experiments: the supporting
//     machinery and the paper's evaluation.
//
// Quick start:
//
//	l, method, err := repro.Layout(24, 5)   // any v, any reasonable k
//	...
//	fmt.Println(repro.Report(l), method)
package repro

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/design"
	"repro/internal/layout"
)

// Layout builds a parity-declustered layout for an array of v disks with
// parity stripe size k, choosing the best construction the paper offers:
// a ring-based layout when v is a prime power, otherwise a stairway
// transformation from the largest prime-power base, falling back to a
// flow-balanced layout over a catalog BIBD when no stairway base exists
// (e.g. k very close to a non-prime-power v). The returned string names
// the method used.
func Layout(v, k int) (*layout.Layout, string, error) {
	l, method, err := core.LayoutForAnyV(v, k)
	if err == nil {
		return l, method, nil
	}
	if d := design.Known(v, k); d != nil {
		bl, berr := core.BalancedFromDesign(d)
		if berr == nil {
			return bl, "balanced-bibd", nil
		}
	}
	return nil, "", err
}

// RingLayout builds the Section 3.1 ring-based layout (perfect balance,
// size k(v-1)); v must allow k <= M(v) generators (prime-power v allows
// any k <= v).
func RingLayout(v, k int) (*layout.Layout, error) {
	rl, err := core.NewRingLayout(v, k)
	if err != nil {
		return nil, err
	}
	return rl.Layout, nil
}

// BalancedLayout builds a single-copy layout from the smallest known BIBD
// for (v, k) and distributes parity optimally with the Section 4 network
// flow method (parity counts differ by at most one across disks).
func BalancedLayout(v, k int) (*layout.Layout, error) {
	d := design.Known(v, k)
	if d == nil {
		return nil, fmt.Errorf("repro: no known BIBD for v=%d, k=%d", v, k)
	}
	return core.BalancedFromDesign(d)
}

// HollandGibsonLayout builds the baseline k-copy rotated-parity layout of
// Holland and Gibson from the smallest known BIBD for (v, k).
func HollandGibsonLayout(v, k int) (*layout.Layout, error) {
	d := design.Known(v, k)
	if d == nil {
		return nil, fmt.Errorf("repro: no known BIBD for v=%d, k=%d", v, k)
	}
	return layout.FromDesignHG(d)
}

// Report summarizes a layout against the paper's four conditions.
func Report(l *layout.Layout) string {
	var b strings.Builder
	fmt.Fprintf(&b, "disks: %d, size: %d units/disk, stripes: %d\n", l.V, l.Size, len(l.Stripes))
	smin, smax := l.StripeSizes()
	fmt.Fprintf(&b, "stripe sizes: [%d, %d]\n", smin, smax)
	if err := l.Check(); err != nil {
		fmt.Fprintf(&b, "condition 1 (reconstructability): VIOLATED: %v\n", err)
	} else {
		fmt.Fprintf(&b, "condition 1 (reconstructability): ok\n")
	}
	if l.ParityAssigned() {
		omin, omax := l.ParityOverheadRange()
		fmt.Fprintf(&b, "condition 2 (parity overhead): [%v, %v], spread %d\n", omin, omax, l.ParitySpread())
	} else {
		fmt.Fprintf(&b, "condition 2 (parity overhead): parity unassigned\n")
	}
	wmin, wmax := l.ReconstructionWorkloadRange()
	fmt.Fprintf(&b, "condition 3 (reconstruction workload): [%v, %v]\n", wmin, wmax)
	fmt.Fprintf(&b, "condition 4 (mapping): table height %d, feasible (<=%d): %v\n",
		l.Size, layout.FeasibleTableSize, l.Feasible())
	return b.String()
}
