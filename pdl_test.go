package repro

import (
	"strings"
	"testing"

	"repro/pdl/layout"
)

func TestLayoutFacadePrimePower(t *testing.T) {
	l, method, err := Layout(13, 4)
	if err != nil {
		t.Fatal(err)
	}
	if method != "ring" {
		t.Errorf("method %q", method)
	}
	if err := l.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestLayoutFacadeComposite(t *testing.T) {
	l, method, err := Layout(18, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(method, "stairway") {
		t.Errorf("method %q", method)
	}
	if l.V != 18 {
		t.Errorf("v = %d", l.V)
	}
}

func TestLayoutFacadeCatalogFallback(t *testing.T) {
	// v=6, k=6: no stairway base exists (all prime powers < k), but the
	// catalog finds the trivial (6,6,1) design; the facade must fall back.
	l, method, err := Layout(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	if method != "balanced-bibd" {
		t.Errorf("method %q, want balanced-bibd", method)
	}
	if err := l.Check(); err != nil {
		t.Fatal(err)
	}
	if l.ParitySpread() > 1 {
		t.Errorf("spread %d", l.ParitySpread())
	}
}

func TestRingLayoutFacade(t *testing.T) {
	l, err := RingLayout(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if l.Size != 3*8 {
		t.Errorf("size %d", l.Size)
	}
	if _, err := RingLayout(6, 3); err == nil {
		t.Error("M(6)=2 violation accepted")
	}
}

func TestBalancedLayoutFacade(t *testing.T) {
	l, err := BalancedLayout(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if l.ParitySpread() > 1 {
		t.Errorf("spread %d", l.ParitySpread())
	}
	if _, err := BalancedLayout(1, 1); err == nil {
		t.Error("degenerate parameters accepted")
	}
	if _, err := BalancedLayout(5, 9); err == nil {
		t.Error("k > v accepted")
	}
}

func TestHollandGibsonFacade(t *testing.T) {
	l, err := HollandGibsonLayout(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !l.ParityPerfectlyBalanced() {
		t.Error("HG layout not balanced")
	}
}

func TestReportContents(t *testing.T) {
	l, _, err := Layout(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep := Report(l)
	for _, want := range []string{"condition 1", "condition 2", "condition 3", "condition 4", "feasible"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestReportUnassignedParity(t *testing.T) {
	l := &layout.Layout{V: 2, Size: 1, Stripes: []layout.Stripe{
		{Units: []layout.Unit{{Disk: 0, Offset: 0}, {Disk: 1, Offset: 0}}, Parity: -1},
	}}
	rep := Report(l)
	if !strings.Contains(rep, "parity unassigned") {
		t.Errorf("report: %s", rep)
	}
}
