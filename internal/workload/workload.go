// Package workload is a compatibility shim over the public pdl/sim
// workload generators (uniform random, sequential, Zipf-skewed, and
// weighted mixes): the implementations moved to repro/pdl/sim so godoc
// renders them on the supported surface. Internal callers keep this
// import path; new code should use repro/pdl/sim directly.
package workload

import "repro/pdl/sim"

// OpKind distinguishes reads from writes.
type OpKind = sim.OpKind

// Operation kinds.
const (
	Read  = sim.Read
	Write = sim.Write
)

// Op is one client operation on a logical data unit.
type Op = sim.Op

// Generator produces a deterministic operation stream.
type Generator = sim.Generator

// RNG is a xorshift64* pseudorandom generator.
type RNG = sim.RNG

// NewRNG returns a seeded generator.
func NewRNG(seed uint64) *RNG { return sim.NewRNG(seed) }

// Uniform generates uniformly random addresses.
type Uniform = sim.Uniform

// NewUniform returns a uniform generator over n logical units.
func NewUniform(n int, writeFrac float64, seed uint64) *Uniform {
	return sim.NewUniform(n, writeFrac, seed)
}

// Sequential generates a sequential scan, wrapping at n.
type Sequential = sim.Sequential

// NewSequential returns a sequential generator (all reads or all writes).
func NewSequential(n int, kind OpKind) *Sequential { return sim.NewSequential(n, kind) }

// Zipf generates Zipf-skewed (hot-spot) addresses.
type Zipf = sim.Zipf

// NewZipf returns a Zipf generator over n logical units.
func NewZipf(n int, theta, writeFrac float64, seed uint64) *Zipf {
	return sim.NewZipf(n, theta, writeFrac, seed)
}

// Mix interleaves several generators with fixed weights.
type Mix = sim.Mix

// NewMix returns a weighted mix of generators.
func NewMix(seed uint64, gens []Generator, weights []float64) *Mix {
	return sim.NewMix(seed, gens, weights)
}
