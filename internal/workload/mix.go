package workload

import (
	"fmt"
	"strings"
)

// Mix interleaves several generators with fixed weights — e.g. a mostly
// sequential backup stream plus a Zipf online workload. Selection is
// deterministic from the seed.
type Mix struct {
	rng  *RNG
	gens []Generator
	cum  []float64
}

// NewMix returns a weighted mix of generators. Weights must be positive;
// they are normalized internally.
func NewMix(seed uint64, gens []Generator, weights []float64) *Mix {
	if len(gens) == 0 || len(gens) != len(weights) {
		panic("workload: NewMix: need matching non-empty generators and weights")
	}
	total := 0.0
	for _, w := range weights {
		if w <= 0 {
			panic("workload: NewMix: weights must be positive")
		}
		total += w
	}
	cum := make([]float64, len(weights))
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cum[i] = acc
	}
	cum[len(cum)-1] = 1.0
	return &Mix{rng: NewRNG(seed), gens: gens, cum: cum}
}

// Next implements Generator.
func (m *Mix) Next() Op {
	u := m.rng.Float64()
	for i, c := range m.cum {
		if u < c {
			return m.gens[i].Next()
		}
	}
	return m.gens[len(m.gens)-1].Next()
}

// Name implements Generator.
func (m *Mix) Name() string {
	names := make([]string, len(m.gens))
	for i, g := range m.gens {
		names[i] = g.Name()
	}
	return fmt.Sprintf("mix(%s)", strings.Join(names, "+"))
}
