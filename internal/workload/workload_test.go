package workload

import "testing"

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGZeroSeedWorks(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero-seed RNG stuck at zero")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		x := r.Intn(7)
		if x < 0 || x >= 7 {
			t.Fatalf("Intn out of range: %d", x)
		}
	}
}

func TestRNGIntnPanicsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(2)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestUniformAddressesInRange(t *testing.T) {
	g := NewUniform(100, 0.5, 3)
	reads, writes := 0, 0
	for i := 0; i < 2000; i++ {
		op := g.Next()
		if op.Logical < 0 || op.Logical >= 100 {
			t.Fatalf("address out of range: %d", op.Logical)
		}
		if op.Kind == Read {
			reads++
		} else {
			writes++
		}
	}
	// 50/50 split within generous tolerance.
	if reads < 800 || writes < 800 {
		t.Errorf("reads=%d writes=%d: expected roughly even split", reads, writes)
	}
}

func TestUniformExtremes(t *testing.T) {
	ro := NewUniform(10, 0, 1)
	for i := 0; i < 100; i++ {
		if ro.Next().Kind != Read {
			t.Fatal("read-only generator produced a write")
		}
	}
	wo := NewUniform(10, 1, 1)
	for i := 0; i < 100; i++ {
		if wo.Next().Kind != Write {
			t.Fatal("write-only generator produced a read")
		}
	}
}

func TestSequentialWraps(t *testing.T) {
	g := NewSequential(3, Write)
	want := []int{0, 1, 2, 0, 1}
	for i, w := range want {
		op := g.Next()
		if op.Logical != w || op.Kind != Write {
			t.Fatalf("op %d = %+v, want logical %d", i, op, w)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	g := NewZipf(1000, 1.0, 0, 5)
	counts := make([]int, 1000)
	n := 50000
	for i := 0; i < n; i++ {
		op := g.Next()
		if op.Logical < 0 || op.Logical >= 1000 {
			t.Fatalf("address out of range: %d", op.Logical)
		}
		counts[op.Logical]++
	}
	// Hot unit 0 should dominate the tail unit by a large factor.
	if counts[0] < 20*counts[900]+1 {
		t.Errorf("zipf skew too weak: head %d vs tail %d", counts[0], counts[900])
	}
	// Head should cover a material share of traffic.
	if counts[0] < n/100 {
		t.Errorf("head count %d too small", counts[0])
	}
}

func TestZipfThetaZeroIsUniformish(t *testing.T) {
	g := NewZipf(10, 0, 0, 7)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[g.Next().Logical]++
	}
	for i, c := range counts {
		if c < 500 || c > 1500 {
			t.Errorf("bucket %d count %d outside uniform band", i, c)
		}
	}
}

func TestGeneratorNames(t *testing.T) {
	if NewUniform(10, 0.3, 1).Name() == "" || NewSequential(10, Read).Name() == "" || NewZipf(10, 1, 0, 1).Name() == "" {
		t.Error("empty generator name")
	}
}

func TestPanicsOnBadParams(t *testing.T) {
	cases := []func(){
		func() { NewUniform(0, 0.5, 1) },
		func() { NewUniform(10, -0.1, 1) },
		func() { NewUniform(10, 1.1, 1) },
		func() { NewSequential(0, Read) },
		func() { NewZipf(0, 1, 0, 1) },
		func() { NewZipf(10, -1, 0, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}
