package workload

import (
	"strings"
	"testing"
)

func TestMixProportions(t *testing.T) {
	seq := NewSequential(1000, Read)
	uni := NewUniform(1000, 1, 3) // write-only: distinguishes source
	m := NewMix(9, []Generator{seq, uni}, []float64{3, 1})
	reads, writes := 0, 0
	for i := 0; i < 8000; i++ {
		if m.Next().Kind == Read {
			reads++
		} else {
			writes++
		}
	}
	// Expect ~75/25 split.
	if reads < 5200 || reads > 6800 {
		t.Errorf("reads = %d of 8000, want ~6000", reads)
	}
	_ = writes
}

func TestMixDeterministic(t *testing.T) {
	mk := func() *Mix {
		return NewMix(5, []Generator{NewUniform(100, 0.5, 1), NewZipf(100, 1, 0, 2)}, []float64{1, 1})
	}
	a, b := mk(), mk()
	for i := 0; i < 200; i++ {
		if a.Next() != b.Next() {
			t.Fatal("mix diverged for identical seeds")
		}
	}
}

func TestMixName(t *testing.T) {
	m := NewMix(1, []Generator{NewSequential(10, Read)}, []float64{1})
	if !strings.HasPrefix(m.Name(), "mix(") {
		t.Errorf("name = %q", m.Name())
	}
}

func TestMixValidation(t *testing.T) {
	cases := []func(){
		func() { NewMix(1, nil, nil) },
		func() { NewMix(1, []Generator{NewSequential(5, Read)}, []float64{1, 2}) },
		func() { NewMix(1, []Generator{NewSequential(5, Read)}, []float64{0}) },
		func() { NewMix(1, []Generator{NewSequential(5, Read)}, []float64{-1}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}
