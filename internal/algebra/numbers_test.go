package algebra

import (
	"testing"
	"testing/quick"
)

func TestGCDBasic(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 5, 5}, {5, 0, 5}, {12, 18, 6}, {18, 12, 6},
		{7, 13, 1}, {-12, 18, 6}, {12, -18, 6}, {-12, -18, 6}, {1, 1, 1},
		{100, 10, 10}, {17, 17, 17},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.want {
			t.Errorf("GCD(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestGCDProperties(t *testing.T) {
	f := func(a, b int16) bool {
		x, y := int(a), int(b)
		g := GCD(x, y)
		if x == 0 && y == 0 {
			return g == 0
		}
		if g <= 0 {
			return false
		}
		return x%g == 0 && y%g == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLCM(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{4, 6, 12}, {3, 5, 15}, {0, 7, 0}, {7, 0, 0}, {6, 6, 6}, {1, 9, 9},
	}
	for _, c := range cases {
		if got := LCM(c.a, c.b); got != c.want {
			t.Errorf("LCM(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestExtGCDIdentity(t *testing.T) {
	f := func(a, b uint8) bool {
		x, y := int(a), int(b)
		g, u, v := ExtGCD(x, y)
		return x*u+y*v == g && g == GCD(x, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFactorize(t *testing.T) {
	cases := []struct {
		n    int
		want []PrimePower
	}{
		{1, nil},
		{2, []PrimePower{{2, 1}}},
		{12, []PrimePower{{2, 2}, {3, 1}}},
		{360, []PrimePower{{2, 3}, {3, 2}, {5, 1}}},
		{97, []PrimePower{{97, 1}}},
		{1024, []PrimePower{{2, 10}}},
	}
	for _, c := range cases {
		got := Factorize(c.n)
		if len(got) != len(c.want) {
			t.Fatalf("Factorize(%d) = %v, want %v", c.n, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Factorize(%d)[%d] = %v, want %v", c.n, i, got[i], c.want[i])
			}
		}
	}
}

func TestFactorizeReconstructs(t *testing.T) {
	for n := 1; n <= 5000; n++ {
		prod := 1
		for _, pp := range Factorize(n) {
			if !IsPrime(pp.P) {
				t.Fatalf("Factorize(%d): %d is not prime", n, pp.P)
			}
			prod *= pp.Value()
		}
		if prod != n {
			t.Fatalf("Factorize(%d) product = %d", n, prod)
		}
	}
}

func TestFactorizePanicsBelowOne(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Factorize(0) did not panic")
		}
	}()
	Factorize(0)
}

func TestIsPrime(t *testing.T) {
	primes := map[int]bool{2: true, 3: true, 5: true, 7: true, 11: true, 13: true, 97: true, 101: true}
	for n := -2; n <= 101; n++ {
		want := primes[n]
		if n > 13 && n < 97 {
			// compute by trial division independently
			want = n > 1
			for d := 2; d*d <= n; d++ {
				if n%d == 0 {
					want = false
					break
				}
			}
		}
		if got := IsPrime(n); got != want {
			t.Errorf("IsPrime(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestIsPrimePower(t *testing.T) {
	cases := []struct {
		n, p, e int
		ok      bool
	}{
		{1, 0, 0, false}, {2, 2, 1, true}, {4, 2, 2, true}, {6, 0, 0, false},
		{8, 2, 3, true}, {9, 3, 2, true}, {12, 0, 0, false}, {27, 3, 3, true},
		{49, 7, 2, true}, {121, 11, 2, true}, {100, 0, 0, false},
	}
	for _, c := range cases {
		p, e, ok := IsPrimePower(c.n)
		if ok != c.ok || p != c.p || e != c.e {
			t.Errorf("IsPrimePower(%d) = (%d,%d,%v), want (%d,%d,%v)", c.n, p, e, ok, c.p, c.e, c.ok)
		}
	}
}

func TestMaxGenerators(t *testing.T) {
	cases := []struct{ v, want int }{
		{2, 2}, {3, 3}, {4, 4}, {6, 2}, {8, 8}, {12, 3}, {15, 3},
		{16, 16}, {30, 2}, {36, 4}, {100, 4}, {1000, 8}, {97, 97},
	}
	for _, c := range cases {
		if got := MaxGenerators(c.v); got != c.want {
			t.Errorf("MaxGenerators(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestMaxGeneratorsPrimePowerIsV(t *testing.T) {
	for _, q := range PrimePowersUpTo(512) {
		if MaxGenerators(q) != q {
			t.Errorf("MaxGenerators(%d) = %d, want %d", q, MaxGenerators(q), q)
		}
	}
}

func TestPrimePowersUpTo(t *testing.T) {
	got := PrimePowersUpTo(32)
	want := []int{2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 17, 19, 23, 25, 27, 29, 31, 32}
	if len(got) != len(want) {
		t.Fatalf("PrimePowersUpTo(32) = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("PrimePowersUpTo(32)[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestLargestPrimePowerAtMost(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 0}, {2, 2}, {6, 5}, {10, 9}, {15, 13}, {28, 27}, {100, 97},
	}
	for _, c := range cases {
		if got := LargestPrimePowerAtMost(c.n); got != c.want {
			t.Errorf("LargestPrimePowerAtMost(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestDivisors(t *testing.T) {
	cases := []struct {
		n    int
		want []int
	}{
		{1, []int{1}},
		{12, []int{1, 2, 3, 4, 6, 12}},
		{36, []int{1, 2, 3, 4, 6, 9, 12, 18, 36}},
		{17, []int{1, 17}},
	}
	for _, c := range cases {
		got := Divisors(c.n)
		if len(got) != len(c.want) {
			t.Fatalf("Divisors(%d) = %v, want %v", c.n, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Divisors(%d)[%d] = %d, want %d", c.n, i, got[i], c.want[i])
			}
		}
	}
}

func TestDivisorsSortedAndDivide(t *testing.T) {
	for n := 1; n <= 500; n++ {
		ds := Divisors(n)
		for i, d := range ds {
			if n%d != 0 {
				t.Fatalf("Divisors(%d): %d does not divide", n, d)
			}
			if i > 0 && ds[i-1] >= d {
				t.Fatalf("Divisors(%d) not strictly increasing: %v", n, ds)
			}
		}
	}
}

func TestPowMod(t *testing.T) {
	cases := []struct{ b, e, m, want int }{
		{2, 10, 1000, 24}, {3, 0, 7, 1}, {0, 5, 7, 0}, {5, 3, 13, 8},
		{2, 20, 1, 0}, {-2, 3, 7, 6},
	}
	for _, c := range cases {
		if got := PowMod(c.b, c.e, c.m); got != c.want {
			t.Errorf("PowMod(%d,%d,%d) = %d, want %d", c.b, c.e, c.m, got, c.want)
		}
	}
}

func TestPowModMatchesNaive(t *testing.T) {
	f := func(b, e uint8, m uint8) bool {
		mod := int(m)%50 + 2
		base, exp := int(b)%mod, int(e)%12
		naive := 1 % mod
		for i := 0; i < exp; i++ {
			naive = naive * base % mod
		}
		return PowMod(base, exp, mod) == naive
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEulerPhi(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 1}, {2, 1}, {6, 2}, {9, 6}, {10, 4}, {12, 4}, {36, 12}, {97, 96},
	}
	for _, c := range cases {
		if got := EulerPhi(c.n); got != c.want {
			t.Errorf("EulerPhi(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestEulerPhiMatchesCount(t *testing.T) {
	for n := 1; n <= 300; n++ {
		count := 0
		for k := 1; k <= n; k++ {
			if GCD(k, n) == 1 {
				count++
			}
		}
		if got := EulerPhi(n); got != count {
			t.Fatalf("EulerPhi(%d) = %d, want %d", n, got, count)
		}
	}
}
