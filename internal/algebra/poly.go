package algebra

import "fmt"

// Polynomials over the prime field GF(p), used only to construct GF(p^m).
// A polynomial is a coefficient slice c[0] + c[1]x + ... with c[len-1] != 0
// (or the empty slice for the zero polynomial).

// polyTrim removes trailing zero coefficients.
func polyTrim(c []int) []int {
	n := len(c)
	for n > 0 && c[n-1] == 0 {
		n--
	}
	return c[:n]
}

// polyAdd returns a + b over GF(p).
func polyAdd(a, b []int, p int) []int {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]int, n)
	for i := range out {
		var x, y int
		if i < len(a) {
			x = a[i]
		}
		if i < len(b) {
			y = b[i]
		}
		out[i] = (x + y) % p
	}
	return polyTrim(out)
}

// polyMul returns a * b over GF(p).
func polyMul(a, b []int, p int) []int {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]int, len(a)+len(b)-1)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j, bj := range b {
			out[i+j] = (out[i+j] + ai*bj) % p
		}
	}
	return polyTrim(out)
}

// polyMod returns a mod m over GF(p); m must be nonzero.
func polyMod(a, m []int, p int) []int {
	if len(m) == 0 {
		panic("algebra: polyMod: division by zero polynomial")
	}
	a = append([]int(nil), polyTrim(a)...)
	lead := m[len(m)-1]
	leadInv := modInverse(lead, p)
	for len(a) >= len(m) {
		shift := len(a) - len(m)
		factor := a[len(a)-1] * leadInv % p
		for i, mi := range m {
			a[shift+i] = (a[shift+i] - factor*mi%p + p*p) % p
		}
		a = polyTrim(a)
	}
	return a
}

// modInverse returns x^-1 mod p for prime p and x != 0 mod p.
func modInverse(x, p int) int {
	g, inv, _ := ExtGCD(x%p, p)
	if g != 1 {
		panic(fmt.Sprintf("algebra: modInverse: %d not invertible mod %d", x, p))
	}
	inv %= p
	if inv < 0 {
		inv += p
	}
	return inv
}

// polyEqual reports whether a == b as polynomials.
func polyEqual(a, b []int) bool {
	a, b = polyTrim(a), polyTrim(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// polyFromCode decodes an integer code into base-p coefficients of length m.
func polyFromCode(code, p, m int) []int {
	c := make([]int, m)
	for i := 0; i < m; i++ {
		c[i] = code % p
		code /= p
	}
	return c
}

// polyToCode encodes coefficients (length <= m) into an integer code base p.
func polyToCode(c []int, p int) int {
	code := 0
	for i := len(c) - 1; i >= 0; i-- {
		code = code*p + c[i]
	}
	return code
}

// isIrreducible reports whether monic f (degree >= 1) is irreducible over
// GF(p), by trial division against every monic polynomial of degree
// 1..deg(f)/2. The search spaces here are tiny (deg <= ~14, p small).
func isIrreducible(f []int, p int) bool {
	deg := len(f) - 1
	if deg < 1 {
		return false
	}
	if deg == 1 {
		return true
	}
	for d := 1; d <= deg/2; d++ {
		// Enumerate monic polynomials of degree d: p^d choices of lower
		// coefficients.
		count := 1
		for i := 0; i < d; i++ {
			count *= p
		}
		for code := 0; code < count; code++ {
			div := polyFromCode(code, p, d)
			div = append(div, 0)
			div[d] = 1 // monic of degree d
			if len(polyMod(f, div, p)) == 0 {
				return false
			}
		}
	}
	return true
}

// findIrreducible returns a monic irreducible polynomial of degree m over
// GF(p), deterministically (smallest by coefficient code).
func findIrreducible(p, m int) []int {
	if m == 1 {
		return []int{0, 1} // x
	}
	count := 1
	for i := 0; i < m; i++ {
		count *= p
	}
	for code := 0; code < count; code++ {
		f := polyFromCode(code, p, m)
		f = append(f, 0)
		f[m] = 1 // monic of degree m
		if isIrreducible(f, p) {
			return f
		}
	}
	panic(fmt.Sprintf("algebra: no irreducible polynomial of degree %d over GF(%d)", m, p))
}
