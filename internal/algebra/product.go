package algebra

import (
	"fmt"
	"strings"
)

// Product is the cross product R_1 x ... x R_n of rings, with componentwise
// operations (Section 2.1 of the paper). Element codes are mixed-radix:
// code = c_1 + c_2*|R_1| + c_3*|R_1||R_2| + ... . An element is a unit iff
// every component is a unit, so a product of two or more fields is a ring
// but not a field.
type Product struct {
	rings []Ring
	order int
}

// NewProduct returns the cross product of the given rings (at least one).
func NewProduct(rings ...Ring) *Product {
	if len(rings) == 0 {
		panic("algebra: NewProduct: need at least one ring")
	}
	order := 1
	for _, r := range rings {
		order *= r.Order()
		if order > 1<<26 {
			panic("algebra: NewProduct: product too large")
		}
	}
	return &Product{rings: append([]Ring(nil), rings...), order: order}
}

// ProductRingFor returns the canonical ring of order v used by Lemma 3:
// the cross product of the fields GF(p_i^{e_i}) over the prime-power
// factorization of v. For prime-power v this is a single field (and the
// returned Ring is *GF). Its generator capacity is exactly M(v).
func ProductRingFor(v int) Ring {
	fs := Factorize(v)
	if len(fs) == 0 {
		panic(fmt.Sprintf("algebra: ProductRingFor(%d): v must be >= 2", v))
	}
	if len(fs) == 1 {
		return NewGF(fs[0].P, fs[0].E)
	}
	rings := make([]Ring, len(fs))
	for i, pp := range fs {
		rings[i] = NewGF(pp.P, pp.E)
	}
	return NewProduct(rings...)
}

// Components returns the component rings.
func (pr *Product) Components() []Ring { return pr.rings }

// Decompose splits a code into component codes.
func (pr *Product) Decompose(code int) []int {
	out := make([]int, len(pr.rings))
	for i, r := range pr.rings {
		out[i] = code % r.Order()
		code /= r.Order()
	}
	return out
}

// Compose combines component codes into a product code.
func (pr *Product) Compose(parts []int) int {
	if len(parts) != len(pr.rings) {
		panic("algebra: Product.Compose: wrong number of components")
	}
	code := 0
	for i := len(parts) - 1; i >= 0; i-- {
		if parts[i] < 0 || parts[i] >= pr.rings[i].Order() {
			panic("algebra: Product.Compose: component out of range")
		}
		code = code*pr.rings[i].Order() + parts[i]
	}
	return code
}

// Order returns the product of the component orders.
func (pr *Product) Order() int { return pr.order }

// Zero returns the code of (0, ..., 0).
func (pr *Product) Zero() int { return 0 }

// One returns the code of (1, ..., 1).
func (pr *Product) One() int {
	parts := make([]int, len(pr.rings))
	for i, r := range pr.rings {
		parts[i] = r.One()
	}
	return pr.Compose(parts)
}

func (pr *Product) mapBinary(a, b int, op func(r Ring, x, y int) int) int {
	code, mult := 0, 1
	for _, r := range pr.rings {
		n := r.Order()
		code += op(r, a%n, b%n) * mult
		a /= n
		b /= n
		mult *= n
	}
	return code
}

// Add adds componentwise.
func (pr *Product) Add(a, b int) int {
	return pr.mapBinary(a, b, func(r Ring, x, y int) int { return r.Add(x, y) })
}

// Mul multiplies componentwise.
func (pr *Product) Mul(a, b int) int {
	return pr.mapBinary(a, b, func(r Ring, x, y int) int { return r.Mul(x, y) })
}

// Neg negates componentwise.
func (pr *Product) Neg(a int) int {
	code, mult := 0, 1
	for _, r := range pr.rings {
		n := r.Order()
		code += r.Neg(a%n) * mult
		a /= n
		mult *= n
	}
	return code
}

// Inv inverts componentwise; a is a unit iff every component is.
func (pr *Product) Inv(a int) (int, bool) {
	code, mult := 0, 1
	for _, r := range pr.rings {
		n := r.Order()
		inv, ok := r.Inv(a % n)
		if !ok {
			return 0, false
		}
		code += inv * mult
		a /= n
		mult *= n
	}
	return code, true
}

// Name returns e.g. "GF(4)xGF(9)".
func (pr *Product) Name() string {
	parts := make([]string, len(pr.rings))
	for i, r := range pr.rings {
		parts[i] = r.Name()
	}
	return strings.Join(parts, "x")
}

// DiagonalGenerators returns the size-M(v) generator set of Lemma 3 for a
// product of fields: the j-th generator is (e_1ʲ, ..., e_nʲ) where e_iʲ is
// the j-th element of the i-th field. Any k-subset is a generator set.
func (pr *Product) DiagonalGenerators() []int {
	m := pr.Order() + 1
	for _, r := range pr.rings {
		if r.Order() < m {
			m = r.Order()
		}
	}
	gs := make([]int, m)
	parts := make([]int, len(pr.rings))
	for j := 0; j < m; j++ {
		for i := range pr.rings {
			parts[i] = j // codes 0..m-1 are distinct elements of each field
		}
		gs[j] = pr.Compose(parts)
	}
	return gs
}
