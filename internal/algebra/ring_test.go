package algebra

import (
	"testing"
	"testing/quick"
)

func TestZmodAxioms(t *testing.T) {
	for _, n := range []int{2, 3, 4, 6, 9, 12, 15} {
		if err := RingAxioms(NewZmod(n), 64); err != nil {
			t.Errorf("Z_%d: %v", n, err)
		}
	}
}

func TestZmodInv(t *testing.T) {
	z := NewZmod(12)
	for a := 0; a < 12; a++ {
		inv, ok := z.Inv(a)
		wantOK := GCD(a, 12) == 1
		if ok != wantOK {
			t.Errorf("Z_12: Inv(%d) ok = %v, want %v", a, ok, wantOK)
		}
		if ok && a*inv%12 != 1 {
			t.Errorf("Z_12: %d * %d != 1", a, inv)
		}
	}
}

func TestZmodFieldWhenPrime(t *testing.T) {
	z := NewZmod(13)
	for a := 1; a < 13; a++ {
		if _, ok := z.Inv(a); !ok {
			t.Errorf("Z_13: %d should be a unit", a)
		}
	}
}

func TestSubPow(t *testing.T) {
	z := NewZmod(7)
	if got := Sub(z, 3, 5); got != 5 {
		t.Errorf("3 - 5 mod 7 = %d, want 5", got)
	}
	if got := Pow(z, 3, 6); got != 1 { // Fermat
		t.Errorf("3^6 mod 7 = %d, want 1", got)
	}
	if got := Pow(z, 3, 0); got != 1 {
		t.Errorf("3^0 mod 7 = %d, want 1", got)
	}
	if got := Repeat(z, 10, 3); got != 2 {
		t.Errorf("10 * 3 mod 7 = %d, want 2", got)
	}
	if got := Repeat(z, 0, 3); got != 0 {
		t.Errorf("0 * 3 mod 7 = %d, want 0", got)
	}
}

func TestAdditiveOrder(t *testing.T) {
	z := NewZmod(12)
	cases := []struct{ a, want int }{
		{0, 1}, {1, 12}, {2, 6}, {3, 4}, {4, 3}, {6, 2}, {8, 3},
	}
	for _, c := range cases {
		if got := AdditiveOrder(z, c.a); got != c.want {
			t.Errorf("AdditiveOrder(Z_12, %d) = %d, want %d", c.a, got, c.want)
		}
	}
}

func TestAdditiveOrderDividesRingOrder(t *testing.T) {
	f := func(n, a uint8) bool {
		mod := int(n)%30 + 2
		z := NewZmod(mod)
		ord := AdditiveOrder(z, int(a)%mod)
		return mod%ord == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMultiplicativeOrder(t *testing.T) {
	z := NewZmod(7) // unit group cyclic of order 6; 3 is a generator
	cases := []struct{ a, want int }{
		{1, 1}, {6, 2}, {2, 3}, {4, 3}, {3, 6}, {5, 6}, {0, 0},
	}
	for _, c := range cases {
		if got := MultiplicativeOrder(z, c.a); got != c.want {
			t.Errorf("MultiplicativeOrder(Z_7, %d) = %d, want %d", c.a, got, c.want)
		}
	}
}

func TestMultiplicativeOrderNonUnit(t *testing.T) {
	z := NewZmod(12)
	for _, a := range []int{0, 2, 3, 4, 6, 8, 9, 10} {
		if got := MultiplicativeOrder(z, a); got != 0 {
			t.Errorf("MultiplicativeOrder(Z_12, %d) = %d, want 0", a, got)
		}
	}
}

func TestIsGeneratorSetField(t *testing.T) {
	f := NewField(7)
	if !IsGeneratorSet(f, []int{0, 1, 2, 3, 4, 5, 6}) {
		t.Error("all of GF(7) should be a generator set")
	}
	if IsGeneratorSet(f, []int{0, 1, 1}) {
		t.Error("duplicate elements must not form a generator set")
	}
}

func TestIsGeneratorSetZmod(t *testing.T) {
	z := NewZmod(6)
	// 3 - 1 = 2 is not a unit mod 6.
	if IsGeneratorSet(z, []int{1, 3}) {
		t.Error("{1,3} in Z_6: difference 2 is not a unit")
	}
	// 1 - 0 = 1 is a unit.
	if !IsGeneratorSet(z, []int{0, 1}) {
		t.Error("{0,1} should be a generator set in Z_6")
	}
}

func TestFindGeneratorsField(t *testing.T) {
	for _, q := range []int{4, 5, 7, 8, 9, 16, 25} {
		f := NewField(q)
		for k := 1; k <= q; k++ {
			gs := FindGenerators(f, k)
			if gs == nil {
				t.Fatalf("GF(%d): no generator set of size %d", q, k)
			}
			if len(gs) != k || !IsGeneratorSet(f, gs) {
				t.Fatalf("GF(%d): invalid generator set %v", q, gs)
			}
			if gs[0] != f.Zero() {
				t.Fatalf("GF(%d): generator set must start at 0", q)
			}
		}
		if FindGenerators(f, q+1) != nil {
			t.Errorf("GF(%d): set of size %d should not exist", q, q+1)
		}
	}
}

func TestFindGeneratorsProductBound(t *testing.T) {
	// v = 12 = 4*3: M(12) = 3 generators max.
	r := ProductRingFor(12)
	gs := FindGenerators(r, 3)
	if gs == nil || !IsGeneratorSet(r, gs) {
		t.Fatalf("v=12: expected generator set of size 3, got %v", gs)
	}
	if FindGenerators(r, 4) != nil {
		t.Error("v=12: generator set of size 4 contradicts Theorem 2")
	}
}

func TestRingAxiomsDetectsBrokenRing(t *testing.T) {
	if err := RingAxioms(brokenRing{}, 16); err == nil {
		t.Error("RingAxioms accepted a non-distributive ring")
	}
}

// brokenRing violates distributivity: Mul is max, Add is mod-4 addition.
type brokenRing struct{}

func (brokenRing) Order() int       { return 4 }
func (brokenRing) Zero() int        { return 0 }
func (brokenRing) One() int         { return 1 }
func (brokenRing) Add(a, b int) int { return (a + b) % 4 }
func (brokenRing) Neg(a int) int    { return (4 - a) % 4 }
func (brokenRing) Mul(a, b int) int {
	if a > b {
		return a
	}
	return b
}
func (brokenRing) Inv(a int) (int, bool) { return 0, false }
func (brokenRing) Name() string          { return "broken" }
