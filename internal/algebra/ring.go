package algebra

import "fmt"

// Ring is a finite commutative ring with a multiplicative unit 1 != 0.
// Elements are integer codes in [0, Order()). Implementations must satisfy
// the usual ring axioms; RingAxioms (exported for tests) checks them
// exhaustively on small rings and by sampling on large ones.
type Ring interface {
	// Order returns the number of elements in the ring.
	Order() int
	// Zero returns the code of the additive identity.
	Zero() int
	// One returns the code of the multiplicative identity.
	One() int
	// Add returns the code of a + b.
	Add(a, b int) int
	// Neg returns the code of -a.
	Neg(a int) int
	// Mul returns the code of a * b.
	Mul(a, b int) int
	// Inv returns the code of a^-1 and true if a is a unit, or 0 and
	// false otherwise.
	Inv(a int) (int, bool)
	// Name returns a short description such as "GF(8)" or "Z_6".
	Name() string
}

// Sub returns a - b in r.
func Sub(r Ring, a, b int) int {
	return r.Add(a, r.Neg(b))
}

// Pow returns a^n in r for n >= 0 (a^0 = 1).
func Pow(r Ring, a, n int) int {
	if n < 0 {
		panic("algebra: Pow: negative exponent")
	}
	res := r.One()
	base := a
	for n > 0 {
		if n&1 == 1 {
			res = r.Mul(res, base)
		}
		base = r.Mul(base, base)
		n >>= 1
	}
	return res
}

// Repeat returns n*a, i.e. a added to itself n times (n >= 0).
func Repeat(r Ring, n, a int) int {
	if n < 0 {
		panic("algebra: Repeat: negative count")
	}
	res := r.Zero()
	base := a
	for n > 0 {
		if n&1 == 1 {
			res = r.Add(res, base)
		}
		base = r.Add(base, base)
		n >>= 1
	}
	return res
}

// AdditiveOrder returns the additive order of a: the smallest m >= 1 with
// m*a = 0. It always divides the ring order.
func AdditiveOrder(r Ring, a int) int {
	zero := r.Zero()
	// The order divides Order(); test divisors in increasing order.
	for _, d := range Divisors(r.Order()) {
		if Repeat(r, d, a) == zero {
			return d
		}
	}
	panic(fmt.Sprintf("algebra: AdditiveOrder: no order found for %d in %s", a, r.Name()))
}

// MultiplicativeOrder returns the multiplicative order of a unit a: the
// smallest m >= 1 with a^m = 1. It returns 0 if a is not a unit.
func MultiplicativeOrder(r Ring, a int) int {
	if _, ok := r.Inv(a); !ok {
		return 0
	}
	one := r.One()
	// For a field of order q the unit group has order q-1; in general the
	// multiplicative order divides the exponent of the unit group, which we
	// don't know cheaply, so walk powers directly (unit groups here are
	// small: <= order of the ring).
	x := a
	for m := 1; m <= r.Order(); m++ {
		if x == one {
			return m
		}
		x = r.Mul(x, a)
	}
	panic(fmt.Sprintf("algebra: MultiplicativeOrder: power walk of %d in %s did not return to 1", a, r.Name()))
}

// IsGeneratorSet reports whether gs is a valid generator set for ring-based
// block designs: all elements distinct and every pairwise difference a unit.
func IsGeneratorSet(r Ring, gs []int) bool {
	for i := 0; i < len(gs); i++ {
		for j := i + 1; j < len(gs); j++ {
			if gs[i] == gs[j] {
				return false
			}
			if _, ok := r.Inv(Sub(r, gs[i], gs[j])); !ok {
				return false
			}
		}
	}
	return true
}

// FindGenerators returns a generator set of size k for r, preferring g_0 = 0,
// or nil if the greedy search fails. For fields any k distinct elements work;
// for cross products of fields the greedy search finds the diagonal-style
// sets of Lemma 3 whenever k <= M(order).
func FindGenerators(r Ring, k int) []int {
	if k < 1 || k > r.Order() {
		return nil
	}
	gs := make([]int, 0, k)
	gs = append(gs, r.Zero())
	for cand := 0; cand < r.Order() && len(gs) < k; cand++ {
		ok := true
		for _, g := range gs {
			if cand == g {
				ok = false
				break
			}
			if _, unit := r.Inv(Sub(r, cand, g)); !unit {
				ok = false
				break
			}
		}
		if ok {
			gs = append(gs, cand)
		}
	}
	if len(gs) < k {
		return nil
	}
	return gs
}

// RingAxioms checks the ring axioms on r. For rings of order <= exhaustiveMax
// the check is exhaustive over all element pairs/triples; otherwise a
// deterministic sample is used. It returns the first violation found.
func RingAxioms(r Ring, exhaustiveMax int) error {
	n := r.Order()
	if n < 2 {
		return fmt.Errorf("%s: order %d < 2", r.Name(), n)
	}
	if r.Zero() == r.One() {
		return fmt.Errorf("%s: 0 == 1", r.Name())
	}
	var elems []int
	if n <= exhaustiveMax {
		elems = make([]int, n)
		for i := range elems {
			elems[i] = i
		}
	} else {
		// Deterministic sample: small codes, large codes, and a stride.
		seen := map[int]bool{}
		add := func(x int) {
			if x >= 0 && x < n && !seen[x] {
				seen[x] = true
				elems = append(elems, x)
			}
		}
		for i := 0; i < 8; i++ {
			add(i)
			add(n - 1 - i)
		}
		for i := 0; i < 16; i++ {
			add((i*2654435761 + 12345) % n)
		}
	}
	zero, one := r.Zero(), r.One()
	for _, a := range elems {
		if got := r.Add(a, zero); got != a {
			return fmt.Errorf("%s: %d + 0 = %d", r.Name(), a, got)
		}
		if got := r.Mul(a, one); got != a {
			return fmt.Errorf("%s: %d * 1 = %d", r.Name(), a, got)
		}
		if got := r.Add(a, r.Neg(a)); got != zero {
			return fmt.Errorf("%s: %d + (-%d) = %d", r.Name(), a, a, got)
		}
		if inv, ok := r.Inv(a); ok {
			if got := r.Mul(a, inv); got != one {
				return fmt.Errorf("%s: %d * %d = %d, want 1", r.Name(), a, inv, got)
			}
		}
		for _, b := range elems {
			if r.Add(a, b) != r.Add(b, a) {
				return fmt.Errorf("%s: addition not commutative at (%d,%d)", r.Name(), a, b)
			}
			if r.Mul(a, b) != r.Mul(b, a) {
				return fmt.Errorf("%s: multiplication not commutative at (%d,%d)", r.Name(), a, b)
			}
			for _, c := range elems {
				if r.Add(r.Add(a, b), c) != r.Add(a, r.Add(b, c)) {
					return fmt.Errorf("%s: addition not associative at (%d,%d,%d)", r.Name(), a, b, c)
				}
				if r.Mul(r.Mul(a, b), c) != r.Mul(a, r.Mul(b, c)) {
					return fmt.Errorf("%s: multiplication not associative at (%d,%d,%d)", r.Name(), a, b, c)
				}
				if r.Mul(a, r.Add(b, c)) != r.Add(r.Mul(a, b), r.Mul(a, c)) {
					return fmt.Errorf("%s: distributivity fails at (%d,%d,%d)", r.Name(), a, b, c)
				}
			}
		}
	}
	return nil
}
