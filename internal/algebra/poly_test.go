package algebra

import "testing"

func TestPolyTrim(t *testing.T) {
	if got := polyTrim([]int{1, 2, 0, 0}); len(got) != 2 {
		t.Errorf("polyTrim = %v", got)
	}
	if got := polyTrim([]int{0, 0}); len(got) != 0 {
		t.Errorf("polyTrim zero = %v", got)
	}
}

func TestPolyAdd(t *testing.T) {
	// (1 + x) + (1 + x + x^2) = x^2 over GF(2)
	got := polyAdd([]int{1, 1}, []int{1, 1, 1}, 2)
	if !polyEqual(got, []int{0, 0, 1}) {
		t.Errorf("polyAdd = %v", got)
	}
}

func TestPolyMul(t *testing.T) {
	// (1 + x)^2 = 1 + x^2 over GF(2)
	got := polyMul([]int{1, 1}, []int{1, 1}, 2)
	if !polyEqual(got, []int{1, 0, 1}) {
		t.Errorf("(1+x)^2 over GF(2) = %v", got)
	}
	// (1 + x)(2 + x) = 2 + 3x + x^2 = 2 + x^2 over GF(3)
	got = polyMul([]int{1, 1}, []int{2, 1}, 3)
	if !polyEqual(got, []int{2, 0, 1}) {
		t.Errorf("(1+x)(2+x) over GF(3) = %v", got)
	}
	if got := polyMul(nil, []int{1, 1}, 2); len(got) != 0 {
		t.Errorf("0 * p = %v", got)
	}
}

func TestPolyMod(t *testing.T) {
	// x^2 mod (x^2 + x + 1) = x + 1 over GF(2)
	got := polyMod([]int{0, 0, 1}, []int{1, 1, 1}, 2)
	if !polyEqual(got, []int{1, 1}) {
		t.Errorf("x^2 mod (x^2+x+1) = %v", got)
	}
	// Degree smaller than modulus: unchanged.
	got = polyMod([]int{1, 1}, []int{1, 1, 1}, 2)
	if !polyEqual(got, []int{1, 1}) {
		t.Errorf("small mod = %v", got)
	}
}

func TestPolyModDivisionIdentity(t *testing.T) {
	// For random-ish a, m over GF(3): a = q*m + r implies (a - r) mod m == 0.
	for code := 0; code < 200; code++ {
		a := polyFromCode(code*7+1, 3, 5)
		m := []int{1, 2, 1} // 1 + 2x + x^2, monic
		r := polyMod(a, m, 3)
		if len(r) >= len(m) {
			t.Fatalf("remainder degree too high: %v", r)
		}
		// a - r should be divisible by m.
		negR := make([]int, len(r))
		for i, c := range r {
			negR[i] = (3 - c) % 3
		}
		diff := polyAdd(a, negR, 3)
		if len(polyMod(diff, m, 3)) != 0 {
			t.Fatalf("a - (a mod m) not divisible by m for code %d", code)
		}
	}
}

func TestCodeRoundTrip(t *testing.T) {
	for code := 0; code < 81; code++ {
		if got := polyToCode(polyFromCode(code, 3, 4), 3); got != code {
			t.Errorf("round trip %d -> %d", code, got)
		}
	}
}

func TestIsIrreducibleKnown(t *testing.T) {
	// x^2 + x + 1 irreducible over GF(2); x^2 + 1 = (x+1)^2 reducible.
	if !isIrreducible([]int{1, 1, 1}, 2) {
		t.Error("x^2+x+1 should be irreducible over GF(2)")
	}
	if isIrreducible([]int{1, 0, 1}, 2) {
		t.Error("x^2+1 is (x+1)^2 over GF(2)")
	}
	// x^2 + 1 irreducible over GF(3).
	if !isIrreducible([]int{1, 0, 1}, 3) {
		t.Error("x^2+1 should be irreducible over GF(3)")
	}
	// Any degree-1 polynomial is irreducible.
	if !isIrreducible([]int{5 % 7, 1}, 7) {
		t.Error("degree-1 polynomials are irreducible")
	}
}

func TestFindIrreducibleDegrees(t *testing.T) {
	for _, pm := range []struct{ p, m int }{{2, 1}, {2, 2}, {2, 3}, {2, 8}, {3, 2}, {3, 4}, {5, 3}, {7, 2}} {
		f := findIrreducible(pm.p, pm.m)
		if len(f) != pm.m+1 {
			t.Fatalf("findIrreducible(%d,%d): degree %d", pm.p, pm.m, len(f)-1)
		}
		if f[pm.m] != 1 {
			t.Fatalf("findIrreducible(%d,%d): not monic", pm.p, pm.m)
		}
		if !isIrreducible(f, pm.p) {
			t.Fatalf("findIrreducible(%d,%d): reducible result %v", pm.p, pm.m, f)
		}
	}
}

func TestModInverse(t *testing.T) {
	for p := range map[int]bool{2: true, 3: true, 5: true, 7: true, 11: true} {
		for x := 1; x < p; x++ {
			inv := modInverse(x, p)
			if x*inv%p != 1 {
				t.Errorf("modInverse(%d, %d) = %d", x, p, inv)
			}
		}
	}
}
