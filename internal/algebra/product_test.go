package algebra

import (
	"testing"
	"testing/quick"
)

func TestProductAxioms(t *testing.T) {
	cases := []Ring{
		NewProduct(NewField(4), NewField(3)),              // order 12
		NewProduct(NewField(2), NewField(3), NewField(5)), // order 30
		NewProduct(NewField(9), NewField(5)),              // order 45
	}
	for _, r := range cases {
		if err := RingAxioms(r, 48); err != nil {
			t.Errorf("%s: %v", r.Name(), err)
		}
	}
}

func TestProductComposeDecompose(t *testing.T) {
	pr := NewProduct(NewField(4), NewField(3), NewField(5))
	for code := 0; code < pr.Order(); code++ {
		parts := pr.Decompose(code)
		if got := pr.Compose(parts); got != code {
			t.Fatalf("compose(decompose(%d)) = %d", code, got)
		}
	}
}

func TestProductUnitIffAllComponentsUnits(t *testing.T) {
	pr := NewProduct(NewField(4), NewField(3))
	for code := 0; code < pr.Order(); code++ {
		parts := pr.Decompose(code)
		want := parts[0] != 0 && parts[1] != 0
		_, ok := pr.Inv(code)
		if ok != want {
			t.Errorf("%s: Inv(%d) ok = %v, want %v", pr.Name(), code, ok, want)
		}
	}
}

func TestProductNotAField(t *testing.T) {
	pr := NewProduct(NewField(2), NewField(3))
	units := 0
	for code := 0; code < pr.Order(); code++ {
		if _, ok := pr.Inv(code); ok {
			units++
		}
	}
	if units != 1*2 {
		t.Errorf("Z2 x Z3 style product: %d units, want 2", units)
	}
}

func TestProductRingForPrimePowerIsField(t *testing.T) {
	r := ProductRingFor(27)
	if _, ok := r.(*GF); !ok {
		t.Errorf("ProductRingFor(27) = %T, want *GF", r)
	}
}

func TestProductRingForComposite(t *testing.T) {
	for _, v := range []int{6, 12, 20, 36, 60, 100} {
		r := ProductRingFor(v)
		if r.Order() != v {
			t.Errorf("ProductRingFor(%d).Order() = %d", v, r.Order())
		}
		if err := RingAxioms(r, 24); err != nil {
			t.Errorf("ProductRingFor(%d): %v", v, err)
		}
	}
}

func TestDiagonalGeneratorsAchieveMv(t *testing.T) {
	// Lemma 3: the canonical ring of order v has a generator set of size M(v).
	for _, v := range []int{6, 12, 20, 36, 60, 72, 90} {
		r := ProductRingFor(v)
		m := MaxGenerators(v)
		var gs []int
		if pr, ok := r.(*Product); ok {
			gs = pr.DiagonalGenerators()
		} else {
			t.Fatalf("v=%d should be composite", v)
		}
		if len(gs) != m {
			t.Fatalf("v=%d: diagonal generators size %d, want M(v)=%d", v, len(gs), m)
		}
		if !IsGeneratorSet(r, gs) {
			t.Fatalf("v=%d: diagonal set is not a generator set", v)
		}
	}
}

func TestProductName(t *testing.T) {
	pr := NewProduct(NewField(4), NewField(3))
	if pr.Name() != "GF(4)xGF(3)" {
		t.Errorf("Name = %q", pr.Name())
	}
}

func TestProductAddMulConsistentWithComponents(t *testing.T) {
	f1, f2 := NewField(5), NewField(4)
	pr := NewProduct(f1, f2)
	fn := func(a, b uint8) bool {
		x, y := int(a)%pr.Order(), int(b)%pr.Order()
		px, py := pr.Decompose(x), pr.Decompose(y)
		sum := pr.Decompose(pr.Add(x, y))
		prod := pr.Decompose(pr.Mul(x, y))
		return sum[0] == f1.Add(px[0], py[0]) && sum[1] == f2.Add(px[1], py[1]) &&
			prod[0] == f1.Mul(px[0], py[0]) && prod[1] == f2.Mul(px[1], py[1])
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}
