package algebra

import (
	"testing"
	"testing/quick"
)

func TestGFAxiomsSmall(t *testing.T) {
	for _, q := range []int{2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 25, 27} {
		f := NewField(q)
		if err := RingAxioms(f, 32); err != nil {
			t.Errorf("GF(%d): %v", q, err)
		}
	}
}

func TestGFAxiomsLargeSampled(t *testing.T) {
	for _, q := range []int{64, 81, 125, 128, 243, 256, 343, 512, 1024, 2048} {
		f := NewField(q)
		if err := RingAxioms(f, 16); err != nil {
			t.Errorf("GF(%d): %v", q, err)
		}
	}
}

func TestGFEveryNonzeroInvertible(t *testing.T) {
	for _, q := range []int{4, 8, 9, 16, 27, 32, 49, 64, 81} {
		f := NewField(q)
		if _, ok := f.Inv(0); ok {
			t.Errorf("GF(%d): 0 must not be invertible", q)
		}
		for a := 1; a < q; a++ {
			inv, ok := f.Inv(a)
			if !ok {
				t.Fatalf("GF(%d): %d not invertible", q, a)
			}
			if f.Mul(a, inv) != f.One() {
				t.Fatalf("GF(%d): %d * %d != 1", q, a, inv)
			}
		}
	}
}

func TestGFPrimitiveElement(t *testing.T) {
	for _, q := range []int{3, 4, 5, 8, 9, 16, 25, 27, 64, 81, 128} {
		f := NewField(q)
		g := f.Primitive()
		if got := MultiplicativeOrder(f, g); got != q-1 {
			t.Errorf("GF(%d): primitive element order %d, want %d", q, got, q-1)
		}
	}
}

func TestGFElementOfOrder(t *testing.T) {
	f := NewField(16)
	for _, d := range Divisors(15) {
		a, ok := f.ElementOfOrder(d)
		if !ok {
			t.Fatalf("GF(16): no element of order %d", d)
		}
		if got := MultiplicativeOrder(f, a); got != d {
			t.Errorf("GF(16): ElementOfOrder(%d) has order %d", d, got)
		}
	}
	if _, ok := f.ElementOfOrder(7); ok {
		t.Error("GF(16): order 7 does not divide 15")
	}
	if _, ok := f.ElementOfOrder(0); ok {
		t.Error("GF(16): order 0 is invalid")
	}
}

func TestGFFrobeniusFixesPrimeSubfield(t *testing.T) {
	// x -> x^p fixes exactly GF(p) inside GF(p^m).
	for _, pm := range []struct{ p, m int }{{2, 4}, {3, 3}, {5, 2}} {
		f := NewGF(pm.p, pm.m)
		fixed := 0
		for x := 0; x < f.Order(); x++ {
			if Pow(f, x, pm.p) == x {
				fixed++
			}
		}
		if fixed != pm.p {
			t.Errorf("GF(%d^%d): Frobenius fixes %d elements, want %d", pm.p, pm.m, fixed, pm.p)
		}
	}
}

func TestGFSubfield(t *testing.T) {
	f := NewField(16)
	sub := f.Subfield(4)
	if len(sub) != 4 {
		t.Fatalf("GF(16): subfield of order 4 has %d elements", len(sub))
	}
	// The subfield must be closed under + and * and contain 0 and 1.
	inSub := map[int]bool{}
	for _, x := range sub {
		inSub[x] = true
	}
	if !inSub[f.Zero()] || !inSub[f.One()] {
		t.Fatal("GF(16): subfield missing 0 or 1")
	}
	for _, a := range sub {
		for _, b := range sub {
			if !inSub[f.Add(a, b)] {
				t.Fatalf("GF(16): subfield not closed under + at (%d,%d)", a, b)
			}
			if !inSub[f.Mul(a, b)] {
				t.Fatalf("GF(16): subfield not closed under * at (%d,%d)", a, b)
			}
		}
	}
}

func TestGFSubfieldLarger(t *testing.T) {
	f := NewField(64) // subfields: 2, 4, 8
	for _, k := range []int{2, 4, 8} {
		if got := len(f.Subfield(k)); got != k {
			t.Errorf("GF(64): subfield of order %d has %d elements", k, got)
		}
	}
	if f.Subfield(16) != nil { // 16 = 2^4, 4 does not divide 6
		t.Error("GF(64): subfield of order 16 should not exist")
	}
	if f.Subfield(3) != nil {
		t.Error("GF(64): subfield of order 3 should not exist")
	}
	f9 := NewField(9)
	if got := len(f9.Subfield(3)); got != 3 {
		t.Errorf("GF(9): subfield of order 3 has %d elements", got)
	}
}

func TestGFNegCharTwo(t *testing.T) {
	f := NewField(8)
	for a := 0; a < 8; a++ {
		if f.Neg(a) != a {
			t.Errorf("GF(8): -%d = %d, want %d", a, f.Neg(a), a)
		}
	}
}

func TestGFNegOddChar(t *testing.T) {
	f := NewField(27)
	for a := 0; a < 27; a++ {
		if got := f.Add(a, f.Neg(a)); got != 0 {
			t.Errorf("GF(27): %d + (-%d) = %d", a, a, got)
		}
	}
}

func TestGFAddMatchesSlowAdd(t *testing.T) {
	// Exercise both table-driven and on-the-fly addition paths.
	f := NewField(2048) // above maxAddTable
	g := NewField(81)   // below maxAddTable
	check := func(f *GF) {
		fn := func(a, b uint16) bool {
			x, y := int(a)%f.Order(), int(b)%f.Order()
			return f.Add(x, y) == f.slowAdd(x, y)
		}
		if err := quick.Check(fn, nil); err != nil {
			t.Errorf("%s: %v", f.Name(), err)
		}
	}
	check(f)
	check(g)
}

func TestGFMulMatchesNoTable(t *testing.T) {
	// The exp/log tables must agree with raw polynomial arithmetic.
	for _, q := range []int{4, 8, 9, 27, 64, 81} {
		f := NewField(q)
		for a := 0; a < q; a++ {
			for b := 0; b < q; b++ {
				if f.Mul(a, b) != f.MulNoTable(a, b) {
					t.Fatalf("GF(%d): Mul(%d,%d) disagrees with polynomial path", q, a, b)
				}
			}
		}
	}
}

func TestGFDeterministicConstruction(t *testing.T) {
	a, b := NewField(64), NewField(64)
	for x := 0; x < 64; x++ {
		for y := 0; y < 64; y++ {
			if a.Mul(x, y) != b.Mul(x, y) {
				t.Fatalf("GF(64) construction not deterministic at (%d,%d)", x, y)
			}
		}
	}
}

func TestNewFieldRejectsComposite(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewField(6) did not panic")
		}
	}()
	NewField(6)
}

func TestNewGFRejectsCompositeChar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewGF(4, 2) did not panic")
		}
	}()
	NewGF(4, 2)
}

func TestGFCharDegree(t *testing.T) {
	f := NewGF(3, 4)
	if f.Char() != 3 || f.Degree() != 4 || f.Order() != 81 {
		t.Errorf("GF(3^4): char %d degree %d order %d", f.Char(), f.Degree(), f.Order())
	}
	if f.Name() != "GF(81)" {
		t.Errorf("name = %q", f.Name())
	}
}
