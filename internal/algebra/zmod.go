package algebra

import "fmt"

// Zmod is the ring of integers modulo n, n >= 2. Element codes are the
// canonical residues 0..n-1. It is a field exactly when n is prime.
type Zmod struct {
	n int
}

// NewZmod returns Z_n.
func NewZmod(n int) *Zmod {
	if n < 2 {
		panic(fmt.Sprintf("algebra: NewZmod(%d): modulus must be >= 2", n))
	}
	return &Zmod{n: n}
}

// Order returns n.
func (z *Zmod) Order() int { return z.n }

// Zero returns 0.
func (z *Zmod) Zero() int { return 0 }

// One returns 1.
func (z *Zmod) One() int { return 1 % z.n }

// Add returns (a + b) mod n.
func (z *Zmod) Add(a, b int) int {
	s := a + b
	if s >= z.n {
		s -= z.n
	}
	return s
}

// Neg returns (-a) mod n.
func (z *Zmod) Neg(a int) int {
	if a == 0 {
		return 0
	}
	return z.n - a
}

// Mul returns (a * b) mod n.
func (z *Zmod) Mul(a, b int) int { return a * b % z.n }

// Inv returns the multiplicative inverse of a when gcd(a, n) = 1.
func (z *Zmod) Inv(a int) (int, bool) {
	g, x, _ := ExtGCD(a, z.n)
	if g != 1 {
		return 0, false
	}
	x %= z.n
	if x < 0 {
		x += z.n
	}
	return x, true
}

// Name returns "Z_n".
func (z *Zmod) Name() string { return fmt.Sprintf("Z_%d", z.n) }
