package algebra

import "fmt"

// GF is the finite field GF(p^m). Element codes encode the coefficient
// vector of the representative polynomial in base p: the element
// c_0 + c_1 a + ... + c_{m-1} a^{m-1} (a a root of the modulus) has code
// c_0 + c_1 p + ... + c_{m-1} p^{m-1}. In particular codes 0..p-1 are the
// prime subfield and Add on them is addition mod p.
//
// Multiplication uses exp/log tables over a primitive element, so Mul and
// Inv are O(1).
type GF struct {
	p, m, q int
	modulus []int // monic irreducible of degree m over GF(p)
	expTab  []int // expTab[i] = g^i for i in [0, q-1); length q-1
	logTab  []int // logTab[x] = i with g^i = x, for x != 0
	addTab  []int // flattened q*q addition table for small fields, else nil
}

// maxAddTable bounds the field order for which the O(q^2) addition table is
// precomputed; larger fields add coefficient vectors on the fly.
const maxAddTable = 1 << 10

// NewGF returns the field GF(p^m) for prime p and m >= 1. The construction
// finds an irreducible modulus and a primitive element deterministically, so
// repeated calls build identical fields.
func NewGF(p, m int) *GF {
	if !IsPrime(p) {
		panic(fmt.Sprintf("algebra: NewGF(%d,%d): p must be prime", p, m))
	}
	if m < 1 {
		panic(fmt.Sprintf("algebra: NewGF(%d,%d): m must be >= 1", p, m))
	}
	q := 1
	for i := 0; i < m; i++ {
		q *= p
		if q > 1<<22 {
			panic(fmt.Sprintf("algebra: NewGF(%d,%d): field too large", p, m))
		}
	}
	f := &GF{p: p, m: m, q: q, modulus: findIrreducible(p, m)}
	f.buildTables()
	return f
}

// NewField returns GF(q) for a prime power q.
func NewField(q int) *GF {
	p, e, ok := IsPrimePower(q)
	if !ok {
		panic(fmt.Sprintf("algebra: NewField(%d): order must be a prime power", q))
	}
	return NewGF(p, e)
}

func (f *GF) buildTables() {
	// Raw polynomial multiplication (tables don't exist yet).
	rawMul := f.MulNoTable
	// Find a primitive element: a generator of the cyclic unit group of
	// order q-1. Try candidates in code order; check order via the prime
	// factorization of q-1.
	n := f.q - 1
	var primitive int
	factors := Factorize(n)
	pow := func(base, e int) int {
		r := 1
		for ; e > 0; e >>= 1 {
			if e&1 == 1 {
				r = rawMul(r, base)
			}
			base = rawMul(base, base)
		}
		return r
	}
	for cand := 2; ; cand++ {
		if cand >= f.q {
			// q = 2: unit group trivial, 1 is primitive.
			primitive = 1
			break
		}
		ok := true
		for _, pp := range factors {
			if pow(cand, n/pp.P) == 1 {
				ok = false
				break
			}
		}
		if ok {
			primitive = cand
			break
		}
	}
	f.expTab = make([]int, n)
	f.logTab = make([]int, f.q)
	x := 1
	for i := 0; i < n; i++ {
		f.expTab[i] = x
		f.logTab[x] = i
		x = rawMul(x, primitive)
	}
	if x != 1 {
		panic("algebra: GF table construction: primitive element order mismatch")
	}
	if f.q <= maxAddTable {
		f.addTab = make([]int, f.q*f.q)
		for a := 0; a < f.q; a++ {
			for b := 0; b < f.q; b++ {
				f.addTab[a*f.q+b] = f.slowAdd(a, b)
			}
		}
	}
}

func (f *GF) slowAdd(a, b int) int {
	// Add coefficient vectors digit-by-digit in base p.
	out := 0
	mult := 1
	for i := 0; i < f.m; i++ {
		da, db := a%f.p, b%f.p
		a /= f.p
		b /= f.p
		out += ((da + db) % f.p) * mult
		mult *= f.p
	}
	return out
}

// Order returns p^m.
func (f *GF) Order() int { return f.q }

// Char returns the characteristic p.
func (f *GF) Char() int { return f.p }

// Degree returns m, the extension degree over GF(p).
func (f *GF) Degree() int { return f.m }

// Zero returns the code of 0.
func (f *GF) Zero() int { return 0 }

// One returns the code of 1.
func (f *GF) One() int { return 1 }

// Add returns a + b.
func (f *GF) Add(a, b int) int {
	if f.addTab != nil {
		return f.addTab[a*f.q+b]
	}
	return f.slowAdd(a, b)
}

// Neg returns -a.
func (f *GF) Neg(a int) int {
	if f.p == 2 {
		return a
	}
	out := 0
	mult := 1
	x := a
	for i := 0; i < f.m; i++ {
		d := x % f.p
		x /= f.p
		if d != 0 {
			d = f.p - d
		}
		out += d * mult
		mult *= f.p
	}
	return out
}

// Mul returns a * b via the exp/log tables.
func (f *GF) Mul(a, b int) int {
	if a == 0 || b == 0 {
		return 0
	}
	s := f.logTab[a] + f.logTab[b]
	if s >= f.q-1 {
		s -= f.q - 1
	}
	return f.expTab[s]
}

// MulNoTable multiplies by explicit polynomial arithmetic modulo the
// field's irreducible polynomial — the reference implementation the
// exp/log tables are validated against, kept exported for tests and the
// table-vs-polynomial ablation bench.
func (f *GF) MulNoTable(a, b int) int {
	pa := polyFromCode(a, f.p, f.m)
	pb := polyFromCode(b, f.p, f.m)
	return polyToCode(polyMod(polyMul(pa, pb, f.p), f.modulus, f.p), f.p)
}

// Inv returns a^-1; every nonzero element is a unit.
func (f *GF) Inv(a int) (int, bool) {
	if a == 0 {
		return 0, false
	}
	l := f.logTab[a]
	if l == 0 {
		return a, true // a == 1
	}
	return f.expTab[f.q-1-l], true
}

// Name returns "GF(q)".
func (f *GF) Name() string { return fmt.Sprintf("GF(%d)", f.q) }

// Primitive returns a fixed primitive element (generator of the unit group).
func (f *GF) Primitive() int {
	if f.q == 2 {
		return 1
	}
	return f.expTab[1]
}

// ElementOfOrder returns an element of multiplicative order d, which exists
// iff d divides q-1. It returns 0, false otherwise.
func (f *GF) ElementOfOrder(d int) (int, bool) {
	if d < 1 || (f.q-1)%d != 0 {
		return 0, false
	}
	if d == 1 {
		return f.One(), true
	}
	return f.expTab[(f.q-1)/d], true
}

// Subfield returns the codes of the unique subfield of order k, which exists
// iff k is a power of p and its degree divides m. The elements are exactly
// the roots of x^k = x. Returns nil if no such subfield exists.
func (f *GF) Subfield(k int) []int {
	kp, ke, ok := IsPrimePower(k)
	if !ok || kp != f.p || f.m%ke != 0 {
		if k == f.p && f.m%1 == 0 {
			// handled above; unreachable
		}
		return nil
	}
	var out []int
	for x := 0; x < f.q; x++ {
		if Pow(f, x, k) == x {
			out = append(out, x)
		}
	}
	if len(out) != k {
		panic(fmt.Sprintf("algebra: %s: subfield of order %d has %d elements", f.Name(), k, len(out)))
	}
	return out
}
