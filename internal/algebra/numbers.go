// Package algebra implements the finite commutative rings with unit that
// underlie ring-based block designs (Schwabe & Sutherland, Section 2):
// integers mod n, prime fields, Galois fields GF(p^m) built from irreducible
// polynomials, and cross products of rings. Ring elements are represented as
// integer codes in [0, order), which keeps design construction allocation-free
// and lets GF(p^m) arithmetic run on exp/log tables.
//
// The package also provides the elementary number theory the paper's
// constructions need: factorization, prime powers, gcd/lcm, the bound
// M(v) = min p_i^{e_i} of Theorem 2, element orders, and subfields.
package algebra

import "fmt"

// GCD returns the greatest common divisor of a and b. GCD(0, 0) = 0.
func GCD(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LCM returns the least common multiple of a and b. LCM(0, x) = 0.
func LCM(a, b int) int {
	if a == 0 || b == 0 {
		return 0
	}
	return a / GCD(a, b) * b
}

// ExtGCD returns (g, x, y) such that a*x + b*y = g = gcd(a, b).
func ExtGCD(a, b int) (g, x, y int) {
	if b == 0 {
		return a, 1, 0
	}
	g, x1, y1 := ExtGCD(b, a%b)
	return g, y1, x1 - (a/b)*y1
}

// PrimePower describes one factor p^e of an integer.
type PrimePower struct {
	P int // prime
	E int // exponent, >= 1
}

// Value returns P^E.
func (pp PrimePower) Value() int {
	v := 1
	for i := 0; i < pp.E; i++ {
		v *= pp.P
	}
	return v
}

// Factorize returns the prime-power factorization of n >= 1 in increasing
// prime order. Factorize(1) returns an empty slice.
func Factorize(n int) []PrimePower {
	if n < 1 {
		panic(fmt.Sprintf("algebra: Factorize(%d): argument must be >= 1", n))
	}
	var fs []PrimePower
	for p := 2; p*p <= n; p++ {
		if n%p == 0 {
			e := 0
			for n%p == 0 {
				n /= p
				e++
			}
			fs = append(fs, PrimePower{P: p, E: e})
		}
	}
	if n > 1 {
		fs = append(fs, PrimePower{P: n, E: 1})
	}
	return fs
}

// IsPrime reports whether n is prime.
func IsPrime(n int) bool {
	if n < 2 {
		return false
	}
	for p := 2; p*p <= n; p++ {
		if n%p == 0 {
			return false
		}
	}
	return true
}

// IsPrimePower reports whether n = p^e for a prime p and e >= 1, and if so
// returns p and e.
func IsPrimePower(n int) (p, e int, ok bool) {
	if n < 2 {
		return 0, 0, false
	}
	fs := Factorize(n)
	if len(fs) != 1 {
		return 0, 0, false
	}
	return fs[0].P, fs[0].E, true
}

// MaxGenerators returns M(v) = min{p_i^{e_i}} over the prime-power
// factorization of v: by Theorem 2 this is the largest k for which a
// ring of order v with k generators (pairwise-invertible differences)
// exists. MaxGenerators(1) = 1 (the trivial ring bound is vacuous; v >= 2
// in all layouts).
func MaxGenerators(v int) int {
	if v < 1 {
		panic(fmt.Sprintf("algebra: MaxGenerators(%d): argument must be >= 1", v))
	}
	if v == 1 {
		return 1
	}
	m := v + 1
	for _, pp := range Factorize(v) {
		if q := pp.Value(); q < m {
			m = q
		}
	}
	return m
}

// PrimePowersUpTo returns all prime powers q with 2 <= q <= n, ascending.
func PrimePowersUpTo(n int) []int {
	var out []int
	for q := 2; q <= n; q++ {
		if _, _, ok := IsPrimePower(q); ok {
			out = append(out, q)
		}
	}
	return out
}

// LargestPrimePowerAtMost returns the largest prime power q <= n, or 0 if
// there is none (n < 2).
func LargestPrimePowerAtMost(n int) int {
	for q := n; q >= 2; q-- {
		if _, _, ok := IsPrimePower(q); ok {
			return q
		}
	}
	return 0
}

// Divisors returns the positive divisors of n >= 1 in increasing order.
func Divisors(n int) []int {
	if n < 1 {
		panic(fmt.Sprintf("algebra: Divisors(%d): argument must be >= 1", n))
	}
	var small, large []int
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			small = append(small, d)
			if d != n/d {
				large = append(large, n/d)
			}
		}
	}
	for i := len(large) - 1; i >= 0; i-- {
		small = append(small, large[i])
	}
	return small
}

// PowMod returns base^exp mod m for exp >= 0, m >= 1.
func PowMod(base, exp, m int) int {
	if m < 1 {
		panic("algebra: PowMod: modulus must be >= 1")
	}
	if exp < 0 {
		panic("algebra: PowMod: negative exponent")
	}
	base %= m
	if base < 0 {
		base += m
	}
	r := 1 % m
	for exp > 0 {
		if exp&1 == 1 {
			r = r * base % m
		}
		base = base * base % m
		exp >>= 1
	}
	return r
}

// EulerPhi returns Euler's totient of n >= 1.
func EulerPhi(n int) int {
	if n < 1 {
		panic(fmt.Sprintf("algebra: EulerPhi(%d): argument must be >= 1", n))
	}
	phi := n
	for _, pp := range Factorize(n) {
		phi = phi / pp.P * (pp.P - 1)
	}
	return phi
}
