package disksim

import (
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

func TestLatencyRecorderPercentiles(t *testing.T) {
	var r LatencyRecorder
	for i := int64(1); i <= 100; i++ {
		r.Record(i)
	}
	cases := []struct {
		p    float64
		want int64
	}{{50, 50}, {95, 95}, {99, 99}, {100, 100}, {1, 1}}
	for _, c := range cases {
		if got := r.Percentile(c.p); got != c.want {
			t.Errorf("P%v = %d, want %d", c.p, got, c.want)
		}
	}
	if r.Mean() != 50.5 {
		t.Errorf("mean = %v, want 50.5", r.Mean())
	}
	if r.Count() != 100 {
		t.Errorf("count = %d", r.Count())
	}
}

func TestLatencyRecorderEmpty(t *testing.T) {
	var r LatencyRecorder
	if r.Percentile(50) != 0 || r.Mean() != 0 || r.Count() != 0 {
		t.Error("empty recorder should report zeros")
	}
}

func TestLatencyRecorderInvalidPercentile(t *testing.T) {
	var r LatencyRecorder
	r.Record(5)
	if r.Percentile(0) != 0 || r.Percentile(101) != 0 {
		t.Error("invalid percentiles should report 0")
	}
}

func TestLatencyRecorderMonotone(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		var r LatencyRecorder
		for _, v := range vals {
			r.Record(int64(v))
		}
		last := int64(0)
		for _, p := range []float64{10, 25, 50, 75, 90, 99, 100} {
			cur := r.Percentile(p)
			if cur < last {
				return false
			}
			last = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLatencyRecorderInterleavedRecordPercentile(t *testing.T) {
	var r LatencyRecorder
	r.Record(10)
	if r.Percentile(50) != 10 {
		t.Error("P50 of single sample")
	}
	r.Record(20) // after a Percentile call: must re-sort
	if got := r.Percentile(100); got != 20 {
		t.Errorf("P100 = %d after late record", got)
	}
}

func TestServeWorkloadRecordsLatencies(t *testing.T) {
	a := declusteredArray(t, 8, 4)
	gen := workload.NewUniform(a.Mapping.DataUnits(), 0.5, 21)
	res, err := a.ServeWorkload(gen, 400, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latencies.Count() != 400 {
		t.Errorf("recorded %d latencies", res.Latencies.Count())
	}
	if res.Latencies.Percentile(100) != res.MaxLatency {
		t.Errorf("P100 %d != max %d", res.Latencies.Percentile(100), res.MaxLatency)
	}
	if res.Latencies.Mean() != res.AvgLatency() {
		t.Errorf("mean %v != avg %v", res.Latencies.Mean(), res.AvgLatency())
	}
}
