package disksim

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/design"
	"repro/internal/workload"
)

func raid5Array(t *testing.T, v, rows int) *Array {
	t.Helper()
	l, err := baseline.RAID5(v, rows)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(l, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func declusteredArray(t *testing.T, v, k int) *Array {
	t.Helper()
	rl, err := core.NewRingLayout(v, k)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(rl.Layout, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestHealthyReadOneUnit(t *testing.T) {
	a := raid5Array(t, 5, 10)
	done, err := a.ReadLogical(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if done != 1 {
		t.Errorf("read latency %d, want 1 service time", done)
	}
	var reads int64
	for _, s := range a.Stats {
		reads += s.Reads
	}
	if reads != 1 {
		t.Errorf("%d reads issued, want 1", reads)
	}
}

func TestSmallWriteFourOps(t *testing.T) {
	a := raid5Array(t, 5, 10)
	done, err := a.WriteLogical(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Read old data + parity in parallel (1 tick), then write both (1 tick).
	if done != 2 {
		t.Errorf("small write latency %d, want 2", done)
	}
	var reads, writes int64
	for _, s := range a.Stats {
		reads += s.Reads
		writes += s.Writes
	}
	if reads != 2 || writes != 2 {
		t.Errorf("reads=%d writes=%d, want 2 and 2", reads, writes)
	}
}

func TestDegradedReadFansOut(t *testing.T) {
	a := raid5Array(t, 5, 10)
	// Find a logical unit on disk 2.
	var logical = -1
	for i := 0; i < a.Mapping.DataUnits(); i++ {
		u, err := a.Mapping.Map(i, a.L.Size)
		if err != nil {
			t.Fatal(err)
		}
		if u.Disk == 2 {
			logical = i
			break
		}
	}
	if logical < 0 {
		t.Fatal("no data unit on disk 2")
	}
	if err := a.Fail(2); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ReadLogical(logical, 0); err != nil {
		t.Fatal(err)
	}
	var reads int64
	for d, s := range a.Stats {
		if d == 2 && s.Reads > 0 {
			t.Error("failed disk was read")
		}
		reads += s.Reads
	}
	if reads != 4 { // k-1 survivors
		t.Errorf("degraded read issued %d reads, want 4", reads)
	}
}

func TestRebuildOfflineRAID5ReadsEverything(t *testing.T) {
	a := raid5Array(t, 5, 20)
	res, err := a.RebuildOffline(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for d := 1; d < 5; d++ {
		if res.PerDiskReads[d] != 20 {
			t.Errorf("disk %d read %d units, want all 20", d, res.PerDiskReads[d])
		}
	}
	if res.SurvivorFraction != 1.0 {
		t.Errorf("survivor fraction %v, want 1.0", res.SurvivorFraction)
	}
}

func TestRebuildOfflineDeclusteredFraction(t *testing.T) {
	// Ring layout (v=9, k=3): rebuild reads exactly (k-1)/(v-1) = 1/4 of
	// each survivor.
	a := declusteredArray(t, 9, 3)
	res, err := a.RebuildOffline(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(3-1) / float64(9-1)
	if res.SurvivorFraction != want {
		t.Errorf("survivor fraction %v, want %v", res.SurvivorFraction, want)
	}
	for d := 0; d < 9; d++ {
		if d == 4 {
			continue
		}
		if got := float64(res.PerDiskReads[d]) / float64(a.L.Size); got != want {
			t.Errorf("disk %d fraction %v, want %v", d, got, want)
		}
	}
}

func TestRebuildDeclusteredBeatsRAID5(t *testing.T) {
	// The headline comparison: same size arrays, declustered rebuild
	// makespan is ~ (k-1)/(v-1) of RAID5's.
	v := 9
	rl, err := core.NewRingLayout(v, 3)
	if err != nil {
		t.Fatal(err)
	}
	r5, err := baseline.RAID5(v, rl.Size)
	if err != nil {
		t.Fatal(err)
	}
	ad, err := New(rl.Layout, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ar, err := New(r5, Config{})
	if err != nil {
		t.Fatal(err)
	}
	dres, err := ad.RebuildOffline(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rres, err := ar.RebuildOffline(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dres.Makespan*3 > rres.Makespan {
		t.Errorf("declustered makespan %d vs RAID5 %d: expected ~4x speedup", dres.Makespan, rres.Makespan)
	}
}

func TestServeWorkloadHealthy(t *testing.T) {
	a := declusteredArray(t, 8, 4)
	gen := workload.NewUniform(a.Mapping.DataUnits(), 0.5, 11)
	res, err := a.ServeWorkload(gen, 500, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 500 || res.AvgLatency() < 1 {
		t.Errorf("ops=%d avg=%v", res.Ops, res.AvgLatency())
	}
	if res.MaxLatency < 1 || res.Completion <= 0 {
		t.Errorf("max=%d completion=%d", res.MaxLatency, res.Completion)
	}
}

func TestDegradedModeCostsMoreIO(t *testing.T) {
	healthy := declusteredArray(t, 8, 4)
	gen1 := workload.NewUniform(healthy.Mapping.DataUnits(), 0, 13)
	hres, err := healthy.ServeWorkload(gen1, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	degraded := declusteredArray(t, 8, 4)
	if err := degraded.Fail(3); err != nil {
		t.Fatal(err)
	}
	gen2 := workload.NewUniform(degraded.Mapping.DataUnits(), 0, 13)
	dres, err := degraded.ServeWorkload(gen2, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	sum := func(a *Array) int64 {
		var n int64
		for _, s := range a.Stats {
			n += s.Reads
		}
		return n
	}
	// Reads on the failed disk fan out to k-1 survivors: strictly more I/O.
	if sum(degraded) <= sum(healthy) {
		t.Errorf("degraded issued %d reads, healthy %d: expected amplification", sum(degraded), sum(healthy))
	}
	if dres.AvgLatency() < hres.AvgLatency() {
		t.Errorf("degraded avg %v below healthy %v", dres.AvgLatency(), hres.AvgLatency())
	}
}

func TestDegradedModeSlowerUnderSaturation(t *testing.T) {
	// At full utilization the extra degraded I/O must show up as queueing
	// delay: service 8 ticks, one op per tick over 8 disks.
	mk := func(fail int) float64 {
		rl, err := core.NewRingLayout(8, 4)
		if err != nil {
			t.Fatal(err)
		}
		a, err := New(rl.Layout, Config{ServiceTime: 8})
		if err != nil {
			t.Fatal(err)
		}
		if fail >= 0 {
			if err := a.Fail(fail); err != nil {
				t.Fatal(err)
			}
		}
		gen := workload.NewUniform(a.Mapping.DataUnits(), 0, 13)
		res, err := a.ServeWorkload(gen, 3000, 1)
		if err != nil {
			t.Fatal(err)
		}
		return res.AvgLatency()
	}
	healthy := mk(-1)
	degraded := mk(3)
	if degraded <= healthy {
		t.Errorf("degraded avg %v not above healthy %v under saturation", degraded, healthy)
	}
}

func TestRebuildOnline(t *testing.T) {
	a := declusteredArray(t, 9, 3)
	gen := workload.NewUniform(a.Mapping.DataUnits(), 0.3, 17)
	cres, rres, err := a.RebuildOnline(gen, 300, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rres.MaxSurvivorReads == 0 {
		t.Error("no rebuild reads issued")
	}
	want := float64(2) / float64(8)
	if rres.SurvivorFraction != want {
		t.Errorf("survivor fraction %v, want %v", rres.SurvivorFraction, want)
	}
	if cres.Ops != 300 {
		t.Errorf("client ops %d", cres.Ops)
	}
	if rres.PerDiskReads[2] != 0 {
		t.Error("rebuild read the failed disk")
	}
}

func TestParityContentionBalancedVsSkewed(t *testing.T) {
	// A layout with all parity on one disk must show higher max write
	// contention than a balanced one.
	d := design.FromDifferenceSet(7, []int{1, 2, 4})
	balanced, err := core.FromDesignSingle(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.BalanceParity(balanced); err != nil {
		t.Fatal(err)
	}
	skewed, err := core.FromDesignSingle(d)
	if err != nil {
		t.Fatal(err)
	}
	// Put every parity unit on the unit whose disk is smallest in stripe:
	// concentrates parity heavily.
	for i := range skewed.Stripes {
		best := 0
		for j, u := range skewed.Stripes[i].Units {
			if u.Disk < skewed.Stripes[i].Units[best].Disk {
				best = j
			}
		}
		skewed.Stripes[i].Parity = best
	}
	ab, err := New(balanced, Config{})
	if err != nil {
		t.Fatal(err)
	}
	as, err := New(skewed, Config{})
	if err != nil {
		t.Fatal(err)
	}
	n := 3000
	maxB, meanB, err := ab.ParityContention(workload.NewUniform(ab.Mapping.DataUnits(), 1, 29), n)
	if err != nil {
		t.Fatal(err)
	}
	maxS, meanS, err := as.ParityContention(workload.NewUniform(as.Mapping.DataUnits(), 1, 29), n)
	if err != nil {
		t.Fatal(err)
	}
	if maxS <= maxB {
		t.Errorf("skewed max writes %d not above balanced %d (means %v vs %v)", maxS, maxB, meanS, meanB)
	}
}

func TestFailValidation(t *testing.T) {
	a := raid5Array(t, 4, 4)
	if err := a.Fail(9); err == nil {
		t.Error("bad disk accepted")
	}
	if _, err := a.RebuildOffline(-1, 0); err == nil {
		t.Error("bad rebuild disk accepted")
	}
}

func TestResetClearsState(t *testing.T) {
	a := raid5Array(t, 4, 4)
	if _, err := a.WriteLogical(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Fail(1); err != nil {
		t.Fatal(err)
	}
	a.Reset()
	if a.Failed != -1 {
		t.Error("Failed not reset")
	}
	for d, s := range a.Stats {
		if s.Reads != 0 || s.Writes != 0 || s.BusyTime != 0 {
			t.Errorf("disk %d stats not reset: %+v", d, s)
		}
	}
}

func TestNewRequiresParity(t *testing.T) {
	d := design.FromDifferenceSet(7, []int{1, 2, 4})
	l, err := core.FromDesignSingle(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(l, Config{}); err == nil {
		t.Error("layout without parity accepted")
	}
}

func TestServiceTimeScales(t *testing.T) {
	l, err := baseline.RAID5(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(l, Config{ServiceTime: 5})
	if err != nil {
		t.Fatal(err)
	}
	done, err := a.ReadLogical(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if done != 5 {
		t.Errorf("latency %d, want 5", done)
	}
}
