package disksim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func seekArray(t *testing.T, seek *SeekParams) *Array {
	t.Helper()
	rl, err := core.NewRingLayout(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(rl.Layout, Config{ServiceTime: 1, Seek: seek})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestSeekModelSequentialCheaperThanRandom(t *testing.T) {
	seek := &SeekParams{Base: 2, PerUnit: 1}
	seq := seekArray(t, seek)
	n := seq.Mapping.DataUnits()
	sres, err := seq.ServeWorkload(workload.NewSequential(n, workload.Read), 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	rnd := seekArray(t, seek)
	rres, err := rnd.ServeWorkload(workload.NewUniform(n, 0, 3), 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	var seqBusy, rndBusy int64
	for d := range seq.Stats {
		seqBusy += seq.Stats[d].BusyTime
		rndBusy += rnd.Stats[d].BusyTime
	}
	if seqBusy >= rndBusy {
		t.Errorf("sequential busy %d not below random busy %d under seek model", seqBusy, rndBusy)
	}
	_ = sres
	_ = rres
}

func TestConstantModelIgnoresOffsets(t *testing.T) {
	seq := seekArray(t, nil)
	n := seq.Mapping.DataUnits()
	if _, err := seq.ServeWorkload(workload.NewSequential(n, workload.Read), 300, 1); err != nil {
		t.Fatal(err)
	}
	rnd := seekArray(t, nil)
	if _, err := rnd.ServeWorkload(workload.NewUniform(n, 0, 3), 300, 1); err != nil {
		t.Fatal(err)
	}
	var seqBusy, rndBusy int64
	for d := range seq.Stats {
		seqBusy += seq.Stats[d].BusyTime
		rndBusy += rnd.Stats[d].BusyTime
	}
	if seqBusy != rndBusy {
		t.Errorf("constant model: busy differs (%d vs %d) for equal op counts", seqBusy, rndBusy)
	}
}

func TestSeekModelHeadTracking(t *testing.T) {
	a := seekArray(t, &SeekParams{Base: 0, PerUnit: 1})
	// Two reads at the same offset: second has zero seek distance.
	u, err := a.Mapping.Map(0, a.L.Size)
	if err != nil {
		t.Fatal(err)
	}
	f1 := a.issueAt(u.Disk, u.Offset, 0, false)
	f2 := a.issueAt(u.Disk, u.Offset, f1, false)
	if f2-f1 != 1 { // service only, no seek
		t.Errorf("repeat access cost %d, want 1", f2-f1)
	}
	// A far access pays distance.
	f3 := a.issueAt(u.Disk, u.Offset+10, f2, false)
	if f3-f2 != 11 {
		t.Errorf("far access cost %d, want 11", f3-f2)
	}
}

func TestSeekModelRebuildStillCorrectFractions(t *testing.T) {
	a := seekArray(t, &SeekParams{Base: 1, PerUnit: 0.5})
	res, err := a.RebuildOffline(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(2) / float64(8)
	if res.SurvivorFraction != want {
		t.Errorf("fraction %v, want %v (seek model must not change read counts)", res.SurvivorFraction, want)
	}
}
