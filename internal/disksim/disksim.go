// Package disksim is a compatibility shim over the public pdl/sim
// disk-array simulator. The engine itself — plan compilation via
// pdl/plan and timestamp-propagation execution — lives in repro/pdl/sim;
// this package re-exports it so internal callers and the original
// simulator test suite (which doubles as an equivalence check for the
// plan-based engine) keep compiling unchanged. New code should use
// repro/pdl/sim directly.
package disksim

import (
	"repro/pdl/layout"
	"repro/pdl/sim"
)

// Config parametrizes the array model.
type Config = sim.Config

// SeekParams describes the optional seek-distance cost model.
type SeekParams = sim.SeekParams

// DiskStats accumulates per-disk counters.
type DiskStats = sim.DiskStats

// RebuildResult reports an offline reconstruction.
type RebuildResult = sim.RebuildResult

// WorkloadResult reports a served client workload.
type WorkloadResult = sim.WorkloadResult

// LatencyRecorder accumulates operation latencies and reports percentiles.
type LatencyRecorder = sim.LatencyRecorder

// Array simulates a disk array under a layout. It wraps sim.Array, which
// executes pdl/plan plans for every operation.
type Array struct {
	*sim.Array
}

// New builds a simulator for a layout with assigned parity.
func New(l *layout.Layout, cfg Config) (*Array, error) {
	a, err := sim.New(l, cfg)
	if err != nil {
		return nil, err
	}
	return &Array{a}, nil
}

// issueAt preserves the historical name of the scheduling primitive for
// the in-package test suite.
func (a *Array) issueAt(disk, offset int, t int64, write bool) int64 {
	return a.Issue(disk, offset, t, write)
}

// stripeOf returns the stripe covering a physical unit.
func (a *Array) stripeOf(u layout.Unit) *layout.Stripe {
	return &a.L.Stripes[a.Mapping.StripeAt(u)]
}
