// Package disksim is an event-driven multi-disk array simulator, the
// substitute for the Holland–Gibson raidSim testbed the paper's planned
// experiments use. It models each disk as a serial server with a fixed
// per-unit service time, drives it with client workloads and
// reconstruction traffic, and reports the metrics the paper's layout
// conditions govern: per-disk rebuild read counts, rebuild makespan,
// degraded-mode costs, and parity-update contention.
//
// The time model is timestamp propagation: a request issued at time t to
// disk d starts at max(t, d.busyUntil) and occupies the disk for
// ServiceTime ticks. Dependencies (a small write's parity write waits for
// its two reads) propagate completion times. This is a deterministic,
// work-conserving approximation of a FIFO disk queue — sufficient for the
// relative comparisons the paper makes (who wins and by what factor), not
// for absolute latency calibration.
package disksim

import (
	"fmt"

	"repro/internal/workload"
	"repro/pdl/layout"
)

// Config parametrizes the array model.
type Config struct {
	// ServiceTime is ticks per unit read or write. Default 1.
	ServiceTime int64
	// Seek, when non-nil, adds a positioning cost on top of ServiceTime:
	// Base + PerUnit * |offset - head| ticks, with the head left at the
	// request's offset. This is the seek-aware ablation model; nil keeps
	// the constant-service model.
	Seek *SeekParams
	// Copies tiles the layout vertically: each disk holds Copies * Size
	// units (the paper's multiple-copies-for-larger-disks deployment).
	// Default 1.
	Copies int
}

// SeekParams describes the optional seek-distance cost model.
type SeekParams struct {
	Base    int64
	PerUnit float64
}

// DiskStats accumulates per-disk counters.
type DiskStats struct {
	Reads, Writes int64
	BusyTime      int64
}

// Array simulates a disk array under a layout.
type Array struct {
	L       *layout.Layout
	Mapping *layout.Mapping
	cfg     Config
	// busyUntil per disk.
	busyUntil []int64
	// head tracks each disk's last serviced offset (seek model).
	head  []int
	Stats []DiskStats
	// Failed marks a failed disk (-1 = healthy array).
	Failed int
}

// New builds a simulator for a layout with assigned parity.
func New(l *layout.Layout, cfg Config) (*Array, error) {
	m, err := layout.NewMapping(l)
	if err != nil {
		return nil, err
	}
	if cfg.ServiceTime <= 0 {
		cfg.ServiceTime = 1
	}
	if cfg.Copies <= 0 {
		cfg.Copies = 1
	}
	return &Array{
		L:         l,
		Mapping:   m,
		cfg:       cfg,
		busyUntil: make([]int64, l.V),
		head:      make([]int, l.V),
		Stats:     make([]DiskStats, l.V),
		Failed:    -1,
	}, nil
}

// Reset clears disk state and statistics.
func (a *Array) Reset() {
	for i := range a.busyUntil {
		a.busyUntil[i] = 0
		a.head[i] = 0
		a.Stats[i] = DiskStats{}
	}
	a.Failed = -1
}

// Fail marks a disk as failed; subsequent reads of its units go degraded.
func (a *Array) Fail(disk int) error {
	if disk < 0 || disk >= a.L.V {
		return fmt.Errorf("disksim: Fail(%d): disk out of range", disk)
	}
	a.Failed = disk
	return nil
}

// issueAt schedules one unit operation at a specific offset of a disk at
// earliest time t and returns its completion time, applying the seek
// model when configured.
func (a *Array) issueAt(disk, offset int, t int64, write bool) int64 {
	start := t
	if a.busyUntil[disk] > start {
		start = a.busyUntil[disk]
	}
	service := a.cfg.ServiceTime
	if a.cfg.Seek != nil {
		dist := offset - a.head[disk]
		if dist < 0 {
			dist = -dist
		}
		service += a.cfg.Seek.Base + int64(a.cfg.Seek.PerUnit*float64(dist))
		a.head[disk] = offset
	}
	finish := start + service
	a.busyUntil[disk] = finish
	if write {
		a.Stats[disk].Writes++
	} else {
		a.Stats[disk].Reads++
	}
	a.Stats[disk].BusyTime += service
	return finish
}

// issue schedules a unit operation when only the disk matters (constant
// model callers that track units pass offsets via issueAt).
func (a *Array) issue(disk int, t int64, write bool) int64 {
	return a.issueAt(disk, a.head[disk], t, write)
}

// stripeOf returns the stripe covering a physical unit.
func (a *Array) stripeOf(u layout.Unit) *layout.Stripe {
	return &a.L.Stripes[a.Mapping.StripeAt(u)]
}

// DiskUnits returns the simulated per-disk capacity in units.
func (a *Array) DiskUnits() int { return a.L.Size * a.cfg.Copies }

// DataUnits returns the logical data capacity across all copies.
func (a *Array) DataUnits() int { return a.Mapping.DataUnits() * a.cfg.Copies }

// inCopy translates a copy-0 stripe unit into the copy containing offset.
func (a *Array) inCopy(u layout.Unit, offset int) layout.Unit {
	copyIdx := offset / a.L.Size
	return layout.Unit{Disk: u.Disk, Offset: u.Offset%a.L.Size + copyIdx*a.L.Size}
}

// ReadLogical simulates a client read arriving at time t and returns its
// completion time. Healthy path: one unit read. Degraded path (unit on the
// failed disk): read every surviving unit of the stripe (XOR
// reconstruction on the fly).
func (a *Array) ReadLogical(logical int, t int64) (int64, error) {
	u, err := a.Mapping.Map(logical, a.DiskUnits())
	if err != nil {
		return 0, err
	}
	if u.Disk != a.Failed {
		return a.issueAt(u.Disk, u.Offset, t, false), nil
	}
	s := a.stripeOf(u)
	var done int64
	for _, su := range s.Units {
		if su.Disk == a.Failed {
			continue
		}
		cu := a.inCopy(su, u.Offset)
		if f := a.issueAt(cu.Disk, cu.Offset, t, false); f > done {
			done = f
		}
	}
	return done, nil
}

// WriteLogical simulates a client small write arriving at time t: read old
// data and old parity, then write new data and new parity (the Figure 1
// read-modify-write). Degraded variants:
//   - data disk failed: reconstruct-write — read surviving data units of
//     the stripe, then write parity only;
//   - parity disk failed: write data only.
//
// Returns the completion time.
func (a *Array) WriteLogical(logical int, t int64) (int64, error) {
	u, err := a.Mapping.Map(logical, a.DiskUnits())
	if err != nil {
		return 0, err
	}
	s := a.stripeOf(u)
	spu, ok := s.ParityUnit()
	if !ok {
		return 0, fmt.Errorf("disksim: WriteLogical: stripe has no assigned parity")
	}
	pu := a.inCopy(spu, u.Offset)
	switch {
	case u.Disk == a.Failed:
		// Reconstruct-write: read all surviving data units, write parity.
		var ready int64 = t
		for _, su := range s.Units {
			cu := a.inCopy(su, u.Offset)
			if cu.Disk == a.Failed || cu == pu {
				continue
			}
			if f := a.issueAt(cu.Disk, cu.Offset, t, false); f > ready {
				ready = f
			}
		}
		if pu.Disk == a.Failed {
			return ready, nil // both gone: nothing persistent to update
		}
		return a.issueAt(pu.Disk, pu.Offset, ready, true), nil
	case pu.Disk == a.Failed:
		return a.issueAt(u.Disk, u.Offset, t, true), nil
	default:
		rd := a.issueAt(u.Disk, u.Offset, t, false)
		rp := a.issueAt(pu.Disk, pu.Offset, t, false)
		ready := rd
		if rp > ready {
			ready = rp
		}
		wd := a.issueAt(u.Disk, u.Offset, ready, true)
		wp := a.issueAt(pu.Disk, pu.Offset, ready, true)
		if wp > wd {
			return wp, nil
		}
		return wd, nil
	}
}

// WriteFullStripe simulates a large write covering every data unit of the
// stripe holding `logical` (the Condition 5 "Large Write Optimization"):
// parity is computed from the new data alone, so the stripe's k units are
// written with NO pre-reads — k writes vs 4 ops per unit for small
// writes. Returns the completion time.
func (a *Array) WriteFullStripe(logical int, t int64) (int64, error) {
	u, err := a.Mapping.Map(logical, a.DiskUnits())
	if err != nil {
		return 0, err
	}
	s := a.stripeOf(u)
	var done int64
	for _, su := range s.Units {
		cu := a.inCopy(su, u.Offset)
		if cu.Disk == a.Failed {
			continue
		}
		if f := a.issueAt(cu.Disk, cu.Offset, t, true); f > done {
			done = f
		}
	}
	return done, nil
}

// RebuildResult reports an offline reconstruction.
type RebuildResult struct {
	Failed       int
	PerDiskReads []int64
	// MaxSurvivorReads is the bottleneck read count (determines rebuild
	// time when disks run in parallel).
	MaxSurvivorReads int64
	// SurvivorFraction is the bottleneck fraction of a surviving disk read.
	SurvivorFraction float64
	// Makespan is the simulated completion time.
	Makespan int64
}

// RebuildOffline simulates reconstructing a failed disk with no competing
// traffic: every stripe crossing the failed disk reads all its surviving
// units (writes to the replacement disk are not modeled — the paper's
// metric is survivor read load).
func (a *Array) RebuildOffline(failed int, start int64) (RebuildResult, error) {
	if failed < 0 || failed >= a.L.V {
		return RebuildResult{}, fmt.Errorf("disksim: RebuildOffline(%d): disk out of range", failed)
	}
	res := RebuildResult{Failed: failed, PerDiskReads: make([]int64, a.L.V)}
	var makespan int64
	for c := 0; c < a.cfg.Copies; c++ {
		base := c * a.L.Size
		for si := range a.L.Stripes {
			s := &a.L.Stripes[si]
			crosses := false
			for _, u := range s.Units {
				if u.Disk == failed {
					crosses = true
					break
				}
			}
			if !crosses {
				continue
			}
			for _, u := range s.Units {
				if u.Disk == failed {
					continue
				}
				res.PerDiskReads[u.Disk]++
				if f := a.issueAt(u.Disk, u.Offset+base, start, false); f > makespan {
					makespan = f
				}
			}
		}
	}
	for d, r := range res.PerDiskReads {
		if d != failed && r > res.MaxSurvivorReads {
			res.MaxSurvivorReads = r
		}
	}
	res.SurvivorFraction = float64(res.MaxSurvivorReads) / float64(a.DiskUnits())
	res.Makespan = makespan - start
	return res, nil
}

// WorkloadResult reports a served client workload.
type WorkloadResult struct {
	Ops          int
	TotalLatency int64
	MaxLatency   int64
	// Completion is the time the last operation finished.
	Completion int64
	// PerDiskBusy is each disk's total busy time.
	PerDiskBusy []int64
	// Latencies holds every operation latency for percentile reporting.
	Latencies *LatencyRecorder
}

// AvgLatency returns mean operation latency in ticks.
func (r WorkloadResult) AvgLatency() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.TotalLatency) / float64(r.Ops)
}

// ServeWorkload issues n operations from gen, one every interArrival
// ticks, and reports latency statistics. Run Fail beforehand to measure
// degraded mode.
func (a *Array) ServeWorkload(gen workload.Generator, n int, interArrival int64) (WorkloadResult, error) {
	res := WorkloadResult{Ops: n, PerDiskBusy: make([]int64, a.L.V), Latencies: &LatencyRecorder{}}
	var t int64
	for i := 0; i < n; i++ {
		op := gen.Next()
		var done int64
		var err error
		switch op.Kind {
		case workload.Read:
			done, err = a.ReadLogical(op.Logical, t)
		case workload.Write:
			done, err = a.WriteLogical(op.Logical, t)
		}
		if err != nil {
			return res, err
		}
		lat := done - t
		res.Latencies.Record(lat)
		res.TotalLatency += lat
		if lat > res.MaxLatency {
			res.MaxLatency = lat
		}
		if done > res.Completion {
			res.Completion = done
		}
		t += interArrival
	}
	for d := range res.PerDiskBusy {
		res.PerDiskBusy[d] = a.Stats[d].BusyTime
	}
	return res, nil
}

// RebuildOnline simulates reconstruction competing with a client workload:
// client ops arrive every interArrival ticks while rebuild reads for the
// failed disk are issued in the gaps (one stripe per client op, round
// robin), modeling a rebuild throttled to client activity. Returns the
// client result and the rebuild result.
func (a *Array) RebuildOnline(gen workload.Generator, nOps int, interArrival int64, failed int) (WorkloadResult, RebuildResult, error) {
	if err := a.Fail(failed); err != nil {
		return WorkloadResult{}, RebuildResult{}, err
	}
	// Collect stripes crossing the failed disk, once per layout copy.
	type rbs struct{ stripe, base int }
	var rebuildStripes []rbs
	for c := 0; c < a.cfg.Copies; c++ {
		for si := range a.L.Stripes {
			for _, u := range a.L.Stripes[si].Units {
				if u.Disk == failed {
					rebuildStripes = append(rebuildStripes, rbs{si, c * a.L.Size})
					break
				}
			}
		}
	}
	cres := WorkloadResult{Ops: nOps, PerDiskBusy: make([]int64, a.L.V), Latencies: &LatencyRecorder{}}
	rres := RebuildResult{Failed: failed, PerDiskReads: make([]int64, a.L.V)}
	var t int64
	nextStripe := 0
	var rebuildDone int64
	for i := 0; i < nOps; i++ {
		op := gen.Next()
		var done int64
		var err error
		switch op.Kind {
		case workload.Read:
			done, err = a.ReadLogical(op.Logical, t)
		case workload.Write:
			done, err = a.WriteLogical(op.Logical, t)
		}
		if err != nil {
			return cres, rres, err
		}
		lat := done - t
		cres.Latencies.Record(lat)
		cres.TotalLatency += lat
		if lat > cres.MaxLatency {
			cres.MaxLatency = lat
		}
		if done > cres.Completion {
			cres.Completion = done
		}
		// Issue one rebuild stripe in the gap.
		if nextStripe < len(rebuildStripes) {
			rb := rebuildStripes[nextStripe]
			s := &a.L.Stripes[rb.stripe]
			nextStripe++
			for _, u := range s.Units {
				if u.Disk == failed {
					continue
				}
				rres.PerDiskReads[u.Disk]++
				if f := a.issueAt(u.Disk, u.Offset+rb.base, t, false); f > rebuildDone {
					rebuildDone = f
				}
			}
		}
		t += interArrival
	}
	// Drain remaining rebuild stripes.
	for ; nextStripe < len(rebuildStripes); nextStripe++ {
		rb := rebuildStripes[nextStripe]
		s := &a.L.Stripes[rb.stripe]
		for _, u := range s.Units {
			if u.Disk == failed {
				continue
			}
			rres.PerDiskReads[u.Disk]++
			if f := a.issueAt(u.Disk, u.Offset+rb.base, t, false); f > rebuildDone {
				rebuildDone = f
			}
		}
	}
	for d, r := range rres.PerDiskReads {
		if d != failed && r > rres.MaxSurvivorReads {
			rres.MaxSurvivorReads = r
		}
	}
	rres.SurvivorFraction = float64(rres.MaxSurvivorReads) / float64(a.DiskUnits())
	rres.Makespan = rebuildDone
	for d := range cres.PerDiskBusy {
		cres.PerDiskBusy[d] = a.Stats[d].BusyTime
	}
	return cres, rres, nil
}

// ParityContention serves a pure small-write workload and returns the
// maximum and mean per-disk write counts — the Condition 2 bottleneck
// measure: disks holding more parity absorb more parity-update writes.
func (a *Array) ParityContention(gen workload.Generator, n int) (maxWrites int64, meanWrites float64, err error) {
	if _, err := a.ServeWorkload(gen, n, 1); err != nil {
		return 0, 0, err
	}
	var total int64
	for d := range a.Stats {
		w := a.Stats[d].Writes
		total += w
		if w > maxWrites {
			maxWrites = w
		}
	}
	return maxWrites, float64(total) / float64(a.L.V), nil
}
