package disksim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func copiesArray(t *testing.T, copies int) *Array {
	t.Helper()
	rl, err := core.NewRingLayout(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(rl.Layout, Config{Copies: copies})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestCopiesCapacity(t *testing.T) {
	a := copiesArray(t, 4)
	if a.DiskUnits() != 4*a.L.Size {
		t.Errorf("DiskUnits = %d", a.DiskUnits())
	}
	if a.DataUnits() != 4*a.Mapping.DataUnits() {
		t.Errorf("DataUnits = %d", a.DataUnits())
	}
}

func TestCopiesAddressesReachable(t *testing.T) {
	a := copiesArray(t, 3)
	// Highest logical address in the last copy must be servable.
	last := a.DataUnits() - 1
	if _, err := a.ReadLogical(last, 0); err != nil {
		t.Fatalf("read of last logical unit: %v", err)
	}
	if _, err := a.WriteLogical(last, 0); err != nil {
		t.Fatalf("write of last logical unit: %v", err)
	}
	if _, err := a.ReadLogical(a.DataUnits(), 0); err == nil {
		t.Error("out-of-capacity address accepted")
	}
}

func TestCopiesRebuildScales(t *testing.T) {
	one := copiesArray(t, 1)
	four := copiesArray(t, 4)
	r1, err := one.RebuildOffline(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := four.RebuildOffline(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 4x the units to read, same per-disk fraction.
	if r4.MaxSurvivorReads != 4*r1.MaxSurvivorReads {
		t.Errorf("reads %d vs 4*%d", r4.MaxSurvivorReads, r1.MaxSurvivorReads)
	}
	if r4.SurvivorFraction != r1.SurvivorFraction {
		t.Errorf("fractions differ: %v vs %v", r4.SurvivorFraction, r1.SurvivorFraction)
	}
}

func TestCopiesDegradedWriteParityInSameCopy(t *testing.T) {
	a := copiesArray(t, 2)
	// Write in copy 1 must touch offsets >= Size only.
	logical := a.Mapping.DataUnits() // first unit of copy 1
	if _, err := a.WriteLogical(logical, 0); err != nil {
		t.Fatal(err)
	}
	// All activity so far must be in copy 1's offset range; verify via the
	// seek heads (heads move only on seek model) — instead check stats:
	// exactly 2 reads and 2 writes were issued.
	var reads, writes int64
	for _, s := range a.Stats {
		reads += s.Reads
		writes += s.Writes
	}
	if reads != 2 || writes != 2 {
		t.Errorf("reads=%d writes=%d", reads, writes)
	}
}

func TestCopiesOnlineRebuild(t *testing.T) {
	a := copiesArray(t, 2)
	gen := workload.NewUniform(a.DataUnits(), 0.2, 5)
	_, rres, err := a.RebuildOnline(gen, 200, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(2) / float64(8)
	if rres.SurvivorFraction != want {
		t.Errorf("survivor fraction %v, want %v", rres.SurvivorFraction, want)
	}
}
