package disksim

import "testing"

func TestWriteFullStripeNoReads(t *testing.T) {
	a := declusteredArray(t, 9, 3)
	done, err := a.WriteFullStripe(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if done != 1 { // k parallel writes, 1 service tick
		t.Errorf("full-stripe write latency %d, want 1", done)
	}
	var reads, writes int64
	for _, s := range a.Stats {
		reads += s.Reads
		writes += s.Writes
	}
	if reads != 0 {
		t.Errorf("full-stripe write issued %d reads, want 0", reads)
	}
	if writes != 3 { // k units
		t.Errorf("full-stripe write issued %d writes, want 3", writes)
	}
}

func TestWriteFullStripeCheaperThanSmallWrites(t *testing.T) {
	// Writing a whole stripe via k-1 small writes costs 4(k-1) ops;
	// the large-write path costs k.
	small := declusteredArray(t, 9, 3)
	if _, err := small.WriteLogical(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := small.WriteLogical(1, 2); err != nil {
		t.Fatal(err)
	}
	large := declusteredArray(t, 9, 3)
	if _, err := large.WriteFullStripe(0, 0); err != nil {
		t.Fatal(err)
	}
	ops := func(a *Array) int64 {
		var n int64
		for _, s := range a.Stats {
			n += s.Reads + s.Writes
		}
		return n
	}
	if ops(large) >= ops(small) {
		t.Errorf("large write ops %d not below small-write ops %d", ops(large), ops(small))
	}
}

func TestWriteFullStripeDegradedSkipsFailed(t *testing.T) {
	a := declusteredArray(t, 9, 3)
	if err := a.Fail(0); err != nil {
		t.Fatal(err)
	}
	// Find a stripe crossing disk 0.
	var logical = -1
	for i := 0; i < a.Mapping.DataUnits(); i++ {
		u, err := a.Mapping.Map(i, a.L.Size)
		if err != nil {
			t.Fatal(err)
		}
		s := a.stripeOf(u)
		for _, su := range s.Units {
			if su.Disk == 0 {
				logical = i
				break
			}
		}
		if logical >= 0 {
			break
		}
	}
	if logical < 0 {
		t.Fatal("no stripe crossing disk 0")
	}
	if _, err := a.WriteFullStripe(logical, 0); err != nil {
		t.Fatal(err)
	}
	if a.Stats[0].Writes != 0 {
		t.Error("wrote to the failed disk")
	}
	var writes int64
	for _, s := range a.Stats {
		writes += s.Writes
	}
	if writes != 2 { // k-1 survivors
		t.Errorf("degraded full-stripe writes %d, want 2", writes)
	}
}

func TestWriteFullStripeBadAddress(t *testing.T) {
	a := declusteredArray(t, 9, 3)
	if _, err := a.WriteFullStripe(-1, 0); err == nil {
		t.Error("bad address accepted")
	}
}
