package disksim

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
	"repro/pdl/layout"
)

// End-to-end integration: drive the same workload through the timing
// simulator AND the byte-accurate data engine, then fail a disk and prove
// (a) the timing model charged degraded costs and (b) the data engine
// returns correct bytes for every degraded read.
func TestIntegrationTimingAndBytesAgree(t *testing.T) {
	rl, err := core.NewRingLayout(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(rl.Layout, Config{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := layout.NewData(rl.Layout, 8)
	if err != nil {
		t.Fatal(err)
	}
	n := data.Mapping().DataUnits()
	gen := workload.NewUniform(n, 0.4, 77)
	mirror := make(map[int][]byte)
	var tick int64
	for i := 0; i < 800; i++ {
		op := gen.Next()
		switch op.Kind {
		case workload.Read:
			if _, err := sim.ReadLogical(op.Logical, tick); err != nil {
				t.Fatal(err)
			}
			got, err := data.ReadLogical(op.Logical)
			if err != nil {
				t.Fatal(err)
			}
			want, ok := mirror[op.Logical]
			if !ok {
				want = make([]byte, 8)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("op %d: read mismatch at logical %d", i, op.Logical)
			}
		case workload.Write:
			if _, err := sim.WriteLogical(op.Logical, tick); err != nil {
				t.Fatal(err)
			}
			payload := make([]byte, 8)
			for j := range payload {
				payload[j] = byte(i + j)
			}
			if err := data.WriteLogical(op.Logical, payload); err != nil {
				t.Fatal(err)
			}
			mirror[op.Logical] = payload
		}
		tick += 2
	}
	if err := data.VerifyParity(); err != nil {
		t.Fatal(err)
	}

	// Fail a disk: degraded reads must return the same bytes the mirror
	// predicts, and the simulator must charge fan-out reads.
	const failed = 3
	if err := sim.Fail(failed); err != nil {
		t.Fatal(err)
	}
	preReads := int64(0)
	for _, s := range sim.Stats {
		preReads += s.Reads
	}
	checked := 0
	for logical := 0; logical < n && checked < 50; logical++ {
		u, err := data.Mapping().Map(logical, rl.Size)
		if err != nil {
			t.Fatal(err)
		}
		if u.Disk != failed {
			continue
		}
		checked++
		got, err := data.DegradedRead(logical, failed)
		if err != nil {
			t.Fatal(err)
		}
		want, ok := mirror[logical]
		if !ok {
			want = make([]byte, 8)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("degraded read mismatch at logical %d", logical)
		}
		if _, err := sim.ReadLogical(logical, tick); err != nil {
			t.Fatal(err)
		}
		tick++
	}
	if checked == 0 {
		t.Fatal("no data units on the failed disk")
	}
	postReads := int64(0)
	for _, s := range sim.Stats {
		postReads += s.Reads
	}
	// Each degraded read charges k-1 = 2 survivor reads.
	if postReads-preReads != int64(2*checked) {
		t.Errorf("degraded reads charged %d survivor ops, want %d", postReads-preReads, 2*checked)
	}
	// Full rebuild must reproduce the failed disk byte-exactly.
	rebuilt, err := data.ReconstructDisk(failed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rebuilt, data.DiskContents(failed)) {
		t.Fatal("rebuild mismatch after workload")
	}
}
