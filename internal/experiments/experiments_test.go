package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestAllQuick(t *testing.T) {
	tables, err := All(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 21 {
		t.Fatalf("%d experiments ran, want 21", len(tables))
	}
	seen := map[string]bool{}
	for _, tb := range tables {
		if tb.ID == "" || tb.Title == "" {
			t.Errorf("experiment missing identity: %+v", tb)
		}
		if seen[tb.ID] {
			t.Errorf("duplicate experiment id %s", tb.ID)
		}
		seen[tb.ID] = true
		if len(tb.Rows) == 0 {
			t.Errorf("%s: no rows", tb.ID)
		}
		out := tb.String()
		if !strings.Contains(out, tb.ID) {
			t.Errorf("%s: render missing id", tb.ID)
		}
	}
	for _, id := range []string{"F1", "F2", "F3", "F4", "F5", "F6", "F7", "T1", "T2", "T3", "T4", "T5", "T6", "T7", "S1", "S2", "E1", "E2", "E3", "E4", "E5"} {
		if !seen[id] {
			t.Errorf("experiment %s missing", id)
		}
	}
}

func TestAllFullScale(t *testing.T) {
	// The full paper-scale parameters (v <= 10,000 coverage, the larger
	// sweeps, 10k Monte Carlo trials) take ~15s; skip under -short.
	if testing.Short() {
		t.Skip("full-scale experiments skipped in short mode")
	}
	tables, err := All(false)
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Errorf("%s: no rows at full scale", tb.ID)
		}
	}
	// The full T5 must report the complete 10,000 scan with zero missing.
	for _, tb := range tables {
		if tb.ID != "T5" {
			continue
		}
		found := false
		for _, row := range tb.Rows {
			if row[0] == "missing" && row[1] == "0" {
				found = true
			}
		}
		if !found {
			t.Error("T5 full scan did not report zero missing")
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "X", Title: "demo", Header: []string{"a", "bb"}}
	tb.AddRow(1, "x")
	tb.AddRow("long-cell", 3.5)
	out := tb.String()
	if !strings.Contains(out, "long-cell") || !strings.Contains(out, "3.5000") {
		t.Errorf("render: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("expected 5 lines, got %d: %q", len(lines), out)
	}
}

func TestF2WorkloadMatchesPaper(t *testing.T) {
	tb, err := F2DeclusteredLayout(true)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range tb.Notes {
		if strings.Contains(n, "2/3") {
			found = true
		}
	}
	if !found {
		t.Errorf("F2 notes missing the 2/3 workload: %v", tb.Notes)
	}
}

func TestS1SpeedupShape(t *testing.T) {
	tb, err := S1Reconstruction(true)
	if err != nil {
		t.Fatal(err)
	}
	// Every declustered row's speedup should track (v-1)/(k-1) — the
	// paper's shape claim — within a 25% tolerance.
	for _, row := range tb.Rows {
		if row[1] != "declustered" {
			continue
		}
		v, err1 := strconv.Atoi(row[0])
		k, err2 := strconv.Atoi(row[2])
		speedup, err3 := strconv.ParseFloat(row[7], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			t.Fatalf("bad row %v", row)
		}
		want := float64(v-1) / float64(k-1)
		if speedup < 0.75*want || speedup > 1.25*want {
			t.Errorf("v=%d k=%d: speedup %v far from (v-1)/(k-1)=%v", v, k, speedup, want)
		}
	}
}
