// Package experiments regenerates every figure and quantitative claim in
// the paper's evaluation: Figures 1-7, the theorem size/balance formulas
// (T1-T7), and the simulator studies (S1, S2). Each experiment returns a
// Table that cmd/pdlexp prints and bench_test.go exercises; EXPERIMENTS.md
// records paper-vs-measured for each.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a formatted experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row built from arbitrary values.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// All runs every experiment in order. Heavy scans are scaled by quick
// (quick=true keeps everything laptop-fast; false runs the full paper
// parameters, e.g. the v <= 10,000 coverage scan).
func All(quick bool) ([]*Table, error) {
	runs := []func(bool) (*Table, error){
		F1ParityStripe,
		F2DeclusteredLayout,
		F3BIBDLayout,
		F4StairwayPlusOne,
		F5StairwayDivides,
		F6StairwayMixed,
		F7ParityAssignmentGraph,
		T1RingDesignParams,
		T2ReducedDesigns,
		T3DiskRemoval,
		T4StairwaySweep,
		T5Coverage,
		T6FlowBalance,
		T7Feasibility,
		S1Reconstruction,
		S2ApproxVsExact,
		E1Extendibility,
		E2RandomVsBIBD,
		E3Conditions56,
		E4DistributedSparing,
		E5Reliability,
	}
	var out []*Table
	for _, run := range runs {
		tb, err := run(quick)
		if err != nil {
			return out, err
		}
		out = append(out, tb)
	}
	return out, nil
}
