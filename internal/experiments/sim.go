package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/disksim"
	"repro/internal/workload"
)

// S1Reconstruction runs the motivating experiment: offline rebuild of one
// disk under RAID5 vs parity-declustered layouts of the same size,
// reporting survivor read fractions and makespan speedup.
func S1Reconstruction(quick bool) (*Table, error) {
	vs := []int{9, 17}
	if !quick {
		vs = append(vs, 25, 49)
	}
	t := &Table{ID: "S1", Title: "offline reconstruction: RAID5 vs declustered (survivor read fraction, makespan)",
		Header: []string{"v", "layout", "k", "size", "survivor fraction", "paper (k-1)/(v-1)", "makespan", "speedup vs RAID5"}}
	for _, v := range vs {
		for _, k := range []int{4, 8} {
			if k >= v {
				continue
			}
			rl, err := core.NewRingLayout(v, k)
			if err != nil {
				return nil, err
			}
			r5, err := baseline.RAID5(v, rl.Size)
			if err != nil {
				return nil, err
			}
			ad, err := disksim.New(rl.Layout, disksim.Config{})
			if err != nil {
				return nil, err
			}
			ar, err := disksim.New(r5, disksim.Config{})
			if err != nil {
				return nil, err
			}
			dres, err := ad.RebuildOffline(0, 0)
			if err != nil {
				return nil, err
			}
			rres, err := ar.RebuildOffline(0, 0)
			if err != nil {
				return nil, err
			}
			want := float64(k-1) / float64(v-1)
			if dres.SurvivorFraction != want {
				return nil, fmt.Errorf("S1(v=%d,k=%d): fraction %v != %v", v, k, dres.SurvivorFraction, want)
			}
			speedup := float64(rres.Makespan) / float64(dres.Makespan)
			t.AddRow(v, "declustered", k, rl.Size, dres.SurvivorFraction, want, dres.Makespan, speedup)
			t.AddRow(v, "RAID5", v, r5.Size, rres.SurvivorFraction, 1.0, rres.Makespan, 1.0)
		}
	}
	t.Notes = append(t.Notes, "declustered rebuild reads exactly (k-1)/(v-1) of each survivor; RAID5 reads 100%")
	return t, nil
}

// S2ApproxVsExact runs the paper's planned Section 5 experiment: exact
// BIBD layouts vs approximately balanced layouts (Theorem 9 removal and
// stairway) under online rebuild with client load, plus parity-update
// contention under pure writes.
func S2ApproxVsExact(quick bool) (*Table, error) {
	nOps := 2000
	if !quick {
		nOps = 10000
	}
	t := &Table{ID: "S2", Title: "approximate vs exact layouts: online rebuild + write contention",
		Header: []string{"layout", "v", "k", "size", "overhead max", "client avg lat", "rebuild makespan", "max parity writes / mean"}}

	type entry struct {
		name string
		a    *disksim.Array
	}
	var entries []entry

	// Exact: ring layout for v=16, k=4.
	exact, err := core.NewRingLayout(16, 4)
	if err != nil {
		return nil, err
	}
	ea, err := disksim.New(exact.Layout, disksim.Config{})
	if err != nil {
		return nil, err
	}
	entries = append(entries, entry{"exact ring v=16", ea})

	// Approximate by removal: v=17 ring layout minus one disk -> 16 disks.
	base17, err := core.NewRingLayout(17, 4)
	if err != nil {
		return nil, err
	}
	removed, err := core.RemoveDisk(base17, 0)
	if err != nil {
		return nil, err
	}
	ra, err := disksim.New(removed, disksim.Config{})
	if err != nil {
		return nil, err
	}
	entries = append(entries, entry{"thm8 removal v=16", ra})

	// Approximate by stairway: q=13 -> v=16 (k=4).
	base13, err := core.NewRingLayout(13, 4)
	if err != nil {
		return nil, err
	}
	stair, _, err := core.Stairway(base13, 16)
	if err != nil {
		return nil, err
	}
	sa, err := disksim.New(stair, disksim.Config{})
	if err != nil {
		return nil, err
	}
	entries = append(entries, entry{"stairway q=13 v=16", sa})

	for _, e := range entries {
		l := e.a.L
		gen := workload.NewUniform(e.a.Mapping.DataUnits(), 0.3, 101)
		cres, rres, err := e.a.RebuildOnline(gen, nOps, 2, 1)
		if err != nil {
			return nil, err
		}
		// Fresh array for the contention measurement.
		a2, err := disksim.New(l, disksim.Config{})
		if err != nil {
			return nil, err
		}
		maxW, meanW, err := a2.ParityContention(workload.NewUniform(a2.Mapping.DataUnits(), 1, 55), nOps)
		if err != nil {
			return nil, err
		}
		_, omax := l.ParityOverheadRange()
		t.AddRow(e.name, l.V, "4", l.Size, omax.String(),
			cres.AvgLatency(), rres.Makespan,
			fmt.Sprintf("%d / %.1f", maxW, meanW))
	}
	t.Notes = append(t.Notes,
		"approximate layouts track the exact layout closely; their small parity imbalance shows up as slightly higher max parity-write contention",
		"this is the experiment the paper lists as its next step (Section 5), run on our simulator substrate")
	return t, nil
}
