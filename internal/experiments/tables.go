package experiments

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/design"
	"repro/pdl/layout"
)

// T1RingDesignParams verifies Theorem 1's parameters and Theorem 2's
// reachability boundary over a sweep of v.
func T1RingDesignParams(quick bool) (*Table, error) {
	vs := []int{4, 5, 6, 8, 9, 12, 13, 16, 20, 25, 27}
	if !quick {
		vs = append(vs, 32, 49, 64, 81, 125, 128)
	}
	t := &Table{ID: "T1", Title: "ring-based designs: Theorem 1 parameters, Theorem 2 boundary",
		Header: []string{"v", "M(v)", "k", "b", "r", "lambda", "BIBD", "k=M(v)+1 rejected"}}
	for _, v := range vs {
		m := algebra.MaxGenerators(v)
		k := m
		if k > 8 {
			k = 8
		}
		rd, err := design.NewRingDesignForVK(v, k)
		if err != nil {
			return nil, fmt.Errorf("T1(%d,%d): %w", v, k, err)
		}
		b, r, lambda, ok := rd.Params()
		wb, wr, wl := design.TheoreticalParams(v, k)
		if b != wb || r != wr || lambda != wl {
			return nil, fmt.Errorf("T1(%d,%d): params (%d,%d,%d) != theory (%d,%d,%d)", v, k, b, r, lambda, wb, wr, wl)
		}
		_, rejErr := design.NewRingDesignForVK(v, m+1)
		t.AddRow(v, m, k, b, r, lambda, ok, rejErr != nil)
	}
	t.Notes = append(t.Notes, "b=v(v-1), r=k(v-1), λ=k(k-1) for every constructible (v,k); k>M(v) always rejected")
	return t, nil
}

// T2ReducedDesigns compares Theorem 4/5/6 reduced sizes against Theorem 1
// and the Theorem 7 lower bound.
func T2ReducedDesigns(quick bool) (*Table, error) {
	cases := []struct{ v, k int }{
		{7, 3}, {9, 3}, {13, 4}, {13, 5}, {16, 4}, {17, 5}, {25, 5}, {27, 3},
	}
	if !quick {
		cases = append(cases, []struct{ v, k int }{{64, 8}, {49, 7}, {81, 9}, {32, 4}, {81, 3}}...)
	}
	t := &Table{ID: "T2", Title: "redundancy reduction: Theorems 4/5/6 vs Theorem 7 lower bound",
		Header: []string{"v", "k", "thm1 b", "thm4 b", "thm5 b", "thm6 b", "minB (thm7)", "thm6 optimal"}}
	for _, c := range cases {
		thm1 := c.v * (c.v - 1)
		fmtOr := func(d *design.Design, err error) string {
			if err != nil {
				return "-"
			}
			return fmt.Sprint(d.B())
		}
		d4, _, err4 := design.Theorem4Design(c.v, c.k)
		d5, _, err5 := design.Theorem5Design(c.v, c.k)
		d6, _, err6 := design.SubfieldDesign(c.v, c.k)
		minB := design.MinB(c.v, c.k)
		optimal := "-"
		if err6 == nil {
			optimal = fmt.Sprint(d6.B() == minB)
			if d6.B() != minB {
				return nil, fmt.Errorf("T2(%d,%d): Theorem 6 not optimal: b=%d, bound %d", c.v, c.k, d6.B(), minB)
			}
		}
		t.AddRow(c.v, c.k, thm1, fmtOr(d4, err4), fmtOr(d5, err5), fmtOr(d6, err6), minB, optimal)
	}
	t.Notes = append(t.Notes, "Theorem 6 designs (v a power of k) meet the lower bound exactly (λ=1)")
	return t, nil
}

// T3DiskRemoval measures Theorems 8 and 9: bounds vs measured balance.
func T3DiskRemoval(quick bool) (*Table, error) {
	type rmCase struct {
		v, k, i int
	}
	cases := []rmCase{{8, 3, 1}, {9, 4, 1}, {13, 4, 1}, {16, 9, 2}, {25, 16, 3}}
	if !quick {
		cases = append(cases, rmCase{27, 16, 3}, rmCase{32, 25, 4}, rmCase{49, 25, 4})
	}
	t := &Table{ID: "T3", Title: "disk removal (Theorems 8, 9): bounds vs measured",
		Header: []string{"v", "k", "removed", "size", "overhead measured", "overhead bound", "workload measured", "workload (k-1)/(v-1)"}}
	for _, c := range cases {
		rl, err := core.NewRingLayout(c.v, c.k)
		if err != nil {
			return nil, err
		}
		removed := make([]int, c.i)
		for j := range removed {
			removed[j] = j * 2 % c.v
			for dup := 0; dup < j; dup++ {
				if removed[dup] == removed[j] {
					removed[j] = (removed[j] + 1) % c.v
					dup = -1
				}
			}
		}
		l, err := core.RemoveDisks(rl, removed)
		if err != nil {
			return nil, fmt.Errorf("T3(%d,%d,i=%d): %w", c.v, c.k, c.i, err)
		}
		omin, omax := l.ParityOverheadRange()
		oBound := layout.R(c.v+c.i, c.k*(c.v-1))
		if omax.Cmp(oBound) > 0 {
			return nil, fmt.Errorf("T3(%d,%d): overhead %v exceeds bound %v", c.v, c.k, omax, oBound)
		}
		wmin, wmax := l.ReconstructionWorkloadRange()
		want := layout.R(c.k-1, c.v-1)
		if !wmin.Equal(want) || !wmax.Equal(want) {
			return nil, fmt.Errorf("T3(%d,%d): workload [%v,%v] != %v", c.v, c.k, wmin, wmax, want)
		}
		t.AddRow(c.v, c.k, c.i, l.Size,
			fmt.Sprintf("[%v,%v]", omin, omax), "<= "+oBound.String(),
			fmt.Sprintf("[%v,%v]", wmin, wmax), want.String())
	}
	return t, nil
}

// T4StairwaySweep measures Theorems 10/11/12 over (q, k, v) sweeps.
func T4StairwaySweep(quick bool) (*Table, error) {
	type swCase struct{ q, k, v int }
	cases := []swCase{
		{5, 3, 6}, {8, 4, 9}, {8, 4, 10}, {9, 3, 12}, {7, 3, 9}, {13, 4, 15},
	}
	if !quick {
		cases = append(cases, swCase{16, 4, 20}, swCase{25, 5, 30}, swCase{16, 5, 21}, swCase{27, 4, 36}, swCase{11, 3, 14})
	}
	t := &Table{ID: "T4", Title: "stairway transformation (Theorems 10/11/12): bounds vs measured",
		Header: []string{"q", "k", "v", "c", "w", "size", "overhead measured", "overhead bounds", "workload measured", "workload bounds"}}
	for _, c := range cases {
		rl, err := core.NewRingLayout(c.q, c.k)
		if err != nil {
			return nil, err
		}
		l, info, err := core.Stairway(rl, c.v)
		if err != nil {
			return nil, fmt.Errorf("T4(q=%d,v=%d): %w", c.q, c.v, err)
		}
		size, oLo, oHi, wLo, wHi := core.Theorem12Bounds(c.q, c.k, c.v, info.C, info.W)
		if l.Size != size {
			return nil, fmt.Errorf("T4(q=%d,v=%d): size %d != %d", c.q, c.v, l.Size, size)
		}
		omin, omax := l.ParityOverheadRange()
		wmin, wmax := l.ReconstructionWorkloadRange()
		if omin.Cmp(oLo) < 0 || omax.Cmp(oHi) > 0 {
			return nil, fmt.Errorf("T4(q=%d,v=%d): overhead [%v,%v] outside [%v,%v]", c.q, c.v, omin, omax, oLo, oHi)
		}
		if wmin.Cmp(wLo) < 0 || wmax.Cmp(wHi) > 0 {
			return nil, fmt.Errorf("T4(q=%d,v=%d): workload [%v,%v] outside [%v,%v]", c.q, c.v, wmin, wmax, wLo, wHi)
		}
		t.AddRow(c.q, c.k, c.v, info.C, info.W, l.Size,
			fmt.Sprintf("[%v,%v]", omin, omax), fmt.Sprintf("[%v,%v]", oLo, oHi),
			fmt.Sprintf("[%v,%v]", wmin, wmax), fmt.Sprintf("[%v,%v]", wLo, wHi))
	}
	// Extended (wide-step) stairway: a target with no Eq. (8)-(9)
	// solution, reached via multi-disk overlap removal (the remark after
	// Theorem 12).
	rlWide, err := core.NewRingLayout(16, 6)
	if err != nil {
		return nil, err
	}
	lWide, infoWide, err := core.StairwayWide(rlWide, 22)
	if err != nil {
		return nil, fmt.Errorf("T4 wide: %w", err)
	}
	womin, womax := lWide.ParityOverheadRange()
	wwmin, wwmax := lWide.ReconstructionWorkloadRange()
	t.AddRow(16, 6, 22, infoWide.C, infoWide.W, lWide.Size,
		fmt.Sprintf("[%v,%v]", womin, womax), "(wide steps)",
		fmt.Sprintf("[%v,%v]", wwmin, wwmax), "(wide steps)")
	t.Notes = append(t.Notes,
		"imbalance shrinks as v approaches q from above, at the cost of larger layouts (the paper's trade-off)",
		"last row: extended stairway with steps wider than v-q+1 (remark after Theorem 12) reaching v=22 from q=16, impossible for the plain transformation")
	return t, nil
}

// T5Coverage verifies the Section 3.2 computational claim: every v up to
// the limit (10,000 full; 2,000 quick) has a prime-power stairway base or
// is itself a prime power.
func T5Coverage(quick bool) (*Table, error) {
	maxV := 10000
	if quick {
		maxV = 2000
	}
	results := core.CoverageScan(maxV)
	covered, direct, stairway := 0, 0, 0
	var missing []int
	for _, r := range results {
		if r.V < 3 {
			continue
		}
		if r.Covered {
			covered++
			if r.Direct {
				direct++
			} else {
				stairway++
			}
		} else {
			missing = append(missing, r.V)
		}
	}
	t := &Table{ID: "T5", Title: fmt.Sprintf("coverage of all v <= %d by ring layouts + stairway (Section 3.2 claim)", maxV),
		Header: []string{"quantity", "value"}}
	t.AddRow("v scanned", maxV-2)
	t.AddRow("covered", covered)
	t.AddRow("direct (prime power)", direct)
	t.AddRow("via stairway", stairway)
	t.AddRow("missing", len(missing))
	if len(missing) > 0 {
		return nil, fmt.Errorf("T5: uncovered v values: %v", missing)
	}
	t.Notes = append(t.Notes, "paper: computations show coverage for all v up to 10,000 — confirmed")
	return t, nil
}

// T6FlowBalance verifies Theorems 13/14 and Corollaries 16/17 across the
// design catalog.
func T6FlowBalance(quick bool) (*Table, error) {
	cases := []struct{ v, k int }{{7, 3}, {9, 3}, {13, 4}, {6, 3}, {10, 3}}
	if !quick {
		cases = append(cases, []struct{ v, k int }{{21, 5}, {11, 5}, {16, 4}, {25, 5}}...)
	}
	t := &Table{ID: "T6", Title: "flow-based parity balance (Theorems 13/14, Corollaries 16/17)",
		Header: []string{"v", "k", "b", "spread", "perfect", "v|b", "lcm copies", "perfect after lcm"}}
	for _, c := range cases {
		d := design.Known(c.v, c.k)
		if d == nil {
			return nil, fmt.Errorf("T6: no design (%d,%d)", c.v, c.k)
		}
		l, err := core.BalancedFromDesign(d)
		if err != nil {
			return nil, err
		}
		spread := l.ParitySpread()
		if spread > 1 {
			return nil, fmt.Errorf("T6(%d,%d): spread %d > 1 violates Corollary 16", c.v, c.k, spread)
		}
		perfect := l.ParityPerfectlyBalanced()
		divides := d.B()%c.v == 0
		if perfect != divides {
			return nil, fmt.Errorf("T6(%d,%d): perfect=%v but v|b=%v violates Corollary 17", c.v, c.k, perfect, divides)
		}
		copies := core.MinCopiesForPerfectParity(d.B(), c.v)
		rep, gotCopies, err := core.PerfectlyBalancedFromDesign(d)
		if err != nil {
			return nil, err
		}
		if gotCopies != copies || !rep.ParityPerfectlyBalanced() {
			return nil, fmt.Errorf("T6(%d,%d): lcm replication failed", c.v, c.k)
		}
		t.AddRow(c.v, c.k, d.B(), spread, perfect, divides, copies, true)
	}
	t.Notes = append(t.Notes, "Holland-Gibson lcm conjecture confirmed: lcm(b,v)/b copies necessary and sufficient")
	return t, nil
}

// T7Feasibility counts feasible (v,k) configurations under the Condition 4
// bound for each construction method.
func T7Feasibility(quick bool) (*Table, error) {
	maxV, maxK := 1024, 64
	if quick {
		maxV, maxK = 256, 32
	}
	t := &Table{ID: "T7", Title: fmt.Sprintf("feasible (v,k) pairs, size <= %d tracks (Condition 4), prime-power v <= %d, k <= %d", layout.FeasibleTableSize, maxV, maxK),
		Header: []string{"method", "layout size formula", "feasible pairs"}}
	hg := core.FeasibleCount(core.MethodHGRing, maxV, maxK)
	ring := core.FeasibleCount(core.MethodRing, maxV, maxK)
	bal := core.FeasibleCount(core.MethodBalancedTheorem4, maxV, maxK)
	t.AddRow("Holland-Gibson k copies", "k*k*(v-1)", hg)
	t.AddRow("ring-based layout (Sec 3.1)", "k*(v-1)", ring)
	t.AddRow("flow-balanced Theorem 4 design", "k*(v-1)/gcd(v-1,k-1)", bal)
	if !(hg <= ring && ring <= bal) {
		return nil, fmt.Errorf("T7: feasibility counts not monotone: %d, %d, %d", hg, ring, bal)
	}
	t.Notes = append(t.Notes, "smaller layouts admit strictly more feasible configurations — the paper's motivation for Sections 3 and 4")
	return t, nil
}
