package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/design"
	"repro/pdl/layout"
)

func gridTable(id, title string, l *layout.Layout) *Table {
	t := &Table{ID: id, Title: title}
	t.Header = append(t.Header, "unit")
	for d := 0; d < l.V; d++ {
		t.Header = append(t.Header, fmt.Sprintf("disk%d", d))
	}
	for off, row := range l.RenderGrid() {
		cells := []interface{}{off}
		for _, c := range row {
			cells = append(cells, c)
		}
		t.AddRow(cells...)
	}
	return t
}

// F1ParityStripe reproduces Figure 1: one full-width parity stripe over
// v=5 disks (4 data units + 1 parity), with the XOR invariant verified on
// real bytes.
func F1ParityStripe(bool) (*Table, error) {
	stripes := [][]int{{0, 1, 2, 3, 4}}
	l, err := layout.Assemble(5, stripes)
	if err != nil {
		return nil, err
	}
	l.Stripes[0].Parity = 4
	data, err := layout.NewData(l, 4)
	if err != nil {
		return nil, err
	}
	for i := 0; i < data.Mapping().DataUnits(); i++ {
		if err := data.WriteLogical(i, []byte{byte(i + 1), 0, 0, byte(i)}); err != nil {
			return nil, err
		}
	}
	if err := data.VerifyParity(); err != nil {
		return nil, err
	}
	if err := data.CheckReconstruction(); err != nil {
		return nil, err
	}
	t := gridTable("F1", "one parity stripe, v=5 (Figure 1)", l)
	t.Notes = append(t.Notes, "XOR parity verified on real bytes; every disk reconstructs")
	return t, nil
}

// F2DeclusteredLayout reproduces Figure 2: the parity-declustered layout
// for v=4, k=3 derived from the complete design of 3-subsets of 4 disks.
func F2DeclusteredLayout(bool) (*Table, error) {
	d := design.Complete(4, 3, 0)
	l, err := core.FromDesignSingle(d)
	if err != nil {
		return nil, err
	}
	if err := core.BalanceParity(l); err != nil {
		return nil, err
	}
	t := gridTable("F2", "parity-declustered layout v=4, k=3 (Figure 2)", l)
	min, max := l.ReconstructionWorkloadRange()
	t.Notes = append(t.Notes,
		fmt.Sprintf("reconstruction workload [%v,%v] (paper: (k-1)/(v-1) = 2/3)", min, max))
	return t, nil
}

// F3BIBDLayout reproduces Figure 3: the Holland-Gibson BIBD-based layout
// for v=4, k=3 — the complete design replicated k times with rotated
// parity.
func F3BIBDLayout(bool) (*Table, error) {
	d := design.Complete(4, 3, 0)
	l, err := core.FromDesignHG(d)
	if err != nil {
		return nil, err
	}
	t := gridTable("F3", "BIBD-based layout v=4, k=3, k copies (Figure 3)", l)
	omin, omax := l.ParityOverheadRange()
	t.Notes = append(t.Notes,
		fmt.Sprintf("parity overhead [%v,%v] (paper: exactly 1/k = 1/3)", omin, omax),
		fmt.Sprintf("size %d = k*r (the k-fold replication Section 3 removes)", l.Size))
	return t, nil
}

// F4StairwayPlusOne reproduces Figure 4: the stairway transformation from
// q=5 to v=6 (k=3), summarizing piece structure and measured balance.
func F4StairwayPlusOne(bool) (*Table, error) {
	return stairwayFigure("F4", "stairway transformation v=q+1 (Figure 4)", 5, 3, 6)
}

// F5StairwayDivides reproduces Figure 5: the stairway when (v-q) | v
// (q=8, k=4, v=10).
func F5StairwayDivides(bool) (*Table, error) {
	return stairwayFigure("F5", "stairway when (v-q) divides v (Figure 5)", 8, 4, 10)
}

// F6StairwayMixed reproduces Figure 6: mixed-width steps with overlap
// removal (q=7, k=3, v=9).
func F6StairwayMixed(bool) (*Table, error) {
	return stairwayFigure("F6", "stairway with different-sized steps (Figure 6)", 7, 3, 9)
}

func stairwayFigure(id, title string, q, k, v int) (*Table, error) {
	rl, err := core.NewRingLayout(q, k)
	if err != nil {
		return nil, err
	}
	l, info, err := core.Stairway(rl, v)
	if err != nil {
		return nil, err
	}
	if err := l.Check(); err != nil {
		return nil, err
	}
	t := &Table{ID: id, Title: title,
		Header: []string{"quantity", "value"}}
	t.AddRow("base q", info.Q)
	t.AddRow("stripe size k", info.K)
	t.AddRow("target v", info.V)
	t.AddRow("copies c", info.C)
	t.AddRow("wide steps w", info.W)
	t.AddRow("step width v-q", info.StepWidth)
	t.AddRow("layout size", l.Size)
	smin, smax := l.StripeSizes()
	t.AddRow("stripe sizes", fmt.Sprintf("[%d,%d]", smin, smax))
	omin, omax := l.ParityOverheadRange()
	t.AddRow("parity overhead", fmt.Sprintf("[%v,%v]", omin, omax))
	wmin, wmax := l.ReconstructionWorkloadRange()
	t.AddRow("reconstruction workload", fmt.Sprintf("[%v,%v]", wmin, wmax))
	return t, nil
}

// F7ParityAssignmentGraph reproduces Figure 7: the parity assignment graph
// for a single-copy Fano layout, solved by max flow, with the resulting
// per-disk parity counts.
func F7ParityAssignmentGraph(bool) (*Table, error) {
	d := design.FromDifferenceSet(7, []int{1, 2, 4})
	l, err := core.FromDesignSingle(d)
	if err != nil {
		return nil, err
	}
	loads := l.ParityLoad()
	if err := core.BalanceParity(l); err != nil {
		return nil, err
	}
	t := &Table{ID: "F7", Title: "parity assignment graph flow solution, Fano plane (Figure 7)",
		Header: []string{"disk", "L(d)", "floor", "ceil", "assigned parity"}}
	counts := l.ParityCounts()
	for disk := 0; disk < l.V; disk++ {
		lo := loads[disk].Num / loads[disk].Den
		hi := lo
		if loads[disk].Num%loads[disk].Den != 0 {
			hi++
		}
		t.AddRow(disk, loads[disk].String(), lo, hi, counts[disk])
	}
	t.Notes = append(t.Notes, "max flow value b = 7 stripes; each disk within [floor(L), ceil(L)] (Theorem 14)")
	return t, nil
}
