package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/design"
	"repro/internal/reliability"
	"repro/pdl/layout"
)

// The E-series experiments implement the paper's Section 5 "next steps":
// extendible layouts, randomized layouts vs BIBDs, the Stockmeyer
// Conditions 5/6, and distributed sparing.

// E1Extendibility measures the data-migration cost of growing an array by
// one disk with the stairway construction vs a naive re-layout and the
// information-theoretic lower bound.
func E1Extendibility(quick bool) (*Table, error) {
	qs := []int{5, 8, 13}
	if !quick {
		qs = append(qs, 17, 25, 32)
	}
	t := &Table{ID: "E1", Title: "extendible layouts (Section 5): migration cost of adding one disk",
		Header: []string{"q", "k", "new v", "across-disk fraction", "naive re-layout", "lower bound 1/(q+1)"}}
	for _, q := range qs {
		rl, err := core.NewRingLayout(q, 3)
		if err != nil {
			return nil, err
		}
		l, stats, err := core.ExtendByOne(rl)
		if err != nil {
			return nil, err
		}
		if err := l.Check(); err != nil {
			return nil, fmt.Errorf("E1(q=%d): %w", q, err)
		}
		if stats.MovedAcrossDisks+stats.MovedWithinDisk != stats.TotalUnits {
			return nil, fmt.Errorf("E1(q=%d): migration accounting broken", q)
		}
		t.AddRow(q, 3, q+1, stats.AcrossFraction(), core.NaiveRelayoutMigration(q), stats.LowerBoundAcross)
	}
	t.Notes = append(t.Notes, "stairway extension moves ~1/2 of the data across disks vs ~1 for re-layout; the bound is 1/(q+1)")
	return t, nil
}

// E2RandomVsBIBD compares Merchant–Yu-style randomized layouts against a
// BIBD layout of equal size: workload imbalance vs number of rows.
func E2RandomVsBIBD(quick bool) (*Table, error) {
	v, k := 12, 4
	rows := []int{11, 33, 165}
	if !quick {
		rows = append(rows, 825)
	}
	t := &Table{ID: "E2", Title: "randomized layouts (Merchant-Yu style) vs ring-based BIBD layout, v=12, k=4",
		Header: []string{"layout", "size", "workload min", "workload max", "max/min", "parity spread"}}
	addRow := func(name string, l *layout.Layout) {
		wmin, wmax := l.ReconstructionWorkloadRange()
		ratio := "inf"
		if wmin.Num > 0 {
			ratio = fmt.Sprintf("%.3f", wmax.Float()/wmin.Float())
		}
		t.AddRow(name, l.Size, wmin.String(), wmax.String(), ratio, l.ParitySpread())
	}
	for _, r := range rows {
		l, err := baseline.Random(v, k, r, 11)
		if err != nil {
			return nil, err
		}
		addRow(fmt.Sprintf("random rows=%d", r), l)
	}
	// Ring layout needs k <= M(12) = 3; use the (12,4) catalog path: a
	// stairway from q=11 gives a valid comparison layout, and a BIBD-based
	// exact layout exists from the catalog for (13,4) removed to 12.
	rl13, err := core.NewRingLayout(13, 4)
	if err != nil {
		return nil, err
	}
	exact, err := core.RemoveDisk(rl13, 0)
	if err != nil {
		return nil, err
	}
	addRow("thm8 removal (exact balance)", exact)
	t.Notes = append(t.Notes, "random layouts converge slowly toward balance; the combinatorial layout is exactly balanced at a fraction of the size")
	return t, nil
}

// E3Conditions56 reports the Stockmeyer Conditions 5 (large-write
// alignment) and 6 (parallelism of sequential reads) for each
// construction.
func E3Conditions56(quick bool) (*Table, error) {
	type cse struct {
		name string
		l    *layout.Layout
	}
	var cases []cse
	rl, err := core.NewRingLayout(9, 3)
	if err != nil {
		return nil, err
	}
	cases = append(cases, cse{"ring v=9 k=3", rl.Layout})
	d := design.Known(9, 3)
	hg, err := core.FromDesignHG(d)
	if err != nil {
		return nil, err
	}
	cases = append(cases, cse{"holland-gibson v=9 k=3", hg})
	bal, err := core.BalancedFromDesign(d)
	if err != nil {
		return nil, err
	}
	cases = append(cases, cse{"flow-balanced v=9 k=3", bal})
	r5, err := baseline.RAID5(9, 24)
	if err != nil {
		return nil, err
	}
	cases = append(cases, cse{"raid5 v=9", r5})
	if !quick {
		big, err := core.NewRingLayout(17, 4)
		if err != nil {
			return nil, err
		}
		cases = append(cases, cse{"ring v=17 k=4", big.Layout})
	}
	t := &Table{ID: "E3", Title: "Conditions 5/6 (Stockmeyer): large-write alignment and sequential parallelism",
		Header: []string{"layout", "size", "large-write aligned", "min disks per v-window", "mean disks per v-window"}}
	for _, c := range cases {
		m, err := layout.NewMapping(c.l)
		if err != nil {
			return nil, err
		}
		min, mean := m.ParallelismProfile(c.l.V)
		t.AddRow(c.name, c.l.Size, m.LargeWriteAlignment(), min, mean)
	}
	t.Notes = append(t.Notes, "stripe-major addressing gives perfect large-write alignment; declustered layouts trade some sequential parallelism vs RAID5's v-consecutive rows")
	return t, nil
}

// E4DistributedSparing verifies the Section 5 sparing proposal: spares
// distributed by the generalized flow are balanced, and rebuilding into
// them declusters the rebuild writes.
func E4DistributedSparing(quick bool) (*Table, error) {
	cases := []struct{ v, k int }{{9, 4}, {13, 4}}
	if !quick {
		cases = append(cases, []struct{ v, k int }{{17, 5}, {25, 5}}...)
	}
	t := &Table{ID: "E4", Title: "distributed sparing (Section 5): spare balance and rebuild-write declustering",
		Header: []string{"v", "k", "spare spread", "rebuild writes min", "rebuild writes max", "spares lost with disk"}}
	for _, c := range cases {
		rl, err := core.NewRingLayout(c.v, c.k)
		if err != nil {
			return nil, err
		}
		sp, err := core.DistributedSparing(rl.Layout)
		if err != nil {
			return nil, fmt.Errorf("E4(%d,%d): %w", c.v, c.k, err)
		}
		if sp.SpareSpread() > 1 {
			return nil, fmt.Errorf("E4(%d,%d): spare spread %d > 1", c.v, c.k, sp.SpareSpread())
		}
		writes, lost, err := sp.RebuildToSpares(0)
		if err != nil {
			return nil, err
		}
		wmin, wmax := -1, 0
		for d, w := range writes {
			if d == 0 {
				continue
			}
			if wmin < 0 || w < wmin {
				wmin = w
			}
			if w > wmax {
				wmax = w
			}
		}
		t.AddRow(c.v, c.k, sp.SpareSpread(), wmin, wmax, lost)
	}
	t.Notes = append(t.Notes, "rebuild writes spread across all survivors (distributed sparing) instead of hammering one replacement disk")
	return t, nil
}

// E5Reliability quantifies the paper's motivation: rebuild-window length
// drives mean time to data loss, so declustering (smaller k) buys
// reliability with parity capacity. Analytic model cross-validated by
// Monte Carlo.
func E5Reliability(quick bool) (*Table, error) {
	v, diskUnits := 25, 5000
	mttf, rate := 200000.0, 500.0 // hours; units/hour rebuild bandwidth
	ks := []int{2, 4, 8, 16, 25}
	trials := 1500
	if !quick {
		trials = 10000
	}
	t := &Table{ID: "E5", Title: fmt.Sprintf("reliability vs stripe size, v=%d (MTTF %.0fh): declustering shortens the double-failure window", v, mttf),
		Header: []string{"k", "parity overhead", "rebuild hours", "analytic MTTDL (h)", "simulated MTTDL (h)", "vs RAID5"}}
	comps := reliability.Compare(v, diskUnits, mttf, rate, ks)
	for _, c := range comps {
		sim := reliability.SimulateMTTDL(v, mttf, c.RebuildHours, trials, 7)
		ratio := sim / c.AnalyticMTTDL
		if ratio < 0.8 || ratio > 1.2 {
			return nil, fmt.Errorf("E5(k=%d): simulation %.0f disagrees with analytic %.0f", c.K, sim, c.AnalyticMTTDL)
		}
		t.AddRow(c.K, c.ParityOverhead, c.RebuildHours, c.AnalyticMTTDL, sim, c.RelativeToRAID5)
	}
	t.Notes = append(t.Notes, "MTTDL scales as (v-1)/(k-1) vs RAID5 — the reliability payoff for the 1/k parity capacity")
	return t, nil
}
