// Package baseline implements the comparison layouts the paper measures
// against: RAID5 rotated parity (stripes spanning the whole array, k = v),
// complete-block-design layouts, and Merchant–Yu-style randomized
// declustered layouts.
package baseline

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/design"
	"repro/pdl/layout"
)

// RAID5 returns the classic left-symmetric RAID5 layout: v disks, rows of
// full-width stripes (k = v) with parity rotating across disks. rows is
// the number of stripes (= layout size).
func RAID5(v, rows int) (*layout.Layout, error) {
	if v < 2 || rows < 1 {
		return nil, fmt.Errorf("baseline: RAID5(%d,%d): invalid parameters", v, rows)
	}
	stripes := make([][]int, rows)
	for i := range stripes {
		row := make([]int, v)
		for d := 0; d < v; d++ {
			row[d] = d
		}
		stripes[i] = row
	}
	l, err := layout.Assemble(v, stripes)
	if err != nil {
		return nil, err
	}
	for i := range l.Stripes {
		l.Stripes[i].Parity = i % v
	}
	return l, nil
}

// CompleteLayout builds the Holland–Gibson layout over the complete block
// design (all C(v,k) subsets) — the construction the paper notes becomes
// infeasible as v grows. maxTuples guards the explosion.
func CompleteLayout(v, k, maxTuples int) (*layout.Layout, error) {
	d := design.Complete(v, k, maxTuples)
	return core.FromDesignHG(d)
}

// Random builds a Merchant–Yu-style randomized declustered layout: rows of
// stripes obtained by splitting a pseudorandom permutation of the disks
// into v/k stripes of size k (k must divide v). Parity rotates within each
// stripe by row. Deterministic for a fixed seed.
//
// Random layouts approximately balance parity and reconstruction workload;
// the experiments measure how far they fall from the BIBD guarantee.
func Random(v, k, rows int, seed uint64) (*layout.Layout, error) {
	if v < 2 || k < 2 || k > v {
		return nil, fmt.Errorf("baseline: Random(%d,%d): invalid parameters", v, k)
	}
	if v%k != 0 {
		return nil, fmt.Errorf("baseline: Random(%d,%d): k must divide v", v, k)
	}
	if rows < 1 {
		return nil, fmt.Errorf("baseline: Random: rows must be >= 1")
	}
	state := seed*2862933555777941757 + 3037000493
	next := func(mod int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(mod))
	}
	perm := make([]int, v)
	var stripes [][]int
	for row := 0; row < rows; row++ {
		for i := range perm {
			perm[i] = i
		}
		// Fisher–Yates.
		for i := v - 1; i > 0; i-- {
			j := next(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		for s := 0; s < v/k; s++ {
			stripes = append(stripes, append([]int(nil), perm[s*k:(s+1)*k]...))
		}
	}
	l, err := layout.Assemble(v, stripes)
	if err != nil {
		return nil, err
	}
	for i := range l.Stripes {
		l.Stripes[i].Parity = i % k
	}
	return l, nil
}
