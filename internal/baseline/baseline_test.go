package baseline

import (
	"testing"

	"repro/pdl/layout"
)

func TestRAID5Structure(t *testing.T) {
	l, err := RAID5(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Check(); err != nil {
		t.Fatal(err)
	}
	if l.Size != 10 || len(l.Stripes) != 10 {
		t.Errorf("size=%d stripes=%d", l.Size, len(l.Stripes))
	}
	smin, smax := l.StripeSizes()
	if smin != 5 || smax != 5 {
		t.Errorf("stripe sizes [%d,%d]", smin, smax)
	}
}

func TestRAID5RotatedParityBalanced(t *testing.T) {
	l, err := RAID5(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	for disk, c := range l.ParityCounts() {
		if c != 2 {
			t.Errorf("disk %d: %d parity units, want 2", disk, c)
		}
	}
}

func TestRAID5FullReconstructionWorkload(t *testing.T) {
	l, err := RAID5(6, 12)
	if err != nil {
		t.Fatal(err)
	}
	min, max := l.ReconstructionWorkloadRange()
	if !min.Equal(layout.R(1, 1)) || !max.Equal(layout.R(1, 1)) {
		t.Errorf("RAID5 workload [%v,%v], want 1", min, max)
	}
}

func TestRAID5Invalid(t *testing.T) {
	if _, err := RAID5(1, 5); err == nil {
		t.Error("v=1 accepted")
	}
	if _, err := RAID5(5, 0); err == nil {
		t.Error("rows=0 accepted")
	}
}

func TestCompleteLayout(t *testing.T) {
	l, err := CompleteLayout(6, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Check(); err != nil {
		t.Fatal(err)
	}
	// C(6,3)=20 tuples, r=10, size = k*r = 30.
	if l.Size != 30 {
		t.Errorf("size = %d, want 30", l.Size)
	}
	if !l.ParityPerfectlyBalanced() || !l.WorkloadPerfectlyBalanced() {
		t.Error("complete-design layout must be perfectly balanced")
	}
}

func TestRandomLayoutStructure(t *testing.T) {
	l, err := Random(12, 4, 20, 99)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Check(); err != nil {
		t.Fatal(err)
	}
	if l.Size != 20 {
		t.Errorf("size = %d, want 20 (one unit per disk per row)", l.Size)
	}
	smin, smax := l.StripeSizes()
	if smin != 4 || smax != 4 {
		t.Errorf("stripe sizes [%d,%d]", smin, smax)
	}
}

func TestRandomLayoutDeterministic(t *testing.T) {
	a, _ := Random(8, 4, 10, 7)
	b, _ := Random(8, 4, 10, 7)
	for i := range a.Stripes {
		for j := range a.Stripes[i].Units {
			if a.Stripes[i].Units[j] != b.Stripes[i].Units[j] {
				t.Fatalf("stripe %d differs between identical seeds", i)
			}
		}
	}
	c, _ := Random(8, 4, 10, 8)
	same := true
	for i := range a.Stripes {
		for j := range a.Stripes[i].Units {
			if a.Stripes[i].Units[j] != c.Stripes[i].Units[j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical layouts")
	}
}

func TestRandomLayoutRejectsBadParams(t *testing.T) {
	if _, err := Random(10, 4, 5, 1); err == nil {
		t.Error("k not dividing v accepted")
	}
	if _, err := Random(10, 1, 5, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := Random(10, 5, 0, 1); err == nil {
		t.Error("rows=0 accepted")
	}
}

func TestRandomLayoutApproximateBalance(t *testing.T) {
	// With many rows the workload imbalance narrows but is generally not
	// perfect — the contrast with BIBD layouts.
	l, err := Random(12, 4, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	min, max := l.ReconstructionWorkloadRange()
	if max.Float() > 2.5*min.Float() {
		t.Errorf("random layout wildly unbalanced: [%v, %v]", min, max)
	}
	if max.Float() > 1.0 {
		t.Errorf("workload fraction above 1: %v", max)
	}
}
