package core

import (
	"testing"

	"repro/pdl/layout"
)

func TestMaxRemovable(t *testing.T) {
	cases := []struct{ k, want int }{
		{2, 1}, {3, 1}, {4, 2}, {6, 2}, {9, 3}, {10, 3}, {12, 3}, {25, 5}, {26, 5},
	}
	for _, c := range cases {
		if got := maxRemovable(c.k); got != c.want {
			t.Errorf("maxRemovable(%d) = %d, want %d", c.k, got, c.want)
		}
	}
}

func TestStairwayWideReachesUnreachableV(t *testing.T) {
	// q=16, v=22: StairwayParams fails (d=6, c=3, w=4 >= c), but with
	// k=6 (jmax=2) extra=4 spreads as {2,2,0}: widths {8,8,6}.
	rl, err := NewRingLayout(16, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := StairwayParams(16, 22); ok {
		t.Fatal("test premise broken: (16,22) should not satisfy Eq. (8)-(9)")
	}
	if _, _, err := Stairway(rl, 22); err == nil {
		t.Fatal("plain stairway should fail for (16,22)")
	}
	l, info, err := StairwayWide(rl, 22)
	if err != nil {
		t.Fatalf("StairwayWide: %v", err)
	}
	if err := l.Check(); err != nil {
		t.Fatal(err)
	}
	if l.V != 22 {
		t.Errorf("v = %d", l.V)
	}
	if info.W != 4 {
		t.Errorf("total excess %d, want 4", info.W)
	}
	// Size formula still k(c-1)(q-1).
	if l.Size != 6*(info.C-1)*15 {
		t.Errorf("size %d, want %d", l.Size, 6*(info.C-1)*15)
	}
	// Stripe sizes within [k - jmax, k].
	smin, smax := l.StripeSizes()
	if smin < 4 || smax > 6 {
		t.Errorf("stripe sizes [%d,%d]", smin, smax)
	}
}

func TestStairwayWideMatchesPlainWhenFeasible(t *testing.T) {
	// When Eq. (8)-(9) hold, StairwayWide should produce a layout of the
	// same size and c as plain Stairway (widths with excess <= 1).
	rl, err := NewRingLayout(13, 4)
	if err != nil {
		t.Fatal(err)
	}
	lp, ip, err := Stairway(rl, 15)
	if err != nil {
		t.Fatal(err)
	}
	lw, iw, err := StairwayWide(rl, 15)
	if err != nil {
		t.Fatal(err)
	}
	if lp.Size != lw.Size || ip.C != iw.C {
		t.Errorf("plain (size %d, c %d) vs wide (size %d, c %d)", lp.Size, ip.C, lw.Size, iw.C)
	}
	if err := lw.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestStairwayWideBalanceReasonable(t *testing.T) {
	rl, err := NewRingLayout(16, 6)
	if err != nil {
		t.Fatal(err)
	}
	l, _, err := StairwayWide(rl, 22)
	if err != nil {
		t.Fatal(err)
	}
	omin, omax := l.ParityOverheadRange()
	// Overhead stays within 25% of 1/k.
	lo := layout.R(3, 4*6) // 0.75/k
	hi := layout.R(5, 4*6) // 1.25/k
	if omin.Cmp(lo) < 0 || omax.Cmp(hi) > 0 {
		t.Errorf("overhead [%v,%v] outside sane band [%v,%v]", omin, omax, lo, hi)
	}
	if !l.ParityAssigned() {
		t.Error("parity unassigned")
	}
}

func TestStairwayWideDataIntegrity(t *testing.T) {
	rl, err := NewRingLayout(16, 6)
	if err != nil {
		t.Fatal(err)
	}
	l, _, err := StairwayWide(rl, 22)
	if err != nil {
		t.Fatal(err)
	}
	d, err := layout.NewData(l, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.Mapping().DataUnits(); i++ {
		if err := d.WriteLogical(i, []byte{byte(i), byte(i >> 8), byte(i * 3), 9}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.CheckReconstruction(); err != nil {
		t.Fatal(err)
	}
}

func TestStairwayWideRejectsImpossible(t *testing.T) {
	// k=3 (jmax=1): q=16 -> v=22 needs per-step excess 2: infeasible.
	rl, err := NewRingLayout(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := StairwayWide(rl, 22); err == nil {
		t.Error("expected infeasibility for k=3")
	}
	if _, _, err := StairwayWide(rl, 16); err == nil {
		t.Error("v == q accepted")
	}
	if _, _, err := StairwayWide(rl, 40); err == nil {
		t.Error("v > 2q accepted")
	}
}

func TestStairwayBuildValidation(t *testing.T) {
	rl, err := NewRingLayout(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong sum.
	if _, _, err := stairwayBuild(rl, 10, []int{2, 2, 2, 2}); err == nil {
		t.Error("bad width sum accepted")
	}
	// Last step wide.
	if _, _, err := stairwayBuild(rl, 10, []int{2, 2, 3, 3}); err == nil {
		t.Error("wide last step accepted")
	}
	// Step narrower than d.
	if _, _, err := stairwayBuild(rl, 10, []int{1, 3, 2, 2, 2}); err == nil {
		t.Error("narrow step accepted")
	}
}
