package core

import (
	"fmt"

	"repro/pdl/layout"
)

// Extendible layouts (Section 5 future work): add a disk to a running
// array with bounded data movement. The stairway transformation is
// naturally incremental — the v = q+1 layout consists of PIECES of the
// q-disk layout, so an array already holding q+1 stacked copies of the
// q-disk layout can adopt the new layout by moving pieces, not by
// reshuffling every unit.

// MigrationStats accounts for the data movement of an extension.
type MigrationStats struct {
	TotalUnits int
	// MovedAcrossDisks counts units that change disk (the expensive moves:
	// real inter-disk traffic).
	MovedAcrossDisks int
	// MovedWithinDisk counts units that stay on their disk but change
	// offset (cheap sequential shuffling).
	MovedWithinDisk int
	// LowerBoundAcross is the information-theoretic minimum fraction of
	// units that must cross disks: the new disk's share, 1/(q+1).
	LowerBoundAcross float64
}

// AcrossFraction returns the fraction of units moving between disks.
func (m MigrationStats) AcrossFraction() float64 {
	if m.TotalUnits == 0 {
		return 0
	}
	return float64(m.MovedAcrossDisks) / float64(m.TotalUnits)
}

// ExtendByOne grows a q-disk ring layout to q+1 disks using the Theorem
// 10 stairway, and reports the migration cost relative to an array that
// already stores q+1 stacked copies of the ring layout. Piece (copy t,
// disk col) of the stacked layout moves to disk col+1 when col >= t
// (0-indexed cols, 1-indexed copies), else stays on its disk at a new
// offset.
func ExtendByOne(rl *RingLayout) (*layout.Layout, MigrationStats, error) {
	q := rl.Design.V
	out, info, err := Stairway(rl, q+1)
	if err != nil {
		return nil, MigrationStats{}, err
	}
	if info.W != 0 {
		return nil, MigrationStats{}, fmt.Errorf("core: ExtendByOne: unexpected wide steps")
	}
	pieceH := rl.Size // k(q-1)
	stats := MigrationStats{
		TotalUnits:       (q + 1) * q * pieceH, // c copies of q disks of pieceH units
		LowerBoundAcross: 1 / float64(q+1),
	}
	// Replicate the Stairway placement rule: copy t in 1..q+1, col in
	// 0..q-1; shifted (col+1 > b[t-1] = t-1, i.e. col >= t-1... matching
	// stairway's 1-indexed col > b[t-1]) moves across disks; unshifted
	// changes row only.
	for t := 1; t <= q+1; t++ {
		for col := 1; col <= q; col++ {
			if col > t-1 {
				stats.MovedAcrossDisks += pieceH
			} else {
				stats.MovedWithinDisk += pieceH
			}
		}
	}
	return out, stats, nil
}

// NaiveRelayoutMigration estimates the migration cost of discarding the
// old layout and writing a fresh (q+1)-disk layout: in expectation a unit
// lands on any of q+1 disks, so a q/(q+1) fraction crosses disks.
func NaiveRelayoutMigration(q int) float64 {
	return float64(q) / float64(q+1)
}
