package core

import (
	"fmt"

	"repro/internal/design"
	"repro/internal/flow"
	"repro/pdl/layout"
)

// BalanceParity assigns the parity unit of every stripe using the paper's
// Section 4 network-flow method (Theorems 13 and 14): build the parity
// assignment graph (source -> stripes -> disks -> sink, with disk d's sink
// edge bounded by [floor(L(d)), ceil(L(d))]), find an integer maximum flow
// of value b, and place parity on the unit whose stripe->disk edge carries
// flow. The result gives every disk either floor(L(d)) or ceil(L(d))
// parity units; for fixed stripe size that is floor(b/v) or ceil(b/v)
// (Corollary 16), the best achievable.
//
// The layout is modified in place. Any prior parity assignment is
// discarded.
func BalanceParity(l *layout.Layout) error {
	b := len(l.Stripes)
	if b == 0 {
		return fmt.Errorf("core: BalanceParity: empty layout")
	}
	loads := l.ParityLoad()
	n := flow.NewNetwork()
	source := n.AddNode()
	sink := n.AddNode()
	stripeNode := n.AddNodes(b)
	diskNode := n.AddNodes(l.V)
	type unitEdge struct {
		stripe, unit, edge int
	}
	var unitEdges []unitEdge
	for si := range l.Stripes {
		n.AddEdge(source, stripeNode+si, 0, 1)
		for ui, u := range l.Stripes[si].Units {
			id := n.AddEdge(stripeNode+si, diskNode+u.Disk, 0, 1)
			unitEdges = append(unitEdges, unitEdge{stripe: si, unit: ui, edge: id})
		}
	}
	for d := 0; d < l.V; d++ {
		lo := loads[d].Num / loads[d].Den // floor(L(d))
		hi := lo
		if loads[d].Num%loads[d].Den != 0 {
			hi++ // ceil(L(d))
		}
		n.AddEdge(diskNode+d, sink, lo, hi)
	}
	val, ok := n.MaxFlowWithLowerBounds(source, sink, flow.Dinic)
	if !ok {
		return fmt.Errorf("core: BalanceParity: parity assignment graph infeasible (Theorem 13 violated)")
	}
	if val != b {
		return fmt.Errorf("core: BalanceParity: max flow %d != b = %d", val, b)
	}
	for si := range l.Stripes {
		l.Stripes[si].Parity = -1
	}
	for _, ue := range unitEdges {
		if n.Flow(ue.edge) == 1 {
			if l.Stripes[ue.stripe].Parity >= 0 {
				return fmt.Errorf("core: BalanceParity: stripe %d assigned two parity units", ue.stripe)
			}
			l.Stripes[ue.stripe].Parity = ue.unit
		}
	}
	for si := range l.Stripes {
		if l.Stripes[si].Parity < 0 {
			return fmt.Errorf("core: BalanceParity: stripe %d received no parity unit", si)
		}
	}
	return nil
}

// MinCopiesForPerfectParity returns lcm(b, v)/b, the number of copies of a
// b-stripe design over v disks that are necessary and sufficient for a
// perfectly balanced parity assignment (Corollary 17, the Holland–Gibson
// lcm conjecture).
func MinCopiesForPerfectParity(b, v int) int {
	if b < 1 || v < 1 {
		panic(fmt.Sprintf("core: MinCopiesForPerfectParity(%d,%d): arguments must be >= 1", b, v))
	}
	return lcm(b, v) / b
}

func lcm(a, b int) int { return a / gcd(a, b) * b }

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// BalancedFromDesign builds a single-copy layout from a BIBD and balances
// its parity with the flow method: the k-times-smaller alternative to the
// Holland–Gibson construction (Section 4, point 2). Parity counts differ
// by at most one across disks.
func BalancedFromDesign(d *design.Design) (*layout.Layout, error) {
	l, err := FromDesignSingle(d)
	if err != nil {
		return nil, err
	}
	if err := BalanceParity(l); err != nil {
		return nil, err
	}
	return l, nil
}

// PerfectlyBalancedFromDesign replicates a BIBD lcm(b,v)/b times and
// balances parity, guaranteeing a perfectly even parity distribution
// (Corollary 17) with the minimum possible replication.
func PerfectlyBalancedFromDesign(d *design.Design) (*layout.Layout, int, error) {
	if err := d.Verify(); err != nil {
		return nil, 0, err
	}
	copies := MinCopiesForPerfectParity(d.B(), d.V)
	single, err := FromDesignSingle(d)
	if err != nil {
		return nil, 0, err
	}
	replicated := layout.Copies(single, copies)
	if err := BalanceParity(replicated); err != nil {
		return nil, 0, err
	}
	if !replicated.ParityPerfectlyBalanced() {
		return nil, 0, fmt.Errorf("core: PerfectlyBalancedFromDesign: flow balance not perfect with %d copies", copies)
	}
	return replicated, copies, nil
}

// SelectDistinguished solves the generalized distinguished-unit problem
// (the extension after Theorem 14): choose cs[s] units from each stripe s
// so every disk holds either floor(L'(d)) or ceil(L'(d)) distinguished
// units, where L'(d) = sum over stripes crossing d of cs/ks. Returns, per
// stripe, the chosen unit indices. Used for distributed sparing layouts.
func SelectDistinguished(l *layout.Layout, cs []int) ([][]int, error) {
	if len(cs) != len(l.Stripes) {
		return nil, fmt.Errorf("core: SelectDistinguished: cs has %d entries, want %d", len(cs), len(l.Stripes))
	}
	total := 0
	den := 1
	for si := range l.Stripes {
		k := len(l.Stripes[si].Units)
		if cs[si] < 0 || cs[si] > k {
			return nil, fmt.Errorf("core: SelectDistinguished: cs[%d]=%d outside [0,%d]", si, cs[si], k)
		}
		total += cs[si]
		den = den / gcd(den, k) * k
	}
	// L'(d) with common denominator den.
	num := make([]int, l.V)
	for si := range l.Stripes {
		s := &l.Stripes[si]
		w := den / len(s.Units) * cs[si]
		for _, u := range s.Units {
			num[u.Disk] += w
		}
	}
	n := flow.NewNetwork()
	source := n.AddNode()
	sink := n.AddNode()
	stripeNode := n.AddNodes(len(l.Stripes))
	diskNode := n.AddNodes(l.V)
	type unitEdge struct{ stripe, unit, edge int }
	var unitEdges []unitEdge
	for si := range l.Stripes {
		n.AddEdge(source, stripeNode+si, cs[si], cs[si])
		for ui, u := range l.Stripes[si].Units {
			id := n.AddEdge(stripeNode+si, diskNode+u.Disk, 0, 1)
			unitEdges = append(unitEdges, unitEdge{si, ui, id})
		}
	}
	for d := 0; d < l.V; d++ {
		lo := num[d] / den
		hi := lo
		if num[d]%den != 0 {
			hi++
		}
		n.AddEdge(diskNode+d, sink, lo, hi)
	}
	val, ok := n.MaxFlowWithLowerBounds(source, sink, flow.Dinic)
	if !ok || val != total {
		return nil, fmt.Errorf("core: SelectDistinguished: infeasible (flow %d, want %d, ok=%v)", val, total, ok)
	}
	out := make([][]int, len(l.Stripes))
	for _, ue := range unitEdges {
		if n.Flow(ue.edge) == 1 {
			out[ue.stripe] = append(out[ue.stripe], ue.unit)
		}
	}
	for si := range out {
		if len(out[si]) != cs[si] {
			return nil, fmt.Errorf("core: SelectDistinguished: stripe %d got %d units, want %d", si, len(out[si]), cs[si])
		}
	}
	return out, nil
}
