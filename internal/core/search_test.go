package core

import (
	"testing"

	"repro/internal/algebra"
	"repro/pdl/layout"
)

func TestFindStairwayBase(t *testing.T) {
	// v=10: q=9 (d=1) works; v=12: q=11 works; v=6: q=5.
	cases := []struct {
		v, wantQ int
	}{{6, 5}, {10, 9}, {12, 11}, {14, 13}, {18, 17}, {20, 19}, {15, 13}}
	for _, c := range cases {
		q, cc, w, ok := FindStairwayBase(c.v)
		if !ok {
			t.Fatalf("FindStairwayBase(%d): not found", c.v)
		}
		if q != c.wantQ {
			t.Errorf("FindStairwayBase(%d): q=%d, want %d", c.v, q, c.wantQ)
		}
		if c.v != cc*(c.v-q)+w || w >= cc {
			t.Errorf("FindStairwayBase(%d): equations violated (c=%d,w=%d)", c.v, cc, w)
		}
	}
}

func TestCoverageScanTo1000(t *testing.T) {
	// The paper claims coverage for all v up to 10,000; the full scan runs
	// in the T5 experiment. Here: every v in [3, 1000] is covered.
	for _, res := range CoverageScan(1000) {
		if res.V < 3 {
			continue
		}
		if !res.Covered {
			t.Errorf("v=%d not covered", res.V)
		}
		if !res.Direct {
			if _, _, ok := algebra.IsPrimePower(res.Q); !ok {
				t.Errorf("v=%d: base %d not a prime power", res.V, res.Q)
			}
		}
	}
}

func TestLayoutForAnyVPrimePower(t *testing.T) {
	l, method, err := LayoutForAnyV(13, 4)
	if err != nil {
		t.Fatal(err)
	}
	if method != "ring" {
		t.Errorf("method = %q, want ring", method)
	}
	if err := l.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestLayoutForAnyVComposite(t *testing.T) {
	for _, c := range []struct{ v, k int }{{6, 3}, {10, 4}, {12, 3}, {15, 4}, {20, 5}, {24, 4}, {33, 6}} {
		l, method, err := LayoutForAnyV(c.v, c.k)
		if err != nil {
			t.Fatalf("(%d,%d): %v", c.v, c.k, err)
		}
		if err := l.Check(); err != nil {
			t.Fatalf("(%d,%d): %v", c.v, c.k, err)
		}
		if l.V != c.v {
			t.Errorf("(%d,%d): built for %d disks", c.v, c.k, l.V)
		}
		if method == "ring" {
			t.Errorf("(%d,%d): composite v should use stairway", c.v, c.k)
		}
		// Approximate balance: spread should stay small relative to size.
		if !l.ParityAssigned() {
			t.Errorf("(%d,%d): parity unassigned", c.v, c.k)
		}
	}
}

func TestLayoutForAnyVInvalid(t *testing.T) {
	if _, _, err := LayoutForAnyV(2, 2); err == nil {
		t.Error("v=2 accepted")
	}
	if _, _, err := LayoutForAnyV(10, 11); err == nil {
		t.Error("k>v accepted")
	}
}

func TestLayoutSizeFormulas(t *testing.T) {
	v, k := 17, 5
	if got := LayoutSize(MethodRing, v, k); got != 5*16 {
		t.Errorf("ring size %d", got)
	}
	if got := LayoutSize(MethodHGRing, v, k); got != 25*16 {
		t.Errorf("HG size %d", got)
	}
	// gcd(16,4) = 4.
	if got := LayoutSize(MethodBalancedTheorem4, v, k); got != 5*16/4 {
		t.Errorf("balanced thm4 size %d", got)
	}
}

func TestFeasibleCountOrdering(t *testing.T) {
	// Smaller layouts admit at least as many feasible configurations.
	hg := FeasibleCount(MethodHGRing, 256, 32)
	ring := FeasibleCount(MethodRing, 256, 32)
	bal := FeasibleCount(MethodBalancedTheorem4, 256, 32)
	if !(hg <= ring && ring <= bal) {
		t.Errorf("feasible counts hg=%d ring=%d bal=%d not monotone", hg, ring, bal)
	}
	if hg == ring {
		t.Errorf("expected ring-based layouts to admit strictly more configs (hg=%d ring=%d)", hg, ring)
	}
}

func TestLayoutSizeMatchesConstruction(t *testing.T) {
	// The formula must agree with an actually constructed ring layout.
	rl, err := NewRingLayout(16, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rl.Size != LayoutSize(MethodRing, 16, 5) {
		t.Errorf("constructed %d, formula %d", rl.Size, LayoutSize(MethodRing, 16, 5))
	}
	if layout.FeasibleTableSize != 10000 {
		t.Errorf("feasibility bound changed: %d", layout.FeasibleTableSize)
	}
}
