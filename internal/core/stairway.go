package core

import (
	"fmt"

	"repro/pdl/layout"
)

// StairwayInfo reports the parameters of a stairway transformation
// (Section 3.2): v = c*(v-q) + w with w < c wide steps (Equations 8, 9).
type StairwayInfo struct {
	Q, K, V int
	C, W    int
	// StepWidth is v - q (normal step width; wide steps are one wider).
	StepWidth int
	// Widths lists the c step widths (each >= StepWidth; the extended
	// construction allows widths beyond StepWidth+1).
	Widths []int
	// RemovedPieces counts the overlap pieces removed (equals W).
	RemovedPieces int
}

// StairwayParams solves Equations (8)-(9) for given q < v: the number of
// copies c and wide steps w with v = c(v-q) + w, 0 <= w < c. It returns
// ok=false when no such pair exists (which requires v <= 2q so the steps
// fit, and v mod (v-q) < floor(v/(v-q))).
func StairwayParams(q, v int) (c, w int, ok bool) {
	d := v - q
	if d < 1 || v > 2*q {
		return 0, 0, false
	}
	c = v / d
	w = v - c*d
	if w >= c || c < 2 {
		return 0, 0, false
	}
	return c, w, true
}

// Stairway applies the stairway transformation (Theorems 10, 11, 12) to a
// ring layout for q disks and stripe size k, producing a layout for v
// disks (q < v <= 2q) with size k(c-1)(q-1):
//
//   - c copies of the q-disk ring layout are stacked,
//   - the staircase above the step boundaries shifts right by v-q and down
//     one row,
//   - each of the w wide steps causes a one-piece overlap, resolved by the
//     Theorem 8 single-disk removal in that copy.
//
// With w = 0 and v = q+1 this is exactly Theorem 10; with (v-q) | v it is
// Theorem 11; otherwise Theorem 12.
func Stairway(rl *RingLayout, v int) (*layout.Layout, StairwayInfo, error) {
	q := rl.Design.V
	if v <= q {
		return nil, StairwayInfo{}, fmt.Errorf("core: Stairway: v=%d must exceed q=%d", v, q)
	}
	c, w, ok := StairwayParams(q, v)
	if !ok {
		return nil, StairwayInfo{}, fmt.Errorf("core: Stairway: no (c,w) with v=%d, q=%d satisfy Eq. (8)-(9)", v, q)
	}
	// Wide steps (width d+1) first, last step normal (w < c guarantees it).
	d := v - q
	widths := make([]int, c)
	for t := 0; t < c; t++ {
		widths[t] = d
		if t < w {
			widths[t] = d + 1
		}
	}
	return stairwayBuild(rl, v, widths)
}

// StairwayWide is the extended transformation sketched after Theorem 12:
// steps may be wider than v-q+1, causing multi-column overlaps that are
// resolved by removing several disks from the affected copy (the
// Theorem 9 machinery, so each step's excess j must keep j(j-1) <= k-j).
// It reaches targets v for which no (c, w) solves Equations (8)-(9), at
// the cost of slightly larger imbalance.
func StairwayWide(rl *RingLayout, v int) (*layout.Layout, StairwayInfo, error) {
	q := rl.Design.V
	k := rl.Design.K
	if v <= q {
		return nil, StairwayInfo{}, fmt.Errorf("core: StairwayWide: v=%d must exceed q=%d", v, q)
	}
	d := v - q
	if d > q {
		return nil, StairwayInfo{}, fmt.Errorf("core: StairwayWide: v=%d > 2q", v)
	}
	jmax := maxRemovable(k)
	// Choose the largest c (smallest layout growth) whose excess can be
	// spread over steps 1..c-1 with at most jmax per step.
	for c := v / d; c >= 2; c-- {
		extra := v - c*d
		if extra < 0 || extra > (c-1)*jmax {
			continue
		}
		widths := make([]int, c)
		for t := 0; t < c; t++ {
			widths[t] = d
		}
		for t := 0; t < c-1 && extra > 0; t++ {
			take := jmax
			if take > extra {
				take = extra
			}
			widths[t] += take
			extra -= take
		}
		if extra > 0 {
			continue
		}
		return stairwayBuild(rl, v, widths)
	}
	return nil, StairwayInfo{}, fmt.Errorf("core: StairwayWide: no feasible step widths for q=%d, v=%d, k=%d", q, v, k)
}

// maxRemovable returns the largest i >= 0 with i(i-1) <= k-i (the
// Theorem 9 feasibility condition for removing i disks from stripes of
// size k).
func maxRemovable(k int) int {
	i := 0
	for (i+1)*i <= k-(i+1) {
		i++
	}
	return i
}

// stairwayBuild constructs the transformed layout for explicit step
// widths: len(widths) = c copies, each width >= d = v-q, the last exactly
// d, and widths summing to v. Step t's excess j_t = widths[t]-d causes a
// j_t-column overlap resolved by removing disks b[t-1]..b[t-1]+j_t-1
// (0-indexed) from copy t.
func stairwayBuild(rl *RingLayout, v int, widths []int) (*layout.Layout, StairwayInfo, error) {
	q := rl.Design.V
	k := rl.Design.K
	d := v - q
	c := len(widths)
	if c < 2 {
		return nil, StairwayInfo{}, fmt.Errorf("core: stairway: need at least 2 steps")
	}
	totalExtra := 0
	sum := 0
	for t, wd := range widths {
		if wd < d {
			return nil, StairwayInfo{}, fmt.Errorf("core: stairway: step %d narrower than v-q", t)
		}
		totalExtra += wd - d
		sum += wd
	}
	if sum != v {
		return nil, StairwayInfo{}, fmt.Errorf("core: stairway: widths sum to %d, want v=%d", sum, v)
	}
	if widths[c-1] != d {
		return nil, StairwayInfo{}, fmt.Errorf("core: stairway: last step must have width v-q")
	}
	info := StairwayInfo{Q: q, K: k, V: v, C: c, W: totalExtra, StepWidth: d,
		Widths: append([]int(nil), widths...), RemovedPieces: totalExtra}

	// Step boundaries: b[t] = columns covered by the first t steps
	// (1-indexed columns).
	b := make([]int, c+1)
	for t := 1; t <= c; t++ {
		b[t] = b[t-1] + widths[t-1]
	}
	if b[c] != v || b[c-1] != q {
		return nil, StairwayInfo{}, fmt.Errorf("core: stairway: step boundary mismatch (b[c]=%d, b[c-1]=%d)", b[c], b[c-1])
	}

	// Per-copy stripe specs on original disk ids; copy t removes its
	// overlap columns.
	pieceH := k * (q - 1) // units per piece = ring layout size
	copySpecs := make([][]stripeSpec, c+1)
	for t := 1; t <= c; t++ {
		j := widths[t-1] - d
		if j > 0 {
			removed := make([]int, j)
			for i := range removed {
				removed[i] = b[t-1] + i
			}
			specs, err := removalSpecs(rl, removed)
			if err != nil {
				return nil, StairwayInfo{}, fmt.Errorf("core: stairway: copy %d removal: %w", t, err)
			}
			copySpecs[t] = specs
		} else {
			specs := make([]stripeSpec, len(rl.Design.Tuples))
			for i, tuple := range rl.Design.Tuples {
				specs[i] = stripeSpec{disks: append([]int(nil), tuple...), parityDisk: tuple[0]}
			}
			copySpecs[t] = specs
		}
	}

	// Piece placement: old (copy t, 1-indexed column col) maps to
	//   col > b[t-1]: new column col+d, row t      (shifted part)
	//   col <= b[t-1]: new column col, row t-1     (unshifted part)
	// Rows are 1..c-1; each new disk stacks c-1 pieces of height pieceH.
	newPos := func(t, col0 int) (disk, row int) {
		col := col0 + 1
		if col > b[t-1] {
			return col + d - 1, t
		}
		return col - 1, t - 1
	}

	// Per-copy, per-disk unit offsets within the piece replicate the
	// canonical ring layout's offset assignment (stripe order).
	nextInPiece := make([]int, q)
	out := &layout.Layout{V: v, Size: pieceH * (c - 1)}
	for t := 1; t <= c; t++ {
		for i := range nextInPiece {
			nextInPiece[i] = 0
		}
		for _, spec := range copySpecs[t] {
			units := make([]layout.Unit, len(spec.disks))
			parity := -1
			for j, col0 := range spec.disks {
				off := nextInPiece[col0]
				nextInPiece[col0]++
				disk, row := newPos(t, col0)
				if disk < 0 || disk >= v || row < 1 || row > c-1 {
					return nil, StairwayInfo{}, fmt.Errorf("core: Stairway: piece (copy %d, col %d) out of grid (disk %d, row %d)", t, col0, disk, row)
				}
				units[j] = layout.Unit{Disk: disk, Offset: (row-1)*pieceH + off}
				if col0 == spec.parityDisk {
					parity = j
				}
			}
			if parity < 0 {
				return nil, StairwayInfo{}, fmt.Errorf("core: Stairway: stripe lost its parity disk")
			}
			out.Stripes = append(out.Stripes, layout.Stripe{Units: units, Parity: parity})
		}
	}
	if err := out.Check(); err != nil {
		return nil, StairwayInfo{}, fmt.Errorf("core: Stairway: invalid result: %w", err)
	}
	return out, info, nil
}

// Theorem10Bounds returns the exact balance promised for v = q+1: size
// kq(q-1), parity overhead 1/k, reconstruction workload (k-1)/q.
func Theorem10Bounds(q, k int) (size int, overhead, workload layout.Ratio) {
	return k * q * (q - 1), layout.R(1, k), layout.R(k-1, q)
}

// Theorem11Bounds returns the bounds for (v-q) | v: size k(c-1)(q-1),
// parity overhead exactly 1/k, workload in
// [((c-2)/(c-1))((k-1)/(q-1)), (k-1)/(q-1)].
func Theorem11Bounds(q, k, v int) (size int, overhead layout.Ratio, wMin, wMax layout.Ratio) {
	c := v / (v - q)
	return k * (c - 1) * (q - 1), layout.R(1, k),
		layout.R((c-2)*(k-1), (c-1)*(q-1)), layout.R(k-1, q-1)
}

// Theorem12Bounds returns the bounds for the mixed-width case: size
// k(c-1)(q-1), parity overhead in
// [1/k + (w-1)/(k(c-1)(q-1)), 1/k + w/(k(c-1)(q-1))], workload as in
// Theorem 11.
func Theorem12Bounds(q, k, v, c, w int) (size int, oMin, oMax, wMin, wMax layout.Ratio) {
	den := k * (c - 1) * (q - 1)
	lowNum := (c-1)*(q-1) + (w - 1)
	if w == 0 {
		lowNum = (c - 1) * (q - 1)
	}
	return den,
		layout.R(lowNum, den),
		layout.R((c-1)*(q-1)+w, den),
		layout.R((c-2)*(k-1), (c-1)*(q-1)),
		layout.R(k-1, q-1)
}
