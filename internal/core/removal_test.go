package core

import (
	"testing"

	"repro/pdl/layout"
)

func TestRemoveDiskTheorem8(t *testing.T) {
	for _, c := range []struct{ v, k int }{{8, 3}, {9, 4}, {13, 4}, {16, 5}, {25, 5}} {
		rl, err := NewRingLayout(c.v, c.k)
		if err != nil {
			t.Fatal(err)
		}
		l, err := RemoveDisk(rl, 0)
		if err != nil {
			t.Fatalf("(%d,%d): %v", c.v, c.k, err)
		}
		if err := l.Check(); err != nil {
			t.Fatalf("(%d,%d): %v", c.v, c.k, err)
		}
		if l.V != c.v-1 {
			t.Errorf("(%d,%d): v = %d, want %d", c.v, c.k, l.V, c.v-1)
		}
		if l.Size != c.k*(c.v-1) {
			t.Errorf("(%d,%d): size %d, want %d", c.v, c.k, l.Size, c.k*(c.v-1))
		}
		// Stripe sizes k and k-1.
		smin, smax := l.StripeSizes()
		if smin != c.k-1 || smax != c.k {
			t.Errorf("(%d,%d): stripe sizes [%d,%d], want [%d,%d]", c.v, c.k, smin, smax, c.k-1, c.k)
		}
		// Theorem 8: parity overhead exactly (1/k)(v/(v-1)) on every disk.
		want := layout.R(c.v, c.k*(c.v-1))
		omin, omax := l.ParityOverheadRange()
		if !omin.Equal(want) || !omax.Equal(want) {
			t.Errorf("(%d,%d): overhead [%v,%v], want exactly %v", c.v, c.k, omin, omax, want)
		}
		// Reconstruction workload exactly (k-1)/(v-1).
		wWant := layout.R(c.k-1, c.v-1)
		wmin, wmax := l.ReconstructionWorkloadRange()
		if !wmin.Equal(wWant) || !wmax.Equal(wWant) {
			t.Errorf("(%d,%d): workload [%v,%v], want exactly %v", c.v, c.k, wmin, wmax, wWant)
		}
	}
}

func TestRemoveDiskAnyDisk(t *testing.T) {
	// Removing any disk (not just 0) must work identically.
	rl, err := NewRingLayout(9, 4)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 9; x++ {
		l, err := RemoveDisk(rl, x)
		if err != nil {
			t.Fatalf("remove %d: %v", x, err)
		}
		if err := l.Check(); err != nil {
			t.Fatalf("remove %d: %v", x, err)
		}
		if !l.ParityPerfectlyBalanced() {
			t.Errorf("remove %d: parity not perfectly balanced", x)
		}
	}
}

func TestRemoveDisksTheorem9(t *testing.T) {
	cases := []struct {
		v, k int
		rm   []int
	}{
		{16, 9, []int{0, 1}},           // i=2 < 3 = sqrt(9)
		{16, 10, []int{0, 1, 2}},       // i=3 < sqrt(10)? 3^2=9 < 10 yes
		{25, 16, []int{0, 5, 7}},       // i=3 < 4
		{13, 9, []int{2, 11}},          // i=2 < 3
		{27, 26, []int{0, 1, 2, 3, 4}}, // i=5, k=26: 25 < 26
	}
	for _, c := range cases {
		rl, err := NewRingLayout(c.v, c.k)
		if err != nil {
			t.Fatal(err)
		}
		l, err := RemoveDisks(rl, c.rm)
		if err != nil {
			t.Fatalf("(%d,%d) rm %v: %v", c.v, c.k, c.rm, err)
		}
		if err := l.Check(); err != nil {
			t.Fatalf("(%d,%d): %v", c.v, c.k, err)
		}
		i := len(c.rm)
		if l.V != c.v-i {
			t.Errorf("(%d,%d): v=%d, want %d", c.v, c.k, l.V, c.v-i)
		}
		// Stripe sizes within [k-i, k].
		smin, smax := l.StripeSizes()
		if smin < c.k-i || smax > c.k {
			t.Errorf("(%d,%d): stripe sizes [%d,%d] outside [%d,%d]", c.v, c.k, smin, smax, c.k-i, c.k)
		}
		// Theorem 9 parity overhead bounds: each disk holds v+i-1 or v+i
		// parity units over k(v-1).
		oLo := layout.R(c.v+i-1, c.k*(c.v-1))
		oHi := layout.R(c.v+i, c.k*(c.v-1))
		omin, omax := l.ParityOverheadRange()
		if omin.Cmp(oLo) < 0 || omax.Cmp(oHi) > 0 {
			t.Errorf("(%d,%d): overhead [%v,%v] outside [%v,%v]", c.v, c.k, omin, omax, oLo, oHi)
		}
		// Workload exactly (k-1)/(v-1).
		wWant := layout.R(c.k-1, c.v-1)
		wmin, wmax := l.ReconstructionWorkloadRange()
		if !wmin.Equal(wWant) || !wmax.Equal(wWant) {
			t.Errorf("(%d,%d): workload [%v,%v], want %v", c.v, c.k, wmin, wmax, wWant)
		}
	}
}

func TestRemoveDisksParitySpreadAtMostOne(t *testing.T) {
	rl, err := NewRingLayout(16, 9)
	if err != nil {
		t.Fatal(err)
	}
	l, err := RemoveDisks(rl, []int{3, 8})
	if err != nil {
		t.Fatal(err)
	}
	if s := l.ParitySpread(); s > 1 {
		t.Errorf("parity spread %d > 1", s)
	}
}

func TestRemoveDisksRejectsTooMany(t *testing.T) {
	rl, err := NewRingLayout(9, 4)
	if err != nil {
		t.Fatal(err)
	}
	// i=3, k=4: i(i-1)=6 > k-i=1.
	if _, err := RemoveDisks(rl, []int{0, 1, 2}); err == nil {
		t.Error("expected rejection for i too large")
	}
}

func TestRemoveDisksRejectsDuplicates(t *testing.T) {
	rl, err := NewRingLayout(9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RemoveDisks(rl, []int{1, 1}); err == nil {
		t.Error("duplicate removal accepted")
	}
	if _, err := RemoveDisks(rl, []int{-1}); err == nil {
		t.Error("out-of-range removal accepted")
	}
}

func TestRemoveDisksEmpty(t *testing.T) {
	rl, err := NewRingLayout(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	l, err := RemoveDisks(rl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if l.V != 7 || len(l.Stripes) != len(rl.Stripes) {
		t.Error("empty removal changed the layout")
	}
}

func TestRemoveDiskDataIntegrity(t *testing.T) {
	// End to end: the v-1 disk layout still reconstructs real data.
	rl, err := NewRingLayout(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	l, err := RemoveDisk(rl, 4)
	if err != nil {
		t.Fatal(err)
	}
	d, err := layout.NewData(l, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.Mapping().DataUnits(); i++ {
		if err := d.WriteLogical(i, []byte{byte(i), byte(i >> 8), 3, 7}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.CheckReconstruction(); err != nil {
		t.Fatal(err)
	}
}
