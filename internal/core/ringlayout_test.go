package core

import (
	"testing"

	"repro/pdl/layout"
)

func TestRingLayoutBasics(t *testing.T) {
	for _, c := range []struct{ v, k int }{{4, 3}, {5, 3}, {7, 3}, {8, 4}, {9, 4}, {13, 5}, {16, 4}} {
		rl, err := NewRingLayout(c.v, c.k)
		if err != nil {
			t.Fatalf("(%d,%d): %v", c.v, c.k, err)
		}
		if err := rl.Check(); err != nil {
			t.Fatalf("(%d,%d): %v", c.v, c.k, err)
		}
		if rl.Size != c.k*(c.v-1) {
			t.Errorf("(%d,%d): size %d, want k(v-1)=%d", c.v, c.k, rl.Size, c.k*(c.v-1))
		}
		if len(rl.Stripes) != c.v*(c.v-1) {
			t.Errorf("(%d,%d): %d stripes, want v(v-1)=%d", c.v, c.k, len(rl.Stripes), c.v*(c.v-1))
		}
	}
}

func TestRingLayoutPerfectParityBalance(t *testing.T) {
	// Section 3.1: parity on disk x for stripe (x,y) gives each disk
	// exactly v-1 parity units.
	rl, err := NewRingLayout(9, 4)
	if err != nil {
		t.Fatal(err)
	}
	for disk, c := range rl.ParityCounts() {
		if c != 8 {
			t.Errorf("disk %d: %d parity units, want 8", disk, c)
		}
	}
	if !rl.ParityPerfectlyBalanced() {
		t.Error("ring layout parity must be perfectly balanced")
	}
	// Overhead = (v-1)/(k(v-1)) = 1/k.
	min, max := rl.ParityOverheadRange()
	if !min.Equal(layout.R(1, 4)) || !max.Equal(layout.R(1, 4)) {
		t.Errorf("overhead [%v,%v], want 1/4", min, max)
	}
}

func TestRingLayoutWorkloadBalance(t *testing.T) {
	rl, err := NewRingLayout(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := layout.R(2, 7) // (k-1)/(v-1)
	min, max := rl.ReconstructionWorkloadRange()
	if !min.Equal(want) || !max.Equal(want) {
		t.Errorf("workload [%v,%v], want %v", min, max, want)
	}
}

func TestRingLayoutNoReplication(t *testing.T) {
	// The ring layout is k times smaller than the HG construction over the
	// same design (k(v-1) vs k*k(v-1)).
	rl, err := NewRingLayout(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rl.Size*4 != 4*4*(8-1) {
		t.Errorf("ring layout size %d, HG would be %d", rl.Size, 4*4*7)
	}
}

func TestRingLayoutCompositeV(t *testing.T) {
	rl, err := NewRingLayout(12, 3) // M(12) = 3
	if err != nil {
		t.Fatal(err)
	}
	if err := rl.Check(); err != nil {
		t.Fatal(err)
	}
	if !rl.ParityPerfectlyBalanced() || !rl.WorkloadPerfectlyBalanced() {
		t.Error("composite-v ring layout must be perfectly balanced")
	}
}

func TestRingLayoutRejectsTheorem2Violation(t *testing.T) {
	if _, err := NewRingLayout(12, 4); err == nil {
		t.Error("(12,4) exceeds M(12)=3; must fail")
	}
	if _, err := NewRingLayout(6, 3); err == nil {
		t.Error("(6,3) exceeds M(6)=2; must fail")
	}
}

func TestRingLayoutDataReconstruction(t *testing.T) {
	rl, err := NewRingLayout(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	d, err := layout.NewData(rl.Layout, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.Mapping().DataUnits(); i++ {
		payload := make([]byte, 8)
		for j := range payload {
			payload[j] = byte(i + j*17)
		}
		if err := d.WriteLogical(i, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.CheckReconstruction(); err != nil {
		t.Fatal(err)
	}
}
