package core

import (
	"testing"

	"repro/pdl/layout"
)

func TestStairwayParams(t *testing.T) {
	cases := []struct {
		q, v int
		c, w int
		ok   bool
	}{
		{5, 6, 6, 0, true},   // Theorem 10: d=1, c=v, w=0
		{8, 10, 5, 0, true},  // Theorem 11: d=2 divides 10
		{7, 9, 4, 1, true},   // Theorem 12: d=2, 9=4*2+1
		{9, 12, 4, 0, true},  // d=3 divides 12
		{5, 11, 0, 0, false}, // v > 2q
		{7, 7, 0, 0, false},  // v == q
	}
	for _, c := range cases {
		gc, gw, ok := StairwayParams(c.q, c.v)
		if ok != c.ok || (ok && (gc != c.c || gw != c.w)) {
			t.Errorf("StairwayParams(%d,%d) = (%d,%d,%v), want (%d,%d,%v)", c.q, c.v, gc, gw, ok, c.c, c.w, c.ok)
		}
		if ok {
			// Equations (8) and (9).
			if c.v != gc*(c.v-c.q)+gw || gw >= gc {
				t.Errorf("StairwayParams(%d,%d): equations violated", c.q, c.v)
			}
		}
	}
}

func TestStairwayTheorem10(t *testing.T) {
	// v = q+1: perfect parity, workload exactly (k-1)/q.
	for _, c := range []struct{ q, k int }{{5, 3}, {7, 3}, {8, 4}, {9, 3}} {
		rl, err := NewRingLayout(c.q, c.k)
		if err != nil {
			t.Fatal(err)
		}
		v := c.q + 1
		l, info, err := Stairway(rl, v)
		if err != nil {
			t.Fatalf("(q=%d,k=%d): %v", c.q, c.k, err)
		}
		if err := l.Check(); err != nil {
			t.Fatalf("(q=%d,k=%d): %v", c.q, c.k, err)
		}
		wantSize, wantOverhead, wantWorkload := Theorem10Bounds(c.q, c.k)
		if l.Size != wantSize {
			t.Errorf("(q=%d,k=%d): size %d, want %d", c.q, c.k, l.Size, wantSize)
		}
		if info.W != 0 || info.C != v {
			t.Errorf("(q=%d,k=%d): info c=%d w=%d", c.q, c.k, info.C, info.W)
		}
		omin, omax := l.ParityOverheadRange()
		if !omin.Equal(wantOverhead) || !omax.Equal(wantOverhead) {
			t.Errorf("(q=%d,k=%d): overhead [%v,%v], want %v", c.q, c.k, omin, omax, wantOverhead)
		}
		wmin, wmax := l.ReconstructionWorkloadRange()
		if !wmax.Equal(wantWorkload) {
			t.Errorf("(q=%d,k=%d): max workload %v, want %v", c.q, c.k, wmax, wantWorkload)
		}
		_ = wmin
	}
}

func TestStairwayTheorem11(t *testing.T) {
	// (v-q) | v: perfect parity balance, workload within bounds.
	for _, c := range []struct{ q, k, v int }{{8, 4, 10}, {9, 3, 12}, {16, 4, 20}, {25, 5, 30}} {
		rl, err := NewRingLayout(c.q, c.k)
		if err != nil {
			t.Fatal(err)
		}
		l, info, err := Stairway(rl, c.v)
		if err != nil {
			t.Fatalf("(q=%d,k=%d,v=%d): %v", c.q, c.k, c.v, err)
		}
		if err := l.Check(); err != nil {
			t.Fatalf("(q=%d,k=%d,v=%d): %v", c.q, c.k, c.v, err)
		}
		if info.W != 0 {
			t.Fatalf("(q=%d,k=%d,v=%d): w=%d, want 0", c.q, c.k, c.v, info.W)
		}
		size, overhead, wLo, wHi := Theorem11Bounds(c.q, c.k, c.v)
		if l.Size != size {
			t.Errorf("size %d, want %d", l.Size, size)
		}
		omin, omax := l.ParityOverheadRange()
		if !omin.Equal(overhead) || !omax.Equal(overhead) {
			t.Errorf("(q=%d,v=%d): overhead [%v,%v], want exactly %v", c.q, c.v, omin, omax, overhead)
		}
		wmin, wmax := l.ReconstructionWorkloadRange()
		if wmin.Cmp(wLo) < 0 || wmax.Cmp(wHi) > 0 {
			t.Errorf("(q=%d,v=%d): workload [%v,%v] outside [%v,%v]", c.q, c.v, wmin, wmax, wLo, wHi)
		}
	}
}

func TestStairwayTheorem12MixedSteps(t *testing.T) {
	for _, c := range []struct{ q, k, v int }{{7, 3, 9}, {13, 4, 15}, {11, 3, 14}, {16, 5, 21}} {
		rl, err := NewRingLayout(c.q, c.k)
		if err != nil {
			t.Fatal(err)
		}
		l, info, err := Stairway(rl, c.v)
		if err != nil {
			t.Fatalf("(q=%d,k=%d,v=%d): %v", c.q, c.k, c.v, err)
		}
		if err := l.Check(); err != nil {
			t.Fatalf("(q=%d,k=%d,v=%d): %v", c.q, c.k, c.v, err)
		}
		if info.W == 0 {
			t.Fatalf("(q=%d,v=%d): expected wide steps", c.q, c.v)
		}
		size, oLo, oHi, wLo, wHi := Theorem12Bounds(c.q, c.k, c.v, info.C, info.W)
		if l.Size != size {
			t.Errorf("(q=%d,v=%d): size %d, want %d", c.q, c.v, l.Size, size)
		}
		omin, omax := l.ParityOverheadRange()
		if omin.Cmp(oLo) < 0 || omax.Cmp(oHi) > 0 {
			t.Errorf("(q=%d,v=%d): overhead [%v,%v] outside [%v,%v]", c.q, c.v, omin, omax, oLo, oHi)
		}
		wmin, wmax := l.ReconstructionWorkloadRange()
		if wmin.Cmp(wLo) < 0 || wmax.Cmp(wHi) > 0 {
			t.Errorf("(q=%d,v=%d): workload [%v,%v] outside [%v,%v]", c.q, c.v, wmin, wmax, wLo, wHi)
		}
	}
}

func TestStairwayRejectsInvalid(t *testing.T) {
	rl, err := NewRingLayout(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Stairway(rl, 5); err == nil {
		t.Error("v == q accepted")
	}
	if _, _, err := Stairway(rl, 11); err == nil {
		t.Error("v > 2q accepted")
	}
}

func TestStairwayStripeSizes(t *testing.T) {
	// Mixed steps remove disks, so stripes are size k or k-1; pure steps
	// keep k everywhere.
	rl, err := NewRingLayout(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	l, info, err := Stairway(rl, 10)
	if err != nil {
		t.Fatal(err)
	}
	if info.W != 0 {
		t.Fatal("expected pure Theorem 11 case")
	}
	smin, smax := l.StripeSizes()
	if smin != 4 || smax != 4 {
		t.Errorf("stripe sizes [%d,%d], want [4,4]", smin, smax)
	}

	rl2, err := NewRingLayout(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	l2, info2, err := Stairway(rl2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if info2.W == 0 {
		t.Fatal("expected mixed case")
	}
	smin2, smax2 := l2.StripeSizes()
	if smin2 != 2 || smax2 != 3 {
		t.Errorf("stripe sizes [%d,%d], want [2,3]", smin2, smax2)
	}
}

func TestStairwayDataIntegrity(t *testing.T) {
	rl, err := NewRingLayout(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	l, _, err := Stairway(rl, 9)
	if err != nil {
		t.Fatal(err)
	}
	d, err := layout.NewData(l, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.Mapping().DataUnits(); i++ {
		if err := d.WriteLogical(i, []byte{byte(i), byte(i * 3), byte(i * 7), 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.CheckReconstruction(); err != nil {
		t.Fatal(err)
	}
}

func TestStairwaySweepAllValid(t *testing.T) {
	// Every reachable v from several bases produces a valid layout.
	for _, q := range []int{5, 7, 8, 9, 11, 13} {
		rl, err := NewRingLayout(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		for v := q + 1; v <= 2*q; v++ {
			if _, _, ok := StairwayParams(q, v); !ok {
				continue
			}
			l, _, err := Stairway(rl, v)
			if err != nil {
				t.Errorf("q=%d v=%d: %v", q, v, err)
				continue
			}
			if err := l.Check(); err != nil {
				t.Errorf("q=%d v=%d: %v", q, v, err)
			}
		}
	}
}
