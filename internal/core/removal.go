package core

import (
	"fmt"
	"sort"

	"repro/internal/flow"
	"repro/pdl/layout"
)

// removalSpecs computes, for a ring layout with the given disks removed,
// the surviving stripe structure on the ORIGINAL disk ids (removed disks
// simply no longer appear in any stripe), with parity reassigned per the
// proofs of Theorems 8 and 9:
//
//   - a stripe (x, y) whose parity disk x was removed moves its parity to
//     the disk x + y(g_1 - g_0) (tuple position 1);
//   - if that disk was removed too, the stripe joins the leftover pool,
//     which is matched to surviving disks so no disk takes more than one
//     leftover (a bipartite matching, feasible whenever i(i-1) <= k-i,
//     which i < sqrt(k) guarantees).
func removalSpecs(rl *RingLayout, removed []int) ([]stripeSpec, error) {
	v := rl.Design.V
	k := rl.Design.K
	isRemoved := make([]bool, v)
	for _, x := range removed {
		if x < 0 || x >= v {
			return nil, fmt.Errorf("core: removal: disk %d out of range", x)
		}
		if isRemoved[x] {
			return nil, fmt.Errorf("core: removal: disk %d removed twice", x)
		}
		isRemoved[x] = true
	}
	i := len(removed)
	if i >= k {
		return nil, fmt.Errorf("core: removal: removing %d disks from stripes of size %d", i, k)
	}
	specs := make([]stripeSpec, len(rl.Design.Tuples))
	// extraParity[d] tracks how many reassigned (non-leftover) parity units
	// each surviving disk has taken, to report balance in tests; matching
	// separately ensures leftovers add at most one each.
	var leftovers []int // stripe indices needing a leftover assignment
	for t, tuple := range rl.Design.Tuples {
		var disks []int
		for _, d := range tuple {
			if !isRemoved[d] {
				disks = append(disks, d)
			}
		}
		if len(disks) == 0 {
			return nil, fmt.Errorf("core: removal: stripe %d fully removed", t)
		}
		x := tuple[0] // original parity disk for stripe (x, y)
		spec := stripeSpec{disks: disks, parityDisk: x}
		if isRemoved[x] {
			// Theorem 8 reassignment target: tuple position 1.
			if len(tuple) < 2 {
				return nil, fmt.Errorf("core: removal: stripe %d too small to reassign parity", t)
			}
			target := tuple[1]
			if isRemoved[target] {
				spec.parityDisk = -1 // leftover, matched below
				leftovers = append(leftovers, t)
			} else {
				spec.parityDisk = target
			}
		}
		specs[t] = spec
	}
	if len(leftovers) > 0 {
		// Bipartite matching: each leftover stripe chooses one of its
		// surviving disks; each disk accepts at most one leftover.
		adj := make([][]int, len(leftovers))
		for li, t := range leftovers {
			adj[li] = append([]int(nil), specs[t].disks...)
		}
		caps := make([]int, v)
		for d := 0; d < v; d++ {
			if !isRemoved[d] {
				caps[d] = 1
			}
		}
		assign := flow.BipartiteAssign(adj, caps)
		if assign == nil {
			return nil, fmt.Errorf("core: removal: no leftover-parity matching for %d leftovers (need i < sqrt(k); i=%d, k=%d)", len(leftovers), i, k)
		}
		for li, t := range leftovers {
			specs[t].parityDisk = assign[li]
		}
	}
	return specs, nil
}

// relabelSpecs renumbers disks to 0..v-len(removed)-1, dropping removed ids.
func relabelSpecs(v int, specs []stripeSpec, removed []int) (int, []stripeSpec) {
	isRemoved := make([]bool, v)
	for _, x := range removed {
		isRemoved[x] = true
	}
	newID := make([]int, v)
	next := 0
	for d := 0; d < v; d++ {
		if isRemoved[d] {
			newID[d] = -1
			continue
		}
		newID[d] = next
		next++
	}
	out := make([]stripeSpec, len(specs))
	for i, s := range specs {
		disks := make([]int, len(s.disks))
		for j, d := range s.disks {
			disks[j] = newID[d]
		}
		out[i] = stripeSpec{disks: disks, parityDisk: newID[s.parityDisk]}
	}
	return next, out
}

// RemoveDisk applies Theorem 8: from a ring layout for v disks, remove one
// disk to obtain a layout for v-1 disks with size k(v-1), stripes of size
// k and k-1, parity overhead exactly (1/k)(v/(v-1)) on every disk, and
// reconstruction workload exactly (k-1)/(v-1).
func RemoveDisk(rl *RingLayout, x int) (*layout.Layout, error) {
	return RemoveDisks(rl, []int{x})
}

// RemoveDisks applies Theorem 9: remove i disks (i < sqrt(k)) from a ring
// layout for v disks, producing a layout for v-i disks with size k(v-1),
// stripe sizes in [k-i, k], parity overhead between
// (v+i-1)/(k(v-1)) and (v+i)/(k(v-1)), and reconstruction workload
// exactly (k-1)/(v-1).
func RemoveDisks(rl *RingLayout, removed []int) (*layout.Layout, error) {
	if len(removed) == 0 {
		return rl.Layout.Clone(), nil
	}
	i := len(removed)
	k := rl.Design.K
	if i > 1 && i*i >= k {
		// Theorem 9 requires i < sqrt(k); the matching can occasionally
		// succeed beyond it, but the theorem's guarantee is void, so reject
		// only when the matching itself fails (checked in removalSpecs).
		// Still warn via error when i(i-1) > k-i, where Hall's condition
		// may fail.
		if i*(i-1) > k-i {
			return nil, fmt.Errorf("core: RemoveDisks: i=%d too large for k=%d (need i(i-1) <= k-i)", i, k)
		}
	}
	specs, err := removalSpecs(rl, removed)
	if err != nil {
		return nil, err
	}
	sorted := append([]int(nil), removed...)
	sort.Ints(sorted)
	newV, relabeled := relabelSpecs(rl.Design.V, specs, sorted)
	return assembleSpecs(newV, relabeled)
}
