package core

import (
	"fmt"

	"repro/internal/algebra"
	"repro/pdl/layout"
)

// FindStairwayBase returns, for a target array size v, the largest prime
// power q < v from which the stairway transformation can reach v, along
// with the (c, w) parameters. ok is false if no prime power works. Prime
// power v itself never needs a stairway (a ring layout exists directly).
func FindStairwayBase(v int) (q, c, w int, ok bool) {
	for q = v - 1; q >= 2; q-- {
		if _, _, isPP := algebra.IsPrimePower(q); !isPP {
			continue
		}
		if c, w, ok := StairwayParams(q, v); ok {
			return q, c, w, true
		}
	}
	return 0, 0, 0, false
}

// CoverageResult summarizes the Section 3.2 computational claim for one v.
type CoverageResult struct {
	V       int
	Direct  bool // v is a prime power: exact ring layout, no stairway needed
	Q, C, W int  // stairway parameters when !Direct
	Covered bool
}

// CoverageScan verifies the paper's claim that every v up to maxV admits
// either a direct ring layout (prime power v) or a stairway base: a prime
// power q <= v with valid (c, w). It returns one result per v in [2, maxV].
func CoverageScan(maxV int) []CoverageResult {
	results := make([]CoverageResult, 0, maxV-1)
	for v := 2; v <= maxV; v++ {
		res := CoverageResult{V: v}
		if _, _, isPP := algebra.IsPrimePower(v); isPP {
			res.Direct = true
			res.Covered = true
		} else if q, c, w, ok := FindStairwayBase(v); ok {
			res.Q, res.C, res.W = q, c, w
			res.Covered = true
		}
		results = append(results, res)
	}
	return results
}

// LayoutForAnyV builds a parity-declustered layout for an arbitrary v >= 3
// and stripe size k: directly when v is a prime power with k <= v,
// otherwise by the stairway transformation from the best prime-power base
// (requiring k <= q). This realizes the paper's headline capability:
// feasible layouts for virtually all array and stripe sizes.
func LayoutForAnyV(v, k int) (*layout.Layout, string, error) {
	if v < 3 || k < 2 || k > v {
		return nil, "", fmt.Errorf("core: LayoutForAnyV(%d,%d): invalid parameters", v, k)
	}
	if _, _, isPP := algebra.IsPrimePower(v); isPP {
		rl, err := NewRingLayout(v, k)
		if err != nil {
			return nil, "", err
		}
		return rl.Layout, "ring", nil
	}
	return StairwayForV(v, k)
}

// StairwayForV searches prime-power bases for a stairway transformation
// reaching v with stripe size k: the largest base q with k <= q and valid
// (c, w) first, then the extended (wide-step) stairway when Equations
// (8)-(9) have no solution from any base. This is the single source of
// truth for base selection, shared by LayoutForAnyV and the public
// "stairway" construction method.
func StairwayForV(v, k int) (*layout.Layout, string, error) {
	for q := v - 1; q >= k; q-- {
		if _, _, isPP := algebra.IsPrimePower(q); !isPP {
			continue
		}
		if _, _, ok := StairwayParams(q, v); !ok {
			continue
		}
		rl, err := NewRingLayout(q, k)
		if err != nil {
			continue
		}
		out, _, err := Stairway(rl, v)
		if err != nil {
			continue
		}
		return out, fmt.Sprintf("stairway(q=%d)", q), nil
	}
	for q := v - 1; q >= k && q >= v/2; q-- {
		if _, _, isPP := algebra.IsPrimePower(q); !isPP {
			continue
		}
		rl, err := NewRingLayout(q, k)
		if err != nil {
			continue
		}
		out, _, err := StairwayWide(rl, v)
		if err != nil {
			continue
		}
		return out, fmt.Sprintf("stairway-wide(q=%d)", q), nil
	}
	return nil, "", fmt.Errorf("core: StairwayForV(%d,%d): no prime-power base found", v, k)
}

// FeasibilityMethod identifies a layout construction whose size is being
// tested against the Condition 4 bound.
type FeasibilityMethod int

const (
	// MethodHGRing: Holland–Gibson k-copy layout over the full ring-based
	// design: size k * k(v-1).
	MethodHGRing FeasibilityMethod = iota
	// MethodRing: ring-based layout, size k(v-1).
	MethodRing
	// MethodBalancedTheorem4: single copy of the Theorem 4 reduced design
	// with flow-balanced parity: size k(v-1)/gcd(v-1,k-1).
	MethodBalancedTheorem4
)

// LayoutSize returns the size (units per disk) each method would produce
// for a prime-power v; it does not construct the layout.
func LayoutSize(method FeasibilityMethod, v, k int) int {
	switch method {
	case MethodHGRing:
		return k * k * (v - 1)
	case MethodRing:
		return k * (v - 1)
	case MethodBalancedTheorem4:
		return k * (v - 1) / algebra.GCD(v-1, k-1)
	default:
		panic("core: LayoutSize: unknown method")
	}
}

// FeasibleCount counts, over prime powers v <= maxV and 2 <= k <= min(v,
// maxK), how many (v, k) pairs each method keeps within the Condition 4
// bound (layout size <= layout.FeasibleTableSize). It quantifies the
// paper's claim that smaller layouts greatly increase the number of
// feasible configurations.
func FeasibleCount(method FeasibilityMethod, maxV, maxK int) int {
	count := 0
	for _, v := range algebra.PrimePowersUpTo(maxV) {
		kMax := v
		if maxK < kMax {
			kMax = maxK
		}
		for k := 2; k <= kMax; k++ {
			if LayoutSize(method, v, k) <= layout.FeasibleTableSize {
				count++
			}
		}
	}
	return count
}
