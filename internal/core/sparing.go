package core

import (
	"fmt"

	"repro/internal/flow"
	"repro/pdl/layout"
)

// Distributed sparing (Section 5): reserve one spare unit per stripe,
// distributed across the array like parity, so a failed disk is rebuilt
// into spare space spread over all survivors — rebuild WRITES are then
// declustered just like rebuild reads. The paper suggests its
// distinguished-unit flow generalization applies; this implements it.

// SparedLayout is a layout whose stripes each designate one spare unit
// (disjoint from the parity unit).
type SparedLayout struct {
	*layout.Layout
	// Spare[i] is the unit index of stripe i's spare.
	Spare []int
}

// DistributedSparing assigns a spare unit to every stripe of a layout
// with assigned parity, using the Theorem 14 flow on the non-parity
// units: each disk receives floor or ceil of its spare load
// sum(1/(k_s - 1)) over the stripes crossing it with a non-parity unit.
func DistributedSparing(l *layout.Layout) (*SparedLayout, error) {
	if !l.ParityAssigned() {
		return nil, fmt.Errorf("core: DistributedSparing: parity must be assigned first")
	}
	b := len(l.Stripes)
	if b == 0 {
		return nil, fmt.Errorf("core: DistributedSparing: empty layout")
	}
	// Spare load per disk with a common denominator.
	den := 1
	for si := range l.Stripes {
		k := len(l.Stripes[si].Units) - 1 // candidates per stripe
		if k < 1 {
			return nil, fmt.Errorf("core: DistributedSparing: stripe %d too small for a spare", si)
		}
		den = den / gcd(den, k) * k
	}
	num := make([]int, l.V)
	for si := range l.Stripes {
		s := &l.Stripes[si]
		w := den / (len(s.Units) - 1)
		for ui, u := range s.Units {
			if ui == s.Parity {
				continue
			}
			num[u.Disk] += w
		}
	}
	n := flow.NewNetwork()
	source := n.AddNode()
	sink := n.AddNode()
	stripeNode := n.AddNodes(b)
	diskNode := n.AddNodes(l.V)
	type unitEdge struct{ stripe, unit, edge int }
	var unitEdges []unitEdge
	for si := range l.Stripes {
		n.AddEdge(source, stripeNode+si, 0, 1)
		for ui, u := range l.Stripes[si].Units {
			if ui == l.Stripes[si].Parity {
				continue
			}
			id := n.AddEdge(stripeNode+si, diskNode+u.Disk, 0, 1)
			unitEdges = append(unitEdges, unitEdge{si, ui, id})
		}
	}
	for d := 0; d < l.V; d++ {
		lo := num[d] / den
		hi := lo
		if num[d]%den != 0 {
			hi++
		}
		n.AddEdge(diskNode+d, sink, lo, hi)
	}
	val, ok := n.MaxFlowWithLowerBounds(source, sink, flow.Dinic)
	if !ok || val != b {
		return nil, fmt.Errorf("core: DistributedSparing: spare assignment infeasible (flow %d, want %d)", val, b)
	}
	spare := make([]int, b)
	for i := range spare {
		spare[i] = -1
	}
	for _, ue := range unitEdges {
		if n.Flow(ue.edge) == 1 {
			if spare[ue.stripe] >= 0 {
				return nil, fmt.Errorf("core: DistributedSparing: stripe %d got two spares", ue.stripe)
			}
			spare[ue.stripe] = ue.unit
		}
	}
	for si, sp := range spare {
		if sp < 0 {
			return nil, fmt.Errorf("core: DistributedSparing: stripe %d got no spare", si)
		}
	}
	return &SparedLayout{Layout: l, Spare: spare}, nil
}

// SpareCounts returns the number of spare units per disk.
func (s *SparedLayout) SpareCounts() []int {
	counts := make([]int, s.V)
	for si, sp := range s.Spare {
		counts[s.Stripes[si].Units[sp].Disk]++
	}
	return counts
}

// SpareSpread returns max - min per-disk spare counts (<= 1 by the flow
// guarantee).
func (s *SparedLayout) SpareSpread() int {
	counts := s.SpareCounts()
	lo, hi := counts[0], counts[0]
	for _, c := range counts[1:] {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	return hi - lo
}

// RebuildToSpares simulates rebuilding a failed disk into the distributed
// spares: every stripe whose data or parity unit was on the failed disk
// rewrites the lost unit onto its spare unit. Since a stripe holds at
// most one unit per disk, a stripe either lost a rebuildable unit (spare
// survives) or lost its empty spare (nothing to rebuild, but that
// stripe's spare capacity is gone — returned as spareLost). It returns
// per-disk spare-write counts.
func (s *SparedLayout) RebuildToSpares(failed int) (writes []int, spareLost int, err error) {
	if failed < 0 || failed >= s.V {
		return nil, 0, fmt.Errorf("core: RebuildToSpares(%d): disk out of range", failed)
	}
	writes = make([]int, s.V)
	for si := range s.Stripes {
		st := &s.Stripes[si]
		crossed := false
		lostIsSpare := false
		for ui, u := range st.Units {
			if u.Disk == failed {
				crossed = true
				lostIsSpare = ui == s.Spare[si]
				break
			}
		}
		if !crossed {
			continue
		}
		if lostIsSpare {
			spareLost++
			continue
		}
		writes[s.Stripes[si].Units[s.Spare[si]].Disk]++
	}
	return writes, spareLost, nil
}
