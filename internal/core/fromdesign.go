package core

import (
	"fmt"

	"repro/internal/design"
	"repro/pdl/layout"
)

// FromDesignHG builds a data layout from a BIBD by the Holland–Gibson
// method (Section 1, Figure 3): the design is replicated k times, and in
// copy c the parity unit of every stripe is the unit at tuple position c.
// The layout has size k*r and parity overhead exactly 1/k on every disk.
func FromDesignHG(d *design.Design) (*layout.Layout, error) {
	if err := d.Verify(); err != nil {
		return nil, fmt.Errorf("core: FromDesignHG: %w", err)
	}
	return layout.FromTuplesHG(d.V, d.K, d.Tuples)
}

// FromDesignSingle builds a single-copy layout from a BIBD with parity left
// unassigned (for the Section 4 flow-based balancing). The layout has size
// r (k times smaller than FromDesignHG).
func FromDesignSingle(d *design.Design) (*layout.Layout, error) {
	if err := d.Verify(); err != nil {
		return nil, fmt.Errorf("core: FromDesignSingle: %w", err)
	}
	return layout.Assemble(d.V, d.Tuples)
}
