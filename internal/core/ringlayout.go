// Package core implements the paper's primary contributions on top of the
// algebra/design/layout/flow substrates:
//
//   - ring-based layouts with perfectly balanced parity and no k-fold
//     replication (Section 3.1),
//   - approximately balanced layouts by disk removal (Theorems 8 and 9),
//   - the stairway transformation to larger arrays (Theorems 10, 11, 12),
//   - the (q, c, w) parameter search and the v <= 10,000 coverage claim,
//   - flow-based parity distribution achieving floor/ceil balance
//     (Theorems 13, 14; Corollaries 15, 16, 17) and the Holland–Gibson
//     lcm replication bound.
package core

import (
	"fmt"

	"repro/internal/design"
	"repro/pdl/layout"
)

// RingLayout is the Section 3.1 layout: one copy of a ring-based block
// design where the stripe for pair (x, y) keeps its parity unit on disk x.
// Parity and reconstruction workload are perfectly balanced, and the size
// is k(v-1) — no k-fold replication of the design.
type RingLayout struct {
	*layout.Layout
	Design *design.RingDesign
}

// NewRingLayout builds the ring-based layout for v disks and stripe size k
// over the canonical ring of order v. It fails when k > M(v) (Theorem 2).
func NewRingLayout(v, k int) (*RingLayout, error) {
	rd, err := design.NewRingDesignForVK(v, k)
	if err != nil {
		return nil, err
	}
	return NewRingLayoutFromDesign(rd)
}

// NewRingLayoutFromDesign builds the ring-based layout for an existing
// ring-based design.
func NewRingLayoutFromDesign(rd *design.RingDesign) (*RingLayout, error) {
	l, err := layout.Assemble(rd.V, rd.Tuples)
	if err != nil {
		return nil, fmt.Errorf("core: NewRingLayoutFromDesign: %w", err)
	}
	// Tuple position 0 is always x itself (the g_0-th element), so parity
	// for stripe (x, y) lands on disk x.
	for i := range l.Stripes {
		l.Stripes[i].Parity = 0
	}
	return &RingLayout{Layout: l, Design: rd}, nil
}

// stripeSpec describes a stripe by disks and the disk holding parity,
// before offsets are assigned.
type stripeSpec struct {
	disks      []int
	parityDisk int
}

// assembleSpecs turns stripe specs into a checked layout.
func assembleSpecs(v int, specs []stripeSpec) (*layout.Layout, error) {
	disks := make([][]int, len(specs))
	for i := range specs {
		disks[i] = specs[i].disks
	}
	l, err := layout.Assemble(v, disks)
	if err != nil {
		return nil, err
	}
	for i := range specs {
		idx := -1
		for j, d := range specs[i].disks {
			if d == specs[i].parityDisk {
				idx = j
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("core: stripe %d: parity disk %d not in stripe", i, specs[i].parityDisk)
		}
		l.Stripes[i].Parity = idx
	}
	return l, nil
}
