package core

import (
	"testing"

	"repro/internal/design"
	"repro/pdl/layout"
)

func TestBalanceParityFloorCeil(t *testing.T) {
	// Theorem 14: every disk ends with floor(L(d)) or ceil(L(d)).
	for _, c := range []struct{ v, k int }{{7, 3}, {9, 3}, {13, 4}, {6, 3}, {10, 3}} {
		d := design.Known(c.v, c.k)
		if d == nil {
			t.Fatalf("no design (%d,%d)", c.v, c.k)
		}
		l, err := FromDesignSingle(d)
		if err != nil {
			t.Fatal(err)
		}
		loads := l.ParityLoad()
		if err := BalanceParity(l); err != nil {
			t.Fatalf("(%d,%d): %v", c.v, c.k, err)
		}
		counts := l.ParityCounts()
		for disk, got := range counts {
			lo := loads[disk].Num / loads[disk].Den
			hi := lo
			if loads[disk].Num%loads[disk].Den != 0 {
				hi++
			}
			if got < lo || got > hi {
				t.Errorf("(%d,%d) disk %d: %d parity units, want in [%d,%d]", c.v, c.k, disk, got, lo, hi)
			}
		}
		if err := l.Check(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBalanceParityCorollary16(t *testing.T) {
	// Fixed stripe size: every disk gets floor(b/v) or ceil(b/v).
	d := design.FromDifferenceSet(7, []int{1, 2, 4}) // b=7, v=7: b/v = 1
	l, err := FromDesignSingle(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := BalanceParity(l); err != nil {
		t.Fatal(err)
	}
	for disk, c := range l.ParityCounts() {
		if c != 1 {
			t.Errorf("disk %d: %d parity units, want exactly 1 (b divisible by v)", disk, c)
		}
	}
}

func TestBalanceParitySpreadAtMostOne(t *testing.T) {
	// Corollary 16 when v does not divide b: spread exactly <= 1.
	d := design.Known(9, 3) // AG(2,3): b=12, v=9 -> floor 1, ceil 2
	if d == nil {
		t.Fatal("no design")
	}
	l, err := FromDesignSingle(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := BalanceParity(l); err != nil {
		t.Fatal(err)
	}
	if s := l.ParitySpread(); s > 1 {
		t.Errorf("spread %d > 1", s)
	}
	// 12 parity units over 9 disks: three disks get 2, six get 1.
	twos, ones := 0, 0
	for _, c := range l.ParityCounts() {
		switch c {
		case 2:
			twos++
		case 1:
			ones++
		default:
			t.Errorf("parity count %d outside {1,2}", c)
		}
	}
	if twos != 3 || ones != 6 {
		t.Errorf("counts: %d twos, %d ones; want 3 and 6", twos, ones)
	}
}

func TestBalanceParityPerfectIffDivides(t *testing.T) {
	// Corollary 17.
	cases := []struct {
		v, k    int
		perfect bool
	}{
		{7, 3, true},  // b=7, v=7
		{9, 3, false}, // b=12, v=9
		{13, 4, true}, // b=13, v=13
		{6, 3, false}, // b=10, v=6
	}
	for _, c := range cases {
		d := design.Known(c.v, c.k)
		if d == nil {
			t.Fatalf("no design (%d,%d)", c.v, c.k)
		}
		l, err := FromDesignSingle(d)
		if err != nil {
			t.Fatal(err)
		}
		if err := BalanceParity(l); err != nil {
			t.Fatal(err)
		}
		if got := l.ParityPerfectlyBalanced(); got != c.perfect {
			t.Errorf("(%d,%d): perfect=%v, want %v (b=%d)", c.v, c.k, got, c.perfect, d.B())
		}
		if got := d.B()%c.v == 0; got != c.perfect {
			t.Errorf("(%d,%d): test case inconsistent", c.v, c.k)
		}
	}
}

func TestMinCopiesForPerfectParity(t *testing.T) {
	cases := []struct{ b, v, want int }{
		{7, 7, 1},  // b multiple of v
		{12, 9, 3}, // lcm(12,9)=36 -> 3 copies
		{10, 6, 3}, // lcm(10,6)=30 -> 3 copies
		{13, 13, 1},
		{20, 16, 4},
	}
	for _, c := range cases {
		if got := MinCopiesForPerfectParity(c.b, c.v); got != c.want {
			t.Errorf("MinCopies(%d,%d) = %d, want %d", c.b, c.v, got, c.want)
		}
	}
}

func TestPerfectlyBalancedFromDesign(t *testing.T) {
	// lcm conjecture end-to-end: minimal replication achieves perfection.
	for _, c := range []struct{ v, k int }{{9, 3}, {6, 3}} {
		d := design.Known(c.v, c.k)
		if d == nil {
			t.Fatalf("no design (%d,%d)", c.v, c.k)
		}
		l, copies, err := PerfectlyBalancedFromDesign(d)
		if err != nil {
			t.Fatalf("(%d,%d): %v", c.v, c.k, err)
		}
		if copies != MinCopiesForPerfectParity(d.B(), c.v) {
			t.Errorf("(%d,%d): %d copies", c.v, c.k, copies)
		}
		if !l.ParityPerfectlyBalanced() {
			t.Errorf("(%d,%d): not perfect", c.v, c.k)
		}
		if err := l.Check(); err != nil {
			t.Fatal(err)
		}
		// And one copy fewer cannot be perfect (necessity).
		if copies > 1 {
			single, err := FromDesignSingle(d)
			if err != nil {
				t.Fatal(err)
			}
			fewer := layout.Copies(single, copies-1)
			if err := BalanceParity(fewer); err != nil {
				t.Fatal(err)
			}
			if fewer.ParityPerfectlyBalanced() {
				t.Errorf("(%d,%d): %d copies already perfect, contradicting Corollary 17", c.v, c.k, copies-1)
			}
		}
	}
}

func TestBalanceParityMixedStripeSizes(t *testing.T) {
	// The flow method works for any layout, including mixed stripe sizes
	// (Theorem 8 outputs). Rebalance one and verify floor/ceil.
	rl, err := NewRingLayout(9, 4)
	if err != nil {
		t.Fatal(err)
	}
	l, err := RemoveDisk(rl, 2)
	if err != nil {
		t.Fatal(err)
	}
	loads := l.ParityLoad()
	if err := BalanceParity(l); err != nil {
		t.Fatal(err)
	}
	for disk, got := range l.ParityCounts() {
		lo := loads[disk].Num / loads[disk].Den
		hi := lo
		if loads[disk].Num%loads[disk].Den != 0 {
			hi++
		}
		if got < lo || got > hi {
			t.Errorf("disk %d: %d outside [%d,%d]", disk, got, lo, hi)
		}
	}
}

func TestBalanceParityEmptyLayout(t *testing.T) {
	l := &layout.Layout{V: 3, Size: 0}
	if err := BalanceParity(l); err == nil {
		t.Error("empty layout accepted")
	}
}

func TestBalancedFromDesignSize(t *testing.T) {
	// Section 4 point 2: single copy, k times smaller than HG, spread <= 1.
	d := design.Known(13, 4)
	if d == nil {
		t.Fatal("no design")
	}
	l, err := BalancedFromDesign(d)
	if err != nil {
		t.Fatal(err)
	}
	hg, err := FromDesignHG(d)
	if err != nil {
		t.Fatal(err)
	}
	if l.Size*4 != hg.Size {
		t.Errorf("single-copy size %d, HG %d; want factor k=4", l.Size, hg.Size)
	}
	if l.ParitySpread() > 1 {
		t.Errorf("spread %d", l.ParitySpread())
	}
}

func TestSelectDistinguishedParityEquivalent(t *testing.T) {
	// cs = all ones reproduces Theorem 14.
	d := design.Known(9, 3)
	l, err := FromDesignSingle(d)
	if err != nil {
		t.Fatal(err)
	}
	cs := make([]int, len(l.Stripes))
	for i := range cs {
		cs[i] = 1
	}
	chosen, err := SelectDistinguished(l, cs)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, l.V)
	for si, units := range chosen {
		if len(units) != 1 {
			t.Fatalf("stripe %d: %d units chosen", si, len(units))
		}
		counts[l.Stripes[si].Units[units[0]].Disk]++
	}
	// 12 stripes over 9 disks: floor/ceil of 12/9.
	for disk, c := range counts {
		if c < 1 || c > 2 {
			t.Errorf("disk %d: %d distinguished units", disk, c)
		}
	}
}

func TestSelectDistinguishedTwoPerStripe(t *testing.T) {
	// Distributed sparing flavor: choose 2 units per stripe (parity+spare).
	// PG(2,3): b=13, v=13, so 26 distinguished units spread exactly 2 per disk.
	d := design.FromDifferenceSet(13, []int{0, 1, 3, 9})
	l, err := FromDesignSingle(d)
	if err != nil {
		t.Fatal(err)
	}
	cs := make([]int, len(l.Stripes))
	for i := range cs {
		cs[i] = 2
	}
	chosen, err := SelectDistinguished(l, cs)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, l.V)
	for si, units := range chosen {
		if len(units) != 2 {
			t.Fatalf("stripe %d: %d units", si, len(units))
		}
		for _, ui := range units {
			counts[l.Stripes[si].Units[ui].Disk]++
		}
	}
	// 26 distinguished units over 13 disks: exactly 2 each.
	for disk, c := range counts {
		if c != 2 {
			t.Errorf("disk %d: %d, want 2", disk, c)
		}
	}
}

func TestSelectDistinguishedValidation(t *testing.T) {
	d := design.Known(7, 3)
	l, _ := FromDesignSingle(d)
	if _, err := SelectDistinguished(l, []int{1}); err == nil {
		t.Error("wrong cs length accepted")
	}
	cs := make([]int, len(l.Stripes))
	cs[0] = 99
	if _, err := SelectDistinguished(l, cs); err == nil {
		t.Error("cs > k accepted")
	}
}
