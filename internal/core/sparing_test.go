package core

import (
	"testing"

	"repro/internal/design"
	"repro/pdl/layout"
)

func TestDistributedSparingBalanced(t *testing.T) {
	for _, c := range []struct{ v, k int }{{9, 4}, {13, 4}, {8, 3}, {17, 5}} {
		rl, err := NewRingLayout(c.v, c.k)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := DistributedSparing(rl.Layout)
		if err != nil {
			t.Fatalf("(%d,%d): %v", c.v, c.k, err)
		}
		if got := sp.SpareSpread(); got > 1 {
			t.Errorf("(%d,%d): spare spread %d > 1", c.v, c.k, got)
		}
		// Spare and parity must be different units.
		for si, spu := range sp.Spare {
			if spu == sp.Stripes[si].Parity {
				t.Fatalf("(%d,%d): stripe %d spare == parity", c.v, c.k, si)
			}
			if spu < 0 || spu >= len(sp.Stripes[si].Units) {
				t.Fatalf("(%d,%d): stripe %d spare index %d invalid", c.v, c.k, si, spu)
			}
		}
		// Spare counts sum to b.
		total := 0
		for _, cnt := range sp.SpareCounts() {
			total += cnt
		}
		if total != len(sp.Stripes) {
			t.Errorf("(%d,%d): %d spares for %d stripes", c.v, c.k, total, len(sp.Stripes))
		}
	}
}

func TestRebuildToSparesDeclustersWrites(t *testing.T) {
	rl, err := NewRingLayout(13, 4)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := DistributedSparing(rl.Layout)
	if err != nil {
		t.Fatal(err)
	}
	writes, lost, err := sp.RebuildToSpares(0)
	if err != nil {
		t.Fatal(err)
	}
	if writes[0] != 0 {
		t.Error("writes landed on the failed disk")
	}
	// Stripes crossing disk 0: r = k(v-1) = 48; each either rebuilds to a
	// spare or lost its spare.
	total := lost
	for _, w := range writes {
		total += w
	}
	if total != 48 {
		t.Errorf("rebuilt+lost = %d, want r = 48", total)
	}
	// Writes spread over many survivors, not one.
	busy := 0
	for d, w := range writes {
		if d != 0 && w > 0 {
			busy++
		}
	}
	if busy < 6 {
		t.Errorf("spare writes hit only %d disks", busy)
	}
}

func TestDistributedSparingRequiresParity(t *testing.T) {
	d := design.FromDifferenceSet(7, []int{1, 2, 4})
	l, err := FromDesignSingle(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DistributedSparing(l); err == nil {
		t.Error("unassigned parity accepted")
	}
}

func TestDistributedSparingRejectsTinyStripes(t *testing.T) {
	// k=1 stripes have no non-parity unit to spare.
	l := &layout.Layout{V: 2, Size: 1, Stripes: []layout.Stripe{
		{Units: []layout.Unit{{Disk: 0, Offset: 0}}, Parity: 0},
		{Units: []layout.Unit{{Disk: 1, Offset: 0}}, Parity: 0},
	}}
	if _, err := DistributedSparing(l); err == nil {
		t.Error("k=1 stripes accepted")
	}
}

func TestRebuildToSparesValidation(t *testing.T) {
	rl, err := NewRingLayout(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := DistributedSparing(rl.Layout)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sp.RebuildToSpares(99); err == nil {
		t.Error("bad disk accepted")
	}
}
