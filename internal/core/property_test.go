package core

import (
	"testing"
	"testing/quick"

	"repro/internal/algebra"
	"repro/pdl/layout"
)

// Property-based tests over randomized parameters: the paper's theorems
// are universally quantified, so we sample (v, k) widely and assert the
// invariants hard.

var primePowers = algebra.PrimePowersUpTo(64)

func pickVK(a, b uint8) (v, k int) {
	v = primePowers[int(a)%len(primePowers)]
	if v < 4 {
		v = 5
	}
	k = 2 + int(b)%(min(v, 9)-1)
	return v, k
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestPropertyRingLayoutInvariants(t *testing.T) {
	f := func(a, b uint8) bool {
		v, k := pickVK(a, b)
		rl, err := NewRingLayout(v, k)
		if err != nil {
			return false
		}
		if rl.Check() != nil {
			return false
		}
		if rl.Size != k*(v-1) || len(rl.Stripes) != v*(v-1) {
			return false
		}
		if !rl.ParityPerfectlyBalanced() || !rl.WorkloadPerfectlyBalanced() {
			return false
		}
		wmin, wmax := rl.ReconstructionWorkloadRange()
		want := layout.R(k-1, v-1)
		return wmin.Equal(want) && wmax.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyRemovalInvariants(t *testing.T) {
	f := func(a, b, c uint8) bool {
		v, k := pickVK(a, b)
		if k < 3 {
			k = 3
		}
		rl, err := NewRingLayout(v, k)
		if err != nil {
			return false
		}
		x := int(c) % v
		l, err := RemoveDisk(rl, x)
		if err != nil {
			return false
		}
		if l.Check() != nil || l.V != v-1 {
			return false
		}
		// Theorem 8 exact guarantees.
		omin, omax := l.ParityOverheadRange()
		want := layout.R(v, k*(v-1))
		if !omin.Equal(want) || !omax.Equal(want) {
			return false
		}
		wmin, wmax := l.ReconstructionWorkloadRange()
		ww := layout.R(k-1, v-1)
		return wmin.Equal(ww) && wmax.Equal(ww)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPropertyStairwayInvariants(t *testing.T) {
	f := func(a, b, c uint8) bool {
		q, k := pickVK(a, b)
		if q < 5 {
			q = 5
		}
		if k > q {
			k = q
		}
		v := q + 1 + int(c)%(q-1) // in (q, 2q]
		if _, _, ok := StairwayParams(q, v); !ok {
			return true // vacuously fine: not all (q,v) are reachable
		}
		rl, err := NewRingLayout(q, k)
		if err != nil {
			return false
		}
		l, info, err := Stairway(rl, v)
		if err != nil {
			return false
		}
		if l.Check() != nil || l.V != v {
			return false
		}
		size, oLo, oHi, wLo, wHi := Theorem12Bounds(q, k, v, info.C, info.W)
		if l.Size != size {
			return false
		}
		omin, omax := l.ParityOverheadRange()
		wmin, wmax := l.ReconstructionWorkloadRange()
		return omin.Cmp(oLo) >= 0 && omax.Cmp(oHi) <= 0 &&
			wmin.Cmp(wLo) >= 0 && wmax.Cmp(wHi) <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPropertyBalanceParityFloorCeil(t *testing.T) {
	f := func(a, b uint8) bool {
		v, k := pickVK(a, b)
		rl, err := NewRingLayout(v, k)
		if err != nil {
			return false
		}
		l, err := FromDesignSingle(&rl.Design.Design)
		if err != nil {
			return false
		}
		loads := l.ParityLoad()
		if err := BalanceParity(l); err != nil {
			return false
		}
		for disk, got := range l.ParityCounts() {
			lo := loads[disk].Num / loads[disk].Den
			hi := lo
			if loads[disk].Num%loads[disk].Den != 0 {
				hi++
			}
			if got < lo || got > hi {
				return false
			}
		}
		return l.ParitySpread() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCoverageMonotone(t *testing.T) {
	// Every covered v has a valid equation; quick sampling over [3, 4000].
	f := func(x uint16) bool {
		v := 3 + int(x)%3998
		if _, _, isPP := algebra.IsPrimePower(v); isPP {
			return true
		}
		q, c, w, ok := FindStairwayBase(v)
		if !ok {
			return false
		}
		return v == c*(v-q)+w && w < c && q < v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
