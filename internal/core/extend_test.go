package core

import "testing"

func TestExtendByOneValidAndCheap(t *testing.T) {
	for _, q := range []int{5, 7, 8, 9, 13} {
		rl, err := NewRingLayout(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		l, stats, err := ExtendByOne(rl)
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		if err := l.Check(); err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		if l.V != q+1 {
			t.Errorf("q=%d: extended to %d disks", q, l.V)
		}
		// The stairway moves exactly half the pieces across disks.
		if got := stats.AcrossFraction(); got != 0.5 {
			t.Errorf("q=%d: across fraction %v, want 0.5", q, got)
		}
		// Cheaper than re-layout, dearer than the bound.
		if stats.AcrossFraction() >= NaiveRelayoutMigration(q) {
			t.Errorf("q=%d: no cheaper than re-layout", q)
		}
		if stats.AcrossFraction() < stats.LowerBoundAcross {
			t.Errorf("q=%d: below the information-theoretic bound", q)
		}
		if stats.MovedAcrossDisks+stats.MovedWithinDisk != stats.TotalUnits {
			t.Errorf("q=%d: accounting mismatch", q)
		}
	}
}

func TestExtendByOnePreservesBalance(t *testing.T) {
	rl, err := NewRingLayout(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	l, _, err := ExtendByOne(rl)
	if err != nil {
		t.Fatal(err)
	}
	if !l.ParityPerfectlyBalanced() {
		t.Error("Theorem 10 extension must keep parity perfect")
	}
}

func TestNaiveRelayoutMigration(t *testing.T) {
	if got := NaiveRelayoutMigration(9); got != 0.9 {
		t.Errorf("NaiveRelayoutMigration(9) = %v", got)
	}
}
