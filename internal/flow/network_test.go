package flow

import (
	"testing"
	"testing/quick"
)

// buildDiamond returns the classic 4-node diamond with known max flow 30.
func buildDiamond() (*Network, int, int) {
	n := NewNetwork()
	s := n.AddNode()
	a := n.AddNode()
	b := n.AddNode()
	t := n.AddNode()
	n.AddEdge(s, a, 0, 20)
	n.AddEdge(s, b, 0, 10)
	n.AddEdge(a, b, 0, 30)
	n.AddEdge(a, t, 0, 10)
	n.AddEdge(b, t, 0, 20)
	return n, s, t
}

func TestMaxFlowDiamond(t *testing.T) {
	for _, algo := range []Algorithm{Dinic, EdmondsKarp} {
		n, s, tt := buildDiamond()
		if got := n.MaxFlow(s, tt, algo); got != 30 {
			t.Errorf("algo %v: max flow = %d, want 30", algo, got)
		}
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	n := NewNetwork()
	s := n.AddNode()
	tt := n.AddNode()
	n.AddNode() // isolated
	if got := n.MaxFlow(s, tt, Dinic); got != 0 {
		t.Errorf("disconnected: %d, want 0", got)
	}
}

func TestMaxFlowSingleEdge(t *testing.T) {
	n := NewNetwork()
	s := n.AddNode()
	tt := n.AddNode()
	e := n.AddEdge(s, tt, 0, 7)
	if got := n.MaxFlow(s, tt, Dinic); got != 7 {
		t.Errorf("single edge: %d, want 7", got)
	}
	if n.Flow(e) != 7 {
		t.Errorf("edge flow = %d, want 7", n.Flow(e))
	}
}

func TestMaxFlowParallelEdges(t *testing.T) {
	n := NewNetwork()
	s := n.AddNode()
	tt := n.AddNode()
	n.AddEdge(s, tt, 0, 3)
	n.AddEdge(s, tt, 0, 4)
	if got := n.MaxFlow(s, tt, Dinic); got != 7 {
		t.Errorf("parallel edges: %d, want 7", got)
	}
}

func TestMaxFlowRejectsLowerBounds(t *testing.T) {
	n := NewNetwork()
	s := n.AddNode()
	tt := n.AddNode()
	n.AddEdge(s, tt, 1, 2)
	defer func() {
		if recover() == nil {
			t.Error("MaxFlow with lower bounds did not panic")
		}
	}()
	n.MaxFlow(s, tt, Dinic)
}

// randomNetwork builds a deterministic pseudorandom layered network.
func randomNetwork(seed, nodes, edges int) (*Network, int, int) {
	n := NewNetwork()
	first := n.AddNodes(nodes)
	s, t := first, first+nodes-1
	state := uint64(seed)*2862933555777941757 + 3037000493
	next := func(mod int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(mod))
	}
	for i := 0; i < edges; i++ {
		from := next(nodes - 1) // never t as source
		to := 1 + next(nodes-1) // never s as sink
		if from == to {
			continue
		}
		n.AddEdge(from, to, 0, 1+next(10))
	}
	return n, s, t
}

func TestDinicMatchesEdmondsKarpRandom(t *testing.T) {
	for seed := 1; seed <= 60; seed++ {
		n1, s, tt := randomNetwork(seed, 12, 40)
		n2, _, _ := randomNetwork(seed, 12, 40)
		f1 := n1.MaxFlow(s, tt, Dinic)
		f2 := n2.MaxFlow(s, tt, EdmondsKarp)
		if f1 != f2 {
			t.Fatalf("seed %d: Dinic %d != EdmondsKarp %d", seed, f1, f2)
		}
	}
}

// checkConservation verifies capacity limits and node conservation.
func checkConservation(t *testing.T, n *Network, s, tt, value int) {
	t.Helper()
	net := make([]int, n.NumNodes())
	for i, e := range n.Edges() {
		if e.Flow < e.Lo || e.Flow > e.Hi {
			t.Fatalf("edge %d flow %d outside [%d,%d]", i, e.Flow, e.Lo, e.Hi)
		}
		net[e.From] -= e.Flow
		net[e.To] += e.Flow
	}
	for v := range net {
		switch v {
		case s:
			if net[v] != -value {
				t.Fatalf("source imbalance %d, want %d", net[v], -value)
			}
		case tt:
			if net[v] != value {
				t.Fatalf("sink imbalance %d, want %d", net[v], value)
			}
		default:
			if net[v] != 0 {
				t.Fatalf("node %d not conserved: %d", v, net[v])
			}
		}
	}
}

func TestFlowConservationRandom(t *testing.T) {
	for seed := 1; seed <= 40; seed++ {
		n, s, tt := randomNetwork(seed, 10, 30)
		val := n.MaxFlow(s, tt, Dinic)
		checkConservation(t, n, s, tt, val)
	}
}

func TestLowerBoundsSimpleFeasible(t *testing.T) {
	n := NewNetwork()
	s := n.AddNode()
	a := n.AddNode()
	tt := n.AddNode()
	n.AddEdge(s, a, 2, 5)
	n.AddEdge(a, tt, 2, 5)
	val, ok := n.MaxFlowWithLowerBounds(s, tt, Dinic)
	if !ok || val != 5 {
		t.Errorf("val=%d ok=%v, want 5 true", val, ok)
	}
	checkConservation(t, n, s, tt, val)
}

func TestLowerBoundsInfeasible(t *testing.T) {
	n := NewNetwork()
	s := n.AddNode()
	a := n.AddNode()
	tt := n.AddNode()
	n.AddEdge(s, a, 4, 5)
	n.AddEdge(a, tt, 0, 2) // cannot carry the mandatory 4
	if _, ok := n.MaxFlowWithLowerBounds(s, tt, Dinic); ok {
		t.Error("expected infeasible")
	}
}

func TestLowerBoundsForcedDetour(t *testing.T) {
	// s->a (lo 0) ; a->t cap 1 ; a->b lo 2 forces 2 units through b.
	n := NewNetwork()
	s := n.AddNode()
	a := n.AddNode()
	b := n.AddNode()
	tt := n.AddNode()
	n.AddEdge(s, a, 0, 10)
	ab := n.AddEdge(a, b, 2, 3)
	n.AddEdge(b, tt, 0, 10)
	n.AddEdge(a, tt, 0, 1)
	val, ok := n.MaxFlowWithLowerBounds(s, tt, Dinic)
	if !ok {
		t.Fatal("expected feasible")
	}
	if val != 4 {
		t.Errorf("val = %d, want 4 (3 through b + 1 direct)", val)
	}
	if n.Flow(ab) < 2 {
		t.Errorf("a->b flow %d violates lower bound", n.Flow(ab))
	}
	checkConservation(t, n, s, tt, val)
}

func TestLowerBoundsZeroLowerEqualsPlain(t *testing.T) {
	for seed := 1; seed <= 30; seed++ {
		n1, s, tt := randomNetwork(seed, 10, 25)
		n2, _, _ := randomNetwork(seed, 10, 25)
		plain := n1.MaxFlow(s, tt, Dinic)
		lb, ok := n2.MaxFlowWithLowerBounds(s, tt, Dinic)
		if !ok || lb != plain {
			t.Fatalf("seed %d: lb=%d ok=%v, plain=%d", seed, lb, ok, plain)
		}
	}
}

func TestLowerBoundsBothAlgorithms(t *testing.T) {
	build := func() (*Network, int, int) {
		n := NewNetwork()
		s := n.AddNode()
		a := n.AddNode()
		b := n.AddNode()
		tt := n.AddNode()
		n.AddEdge(s, a, 1, 4)
		n.AddEdge(s, b, 0, 3)
		n.AddEdge(a, b, 1, 2)
		n.AddEdge(a, tt, 0, 3)
		n.AddEdge(b, tt, 2, 5)
		return n, s, tt
	}
	n1, s, tt := build()
	v1, ok1 := n1.MaxFlowWithLowerBounds(s, tt, Dinic)
	n2, _, _ := build()
	v2, ok2 := n2.MaxFlowWithLowerBounds(s, tt, EdmondsKarp)
	if !ok1 || !ok2 || v1 != v2 {
		t.Errorf("Dinic (%d,%v) != EdmondsKarp (%d,%v)", v1, ok1, v2, ok2)
	}
	checkConservation(t, n1, s, tt, v1)
}

func TestAddEdgePanics(t *testing.T) {
	n := NewNetwork()
	n.AddNode()
	cases := []func(){
		func() { n.AddEdge(0, 5, 0, 1) },
		func() { n.AddEdge(-1, 0, 0, 1) },
		func() { n.AddEdge(0, 0, -1, 1) },
		func() { n.AddEdge(0, 0, 3, 2) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestMaxFlowIntegrality(t *testing.T) {
	// Integral capacities must give integral flows (trivially true with int,
	// but assert flows are within bounds and value equals min cut on a known
	// instance).
	n := NewNetwork()
	s := n.AddNode()
	v1 := n.AddNode()
	v2 := n.AddNode()
	v3 := n.AddNode()
	v4 := n.AddNode()
	tt := n.AddNode()
	n.AddEdge(s, v1, 0, 16)
	n.AddEdge(s, v2, 0, 13)
	n.AddEdge(v2, v1, 0, 4)
	n.AddEdge(v1, v3, 0, 12)
	n.AddEdge(v3, v2, 0, 9)
	n.AddEdge(v2, v4, 0, 14)
	n.AddEdge(v4, v3, 0, 7)
	n.AddEdge(v3, tt, 0, 20)
	n.AddEdge(v4, tt, 0, 4)
	// CLRS figure: max flow 23.
	if got := n.MaxFlow(s, tt, Dinic); got != 23 {
		t.Errorf("CLRS network: %d, want 23", got)
	}
	checkConservation(t, n, s, tt, 23)
}

func TestBipartiteAssignPerfect(t *testing.T) {
	// 3 items, 3 slots, identity-ish adjacency.
	adj := [][]int{{0, 1}, {1, 2}, {0, 2}}
	caps := []int{1, 1, 1}
	assign := BipartiteAssign(adj, caps)
	if assign == nil {
		t.Fatal("expected assignment")
	}
	used := map[int]int{}
	for i, j := range assign {
		used[j]++
		found := false
		for _, cand := range adj[i] {
			if cand == j {
				found = true
			}
		}
		if !found {
			t.Errorf("item %d assigned to non-candidate %d", i, j)
		}
	}
	for j, c := range used {
		if c > caps[j] {
			t.Errorf("slot %d used %d > cap %d", j, c, caps[j])
		}
	}
}

func TestBipartiteAssignInfeasible(t *testing.T) {
	// Two items both need slot 0 with cap 1.
	if got := BipartiteAssign([][]int{{0}, {0}}, []int{1}); got != nil {
		t.Errorf("expected nil, got %v", got)
	}
}

func TestBipartiteAssignCapacities(t *testing.T) {
	// 4 items all compatible with slot 0 (cap 3) and slot 1 (cap 1).
	adj := [][]int{{0, 1}, {0, 1}, {0, 1}, {0, 1}}
	assign := BipartiteAssign(adj, []int{3, 1})
	if assign == nil {
		t.Fatal("expected assignment")
	}
	count := []int{0, 0}
	for _, j := range assign {
		count[j]++
	}
	if count[0] != 3 || count[1] != 1 {
		t.Errorf("counts = %v, want [3 1]", count)
	}
}

func TestBipartiteAssignHallViolation(t *testing.T) {
	// Items {0,1,2} collectively see only slots {0,1}: Hall fails.
	adj := [][]int{{0, 1}, {0}, {1}}
	if got := BipartiteAssign(adj, []int{1, 1}); got != nil {
		t.Errorf("expected nil, got %v", got)
	}
}

func TestBipartiteAssignEmptyLeft(t *testing.T) {
	got := BipartiteAssign(nil, []int{1, 2})
	if len(got) != 0 {
		t.Errorf("expected empty assignment, got %v", got)
	}
}

func TestMaxFlowQuickCutBound(t *testing.T) {
	// Property: max flow <= sum of source-leaving capacities and <= sum of
	// sink-entering capacities.
	fn := func(seed uint8) bool {
		n, s, tt := randomNetwork(int(seed)+1, 8, 20)
		val := n.MaxFlow(s, tt, Dinic)
		outCap, inCap := 0, 0
		for _, e := range n.Edges() {
			if e.From == s {
				outCap += e.Hi
			}
			if e.To == tt {
				inCap += e.Hi
			}
		}
		return val <= outCap && val <= inCap && val >= 0
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}
