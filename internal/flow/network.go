// Package flow implements integer maximum flow, the substrate for the
// paper's Section 4 parity-distribution method. It provides Dinic's
// algorithm (the default), Edmonds–Karp (used as a cross-check oracle in
// tests and ablation benches), maximum flow with edge lower bounds via the
// standard excess-transformation (equivalently, the paper's two-phase
// feasible-then-augment scheme), and a bipartite b-matching helper.
package flow

import "fmt"

// Edge is one directed edge of a network, with a required minimum flow Lo
// and a capacity Hi.
type Edge struct {
	From, To int
	Lo, Hi   int
	// Flow is filled in by the solvers.
	Flow int
}

// Network is a directed flow network under construction. Nodes are dense
// integers 0..NumNodes-1 created by AddNode.
type Network struct {
	numNodes int
	edges    []Edge
}

// NewNetwork returns an empty network.
func NewNetwork() *Network { return &Network{} }

// AddNode adds a node and returns its id.
func (n *Network) AddNode() int {
	id := n.numNodes
	n.numNodes++
	return id
}

// AddNodes adds count nodes and returns the id of the first.
func (n *Network) AddNodes(count int) int {
	first := n.numNodes
	n.numNodes += count
	return first
}

// NumNodes returns the number of nodes.
func (n *Network) NumNodes() int { return n.numNodes }

// AddEdge adds a directed edge with flow bounds [lo, hi] and returns its
// index (usable with Flow after solving).
func (n *Network) AddEdge(from, to, lo, hi int) int {
	if from < 0 || from >= n.numNodes || to < 0 || to >= n.numNodes {
		panic(fmt.Sprintf("flow: AddEdge(%d,%d): node out of range [0,%d)", from, to, n.numNodes))
	}
	if lo < 0 || hi < lo {
		panic(fmt.Sprintf("flow: AddEdge: invalid bounds [%d,%d]", lo, hi))
	}
	n.edges = append(n.edges, Edge{From: from, To: to, Lo: lo, Hi: hi})
	return len(n.edges) - 1
}

// Edges returns the edge slice (with Flow populated after a solve).
func (n *Network) Edges() []Edge { return n.edges }

// Flow returns the flow on edge i after a solve.
func (n *Network) Flow(i int) int { return n.edges[i].Flow }

// Algorithm selects the augmenting strategy.
type Algorithm int

const (
	// Dinic is the default: BFS level graphs + blocking flows.
	Dinic Algorithm = iota
	// EdmondsKarp augments along shortest paths one at a time. Provided as
	// a simple oracle; asymptotically slower.
	EdmondsKarp
)

// MaxFlow computes a maximum s-t flow ignoring lower bounds (they must all
// be zero; use MaxFlowWithLowerBounds otherwise). It stores per-edge flows
// in the network and returns the flow value.
func (n *Network) MaxFlow(s, t int, algo Algorithm) int {
	for _, e := range n.edges {
		if e.Lo != 0 {
			panic("flow: MaxFlow: network has lower bounds; use MaxFlowWithLowerBounds")
		}
	}
	g := newResidual(n.numNodes)
	ids := make([]int, len(n.edges))
	for i, e := range n.edges {
		ids[i] = g.addEdge(e.From, e.To, e.Hi)
	}
	val := g.maxflow(s, t, algo)
	for i := range n.edges {
		n.edges[i].Flow = g.flowOn(ids[i])
	}
	return val
}

// MaxFlowWithLowerBounds computes a maximum s-t flow respecting every
// edge's [Lo, Hi] bounds. It returns the flow value and true, or 0 and
// false when no feasible flow exists. This is the engine behind the
// paper's Theorem 13: a feasible flow is found first (via a super
// source/sink carrying each edge's mandatory Lo units), then augmented to
// a maximum flow in the original network.
func (n *Network) MaxFlowWithLowerBounds(s, t int, algo Algorithm) (int, bool) {
	nn := n.numNodes
	g := newResidual(nn + 2)
	super, sink := nn, nn+1
	ids := make([]int, len(n.edges))
	excess := make([]int, nn)
	needed := 0
	for i, e := range n.edges {
		ids[i] = g.addEdge(e.From, e.To, e.Hi-e.Lo)
		excess[e.To] += e.Lo
		excess[e.From] -= e.Lo
	}
	for v := 0; v < nn; v++ {
		switch {
		case excess[v] > 0:
			g.addEdge(super, v, excess[v])
			needed += excess[v]
		case excess[v] < 0:
			g.addEdge(v, sink, -excess[v])
		}
	}
	// An unbounded t->s return edge makes a feasible s-t flow a feasible
	// circulation.
	inf := 0
	for _, e := range n.edges {
		inf += e.Hi
	}
	retID := g.addEdge(t, s, inf+1)
	if g.maxflow(super, sink, algo) != needed {
		return 0, false
	}
	// Remove the return edge by zeroing its capacity in both directions,
	// then augment s->t in the residual graph for maximality.
	base := g.flowOn(retID)
	g.disable(retID)
	extra := g.maxflow(s, t, algo)
	for i := range n.edges {
		n.edges[i].Flow = n.edges[i].Lo + g.flowOn(ids[i])
	}
	return base + extra, true
}

// residual is a classic adjacency-list residual graph. Edge i and i^1 are
// mutual reverse edges.
type residual struct {
	head [][]int // node -> edge indices
	to   []int
	cap  []int
	// iteration state for Dinic
	level []int
	iter  []int
}

func newResidual(n int) *residual {
	return &residual{head: make([][]int, n), level: make([]int, n), iter: make([]int, n)}
}

func (g *residual) addEdge(from, to, cap_ int) int {
	id := len(g.to)
	g.to = append(g.to, to, from)
	g.cap = append(g.cap, cap_, 0)
	g.head[from] = append(g.head[from], id)
	g.head[to] = append(g.head[to], id+1)
	return id
}

// flowOn returns the flow pushed over forward edge id (its reverse cap).
func (g *residual) flowOn(id int) int { return g.cap[id^1] }

// disable zeroes both directions of edge id.
func (g *residual) disable(id int) {
	g.cap[id] = 0
	g.cap[id^1] = 0
}

func (g *residual) maxflow(s, t int, algo Algorithm) int {
	if s == t {
		return 0
	}
	switch algo {
	case EdmondsKarp:
		return g.edmondsKarp(s, t)
	default:
		return g.dinic(s, t)
	}
}

func (g *residual) bfsLevels(s int) {
	for i := range g.level {
		g.level[i] = -1
	}
	queue := make([]int, 0, len(g.head))
	queue = append(queue, s)
	g.level[s] = 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, id := range g.head[v] {
			if g.cap[id] > 0 && g.level[g.to[id]] < 0 {
				g.level[g.to[id]] = g.level[v] + 1
				queue = append(queue, g.to[id])
			}
		}
	}
}

func (g *residual) dfsBlocking(v, t, f int) int {
	if v == t {
		return f
	}
	for ; g.iter[v] < len(g.head[v]); g.iter[v]++ {
		id := g.head[v][g.iter[v]]
		w := g.to[id]
		if g.cap[id] > 0 && g.level[w] == g.level[v]+1 {
			pushed := f
			if g.cap[id] < pushed {
				pushed = g.cap[id]
			}
			if d := g.dfsBlocking(w, t, pushed); d > 0 {
				g.cap[id] -= d
				g.cap[id^1] += d
				return d
			}
		}
	}
	return 0
}

func (g *residual) dinic(s, t int) int {
	const inf = int(^uint(0) >> 1)
	total := 0
	for {
		g.bfsLevels(s)
		if g.level[t] < 0 {
			return total
		}
		for i := range g.iter {
			g.iter[i] = 0
		}
		for {
			f := g.dfsBlocking(s, t, inf)
			if f == 0 {
				break
			}
			total += f
		}
	}
}

func (g *residual) edmondsKarp(s, t int) int {
	total := 0
	n := len(g.head)
	parentEdge := make([]int, n)
	for {
		for i := range parentEdge {
			parentEdge[i] = -1
		}
		parentEdge[s] = -2
		queue := []int{s}
		found := false
		for len(queue) > 0 && !found {
			v := queue[0]
			queue = queue[1:]
			for _, id := range g.head[v] {
				w := g.to[id]
				if g.cap[id] > 0 && parentEdge[w] == -1 {
					parentEdge[w] = id
					if w == t {
						found = true
						break
					}
					queue = append(queue, w)
				}
			}
		}
		if !found {
			return total
		}
		// Find bottleneck.
		bottleneck := int(^uint(0) >> 1)
		for v := t; v != s; {
			id := parentEdge[v]
			if g.cap[id] < bottleneck {
				bottleneck = g.cap[id]
			}
			v = g.to[id^1]
		}
		for v := t; v != s; {
			id := parentEdge[v]
			g.cap[id] -= bottleneck
			g.cap[id^1] += bottleneck
			v = g.to[id^1]
		}
		total += bottleneck
	}
}
