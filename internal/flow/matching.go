package flow

// BipartiteAssign solves a degree-constrained bipartite assignment: left
// item i may be assigned to any right node in adj[i]; each left item must
// receive exactly one assignment; right node j accepts at most cap[j]
// assignments. It returns assign[i] = chosen right node, or nil if no
// complete assignment exists.
//
// This is the matching engine used by Theorem 9's leftover-parity
// redistribution.
func BipartiteAssign(adj [][]int, caps []int) []int {
	nLeft := len(adj)
	nRight := len(caps)
	n := NewNetwork()
	s := n.AddNode()
	t := n.AddNode()
	left := n.AddNodes(nLeft)
	right := n.AddNodes(nRight)
	leftEdges := make([][]int, nLeft)
	for i := range adj {
		n.AddEdge(s, left+i, 0, 1)
		leftEdges[i] = make([]int, len(adj[i]))
		for k, j := range adj[i] {
			if j < 0 || j >= nRight {
				panic("flow: BipartiteAssign: right index out of range")
			}
			leftEdges[i][k] = n.AddEdge(left+i, right+j, 0, 1)
		}
	}
	for j, c := range caps {
		if c > 0 {
			n.AddEdge(right+j, t, 0, c)
		}
	}
	if n.MaxFlow(s, t, Dinic) != nLeft {
		return nil
	}
	assign := make([]int, nLeft)
	for i := range assign {
		assign[i] = -1
		for k, id := range leftEdges[i] {
			if n.Flow(id) == 1 {
				assign[i] = adj[i][k]
				break
			}
		}
		if assign[i] < 0 {
			panic("flow: BipartiteAssign: saturated left node without assignment")
		}
	}
	return assign
}
