// Package reliability quantifies why reconstruction time matters — the
// paper's motivating argument (via Muntz & Lui [11], Patterson et al.
// [12]): with single parity, data is lost when a second disk fails while
// the first is still rebuilding, so the mean time to data loss (MTTDL)
// is inversely proportional to the rebuild window. Parity declustering
// shrinks that window by (k-1)/(v-1).
//
// The package provides the classic analytic MTTDL model and a Monte
// Carlo failure-process simulator (deterministic xorshift RNG) that
// cross-validates it.
package reliability

import (
	"fmt"
	"math"

	"repro/internal/workload"
)

// RebuildHours returns the time to rebuild one failed disk when each of
// the v-1 survivors must deliver a (k-1)/(v-1) fraction of diskUnits
// units in parallel at unitsPerHour per disk (the disksim model's
// analytic counterpart). k = v reproduces RAID5 (read everything).
func RebuildHours(diskUnits, v, k int, unitsPerHour float64) float64 {
	if v < 2 || k < 2 || k > v || diskUnits < 1 || unitsPerHour <= 0 {
		panic(fmt.Sprintf("reliability: RebuildHours(%d,%d,%d,%v): invalid parameters", diskUnits, v, k, unitsPerHour))
	}
	fraction := float64(k-1) / float64(v-1)
	return float64(diskUnits) * fraction / unitsPerHour
}

// AnalyticMTTDL returns the mean time to data loss in hours for a
// v-disk single-parity array with per-disk MTTF mttfHours and rebuild
// window rebuildHours: the standard Markov approximation
//
//	MTTDL = MTTF^2 / (v (v-1) R)
//
// valid when R << MTTF.
func AnalyticMTTDL(v int, mttfHours, rebuildHours float64) float64 {
	if v < 2 || mttfHours <= 0 || rebuildHours <= 0 {
		panic(fmt.Sprintf("reliability: AnalyticMTTDL(%d,%v,%v): invalid parameters", v, mttfHours, rebuildHours))
	}
	return mttfHours * mttfHours / (float64(v) * float64(v-1) * rebuildHours)
}

// SimulateMTTDL estimates MTTDL by Monte Carlo over the renewal process:
// wait Exp(v/MTTF) for a first failure, then lose data if any of the
// remaining v-1 disks fails within the rebuild window (probability
// 1 - exp(-(v-1) R / MTTF)); otherwise the array returns to full
// redundancy. Returns the mean over trials.
func SimulateMTTDL(v int, mttfHours, rebuildHours float64, trials int, seed uint64) float64 {
	if trials < 1 {
		panic("reliability: SimulateMTTDL: trials must be >= 1")
	}
	if v < 2 || mttfHours <= 0 || rebuildHours <= 0 {
		panic("reliability: SimulateMTTDL: invalid parameters")
	}
	rng := workload.NewRNG(seed)
	expVariate := func(mean float64) float64 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return -mean * math.Log(u)
	}
	lambda := 1 / mttfHours
	var total float64
	for trial := 0; trial < trials; trial++ {
		t := 0.0
		for {
			// First failure among v disks.
			t += expVariate(1 / (float64(v) * lambda))
			// Time to next failure among survivors.
			second := expVariate(1 / (float64(v-1) * lambda))
			if second < rebuildHours {
				t += second
				break // double failure: data loss
			}
			t += rebuildHours // rebuilt; array whole again
		}
		total += t
	}
	return total / float64(trials)
}

// Comparison summarizes the declustering reliability/capacity trade-off
// for one stripe size.
type Comparison struct {
	K               int
	ParityOverhead  float64 // 1/k of the array stores parity
	RebuildHours    float64
	AnalyticMTTDL   float64
	RelativeToRAID5 float64 // MTTDL improvement factor vs k = v
}

// Compare evaluates stripe sizes for a v-disk array.
func Compare(v, diskUnits int, mttfHours, unitsPerHour float64, ks []int) []Comparison {
	raidR := RebuildHours(diskUnits, v, v, unitsPerHour)
	raidMTTDL := AnalyticMTTDL(v, mttfHours, raidR)
	out := make([]Comparison, 0, len(ks))
	for _, k := range ks {
		r := RebuildHours(diskUnits, v, k, unitsPerHour)
		m := AnalyticMTTDL(v, mttfHours, r)
		out = append(out, Comparison{
			K:               k,
			ParityOverhead:  1 / float64(k),
			RebuildHours:    r,
			AnalyticMTTDL:   m,
			RelativeToRAID5: m / raidMTTDL,
		})
	}
	return out
}
