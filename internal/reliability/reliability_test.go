package reliability

import (
	"math"
	"testing"
)

func TestRebuildHoursFormula(t *testing.T) {
	// v=17, k=5: fraction 4/16 = 1/4 of 1000 units at 100/h = 2.5h.
	if got := RebuildHours(1000, 17, 5, 100); got != 2.5 {
		t.Errorf("RebuildHours = %v, want 2.5", got)
	}
	// k = v: full disk.
	if got := RebuildHours(1000, 17, 17, 100); got != 10 {
		t.Errorf("RAID5 RebuildHours = %v, want 10", got)
	}
}

func TestRebuildHoursDeclusteringSpeedup(t *testing.T) {
	full := RebuildHours(1000, 25, 25, 50)
	fast := RebuildHours(1000, 25, 4, 50)
	if ratio := full / fast; math.Abs(ratio-8.0) > 1e-9 { // (v-1)/(k-1) = 24/3
		t.Errorf("speedup %v, want 8", ratio)
	}
}

func TestAnalyticMTTDLScales(t *testing.T) {
	// Halving the rebuild window doubles MTTDL.
	a := AnalyticMTTDL(20, 100000, 10)
	b := AnalyticMTTDL(20, 100000, 5)
	if math.Abs(b/a-2) > 1e-9 {
		t.Errorf("MTTDL scaling %v, want 2", b/a)
	}
	// More disks, lower MTTDL.
	if AnalyticMTTDL(40, 100000, 10) >= a {
		t.Error("larger array should have lower MTTDL")
	}
}

func TestSimulateMatchesAnalytic(t *testing.T) {
	// With R << MTTF the Markov approximation and the renewal simulation
	// agree; allow 10% Monte Carlo error at 4000 trials.
	v, mttf, rebuild := 10, 50000.0, 20.0
	analytic := AnalyticMTTDL(v, mttf, rebuild)
	sim := SimulateMTTDL(v, mttf, rebuild, 4000, 99)
	if ratio := sim / analytic; ratio < 0.9 || ratio > 1.1 {
		t.Errorf("simulated %v vs analytic %v (ratio %v)", sim, analytic, ratio)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a := SimulateMTTDL(8, 10000, 10, 200, 7)
	b := SimulateMTTDL(8, 10000, 10, 200, 7)
	if a != b {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
}

func TestCompareOrdering(t *testing.T) {
	comps := Compare(25, 2000, 100000, 100, []int{2, 4, 8, 16, 25})
	for i := 1; i < len(comps); i++ {
		if comps[i].K <= comps[i-1].K {
			t.Fatal("ks not increasing")
		}
		// Larger k: longer rebuild, lower MTTDL, less parity overhead.
		if comps[i].RebuildHours <= comps[i-1].RebuildHours {
			t.Errorf("k=%d rebuild not longer than k=%d", comps[i].K, comps[i-1].K)
		}
		if comps[i].AnalyticMTTDL >= comps[i-1].AnalyticMTTDL {
			t.Errorf("k=%d MTTDL not lower than k=%d", comps[i].K, comps[i-1].K)
		}
		if comps[i].ParityOverhead >= comps[i-1].ParityOverhead {
			t.Errorf("k=%d overhead not lower", comps[i].K)
		}
	}
	// k = v row is the RAID5 reference: relative factor 1.
	last := comps[len(comps)-1]
	if last.K != 25 || math.Abs(last.RelativeToRAID5-1) > 1e-9 {
		t.Errorf("RAID5 row: %+v", last)
	}
}

func TestPanicsOnBadParams(t *testing.T) {
	cases := []func(){
		func() { RebuildHours(0, 5, 3, 1) },
		func() { RebuildHours(10, 1, 1, 1) },
		func() { RebuildHours(10, 5, 6, 1) },
		func() { AnalyticMTTDL(1, 1, 1) },
		func() { AnalyticMTTDL(5, -1, 1) },
		func() { SimulateMTTDL(5, 100, 1, 0, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}
