package design

import "testing"

func TestResidualOfProjectivePlaneIsAffine(t *testing.T) {
	// Residual of PG(2,q) w.r.t. any line is AG(2,q): a (q^2, q, 1) BIBD.
	for _, q := range []int{2, 3, 4} {
		pg := ProjectivePlane(q)
		res, err := Residual(pg, 0)
		if err != nil {
			t.Fatalf("PG(2,%d): %v", q, err)
		}
		b, r, lambda, ok := res.Params()
		if !ok {
			t.Fatalf("PG(2,%d) residual invalid: %v", q, res.Verify())
		}
		if res.V != q*q || res.K != q || b != q*q+q || r != q+1 || lambda != 1 {
			t.Errorf("PG(2,%d) residual: v=%d k=%d (%d,%d,%d)", q, res.V, res.K, b, r, lambda)
		}
	}
}

func TestPointDerivedOfBiplaneShape(t *testing.T) {
	// Point-derived of the (11,5,2) biplane: the r=5 blocks through the
	// point, minus the point — shape (10, 4) with 5 blocks. (It is not a
	// BIBD; the classical derived design is block-based, tested below.)
	d := FromDifferenceSet(11, []int{1, 3, 4, 5, 9})
	der, err := Derived(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if der.V != 10 || der.K != 4 || der.B() != 5 {
		t.Errorf("derived shape: v=%d k=%d b=%d", der.V, der.K, der.B())
	}
}

func TestBlockDerivedOfBiplane(t *testing.T) {
	// Block-derived of the symmetric (11,5,2) biplane is a (5,2,1) BIBD:
	// the complete design on 5 points.
	d := FromDifferenceSet(11, []int{1, 3, 4, 5, 9})
	der, err := BlockDerived(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, r, lambda, ok := der.Params()
	if !ok {
		t.Fatalf("block-derived invalid: %v", der.Verify())
	}
	if der.V != 5 || der.K != 2 || b != 10 || r != 4 || lambda != 1 {
		t.Errorf("block-derived: v=%d k=%d (%d,%d,%d)", der.V, der.K, b, r, lambda)
	}
}

func TestBlockDerivedOfFano(t *testing.T) {
	// Fano is symmetric (7,3,1): block-derived is (3,1,0)-shaped — blocks
	// of size 1, which cannot be a 2-design; shape check only.
	der, err := BlockDerived(fano(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if der.V != 3 || der.K != 1 || der.B() != 6 {
		t.Errorf("block-derived Fano: v=%d k=%d b=%d", der.V, der.K, der.B())
	}
}

func TestBlockDerivedValidation(t *testing.T) {
	if _, err := BlockDerived(fano(), 99); err == nil {
		t.Error("bad block accepted")
	}
	// Non-symmetric design with non-uniform intersections: AG(2,3) lines
	// meet a fixed line in 0 or 1 points -> disjoint blocks exist.
	if _, err := BlockDerived(AffinePlane(3), 0); err == nil {
		t.Error("non-uniform intersections accepted")
	}
}

func TestDerivedOfFanoDegenerates(t *testing.T) {
	// Fano has λ=1: derived at a point gives disjoint pairs (a partition),
	// which is balanced with λ=0 — Verify rejects λ-0-style imbalance only
	// if pairs differ; a perfect matching on 6 points with each pair 0 or
	// 1 times is NOT pair-balanced, so Verify must fail.
	d := fano()
	der, err := Derived(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if der.V != 6 || der.K != 2 || der.B() != 3 {
		t.Fatalf("derived shape: v=%d k=%d b=%d", der.V, der.K, der.B())
	}
	if der.Verify() == nil {
		t.Error("derived Fano (3 disjoint pairs on 6 points) should not verify as a BIBD")
	}
}

func TestResidualValidation(t *testing.T) {
	d := fano()
	if _, err := Residual(d, -1); err == nil {
		t.Error("bad block accepted")
	}
	if _, err := Residual(d, 99); err == nil {
		t.Error("bad block accepted")
	}
	if _, err := Derived(d, 9); err == nil {
		t.Error("bad point accepted")
	}
}

func TestResidualOfFanoUniform(t *testing.T) {
	// Fano residual w.r.t. a line: remaining 6 lines each meet the removed
	// line in exactly one point (λ=1, so any two lines share one point):
	// residual blocks all have size 2 — the complete graph K4's edges...
	// 6 blocks of size 2 on 4 points: C(4,2), the complete design, λ=1.
	res, err := Residual(fano(), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, r, lambda, ok := res.Params()
	if !ok {
		t.Fatalf("residual invalid: %v", res.Verify())
	}
	if res.V != 4 || res.K != 2 || b != 6 || r != 3 || lambda != 1 {
		t.Errorf("residual: v=%d k=%d (%d,%d,%d)", res.V, res.K, b, r, lambda)
	}
}
