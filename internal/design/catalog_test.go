package design

import "testing"

func TestDifferenceSetTableAllValid(t *testing.T) {
	for _, e := range differenceSetTable {
		d := FromDifferenceSet(e.v, e.ds)
		if err := d.Verify(); err != nil {
			t.Errorf("difference set v=%d %v: %v", e.v, e.ds, err)
		}
	}
}

func TestFromDifferenceSetFanoParams(t *testing.T) {
	d := FromDifferenceSet(7, []int{1, 2, 4})
	b, r, lambda, ok := d.Params()
	if !ok || b != 7 || r != 3 || lambda != 1 {
		t.Errorf("params (%d,%d,%d,%v), want (7,3,1,true)", b, r, lambda, ok)
	}
}

func TestFromSupplementaryDifferenceSets(t *testing.T) {
	// Two base blocks mod 9 forming a (9,3,1) design is the classic
	// {0,1,3} / ... construction; instead verify a (9,4,3) from QRs-style
	// supplementary sets by brute check of balance only.
	d := FromSupplementaryDifferenceSets(13, [][]int{{0, 1, 3, 9}})
	if err := d.Verify(); err != nil {
		t.Errorf("single base block via supplementary API: %v", err)
	}
}

func TestAffinePlanes(t *testing.T) {
	for _, q := range []int{2, 3, 4, 5, 7, 8, 9} {
		d := AffinePlane(q)
		b, r, lambda, ok := d.Params()
		if !ok {
			t.Fatalf("AG(2,%d): %v", q, d.Verify())
		}
		if b != q*q+q || r != q+1 || lambda != 1 {
			t.Errorf("AG(2,%d): params (%d,%d,%d), want (%d,%d,1)", q, b, r, lambda, q*q+q, q+1)
		}
	}
}

func TestProjectivePlanes(t *testing.T) {
	for _, q := range []int{2, 3, 4, 5, 7, 8} {
		d := ProjectivePlane(q)
		b, r, lambda, ok := d.Params()
		if !ok {
			t.Fatalf("PG(2,%d): %v", q, d.Verify())
		}
		want := q*q + q + 1
		if b != want || r != q+1 || lambda != 1 {
			t.Errorf("PG(2,%d): params (%d,%d,%d), want (%d,%d,1)", q, b, r, lambda, want, q+1)
		}
	}
}

func TestProjectivePlaneFanoIsomorphicParams(t *testing.T) {
	d := ProjectivePlane(2)
	if d.V != 7 || d.K != 3 || d.B() != 7 {
		t.Errorf("PG(2,2): v=%d k=%d b=%d", d.V, d.K, d.B())
	}
}

func TestComplementFano(t *testing.T) {
	d := Complement(fano())
	b, r, lambda, ok := d.Params()
	if !ok {
		t.Fatalf("complement invalid: %v", d.Verify())
	}
	// Complement of (7,3,1) with b=7, r=3: λ' = b - 2r + λ = 7-6+1 = 2.
	if b != 7 || r != 4 || lambda != 2 {
		t.Errorf("complement params (%d,%d,%d), want (7,4,2)", b, r, lambda)
	}
}

func TestComplementParamsFormula(t *testing.T) {
	for _, d0 := range []*Design{fano(), AffinePlane(3), ProjectivePlane(3)} {
		b0, r0, l0, _ := d0.Params()
		c := Complement(d0)
		b, r, lambda, ok := c.Params()
		if !ok {
			t.Fatalf("complement of (%d,%d) invalid: %v", d0.V, d0.K, c.Verify())
		}
		if b != b0 || r != b0-r0 || lambda != b0-2*r0+l0 {
			t.Errorf("complement of (%d,%d): (%d,%d,%d), want (%d,%d,%d)",
				d0.V, d0.K, b, r, lambda, b0, b0-r0, b0-2*r0+l0)
		}
	}
}

func TestSearchFindsFano(t *testing.T) {
	d := Search(7, 3, 1, 100000)
	if d == nil {
		t.Fatal("search failed to find (7,3,1)")
	}
	b, r, lambda, ok := d.Params()
	if !ok || b != 7 || r != 3 || lambda != 1 {
		t.Errorf("search result params (%d,%d,%d,%v)", b, r, lambda, ok)
	}
}

func TestSearchFinds632(t *testing.T) {
	d := Search(6, 3, 2, 2_000_000)
	if d == nil {
		t.Fatal("search failed to find (6,3,2)")
	}
	b, r, lambda, ok := d.Params()
	if !ok || b != 10 || r != 5 || lambda != 2 {
		t.Errorf("(6,3,2) search params (%d,%d,%d,%v)", b, r, lambda, ok)
	}
}

func TestSearchRejectsNonIntegral(t *testing.T) {
	// (v,k,λ) = (8,3,1): r = λ(v-1)/(k-1) = 3.5 not integral.
	if d := Search(8, 3, 1, 100000); d != nil {
		t.Error("search returned a design for non-integral parameters")
	}
}

func TestSearchInvalidArgs(t *testing.T) {
	if Search(5, 1, 1, 1000) != nil {
		t.Error("k=1 should return nil")
	}
	if Search(1, 2, 1, 1000) != nil {
		t.Error("v=1 should return nil")
	}
}

func TestKnownCoversSmallGrid(t *testing.T) {
	// Known must produce verified designs for a representative set of
	// (v, k) pairs including non-prime-power v.
	cases := []struct{ v, k int }{
		{7, 3}, {9, 3}, {13, 4}, {21, 5}, {6, 3}, {11, 5}, {10, 3},
		{16, 4}, {25, 5}, {8, 4},
	}
	for _, c := range cases {
		d := Known(c.v, c.k)
		if d == nil {
			t.Errorf("Known(%d,%d) = nil", c.v, c.k)
			continue
		}
		if err := d.Verify(); err != nil {
			t.Errorf("Known(%d,%d): %v", c.v, c.k, err)
		}
		if d.V != c.v || d.K != c.k {
			t.Errorf("Known(%d,%d) returned (%d,%d)", c.v, c.k, d.V, d.K)
		}
	}
}

func TestKnownInvalid(t *testing.T) {
	if Known(5, 1) != nil || Known(1, 1) != nil || Known(4, 5) != nil {
		t.Error("Known accepted invalid parameters")
	}
}
