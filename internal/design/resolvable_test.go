package design

import "testing"

func TestResolveAffinePlanes(t *testing.T) {
	// AG(2,q) is resolvable into q+1 parallel classes of q lines.
	for _, q := range []int{2, 3, 4, 5} {
		d := AffinePlane(q)
		classes, ok := Resolve(d, 5_000_000)
		if !ok {
			t.Fatalf("AG(2,%d) not resolved", q)
		}
		if len(classes) != q+1 {
			t.Errorf("AG(2,%d): %d classes, want %d", q, len(classes), q+1)
		}
		if !IsResolutionValid(d, classes) {
			t.Errorf("AG(2,%d): invalid resolution", q)
		}
	}
}

func TestResolveRejectsFano(t *testing.T) {
	// 3 does not divide 7: quick arithmetic rejection.
	if _, ok := Resolve(fano(), 1000); ok {
		t.Error("Fano plane resolved but v % k != 0")
	}
}

func TestResolveSTS9(t *testing.T) {
	// STS(9) = AG(2,3) is the unique resolvable (9,3,1); hill-climbed
	// instances are isomorphic to it, hence resolvable.
	d := HillClimbTriples(9, 1, 3, 100000)
	if d == nil {
		t.Fatal("no STS(9)")
	}
	classes, ok := Resolve(d, 5_000_000)
	if !ok {
		t.Fatal("STS(9) not resolved")
	}
	if len(classes) != 4 || !IsResolutionValid(d, classes) {
		t.Errorf("STS(9): %d classes", len(classes))
	}
}

func TestResolveCompleteDesign(t *testing.T) {
	// The complete design C(4,2) is resolvable (a 1-factorization of K4
	// into 3 perfect matchings).
	d := Complete(4, 2, 0)
	classes, ok := Resolve(d, 100000)
	if !ok {
		t.Fatal("C(4,2) not resolved")
	}
	if len(classes) != 3 || !IsResolutionValid(d, classes) {
		t.Errorf("C(4,2): %d classes", len(classes))
	}
}

func TestIsResolutionValidRejectsBad(t *testing.T) {
	d := AffinePlane(2)
	classes, ok := Resolve(d, 100000)
	if !ok {
		t.Fatal("AG(2,2) not resolved")
	}
	// Duplicate a block index.
	bad := [][]int{{0, 0}}
	if IsResolutionValid(d, bad) {
		t.Error("duplicate block accepted")
	}
	// Swap in an overlap.
	if IsResolutionValid(d, [][]int{{0, 1}, {0, 1}, {2, 3}}) {
		t.Error("reused blocks accepted")
	}
	_ = classes
}
