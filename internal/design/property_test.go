package design

import (
	"testing"
	"testing/quick"

	"repro/internal/algebra"
)

var testPrimePowers = algebra.PrimePowersUpTo(49)

func TestQuadraticResidueDesigns(t *testing.T) {
	for _, p := range []int{7, 11, 19, 23, 31, 43} {
		d, err := QuadraticResidueDesign(p)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		b, r, lambda, ok := d.Params()
		if !ok {
			t.Fatalf("p=%d: invalid", p)
		}
		if b != p || r != (p-1)/2 || lambda != (p-3)/4 {
			t.Errorf("p=%d: (%d,%d,%d), want (%d,%d,%d)", p, b, r, lambda, p, (p-1)/2, (p-3)/4)
		}
	}
}

func TestQuadraticResidueRejects(t *testing.T) {
	for _, p := range []int{5, 13, 17, 9, 15} { // ≡ 1 mod 4 or composite
		if _, err := QuadraticResidueDesign(p); err == nil {
			t.Errorf("p=%d accepted", p)
		}
	}
}

func TestPropertyTheorem4AlwaysBIBD(t *testing.T) {
	f := func(a, b uint8) bool {
		v := testPrimePowers[int(a)%len(testPrimePowers)]
		if v < 4 {
			v = 4
		}
		k := 2 + int(b)%(minInt(v, 9)-1)
		d, factor, err := Theorem4Design(v, k)
		if err != nil {
			return false
		}
		if d.Verify() != nil {
			return false
		}
		gcd := algebra.GCD(v-1, k-1)
		return factor%gcd == 0 && d.B()*factor == v*(v-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyTheorem5AlwaysBIBD(t *testing.T) {
	f := func(a, b uint8) bool {
		v := testPrimePowers[int(a)%len(testPrimePowers)]
		if v < 4 {
			v = 4
		}
		// Theorem 5 requires k <= v-1 (the affine fixed point is unusable).
		k := 2 + int(b)%(minInt(v-1, 9)-1)
		d, factor, err := Theorem5Design(v, k)
		if err != nil {
			return false
		}
		if d.Verify() != nil {
			return false
		}
		return factor%algebra.GCD(v-1, k) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyComplementIsBIBD(t *testing.T) {
	// Complement of any BIBD with k < v-1 is a BIBD.
	f := func(a, b uint8) bool {
		v := testPrimePowers[int(a)%len(testPrimePowers)]
		if v < 5 {
			v = 5
		}
		k := 2 + int(b)%(minInt(v-2, 7)-1)
		d, _, err := Theorem4Design(v, k)
		if err != nil {
			return false
		}
		c := Complement(d)
		return c.Verify() == nil && c.K == v-k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPropertyReduceRoundTrip(t *testing.T) {
	// Reducing then re-replicating by the factor restores b.
	f := func(a, b uint8) bool {
		v := testPrimePowers[int(a)%len(testPrimePowers)]
		if v < 4 {
			v = 4
		}
		k := 2 + int(b)%(minInt(v, 8)-1)
		rd, err := NewRingDesignForVK(v, k)
		if err != nil {
			return false
		}
		red, f1 := Reduce(&rd.Design)
		if red.B()*f1 != rd.B() {
			return false
		}
		// Reducing an already-reduced design is idempotent.
		red2, f2 := Reduce(red)
		return f2 == 1 && red2.B() == red.B()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
