package design

// Stinson-style hill climbing for λ-fold triple systems: a fast randomized
// construction of (v, 3, λ) BIBDs. Triple systems exist iff
// λ(v-1) ≡ 0 (mod 2) and λv(v-1) ≡ 0 (mod 6); the hill climb converges
// essentially always in practice, which makes it the catalog's workhorse
// for k = 3 and non-prime-power v (e.g. (10,3,2), (12,3,2)).

import "sort"

// TripleSystemAdmissible reports whether a (v, 3, λ) design can exist by
// the standard divisibility conditions.
func TripleSystemAdmissible(v, lambda int) bool {
	if v < 3 || lambda < 1 {
		return false
	}
	return lambda*(v-1)%2 == 0 && lambda*v*(v-1)%6 == 0
}

// HillClimbTriples builds a (v, 3, λ) BIBD by hill climbing: grow a partial
// design; when a chosen live pair collides with an existing block, swap
// that block out. Deterministic for a fixed seed. Returns nil after
// maxSteps without convergence (essentially never for admissible v ≤ a few
// hundred).
func HillClimbTriples(v, lambda int, seed uint64, maxSteps int) *Design {
	if !TripleSystemAdmissible(v, lambda) {
		return nil
	}
	b := lambda * v * (v - 1) / 6
	r := lambda * (v - 1) / 2
	state := seed*2862933555777941757 + 3037000493
	next := func(mod int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(mod))
	}
	pair := make([]int, v*v) // occurrences of each unordered pair
	deg := make([]int, v)    // occurrences of each point
	type triple [3]int
	blocks := make(map[triple]int) // block -> multiplicity (λ-fold designs may repeat)
	nBlocks := 0
	canon := func(a, bb, c int) triple {
		if a > bb {
			a, bb = bb, a
		}
		if bb > c {
			bb, c = c, bb
		}
		if a > bb {
			a, bb = bb, a
		}
		return triple{a, bb, c}
	}
	addBlock := func(t triple) {
		blocks[t]++
		nBlocks++
		deg[t[0]]++
		deg[t[1]]++
		deg[t[2]]++
		pair[t[0]*v+t[1]]++
		pair[t[0]*v+t[2]]++
		pair[t[1]*v+t[2]]++
	}
	removeBlock := func(t triple) {
		if blocks[t] == 1 {
			delete(blocks, t)
		} else {
			blocks[t]--
		}
		nBlocks--
		deg[t[0]]--
		deg[t[1]]--
		deg[t[2]]--
		pair[t[0]*v+t[1]]--
		pair[t[0]*v+t[2]]--
		pair[t[1]*v+t[2]]--
	}
	pairAt := func(x, y int) int {
		if x > y {
			x, y = y, x
		}
		return pair[x*v+y]
	}
	// Pick a block (weighted by multiplicity) containing pair (y, z).
	blockWith := func(y, z int) (triple, bool) {
		var candidates []triple
		for t, mult := range blocks {
			if (t[0] == y || t[1] == y || t[2] == y) && (t[0] == z || t[1] == z || t[2] == z) {
				for i := 0; i < mult; i++ {
					candidates = append(candidates, t)
				}
			}
		}
		if len(candidates) == 0 {
			return triple{}, false
		}
		// Map iteration order is random; sort for seed-determinism.
		sort.Slice(candidates, func(i, j int) bool {
			a, b := candidates[i], candidates[j]
			if a[0] != b[0] {
				return a[0] < b[0]
			}
			if a[1] != b[1] {
				return a[1] < b[1]
			}
			return a[2] < b[2]
		})
		return candidates[next(len(candidates))], true
	}
	for step := 0; step < maxSteps && nBlocks < b; step++ {
		// Pick a live point x (degree < r).
		x := next(v)
		for tries := 0; deg[x] >= r && tries < v; tries++ {
			x = (x + 1) % v
		}
		if deg[x] >= r {
			continue
		}
		// Pick two distinct live pairs (x,y), (x,z).
		var liveY []int
		for y := 0; y < v; y++ {
			if y != x && pairAt(x, y) < lambda {
				liveY = append(liveY, y)
			}
		}
		if len(liveY) < 2 {
			continue
		}
		y := liveY[next(len(liveY))]
		z := liveY[next(len(liveY))]
		if y == z {
			continue
		}
		if pairAt(y, z) < lambda {
			addBlock(canon(x, y, z))
		} else {
			// Swap: remove a block containing (y,z), then add {x,y,z}.
			if old, ok := blockWith(y, z); ok {
				removeBlock(old)
				addBlock(canon(x, y, z))
			}
		}
	}
	if nBlocks != b {
		return nil
	}
	d := &Design{V: v, K: 3}
	keys := make([]triple, 0, len(blocks))
	for t := range blocks {
		keys = append(keys, t)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return a[2] < b[2]
	})
	for _, t := range keys {
		for i := 0; i < blocks[t]; i++ {
			d.Tuples = append(d.Tuples, []int{t[0], t[1], t[2]})
		}
	}
	if d.Verify() != nil {
		return nil
	}
	return d
}

// MinimalTripleLambda returns the smallest λ >= 1 for which (v, 3, λ) is
// admissible, or 0 if v < 3.
func MinimalTripleLambda(v int) int {
	for lambda := 1; lambda <= 6; lambda++ {
		if TripleSystemAdmissible(v, lambda) {
			return lambda
		}
	}
	return 0
}
