package design

import "testing"

func TestTripleSystemAdmissible(t *testing.T) {
	cases := []struct {
		v, lambda int
		want      bool
	}{
		{7, 1, true}, {9, 1, true}, {13, 1, true}, {6, 1, false},
		{6, 2, true}, {10, 1, false}, {10, 2, true}, {8, 1, false}, {8, 6, true},
		{8, 3, false}, {11, 1, false}, {11, 3, true}, {2, 1, false},
	}
	for _, c := range cases {
		if got := TripleSystemAdmissible(c.v, c.lambda); got != c.want {
			t.Errorf("TripleSystemAdmissible(%d,%d) = %v, want %v", c.v, c.lambda, got, c.want)
		}
	}
}

func TestMinimalTripleLambda(t *testing.T) {
	cases := []struct{ v, want int }{
		{7, 1}, {9, 1}, {6, 2}, {10, 2}, {8, 6}, {11, 3}, {12, 2}, {14, 6}, {2, 0},
	}
	for _, c := range cases {
		if got := MinimalTripleLambda(c.v); got != c.want {
			t.Errorf("MinimalTripleLambda(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHillClimbSteinerTripleSystems(t *testing.T) {
	// STS(v) exists iff v ≡ 1, 3 (mod 6).
	for _, v := range []int{7, 9, 13, 15, 19, 21, 25} {
		d := HillClimbTriples(v, 1, 42, 500*v*v)
		if d == nil {
			t.Fatalf("STS(%d) construction failed", v)
		}
		b, r, lambda, ok := d.Params()
		if !ok {
			t.Fatalf("STS(%d) invalid: %v", v, d.Verify())
		}
		if lambda != 1 || b != v*(v-1)/6 || r != (v-1)/2 {
			t.Errorf("STS(%d): params (%d,%d,%d)", v, b, r, lambda)
		}
	}
}

func TestHillClimbLambdaFold(t *testing.T) {
	cases := []struct{ v, lambda int }{
		{6, 2}, {10, 2}, {8, 6}, {11, 3}, {12, 2}, {16, 2}, {14, 6},
	}
	for _, c := range cases {
		d := HillClimbTriples(c.v, c.lambda, 7, 800*c.v*c.v)
		if d == nil {
			t.Fatalf("(%d,3,%d) construction failed", c.v, c.lambda)
		}
		_, _, lambda, ok := d.Params()
		if !ok || lambda != c.lambda {
			t.Errorf("(%d,3,%d): got λ=%d ok=%v", c.v, c.lambda, lambda, ok)
		}
	}
}

func TestHillClimbInadmissible(t *testing.T) {
	if HillClimbTriples(6, 1, 1, 100000) != nil {
		t.Error("(6,3,1) is inadmissible")
	}
	if HillClimbTriples(2, 1, 1, 1000) != nil {
		t.Error("v=2 is inadmissible")
	}
}

func TestHillClimbDeterministicPerSeed(t *testing.T) {
	a := HillClimbTriples(9, 1, 5, 100000)
	b := HillClimbTriples(9, 1, 5, 100000)
	if a == nil || b == nil {
		t.Fatal("construction failed")
	}
	if a.B() != b.B() {
		t.Fatalf("different sizes: %d vs %d", a.B(), b.B())
	}
	for i := range a.Tuples {
		for j := range a.Tuples[i] {
			if a.Tuples[i][j] != b.Tuples[i][j] {
				t.Fatalf("tuple %d differs between identical seeds", i)
			}
		}
	}
}
