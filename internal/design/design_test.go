package design

import (
	"testing"

	"repro/internal/algebra"
)

func fano() *Design {
	return FromDifferenceSet(7, []int{1, 2, 4})
}

func TestVerifyFano(t *testing.T) {
	d := fano()
	b, r, lambda, ok := d.Params()
	if !ok {
		t.Fatalf("Fano plane failed verification: %v", d.Verify())
	}
	if b != 7 || r != 3 || lambda != 1 {
		t.Errorf("Fano params = (%d,%d,%d), want (7,3,1)", b, r, lambda)
	}
}

func TestVerifyRejectsDuplicateElement(t *testing.T) {
	d := &Design{V: 4, K: 2, Tuples: [][]int{{0, 0}, {1, 2}}}
	if d.Verify() == nil {
		t.Error("duplicate element not rejected")
	}
}

func TestVerifyRejectsOutOfRange(t *testing.T) {
	d := &Design{V: 4, K: 2, Tuples: [][]int{{0, 4}}}
	if d.Verify() == nil {
		t.Error("out-of-range element not rejected")
	}
}

func TestVerifyRejectsWrongSize(t *testing.T) {
	d := &Design{V: 4, K: 3, Tuples: [][]int{{0, 1}}}
	if d.Verify() == nil {
		t.Error("short tuple not rejected")
	}
}

func TestVerifyRejectsUnbalancedR(t *testing.T) {
	d := &Design{V: 4, K: 2, Tuples: [][]int{{0, 1}, {0, 2}, {0, 3}}}
	if d.Verify() == nil {
		t.Error("unbalanced r not rejected")
	}
}

func TestVerifyRejectsUnbalancedLambda(t *testing.T) {
	// Each element twice, but pair (0,1) occurs twice and (0,2) never.
	d := &Design{V: 4, K: 2, Tuples: [][]int{{0, 1}, {0, 1}, {2, 3}, {2, 3}}}
	if d.Verify() == nil {
		t.Error("unbalanced λ not rejected")
	}
}

func TestVerifyEmpty(t *testing.T) {
	d := &Design{V: 4, K: 2}
	if d.Verify() == nil {
		t.Error("empty design not rejected")
	}
}

func TestCompleteDesign(t *testing.T) {
	d := Complete(5, 3, 0)
	b, r, lambda, ok := d.Params()
	if !ok {
		t.Fatalf("complete design invalid: %v", d.Verify())
	}
	if b != 10 || r != 6 || lambda != 3 {
		t.Errorf("C(5,3) params = (%d,%d,%d), want (10,6,3)", b, r, lambda)
	}
}

func TestCompleteDesignCountMatchesBinomial(t *testing.T) {
	for _, c := range []struct{ v, k int }{{4, 2}, {6, 3}, {7, 4}, {8, 2}} {
		d := Complete(c.v, c.k, 0)
		if d.B() != Binomial(c.v, c.k) {
			t.Errorf("Complete(%d,%d) has %d tuples, want %d", c.v, c.k, d.B(), Binomial(c.v, c.k))
		}
	}
}

func TestCompleteOverflowGuard(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Complete(30,15,10) did not panic")
		}
	}()
	Complete(30, 15, 10)
}

func TestBinomial(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120}, {6, 7, 0}, {6, -1, 0},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestReduceNoRedundancy(t *testing.T) {
	d := fano()
	r, f := Reduce(d)
	if f != 1 {
		t.Errorf("Fano reduction factor = %d, want 1", f)
	}
	if r.B() != d.B() {
		t.Errorf("Fano reduced to %d tuples", r.B())
	}
}

func TestReduceDoubledDesign(t *testing.T) {
	d := fano()
	doubled := d.Clone()
	doubled.Tuples = append(doubled.Tuples, d.Clone().Tuples...)
	r, f := Reduce(doubled)
	if f != 2 {
		t.Errorf("doubled Fano reduction factor = %d, want 2", f)
	}
	if err := r.Verify(); err != nil {
		t.Errorf("reduced design invalid: %v", err)
	}
	if r.B() != 7 {
		t.Errorf("reduced to %d tuples, want 7", r.B())
	}
}

func TestReducePreservesBalance(t *testing.T) {
	rd, err := NewRingDesignForVK(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	red, f := Reduce(&rd.Design)
	if f < 1 {
		t.Fatalf("factor %d", f)
	}
	if err := red.Verify(); err != nil {
		t.Errorf("reduced ring design invalid: %v", err)
	}
	b1, r1, l1, _ := rd.Params()
	b2, r2, l2, ok := red.Params()
	if !ok || b1 != b2*f || r1 != r2*f || l1 != l2*f {
		t.Errorf("reduction params mismatch: (%d,%d,%d) vs f=%d * (%d,%d,%d)", b1, r1, l1, f, b2, r2, l2)
	}
}

func TestMinB(t *testing.T) {
	cases := []struct{ v, k, want int }{
		{7, 3, 7},   // Fano is optimal
		{9, 3, 12},  // AG(2,3)
		{13, 4, 13}, // PG(2,3)
		{16, 4, 20}, // Theorem 6 case: v = k^2
		{64, 8, 72}, // v = k^2
		{6, 3, 5},   // bound is 5; the true minimum is 10 (bound not tight)
	}
	for _, c := range cases {
		if got := MinB(c.v, c.k); got != c.want {
			t.Errorf("MinB(%d,%d) = %d, want %d", c.v, c.k, got, c.want)
		}
	}
}

func TestMinBDividesActualB(t *testing.T) {
	// Theorem 7: any BIBD's b is a multiple of MinB.
	designs := []*Design{
		fano(),
		AffinePlane(3),
		ProjectivePlane(3),
		Complete(6, 3, 0),
	}
	for _, d := range designs {
		b, _, _, ok := d.Params()
		if !ok {
			t.Fatalf("design invalid: %v", d.Verify())
		}
		if b%MinB(d.V, d.K) != 0 {
			t.Errorf("(%d,%d): b=%d not a multiple of MinB=%d", d.V, d.K, b, MinB(d.V, d.K))
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	d := fano()
	c := d.Clone()
	c.Tuples[0][0] = 99
	if d.Tuples[0][0] == 99 {
		t.Error("Clone shares tuple storage")
	}
}

func TestReplicationCount(t *testing.T) {
	d := fano()
	if got := d.ReplicationCount(); got != 3 {
		t.Errorf("ReplicationCount = %d, want 3", got)
	}
}

func TestParamsIdentity(t *testing.T) {
	// bk = vr and λ(v-1) = r(k-1) must hold for all verified designs.
	designs := []*Design{fano(), AffinePlane(4), ProjectivePlane(2), Complete(7, 3, 0)}
	for _, d := range designs {
		b, r, lambda, ok := d.Params()
		if !ok {
			t.Fatalf("invalid design (%d,%d): %v", d.V, d.K, d.Verify())
		}
		if b*d.K != d.V*r {
			t.Errorf("(%d,%d): bk != vr", d.V, d.K)
		}
		if lambda*(d.V-1) != r*(d.K-1) {
			t.Errorf("(%d,%d): λ(v-1) != r(k-1)", d.V, d.K)
		}
	}
}

func TestRingDesignTheorem1Params(t *testing.T) {
	for _, c := range []struct{ v, k int }{{4, 3}, {5, 4}, {7, 3}, {8, 5}, {9, 4}, {13, 6}, {16, 7}} {
		rd, err := NewRingDesignForVK(c.v, c.k)
		if err != nil {
			t.Fatalf("(%d,%d): %v", c.v, c.k, err)
		}
		b, r, lambda, ok := rd.Params()
		if !ok {
			t.Fatalf("(%d,%d): not a BIBD: %v", c.v, c.k, rd.Verify())
		}
		wb, wr, wl := TheoreticalParams(c.v, c.k)
		if b != wb || r != wr || lambda != wl {
			t.Errorf("(%d,%d): params (%d,%d,%d), want (%d,%d,%d)", c.v, c.k, b, r, lambda, wb, wr, wl)
		}
	}
}

func TestRingDesignCompositeV(t *testing.T) {
	// v = 12, M(12) = 3: k = 2, 3 work, k = 4 must fail.
	for k := 2; k <= 3; k++ {
		rd, err := NewRingDesignForVK(12, k)
		if err != nil {
			t.Fatalf("(12,%d): %v", k, err)
		}
		if err := rd.Verify(); err != nil {
			t.Errorf("(12,%d): %v", k, err)
		}
	}
	if _, err := NewRingDesignForVK(12, 4); err == nil {
		t.Error("(12,4): expected Theorem 2 rejection")
	}
}

func TestRingDesignTheorem2Boundary(t *testing.T) {
	cases := []struct {
		v, maxK int
	}{{6, 2}, {10, 2}, {12, 3}, {15, 3}, {20, 4}, {18, 2}, {45, 5}}
	for _, c := range cases {
		if got := algebra.MaxGenerators(c.v); got != c.maxK {
			t.Fatalf("M(%d) = %d, want %d", c.v, got, c.maxK)
		}
		if rd, err := NewRingDesignForVK(c.v, c.maxK); err != nil {
			t.Errorf("(%d,%d): %v", c.v, c.maxK, err)
		} else if err := rd.Verify(); err != nil {
			t.Errorf("(%d,%d): %v", c.v, c.maxK, err)
		}
		if _, err := NewRingDesignForVK(c.v, c.maxK+1); err == nil {
			t.Errorf("(%d,%d): expected rejection above M(v)", c.v, c.maxK+1)
		}
	}
}

func TestRingDesignTupleIndex(t *testing.T) {
	rd, err := NewRingDesignForVK(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	v := 8
	seen := map[int]bool{}
	for x := 0; x < v; x++ {
		for y := 1; y < v; y++ {
			idx := rd.TupleIndex(x, y)
			if seen[idx] {
				t.Fatalf("TupleIndex(%d,%d) = %d duplicated", x, y, idx)
			}
			seen[idx] = true
			gx, gy := rd.PairOf(idx)
			if gx != x || gy != y {
				t.Fatalf("PairOf(%d) = (%d,%d), want (%d,%d)", idx, gx, gy, x, y)
			}
			// First element of the tuple must be x itself (offset 0 for g_0).
			if rd.Tuples[idx][0] != x {
				t.Fatalf("tuple (%d,%d) position 0 = %d, want x", x, y, rd.Tuples[idx][0])
			}
		}
	}
	if len(seen) != v*(v-1) {
		t.Fatalf("indexed %d tuples, want %d", len(seen), v*(v-1))
	}
}

func TestRingDesignInvalidGenerators(t *testing.T) {
	z := algebra.NewZmod(6)
	defer func() {
		if recover() == nil {
			t.Error("invalid generator set accepted")
		}
	}()
	NewRingDesign(z, []int{1, 3}) // difference 2 not a unit mod 6
}
