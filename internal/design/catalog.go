package design

import (
	"fmt"

	"repro/internal/algebra"
)

// This file provides BIBD sources beyond ring-based designs: cyclic
// difference sets, affine and projective planes, complements, and a small
// backtracking searcher. Together they serve as the "known BIBDs" catalog
// the paper leans on for values of v the algebraic constructions cannot
// reach (Hanani's tables for v <= 43); every entry is machine-verified in
// tests.

// FromDifferenceSet develops a (v, k, λ) cyclic difference set D modulo v
// into the BIBD whose blocks are D + i for i = 0..v-1.
func FromDifferenceSet(v int, ds []int) *Design {
	d := &Design{V: v, K: len(ds)}
	for i := 0; i < v; i++ {
		tuple := make([]int, len(ds))
		for j, x := range ds {
			tuple[j] = (x + i) % v
		}
		d.Tuples = append(d.Tuples, tuple)
	}
	return d
}

// FromSupplementaryDifferenceSets develops several base blocks modulo v
// (supplementary difference sets, Wallis): the union of the developments
// of each base block.
func FromSupplementaryDifferenceSets(v int, sets [][]int) *Design {
	if len(sets) == 0 {
		panic("design: FromSupplementaryDifferenceSets: no base blocks")
	}
	k := len(sets[0])
	d := &Design{V: v, K: k}
	for _, ds := range sets {
		if len(ds) != k {
			panic("design: FromSupplementaryDifferenceSets: unequal block sizes")
		}
		dev := FromDifferenceSet(v, ds)
		d.Tuples = append(d.Tuples, dev.Tuples...)
	}
	return d
}

// AffinePlane returns AG(2, q) for a prime power q: the (q^2, q, 1) design
// whose blocks are the q^2 + q lines of the affine plane over GF(q).
// Points are coded as x*q + y.
func AffinePlane(q int) *Design {
	f := algebra.NewField(q)
	d := &Design{V: q * q, K: q}
	point := func(x, y int) int { return x*q + y }
	// Lines y = m*x + c.
	for m := 0; m < q; m++ {
		for c := 0; c < q; c++ {
			tuple := make([]int, q)
			for x := 0; x < q; x++ {
				tuple[x] = point(x, f.Add(f.Mul(m, x), c))
			}
			d.Tuples = append(d.Tuples, tuple)
		}
	}
	// Vertical lines x = c.
	for c := 0; c < q; c++ {
		tuple := make([]int, q)
		for y := 0; y < q; y++ {
			tuple[y] = point(c, y)
		}
		d.Tuples = append(d.Tuples, tuple)
	}
	return d
}

// ProjectivePlane returns PG(2, q) for a prime power q: the
// (q^2+q+1, q+1, 1) design of points and lines of the projective plane
// over GF(q). It is built by normalizing homogeneous coordinates.
func ProjectivePlane(q int) *Design {
	f := algebra.NewField(q)
	// Canonical point representatives: (1, a, b), (0, 1, b), (0, 0, 1).
	type pt [3]int
	var points []pt
	index := map[pt]int{}
	addPoint := func(p pt) {
		index[p] = len(points)
		points = append(points, p)
	}
	for a := 0; a < q; a++ {
		for b := 0; b < q; b++ {
			addPoint(pt{1, a, b})
		}
	}
	for b := 0; b < q; b++ {
		addPoint(pt{0, 1, b})
	}
	addPoint(pt{0, 0, 1})
	normalize := func(p pt) pt {
		for i := 0; i < 3; i++ {
			if p[i] != 0 {
				inv, _ := f.Inv(p[i])
				return pt{f.Mul(p[0], inv), f.Mul(p[1], inv), f.Mul(p[2], inv)}
			}
		}
		panic("design: ProjectivePlane: zero vector")
	}
	// Lines are also indexed by canonical homogeneous triples [l0,l1,l2]:
	// the line contains points p with l.p = 0.
	d := &Design{V: q*q + q + 1, K: q + 1}
	for _, l := range points { // lines biject with points (self-dual count)
		var tuple []int
		for _, p := range points {
			dot := f.Add(f.Add(f.Mul(l[0], p[0]), f.Mul(l[1], p[1])), f.Mul(l[2], p[2]))
			if dot == 0 {
				tuple = append(tuple, index[normalize(p)])
			}
		}
		if len(tuple) != q+1 {
			panic(fmt.Sprintf("design: ProjectivePlane(%d): line with %d points", q, len(tuple)))
		}
		d.Tuples = append(d.Tuples, tuple)
	}
	return d
}

// Complement returns the complement design: each block becomes its
// complement in {0..v-1}. The complement of a (v, k, λ) BIBD with b blocks
// and replication r is a (v, v-k, b-2r+λ) BIBD.
func Complement(d *Design) *Design {
	out := &Design{V: d.V, K: d.V - d.K}
	for _, tuple := range d.Tuples {
		in := make([]bool, d.V)
		for _, x := range tuple {
			in[x] = true
		}
		comp := make([]int, 0, d.V-d.K)
		for x := 0; x < d.V; x++ {
			if !in[x] {
				comp = append(comp, x)
			}
		}
		out.Tuples = append(out.Tuples, comp)
	}
	return out
}

// Search performs a backtracking search for a (v, k, λ) BIBD, trying blocks
// in lexicographic order with pair-count pruning. It is intended for small
// parameters only (the catalog and tests); it returns nil if no design is
// found within maxNodes search nodes.
func Search(v, k, lambda, maxNodes int) *Design {
	if v < 2 || k < 2 || k > v || lambda < 1 {
		return nil
	}
	b := lambda * v * (v - 1) / (k * (k - 1))
	if lambda*v*(v-1)%(k*(k-1)) != 0 {
		return nil
	}
	r := lambda * (v - 1) / (k - 1)
	if lambda*(v-1)%(k-1) != 0 {
		return nil
	}
	pair := make([]int, v*v)
	occ := make([]int, v)
	var blocks [][]int
	nodes := 0
	// Candidate blocks are generated on the fly; to cut symmetry the block
	// list is kept lexicographically nondecreasing.
	var rec func(prev []int) bool
	feasibleBlock := func(tuple []int) bool {
		for i, x := range tuple {
			if occ[x] >= r {
				return false
			}
			for _, y := range tuple[i+1:] {
				if pair[x*v+y] >= lambda {
					return false
				}
			}
		}
		return true
	}
	apply := func(tuple []int, delta int) {
		for i, x := range tuple {
			occ[x] += delta
			for _, y := range tuple[i+1:] {
				pair[x*v+y] += delta
				pair[y*v+x] += delta
			}
		}
	}
	cmpGE := func(a, b []int) bool { // a >= b lexicographically
		for i := range a {
			if a[i] != b[i] {
				return a[i] > b[i]
			}
		}
		return true
	}
	var enumerate func(tuple []int, start, depth int, prev []int) bool
	rec = func(prev []int) bool {
		if len(blocks) == b {
			return true
		}
		nodes++
		if nodes > maxNodes {
			return false
		}
		tuple := make([]int, k)
		return enumerate(tuple, 0, 0, prev)
	}
	enumerate = func(tuple []int, start, depth int, prev []int) bool {
		if depth == k {
			if prev != nil && !cmpGE(tuple, prev) {
				return false
			}
			if !feasibleBlock(tuple) {
				return false
			}
			apply(tuple, 1)
			blocks = append(blocks, append([]int(nil), tuple...))
			if rec(tuple) {
				return true
			}
			blocks = blocks[:len(blocks)-1]
			apply(tuple, -1)
			return false
		}
		for x := start; x <= v-(k-depth); x++ {
			tuple[depth] = x
			if enumerate(tuple, x+1, depth+1, prev) {
				return true
			}
		}
		return false
	}
	if !rec(nil) {
		return nil
	}
	d := &Design{V: v, K: k, Tuples: blocks}
	return d
}

// differenceSetTable lists known cyclic (v, k, λ) difference sets used as
// existence witnesses. Every entry is verified by tests.
var differenceSetTable = []struct {
	v  int
	ds []int
}{
	{7, []int{1, 2, 4}},                              // Fano plane (7,3,1)
	{11, []int{1, 3, 4, 5, 9}},                       // biplane (11,5,2), quadratic residues
	{13, []int{0, 1, 3, 9}},                          // PG(2,3) (13,4,1)
	{21, []int{3, 6, 7, 12, 14}},                     // PG(2,4) (21,5,1)
	{15, []int{0, 1, 2, 4, 5, 8, 10}},                // (15,7,3) difference set
	{23, []int{1, 2, 3, 4, 6, 8, 9, 12, 13, 16, 18}}, // (23,11,5) QR
}

// Known returns a verified BIBD for (v, k) from the catalog builders, or
// nil if none of them produces one. The search order favors small designs.
func Known(v, k int) *Design {
	if v < 2 || k < 2 || k > v {
		return nil
	}
	try := func(d *Design) *Design {
		if d != nil && d.V == v && d.K == k && d.Verify() == nil {
			return d
		}
		return nil
	}
	// Algebraic constructions first.
	if p, _, ok := algebra.IsPrimePower(v); ok && k <= v {
		_ = p
		if d, _, err := Theorem4Design(v, k); err == nil {
			if got := try(d); got != nil {
				return got
			}
		}
	}
	if q, _, ok := algebra.IsPrimePower(k); ok && q == k && k*k == v {
		if got := try(AffinePlane(k)); got != nil {
			return got
		}
	}
	if _, _, ok := algebra.IsPrimePower(k - 1); ok && v == (k-1)*(k-1)+(k-1)+1 {
		if got := try(ProjectivePlane(k - 1)); got != nil {
			return got
		}
	}
	for _, e := range differenceSetTable {
		if e.v == v && len(e.ds) == k {
			if got := try(FromDifferenceSet(e.v, e.ds)); got != nil {
				return got
			}
		}
		// Complement of a difference-set design.
		if e.v == v && e.v-len(e.ds) == k {
			if got := try(Complement(FromDifferenceSet(e.v, e.ds))); got != nil {
				return got
			}
		}
	}
	// Triple systems via hill climbing (fast and reliable for k = 3).
	if k == 3 {
		if lambda := MinimalTripleLambda(v); lambda > 0 {
			for seed := uint64(1); seed <= 4; seed++ {
				if d := HillClimbTriples(v, lambda, seed, 500*v*v); d != nil {
					if got := try(d); got != nil {
						return got
					}
				}
			}
		}
	}
	// Small search fallback: find the minimal λ making the counting
	// conditions integral, and search briefly.
	if v <= 13 && k <= v {
		for lambda := 1; lambda <= k*(k-1); lambda++ {
			if lambda*v*(v-1)%(k*(k-1)) != 0 || lambda*(v-1)%(k-1) != 0 {
				continue
			}
			if d := Search(v, k, lambda, 2_000_000); d != nil {
				if got := try(d); got != nil {
					return got
				}
			}
			break // only try the minimal integral λ
		}
	}
	return nil
}
