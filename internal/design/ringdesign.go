package design

import (
	"fmt"

	"repro/internal/algebra"
)

// RingDesign is a ring-based block design (Theorem 1): for a finite
// commutative ring R with unit and generators g_0..g_{k-1} whose pairwise
// differences are units, the tuple for each pair (x, y), y != 0, is
// { x + y(g_i - g_0) : i }. It records the indexing structure layouts need:
// the tuple for (x, y) is Tuples[TupleIndex(x, y)], and its i-th position
// holds the g_i-th element.
type RingDesign struct {
	Design
	Ring       algebra.Ring
	Generators []int
}

// NewRingDesign constructs the ring-based block design for r and gens.
// It panics if gens is not a valid generator set. The resulting design has
// b = v(v-1), r = k(v-1), λ = k(k-1) (Theorem 1).
func NewRingDesign(r algebra.Ring, gens []int) *RingDesign {
	if len(gens) < 1 {
		panic("design: NewRingDesign: empty generator set")
	}
	if !algebra.IsGeneratorSet(r, gens) {
		panic(fmt.Sprintf("design: NewRingDesign(%s): invalid generator set %v", r.Name(), gens))
	}
	v := r.Order()
	k := len(gens)
	d := &RingDesign{
		Design:     Design{V: v, K: k},
		Ring:       r,
		Generators: append([]int(nil), gens...),
	}
	// Precompute the offsets g_i - g_0.
	offsets := make([]int, k)
	for i, g := range gens {
		offsets[i] = algebra.Sub(r, g, gens[0])
	}
	d.Tuples = make([][]int, 0, v*(v-1))
	for x := 0; x < v; x++ {
		for y := 0; y < v; y++ {
			if y == r.Zero() {
				continue
			}
			tuple := make([]int, k)
			for i, off := range offsets {
				tuple[i] = r.Add(x, r.Mul(y, off))
			}
			d.Tuples = append(d.Tuples, tuple)
		}
	}
	return d
}

// TupleIndex returns the index into Tuples of the tuple for pair (x, y),
// where x is any element code and y any nonzero element code.
func (d *RingDesign) TupleIndex(x, y int) int {
	v := d.Ring.Order()
	zero := d.Ring.Zero()
	if x < 0 || x >= v || y < 0 || y >= v || y == zero {
		panic(fmt.Sprintf("design: TupleIndex(%d,%d): out of range for order %d", x, y, v))
	}
	// y values skip the zero code; zero is code 0 for all our rings, but
	// stay robust to any zero code.
	yi := y
	if y > zero {
		yi = y - 1
	}
	return x*(v-1) + yi
}

// PairOf is the inverse of TupleIndex: it returns the (x, y) pair of tuple t.
func (d *RingDesign) PairOf(t int) (x, y int) {
	v := d.Ring.Order()
	x = t / (v - 1)
	yi := t % (v - 1)
	zero := d.Ring.Zero()
	y = yi
	if yi >= zero {
		y = yi + 1
	}
	return x, y
}

// NewRingDesignForVK builds a ring-based design for v disks and stripe size
// k using the canonical ring of order v (a field when v is a prime power,
// otherwise the Lemma 3 cross product of fields). It returns an error when
// k > M(v), which Theorem 2 proves impossible.
func NewRingDesignForVK(v, k int) (*RingDesign, error) {
	if v < 2 {
		return nil, fmt.Errorf("design: v = %d < 2", v)
	}
	if k < 1 || k > v {
		return nil, fmt.Errorf("design: k = %d outside [1, v]", k)
	}
	if m := algebra.MaxGenerators(v); k > m {
		return nil, fmt.Errorf("design: no ring-based design for v=%d, k=%d: k exceeds M(v)=%d (Theorem 2)", v, k, m)
	}
	r := algebra.ProductRingFor(v)
	gens := algebra.FindGenerators(r, k)
	if gens == nil {
		return nil, fmt.Errorf("design: generator search failed for v=%d, k=%d", v, k)
	}
	return NewRingDesign(r, gens), nil
}

// TheoreticalParams returns the Theorem 1 parameters for a ring-based
// design on v elements with tuple size k.
func TheoreticalParams(v, k int) (b, r, lambda int) {
	return v * (v - 1), k * (v - 1), k * (k - 1)
}
