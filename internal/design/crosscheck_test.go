package design

import (
	"testing"

	"repro/internal/algebra"
)

// Cross-validation between independent ring implementations: for prime v,
// Z_v and GF(v) are isomorphic fields, so ring-based designs built over
// either must have identical parameters and be equivalent as multisets of
// blocks under the identity labeling (codes are residues in both).

func TestRingDesignZmodVsGFPrime(t *testing.T) {
	for _, p := range []int{5, 7, 11, 13} {
		z := algebra.NewZmod(p)
		f := algebra.NewField(p)
		k := 3
		gensZ := algebra.FindGenerators(z, k)
		gensF := algebra.FindGenerators(f, k)
		if gensZ == nil || gensF == nil {
			t.Fatalf("p=%d: generator search failed", p)
		}
		dz := NewRingDesign(z, gensZ)
		df := NewRingDesign(f, gensF)
		bz, rz, lz, okz := dz.Params()
		bf, rf, lf, okf := df.Params()
		if !okz || !okf {
			t.Fatalf("p=%d: invalid designs", p)
		}
		if bz != bf || rz != rf || lz != lf {
			t.Errorf("p=%d: Zmod (%d,%d,%d) vs GF (%d,%d,%d)", p, bz, rz, lz, bf, rf, lf)
		}
		// Same multiset of blocks: compare canonical keys.
		countZ := map[string]int{}
		for _, tup := range dz.Tuples {
			countZ[canonKey(tup)]++
		}
		for _, tup := range df.Tuples {
			countZ[canonKey(tup)]--
		}
		for _, c := range countZ {
			if c != 0 {
				// Generators may differ between the two searches; fall back
				// to checking that both reduce to valid BIBDs of equal size.
				rz2, fz := Reduce(&dz.Design)
				rf2, ff := Reduce(&df.Design)
				if rz2.B() != rf2.B() || fz != ff {
					t.Errorf("p=%d: reduced sizes differ: %d/%d vs %d/%d", p, rz2.B(), fz, rf2.B(), ff)
				}
				return
			}
		}
	}
}

func TestZmodCompositeRingDesign(t *testing.T) {
	// Z_15 has M-like limits: units are residues coprime to 15. {0,1}
	// works (difference 1); the design must be a valid BIBD by Theorem 1.
	z := algebra.NewZmod(15)
	d := NewRingDesign(z, []int{0, 1})
	b, r, lambda, ok := d.Params()
	if !ok {
		t.Fatalf("Z_15 design invalid: %v", d.Verify())
	}
	if b != 15*14 || r != 2*14 || lambda != 2 {
		t.Errorf("Z_15 params (%d,%d,%d)", b, r, lambda)
	}
}

func TestZmodRingDesignMatchesProductRing(t *testing.T) {
	// Theorem 1 holds for ANY ring; Z_12 and GF(4)xGF(3) both have order
	// 12 but different structure (Z_12 is not a product of fields with
	// the same generator capacity: M over Z_12 tops out at... its largest
	// generator set is smaller). Both must still give valid BIBDs for k=2.
	z := algebra.NewZmod(12)
	dz := NewRingDesign(z, []int{0, 1})
	if err := dz.Verify(); err != nil {
		t.Errorf("Z_12: %v", err)
	}
	pr := algebra.ProductRingFor(12)
	gens := algebra.FindGenerators(pr, 2)
	dp := NewRingDesign(pr, gens)
	if err := dp.Verify(); err != nil {
		t.Errorf("product ring: %v", err)
	}
	bz, _, _, _ := dz.Params()
	bp, _, _, _ := dp.Params()
	if bz != bp {
		t.Errorf("b differs: %d vs %d", bz, bp)
	}
}
