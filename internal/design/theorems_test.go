package design

import (
	"testing"

	"repro/internal/algebra"
)

func TestTheorem4Designs(t *testing.T) {
	cases := []struct{ v, k int }{
		{7, 3}, {7, 4}, {8, 3}, {8, 4}, {9, 3}, {9, 5}, {11, 3}, {13, 4},
		{13, 5}, {16, 4}, {16, 6}, {17, 5}, {25, 4}, {27, 3},
	}
	for _, c := range cases {
		d, f, err := Theorem4Design(c.v, c.k)
		if err != nil {
			t.Fatalf("(%d,%d): %v", c.v, c.k, err)
		}
		gcd := algebra.GCD(c.v-1, c.k-1)
		if f%gcd != 0 {
			t.Errorf("(%d,%d): factor %d not multiple of gcd %d", c.v, c.k, f, gcd)
		}
		b, r, lambda, ok := d.Params()
		if !ok {
			t.Fatalf("(%d,%d): reduced design invalid: %v", c.v, c.k, d.Verify())
		}
		wb, wr, wl := Theorem4Params(c.v, c.k)
		// The theorem promises AT MOST these sizes; generic reduction may do
		// better when extra coincidences exist, so b must divide wb.
		if wb%b != 0 || b > wb {
			t.Errorf("(%d,%d): b=%d, theorem promises %d", c.v, c.k, b, wb)
		}
		if b == wb && (r != wr || lambda != wl) {
			t.Errorf("(%d,%d): (r,λ)=(%d,%d), want (%d,%d)", c.v, c.k, r, lambda, wr, wl)
		}
	}
}

func TestTheorem4RejectsNonPrimePower(t *testing.T) {
	if _, _, err := Theorem4Design(6, 3); err == nil {
		t.Error("v=6 accepted")
	}
	if _, _, err := Theorem4Design(12, 3); err == nil {
		t.Error("v=12 accepted")
	}
}

func TestTheorem4GcdOneNoReductionPromised(t *testing.T) {
	// v=8, k=4: gcd(7,3)=1; design may still reduce but must stay a BIBD.
	d, _, err := Theorem4Design(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Verify(); err != nil {
		t.Error(err)
	}
}

func TestTheorem5Designs(t *testing.T) {
	cases := []struct{ v, k int }{
		{7, 3}, {7, 2}, {9, 4}, {9, 2}, {11, 5}, {13, 3}, {13, 4}, {13, 6},
		{16, 3}, {16, 5}, {17, 4}, {25, 6}, {27, 2},
	}
	for _, c := range cases {
		d, f, err := Theorem5Design(c.v, c.k)
		if err != nil {
			t.Fatalf("(%d,%d): %v", c.v, c.k, err)
		}
		gcd := algebra.GCD(c.v-1, c.k)
		if f%gcd != 0 {
			t.Errorf("(%d,%d): factor %d not multiple of gcd %d", c.v, c.k, f, gcd)
		}
		b, _, _, ok := d.Params()
		if !ok {
			t.Fatalf("(%d,%d): reduced design invalid: %v", c.v, c.k, d.Verify())
		}
		wb, _, _ := Theorem5Params(c.v, c.k)
		if wb%b != 0 || b > wb {
			t.Errorf("(%d,%d): b=%d, theorem promises %d", c.v, c.k, b, wb)
		}
	}
}

func TestTheorem5SmallerThanTheorem1(t *testing.T) {
	// v=13, k=4: gcd(12,4)=4, so Theorem 5 gives a 4x smaller design than
	// the raw v(v-1) of Theorem 1.
	d, _, err := Theorem5Design(13, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.B() > 13*12/4 {
		t.Errorf("b = %d, want <= %d", d.B(), 13*12/4)
	}
}

func TestSubfieldDesignTheorem6(t *testing.T) {
	cases := []struct{ v, k int }{
		{4, 2}, {8, 2}, {16, 2}, {16, 4}, {9, 3}, {27, 3}, {81, 3}, {81, 9}, {25, 5}, {64, 8}, {64, 4},
	}
	for _, c := range cases {
		d, f, err := SubfieldDesign(c.v, c.k)
		if err != nil {
			t.Fatalf("(%d,%d): %v", c.v, c.k, err)
		}
		if f%(c.k*(c.k-1)) != 0 {
			t.Errorf("(%d,%d): factor %d not multiple of k(k-1)=%d", c.v, c.k, f, c.k*(c.k-1))
		}
		b, r, lambda, ok := d.Params()
		if !ok {
			t.Fatalf("(%d,%d): invalid: %v", c.v, c.k, d.Verify())
		}
		wb, wr, wl := SubfieldParams(c.v, c.k)
		if b != wb || r != wr || lambda != wl {
			t.Errorf("(%d,%d): params (%d,%d,%d), want (%d,%d,%d)", c.v, c.k, b, r, lambda, wb, wr, wl)
		}
	}
}

func TestSubfieldDesignOptimallySmall(t *testing.T) {
	// Theorem 6 + Theorem 7: when v is a power of k, b achieves MinB.
	for _, c := range []struct{ v, k int }{{16, 4}, {27, 3}, {25, 5}, {64, 8}} {
		d, _, err := SubfieldDesign(c.v, c.k)
		if err != nil {
			t.Fatal(err)
		}
		if d.B() != MinB(c.v, c.k) {
			t.Errorf("(%d,%d): b=%d, lower bound %d", c.v, c.k, d.B(), MinB(c.v, c.k))
		}
	}
}

func TestSubfieldDesignRejectsBadParams(t *testing.T) {
	if _, _, err := SubfieldDesign(16, 3); err == nil {
		t.Error("16 is not a power of 3")
	}
	if _, _, err := SubfieldDesign(12, 2); err == nil {
		t.Error("12 is not a power of 2 (as prime power chain 2^e)")
	}
	if _, _, err := SubfieldDesign(36, 6); err == nil {
		t.Error("k=6 is not a prime power")
	}
}

func TestSubfieldDesignLambdaOne(t *testing.T) {
	// λ = 1 means every pair of disks shares exactly one stripe: the
	// resolvable structure the paper calls "previously unknown" designs.
	d, _, err := SubfieldDesign(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	_, _, lambda, ok := d.Params()
	if !ok || lambda != 1 {
		t.Errorf("λ = %d, want 1", lambda)
	}
	if d.B() != 72 {
		t.Errorf("b = %d, want 72", d.B())
	}
}

func TestTheoremDesignsAgainstLowerBound(t *testing.T) {
	// No construction may beat the Theorem 7 bound.
	for _, c := range []struct{ v, k int }{{8, 3}, {9, 3}, {13, 4}, {16, 4}, {25, 5}} {
		for name, build := range map[string]func(v, k int) (*Design, int, error){
			"thm4": Theorem4Design, "thm5": Theorem5Design,
		} {
			d, _, err := build(c.v, c.k)
			if err != nil {
				continue
			}
			if d.B() < MinB(c.v, c.k) {
				t.Errorf("%s(%d,%d): b=%d below lower bound %d", name, c.v, c.k, d.B(), MinB(c.v, c.k))
			}
		}
	}
}
