// Package design implements balanced incomplete block designs (BIBDs) and
// the paper's constructions of them: ring-based block designs (Theorem 1),
// the reachability characterization k <= M(v) (Theorem 2), redundancy
// reduction (Section 2.2, Theorems 4 and 5), subfield designs with λ = 1
// (Theorem 6), the size lower bound (Theorem 7), complete designs, and a
// verified catalog of known small BIBDs for values of v the algebraic
// constructions cannot reach.
package design

import (
	"fmt"
	"sort"
)

// Design is a block design: a collection of k-element tuples (blocks) over
// the element set {0, ..., V-1}. A Design is not necessarily balanced;
// Verify checks the BIBD conditions and Params reports (b, r, λ).
//
// Tuple element order is significant for layout constructions (the i-th
// position is the g_i-th element of a ring-based tuple); balance checks
// ignore order.
type Design struct {
	V      int
	K      int
	Tuples [][]int
}

// B returns the number of tuples.
func (d *Design) B() int { return len(d.Tuples) }

// Clone returns a deep copy.
func (d *Design) Clone() *Design {
	t := make([][]int, len(d.Tuples))
	for i, tuple := range d.Tuples {
		t[i] = append([]int(nil), tuple...)
	}
	return &Design{V: d.V, K: d.K, Tuples: t}
}

// Params verifies the BIBD conditions and returns the design parameters
// (b, r, λ). ok is false if the design is not a BIBD (not every element in
// the same number of tuples, or not every pair in the same number).
func (d *Design) Params() (b, r, lambda int, ok bool) {
	if err := d.Verify(); err != nil {
		return 0, 0, 0, false
	}
	b = len(d.Tuples)
	r = b * d.K / d.V
	if d.V > 1 {
		lambda = r * (d.K - 1) / (d.V - 1)
	}
	return b, r, lambda, true
}

// Verify checks that d is a BIBD: every tuple has exactly K distinct
// elements in range, every element occurs in the same number r of tuples,
// and every unordered pair occurs in the same number λ of tuples. It
// returns a descriptive error for the first violation.
func (d *Design) Verify() error {
	if d.V < 2 {
		return fmt.Errorf("design: v = %d < 2", d.V)
	}
	if d.K < 1 || d.K > d.V {
		return fmt.Errorf("design: k = %d outside [1, %d]", d.K, d.V)
	}
	if len(d.Tuples) == 0 {
		return fmt.Errorf("design: no tuples")
	}
	rCount := make([]int, d.V)
	pairCount := make([]int, d.V*d.V)
	for ti, tuple := range d.Tuples {
		if len(tuple) != d.K {
			return fmt.Errorf("design: tuple %d has %d elements, want %d", ti, len(tuple), d.K)
		}
		for i, x := range tuple {
			if x < 0 || x >= d.V {
				return fmt.Errorf("design: tuple %d element %d out of range", ti, x)
			}
			rCount[x]++
			for j := i + 1; j < len(tuple); j++ {
				y := tuple[j]
				if y == x {
					return fmt.Errorf("design: tuple %d has duplicate element %d", ti, x)
				}
				lo, hi := x, y
				if lo > hi {
					lo, hi = hi, lo
				}
				pairCount[lo*d.V+hi]++
			}
		}
	}
	for x := 1; x < d.V; x++ {
		if rCount[x] != rCount[0] {
			return fmt.Errorf("design: element %d occurs %d times, element 0 occurs %d (not balanced in r)", x, rCount[x], rCount[0])
		}
	}
	if d.K >= 2 {
		want := pairCount[0*d.V+1]
		for x := 0; x < d.V; x++ {
			for y := x + 1; y < d.V; y++ {
				if pairCount[x*d.V+y] != want {
					return fmt.Errorf("design: pair (%d,%d) occurs %d times, pair (0,1) occurs %d (not balanced in λ)", x, y, pairCount[x*d.V+y], want)
				}
			}
		}
	}
	return nil
}

// ReplicationCount returns r, the number of tuples containing each element,
// assuming (not checking) the design is balanced.
func (d *Design) ReplicationCount() int {
	if d.V == 0 {
		return 0
	}
	return len(d.Tuples) * d.K / d.V
}

// canonKey returns a canonical string key for the sorted tuple contents.
func canonKey(tuple []int) string {
	s := append([]int(nil), tuple...)
	sort.Ints(s)
	buf := make([]byte, 0, 4*len(s))
	for _, x := range s {
		buf = append(buf, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	}
	return string(buf)
}

// Reduce removes redundancy: if every distinct tuple (as a set) occurs a
// number of times divisible by f = gcd of all multiplicities, the design
// keeps multiplicity/f copies of each. It returns the reduced design and
// the factor f (>= 1). Reducing a BIBD by f divides b, r and λ by f
// (Section 2.2). Tuple element order within kept copies is preserved from
// their first occurrence.
func Reduce(d *Design) (*Design, int) {
	type group struct {
		first int // index of first occurrence
		count int
	}
	groups := map[string]*group{}
	order := []string{}
	for i, tuple := range d.Tuples {
		key := canonKey(tuple)
		if g, ok := groups[key]; ok {
			g.count++
		} else {
			groups[key] = &group{first: i, count: 1}
			order = append(order, key)
		}
	}
	f := 0
	for _, g := range groups {
		f = gcd(f, g.count)
	}
	if f <= 1 {
		return d.Clone(), 1
	}
	out := &Design{V: d.V, K: d.K}
	for _, key := range order {
		g := groups[key]
		for c := 0; c < g.count/f; c++ {
			out.Tuples = append(out.Tuples, append([]int(nil), d.Tuples[g.first]...))
		}
	}
	return out, f
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// MinB returns the Theorem 7 lower bound on the number of tuples of any
// BIBD with parameters v and k: v(v-1)/gcd(v(v-1), k(k-1)).
func MinB(v, k int) int {
	vv := v * (v - 1)
	kk := k * (k - 1)
	if kk == 0 {
		return v // k = 1: need at least v singleton tuples for r >= 1
	}
	return vv / gcd(vv, kk)
}

// Complete returns the complete block design: all C(v, k) k-subsets of
// {0..v-1}. It panics if C(v, k) exceeds maxTuples (complete designs blow
// up combinatorially; the paper notes they are infeasible for large v).
func Complete(v, k int, maxTuples int) *Design {
	if k < 1 || k > v {
		panic(fmt.Sprintf("design: Complete(%d,%d): invalid k", v, k))
	}
	d := &Design{V: v, K: k}
	tuple := make([]int, k)
	var rec func(start, depth int)
	count := 0
	var overflow bool
	rec = func(start, depth int) {
		if overflow {
			return
		}
		if depth == k {
			count++
			if maxTuples > 0 && count > maxTuples {
				overflow = true
				return
			}
			d.Tuples = append(d.Tuples, append([]int(nil), tuple...))
			return
		}
		for x := start; x <= v-(k-depth); x++ {
			tuple[depth] = x
			rec(x+1, depth+1)
		}
	}
	rec(0, 0)
	if overflow {
		panic(fmt.Sprintf("design: Complete(%d,%d): more than %d tuples", v, k, maxTuples))
	}
	return d
}

// Binomial returns C(n, k), saturating panics avoided for the small inputs
// used here.
func Binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	res := 1
	for i := 0; i < k; i++ {
		res = res * (n - i) / (i + 1)
	}
	return res
}
