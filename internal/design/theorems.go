package design

import (
	"fmt"

	"repro/internal/algebra"
)

// Theorem4Design constructs, for a prime power v and any 2 <= k <= v, a
// BIBD with b = v(v-1)/d, r = k(v-1)/d, λ = k(k-1)/d where
// d = gcd(v-1, k-1), by choosing the generators as the cycle {0} plus
// (k-1)/d multiplicative orbits of an element a of order d, then removing
// the guaranteed factor-d redundancy. It returns the reduced design and
// the actual reduction factor achieved (always a multiple of d).
func Theorem4Design(v, k int) (*Design, int, error) {
	f, err := fieldFor(v, k)
	if err != nil {
		return nil, 0, err
	}
	d := algebra.GCD(v-1, k-1)
	a, ok := f.ElementOfOrder(d)
	if !ok {
		return nil, 0, fmt.Errorf("design: Theorem4Design(%d,%d): no element of order %d", v, k, d)
	}
	gens := []int{f.Zero()}
	covered := make([]bool, v)
	covered[f.Zero()] = true
	needCycles := (k - 1) / d
	for w := 1; w < v && needCycles > 0; w++ {
		if covered[w] {
			continue
		}
		// Multiplicative orbit {w, wa, wa^2, ...} of size d.
		x := w
		for j := 0; j < d; j++ {
			if covered[x] {
				return nil, 0, fmt.Errorf("design: Theorem4Design(%d,%d): orbit of %d not disjoint", v, k, w)
			}
			covered[x] = true
			gens = append(gens, x)
			x = f.Mul(x, a)
		}
		if x != w {
			return nil, 0, fmt.Errorf("design: Theorem4Design(%d,%d): orbit of %d has wrong size", v, k, w)
		}
		needCycles--
	}
	if len(gens) != k {
		return nil, 0, fmt.Errorf("design: Theorem4Design(%d,%d): built %d generators", v, k, len(gens))
	}
	rd := NewRingDesign(f, gens)
	reduced, factor := Reduce(&rd.Design)
	if factor%d != 0 {
		return nil, 0, fmt.Errorf("design: Theorem4Design(%d,%d): reduction factor %d not a multiple of %d", v, k, factor, d)
	}
	return reduced, factor, nil
}

// Theorem4Params returns the parameters promised by Theorem 4.
func Theorem4Params(v, k int) (b, r, lambda int) {
	d := algebra.GCD(v-1, k-1)
	return v * (v - 1) / d, k * (v - 1) / d, k * (k - 1) / d
}

// Theorem5Design constructs, for a prime power v and 2 <= k <= v with
// gcd(v-1, k) = d, a BIBD with b = v(v-1)/d, r = k(v-1)/d,
// λ = k(k-1)/d, using the affine orbits of π(x) = z + a(x-z) for an
// element a of multiplicative order d (Theorem 5). The generators are k/d
// orbits including the orbit of 0, with g_0 = 0.
func Theorem5Design(v, k int) (*Design, int, error) {
	f, err := fieldFor(v, k)
	if err != nil {
		return nil, 0, err
	}
	if k > v-1 {
		// The k/d orbits must avoid the fixed point z, leaving only v-1
		// usable elements; k = v is the (degenerate) complete tuple anyway.
		return nil, 0, fmt.Errorf("design: Theorem5Design(%d,%d): construction requires k <= v-1", v, k)
	}
	d := algebra.GCD(v-1, k)
	if k%d != 0 {
		return nil, 0, fmt.Errorf("design: Theorem5Design(%d,%d): gcd %d does not divide k", v, k, d)
	}
	a, ok := f.ElementOfOrder(d)
	if !ok {
		return nil, 0, fmt.Errorf("design: Theorem5Design(%d,%d): no element of order %d", v, k, d)
	}
	z := f.One() // any nonzero element
	// Orbits of π(x) = z + a(x - z); z is a fixed point, all other orbits
	// have size d. Take k/d orbits, starting with the orbit containing 0.
	covered := make([]bool, v)
	covered[z] = true
	orbit := func(w int) ([]int, error) {
		var orb []int
		x := w
		for j := 0; j < d; j++ {
			if covered[x] {
				return nil, fmt.Errorf("orbit of %d not disjoint", w)
			}
			covered[x] = true
			orb = append(orb, x)
			x = f.Add(z, f.Mul(a, algebra.Sub(f, x, z)))
		}
		if x != w {
			return nil, fmt.Errorf("orbit of %d has wrong size", w)
		}
		return orb, nil
	}
	gens, err := orbit(f.Zero())
	if err != nil {
		return nil, 0, fmt.Errorf("design: Theorem5Design(%d,%d): %v", v, k, err)
	}
	needCycles := k/d - 1
	for w := 0; w < v && needCycles > 0; w++ {
		if covered[w] {
			continue
		}
		orb, err := orbit(w)
		if err != nil {
			return nil, 0, fmt.Errorf("design: Theorem5Design(%d,%d): %v", v, k, err)
		}
		gens = append(gens, orb...)
		needCycles--
	}
	if len(gens) != k {
		return nil, 0, fmt.Errorf("design: Theorem5Design(%d,%d): built %d generators", v, k, len(gens))
	}
	rd := NewRingDesign(f, gens)
	reduced, factor := Reduce(&rd.Design)
	if factor%d != 0 {
		return nil, 0, fmt.Errorf("design: Theorem5Design(%d,%d): reduction factor %d not a multiple of %d", v, k, factor, d)
	}
	return reduced, factor, nil
}

// Theorem5Params returns the parameters promised by Theorem 5.
func Theorem5Params(v, k int) (b, r, lambda int) {
	d := algebra.GCD(v-1, k)
	return v * (v - 1) / d, k * (v - 1) / d, k * (k - 1) / d
}

// SubfieldDesign constructs, for a prime power k and v a power of k
// (v = k^e, e >= 2), the optimally small BIBD of Theorem 6 with
// b = v(v-1)/(k(k-1)), r = (v-1)/(k-1), λ = 1, by using the subfield of
// order k as the generator set and removing the k(k-1)-fold redundancy.
func SubfieldDesign(v, k int) (*Design, int, error) {
	if _, _, ok := algebra.IsPrimePower(k); !ok {
		return nil, 0, fmt.Errorf("design: SubfieldDesign(%d,%d): k must be a prime power", v, k)
	}
	e := 0
	for q := 1; q < v; q *= k {
		e++
		if q*k == v {
			goto powerOK
		}
	}
	return nil, 0, fmt.Errorf("design: SubfieldDesign(%d,%d): v must be a power of k", v, k)
powerOK:
	if e < 1 {
		return nil, 0, fmt.Errorf("design: SubfieldDesign(%d,%d): need v > k", v, k)
	}
	f := algebra.NewField(v)
	gens := f.Subfield(k)
	if gens == nil {
		return nil, 0, fmt.Errorf("design: SubfieldDesign(%d,%d): no subfield of order %d in GF(%d)", v, k, k, v)
	}
	rd := NewRingDesign(f, gens)
	reduced, factor := Reduce(&rd.Design)
	if factor%(k*(k-1)) != 0 {
		return nil, 0, fmt.Errorf("design: SubfieldDesign(%d,%d): reduction factor %d not a multiple of %d", v, k, factor, k*(k-1))
	}
	return reduced, factor, nil
}

// SubfieldParams returns the parameters promised by Theorem 6.
func SubfieldParams(v, k int) (b, r, lambda int) {
	return v * (v - 1) / (k * (k - 1)), (v - 1) / (k - 1), 1
}

func fieldFor(v, k int) (*algebra.GF, error) {
	if _, _, ok := algebra.IsPrimePower(v); !ok {
		return nil, fmt.Errorf("design: v = %d is not a prime power", v)
	}
	if k < 2 || k > v {
		return nil, fmt.Errorf("design: k = %d outside [2, v=%d]", k, v)
	}
	return algebra.NewField(v), nil
}
