package design

import "fmt"

// Classical design operations: derived and residual designs. For a
// (v, k, λ) BIBD, fixing a block B:
//
//   - the residual design (blocks B' != B restricted to points outside B)
//     is a (v-k, k-λ', ...) structure; for λ = 1 it is a
//     (v-k, k-1, 1)-ish packing that is itself a BIBD when the original
//     is a projective plane (residual of PG(2,q) is AG(2,q));
//   - the derived design (blocks through a point x, with x removed) has
//     parameters (v-1, k-1, λ-?) and is a BIBD when λ > 1 appropriately.
//
// These widen the catalog: new parameter sets from existing designs.

// Derived returns the derived design at a point: all blocks containing x,
// with x deleted, over the remaining v-1 points (relabeled to 0..v-2).
// For a (v, k, λ) BIBD this is a (v-1, k-1, λ-1)-balanced structure when
// λ >= 2 (each remaining pair occurred λ times with... pairs through x
// occur λ times); callers should Verify the result.
func Derived(d *Design, x int) (*Design, error) {
	if x < 0 || x >= d.V {
		return nil, fmt.Errorf("design: Derived: point %d out of range", x)
	}
	relabel := make([]int, d.V)
	next := 0
	for p := 0; p < d.V; p++ {
		if p == x {
			relabel[p] = -1
			continue
		}
		relabel[p] = next
		next++
	}
	out := &Design{V: d.V - 1, K: d.K - 1}
	for _, tuple := range d.Tuples {
		has := false
		for _, p := range tuple {
			if p == x {
				has = true
				break
			}
		}
		if !has {
			continue
		}
		nt := make([]int, 0, d.K-1)
		for _, p := range tuple {
			if p != x {
				nt = append(nt, relabel[p])
			}
		}
		out.Tuples = append(out.Tuples, nt)
	}
	if len(out.Tuples) == 0 {
		return nil, fmt.Errorf("design: Derived: no blocks through point %d", x)
	}
	return out, nil
}

// BlockDerived returns the classical derived design with respect to block
// bi: the points of that block, with every other block intersected with
// it. For a symmetric (v, k, λ) design every other block meets bi in
// exactly λ points, giving a (k, λ, λ-1) BIBD. It fails when the
// intersections are non-uniform.
func BlockDerived(d *Design, bi int) (*Design, error) {
	if bi < 0 || bi >= len(d.Tuples) {
		return nil, fmt.Errorf("design: BlockDerived: block %d out of range", bi)
	}
	inBlock := make([]bool, d.V)
	relabel := make([]int, d.V)
	for i := range relabel {
		relabel[i] = -1
	}
	for i, p := range d.Tuples[bi] {
		inBlock[p] = true
		relabel[p] = i
	}
	out := &Design{V: d.K}
	for ti, tuple := range d.Tuples {
		if ti == bi {
			continue
		}
		var nt []int
		for _, p := range tuple {
			if inBlock[p] {
				nt = append(nt, relabel[p])
			}
		}
		if len(nt) == 0 {
			return nil, fmt.Errorf("design: BlockDerived: block %d disjoint from block %d", ti, bi)
		}
		out.Tuples = append(out.Tuples, nt)
	}
	k := len(out.Tuples[0])
	for _, t := range out.Tuples {
		if len(t) != k {
			return nil, fmt.Errorf("design: BlockDerived: non-uniform intersections (design not symmetric)")
		}
	}
	out.K = k
	return out, nil
}

// Residual returns the residual design with respect to block bi: every
// other block restricted to the points outside block bi, over the v-k
// remaining points (relabeled). For a symmetric (v, k, λ) design the
// residual is a (v-k, k-λ, λ) BIBD; in general callers should Verify.
func Residual(d *Design, bi int) (*Design, error) {
	if bi < 0 || bi >= len(d.Tuples) {
		return nil, fmt.Errorf("design: Residual: block %d out of range", bi)
	}
	inBlock := make([]bool, d.V)
	for _, p := range d.Tuples[bi] {
		inBlock[p] = true
	}
	relabel := make([]int, d.V)
	next := 0
	for p := 0; p < d.V; p++ {
		if inBlock[p] {
			relabel[p] = -1
			continue
		}
		relabel[p] = next
		next++
	}
	out := &Design{V: d.V - d.K}
	for ti, tuple := range d.Tuples {
		if ti == bi {
			continue
		}
		nt := make([]int, 0, d.K)
		for _, p := range tuple {
			if !inBlock[p] {
				nt = append(nt, relabel[p])
			}
		}
		out.Tuples = append(out.Tuples, nt)
	}
	if len(out.Tuples) == 0 {
		return nil, fmt.Errorf("design: Residual: empty result")
	}
	// Residual blocks may have unequal sizes in general; the design K is
	// meaningful only when they are uniform.
	k := len(out.Tuples[0])
	uniform := true
	for _, t := range out.Tuples {
		if len(t) != k {
			uniform = false
			break
		}
	}
	if !uniform {
		return nil, fmt.Errorf("design: Residual: non-uniform block sizes (design is not quasi-residual-friendly)")
	}
	out.K = k
	return out, nil
}
