package design

// Resolvability: a design is resolvable if its blocks partition into
// parallel classes, each class covering every point exactly once.
// Resolvable layouts matter for full-stripe-write scheduling (all stripes
// of a class can be written with maximal parallelism), which connects to
// Condition 6. AG(2,q) and Kirkman triple systems are resolvable; the
// Fano plane is not (7 is not divisible by 3).

// Resolve attempts to partition the design's blocks into parallel
// classes by backtracking exact cover, bounded by maxNodes search nodes.
// It returns the classes (each a list of block indices) and true on
// success, or nil and false if the design is not resolvable or the search
// budget runs out.
func Resolve(d *Design, maxNodes int) ([][]int, bool) {
	if d.K < 1 || d.V%d.K != 0 {
		return nil, false
	}
	perClass := d.V / d.K
	b := len(d.Tuples)
	if b%perClass != 0 {
		return nil, false
	}
	numClasses := b / perClass
	// blocksByPoint[x] = blocks containing point x.
	blocksByPoint := make([][]int, d.V)
	for bi, tuple := range d.Tuples {
		for _, x := range tuple {
			blocksByPoint[x] = append(blocksByPoint[x], bi)
		}
	}
	used := make([]bool, b)
	covered := make([]bool, d.V)
	var classes [][]int
	var current []int
	nodes := 0

	var coverClass func() bool
	var nextClass func() bool

	coverClass = func() bool {
		nodes++
		if nodes > maxNodes {
			return false
		}
		// Find lowest uncovered point.
		x := -1
		for p := 0; p < d.V; p++ {
			if !covered[p] {
				x = p
				break
			}
		}
		if x == -1 {
			// Class complete.
			classes = append(classes, append([]int(nil), current...))
			saved := current
			current = nil
			if nextClass() {
				return true
			}
			current = saved
			classes = classes[:len(classes)-1]
			return false
		}
		for _, bi := range blocksByPoint[x] {
			if used[bi] {
				continue
			}
			ok := true
			for _, p := range d.Tuples[bi] {
				if covered[p] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			used[bi] = true
			for _, p := range d.Tuples[bi] {
				covered[p] = true
			}
			current = append(current, bi)
			if coverClass() {
				return true
			}
			current = current[:len(current)-1]
			for _, p := range d.Tuples[bi] {
				covered[p] = false
			}
			used[bi] = false
		}
		return false
	}

	nextClass = func() bool {
		if len(classes) == numClasses {
			return true
		}
		for p := range covered {
			covered[p] = false
		}
		return coverClass()
	}

	if !nextClass() {
		return nil, false
	}
	return classes, true
}

// IsResolutionValid checks that classes form a resolution of d: every
// block used exactly once and every class partitions the point set.
func IsResolutionValid(d *Design, classes [][]int) bool {
	usedBlocks := make([]bool, len(d.Tuples))
	total := 0
	for _, class := range classes {
		covered := make([]bool, d.V)
		count := 0
		for _, bi := range class {
			if bi < 0 || bi >= len(d.Tuples) || usedBlocks[bi] {
				return false
			}
			usedBlocks[bi] = true
			total++
			for _, p := range d.Tuples[bi] {
				if covered[p] {
					return false
				}
				covered[p] = true
				count++
			}
		}
		if count != d.V {
			return false
		}
	}
	return total == len(d.Tuples)
}
