package design

import (
	"fmt"

	"repro/internal/algebra"
)

// QuadraticResidueDesign returns the Paley difference-set design for a
// prime p ≡ 3 (mod 4): the quadratic residues mod p form a
// (p, (p-1)/2, (p-3)/4) difference set, whose development is a symmetric
// BIBD. These are the classic Hadamard designs — e.g. p=7 gives the
// complement-Fano (7,3,1); p=11 the (11,5,2) biplane.
func QuadraticResidueDesign(p int) (*Design, error) {
	if !algebra.IsPrime(p) || p%4 != 3 {
		return nil, fmt.Errorf("design: QuadraticResidueDesign(%d): need a prime p ≡ 3 (mod 4)", p)
	}
	isQR := make([]bool, p)
	for x := 1; x < p; x++ {
		isQR[x*x%p] = true
	}
	ds := make([]int, 0, (p-1)/2)
	for x := 1; x < p; x++ {
		if isQR[x] {
			ds = append(ds, x)
		}
	}
	d := FromDifferenceSet(p, ds)
	if err := d.Verify(); err != nil {
		return nil, fmt.Errorf("design: QuadraticResidueDesign(%d): %w", p, err)
	}
	return d, nil
}
