package repro

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/design"
	"repro/internal/disksim"
	"repro/internal/experiments"
	"repro/internal/flow"
	"repro/internal/workload"
	"repro/pdl"
	"repro/pdl/layout"
)

// One benchmark per experiment id in DESIGN.md's per-experiment index.
// Each regenerates the corresponding figure/table; `go test -bench .`
// therefore re-runs the paper's whole evaluation.

func benchExperiment(b *testing.B, run func(bool) (*experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := run(true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1ParityStripe(b *testing.B)  { benchExperiment(b, experiments.F1ParityStripe) }
func BenchmarkFig2Declustered(b *testing.B)   { benchExperiment(b, experiments.F2DeclusteredLayout) }
func BenchmarkFig3BIBDLayout(b *testing.B)    { benchExperiment(b, experiments.F3BIBDLayout) }
func BenchmarkFig4Stairway(b *testing.B)      { benchExperiment(b, experiments.F4StairwayPlusOne) }
func BenchmarkFig5StairwayDiv(b *testing.B)   { benchExperiment(b, experiments.F5StairwayDivides) }
func BenchmarkFig6StairwayMixed(b *testing.B) { benchExperiment(b, experiments.F6StairwayMixed) }
func BenchmarkFig7ParityFlow(b *testing.B)    { benchExperiment(b, experiments.F7ParityAssignmentGraph) }
func BenchmarkT1RingDesigns(b *testing.B)     { benchExperiment(b, experiments.T1RingDesignParams) }
func BenchmarkT2Reductions(b *testing.B)      { benchExperiment(b, experiments.T2ReducedDesigns) }
func BenchmarkT3Removal(b *testing.B)         { benchExperiment(b, experiments.T3DiskRemoval) }
func BenchmarkT4Stairway(b *testing.B)        { benchExperiment(b, experiments.T4StairwaySweep) }
func BenchmarkT5Coverage(b *testing.B)        { benchExperiment(b, experiments.T5Coverage) }
func BenchmarkT6FlowBalance(b *testing.B)     { benchExperiment(b, experiments.T6FlowBalance) }
func BenchmarkT7Feasibility(b *testing.B)     { benchExperiment(b, experiments.T7Feasibility) }
func BenchmarkS1Reconstruction(b *testing.B)  { benchExperiment(b, experiments.S1Reconstruction) }
func BenchmarkS2ApproxVsExact(b *testing.B)   { benchExperiment(b, experiments.S2ApproxVsExact) }
func BenchmarkE1Extendibility(b *testing.B)   { benchExperiment(b, experiments.E1Extendibility) }
func BenchmarkE2RandomVsBIBD(b *testing.B)    { benchExperiment(b, experiments.E2RandomVsBIBD) }
func BenchmarkE3Conditions56(b *testing.B)    { benchExperiment(b, experiments.E3Conditions56) }
func BenchmarkE4Sparing(b *testing.B)         { benchExperiment(b, experiments.E4DistributedSparing) }
func BenchmarkE5Reliability(b *testing.B)     { benchExperiment(b, experiments.E5Reliability) }

// Ablation benches for the design choices DESIGN.md calls out.

// BenchmarkAblationFieldMulTables measures table-driven GF multiplication.
func BenchmarkAblationFieldMulTables(b *testing.B) {
	f := algebra.NewField(256)
	b.ResetTimer()
	acc := 1
	for i := 0; i < b.N; i++ {
		acc = f.Mul(acc, 3)
		if acc == 0 {
			acc = 1
		}
	}
	_ = acc
}

// BenchmarkAblationFieldMulPolynomial measures the explicit polynomial
// multiplication the tables replace.
func BenchmarkAblationFieldMulPolynomial(b *testing.B) {
	f := algebra.NewField(256)
	b.ResetTimer()
	acc := 1
	for i := 0; i < b.N; i++ {
		acc = f.MulNoTable(acc, 3)
		if acc == 0 {
			acc = 1
		}
	}
	_ = acc
}

// parityAssignmentNetwork builds the Figure 7 network for a (v,k) design.
func parityAssignmentNetwork(b *testing.B, v, k int, algo flow.Algorithm) {
	b.Helper()
	rd, err := design.NewRingDesignForVK(v, k)
	if err != nil {
		b.Fatal(err)
	}
	l, err := core.FromDesignSingle(&rd.Design)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := flow.NewNetwork()
		source := n.AddNode()
		sink := n.AddNode()
		stripes := n.AddNodes(len(l.Stripes))
		disks := n.AddNodes(l.V)
		for si := range l.Stripes {
			n.AddEdge(source, stripes+si, 0, 1)
			for _, u := range l.Stripes[si].Units {
				n.AddEdge(stripes+si, disks+u.Disk, 0, 1)
			}
		}
		for d := 0; d < l.V; d++ {
			n.AddEdge(disks+d, sink, 0, len(l.Stripes)/l.V+1)
		}
		if got := n.MaxFlow(source, sink, algo); got != len(l.Stripes) {
			b.Fatalf("flow %d, want %d", got, len(l.Stripes))
		}
	}
}

// BenchmarkAblationMaxflowDinic and ...EdmondsKarp compare the two solvers
// on the parity assignment graph of a (25,5) ring design (600 stripes).
func BenchmarkAblationMaxflowDinic(b *testing.B) {
	parityAssignmentNetwork(b, 25, 5, flow.Dinic)
}

func BenchmarkAblationMaxflowEdmondsKarp(b *testing.B) {
	parityAssignmentNetwork(b, 25, 5, flow.EdmondsKarp)
}

// BenchmarkAblationReduceRedundancy measures the generic tuple-multiset
// reduction on a Theorem 4 construction.
func BenchmarkAblationReduceRedundancy(b *testing.B) {
	f := algebra.NewField(64)
	gens := algebra.FindGenerators(f, 8)
	rd := design.NewRingDesign(f, gens)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, factor := design.Reduce(&rd.Design); factor < 1 {
			b.Fatal("bad factor")
		}
	}
}

// Construction benches: the operations a storage controller would run at
// configuration time.

func BenchmarkRingLayoutConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.NewRingLayout(64, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStairwayConstruction(b *testing.B) {
	rl, err := core.NewRingLayout(61, 6)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Stairway(rl, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBalanceParity(b *testing.B) {
	rd, err := design.NewRingDesignForVK(32, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		l, err := core.FromDesignSingle(&rd.Design)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := core.BalanceParity(l); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSeekModel vs ...ConstantModel: the disk service-time
// ablation (seek-aware adds head tracking and distance costs).
func benchServeWorkload(b *testing.B, cfg disksim.Config) {
	b.Helper()
	rl, err := core.NewRingLayout(17, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a, err := disksim.New(rl.Layout, cfg)
		if err != nil {
			b.Fatal(err)
		}
		gen := workload.NewUniform(a.Mapping.DataUnits(), 0.3, uint64(i+1))
		b.StartTimer()
		if _, err := a.ServeWorkload(gen, 2000, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationConstantModel(b *testing.B) {
	benchServeWorkload(b, disksim.Config{ServiceTime: 1})
}

func BenchmarkAblationSeekModel(b *testing.B) {
	benchServeWorkload(b, disksim.Config{ServiceTime: 1, Seek: &disksim.SeekParams{Base: 2, PerUnit: 0.1}})
}

// BenchmarkMappingLookup measures the Condition 4 address translation.
func BenchmarkMappingLookup(b *testing.B) {
	rl, err := core.NewRingLayout(17, 4)
	if err != nil {
		b.Fatal(err)
	}
	m, err := layout.NewMapping(rl.Layout)
	if err != nil {
		b.Fatal(err)
	}
	diskUnits := rl.Size * 16
	n := m.DataUnits() * 16
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Map(i%n, diskUnits); err != nil {
			b.Fatal(err)
		}
	}
}

// Facade-level Mapper benchmarks: the construction and lookup costs a
// serving layer sits on. Run with `go test -bench Mapper`.

// BenchmarkMapperBuild measures facade construction: pdl.Build plus the
// Mapper table precomputation for a 64-disk array.
func BenchmarkMapperBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := pdl.Build(64, 8)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := res.NewMapper(res.Layout.Size); err != nil {
			b.Fatal(err)
		}
	}
}

func mapperForBench(b *testing.B, copies int) pdl.Mapper {
	b.Helper()
	res, err := pdl.Build(17, 4)
	if err != nil {
		b.Fatal(err)
	}
	m, err := res.NewMapper(res.Layout.Size * copies)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkMapperLookup measures the O(1) logical -> physical hot path.
func BenchmarkMapperLookup(b *testing.B) {
	m := mapperForBench(b, 16)
	n := m.DataUnits()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Map(i % n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMapperReverseLookup measures physical -> logical translation.
func BenchmarkMapperReverseLookup(b *testing.B) {
	m := mapperForBench(b, 16)
	n := m.DataUnits()
	units := make([]layout.Unit, n)
	for i := range units {
		u, err := m.Map(i)
		if err != nil {
			b.Fatal(err)
		}
		units[i] = u
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := m.Logical(units[i%n]); !ok {
			b.Fatal("reverse lookup failed")
		}
	}
}

// BenchmarkMapperDegradedLookup measures address resolution while a disk
// is down, on the worst case only: every lookup hits the failed disk and
// resolves the surviving stripe units (healthy hits take the cheap early
// return measured by BenchmarkMapperLookup).
func BenchmarkMapperDegradedLookup(b *testing.B) {
	m := mapperForBench(b, 16)
	var lost []int
	for i := 0; i < m.DataUnits(); i++ {
		u, err := m.Map(i)
		if err != nil {
			b.Fatal(err)
		}
		if u.Disk == 0 {
			lost = append(lost, i)
		}
	}
	if len(lost) == 0 {
		b.Fatal("no logical units on disk 0")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dr, err := m.DegradedMap(lost[i%len(lost)], 0)
		if err != nil {
			b.Fatal(err)
		}
		if !dr.Degraded {
			b.Fatal("expected degraded resolution")
		}
	}
}
