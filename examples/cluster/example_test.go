package main

// Example pins the walkthrough's printed output: stripe one namespace
// over three declustered arrays, fail one shard's disk, keep serving,
// rebuild online, verify — all asserted by `go test`.
func Example() {
	main()
	// Output:
	// cluster: 3 shards, 192 units of 128 B (24576 B namespace)
	// placement: 32 + 64 + 96 units (capacity-weighted)
	// wrote 24576 B across 3 shards
	// read back: "one namespace, many declustered arrays"
	// shard 1 disk 4 failed; degraded read: "one namespace, many declustered arrays"
	// shard states: [healthy degraded healthy]
	// shard 1 rebuilt online; shard states: [healthy healthy healthy]
	// namespace sweep matches: true
	// parity verified on all 3 shards
}
