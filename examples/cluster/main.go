// Cluster: one byte namespace striped across several pdlserve arrays —
// the paper's declustering idea applied one level up, where each shard
// is its own parity-protected failure domain. Three in-process shards
// come up behind real TCP servers; a cluster.Manifest places
// capacity-weighted shard-units over them; the cluster client splits
// spans by shard and fans them out concurrently. One shard loses a disk
// and the namespace keeps serving — only that shard pays the degraded
// cost — then rebuilds online, and a final sweep proves the bytes.
package main

import (
	"bytes"
	"fmt"
	"log"
	"net"

	"repro/pdl"
	"repro/pdl/cluster"
	"repro/pdl/serve"
	"repro/pdl/store"
)

func main() {
	// Three shards: each a parity-declustered MemDisk array behind a
	// batching frontend and a TCP server on a loopback port.
	const (
		shards    = 3
		storeUnit = 64  // array stripe unit
		unitBytes = 128 // cluster shard-unit: 2 array units
	)
	man := &cluster.Manifest{
		Version:   cluster.FormatVersion,
		UnitBytes: unitBytes,
		Policy:    cluster.ByCapacity,
	}
	stores := make([]*store.Store, shards)
	for i := 0; i < shards; i++ {
		res, err := pdl.Build(13, 4)
		if err != nil {
			log.Fatal(err)
		}
		s, err := store.Open(res, res.Layout.Size, storeUnit, nil)
		if err != nil {
			log.Fatal(err)
		}
		defer s.Close()
		stores[i] = s
		front := serve.New(s, serve.Config{QueueDepth: 32})
		defer front.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		srv := serve.NewServer(front)
		go srv.Serve(ln)
		defer srv.Close()
		// Give the shards unequal capacities so placement is weighted:
		// 1x, 2x, 3x of the base.
		units := int64(i+1) * 32
		man.Shards = append(man.Shards, cluster.ShardInfo{
			Addr:  ln.Addr().String(),
			Units: units,
			State: cluster.ShardHealthy,
		})
	}

	// Open validates the manifest against each live shard's geometry and
	// connects; the shard map places shard-units proportionally (1:2:3).
	c, err := cluster.Open(man, cluster.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	m := c.Map()
	fmt.Printf("cluster: %d shards, %d units of %d B (%d B namespace)\n",
		m.Shards(), m.Units(), m.UnitBytes(), m.Size())
	fmt.Printf("placement: %d + %d + %d units (capacity-weighted)\n",
		m.ShardUnits(0), m.ShardUnits(1), m.ShardUnits(2))

	// Fill the namespace through the client: every span splits by shard
	// and lands as one contiguous read/write per shard, concurrently.
	mirror := make([]byte, m.Size())
	for i := range mirror {
		mirror[i] = byte(i*13 + 5)
	}
	msg := []byte("one namespace, many declustered arrays")
	copy(mirror[100:], msg) // deliberately unaligned: crosses shard-units
	if _, err := c.WriteAt(mirror, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d B across %d shards\n", len(mirror), m.Shards())

	got := make([]byte, len(msg))
	if _, err := c.ReadAt(got, 100); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back: %q\n", got)

	// Shard 1 loses a disk. The cluster keeps serving every byte: shard
	// 1 reconstructs its units from survivor XOR; shards 0 and 2 are
	// separate failure domains and don't even notice.
	if err := stores[1].Fail(4); err != nil {
		log.Fatal(err)
	}
	if _, err := c.ReadAt(got, 100); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shard 1 disk 4 failed; degraded read: %q\n", got)
	states := func() (out []string) {
		for _, st := range c.Stats() {
			out = append(out, string(st.State))
		}
		return
	}
	fmt.Printf("shard states: %v\n", states())

	// Online rebuild on the failed shard, then a full byte-exact sweep.
	if err := stores[1].Rebuild(store.NewMemDisk(int64(stores[1].Mapper().DiskUnits()) * storeUnit)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shard 1 rebuilt online; shard states: %v\n", states())
	sweep := make([]byte, m.Size())
	if _, err := c.ReadAt(sweep, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("namespace sweep matches: %v\n", bytes.Equal(sweep, mirror))
	for i, s := range stores {
		if err := s.VerifyParity(); err != nil {
			log.Fatalf("shard %d: %v", i, err)
		}
	}
	fmt.Printf("parity verified on all %d shards\n", shards)
}
