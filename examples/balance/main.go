// Balance: the Section 4 scenario. A BIBD gives you stripes but not parity
// placement. The Holland-Gibson construction replicates the design k times
// to balance parity; the paper's network-flow method balances a SINGLE
// copy optimally (parity counts differ by at most one), and lcm(b,v)/b
// copies achieve perfection — the proven Holland-Gibson conjecture.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/design"
	"repro/internal/layout"
)

func main() {
	// AG(2,3): 12 stripes of size 3 over 9 disks; 12 is not a multiple of 9.
	d := design.Known(9, 3)
	if d == nil {
		log.Fatal("no design for (9,3)")
	}
	b, r, lambda, _ := d.Params()
	fmt.Printf("design: (v=9, k=3) BIBD with b=%d, r=%d, λ=%d\n\n", b, r, lambda)

	hg, err := layout.FromDesignHG(d)
	if err != nil {
		log.Fatal(err)
	}
	single, err := layout.FromDesignSingle(d)
	if err != nil {
		log.Fatal(err)
	}
	if err := core.BalanceParity(single); err != nil {
		log.Fatal(err)
	}
	perfect, copies, err := core.PerfectlyBalancedFromDesign(d)
	if err != nil {
		log.Fatal(err)
	}

	show := func(name string, l *layout.Layout) {
		omin, omax := l.ParityOverheadRange()
		fmt.Printf("%-28s size %3d  parity/disk %v  overhead [%v, %v]  spread %d\n",
			name, l.Size, l.ParityCounts(), omin, omax, l.ParitySpread())
	}
	show("Holland-Gibson (k copies)", hg)
	show("flow-balanced (1 copy)", single)
	show(fmt.Sprintf("lcm copies (%d)", copies), perfect)

	fmt.Printf("\nthe single-copy layout is %dx smaller than Holland-Gibson with spread <= 1 (Corollary 16)\n", hg.Size/single.Size)
	fmt.Printf("perfect balance needs exactly lcm(b,v)/b = %d copies (Corollary 17)\n", copies)

	// Generalization: distinguished units (e.g. parity + distributed spare).
	cs := make([]int, len(single.Stripes))
	for i := range cs {
		cs[i] = 2
	}
	chosen, err := core.SelectDistinguished(single, cs)
	if err != nil {
		log.Fatal(err)
	}
	counts := make([]int, single.V)
	for si, units := range chosen {
		for _, ui := range units {
			counts[single.Stripes[si].Units[ui].Disk]++
		}
	}
	fmt.Printf("\ndistributed sparing (2 distinguished units/stripe): per-disk counts %v\n", counts)
}
