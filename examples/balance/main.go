// Balance: the Section 4 scenario. A BIBD gives you stripes but not parity
// placement. The Holland-Gibson construction replicates the design k times
// to balance parity; the paper's network-flow method balances a SINGLE
// copy optimally (parity counts differ by at most one), and lcm(b,v)/b
// copies achieve perfection — the proven Holland-Gibson conjecture.
package main

import (
	"fmt"
	"log"

	"repro/pdl"
	"repro/pdl/design"
	"repro/pdl/layout"
)

func main() {
	// AG(2,3): 12 stripes of size 3 over 9 disks; 12 is not a multiple of 9.
	d := design.Known(9, 3)
	if d == nil {
		log.Fatal("no design for (9,3)")
	}
	b, r, lambda, _ := d.Params()
	fmt.Printf("design: (v=9, k=3) BIBD with b=%d, r=%d, λ=%d\n\n", b, r, lambda)

	hg, err := pdl.Build(9, 3, pdl.WithMethod("holland-gibson"))
	if err != nil {
		log.Fatal(err)
	}
	single, err := pdl.Build(9, 3, pdl.WithMethod("balanced-bibd"))
	if err != nil {
		log.Fatal(err)
	}
	perfect, err := pdl.Build(9, 3, pdl.WithMethod("balanced-bibd"), pdl.WithParityPolicy(pdl.ParityPerfect))
	if err != nil {
		log.Fatal(err)
	}

	show := func(name string, l *layout.Layout) {
		omin, omax := l.ParityOverheadRange()
		fmt.Printf("%-28s size %3d  parity/disk %v  overhead [%v, %v]  spread %d\n",
			name, l.Size, l.ParityCounts(), omin, omax, l.ParitySpread())
	}
	show("Holland-Gibson (k copies)", hg.Layout)
	show("flow-balanced (1 copy)", single.Layout)
	show(fmt.Sprintf("lcm copies (%d)", perfect.Copies), perfect.Layout)

	fmt.Printf("\nthe single-copy layout is %dx smaller than Holland-Gibson with spread <= 1 (Corollary 16)\n", hg.Layout.Size/single.Layout.Size)
	fmt.Printf("perfect balance needs exactly lcm(b,v)/b = %d copies (Corollary 17)\n", perfect.Copies)

	// Generalization: distinguished units (e.g. parity + distributed spare).
	sl := single.Layout
	cs := make([]int, len(sl.Stripes))
	for i := range cs {
		cs[i] = 2
	}
	chosen, err := pdl.SelectDistinguished(sl, cs)
	if err != nil {
		log.Fatal(err)
	}
	counts := make([]int, sl.V)
	for si, units := range chosen {
		for _, ui := range units {
			counts[sl.Stripes[si].Units[ui].Disk]++
		}
	}
	fmt.Printf("\ndistributed sparing (2 distinguished units/stripe): per-disk counts %v\n", counts)
}
