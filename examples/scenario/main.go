// Scenario: the fault-injection harness end to end. A seeded Zipf burst
// runs through a serve frontend with a trace recorder attached, so the
// request stream itself becomes an artifact. Then a scripted scenario —
// healthy, degraded, rebuild — runs against a three-shard cluster in
// verify mode: the engine fails one shard's disk mid-traffic over the
// admin wire, rebuilds it online, carves a latency window per phase,
// and judges the run against declared SLOs. Finally the recorded trace
// replays against the recovered cluster, and every shard's parity is
// verified.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net"

	"repro/pdl"
	"repro/pdl/cluster"
	"repro/pdl/scenario"
	"repro/pdl/serve"
	"repro/pdl/sim"
	"repro/pdl/store"
)

func main() {
	const unitSize = 64

	// Record: a trace writer hooks the frontend's submission path, so
	// what lands in the buffer is the admitted request stream — kinds,
	// classes, addresses, inter-arrival gaps — in the versioned binary
	// trace format.
	res, err := pdl.Build(13, 4)
	if err != nil {
		log.Fatal(err)
	}
	src, err := store.Open(res, res.Layout.Size, unitSize, nil)
	if err != nil {
		log.Fatal(err)
	}
	front := serve.New(src, serve.Config{FlushDelay: -1})
	var rec bytes.Buffer
	tw, err := sim.NewTraceWriter(&rec, unitSize)
	if err != nil {
		log.Fatal(err)
	}
	front.RecordTrace(tw)
	gen := sim.NewZipf(src.Capacity(), 0.9, 0.3, 41)
	ctx := context.Background()
	buf := make([]byte, unitSize)
	for i := 0; i < 500; i++ {
		op := gen.Next()
		if op.Kind == sim.Write {
			err = front.Write(ctx, op.Logical, buf)
		} else {
			err = front.Read(ctx, op.Logical, buf)
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	front.RecordTrace(nil)
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	front.Close()
	src.Close()
	tr, err := sim.DecodeTrace(rec.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d ops at unit %d B\n", len(tr.Ops), tr.UnitSize)

	// A three-shard cluster: each shard a declustered array behind a
	// real TCP server, capacities weighted 1:2:3 (see examples/cluster).
	const (
		shards    = 3
		storeUnit = 64
		unitBytes = 128
	)
	man := &cluster.Manifest{
		Version:   cluster.FormatVersion,
		UnitBytes: unitBytes,
		Policy:    cluster.ByCapacity,
	}
	stores := make([]*store.Store, shards)
	for i := 0; i < shards; i++ {
		res, err := pdl.Build(13, 4)
		if err != nil {
			log.Fatal(err)
		}
		s, err := store.Open(res, res.Layout.Size, storeUnit, nil)
		if err != nil {
			log.Fatal(err)
		}
		defer s.Close()
		stores[i] = s
		front := serve.New(s, serve.Config{QueueDepth: 32})
		defer front.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		srv := serve.NewServer(front)
		go srv.Serve(ln)
		defer srv.Close()
		man.Shards = append(man.Shards, cluster.ShardInfo{
			Addr:  ln.Addr().String(),
			Units: int64(i+1) * 32,
			State: cluster.ShardHealthy,
		})
	}
	c, err := cluster.Open(man, cluster.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// The scenario target moves 192 B per op: a multiple of the 64 B
	// array unit (concurrent workers must not share one — sub-unit
	// writes are read-modify-writes) but unaligned with the 128 B
	// shard-unit, so ops cross shard boundaries.
	tgt := scenario.NewClusterTarget(c, 192)
	defer tgt.Close()
	fmt.Printf("cluster target: %d ops of %d B across %d shards\n", tgt.Capacity(), tgt.Unit, shards)

	// The script: three phases under a seeded workload. Mid-traffic the
	// engine fails disk 4 on shard 1 over the admin wire (the other
	// shards are separate failure domains), then rebuilds it online.
	// Verify mode models every write and checks every read; the empty
	// SLO clause forbids op errors, and require_healthy asserts the
	// rebuild completed.
	load := scenario.Load{Workers: 3, Ops: 300, WriteFrac: 0.4}
	sc := &scenario.Scenario{
		Name:   "example",
		Seed:   7,
		Verify: true,
		Phases: []scenario.Phase{
			{Name: "healthy", Load: load, SLO: &scenario.SLO{}},
			{
				Name:   "degraded",
				Load:   load,
				Events: []scenario.Event{{Action: scenario.ActFail, Shard: 1, Disk: 4, AtOps: 30}},
				SLO:    &scenario.SLO{},
			},
			{
				Name:   "rebuild",
				Load:   load,
				Events: []scenario.Event{{Action: scenario.ActRebuild, Shard: 1, AtOps: 30}},
				SLO:    &scenario.SLO{RequireHealthy: true},
			},
		},
	}
	rep, err := scenario.Run(sc, tgt)
	if err != nil {
		log.Fatal(err)
	}
	for _, ph := range rep.Phases {
		fmt.Printf("phase %-8s ops=%d errs=%d percentiles recorded: %v\n",
			ph.Name, ph.Ops, ph.Errors, ph.Foreground.P99 > 0)
		for _, ev := range ph.Events {
			fmt.Printf("  event %s shard=%d ok=%v\n", ev.Action, ev.Shard, ev.Err == "")
		}
	}
	fmt.Printf("SLO violations: %d (verified: every read checked, all written units swept)\n", len(rep.Violations))

	// Replay the recorded trace against the recovered cluster, flat out
	// (speed <= 0). Addresses wrap modulo the target's capacity, so the
	// single-array trace drives the cluster namespace.
	rr, err := scenario.ReplayTrace(tgt, tr, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed the trace against the cluster: %d ops, %d errors\n", rr.Ops, rr.Errors)

	for i, s := range stores {
		if err := s.VerifyParity(); err != nil {
			log.Fatalf("shard %d: %v", i, err)
		}
	}
	fmt.Printf("parity verified on all %d shards\n", shards)
}
