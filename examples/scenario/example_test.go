package main

// Example pins the walkthrough's printed output: record a request
// trace, run a scripted fail/rebuild scenario against a three-shard
// cluster in verify mode, replay the trace, verify parity — all
// asserted by `go test`.
func Example() {
	main()
	// Output:
	// recorded 500 ops at unit 64 B
	// cluster target: 128 ops of 192 B across 3 shards
	// phase healthy  ops=300 errs=0 percentiles recorded: true
	// phase degraded ops=300 errs=0 percentiles recorded: true
	//   event fail shard=1 ok=true
	// phase rebuild  ops=300 errs=0 percentiles recorded: true
	//   event rebuild shard=1 ok=true
	// SLO violations: 0 (verified: every read checked, all written units swept)
	// replayed the trace against the cluster: 500 ops, 0 errors
	// parity verified on all 3 shards
}
