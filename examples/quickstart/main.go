// Quickstart: build a parity-declustered layout for an arbitrary array
// size, inspect the paper's four conditions, translate addresses through
// the O(1) Mapper (healthy and degraded), and rebuild a failed disk
// byte-exactly.
package main

import (
	"fmt"
	"log"

	"repro/pdl"
	"repro/pdl/layout"
)

func main() {
	// 24 disks is not a prime power: the library transparently builds a
	// stairway transformation from a prime-power base.
	res, err := pdl.Build(24, 5)
	if err != nil {
		log.Fatal(err)
	}
	l := res.Layout
	fmt.Printf("construction: %s\n", res.Method)
	fmt.Print(pdl.Report(l))

	// The serving hot path: O(1) logical -> physical translation.
	m, err := res.NewMapper(l.Size)
	if err != nil {
		log.Fatal(err)
	}
	u, err := m.Map(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("logical 0 lives at disk %d, offset %d\n", u.Disk, u.Offset)
	dr, err := m.DegradedMap(0, u.Disk)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with disk %d down, logical 0 is the XOR of %d surviving units\n", u.Disk, len(dr.Survivors))

	// Put real data on the array and prove a failed disk reconstructs.
	data, err := layout.NewData(l, 16)
	if err != nil {
		log.Fatal(err)
	}
	n := data.Mapping().DataUnits()
	fmt.Printf("logical data units: %d\n", n)
	for i := 0; i < n; i++ {
		payload := make([]byte, 16)
		for j := range payload {
			payload[j] = byte(i + 7*j)
		}
		if err := data.WriteLogical(i, payload); err != nil {
			log.Fatal(err)
		}
	}
	if err := data.CheckReconstruction(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("all 24 disks reconstruct byte-exactly from survivors")

	// The point of declustering: rebuilding reads only a fraction of each
	// surviving disk.
	reads := l.ReconstructionReads(0)
	maxReads := 0
	for d, r := range reads {
		if d != 0 && r > maxReads {
			maxReads = r
		}
	}
	fmt.Printf("rebuild of disk 0 reads at most %d of %d units per survivor (%.1f%%)\n",
		maxReads, l.Size, 100*float64(maxReads)/float64(l.Size))
}
