// Reconstruction: the paper's motivating scenario. Compare rebuilding a
// failed disk under RAID5 (read everything) against parity-declustered
// layouts with several stripe sizes, on the event-driven simulator, both
// offline and while serving clients.
package main

import (
	"fmt"
	"log"

	"repro/pdl"
	"repro/pdl/sim"
)

func main() {
	const v = 17
	fmt.Printf("array of %d disks; rebuilding disk 0\n\n", v)
	fmt.Printf("%-14s %8s %18s %10s\n", "layout", "size", "survivor fraction", "makespan")

	// Declustered layouts at several stripe sizes.
	var raid5Makespan int64
	for _, k := range []int{16, 8, 4, 2} {
		res, err := pdl.Build(v, k, pdl.WithMethod("ring"))
		if err != nil {
			log.Fatal(err)
		}
		a, err := sim.New(res.Layout, sim.Config{})
		if err != nil {
			log.Fatal(err)
		}
		rres, err := a.RebuildOffline(0, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("k=%-12d %8d %18.4f %10d\n", k, res.Layout.Size, rres.SurvivorFraction, rres.Makespan)
	}
	r5, err := pdl.Build(v, 16, pdl.WithMethod("raid5"), pdl.WithRows(16*(v-1)))
	if err != nil {
		log.Fatal(err)
	}
	ar, err := sim.New(r5.Layout, sim.Config{})
	if err != nil {
		log.Fatal(err)
	}
	rres, err := ar.RebuildOffline(0, 0)
	if err != nil {
		log.Fatal(err)
	}
	raid5Makespan = rres.Makespan
	fmt.Printf("%-14s %8d %18.4f %10d\n", "RAID5 (k=v)", r5.Layout.Size, rres.SurvivorFraction, rres.Makespan)
	fmt.Printf("\nsmaller k => less read per survivor => faster rebuild (RAID5 baseline %d ticks)\n", raid5Makespan)
	fmt.Println("the cost: parity overhead 1/k of the array instead of 1/v")

	// Online: rebuild competing with client traffic.
	fmt.Println("\nonline rebuild under 30%-write client load:")
	res, err := pdl.Build(v, 4, pdl.WithMethod("ring"))
	if err != nil {
		log.Fatal(err)
	}
	a, err := sim.New(res.Layout, sim.Config{})
	if err != nil {
		log.Fatal(err)
	}
	gen := sim.NewUniform(a.Mapping.DataUnits(), 0.3, 7)
	cres, rr, err := a.RebuildOnline(gen, 4000, 2, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  client avg latency %.2f ticks (max %d) while rebuild finished at %d\n",
		cres.AvgLatency(), cres.MaxLatency, rr.Makespan)
}
