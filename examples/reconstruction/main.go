// Reconstruction: the paper's motivating scenario. Compare rebuilding a
// failed disk under RAID5 (read everything) against parity-declustered
// layouts with several stripe sizes, on the event-driven simulator, both
// offline and while serving clients.
package main

import (
	"fmt"
	"log"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/disksim"
	"repro/internal/workload"
)

func main() {
	const v = 17
	fmt.Printf("array of %d disks; rebuilding disk 0\n\n", v)
	fmt.Printf("%-14s %8s %18s %10s\n", "layout", "size", "survivor fraction", "makespan")

	// Declustered layouts at several stripe sizes.
	type result struct {
		name     string
		makespan int64
	}
	var raid5Makespan int64
	for _, k := range []int{16, 8, 4, 2} {
		rl, err := core.NewRingLayout(v, k)
		if err != nil {
			log.Fatal(err)
		}
		a, err := disksim.New(rl.Layout, disksim.Config{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := a.RebuildOffline(0, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("k=%-12d %8d %18.4f %10d\n", k, rl.Size, res.SurvivorFraction, res.Makespan)
	}
	r5, err := baseline.RAID5(v, 16*(v-1))
	if err != nil {
		log.Fatal(err)
	}
	ar, err := disksim.New(r5, disksim.Config{})
	if err != nil {
		log.Fatal(err)
	}
	rres, err := ar.RebuildOffline(0, 0)
	if err != nil {
		log.Fatal(err)
	}
	raid5Makespan = rres.Makespan
	fmt.Printf("%-14s %8d %18.4f %10d\n", "RAID5 (k=v)", r5.Size, rres.SurvivorFraction, rres.Makespan)
	fmt.Printf("\nsmaller k => less read per survivor => faster rebuild (RAID5 baseline %d ticks)\n", raid5Makespan)
	fmt.Println("the cost: parity overhead 1/k of the array instead of 1/v")

	// Online: rebuild competing with client traffic.
	fmt.Println("\nonline rebuild under 30%-write client load:")
	rl, err := core.NewRingLayout(v, 4)
	if err != nil {
		log.Fatal(err)
	}
	a, err := disksim.New(rl.Layout, disksim.Config{})
	if err != nil {
		log.Fatal(err)
	}
	gen := workload.NewUniform(a.Mapping.DataUnits(), 0.3, 7)
	cres, rr, err := a.RebuildOnline(gen, 4000, 2, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  client avg latency %.2f ticks (max %d) while rebuild finished at %d\n",
		cres.AvgLatency(), cres.MaxLatency, rr.Makespan)
}
