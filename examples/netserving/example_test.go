package main

// Example pins the walkthrough's printed output: serve over TCP, fail,
// degraded reads, online rebuild, verify — all asserted by `go test`.
func Example() {
	main()
	// Output:
	// construction: ring
	// connected over TCP: 13 disks, 936 units of 64 B
	// wrote 936 units from 4 concurrent clients
	// read back: "parity declustering over the network"
	// disk 5 failed; degraded read: "parity declustering over the network"
	// degraded sweep over the wire matches: true
	// served via survivor XOR: true
	// rebuilt online; failed disk now: -1
	// parity verified; healthy sweep matches: true
}
