// Netserving: the full network path of the serving stack — build a
// balanced layout, serve it from a pdl/store array through the pdl/serve
// batching frontend and its TCP server, then drive it with concurrent
// clients: writes and reads over the wire, a disk failure, degraded
// reads from survivor XOR, an online rebuild, and a final byte-perfect
// sweep. Everything runs in-process on a loopback socket, but every
// request crosses a real TCP connection.
package main

import (
	"bytes"
	"fmt"
	"log"
	"net"
	"sync"

	"repro/pdl"
	"repro/pdl/serve"
	"repro/pdl/store"
)

func main() {
	// Construction → layout → mapper → plan → store: the array.
	res, err := pdl.Build(13, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("construction: %s\n", res.Method)
	const unitSize = 64
	s, err := store.Open(res, 2*res.Layout.Size, unitSize, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	// Serve: the batching frontend and its TCP front end.
	front := serve.New(s, serve.Config{QueueDepth: 32})
	defer front.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := serve.NewServer(front)
	go srv.Serve(ln)
	defer srv.Close()

	c, err := serve.Dial(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	fmt.Printf("connected over TCP: %d disks, %d units of %d B\n", c.Disks(), c.Capacity(), c.UnitSize())

	// Concurrent clients fill the whole array through the wire; their
	// requests coalesce into batched stripe writes on the server.
	mirror := make([][]byte, c.Capacity())
	const clients = 4
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < c.Capacity(); i += clients {
				buf := make([]byte, unitSize)
				for j := range buf {
					buf[j] = byte(i + 7*j)
				}
				mirror[i] = buf
				if err := c.Write(i, buf); err != nil {
					log.Fatal(err)
				}
			}
		}(g)
	}
	wg.Wait()
	msg := []byte("parity declustering over the network")
	unit0 := append(append([]byte(nil), msg...), mirror[0][len(msg):]...)
	if err := c.Write(0, unit0); err != nil {
		log.Fatal(err)
	}
	mirror[0] = unit0
	fmt.Printf("wrote %d units from %d concurrent clients\n", c.Capacity(), clients)

	got := make([]byte, unitSize)
	if err := c.Read(0, got); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back: %q\n", got[:len(msg)])

	// Disk 5 dies — over the wire. Reads keep working: lost units are
	// reconstructed from their stripe's surviving XOR set on the server.
	if err := c.Fail(5); err != nil {
		log.Fatal(err)
	}
	if err := c.Read(0, got); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("disk 5 failed; degraded read: %q\n", got[:len(msg)])
	sweep := func() bool {
		for i := 0; i < c.Capacity(); i++ {
			if err := c.Read(i, got); err != nil {
				log.Fatal(err)
			}
			if !bytes.Equal(got, mirror[i]) {
				return false
			}
		}
		return true
	}
	fmt.Printf("degraded sweep over the wire matches: %v\n", sweep())
	st, err := c.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("served via survivor XOR: %v\n", st.Store.Degraded > 0)

	// Online rebuild over the wire, traffic still flowing.
	if err := c.Rebuild(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rebuilt online; failed disk now: %d\n", s.Failed())
	if err := s.VerifyParity(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parity verified; healthy sweep matches: %v\n", sweep())
}
