// Sparing: the Section 5 distributed-sparing proposal. Instead of a
// dedicated hot-spare disk (which absorbs every rebuild write), reserve
// one spare unit per stripe, placed by the same network-flow machinery
// that balances parity. Rebuild writes then decluster exactly like
// rebuild reads.
package main

import (
	"fmt"
	"log"

	"repro/pdl"
)

func main() {
	res, err := pdl.Build(13, 4, pdl.WithSparing())
	if err != nil {
		log.Fatal(err)
	}
	sp := res.Sparing
	fmt.Printf("array: v=13, k=4, %d stripes, one spare unit per stripe\n", len(sp.Stripes))
	fmt.Printf("spare units per disk: %v (spread %d)\n", sp.SpareCounts(), sp.SpareSpread())

	writes, lost, err := sp.RebuildToSpares(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndisk 0 fails; rebuilding each lost unit into its stripe's spare:")
	fmt.Printf("per-disk rebuild writes: %v\n", writes)
	fmt.Printf("stripes whose (empty) spare was on the failed disk: %d\n", lost)

	max := 0
	total := 0
	for d, w := range writes {
		if d == 0 {
			continue
		}
		total += w
		if w > max {
			max = w
		}
	}
	fmt.Printf("\nhot-spare disk would absorb all %d writes; distributed sparing caps any disk at %d\n", total, max)
	fmt.Println("(the generalized Theorem 14 flow guarantees per-disk spare counts within 1 of each other)")
}
