package main

// Example pins the walkthrough's printed output: create, crash-reopen,
// scrub-fail, degraded reopen, online rebuild — all asserted by `go test`.
func Example() {
	main()
	// Output:
	// created: method ring, v=9 k=3, 24 units of 64 B per disk
	// after unclean reopen: "bytes that outlive the process"
	// after failure + reopen: failed disk 2, state "failed"
	// degraded read via survivor XOR: "bytes that outlive the process" (intact: true)
	// rebuilt: failed disk -1, state "rebuilt", parity verified
}
