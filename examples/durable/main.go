// Durable: the on-disk array lifecycle — create an array directory with
// pdl/store/array, write through the store, then prove durability the
// hard way: reopen after an unclean stop, scrub-fail a disk, reopen
// again (the manifest remembers the failure), serve degraded from
// survivor XOR, rebuild online onto a staging file, and verify parity on
// the healthy result. The same directory works with the FileDisk and
// MmapDisk backends and with `pdlstore` / `pdlserve serve -dir`.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"repro/pdl/store/array"
)

func main() {
	dir, err := os.MkdirTemp("", "pdl-durable-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Create: layout.json + array.json + one zeroed file per disk.
	arr, err := array.Create(dir, array.CreateOptions{V: 9, K: 3, UnitSize: 64})
	if err != nil {
		log.Fatal(err)
	}
	m := arr.Manifest()
	fmt.Printf("created: method %s, v=%d k=%d, %d units of %d B per disk\n",
		m.Method, m.V, m.K, m.DiskUnits, m.UnitSize)

	msg := []byte("bytes that outlive the process")
	if _, err := arr.Store().WriteAt(msg, 128); err != nil {
		log.Fatal(err)
	}

	// "Crash": drop the array without Close and reopen the directory.
	arr, err = array.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := arr.Store().ReadAt(got, 128); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after unclean reopen: %q\n", got)

	// Fail disk 2: the file is scrubbed and the manifest records it.
	if err := arr.Fail(2); err != nil {
		log.Fatal(err)
	}

	// Reopen once more (mmap-backed this time): still degraded — a
	// restart must never serve a scrubbed disk as healthy.
	arr, err = array.Open(dir, array.WithBackend(array.Mmap))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after failure + reopen: failed disk %d, state %q\n",
		arr.Store().Failed(), arr.Manifest().Disks[2].State)
	if _, err := arr.Store().ReadAt(got, 128); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("degraded read via survivor XOR: %q (intact: %v)\n", got, bytes.Equal(got, msg))

	// Rebuild online: reconstruction streams onto disk02.dat.rebuild,
	// then renames over the scrubbed file and syncs the manifest.
	if _, err := arr.Rebuild(); err != nil {
		log.Fatal(err)
	}
	if err := arr.Store().VerifyParity(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rebuilt: failed disk %d, state %q, parity verified\n",
		arr.Store().Failed(), arr.Manifest().Disks[2].State)

	if err := arr.Close(); err != nil {
		log.Fatal(err)
	}
}
