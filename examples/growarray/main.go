// Growarray: the Section 3 scenario. You need a layout for an awkward
// array size (no BIBD available). Start from a prime-power ring layout
// and reach the target with the stairway transformation, or shrink with
// disk removal — watching the size/imbalance trade-off the paper proves.
package main

import (
	"fmt"
	"log"

	"repro/pdl"
)

func main() {
	// Target: 18 disks, stripes of 4. 18 is not a prime power.
	fmt.Println("goal: v=18 disks, k=4 — no ring-based design exists (M(18)=2)")

	// Option 1: stairway up from q=17 (d=1: large but perfectly balanced).
	// Option 2: stairway up from q=16 (d=2: smaller, slight imbalance).
	// Option 3: remove one disk from a 19-disk ring layout.
	fmt.Printf("\n%-26s %6s %16s %22s\n", "construction", "size", "parity overhead", "reconstruction workload")
	for _, q := range []int{17, 16} {
		res, err := pdl.Build(18, 4, pdl.WithMethod("stairway"), pdl.WithBase(q))
		if err != nil {
			log.Fatal(err)
		}
		l := res.Layout
		omin, omax := l.ParityOverheadRange()
		wmin, wmax := l.ReconstructionWorkloadRange()
		fmt.Printf("%-26s %6d [%v, %v] [%v, %v]\n", res.Method, l.Size, omin, omax, wmin, wmax)
	}
	res, err := pdl.Build(18, 4, pdl.WithMethod("removal"), pdl.WithBase(19))
	if err != nil {
		log.Fatal(err)
	}
	l := res.Layout
	omin, omax := l.ParityOverheadRange()
	wmin, wmax := l.ReconstructionWorkloadRange()
	fmt.Printf("%-26s %6d [%v, %v] [%v, %v]\n", res.Method, l.Size, omin, omax, wmin, wmax)

	fmt.Println("\ntrade-off (Section 3.2): bases closer to v give smaller imbalance but larger layouts")

	// The coverage guarantee: every v has a base.
	missing := 0
	for _, r := range pdl.Coverage(500) {
		if r.V >= 3 && !r.Covered {
			missing++
		}
	}
	fmt.Printf("coverage check: every v in [3,500] reachable (missing: %d)\n", missing)
}
