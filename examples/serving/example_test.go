package main

// Example pins the walkthrough's printed output: build, serve, fail,
// degraded reads, online rebuild, verify — all asserted by `go test`.
func Example() {
	main()
	// Output:
	// construction: ring
	// store: 13 disks, 936 logical units of 64 B (59904 B capacity)
	// dataset written, parity verified on every stripe
	// ReadAt(100): "parity declustering serves bytes"
	// ReadAt(100) with disk 5 down: "parity declustering serves bytes"
	// degraded full sweep matches the mirror: true
	// served via survivor XOR: true
	// rebuilt disk 5 online; failed disk now: -1
	// healthy full sweep matches the mirror: true
}
