// Serving: the full life of a byte store under parity declustering —
// build a balanced layout, serve writes and reads against real bytes
// (pdl/store over in-memory disks), fail a disk, keep serving degraded
// reads from survivor XOR, rebuild the lost disk online, and verify the
// array is byte-perfect again.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/pdl"
	"repro/pdl/store"
)

func main() {
	// A ring construction on 13 disks, stripe size 4: parity and rebuild
	// workload perfectly balanced.
	res, err := pdl.Build(13, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("construction: %s\n", res.Method)

	// Serve it: two layout copies per disk, 64-byte units, MemDisk
	// backends (pass FileDisks for a persistent array).
	const unitSize = 64
	s, err := store.Open(res, 2*res.Layout.Size, unitSize, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	fmt.Printf("store: %d disks, %d logical units of %d B (%d B capacity)\n",
		res.Layout.V, s.Capacity(), s.UnitSize(), s.Size())

	// Write a dataset (mirrored in a flat buffer so every later read can
	// be checked), then prove parity holds on every stripe.
	mirror := make([]byte, s.Size())
	for i := range mirror {
		mirror[i] = byte(i/unitSize + 7*(i%unitSize))
	}
	if _, err := s.WriteAt(mirror, 0); err != nil {
		log.Fatal(err)
	}
	msg := []byte("parity declustering serves bytes")
	if _, err := s.WriteAt(msg, 100); err != nil {
		log.Fatal(err)
	}
	copy(mirror[100:], msg)
	if err := s.VerifyParity(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("dataset written, parity verified on every stripe")

	got := make([]byte, len(msg))
	if _, err := s.ReadAt(got, 100); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ReadAt(100): %q\n", got)

	// Disk 5 dies. Reads keep working: lost units are reconstructed on
	// the fly from their stripe's surviving XOR set.
	if err := s.Fail(5); err != nil {
		log.Fatal(err)
	}
	if _, err := s.ReadAt(got, 100); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ReadAt(100) with disk 5 down: %q\n", got)

	whole := make([]byte, s.Size())
	if _, err := s.ReadAt(whole, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("degraded full sweep matches the mirror: %v\n", bytes.Equal(whole, mirror))
	var degraded int64
	for _, d := range s.Stats().Disks {
		degraded += d.Degraded
	}
	fmt.Printf("served via survivor XOR: %v\n", degraded > 0)

	// Rebuild online onto a replacement disk; foreground traffic keeps
	// flowing while stripes stream across.
	replacement := store.NewMemDisk(int64(s.Mapper().DiskUnits()) * unitSize)
	if err := s.Rebuild(replacement); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rebuilt disk 5 online; failed disk now: %d\n", s.Failed())
	if err := s.VerifyParity(); err != nil {
		log.Fatal(err)
	}
	if _, err := s.ReadAt(whole, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healthy full sweep matches the mirror: %v\n", bytes.Equal(whole, mirror))
}
