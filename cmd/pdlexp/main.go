// Command pdlexp regenerates every experiment in the paper's evaluation
// (Figures 1-7, tables T1-T7, simulator studies S1-S2) and prints them.
//
// Usage:
//
//	pdlexp           # quick parameters (seconds)
//	pdlexp -full     # full paper parameters (v <= 10,000 coverage, etc.)
//	pdlexp -only T5  # one experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/pdl/exp"
)

func main() {
	full := flag.Bool("full", false, "run full paper-scale parameters")
	only := flag.String("only", "", "run a single experiment by id (e.g. T5)")
	flag.Parse()

	tables, err := exp.All(!*full)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdlexp:", err)
		os.Exit(1)
	}
	for _, t := range tables {
		if *only != "" && !strings.EqualFold(t.ID, *only) {
			continue
		}
		fmt.Println(t.String())
	}
}
