// Command pdlsim runs the disk-array simulator on a generated layout:
// offline rebuild, online rebuild under client load, or a pure client
// workload (optionally degraded).
//
// Usage:
//
//	pdlsim -v 17 -k 4 -mode rebuild
//	pdlsim -v 17 -k 4 -mode online -ops 5000 -write 0.3
//	pdlsim -v 17 -k 4 -mode serve -fail 2
//	pdlsim -v 17 -k 4 -mode serve -fail 2 -trace
//
// With -trace, the compiled pdl/plan I/O plan for a sampled request (and
// for the first rebuild stripe, in rebuild modes) is dumped before the
// run — the physical reads and writes, grouped by dependency stage, that
// the engine will execute.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/pdl"
	"repro/pdl/layout"
	"repro/pdl/plan"
	"repro/pdl/sim"
)

func main() {
	v := flag.Int("v", 9, "number of disks")
	k := flag.Int("k", 3, "parity stripe size")
	mode := flag.String("mode", "rebuild", "rebuild|online|serve")
	fail := flag.Int("fail", 0, "disk to fail (-1 = none, serve mode only)")
	ops := flag.Int("ops", 2000, "client operations")
	writeFrac := flag.Float64("write", 0.3, "write fraction")
	inter := flag.Int64("interarrival", 2, "ticks between client ops")
	service := flag.Int64("service", 1, "ticks per unit transfer")
	seed := flag.Uint64("seed", 42, "workload seed")
	layoutPath := flag.String("layout", "", "simulate a pdlgen JSON layout instead of generating one")
	copies := flag.Int("copies", 1, "layout copies per disk (disk size = copies * layout size)")
	trace := flag.Bool("trace", false, "dump the compiled I/O plan for a sampled request before the run")
	flag.Parse()

	var l *layout.Layout
	if *layoutPath != "" {
		f, err := os.Open(*layoutPath)
		if err != nil {
			fatal(err)
		}
		l, err = layout.ReadJSON(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("layout: %s, v=%d size=%d\n", *layoutPath, l.V, l.Size)
	} else {
		res, err := pdl.Build(*v, *k)
		if err != nil {
			fatal(err)
		}
		l = res.Layout
		fmt.Printf("layout: %s, v=%d k=%d size=%d\n", res.Method, *v, *k, l.Size)
	}
	a, err := sim.New(l, sim.Config{ServiceTime: *service, Copies: *copies})
	if err != nil {
		fatal(err)
	}
	if *trace {
		tracePlans(a, *mode, *fail, *writeFrac, *seed)
	}
	switch *mode {
	case "rebuild":
		res, err := a.RebuildOffline(*fail, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("offline rebuild of disk %d:\n", *fail)
		fmt.Printf("  max survivor reads: %d of %d units (%.4f of each disk; paper bound (k-1)/(v-1) = %.4f)\n",
			res.MaxSurvivorReads, a.DiskUnits(), res.SurvivorFraction, float64(*k-1)/float64(*v-1))
		fmt.Printf("  makespan: %d ticks\n", res.Makespan)
	case "online":
		gen := sim.NewUniform(a.DataUnits(), *writeFrac, *seed)
		cres, rres, err := a.RebuildOnline(gen, *ops, *inter, *fail)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("online rebuild of disk %d under %s:\n", *fail, gen.Name())
		fmt.Printf("  client: %d ops, avg latency %.2f, max %d\n", cres.Ops, cres.AvgLatency(), cres.MaxLatency)
		fmt.Printf("  rebuild: survivor fraction %.4f, makespan %d\n", rres.SurvivorFraction, rres.Makespan)
	case "serve":
		if *fail >= 0 {
			if err := a.Fail(*fail); err != nil {
				fatal(err)
			}
		}
		gen := sim.NewUniform(a.DataUnits(), *writeFrac, *seed)
		res, err := a.ServeWorkload(gen, *ops, *inter)
		if err != nil {
			fatal(err)
		}
		state := "healthy"
		if *fail >= 0 {
			state = fmt.Sprintf("degraded (disk %d failed)", *fail)
		}
		fmt.Printf("%s service under %s: avg latency %.2f, P95 %d, P99 %d, max %d, completion %d\n",
			state, gen.Name(), res.AvgLatency(),
			res.Latencies.Percentile(95), res.Latencies.Percentile(99),
			res.MaxLatency, res.Completion)
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

// tracePlans compiles and dumps the I/O plans the engine would execute
// for a request sampled from the workload (a fresh generator with the run
// seed, so the run itself is unperturbed), plus the first rebuild stripe
// schedule in the rebuild modes.
func tracePlans(a *sim.Array, mode string, fail int, writeFrac float64, seed uint64) {
	pln := a.Planner()
	failed := -1
	if mode != "serve" || fail >= 0 {
		failed = fail
	}
	op := sim.NewUniform(a.DataUnits(), writeFrac, seed).Next()
	var p plan.Plan
	var err error
	if op.Kind == sim.Write {
		err = pln.Write(op.Logical, failed, &p)
	} else {
		err = pln.Read(op.Logical, failed, &p)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("trace: sampled request plan (%d reads, %d writes, %d stages)\n  %s\n",
		p.Reads(), p.Writes(), p.Stages(), p.String())
	if err := pln.FullStripeWrite(op.Logical, failed, &p); err != nil {
		fatal(err)
	}
	fmt.Printf("trace: full-stripe alternative for the same address\n  %s\n", p.String())
	if (mode == "rebuild" || mode == "online") && failed >= 0 {
		rb, err := pln.Rebuild(failed)
		if err != nil {
			fatal(err)
		}
		min, max := rb.Balance()
		fmt.Printf("trace: rebuild schedule for disk %d: %d stripe plans, per-disk reads in [%d,%d]\n",
			failed, len(rb.Plans), min, max)
		if len(rb.Plans) > 0 {
			fmt.Printf("  first stripe: %s\n", rb.Plans[0].String())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdlsim:", err)
	os.Exit(1)
}
