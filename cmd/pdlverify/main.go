// Command pdlverify reads a layout (JSON from pdlgen) and reports it
// against the paper's four layout conditions, exiting nonzero on a
// structural violation.
//
// Usage:
//
//	pdlgen -v 9 -k 3 | pdlverify
//	pdlverify -data layout.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/pdl"
	"repro/pdl/layout"
)

func main() {
	path := flag.String("data", "", "layout JSON file (default stdin)")
	verifyData := flag.Bool("xor", true, "also run byte-accurate XOR reconstruction when parity is assigned")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *path != "" {
		f, err := os.Open(*path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pdlverify:", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	l, err := layout.ReadJSON(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdlverify:", err)
		os.Exit(1)
	}
	fmt.Print(pdl.Report(l))
	if *verifyData && l.ParityAssigned() {
		d, err := layout.NewData(l, 8)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pdlverify:", err)
			os.Exit(1)
		}
		for i := 0; i < d.Mapping().DataUnits(); i++ {
			payload := make([]byte, 8)
			for j := range payload {
				payload[j] = byte(i*13 + j)
			}
			if err := d.WriteLogical(i, payload); err != nil {
				fmt.Fprintln(os.Stderr, "pdlverify:", err)
				os.Exit(1)
			}
		}
		if err := d.CheckReconstruction(); err != nil {
			fmt.Fprintln(os.Stderr, "pdlverify: XOR reconstruction FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("xor reconstruction: every disk rebuilt byte-exactly")
	}
}
