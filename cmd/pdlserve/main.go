// Command pdlserve runs and drives the pdl/serve network front end: a
// TCP server batching client requests into parity-declustered array I/O,
// a throughput benchmark against a live server, and a loadgen mode
// replaying the pdl/sim workload mixes over the wire.
//
// Usage:
//
//	pdlserve serve -addr :9911 -v 17 -k 4 -copies 4 -unit 4096
//	pdlserve serve -addr :9911 -dir a17 -backend mmap   # durable array
//	pdlserve bench -clients 64 -seconds 2          # self-hosted server
//	pdlserve bench -addr host:9911 -clients 64     # remote server
//	pdlserve loadgen -workload zipf -theta 0.9 -write-frac 0.3 -ops 200000
//	pdlserve loadgen -addr host:9911 -workload mix -fail 3
//	pdlserve loadgen -record ops.trace             # capture the request stream
//	pdlserve loadgen -replay ops.trace -speed 2    # replay it at 2x
//	pdlserve scenario -f sched.json                # scripted fault schedule
//
// scenario runs a versioned JSON fault schedule (see pdl/scenario)
// against the server: phased workloads with scripted disk failures and
// rebuilds, per-phase latency windows, and SLO judgment; the process
// exits nonzero when a declared SLO is violated.
//
// With -dir, serve opens an existing pdlstore array directory (see
// pdl/store/array) instead of a throwaway MemDisk array: bytes, disk
// failures, and rebuilds all survive a server restart, because wire Fail
// and Rebuild requests route through the array's manifest.
//
// All rates are decimal MB/s (1 MB = 1e6 bytes), matching `go test
// -bench` and the BENCH_*.json records.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"time"

	"repro/cmd/internal/units"
	"repro/pdl"
	"repro/pdl/obs"
	"repro/pdl/scenario"
	"repro/pdl/serve"
	"repro/pdl/sim"
	"repro/pdl/store"
	"repro/pdl/store/array"
)

func main() {
	if len(os.Args) < 2 {
		die(fmt.Errorf("usage: pdlserve <serve|bench|loadgen|scenario> [flags]"))
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "serve":
		err = cmdServe(args)
	case "bench":
		err = cmdBench(args)
	case "loadgen":
		err = cmdLoadgen(args)
	case "scenario":
		err = cmdScenario(args)
	default:
		err = fmt.Errorf("unknown subcommand %q", cmd)
	}
	if err != nil {
		die(err)
	}
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "pdlserve:", err)
	os.Exit(1)
}

// arrayFlags is the geometry flag set shared by serve and the
// self-hosted bench/loadgen modes.
type arrayFlags struct {
	v, k, copies, unit, depth, workers int
	parity                             int
	flush                              time.Duration
}

func addArrayFlags(fs *flag.FlagSet) *arrayFlags {
	a := &arrayFlags{}
	fs.IntVar(&a.v, "v", 17, "number of disks")
	fs.IntVar(&a.k, "k", 4, "parity stripe size")
	fs.IntVar(&a.parity, "parity", 1, "parity shards per stripe (1 = XOR, >1 = Reed-Solomon)")
	fs.IntVar(&a.copies, "copies", 4, "layout copies per disk")
	fs.IntVar(&a.unit, "unit", 4096, "unit size in bytes")
	fs.IntVar(&a.depth, "depth", serve.DefaultQueueDepth, "submission queue depth / max batch size")
	fs.IntVar(&a.workers, "workers", 0, "executor goroutines (0 = GOMAXPROCS)")
	fs.DurationVar(&a.flush, "flush", serve.DefaultFlushDelay, "batch flush deadline (negative = immediate)")
	return a
}

// newFrontend builds a MemDisk-backed array and its batching frontend.
func (a *arrayFlags) newFrontend() (*serve.Frontend, error) {
	var opts []pdl.Option
	if a.parity > 1 {
		opts = append(opts, pdl.WithParityShards(a.parity))
	}
	res, err := pdl.Build(a.v, a.k, opts...)
	if err != nil {
		return nil, err
	}
	s, err := store.Open(res, a.copies*res.Layout.Size, a.unit, nil)
	if err != nil {
		return nil, err
	}
	c := s.Code()
	fmt.Printf("array: %s v=%d k=%d codec=%s/%d, %d units of %d B (%s logical)\n",
		res.Method, a.v, a.k, c.Name(), c.ParityShards(), s.Capacity(), a.unit, fmtBytes(s.Size()))
	return serve.New(s, serve.Config{QueueDepth: a.depth, FlushDelay: a.flush, Workers: a.workers}), nil
}

func fmtBytes(n int64) string {
	return fmt.Sprintf("%.1f MB", float64(n)/units.BytesPerMB)
}

func degradedTag(s *store.Store) string {
	if fd := s.FailedDisks(); len(fd) > 1 {
		return fmt.Sprintf(" (degraded: disks %v down)", fd)
	} else if len(fd) == 1 {
		return fmt.Sprintf(" (degraded: disk %d down)", fd[0])
	}
	return ""
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":9911", "listen address")
	dir := fs.String("dir", "", "existing array directory to serve (empty: throwaway MemDisk array)")
	backend := fs.String("backend", string(array.File), "per-disk backend for -dir: file|mmap")
	noDelay := fs.Bool("nodelay", true, "set TCP_NODELAY on accepted connections")
	rcvbuf := fs.Int("rcvbuf", 0, "kernel receive buffer per connection in bytes (0 = OS default)")
	sndbuf := fs.Int("sndbuf", 0, "kernel send buffer per connection in bytes (0 = OS default)")
	httpAddr := fs.String("http", "", "admin HTTP listen address for /metrics, /statusz, /healthz, /debug/pprof (empty: disabled)")
	a := addArrayFlags(fs)
	fs.Parse(args)

	var front *serve.Frontend
	var arr *array.Array
	if *dir != "" {
		kind, err := array.ParseBackend(*backend)
		if err != nil {
			return err
		}
		arr, err = array.Open(*dir, array.WithBackend(kind))
		if err != nil {
			return err
		}
		s := arr.Store()
		m := arr.Manifest()
		fmt.Printf("array %s: %s v=%d k=%d, %d units of %d B (%s logical, %s backend)%s\n",
			*dir, m.Method, m.V, m.K, s.Capacity(), m.UnitSize, fmtBytes(s.Size()), kind, degradedTag(s))
		front = serve.New(s, serve.Config{QueueDepth: a.depth, FlushDelay: a.flush, Workers: a.workers})
	} else {
		var err error
		front, err = a.newFrontend()
		if err != nil {
			return err
		}
	}
	defer front.Store().Close()
	defer front.Close()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := serve.NewServer(front)
	srv.NoDelay = *noDelay
	srv.ReadBuffer = *rcvbuf
	srv.WriteBuffer = *sndbuf
	if arr != nil {
		// Durable array: wire Fail/Rebuild go through the manifest so
		// degraded and rebuilt states survive a server restart.
		srv.FailDisk = arr.Fail
		srv.RebuildDisk = func() error { _, err := arr.Rebuild(); return err }
	}
	if *httpAddr != "" {
		hln, err := serveAdmin(*httpAddr, front, srv)
		if err != nil {
			return err
		}
		defer hln.Close()
		fmt.Printf("admin http on %s\n", hln.Addr())
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		fmt.Println("\nshutting down")
		srv.Close()
	}()
	fmt.Printf("serving on %s (queue depth %d, flush %v)\n", ln.Addr(), a.depth, a.flush)
	return srv.Serve(ln)
}

// serveAdmin starts the obs admin endpoint: every layer's metrics in one
// registry, array state as a /statusz section.
func serveAdmin(addr string, front *serve.Frontend, srv *serve.Server) (net.Listener, error) {
	reg := obs.NewRegistry()
	front.Store().RegisterMetrics(reg)
	front.RegisterMetrics(reg)
	srv.RegisterMetrics(reg)
	h := obs.NewHandler(reg)
	h.AddStatus("array", func() any {
		s := front.Store()
		st := s.Stats()
		return map[string]any{
			"unit_size":       s.UnitSize(),
			"capacity":        s.Capacity(),
			"size_bytes":      s.Size(),
			"codec":           s.Code().Name(),
			"parity_shards":   s.Code().ParityShards(),
			"failed_disk":     st.Failed,
			"failed_disks":    st.FailedDisks,
			"rebuilding":      st.Rebuilding,
			"rebuilt_stripes": st.RebuiltStripes,
			"total_stripes":   st.TotalStripes,
		}
	})
	h.AddStatus("frontend", func() any { return front.Stats() })
	hln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go http.Serve(hln, h)
	return hln, nil
}

// dialOrSelfHost connects to addr, or (addr empty) hosts an in-process
// server on a loopback socket so bench/loadgen still drive real TCP.
// conns is the per-endpoint connection count (0 = CPU-aware default).
// The returned Frontend is non-nil only when self-hosting — it is what
// loadgen -record hooks its trace writer into.
func dialOrSelfHost(addr string, a *arrayFlags, conns int) (*serve.Client, *serve.Frontend, func(), error) {
	cleanup := func() {}
	var front *serve.Frontend
	if addr == "" {
		var err error
		front, err = a.newFrontend()
		if err != nil {
			return nil, nil, nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, nil, err
		}
		srv := serve.NewServer(front)
		go srv.Serve(ln)
		addr = ln.Addr().String()
		fmt.Printf("self-hosted server on %s\n", addr)
		cleanup = func() {
			srv.Close()
			front.Close()
			front.Store().Close()
		}
	}
	var opts []serve.Option
	if conns > 0 {
		opts = append(opts, serve.WithConns(conns))
	}
	c, err := serve.Dial(addr, opts...)
	if err != nil {
		cleanup()
		return nil, nil, nil, err
	}
	fmt.Printf("connected: %d disks, %d units of %d B\n", c.Disks(), c.Capacity(), c.UnitSize())
	return c, front, func() { c.Close(); cleanup() }, nil
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	addr := fs.String("addr", "", "server address (empty: self-hosted)")
	clients := fs.Int("clients", 64, "concurrent client goroutines")
	secs := fs.Float64("seconds", 2, "seconds per measurement")
	seed := fs.Uint64("seed", 1, "bench seed (sets the starting offset of the access sweep)")
	conns := fs.Int("conns", 0, "TCP connections to the server (0 = CPU-aware default)")
	a := addArrayFlags(fs)
	fs.Parse(args)
	c, _, cleanup, err := dialOrSelfHost(*addr, a, *conns)
	if err != nil {
		return err
	}
	defer cleanup()
	unit := c.UnitSize()
	capacity := c.Capacity()
	fmt.Printf("seed %d\n", *seed)

	run := func(name string, op func(c *serve.Client, i int, buf []byte) error) error {
		deadline := time.Now().Add(time.Duration(*secs * float64(time.Second)))
		var ops atomic.Int64
		var wg sync.WaitGroup
		errs := make(chan error, *clients)
		var next atomic.Int64
		next.Store(int64(*seed % uint64(capacity)))
		// One shared lock-free histogram; every client goroutine records
		// into it directly.
		var hist obs.Hist
		start := time.Now()
		for g := 0; g < *clients; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				buf := make([]byte, unit)
				for time.Now().Before(deadline) {
					i := int(next.Add(1)) % capacity
					t0 := time.Now()
					if err := op(c, i, buf); err != nil {
						errs <- err
						return
					}
					hist.Record(time.Since(t0))
					ops.Add(1)
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			return err
		}
		el := time.Since(start)
		sum := hist.Summary()
		fmt.Printf("%-8s %d clients: %10.0f ops/s  %12s  p50 %v  p99 %v\n",
			name, *clients, float64(ops.Load())/el.Seconds(), units.FormatMBPerSec(ops.Load()*int64(unit), el),
			sum.P50.Round(time.Microsecond), sum.P99.Round(time.Microsecond))
		return nil
	}
	if err := run("write", func(c *serve.Client, i int, buf []byte) error { return c.Write(i, buf) }); err != nil {
		return err
	}
	if err := run("read", func(c *serve.Client, i int, buf []byte) error { return c.Read(i, buf) }); err != nil {
		return err
	}
	st, err := c.Stats()
	if err != nil {
		return err
	}
	if st.Frontend.Batches > 0 {
		fmt.Printf("server: %d batches, mean size %.1f (%d flush-on-full, %d flush-on-deadline)\n",
			st.Frontend.Batches, float64(st.Frontend.BatchedOps)/float64(st.Frontend.Batches),
			st.Frontend.FlushFull, st.Frontend.FlushDeadline)
	}
	return nil
}

func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	addr := fs.String("addr", "", "server address (empty: self-hosted)")
	workload := fs.String("workload", "uniform", "uniform|sequential|zipf|mix")
	writeFrac := fs.Float64("write-frac", 0.3, "write fraction for uniform/zipf")
	theta := fs.Float64("theta", 0.9, "zipf skew exponent")
	clients := fs.Int("clients", 16, "concurrent client goroutines")
	ops := fs.Int("ops", 100000, "total operations to replay")
	seed := fs.Uint64("seed", 1, "workload seed")
	failDisk := fs.Int("fail", -1, "fail this disk first and replay degraded")
	background := fs.Bool("background", false, "submit as Background class")
	conns := fs.Int("conns", 0, "TCP connections to the server (0 = CPU-aware default)")
	record := fs.String("record", "", "record the server's request stream to this trace file (self-hosted only)")
	replay := fs.String("replay", "", "replay a recorded trace file instead of generating a workload")
	speed := fs.Float64("speed", 0, "replay speed multiplier (1 = recorded timing, 2 = twice as fast, 0 = flat out)")
	a := addArrayFlags(fs)
	fs.Parse(args)
	c, front, cleanup, err := dialOrSelfHost(*addr, a, *conns)
	if err != nil {
		return err
	}
	defer cleanup()
	capacity := c.Capacity()
	unit := c.UnitSize()

	if *replay != "" {
		return runReplay(c, *replay, *speed)
	}

	var stopRecord func() error
	if *record != "" {
		if front == nil {
			return fmt.Errorf("loadgen: -record needs a self-hosted server (drop -addr)")
		}
		f, err := os.Create(*record)
		if err != nil {
			return err
		}
		tw, err := sim.NewTraceWriter(f, unit)
		if err != nil {
			f.Close()
			return err
		}
		front.RecordTrace(tw)
		stopRecord = func() error {
			front.RecordTrace(nil)
			if err := tw.Flush(); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("recorded %d ops to %s\n", tw.Ops(), *record)
			return nil
		}
	}

	if *failDisk >= 0 {
		if err := c.Fail(*failDisk); err != nil {
			return err
		}
		fmt.Printf("disk %d failed; replaying degraded\n", *failDisk)
	}

	// One deterministic generator per client, split by seed — the same
	// mixes pdl/sim studies (uniform, sequential scan, Zipf hot spots,
	// and the backup+online mix).
	gens := make([]sim.Generator, *clients)
	for g := range gens {
		s := *seed + uint64(g)*0x9E37
		switch *workload {
		case "uniform":
			gens[g] = sim.NewUniform(capacity, *writeFrac, s)
		case "sequential":
			gens[g] = sim.NewSequential(capacity, sim.Read)
		case "zipf":
			gens[g] = sim.NewZipf(capacity, *theta, *writeFrac, s)
		case "mix":
			gens[g] = sim.NewMix(s, []sim.Generator{
				sim.NewSequential(capacity, sim.Write),
				sim.NewZipf(capacity, *theta, *writeFrac, s+1),
			}, []float64{0.2, 0.8})
		default:
			return fmt.Errorf("loadgen: unknown workload %q", *workload)
		}
	}
	fmt.Printf("replaying %d ops of %s over %d clients (seed %d)\n", *ops, gens[0].Name(), *clients, *seed)

	class := serve.Foreground
	if *background {
		class = serve.Background
	}
	perClient := *ops / *clients
	var wg sync.WaitGroup
	errs := make(chan error, *clients)
	// One shared lock-free histogram replaces the per-client sample
	// slices: every goroutine records into it directly.
	var hist obs.Hist
	var reads, writes atomic.Int64
	start := time.Now()
	for g := 0; g < *clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, unit)
			for i := 0; i < perClient; i++ {
				op := gens[g].Next()
				t0 := time.Now()
				var err error
				if op.Kind == sim.Write {
					err = c.WriteClass(op.Logical, buf, class)
					writes.Add(1)
				} else {
					err = c.ReadClass(op.Logical, buf, class)
					reads.Add(1)
				}
				if err != nil {
					errs <- err
					return
				}
				hist.Record(time.Since(t0))
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	el := time.Since(start)

	sum := hist.Summary()
	total := reads.Load() + writes.Load()
	fmt.Printf("%d ops (%d reads, %d writes) in %v: %10.0f ops/s  %s\n",
		total, reads.Load(), writes.Load(), el.Round(time.Millisecond),
		float64(total)/el.Seconds(), units.FormatMBPerSec(total*int64(unit), el))
	fmt.Printf("latency: p50 %v  p95 %v  p99 %v  mean %v\n",
		sum.P50.Round(time.Microsecond), sum.P95.Round(time.Microsecond),
		sum.P99.Round(time.Microsecond), sum.Mean.Round(time.Microsecond))
	st, err := c.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("server: degraded ops %d; %d batches, mean size %.1f\n",
		st.Store.Degraded, st.Frontend.Batches,
		float64(st.Frontend.BatchedOps)/float64(max(st.Frontend.Batches, 1)))
	if stopRecord != nil {
		return stopRecord()
	}
	return nil
}

// runReplay replays a recorded trace file against the connected server
// and reports the latency it measured, split by recorded op class.
func runReplay(c *serve.Client, path string, speed float64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	tr, err := sim.ReadTrace(f)
	f.Close()
	if err != nil {
		return err
	}
	if tr.UnitSize != c.UnitSize() {
		fmt.Printf("note: trace unit %d B, server unit %d B — replay wraps addresses, latency is not a faithful reproduction\n",
			tr.UnitSize, c.UnitSize())
	}
	pace := "flat out"
	if speed > 0 {
		pace = fmt.Sprintf("at %gx recorded timing", speed)
	}
	fmt.Printf("replaying %d traced ops (%v recorded) %s\n", len(tr.Ops), tr.Duration().Round(time.Millisecond), pace)
	rep, err := scenario.ReplayTrace(&scenario.ClientTarget{C: c}, tr, speed)
	if err != nil {
		return err
	}
	fmt.Printf("%d ops (%d errors) in %v: %10.0f ops/s\n",
		rep.Ops, rep.Errors, rep.Took.Round(time.Millisecond), float64(rep.Ops)/rep.Took.Seconds())
	fmt.Printf("foreground: p50 %v  p95 %v  p99 %v  mean %v\n",
		rep.Foreground.P50.Round(time.Microsecond), rep.Foreground.P95.Round(time.Microsecond),
		rep.Foreground.P99.Round(time.Microsecond), rep.Foreground.Mean.Round(time.Microsecond))
	if rep.Background.Count > 0 {
		fmt.Printf("background: p50 %v  p99 %v  mean %v\n",
			rep.Background.P50.Round(time.Microsecond), rep.Background.P99.Round(time.Microsecond),
			rep.Background.Mean.Round(time.Microsecond))
	}
	return nil
}

// cmdScenario runs a versioned JSON fault schedule against a server —
// remote via -addr, or a self-hosted loopback endpoint — and exits
// nonzero when a declared SLO is violated or verify mode catches a
// data mismatch.
func cmdScenario(args []string) error {
	fs := flag.NewFlagSet("scenario", flag.ExitOnError)
	addr := fs.String("addr", "", "server address (empty: self-hosted)")
	file := fs.String("f", "", "schedule file (JSON, see pdl/scenario)")
	seed := fs.Uint64("seed", 0, "override the schedule's seed (0 = keep the file's)")
	conns := fs.Int("conns", 0, "TCP connections to the server (0 = CPU-aware default)")
	a := addArrayFlags(fs)
	fs.Parse(args)
	if *file == "" {
		return fmt.Errorf("scenario: -f schedule.json required")
	}
	sc, err := scenario.ReadScheduleFile(*file)
	if err != nil {
		return err
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	c, _, cleanup, err := dialOrSelfHost(*addr, a, *conns)
	if err != nil {
		return err
	}
	defer cleanup()
	fmt.Printf("running scenario %q (%d phases, seed %d)\n", sc.Name, len(sc.Phases), sc.Seed)
	rep, err := scenario.Run(sc, &scenario.ClientTarget{C: c})
	if rep != nil {
		rep.WriteText(os.Stdout)
	}
	return err
}
