// Package units fixes the throughput-reporting convention shared by the
// CLI tools and the BENCH_*.json records: decimal (SI) megabytes,
// 1 MB = 1e6 bytes — the same convention `go test -bench` uses for its
// MB/s column, so tool output and benchmark records compare directly.
// (Binary mebibytes, 1 MiB = 1048576 bytes, are NOT used anywhere.)
package units

import (
	"fmt"
	"time"
)

// BytesPerMB is one decimal megabyte.
const BytesPerMB = 1e6

// MBPerSec returns the decimal-MB/s rate of moving n bytes in elapsed.
// It returns 0 for a non-positive elapsed (no meaningful rate).
func MBPerSec(n int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(n) / BytesPerMB / elapsed.Seconds()
}

// FormatMBPerSec renders a rate for tool output, e.g. "324.4 MB/s".
func FormatMBPerSec(n int64, elapsed time.Duration) string {
	return fmt.Sprintf("%.1f MB/s", MBPerSec(n, elapsed))
}
