package units_test

import (
	"testing"
	"time"

	"repro/cmd/internal/units"
)

func TestMBPerSec(t *testing.T) {
	cases := []struct {
		n       int64
		elapsed time.Duration
		want    float64
	}{
		{1e6, time.Second, 1},                // exactly one decimal MB
		{5e8, 500 * time.Millisecond, 1000},  // scaling with sub-second time
		{1 << 20, time.Second, 1.048576},     // a binary MiB is NOT 1 MB
		{0, time.Second, 0},                  // no bytes, no rate
		{1e6, 0, 0},                          // degenerate elapsed
		{1e6, -time.Second, 0},               // degenerate elapsed
		{3e6, 2 * time.Second, 1.5},          // fractional rates survive
		{123456789, time.Second, 123.456789}, // decimal, not rounded
	}
	for _, c := range cases {
		if got := units.MBPerSec(c.n, c.elapsed); got != c.want {
			t.Errorf("MBPerSec(%d, %v) = %v, want %v", c.n, c.elapsed, got, c.want)
		}
	}
}

func TestFormatMBPerSec(t *testing.T) {
	if got := units.FormatMBPerSec(123456789, time.Second); got != "123.5 MB/s" {
		t.Errorf("FormatMBPerSec = %q, want %q", got, "123.5 MB/s")
	}
	if got := units.FormatMBPerSec(0, 0); got != "0.0 MB/s" {
		t.Errorf("FormatMBPerSec degenerate = %q, want %q", got, "0.0 MB/s")
	}
}
