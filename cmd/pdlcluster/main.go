// Command pdlcluster drives a sharded byte namespace over many pdlserve
// endpoints: init writes the cluster.json manifest from live shard
// geometry, status reports per-shard health, and bench/loadgen drive
// striped span traffic through the cluster client, reporting aggregate
// throughput plus per-shard latency percentiles.
//
// Usage:
//
//	pdlcluster init -manifest cluster.json -unit 65536 host1:9911 host2:9911 host3:9911
//	pdlcluster status -manifest cluster.json -sync
//	pdlcluster bench -manifest cluster.json -clients 32 -span 65536
//	pdlcluster bench -selfhost 3 -clients 32            # in-process shards
//	pdlcluster loadgen -manifest cluster.json -ops 100000 -write-frac 0.3
//	pdlcluster loadgen -selfhost 3 -fail 1              # degrade shard 1 mid-run
//	pdlcluster scenario -f sched.json -selfhost 3       # scripted fault schedule
//
// scenario runs a versioned JSON fault schedule (see pdl/scenario)
// against the cluster: phased workloads with scripted per-shard disk
// failures and rebuilds, per-phase latency windows, and SLO judgment;
// the process exits nonzero when a declared SLO is violated. The same
// schedule file a pdlserve scenario run uses works here unchanged —
// its events address shard 0 unless they name another shard.
//
// All rates are decimal MB/s (1 MB = 1e6 bytes), matching `go test
// -bench` and the BENCH_*.json records.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/cmd/internal/units"
	"repro/pdl"
	"repro/pdl/cluster"
	"repro/pdl/obs"
	"repro/pdl/scenario"
	"repro/pdl/serve"
	"repro/pdl/store"
)

func main() {
	if len(os.Args) < 2 {
		die(fmt.Errorf("usage: pdlcluster <init|status|bench|loadgen|scenario> [flags]"))
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "init":
		err = cmdInit(args)
	case "status":
		err = cmdStatus(args)
	case "bench":
		err = cmdBench(args)
	case "loadgen":
		err = cmdLoadgen(args)
	case "scenario":
		err = cmdScenario(args)
	default:
		err = fmt.Errorf("unknown subcommand %q", cmd)
	}
	if err != nil {
		die(err)
	}
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "pdlcluster:", err)
	os.Exit(1)
}

func cmdInit(args []string) error {
	fs := flag.NewFlagSet("init", flag.ExitOnError)
	manifest := fs.String("manifest", cluster.ManifestName, "manifest path to write")
	unit := fs.Int64("unit", 65536, "shard-unit size in bytes (the striping granularity)")
	policy := fs.String("policy", string(cluster.ByCapacity), "placement policy: capacity|round-robin")
	timeout := fs.Duration("timeout", 5*time.Second, "per-shard dial timeout")
	fs.Parse(args)
	addrs := fs.Args()
	if len(addrs) == 0 {
		return fmt.Errorf("init: no shard addresses given")
	}

	// Dial every shard and derive its capacity in shard-units from the
	// live array, so the manifest never places more than a shard holds.
	man := &cluster.Manifest{
		Version:   cluster.FormatVersion,
		UnitBytes: *unit,
		Policy:    cluster.Policy(*policy),
	}
	for _, addr := range addrs {
		c, err := dialTimeout(addr, *timeout)
		if err != nil {
			return fmt.Errorf("init: shard %s: %w", addr, err)
		}
		size := c.Size()
		st := cluster.ShardHealthy
		if c.Failed() >= 0 {
			st = cluster.ShardDegraded
		}
		sh := cluster.ShardInfo{Addr: addr, State: st}
		// Record the shard's codec only when it tolerates more than one
		// failure: the default stays off the wire format, so clusters of
		// classic XOR shards keep writing format-1 manifests.
		if stats, err := c.Stats(); err == nil && stats.Store.ParityShards > 1 {
			sh.Codec = stats.Store.Codec
			sh.ParityShards = stats.Store.ParityShards
		}
		c.Close()
		n := size / *unit
		if n < 1 {
			return fmt.Errorf("init: shard %s holds %d B, less than one %d B shard-unit", addr, size, *unit)
		}
		sh.Units = n
		man.Shards = append(man.Shards, sh)
		codec := ""
		if sh.Codec != "" {
			codec = fmt.Sprintf(", %s/%d", sh.Codec, sh.ParityShards)
		}
		fmt.Printf("shard %-24s %8d units (%s%s)\n", addr, n, st, codec)
	}
	m, err := man.Map()
	if err != nil {
		return err
	}
	if err := man.WriteFile(*manifest); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d shards, %s policy, %s namespace (%d units of %s)\n",
		*manifest, m.Shards(), man.Policy, fmtBytes(m.Size()), m.Units(), fmtBytes(m.UnitBytes()))
	return nil
}

func dialTimeout(addr string, d time.Duration) (*serve.Client, error) {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return serve.DialContext(ctx, addr)
}

func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	manifest := fs.String("manifest", cluster.ManifestName, "manifest path")
	sync := fs.Bool("sync", false, "rewrite the manifest with the observed shard states")
	timeout := fs.Duration("timeout", 2*time.Second, "per-shard dial timeout")
	fs.Parse(args)
	man, err := cluster.ReadFile(*manifest)
	if err != nil {
		return err
	}
	m, err := man.Map()
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d shards, %s policy, %s namespace\n", *manifest, m.Shards(), man.Policy, fmtBytes(m.Size()))

	// Each shard is probed independently and best-effort — status must
	// work precisely when part of the cluster is down.
	changed := false
	for s := range man.Shards {
		sh := &man.Shards[s]
		state := cluster.ShardDown
		detail := "unreachable"
		if c, err := dialTimeout(sh.Addr, *timeout); err == nil {
			if st, err := c.Stats(); err == nil {
				switch {
				case st.Store.Rebuilding:
					state = cluster.ShardRebuilding
					detail = fmt.Sprintf("rebuilding disk %d", st.Store.FailedDisk)
				case len(st.Store.FailedDisks) > 1:
					state = cluster.ShardDegraded
					detail = fmt.Sprintf("disks %v down, %d degraded ops", st.Store.FailedDisks, st.Store.Degraded)
				case st.Store.FailedDisk >= 0:
					state = cluster.ShardDegraded
					detail = fmt.Sprintf("disk %d down, %d degraded ops", st.Store.FailedDisk, st.Store.Degraded)
				default:
					state = cluster.ShardHealthy
					detail = fmt.Sprintf("%d reads, %d writes", st.Store.Reads, st.Store.Writes)
				}
				// Refresh the recorded codec info alongside the state
				// (multi-failure shards only; see cmdInit).
				if st.Store.ParityShards > 1 &&
					(sh.Codec != st.Store.Codec || sh.ParityShards != st.Store.ParityShards) {
					sh.Codec = st.Store.Codec
					sh.ParityShards = st.Store.ParityShards
					changed = true
				}
				if sh.Codec != "" {
					detail = fmt.Sprintf("%s/%d, %s", sh.Codec, sh.ParityShards, detail)
				}
			}
			c.Close()
		}
		fmt.Printf("shard %d %-24s %8d units  %-11s %s\n", s, sh.Addr, sh.Units, state, detail)
		if sh.State != state {
			sh.State = state
			changed = true
		}
	}
	if *sync && changed {
		if err := man.WriteFile(*manifest); err != nil {
			return err
		}
		fmt.Printf("synced states to %s\n", *manifest)
	}
	return nil
}

// clusterFlags is the flag set shared by bench and loadgen: either a
// manifest for a live cluster, or -selfhost N in-process MemDisk shards.
type clusterFlags struct {
	manifest         string
	selfhost         int
	unit             int64
	v, k, copies     int
	parity           int
	storeUnit, depth int
	flush            time.Duration
	retries          int
	backoff          time.Duration
	conns            int
	httpAddr         string
}

func addClusterFlags(fs *flag.FlagSet) *clusterFlags {
	cf := &clusterFlags{}
	fs.StringVar(&cf.manifest, "manifest", cluster.ManifestName, "manifest path")
	fs.IntVar(&cf.selfhost, "selfhost", 0, "host N in-process shards instead of reading -manifest")
	fs.Int64Var(&cf.unit, "unit", 65536, "shard-unit size for -selfhost")
	fs.IntVar(&cf.v, "v", 17, "disks per self-hosted shard")
	fs.IntVar(&cf.k, "k", 4, "parity stripe size per self-hosted shard")
	fs.IntVar(&cf.copies, "copies", 4, "layout copies per disk for -selfhost")
	fs.IntVar(&cf.parity, "parity", 1, "parity shards per stripe for -selfhost (1 = XOR, >1 = Reed-Solomon)")
	fs.IntVar(&cf.storeUnit, "store-unit", 4096, "array stripe-unit size for -selfhost")
	fs.IntVar(&cf.depth, "depth", serve.DefaultQueueDepth, "queue depth for -selfhost")
	fs.DurationVar(&cf.flush, "flush", serve.DefaultFlushDelay, "batch flush deadline for -selfhost")
	fs.IntVar(&cf.retries, "retries", cluster.DefaultRetries, "per-shard reconnect budget")
	fs.DurationVar(&cf.backoff, "backoff", cluster.DefaultRetryBackoff, "initial retry backoff")
	fs.IntVar(&cf.conns, "conns", 0, "TCP connections per shard (0 = CPU-aware default)")
	fs.StringVar(&cf.httpAddr, "http", "", "admin HTTP listen address for /metrics, /statusz, /healthz, /debug/pprof (empty: disabled)")
	return cf
}

// open yields a connected cluster client: from the manifest, or from
// -selfhost in-process shards (real TCP on loopback either way).
func (cf *clusterFlags) open() (*cluster.Client, func(), error) {
	cleanup := func() {}
	var man *cluster.Manifest
	if cf.selfhost > 0 {
		var err error
		man, cleanup, err = selfHost(cf)
		if err != nil {
			return nil, nil, err
		}
	} else {
		var err error
		man, err = cluster.ReadFile(cf.manifest)
		if err != nil {
			return nil, nil, err
		}
	}
	c, err := cluster.Open(man, cluster.Options{Retries: cf.retries, RetryBackoff: cf.backoff, Conns: cf.conns})
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	if cf.httpAddr != "" {
		hln, err := serveAdmin(cf.httpAddr, c)
		if err != nil {
			c.Close()
			cleanup()
			return nil, nil, err
		}
		inner := cleanup
		cleanup = func() { hln.Close(); inner() }
		fmt.Printf("admin http on %s\n", hln.Addr())
	}
	m := c.Map()
	fmt.Printf("cluster: %d shards, %s policy, %s namespace (unit %s)\n",
		m.Shards(), man.Policy, fmtBytes(m.Size()), fmtBytes(m.UnitBytes()))
	return c, func() { c.Close(); cleanup() }, nil
}

// serveAdmin starts the obs admin endpoint over the cluster client's
// per-shard metrics, with the shard map as a /statusz section.
func serveAdmin(addr string, c *cluster.Client) (net.Listener, error) {
	reg := obs.NewRegistry()
	c.RegisterMetrics(reg)
	h := obs.NewHandler(reg)
	h.AddStatus("cluster", func() any {
		m := c.Map()
		man := c.Manifest()
		return map[string]any{
			"shards":     m.Shards(),
			"policy":     man.Policy,
			"size_bytes": m.Size(),
			"unit_bytes": m.UnitBytes(),
			"shard_map":  man.Shards,
		}
	})
	h.AddStatus("shards", func() any { return c.Stats() })
	hln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go http.Serve(hln, h)
	return hln, nil
}

// selfHost stands up cf.selfhost MemDisk shards behind real TCP servers
// and a capacity manifest over them.
func selfHost(cf *clusterFlags) (*cluster.Manifest, func(), error) {
	if cf.unit%int64(cf.storeUnit) != 0 {
		return nil, nil, fmt.Errorf("selfhost: shard-unit %d is not a multiple of store unit %d", cf.unit, cf.storeUnit)
	}
	man := &cluster.Manifest{Version: cluster.FormatVersion, UnitBytes: cf.unit, Policy: cluster.ByCapacity}
	var closers []func()
	cleanup := func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	for i := 0; i < cf.selfhost; i++ {
		var opts []pdl.Option
		if cf.parity > 1 {
			opts = append(opts, pdl.WithParityShards(cf.parity))
		}
		res, err := pdl.Build(cf.v, cf.k, opts...)
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		s, err := store.Open(res, cf.copies*res.Layout.Size, cf.storeUnit, nil)
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		front := serve.New(s, serve.Config{QueueDepth: cf.depth, FlushDelay: cf.flush})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			front.Close()
			s.Close()
			cleanup()
			return nil, nil, err
		}
		srv := serve.NewServer(front)
		go srv.Serve(ln)
		closers = append(closers, func() { srv.Close(); front.Close(); s.Close() })
		n := s.Size() / cf.unit
		if n < 1 {
			cleanup()
			return nil, nil, fmt.Errorf("selfhost: shard holds %d B, less than one %d B shard-unit", s.Size(), cf.unit)
		}
		sh := cluster.ShardInfo{Addr: ln.Addr().String(), Units: n, State: cluster.ShardHealthy}
		if cf.parity > 1 {
			sh.Codec = s.Code().Name()
			sh.ParityShards = s.Code().ParityShards()
		}
		man.Shards = append(man.Shards, sh)
	}
	fmt.Printf("self-hosted %d shards (v=%d k=%d, %s each)\n",
		cf.selfhost, cf.v, cf.k, fmtBytes(man.Shards[0].Units*cf.unit))
	return man, cleanup, nil
}

func fmtBytes(n int64) string {
	if n < 10*units.BytesPerMB {
		return fmt.Sprintf("%.1f kB", float64(n)/1e3)
	}
	return fmt.Sprintf("%.1f MB", float64(n)/units.BytesPerMB)
}

// printShardStats renders the per-shard table bench and loadgen share.
func printShardStats(c *cluster.Client) {
	fmt.Printf("%-5s %-24s %-11s %8s %8s %9s %9s %9s %9s\n",
		"shard", "addr", "state", "ops", "retries", "p50", "p95", "p99", "mean")
	for s, st := range c.Stats() {
		fmt.Printf("%-5d %-24s %-11s %8d %8d %9v %9v %9v %9v\n",
			s, st.Addr, st.State, st.Ops, st.Retries,
			st.P50.Round(time.Microsecond), st.P95.Round(time.Microsecond),
			st.P99.Round(time.Microsecond), st.Mean.Round(time.Microsecond))
	}
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	clients := fs.Int("clients", 32, "concurrent client goroutines")
	span := fs.Int64("span", 65536, "bytes per operation")
	secs := fs.Float64("seconds", 2, "seconds per measurement")
	seed := fs.Int64("seed", 1, "bench seed (offsets every client's span stream)")
	cf := addClusterFlags(fs)
	fs.Parse(args)
	c, cleanup, err := cf.open()
	if err != nil {
		return err
	}
	defer cleanup()
	size := c.Size()
	unit := c.UnitBytes()
	if *span > size {
		return fmt.Errorf("bench: span %d exceeds namespace %d", *span, size)
	}
	spanSlots := (size - *span) / unit
	fmt.Printf("seed %d\n", *seed)

	run := func(name string, op func(p []byte, off int64) (int, error)) error {
		deadline := time.Now().Add(time.Duration(*secs * float64(time.Second)))
		var ops atomic.Int64
		var wg sync.WaitGroup
		errs := make(chan error, *clients)
		start := time.Now()
		for g := 0; g < *clients; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(*seed + int64(g)*7919 + 1))
				buf := make([]byte, *span)
				rng.Read(buf)
				for time.Now().Before(deadline) {
					off := rng.Int63n(spanSlots+1) * unit
					if _, err := op(buf, off); err != nil {
						errs <- err
						return
					}
					ops.Add(1)
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			return err
		}
		el := time.Since(start)
		fmt.Printf("%-8s %d clients x %s spans: %10.0f ops/s  %12s\n",
			name, *clients, fmtBytes(*span), float64(ops.Load())/el.Seconds(),
			units.FormatMBPerSec(ops.Load()**span, el))
		return nil
	}
	if err := run("write", c.WriteAt); err != nil {
		return err
	}
	if err := run("read", c.ReadAt); err != nil {
		return err
	}
	printShardStats(c)
	return nil
}

func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	clients := fs.Int("clients", 16, "concurrent client goroutines")
	ops := fs.Int("ops", 50000, "total operations to replay")
	span := fs.Int64("span", 65536, "max bytes per operation (spans are 1..span, unaligned)")
	writeFrac := fs.Float64("write-frac", 0.3, "write fraction")
	seed := fs.Int64("seed", 1, "workload seed")
	failShard := fs.Int("fail", -1, "mid-run: fail a disk on this shard and keep going")
	cf := addClusterFlags(fs)
	fs.Parse(args)
	c, cleanup, err := cf.open()
	if err != nil {
		return err
	}
	defer cleanup()
	size := c.Size()
	if *span > size {
		return fmt.Errorf("loadgen: span %d exceeds namespace %d", *span, size)
	}

	// Mid-run shard degradation: after ~1/3 of the ops, fail one disk on
	// the victim shard over the wire. The cluster keeps serving — that
	// shard reconstructs through parity; the rest are unaffected.
	var failAt int64 = -1
	if *failShard >= 0 {
		if *failShard >= c.Shards() {
			return fmt.Errorf("loadgen: -fail %d out of range (%d shards)", *failShard, c.Shards())
		}
		failAt = int64(*ops) / 3
	}
	var done atomic.Int64
	failOnce := sync.OnceFunc(func() {
		addr := c.Manifest().Shards[*failShard].Addr
		sc, err := dialTimeout(addr, 5*time.Second)
		if err != nil {
			fmt.Printf("fail shard %d: %v\n", *failShard, err)
			return
		}
		defer sc.Close()
		if err := sc.Fail(0); err != nil {
			fmt.Printf("fail shard %d: %v\n", *failShard, err)
			return
		}
		fmt.Printf("shard %d: disk 0 failed mid-run; serving degraded\n", *failShard)
	})

	perClient := *ops / *clients
	fmt.Printf("replaying %d ops over %d clients (seed %d)\n", *ops, *clients, *seed)
	var wg sync.WaitGroup
	errs := make(chan error, *clients)
	// One shared lock-free histogram replaces the per-client sample
	// slices: every goroutine records into it directly.
	var hist obs.Hist
	var reads, writes atomic.Int64
	start := time.Now()
	for g := 0; g < *clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(g)*0x9E37))
			buf := make([]byte, *span)
			rng.Read(buf)
			for i := 0; i < perClient; i++ {
				if d := done.Add(1); failAt >= 0 && d >= failAt {
					failOnce()
				}
				n := 1 + rng.Int63n(*span)
				off := rng.Int63n(size - n + 1)
				t0 := time.Now()
				var err error
				if rng.Float64() < *writeFrac {
					_, err = c.WriteAt(buf[:n], off)
					writes.Add(1)
				} else {
					_, err = c.ReadAt(buf[:n], off)
					reads.Add(1)
				}
				if err != nil {
					errs <- err
					return
				}
				hist.Record(time.Since(t0))
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	el := time.Since(start)

	sum := hist.Summary()
	total := reads.Load() + writes.Load()
	bytesMoved := total * (*span + 1) / 2 // spans are uniform on [1,span]
	fmt.Printf("%d ops (%d reads, %d writes) in %v: %10.0f ops/s  ~%s\n",
		total, reads.Load(), writes.Load(), el.Round(time.Millisecond),
		float64(total)/el.Seconds(), units.FormatMBPerSec(bytesMoved, el))
	fmt.Printf("span latency: p50 %v  p95 %v  p99 %v  mean %v\n",
		sum.P50.Round(time.Microsecond), sum.P95.Round(time.Microsecond),
		sum.P99.Round(time.Microsecond), sum.Mean.Round(time.Microsecond))
	printShardStats(c)
	return nil
}

// cmdScenario runs a versioned JSON fault schedule against the cluster
// and exits nonzero when a declared SLO is violated or verify mode
// catches a data mismatch. Disk fail and rebuild events reach their
// shard over the admin wire; kill/restart events need a process
// supervisor and are rejected here (use the scenariotest harness in Go
// tests for those).
func cmdScenario(args []string) error {
	fs := flag.NewFlagSet("scenario", flag.ExitOnError)
	file := fs.String("f", "", "schedule file (JSON, see pdl/scenario)")
	seed := fs.Uint64("seed", 0, "override the schedule's seed (0 = keep the file's)")
	opUnit := fs.Int64("op-unit", 0, "bytes per scenario op (0 = one shard-unit)")
	cf := addClusterFlags(fs)
	fs.Parse(args)
	if *file == "" {
		return fmt.Errorf("scenario: -f schedule.json required")
	}
	sc, err := scenario.ReadScheduleFile(*file)
	if err != nil {
		return err
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	c, cleanup, err := cf.open()
	if err != nil {
		return err
	}
	defer cleanup()
	tgt := scenario.NewClusterTarget(c, *opUnit)
	defer tgt.Close()
	fmt.Printf("running scenario %q (%d phases, seed %d, %s per op)\n",
		sc.Name, len(sc.Phases), sc.Seed, fmtBytes(tgt.Unit))
	rep, err := scenario.Run(sc, tgt)
	if rep != nil {
		rep.WriteText(os.Stdout)
	}
	return err
}
