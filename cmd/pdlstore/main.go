// Command pdlstore drives the pdl/store byte-serving engine end-to-end
// over a durable file-backed disk array (see pdl/store/array): create an
// array, write and read bytes, fail a disk (really scrubbing its file,
// with the failure persisted in the array manifest), serve degraded,
// rebuild the lost disk from survivor XOR, verify parity, and
// micro-benchmark throughput.
//
// Usage:
//
//	pdlstore init -dir a17 -v 17 -k 4 -copies 4 -unit 4096
//	pdlstore write -dir a17 -at 0 -data 'hello declustered world'
//	pdlstore read -dir a17 -at 0 -n 23
//	pdlstore fail -dir a17 -disk 3
//	pdlstore read -dir a17 -at 0 -n 23        # served degraded
//	pdlstore rebuild -dir a17
//	pdlstore verify -dir a17
//	pdlstore bench -dir a17 -backend mmap
//
// Every subcommand takes -backend file|mmap to pick the per-disk
// Backend; the array directory format is backend-agnostic, so the same
// array can be served either way (or by `pdlserve serve -dir`).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/cmd/internal/units"
	"repro/pdl/store"
	"repro/pdl/store/array"
)

func main() {
	if len(os.Args) < 2 {
		die(fmt.Errorf("usage: pdlstore <init|write|read|fail|rebuild|verify|bench> [flags]"))
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "init":
		err = cmdInit(args)
	case "write":
		err = cmdWrite(args)
	case "read":
		err = cmdRead(args)
	case "fail":
		err = cmdFail(args)
	case "rebuild":
		err = cmdRebuild(args)
	case "verify":
		err = cmdVerify(args)
	case "bench":
		err = cmdBench(args)
	default:
		err = fmt.Errorf("unknown subcommand %q", cmd)
	}
	if err != nil {
		die(err)
	}
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "pdlstore:", err)
	os.Exit(1)
}

// addBackendFlag registers the shared -backend flag.
func addBackendFlag(fs *flag.FlagSet) *string {
	return fs.String("backend", string(array.File), "per-disk backend: file|mmap")
}

// openArray opens dir with the selected backend.
func openArray(dir, backend string) (*array.Array, error) {
	if dir == "" {
		return nil, fmt.Errorf("-dir required")
	}
	kind, err := array.ParseBackend(backend)
	if err != nil {
		return nil, err
	}
	return array.Open(dir, array.WithBackend(kind))
}

func cmdInit(args []string) error {
	fs := flag.NewFlagSet("init", flag.ExitOnError)
	dir := fs.String("dir", "", "array directory (created)")
	v := fs.Int("v", 17, "number of disks")
	k := fs.Int("k", 4, "parity stripe size")
	copies := fs.Int("copies", 1, "layout copies per disk")
	unit := fs.Int("unit", 4096, "unit size in bytes")
	method := fs.String("method", "", "construction method (default: automatic)")
	parity := fs.Int("parity", 1, "parity shards per stripe (1 = XOR, >1 = Reed-Solomon, tolerating that many disk failures)")
	backend := addBackendFlag(fs)
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("init: -dir required")
	}
	kind, err := array.ParseBackend(*backend)
	if err != nil {
		return err
	}
	arr, err := array.Create(*dir, array.CreateOptions{
		V: *v, K: *k, Copies: *copies, UnitSize: *unit, Method: *method, Backend: kind,
		ParityShards: *parity,
	})
	if err != nil {
		return err
	}
	defer arr.Close()
	m := arr.Manifest()
	c := arr.Store().Code()
	fmt.Printf("initialized %s: method %s, codec %s/%d, %d disks x %d units x %d B (logical capacity %d B)\n",
		*dir, m.Method, c.Name(), c.ParityShards(), m.V, m.DiskUnits, m.UnitSize, arr.Store().Size())
	return nil
}

func cmdWrite(args []string) error {
	fs := flag.NewFlagSet("write", flag.ExitOnError)
	dir := fs.String("dir", "", "array directory")
	at := fs.Int64("at", 0, "logical byte offset")
	data := fs.String("data", "", "literal bytes to write")
	file := fs.String("file", "", "file to write (default stdin when -data empty)")
	backend := addBackendFlag(fs)
	fs.Parse(args)
	var p []byte
	switch {
	case *data != "":
		p = []byte(*data)
	case *file != "":
		b, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		p = b
	default:
		b, err := io.ReadAll(os.Stdin)
		if err != nil {
			return err
		}
		p = b
	}
	arr, err := openArray(*dir, *backend)
	if err != nil {
		return err
	}
	defer arr.Close()
	n, err := arr.Store().WriteAt(p, *at)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d bytes at %d%s\n", n, *at, degradedTag(arr.Store()))
	return nil
}

func cmdRead(args []string) error {
	fs := flag.NewFlagSet("read", flag.ExitOnError)
	dir := fs.String("dir", "", "array directory")
	at := fs.Int64("at", 0, "logical byte offset")
	n := fs.Int("n", 0, "bytes to read (0 = to end)")
	out := fs.String("o", "", "output file (default stdout)")
	backend := addBackendFlag(fs)
	fs.Parse(args)
	arr, err := openArray(*dir, *backend)
	if err != nil {
		return err
	}
	defer arr.Close()
	s := arr.Store()
	if *at < 0 || *at >= s.Size() {
		return fmt.Errorf("read: offset %d outside store of %d bytes", *at, s.Size())
	}
	count := int64(*n)
	if count <= 0 || count > s.Size()-*at {
		count = s.Size() - *at
	}
	p := make([]byte, count)
	read, err := s.ReadAt(p, *at)
	if err != nil && err != io.EOF {
		return err
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if _, err := w.Write(p[:read]); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "read %d bytes at %d%s\n", read, *at, degradedTag(s))
	return nil
}

func degradedTag(s *store.Store) string {
	switch failed := s.FailedDisks(); len(failed) {
	case 0:
		return ""
	case 1:
		return fmt.Sprintf(" (degraded: disk %d down)", failed[0])
	default:
		return fmt.Sprintf(" (degraded: disks %v down)", failed)
	}
}

func cmdFail(args []string) error {
	fs := flag.NewFlagSet("fail", flag.ExitOnError)
	dir := fs.String("dir", "", "array directory")
	disk := fs.Int("disk", -1, "disk to fail")
	backend := addBackendFlag(fs)
	fs.Parse(args)
	if *disk < 0 {
		return fmt.Errorf("fail: -disk required")
	}
	arr, err := openArray(*dir, *backend)
	if err != nil {
		return err
	}
	defer arr.Close()
	// array.Fail scrubs the disk file and persists the failure in the
	// manifest, so a restart keeps serving degraded instead of reading
	// scrubbed zeros as data.
	if err := arr.Fail(*disk); err != nil {
		return err
	}
	fmt.Printf("disk %d failed and scrubbed; array now serves degraded\n", *disk)
	return nil
}

func cmdRebuild(args []string) error {
	fs := flag.NewFlagSet("rebuild", flag.ExitOnError)
	dir := fs.String("dir", "", "array directory")
	backend := addBackendFlag(fs)
	fs.Parse(args)
	arr, err := openArray(*dir, *backend)
	if err != nil {
		return err
	}
	defer arr.Close()
	failed := arr.Store().Failed()
	elapsed, err := arr.Rebuild()
	if err != nil {
		return err
	}
	m := arr.Manifest()
	diskBytes := int64(m.DiskUnits) * int64(m.UnitSize)
	fmt.Printf("rebuilt disk %d: %d bytes in %v (%s)\n",
		failed, diskBytes, elapsed.Round(time.Millisecond), units.FormatMBPerSec(diskBytes, elapsed))
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	dir := fs.String("dir", "", "array directory")
	backend := addBackendFlag(fs)
	fs.Parse(args)
	arr, err := openArray(*dir, *backend)
	if err != nil {
		return err
	}
	defer arr.Close()
	if err := arr.Store().VerifyParity(); err != nil {
		return err
	}
	if f := arr.Store().Failed(); f >= 0 {
		fmt.Printf("parity OK on all stripes not crossing failed disk %d\n", f)
	} else {
		fmt.Println("parity OK on all stripes")
	}
	return nil
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	dir := fs.String("dir", "", "array directory")
	secs := fs.Float64("seconds", 1, "seconds per measurement")
	backend := addBackendFlag(fs)
	fs.Parse(args)
	arr, err := openArray(*dir, *backend)
	if err != nil {
		return err
	}
	defer arr.Close()
	s := arr.Store()
	unit := s.UnitSize()
	buf := make([]byte, unit)
	// The write phase scribbles over the array; snapshot the logical
	// contents first and restore them after, so bench is non-destructive.
	saved := make([]byte, s.Size())
	if _, err := s.ReadAt(saved, 0); err != nil {
		return err
	}
	defer func() {
		if _, err := s.WriteAt(saved, 0); err != nil {
			fmt.Fprintln(os.Stderr, "pdlstore: bench: restoring contents:", err)
		}
	}()
	// Rates are decimal MB/s (1 MB = 1e6 B), matching `go test -bench`
	// and BENCH_*.json; see repro/cmd/internal/units.
	run := func(name string, op func(i int) error) error {
		deadline := time.Now().Add(time.Duration(*secs * float64(time.Second)))
		var ops int64
		start := time.Now()
		for i := 0; time.Now().Before(deadline); i++ {
			if err := op(i % s.Capacity()); err != nil {
				return err
			}
			ops++
		}
		el := time.Since(start)
		fmt.Printf("%-16s %10.0f ops/s  %12s\n", name, float64(ops)/el.Seconds(), units.FormatMBPerSec(ops*int64(unit), el))
		return nil
	}
	if err := run("read", func(i int) error { return s.Read(i, buf) }); err != nil {
		return err
	}
	return run("write", func(i int) error { return s.Write(i, buf) })
}
