// Command pdlstore drives the pdl/store byte-serving engine end-to-end
// over a file-backed disk array: create an array, write and read bytes,
// fail a disk (really scrubbing its file), serve degraded, rebuild the
// lost disk from survivor XOR, verify parity, and micro-benchmark
// throughput.
//
// Usage:
//
//	pdlstore init -dir a17 -v 17 -k 4 -copies 4 -unit 4096
//	pdlstore write -dir a17 -at 0 -data 'hello declustered world'
//	pdlstore read -dir a17 -at 0 -n 23
//	pdlstore fail -dir a17 -disk 3
//	pdlstore read -dir a17 -at 0 -n 23        # served degraded
//	pdlstore rebuild -dir a17
//	pdlstore verify -dir a17
//	pdlstore bench -dir a17
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/cmd/internal/units"
	"repro/pdl"
	"repro/pdl/layout"
	"repro/pdl/store"
)

// meta is the on-disk array descriptor next to layout.json.
type meta struct {
	Version   int    `json:"version"`
	Method    string `json:"method"`
	UnitSize  int    `json:"unit_size"`
	DiskUnits int    `json:"disk_units"`
	Failed    int    `json:"failed"` // -1 = healthy
}

func main() {
	if len(os.Args) < 2 {
		die(fmt.Errorf("usage: pdlstore <init|write|read|fail|rebuild|verify|bench> [flags]"))
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "init":
		err = cmdInit(args)
	case "write":
		err = cmdWrite(args)
	case "read":
		err = cmdRead(args)
	case "fail":
		err = cmdFail(args)
	case "rebuild":
		err = cmdRebuild(args)
	case "verify":
		err = cmdVerify(args)
	case "bench":
		err = cmdBench(args)
	default:
		err = fmt.Errorf("unknown subcommand %q", cmd)
	}
	if err != nil {
		die(err)
	}
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "pdlstore:", err)
	os.Exit(1)
}

func diskPath(dir string, d int) string { return filepath.Join(dir, fmt.Sprintf("disk%02d.dat", d)) }

func writeMeta(dir string, m *meta) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "meta.json"), append(b, '\n'), 0o644)
}

func readMeta(dir string) (*meta, error) {
	b, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return nil, err
	}
	m := &meta{}
	if err := json.Unmarshal(b, m); err != nil {
		return nil, fmt.Errorf("meta.json: %w", err)
	}
	return m, nil
}

func cmdInit(args []string) error {
	fs := flag.NewFlagSet("init", flag.ExitOnError)
	dir := fs.String("dir", "", "array directory (created)")
	v := fs.Int("v", 17, "number of disks")
	k := fs.Int("k", 4, "parity stripe size")
	copies := fs.Int("copies", 1, "layout copies per disk")
	unit := fs.Int("unit", 4096, "unit size in bytes")
	method := fs.String("method", "", "construction method (default: automatic)")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("init: -dir required")
	}
	var opts []pdl.Option
	if *method != "" {
		opts = append(opts, pdl.WithMethod(*method))
	}
	res, err := pdl.Build(*v, *k, opts...)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	lf, err := os.Create(filepath.Join(*dir, "layout.json"))
	if err != nil {
		return err
	}
	if err := res.Layout.WriteJSON(lf); err != nil {
		lf.Close()
		return err
	}
	if err := lf.Close(); err != nil {
		return err
	}
	diskUnits := *copies * res.Layout.Size
	diskBytes := int64(diskUnits) * int64(*unit)
	for d := 0; d < *v; d++ {
		fd, err := store.CreateFileDisk(diskPath(*dir, d), diskBytes)
		if err != nil {
			return err
		}
		if err := fd.Close(); err != nil {
			return err
		}
	}
	if err := writeMeta(*dir, &meta{Version: 1, Method: res.Method, UnitSize: *unit, DiskUnits: diskUnits, Failed: -1}); err != nil {
		return err
	}
	s, err := openStore(*dir)
	if err != nil {
		return err
	}
	defer s.Close()
	fmt.Printf("initialized %s: method %s, %d disks x %d units x %d B (logical capacity %d B)\n",
		*dir, res.Method, *v, diskUnits, *unit, s.Size())
	return nil
}

// openStore opens the array directory as a Store over FileDisks, with
// the persisted failure state applied.
func openStore(dir string) (*store.Store, error) {
	m, err := readMeta(dir)
	if err != nil {
		return nil, err
	}
	lf, err := os.Open(filepath.Join(dir, "layout.json"))
	if err != nil {
		return nil, err
	}
	l, err := layout.ReadJSON(lf)
	lf.Close()
	if err != nil {
		return nil, err
	}
	mapper, err := pdl.NewMapper(l, m.DiskUnits)
	if err != nil {
		return nil, err
	}
	backends := make([]store.Backend, l.V)
	for d := range backends {
		fd, err := store.OpenFileDisk(diskPath(dir, d))
		if err != nil {
			return nil, err
		}
		backends[d] = fd
	}
	s, err := store.New(mapper, m.UnitSize, backends)
	if err != nil {
		return nil, err
	}
	if m.Failed >= 0 {
		if err := s.Fail(m.Failed); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

func cmdWrite(args []string) error {
	fs := flag.NewFlagSet("write", flag.ExitOnError)
	dir := fs.String("dir", "", "array directory")
	at := fs.Int64("at", 0, "logical byte offset")
	data := fs.String("data", "", "literal bytes to write")
	file := fs.String("file", "", "file to write (default stdin when -data empty)")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("write: -dir required")
	}
	var p []byte
	switch {
	case *data != "":
		p = []byte(*data)
	case *file != "":
		b, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		p = b
	default:
		b, err := io.ReadAll(os.Stdin)
		if err != nil {
			return err
		}
		p = b
	}
	s, err := openStore(*dir)
	if err != nil {
		return err
	}
	defer s.Close()
	n, err := s.WriteAt(p, *at)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d bytes at %d%s\n", n, *at, degradedTag(s))
	return nil
}

func cmdRead(args []string) error {
	fs := flag.NewFlagSet("read", flag.ExitOnError)
	dir := fs.String("dir", "", "array directory")
	at := fs.Int64("at", 0, "logical byte offset")
	n := fs.Int("n", 0, "bytes to read (0 = to end)")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("read: -dir required")
	}
	s, err := openStore(*dir)
	if err != nil {
		return err
	}
	defer s.Close()
	if *at < 0 || *at >= s.Size() {
		return fmt.Errorf("read: offset %d outside store of %d bytes", *at, s.Size())
	}
	count := int64(*n)
	if count <= 0 || count > s.Size()-*at {
		count = s.Size() - *at
	}
	p := make([]byte, count)
	read, err := s.ReadAt(p, *at)
	if err != nil && err != io.EOF {
		return err
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if _, err := w.Write(p[:read]); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "read %d bytes at %d%s\n", read, *at, degradedTag(s))
	return nil
}

func degradedTag(s *store.Store) string {
	if f := s.Failed(); f >= 0 {
		return fmt.Sprintf(" (degraded: disk %d down)", f)
	}
	return ""
}

func cmdFail(args []string) error {
	fs := flag.NewFlagSet("fail", flag.ExitOnError)
	dir := fs.String("dir", "", "array directory")
	disk := fs.Int("disk", -1, "disk to fail")
	fs.Parse(args)
	if *dir == "" || *disk < 0 {
		return fmt.Errorf("fail: -dir and -disk required")
	}
	m, err := readMeta(*dir)
	if err != nil {
		return err
	}
	if m.Failed >= 0 {
		return fmt.Errorf("disk %d already failed", m.Failed)
	}
	// Scrub the file so the bytes are genuinely gone: everything served
	// from now on comes from survivor XOR.
	st, err := os.Stat(diskPath(*dir, *disk))
	if err != nil {
		return err
	}
	fd, err := store.CreateFileDisk(diskPath(*dir, *disk), st.Size())
	if err != nil {
		return err
	}
	if err := fd.Close(); err != nil {
		return err
	}
	m.Failed = *disk
	if err := writeMeta(*dir, m); err != nil {
		return err
	}
	fmt.Printf("disk %d failed and scrubbed; array now serves degraded\n", *disk)
	return nil
}

func cmdRebuild(args []string) error {
	fs := flag.NewFlagSet("rebuild", flag.ExitOnError)
	dir := fs.String("dir", "", "array directory")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("rebuild: -dir required")
	}
	m, err := readMeta(*dir)
	if err != nil {
		return err
	}
	if m.Failed < 0 {
		return fmt.Errorf("no failed disk to rebuild")
	}
	s, err := openStore(*dir)
	if err != nil {
		return err
	}
	diskBytes := int64(m.DiskUnits) * int64(m.UnitSize)
	tmp := diskPath(*dir, m.Failed) + ".rebuild"
	replacement, err := store.CreateFileDisk(tmp, diskBytes)
	if err != nil {
		s.Close()
		return err
	}
	start := time.Now()
	if err := s.Rebuild(replacement); err != nil {
		s.Close()
		return err
	}
	elapsed := time.Since(start)
	if err := s.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, diskPath(*dir, m.Failed)); err != nil {
		return err
	}
	failed := m.Failed
	m.Failed = -1
	if err := writeMeta(*dir, m); err != nil {
		return err
	}
	fmt.Printf("rebuilt disk %d: %d bytes in %v (%s)\n",
		failed, diskBytes, elapsed.Round(time.Millisecond), units.FormatMBPerSec(diskBytes, elapsed))
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	dir := fs.String("dir", "", "array directory")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("verify: -dir required")
	}
	s, err := openStore(*dir)
	if err != nil {
		return err
	}
	defer s.Close()
	if err := s.VerifyParity(); err != nil {
		return err
	}
	if f := s.Failed(); f >= 0 {
		fmt.Printf("parity OK on all stripes not crossing failed disk %d\n", f)
	} else {
		fmt.Println("parity OK on all stripes")
	}
	return nil
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	dir := fs.String("dir", "", "array directory")
	secs := fs.Float64("seconds", 1, "seconds per measurement")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("bench: -dir required")
	}
	s, err := openStore(*dir)
	if err != nil {
		return err
	}
	defer s.Close()
	unit := s.UnitSize()
	buf := make([]byte, unit)
	// The write phase scribbles over the array; snapshot the logical
	// contents first and restore them after, so bench is non-destructive.
	saved := make([]byte, s.Size())
	if _, err := s.ReadAt(saved, 0); err != nil {
		return err
	}
	defer func() {
		if _, err := s.WriteAt(saved, 0); err != nil {
			fmt.Fprintln(os.Stderr, "pdlstore: bench: restoring contents:", err)
		}
	}()
	// Rates are decimal MB/s (1 MB = 1e6 B), matching `go test -bench`
	// and BENCH_*.json; see repro/cmd/internal/units.
	run := func(name string, op func(i int) error) error {
		deadline := time.Now().Add(time.Duration(*secs * float64(time.Second)))
		var ops int64
		start := time.Now()
		for i := 0; time.Now().Before(deadline); i++ {
			if err := op(i % s.Capacity()); err != nil {
				return err
			}
			ops++
		}
		el := time.Since(start)
		fmt.Printf("%-16s %10.0f ops/s  %12s\n", name, float64(ops)/el.Seconds(), units.FormatMBPerSec(ops*int64(unit), el))
		return nil
	}
	if err := run("read", func(i int) error { return s.Read(i, buf) }); err != nil {
		return err
	}
	return run("write", func(i int) error { return s.Write(i, buf) })
}
