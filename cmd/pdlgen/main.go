// Command pdlgen generates parity-declustered layouts and writes them as
// JSON (or a human-readable grid).
//
// Usage:
//
//	pdlgen -v 24 -k 5 [-method auto|ring|stairway|balanced-bibd|holland-gibson|removal|raid5|random] [-grid] [-o layout.json]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/pdl"
	"repro/pdl/layout"
)

func main() {
	v := flag.Int("v", 8, "number of disks")
	k := flag.Int("k", 4, "parity stripe size")
	method := flag.String("method", "auto", "construction: auto or any registered method (ring|stairway|balanced-bibd|holland-gibson|removal|raid5|random)")
	rows := flag.Int("rows", 0, "rows for raid5/random (default: match ring layout size)")
	seed := flag.Uint64("seed", 1, "seed for random layouts")
	grid := flag.Bool("grid", false, "print the layout grid instead of JSON")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var opts []pdl.Option
	switch *method {
	case "auto":
	case "hg": // legacy alias
		opts = append(opts, pdl.WithMethod("holland-gibson"))
	case "balanced": // legacy alias
		opts = append(opts, pdl.WithMethod("balanced-bibd"))
	default:
		opts = append(opts, pdl.WithMethod(*method))
	}
	// Forward -rows/-seed whenever the user set them (or the method
	// consumes them), so Build can reject them on methods that would
	// silently ignore them.
	rowsSet := *rows != 0
	seedSet := *method == "random"
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "rows":
			rowsSet = true
		case "seed":
			seedSet = true
		}
	})
	if rowsSet {
		opts = append(opts, pdl.WithRows(*rows))
	}
	if seedSet {
		opts = append(opts, pdl.WithSeed(*seed))
	}
	res, err := pdl.Build(*v, *k, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdlgen:", err)
		os.Exit(1)
	}
	l := res.Layout
	fmt.Fprintf(os.Stderr, "pdlgen: built %s layout for v=%d k=%d (size %d)\n", res.Method, *v, *k, l.Size)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pdlgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if *grid {
		printGrid(w, l)
		return
	}
	if err := l.WriteJSON(w); err != nil {
		fmt.Fprintln(os.Stderr, "pdlgen:", err)
		os.Exit(1)
	}
}

func printGrid(w *os.File, l *layout.Layout) {
	for _, row := range l.RenderGrid() {
		for d, c := range row {
			if d > 0 {
				fmt.Fprint(w, "\t")
			}
			fmt.Fprint(w, c)
		}
		fmt.Fprintln(w)
	}
}
