// Command pdlgen generates parity-declustered layouts and writes them as
// JSON (or a human-readable grid).
//
// Usage:
//
//	pdlgen -v 24 -k 5 [-method auto|ring|hg|balanced|raid5|random] [-grid] [-o layout.json]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/baseline"
	"repro/internal/layout"
)

func main() {
	v := flag.Int("v", 8, "number of disks")
	k := flag.Int("k", 4, "parity stripe size")
	method := flag.String("method", "auto", "construction: auto|ring|hg|balanced|raid5|random")
	rows := flag.Int("rows", 0, "rows for raid5/random (default: match ring layout size)")
	seed := flag.Uint64("seed", 1, "seed for random layouts")
	grid := flag.Bool("grid", false, "print the layout grid instead of JSON")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	l, how, err := build(*method, *v, *k, *rows, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdlgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "pdlgen: built %s layout for v=%d k=%d (size %d)\n", how, *v, *k, l.Size)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pdlgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if *grid {
		printGrid(w, l)
		return
	}
	if err := l.WriteJSON(w); err != nil {
		fmt.Fprintln(os.Stderr, "pdlgen:", err)
		os.Exit(1)
	}
}

func build(method string, v, k, rows int, seed uint64) (*layout.Layout, string, error) {
	switch method {
	case "auto":
		return repro.Layout(v, k)
	case "ring":
		l, err := repro.RingLayout(v, k)
		return l, "ring", err
	case "hg":
		l, err := repro.HollandGibsonLayout(v, k)
		return l, "holland-gibson", err
	case "balanced":
		l, err := repro.BalancedLayout(v, k)
		return l, "flow-balanced", err
	case "raid5":
		if rows == 0 {
			rows = k * (v - 1)
		}
		l, err := baseline.RAID5(v, rows)
		return l, "raid5", err
	case "random":
		if rows == 0 {
			rows = k * (v - 1)
		}
		l, err := baseline.Random(v, k, rows, seed)
		return l, "random", err
	default:
		return nil, "", fmt.Errorf("unknown method %q", method)
	}
}

func printGrid(w *os.File, l *layout.Layout) {
	for _, row := range l.RenderGrid() {
		for d, c := range row {
			if d > 0 {
				fmt.Fprint(w, "\t")
			}
			fmt.Fprint(w, c)
		}
		fmt.Fprintln(w)
	}
}
