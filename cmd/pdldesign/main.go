// Command pdldesign constructs and verifies balanced incomplete block
// designs: the combinatorial objects underlying parity-declustered
// layouts.
//
// Usage:
//
//	pdldesign -v 16 -k 4                       # best known design
//	pdldesign -v 27 -k 3 -method subfield      # Theorem 6 λ=1 design
//	pdldesign -v 13 -k 4 -method thm4 -blocks  # print the blocks
//	pdldesign -v 9 -k 3 -resolve               # find parallel classes
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/pdl/design"
)

func main() {
	v := flag.Int("v", 7, "number of elements (disks)")
	k := flag.Int("k", 3, "block (stripe) size")
	method := flag.String("method", "known", "known|ring|thm4|thm5|subfield|complete")
	blocks := flag.Bool("blocks", false, "print the blocks")
	resolve := flag.Bool("resolve", false, "attempt to resolve into parallel classes")
	flag.Parse()

	d, how, err := design.Build(*method, *v, *k)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdldesign:", err)
		os.Exit(1)
	}
	b, r, lambda, ok := d.Params()
	if !ok {
		fmt.Fprintf(os.Stderr, "pdldesign: %s construction produced an invalid design: %v\n", how, d.Verify())
		os.Exit(1)
	}
	fmt.Printf("%s design: v=%d k=%d b=%d r=%d λ=%d\n", how, d.V, d.K, b, r, lambda)
	fmt.Printf("theorem 7 lower bound on b: %d (achieved: %v)\n", design.MinB(d.V, d.K), b == design.MinB(d.V, d.K))
	if *blocks {
		for i, tuple := range d.Tuples {
			fmt.Printf("%4d: %v\n", i, tuple)
		}
	}
	if *resolve {
		classes, ok := design.Resolve(d, 10_000_000)
		if !ok {
			fmt.Println("resolution: none found (design may not be resolvable)")
			return
		}
		fmt.Printf("resolution: %d parallel classes\n", len(classes))
		for i, class := range classes {
			fmt.Printf("  class %d: blocks %v\n", i, class)
		}
	}
}
