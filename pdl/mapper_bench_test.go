package pdl

import (
	"testing"

	"repro/pdl/layout"
)

// benchMapper builds the benchmark geometry: a (17, 4) ring layout tiled
// 4 copies per disk.
func benchMapper(b *testing.B) Mapper {
	b.Helper()
	res, err := Build(17, 4)
	if err != nil {
		b.Fatal(err)
	}
	m, err := NewMapper(res.Layout, 4*res.Layout.Size)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkMapperMap measures the healthy-path translation: one table
// lookup plus constant arithmetic, 0 allocs/op.
func BenchmarkMapperMap(b *testing.B) {
	m := benchMapper(b)
	n := m.DataUnits()
	b.ReportAllocs()
	b.ResetTimer()
	var acc int
	for i := 0; i < b.N; i++ {
		u, err := m.Map(i % n)
		if err != nil {
			b.Fatal(err)
		}
		acc += u.Disk
	}
	_ = acc
}

// BenchmarkMapperMapRange measures the batched translation of 64
// consecutive addresses into a reused slice, 0 allocs/op.
func BenchmarkMapperMapRange(b *testing.B) {
	m := benchMapper(b)
	n := m.DataUnits() - 64
	buf := make([]layout.Unit, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = m.MapRange(buf[:0], i%n, 64)
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = buf
}

// BenchmarkMapperDegradedMap measures the allocating degraded lookup (a
// fresh survivor slice per call) — the baseline AppendSurvivors removes.
func BenchmarkMapperDegradedMap(b *testing.B) {
	m := benchMapper(b)
	n := m.DataUnits()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.DegradedMap(i%n, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMapperAppendSurvivors measures the zero-allocation degraded
// lookup: survivors appended into a reused buffer, 0 allocs/op.
func BenchmarkMapperAppendSurvivors(b *testing.B) {
	m := benchMapper(b)
	n := m.DataUnits()
	buf := make([]layout.Unit, 0, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, _, _, err = m.AppendSurvivors(buf[:0], i%n, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = buf
}
