package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Hist is a fixed, lock-free latency histogram: one power-of-two
// nanosecond bucket per bit length. It stores no samples, so a long-lived
// server records forever in O(1) memory with a single atomic add per
// observation — nothing on a hot path allocates or locks for it. The
// zero value is ready to use.
//
// Recording and reading follow an ordering contract that makes reports
// consistent without a lock: Record lands the observation's bucket before
// its count, and Load reads the count before any bucket. Every
// observation a snapshot counts is therefore already present in its
// bucket copy, so a percentile rank never runs off the end of the
// buckets — the audit that replaced the per-package histogram copies
// (see HistSnapshot.Percentile).
type Hist struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// histBuckets is one bucket per nanosecond bit length.
const histBuckets = 64

// Record adds one observation. Durations below 1ns clamp to 1ns, so an
// instant observation still lands in the first bucket.
func (h *Hist) Record(d time.Duration) { h.RecordNanos(d.Nanoseconds()) }

// RecordNanos is Record for a raw nanosecond count.
func (h *Hist) RecordNanos(ns int64) {
	if ns < 1 {
		ns = 1
	}
	// Bucket strictly before count: Load reads count first, so any
	// observation it counts is already in its bucket copy.
	h.buckets[bits.Len64(uint64(ns))-1].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of observations.
func (h *Hist) Count() int64 { return h.count.Load() }

// HistSnapshot is a point-in-time copy of a Hist, cheap enough to sit on
// a stack. Buckets[b] counts observations with nanosecond bit length b+1,
// i.e. durations in [2^b, 2^(b+1)) ns.
type HistSnapshot struct {
	// Count is the observation count; SumNanos their nanosecond total.
	// Under concurrent recording the bucket sum may exceed Count (see
	// Hist), never the reverse.
	Count, SumNanos int64

	Buckets [histBuckets]int64
}

// Load copies the histogram's current state into s. Count is read before
// the buckets, so sum(s.Buckets) >= s.Count always holds — percentile
// ranks computed from s.Count are guaranteed to resolve inside the
// buckets even while other goroutines record.
func (h *Hist) Load(s *HistSnapshot) {
	s.Count = h.count.Load()
	s.SumNanos = h.sum.Load()
	for b := range h.buckets {
		s.Buckets[b] = h.buckets[b].Load()
	}
}

// bucketUpper is bucket b's upper bound in nanoseconds, saturating at
// 2^62 so the top buckets cannot overflow a Duration.
func bucketUpper(b int) time.Duration {
	if b >= 61 {
		return time.Duration(int64(1) << 62)
	}
	return time.Duration(int64(1) << (b + 1))
}

// Percentile returns the p-th percentile (0 < p <= 100) by nearest rank,
// resolved to its bucket's upper bound (a conservative estimate within
// 2x), or 0 with no observations.
func (s *HistSnapshot) Percentile(p float64) time.Duration {
	if s.Count == 0 || p <= 0 || p > 100 {
		return 0
	}
	rank := int64(p/100*float64(s.Count) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for b := range s.Buckets {
		seen += s.Buckets[b]
		if seen >= rank {
			return bucketUpper(b)
		}
	}
	// Unreachable under the Load ordering contract; kept so a
	// hand-assembled snapshot still answers.
	return bucketUpper(histBuckets - 1)
}

// Sub returns the window between two snapshots of one Hist: the
// observations recorded after prev was loaded and before s was. It is
// how a phase-scoped report is carved out of a histogram that records
// for the process's whole life (the scenario engine snapshots at every
// phase boundary and reports the deltas). prev must be the earlier
// snapshot of the same Hist; each bucket is clamped at zero so a
// mismatched pair degrades to an empty window instead of nonsense.
//
// Under concurrent recording the earlier snapshot may hold bucket
// increments whose count landed after it (see Hist's ordering
// contract), so the window's Count is clamped to its bucket total —
// Percentile ranks still resolve inside the buckets.
func (s *HistSnapshot) Sub(prev *HistSnapshot) HistSnapshot {
	var out HistSnapshot
	var bucketSum int64
	for b := range s.Buckets {
		if d := s.Buckets[b] - prev.Buckets[b]; d > 0 {
			out.Buckets[b] = d
			bucketSum += d
		}
	}
	out.Count = s.Count - prev.Count
	if out.Count < 0 {
		out.Count = 0
	}
	if out.Count > bucketSum {
		out.Count = bucketSum
	}
	if out.SumNanos = s.SumNanos - prev.SumNanos; out.SumNanos < 0 {
		out.SumNanos = 0
	}
	return out
}

// Merge adds other's observations into s, so one report can summarize
// several histograms (say, a phase's reads and writes together).
func (s *HistSnapshot) Merge(other *HistSnapshot) {
	s.Count += other.Count
	s.SumNanos += other.SumNanos
	for b := range s.Buckets {
		s.Buckets[b] += other.Buckets[b]
	}
}

// Summary condenses the snapshot the same way Hist.Summary does.
func (s *HistSnapshot) Summary() Summary {
	return Summary{
		Count: s.Count,
		P50:   s.Percentile(50),
		P95:   s.Percentile(95),
		P99:   s.Percentile(99),
		Mean:  s.Mean(),
	}
}

// Mean returns the average observed duration, or 0 with no observations.
func (s *HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNanos / s.Count)
}

// Percentile is HistSnapshot.Percentile over a fresh snapshot.
func (h *Hist) Percentile(p float64) time.Duration {
	var s HistSnapshot
	h.Load(&s)
	return s.Percentile(p)
}

// Mean is HistSnapshot.Mean over a fresh snapshot.
func (h *Hist) Mean() time.Duration {
	var s HistSnapshot
	h.Load(&s)
	return s.Mean()
}

// Summary condenses a histogram for reports: observation count, the
// standard percentile triple, and the mean, all from one snapshot.
type Summary struct {
	Count int64         `json:"count"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
	Mean  time.Duration `json:"mean_ns"`
}

// Summary reports the histogram's current Summary.
func (h *Hist) Summary() Summary {
	var s HistSnapshot
	h.Load(&s)
	return Summary{
		Count: s.Count,
		P50:   s.Percentile(50),
		P95:   s.Percentile(95),
		P99:   s.Percentile(99),
		Mean:  s.Mean(),
	}
}
