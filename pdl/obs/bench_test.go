package obs

import (
	"io"
	"strconv"
	"testing"
)

func BenchmarkObsHistRecord(b *testing.B) {
	var h Hist
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.RecordNanos(int64(i | 1))
	}
}

func BenchmarkObsCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkObsWritePrometheus is the scrape cost for a registry the size
// of an instrumented pdlserve (per-disk counters plus histograms).
func BenchmarkObsWritePrometheus(b *testing.B) {
	r := NewRegistry()
	for d := 0; d < 17; d++ {
		lbl := Label{Key: "disk", Value: strconv.Itoa(d)}
		r.Counter("pdl_bench_reads_total", "t.", lbl).Add(int64(d))
		r.Counter("pdl_bench_writes_total", "t.", lbl).Add(int64(d))
	}
	h := r.Hist("pdl_bench_latency_seconds", "t.")
	for i := 0; i < 64; i++ {
		h.RecordNanos(int64(1) << (i % 30))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
