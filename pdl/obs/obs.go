// Package obs is the serving stack's observability core: dependency-free,
// atomics-backed metric primitives (Counter, Gauge, Hist), a named-metric
// Registry with label support, writers for the Prometheus text exposition
// format and a JSON snapshot, and an HTTP admin Handler mounting
// /metrics, /statusz, /healthz, and /debug/pprof.
//
// The package is built so instrumentation can live on hot paths that are
// CI-gated at 0 allocs/op: Counter.Inc, Gauge.Set, and Hist.Record are
// single atomic operations with no locks and no allocation. All cost that
// is allowed to allocate — name lookup, label rendering, exposition — is
// paid at registration or scrape time, never per observation.
//
// Metric names follow the pdl_<layer>_<name>_<unit> convention (see
// CONTRIBUTING.md): counters end in _total, duration histograms in
// _seconds (recorded in nanoseconds, exposed in seconds).
package obs

import "sync/atomic"

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; Inc and Add are safe on hot paths (one atomic add, no
// allocation).
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n, which must not be negative (counters only go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous atomic value that can go up and down. The
// zero value is ready to use; Set and Add are safe on hot paths.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }
