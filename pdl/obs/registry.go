package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
)

// Label is one name/value pair qualifying a metric series, e.g.
// {disk="3"} or {class="foreground"}.
type Label struct {
	Key, Value string
}

// kind is a metric family's type.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHist
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance of a metric family: a value source (fn
// for counters and gauges, hist for histograms) plus its pre-rendered
// label string.
type series struct {
	labels   []Label
	rendered string // `{k="v",...}`, or "" for the unlabeled series
	fn       func() int64
	hist     *Hist
}

// family is one named metric and all of its labeled series.
type family struct {
	name, help string
	kind       kind
	series     []*series
	byLabels   map[string]struct{}
}

// Registry holds named metric families. Registration (setup time) and
// scraping (WritePrometheus, Snapshot) are safe for concurrent use; the
// returned Counter/Gauge/Hist handles are what hot paths touch, and they
// never go back through the registry.
//
// Registration panics on misuse — duplicate series, kind conflicts, bad
// names — because a metric collision is a programming error that should
// fail loudly at startup, not silently merge at scrape time.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// checkName enforces the Prometheus metric/label name charset:
// [a-zA-Z_][a-zA-Z0-9_]*.
func checkName(what, name string) {
	if name == "" {
		panic("obs: empty " + what + " name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			panic(fmt.Sprintf("obs: bad %s name %q", what, name))
		}
	}
}

// renderLabels builds the canonical `{k="v",...}` form, escaping label
// values per the exposition format.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		checkName("label", l.Key)
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register adds one series under name, creating the family on first use.
func (r *Registry) register(name, help string, k kind, s *series) {
	checkName("metric", name)
	s.rendered = renderLabels(s.labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, byLabels: make(map[string]struct{})}
		r.families[name] = f
		r.order = append(r.order, name)
	} else if f.kind != k {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.kind, k))
	}
	if _, dup := f.byLabels[s.rendered]; dup {
		panic(fmt.Sprintf("obs: duplicate series %s%s", name, s.rendered))
	}
	f.byLabels[s.rendered] = struct{}{}
	f.series = append(f.series, s)
}

// Counter registers and returns a new counter series. Registering the
// same name again with different labels adds a series to the family;
// help is taken from the first registration.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.CounterFunc(name, help, c.Value, labels...)
	return c
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time — the bridge for pre-existing atomic counters.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	r.register(name, help, kindCounter, &series{labels: labels, fn: fn})
}

// Gauge registers and returns a new gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.GaugeFunc(name, help, g.Value, labels...)
	return g
}

// GaugeFunc registers a gauge series whose value is read from fn at
// scrape time — the bridge for derived values like queue depths.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...Label) {
	r.register(name, help, kindGauge, &series{labels: labels, fn: fn})
}

// Hist registers and returns a new histogram series. Duration histograms
// record nanoseconds and expose seconds; name them *_seconds.
func (r *Registry) Hist(name, help string, labels ...Label) *Hist {
	h := &Hist{}
	r.RegisterHist(name, help, h, labels...)
	return h
}

// RegisterHist registers an existing histogram (one owned by a Store,
// Frontend, or shard) as a series of name.
func (r *Registry) RegisterHist(name, help string, h *Hist, labels ...Label) {
	if h == nil {
		panic("obs: RegisterHist: nil Hist")
	}
	r.register(name, help, kindHist, &series{labels: labels, hist: h})
}

// WritePrometheus writes every family in registration order in the
// Prometheus text exposition format (version 0.0.4). Histograms expose
// cumulative power-of-two buckets in seconds: le bounds are exact bucket
// upper bounds, the +Inf bucket and _count report the bucket sum (>= the
// count read first; see Hist's ordering contract), and _sum is seconds.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range r.order {
		f := r.families[name]
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			if f.kind == kindHist {
				writeHistProm(bw, f.name, s)
			} else {
				fmt.Fprintf(bw, "%s%s %d\n", f.name, s.rendered, s.fn())
			}
		}
	}
	return bw.Flush()
}

// mergeLabel splices one more label into a rendered label string.
func mergeLabel(rendered, kv string) string {
	if rendered == "" {
		return "{" + kv + "}"
	}
	return rendered[:len(rendered)-1] + "," + kv + "}"
}

func writeHistProm(bw *bufio.Writer, name string, s *series) {
	var sn HistSnapshot
	s.hist.Load(&sn)
	maxB := -1
	for b := range sn.Buckets {
		if sn.Buckets[b] != 0 {
			maxB = b
		}
	}
	var cum int64
	for b := 0; b <= maxB; b++ {
		cum += sn.Buckets[b]
		le := fmt.Sprintf(`le="%g"`, float64(bucketUpper(b))/1e9)
		fmt.Fprintf(bw, "%s_bucket%s %d\n", name, mergeLabel(s.rendered, le), cum)
	}
	fmt.Fprintf(bw, "%s_bucket%s %d\n", name, mergeLabel(s.rendered, `le="+Inf"`), cum)
	fmt.Fprintf(bw, "%s_sum%s %g\n", name, s.rendered, float64(sn.SumNanos)/1e9)
	fmt.Fprintf(bw, "%s_count%s %d\n", name, s.rendered, cum)
}

// SeriesSnapshot is one series in a registry Snapshot: Labels and either
// Value (counter, gauge) or Hist (histogram summary).
type SeriesSnapshot struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
	Hist   *Summary          `json:"hist,omitempty"`
}

// FamilySnapshot is one metric family in a registry Snapshot.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Kind   string           `json:"kind"`
	Help   string           `json:"help"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot evaluates every series and returns the families in
// registration order — the JSON form of the registry, also embedded in
// the Handler's /statusz payload.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]FamilySnapshot, 0, len(r.order))
	for _, name := range r.order {
		f := r.families[name]
		fs := FamilySnapshot{Name: f.name, Kind: f.kind.String(), Help: f.help}
		for _, s := range f.series {
			ss := SeriesSnapshot{}
			if len(s.labels) > 0 {
				ss.Labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					ss.Labels[l.Key] = l.Value
				}
			}
			if f.kind == kindHist {
				sum := s.hist.Summary()
				ss.Hist = &sum
				ss.Value = sum.Count
			} else {
				ss.Value = s.fn()
			}
			fs.Series = append(fs.Series, ss)
		}
		out = append(out, fs)
	}
	return out
}

// WriteJSON writes the Snapshot as one JSON document.
func (r *Registry) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(r.Snapshot())
}
