package obs

import (
	"sync"
	"testing"
	"time"
)

func TestHistBuckets(t *testing.T) {
	var h Hist
	// 1ns has bit length 1: bucket 0.
	h.RecordNanos(1)
	// 0 clamps to 1ns: bucket 0 again.
	h.RecordNanos(0)
	// 1000ns has bit length 10: bucket 9, [512, 1024) ns.
	h.RecordNanos(1000)
	var s HistSnapshot
	h.Load(&s)
	if s.Count != 3 {
		t.Fatalf("Count = %d, want 3", s.Count)
	}
	if s.SumNanos != 1+1+1000 {
		t.Fatalf("SumNanos = %d, want 1002", s.SumNanos)
	}
	if s.Buckets[0] != 2 || s.Buckets[9] != 1 {
		t.Fatalf("buckets[0]=%d buckets[9]=%d, want 2 and 1", s.Buckets[0], s.Buckets[9])
	}
}

func TestHistPercentile(t *testing.T) {
	var h Hist
	if got := h.Percentile(50); got != 0 {
		t.Fatalf("empty percentile = %v, want 0", got)
	}
	// 90 observations in [2^0, 2^1), 10 in [2^9, 2^10): p50 resolves to
	// the first bucket's upper bound, p99 to the top one's.
	for i := 0; i < 90; i++ {
		h.RecordNanos(1)
	}
	for i := 0; i < 10; i++ {
		h.RecordNanos(1000)
	}
	if got := h.Percentile(50); got != 2 {
		t.Errorf("p50 = %v, want 2ns", got)
	}
	if got := h.Percentile(99); got != 1024 {
		t.Errorf("p99 = %v, want 1.024µs", got)
	}
	if got := h.Mean(); got != time.Duration((90+10*1000)/100) {
		t.Errorf("mean = %v", got)
	}
}

func TestBucketUpperSaturates(t *testing.T) {
	// The old per-package histogram shifted 1<<(b+1) unguarded, which
	// overflows to 0 at the top bucket; bucketUpper saturates instead.
	for b := 61; b < histBuckets; b++ {
		if got := bucketUpper(b); got != 1<<62 {
			t.Fatalf("bucketUpper(%d) = %d, want 2^62", b, got)
		}
	}
	if got := bucketUpper(0); got != 2 {
		t.Fatalf("bucketUpper(0) = %d, want 2", got)
	}
}

func TestHistSummary(t *testing.T) {
	var h Hist
	h.Record(700 * time.Nanosecond)
	sum := h.Summary()
	if sum.Count != 1 || sum.P50 != 1024 || sum.P99 != 1024 || sum.Mean != 700 {
		t.Fatalf("Summary = %+v", sum)
	}
}

// TestHistConcurrentLoad pins the ordering contract that fixed the
// non-atomic percentile read in cluster.Client.Stats: under concurrent
// recording, every snapshot satisfies sum(buckets) >= count, so a
// percentile rank always resolves inside the buckets. Run with -race.
func TestHistConcurrentLoad(t *testing.T) {
	var h Hist
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ns := int64(1) << (g * 7)
			for {
				select {
				case <-stop:
					return
				default:
					h.RecordNanos(ns)
				}
			}
		}(g)
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	var s HistSnapshot
	for time.Now().Before(deadline) {
		h.Load(&s)
		var bucketSum int64
		for b := range s.Buckets {
			bucketSum += s.Buckets[b]
		}
		if bucketSum < s.Count {
			t.Fatalf("bucket sum %d < count %d: ordering contract broken", bucketSum, s.Count)
		}
		if s.Count > 0 && s.Percentile(99) == 0 {
			t.Fatalf("p99 = 0 with count %d: rank ran off the buckets", s.Count)
		}
	}
	close(stop)
	wg.Wait()
}
