package obs

import (
	"sync"
	"testing"
	"time"
)

func TestHistBuckets(t *testing.T) {
	var h Hist
	// 1ns has bit length 1: bucket 0.
	h.RecordNanos(1)
	// 0 clamps to 1ns: bucket 0 again.
	h.RecordNanos(0)
	// 1000ns has bit length 10: bucket 9, [512, 1024) ns.
	h.RecordNanos(1000)
	var s HistSnapshot
	h.Load(&s)
	if s.Count != 3 {
		t.Fatalf("Count = %d, want 3", s.Count)
	}
	if s.SumNanos != 1+1+1000 {
		t.Fatalf("SumNanos = %d, want 1002", s.SumNanos)
	}
	if s.Buckets[0] != 2 || s.Buckets[9] != 1 {
		t.Fatalf("buckets[0]=%d buckets[9]=%d, want 2 and 1", s.Buckets[0], s.Buckets[9])
	}
}

func TestHistPercentile(t *testing.T) {
	var h Hist
	if got := h.Percentile(50); got != 0 {
		t.Fatalf("empty percentile = %v, want 0", got)
	}
	// 90 observations in [2^0, 2^1), 10 in [2^9, 2^10): p50 resolves to
	// the first bucket's upper bound, p99 to the top one's.
	for i := 0; i < 90; i++ {
		h.RecordNanos(1)
	}
	for i := 0; i < 10; i++ {
		h.RecordNanos(1000)
	}
	if got := h.Percentile(50); got != 2 {
		t.Errorf("p50 = %v, want 2ns", got)
	}
	if got := h.Percentile(99); got != 1024 {
		t.Errorf("p99 = %v, want 1.024µs", got)
	}
	if got := h.Mean(); got != time.Duration((90+10*1000)/100) {
		t.Errorf("mean = %v", got)
	}
}

func TestBucketUpperSaturates(t *testing.T) {
	// The old per-package histogram shifted 1<<(b+1) unguarded, which
	// overflows to 0 at the top bucket; bucketUpper saturates instead.
	for b := 61; b < histBuckets; b++ {
		if got := bucketUpper(b); got != 1<<62 {
			t.Fatalf("bucketUpper(%d) = %d, want 2^62", b, got)
		}
	}
	if got := bucketUpper(0); got != 2 {
		t.Fatalf("bucketUpper(0) = %d, want 2", got)
	}
}

func TestHistSummary(t *testing.T) {
	var h Hist
	h.Record(700 * time.Nanosecond)
	sum := h.Summary()
	if sum.Count != 1 || sum.P50 != 1024 || sum.P99 != 1024 || sum.Mean != 700 {
		t.Fatalf("Summary = %+v", sum)
	}
}

// TestHistConcurrentLoad pins the ordering contract that fixed the
// non-atomic percentile read in cluster.Client.Stats: under concurrent
// recording, every snapshot satisfies sum(buckets) >= count, so a
// percentile rank always resolves inside the buckets. Run with -race.
func TestHistConcurrentLoad(t *testing.T) {
	var h Hist
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ns := int64(1) << (g * 7)
			for {
				select {
				case <-stop:
					return
				default:
					h.RecordNanos(ns)
				}
			}
		}(g)
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	var s HistSnapshot
	for time.Now().Before(deadline) {
		h.Load(&s)
		var bucketSum int64
		for b := range s.Buckets {
			bucketSum += s.Buckets[b]
		}
		if bucketSum < s.Count {
			t.Fatalf("bucket sum %d < count %d: ordering contract broken", bucketSum, s.Count)
		}
		if s.Count > 0 && s.Percentile(99) == 0 {
			t.Fatalf("p99 = 0 with count %d: rank ran off the buckets", s.Count)
		}
	}
	close(stop)
	wg.Wait()
}

// TestHistSnapshotSub carves a window out of a continuously-recording
// histogram: the delta between two snapshots must summarize exactly the
// observations recorded between them.
func TestHistSnapshotSub(t *testing.T) {
	var h Hist
	for i := 0; i < 100; i++ {
		h.Record(10 * time.Microsecond)
	}
	var before HistSnapshot
	h.Load(&before)
	for i := 0; i < 50; i++ {
		h.Record(3 * time.Millisecond)
	}
	var after HistSnapshot
	h.Load(&after)

	win := after.Sub(&before)
	if win.Count != 50 {
		t.Fatalf("window count = %d, want 50", win.Count)
	}
	if got := win.Percentile(50); got < 3*time.Millisecond || got > 8*time.Millisecond {
		t.Errorf("window p50 = %v, want within the 3ms bucket", got)
	}
	if got := win.Mean(); got != 3*time.Millisecond {
		t.Errorf("window mean = %v, want 3ms", got)
	}
	// The full histogram still sees both populations.
	if after.Count != 150 {
		t.Errorf("cumulative count = %d, want 150", after.Count)
	}

	// A swapped pair degrades to an empty window, never panics or goes
	// negative.
	empty := before.Sub(&after)
	if empty.Count != 0 || empty.SumNanos != 0 {
		t.Errorf("reversed Sub = count %d sum %d, want empty", empty.Count, empty.SumNanos)
	}
	if got := empty.Percentile(99); got != 0 {
		t.Errorf("reversed Sub p99 = %v, want 0", got)
	}
}

// TestHistSnapshotMerge folds two snapshots into one summary.
func TestHistSnapshotMerge(t *testing.T) {
	var reads, writes Hist
	for i := 0; i < 30; i++ {
		reads.Record(time.Microsecond)
	}
	for i := 0; i < 70; i++ {
		writes.Record(16 * time.Microsecond)
	}
	var r, w HistSnapshot
	reads.Load(&r)
	writes.Load(&w)
	r.Merge(&w)
	if r.Count != 100 {
		t.Fatalf("merged count = %d, want 100", r.Count)
	}
	if got := r.Summary(); got.Count != 100 || got.P99 < 16*time.Microsecond {
		t.Errorf("merged summary = %+v", got)
	}
}
