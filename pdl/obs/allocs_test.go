//go:build !race

// The allocs regression gate (CI) for the observability core: a counter
// increment, a gauge store, and a histogram record are single atomic
// operations — zero allocations — so instrumentation can sit on the
// store, serve, and cluster hot paths without moving their own 0
// allocs/op gates. A regression fails `go test`.

package obs

import (
	"testing"
	"time"
)

func TestObsHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pdl_test_allocs_total", "t.")
	g := r.Gauge("pdl_test_allocs_depth", "t.")
	h := r.Hist("pdl_test_allocs_seconds", "t.")
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(7) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Record(1500 * time.Nanosecond) }); n != 0 {
		t.Errorf("Hist.Record allocates %v/op, want 0", n)
	}
	var s HistSnapshot
	if n := testing.AllocsPerRun(1000, func() { h.Load(&s) }); n != 0 {
		t.Errorf("Hist.Load allocates %v/op, want 0", n)
	}
}
