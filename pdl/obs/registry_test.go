package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestWritePrometheusGolden pins the exposition format byte-for-byte:
// HELP/TYPE lines, label rendering, and the histogram's cumulative
// power-of-two buckets in seconds.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pdl_test_ops_total", "Ops served.")
	c.Add(3)
	g := r.Gauge("pdl_test_depth", "Queue depth.", Label{Key: "class", Value: "fg"})
	g.Set(2)
	h := r.Hist("pdl_test_latency_seconds", "Op latency.")
	h.RecordNanos(1)    // bucket 0, upper 2ns
	h.RecordNanos(1000) // bucket 9, upper 1024ns

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP pdl_test_ops_total Ops served.
# TYPE pdl_test_ops_total counter
pdl_test_ops_total 3
# HELP pdl_test_depth Queue depth.
# TYPE pdl_test_depth gauge
pdl_test_depth{class="fg"} 2
# HELP pdl_test_latency_seconds Op latency.
# TYPE pdl_test_latency_seconds histogram
pdl_test_latency_seconds_bucket{le="2e-09"} 1
pdl_test_latency_seconds_bucket{le="4e-09"} 1
pdl_test_latency_seconds_bucket{le="8e-09"} 1
pdl_test_latency_seconds_bucket{le="1.6e-08"} 1
pdl_test_latency_seconds_bucket{le="3.2e-08"} 1
pdl_test_latency_seconds_bucket{le="6.4e-08"} 1
pdl_test_latency_seconds_bucket{le="1.28e-07"} 1
pdl_test_latency_seconds_bucket{le="2.56e-07"} 1
pdl_test_latency_seconds_bucket{le="5.12e-07"} 1
pdl_test_latency_seconds_bucket{le="1.024e-06"} 2
pdl_test_latency_seconds_bucket{le="+Inf"} 2
pdl_test_latency_seconds_sum 1.001e-06
pdl_test_latency_seconds_count 2
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("pdl_test_g", "g.", Label{Key: "path", Value: `a"b\c` + "\n"})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `pdl_test_g{path="a\"b\\c\n"} 0`
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaped series %q not found in:\n%s", want, b.String())
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("pdl_test_total", "t.")
	mustPanic("duplicate series", func() { r.Counter("pdl_test_total", "t.") })
	mustPanic("kind conflict", func() { r.Gauge("pdl_test_total", "t.", Label{Key: "a", Value: "b"}) })
	mustPanic("bad metric name", func() { r.Counter("pdl test", "t.") })
	mustPanic("bad label name", func() { r.Counter("pdl_test_l", "t.", Label{Key: "0bad", Value: "v"}) })
	mustPanic("nil hist", func() { r.RegisterHist("pdl_test_h", "t.", nil) })
	// Distinct labels on one family are fine, not a duplicate.
	r.Counter("pdl_test_total", "t.", Label{Key: "a", Value: "b"})
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("pdl_test_ops_total", "Ops.", Label{Key: "disk", Value: "3"}).Add(7)
	r.Hist("pdl_test_lat_seconds", "Lat.").RecordNanos(500)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var fams []FamilySnapshot
	if err := json.Unmarshal([]byte(b.String()), &fams); err != nil {
		t.Fatal(err)
	}
	if len(fams) != 2 {
		t.Fatalf("got %d families, want 2", len(fams))
	}
	if fams[0].Kind != "counter" || fams[0].Series[0].Value != 7 || fams[0].Series[0].Labels["disk"] != "3" {
		t.Errorf("counter snapshot = %+v", fams[0])
	}
	if fams[1].Kind != "histogram" || fams[1].Series[0].Hist == nil || fams[1].Series[0].Hist.Count != 1 {
		t.Errorf("hist snapshot = %+v", fams[1])
	}
}

// TestRegistryConcurrent hammers registration, recording, and scraping
// from many goroutines at once; run with -race. Registration is rare in
// production (setup time), but nothing in the API forbids registering a
// late-dialed shard's series while a scrape is in flight.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("pdl_test_conc_total", "t.", Label{Key: "g", Value: fmt.Sprint(g)})
			h := r.Hist("pdl_test_conc_seconds", "t.", Label{Key: "g", Value: fmt.Sprint(g)})
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.RecordNanos(int64(i + 1))
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var b strings.Builder
				if err := r.WritePrometheus(&b); err != nil {
					t.Error(err)
					return
				}
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	var total int64
	for _, f := range r.Snapshot() {
		if f.Name != "pdl_test_conc_total" {
			continue
		}
		for _, s := range f.Series {
			total += s.Value
		}
	}
	if total != 8*1000 {
		t.Errorf("total = %d, want %d", total, 8*1000)
	}
}
