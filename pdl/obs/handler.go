package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Handler is the admin HTTP surface for an instrumented process:
//
//	/metrics        Prometheus text exposition of the Registry
//	/statusz        JSON status: registered status sections + metric snapshot
//	/healthz        liveness probe ("ok")
//	/debug/pprof/*  the runtime profiler endpoints
//
// Layers contribute structured state to /statusz via AddStatus (array
// geometry from the store, the shard map from a cluster client, ...); the
// metric snapshot rides along under the "metrics" key. Handlers never
// touch hot-path locks: everything they read is atomics or
// registration-time state.
type Handler struct {
	reg *Registry
	mux *http.ServeMux

	mu       sync.RWMutex
	sections map[string]func() any
}

// NewHandler returns a Handler exposing reg. A nil reg serves an empty
// /metrics (the status and pprof endpoints still work).
func NewHandler(reg *Registry) *Handler {
	h := &Handler{reg: reg, sections: make(map[string]func() any)}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", h.metrics)
	mux.HandleFunc("/statusz", h.statusz)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	h.mux = mux
	return h
}

// AddStatus registers a /statusz section: fn is evaluated per request and
// its result marshaled under the section key. Registering a key again
// replaces the section.
func (h *Handler) AddStatus(section string, fn func() any) {
	h.mu.Lock()
	h.sections[section] = fn
	h.mu.Unlock()
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

func (h *Handler) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if h.reg != nil {
		h.reg.WritePrometheus(w)
	}
}

func (h *Handler) statusz(w http.ResponseWriter, _ *http.Request) {
	out := make(map[string]any)
	h.mu.RLock()
	for name, fn := range h.sections {
		out[name] = fn()
	}
	h.mu.RUnlock()
	if h.reg != nil {
		out["metrics"] = h.reg.Snapshot()
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}
