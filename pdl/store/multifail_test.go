package store_test

import (
	"bytes"
	"io"
	"math/rand"
	"sync"
	"testing"

	"repro/pdl"
	"repro/pdl/layout"
	"repro/pdl/store"
)

// mustRS2 builds a Reed–Solomon store carrying two parity units per
// stripe, plus the layout it runs on.
func mustRS2(t *testing.T, v, k, unitSize int) (*store.Store, *layout.Layout) {
	t.Helper()
	res, err := pdl.Build(v, k, pdl.WithParityShards(2))
	if err != nil {
		t.Fatal(err)
	}
	s, err := store.Open(res, res.Layout.Size, unitSize, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Code().Name() != "rs" || s.Code().ParityShards() != 2 {
		t.Fatalf("store runs %s/%d, want rs/2", s.Code().Name(), s.Code().ParityShards())
	}
	return s, res.Layout
}

// TestStoreTwoFailureMatchesDataModel is the two-failure acceptance pin:
// a Reed–Solomon array with two parity units per stripe, driven
// sequentially, must agree byte-for-byte with pdl/layout's Data
// reference model — healthy traffic, then for EVERY pair of disks both
// failed at once: degraded reads, degraded writes, and the two online
// rebuilds that bring the array back, with the rebuilt disks' raw
// contents matching the model's.
func TestStoreTwoFailureMatchesDataModel(t *testing.T) {
	const unitSize = 16
	s, l := mustRS2(t, 9, 4, unitSize)
	model, err := layout.NewData(l, unitSize)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	buf := make([]byte, unitSize)
	got := make([]byte, unitSize)
	// hammer interleaves reads (compared against the model's view under
	// the given failures) and writes (applied to both).
	hammer := func(ops int, failed ...int) {
		t.Helper()
		for i := 0; i < ops; i++ {
			logical := rng.Intn(s.Capacity())
			if rng.Intn(3) == 0 {
				want, err := model.DegradedRead(logical, failed...)
				if err != nil {
					t.Fatal(err)
				}
				if err := s.Read(logical, got); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("failed=%v logical %d: store %x != model %x", failed, logical, got, want)
				}
				continue
			}
			payload(buf, rng.Int())
			if err := s.Write(logical, buf); err != nil {
				t.Fatal(err)
			}
			if err := model.WriteLogical(logical, buf); err != nil {
				t.Fatal(err)
			}
		}
	}

	hammer(4 * s.Capacity())
	if err := s.VerifyParity(); err != nil {
		t.Fatal(err)
	}
	if err := model.VerifyParity(); err != nil {
		t.Fatal(err)
	}

	diskBytes := int64(l.Size) * unitSize
	rebuildOne := func(disk int) {
		t.Helper()
		replacement := store.NewMemDisk(diskBytes)
		if err := s.Rebuild(replacement); err != nil {
			t.Fatal(err)
		}
		rebuilt := make([]byte, diskBytes)
		if _, err := replacement.ReadAt(rebuilt, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if !bytes.Equal(rebuilt, model.DiskContents(disk)) {
			t.Fatalf("rebuilt disk %d differs from model contents", disk)
		}
	}

	for f1 := 0; f1 < l.V; f1++ {
		for f2 := f1 + 1; f2 < l.V; f2++ {
			// Fail incrementally: one disk down (single-failure service on
			// the RS array), then the second on top.
			if err := s.Fail(f1); err != nil {
				t.Fatal(err)
			}
			hammer(s.Capacity()/2, f1)
			if err := s.Fail(f2); err != nil {
				t.Fatal(err)
			}
			hammer(s.Capacity(), f1, f2)
			// Full sweep: every logical unit must be served with both
			// disks gone.
			for logical := 0; logical < s.Capacity(); logical++ {
				want, err := model.DegradedRead(logical, f1, f2)
				if err != nil {
					t.Fatal(err)
				}
				if err := s.Read(logical, got); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("disks %d,%d down, logical %d: store %x != model %x", f1, f2, logical, got, want)
				}
			}
			// Rebuild both disks (lowest first), checking each against the
			// model's raw disk bytes; the array must end healthy and
			// parity-consistent.
			rebuildOne(f1)
			if s.Failed() != f2 {
				t.Fatalf("after first rebuild: Failed() = %d, want %d", s.Failed(), f2)
			}
			hammer(s.Capacity()/2, f2)
			rebuildOne(f2)
			if s.Failed() != -1 || len(s.FailedDisks()) != 0 {
				t.Fatalf("after second rebuild: Failed() = %d, FailedDisks = %v", s.Failed(), s.FailedDisks())
			}
			if err := s.VerifyParity(); err != nil {
				t.Fatalf("disks %d,%d: %v", f1, f2, err)
			}
		}
	}
	if err := model.VerifyParity(); err != nil {
		t.Fatal(err)
	}
}

// TestTwoFailureRebuildUnderLoad rebuilds an RS array with TWO disks
// down while a writer keeps mutating it in lockstep with a never-failed
// control store: after both rebuilds the subject must match the control
// byte-for-byte, including both replacement disks' raw contents. This
// exercises the degraded write paths and the rebuilt-stripe patching
// that keeps the replacement current under foreground traffic.
func TestTwoFailureRebuildUnderLoad(t *testing.T) {
	const (
		unitSize = 48
		fail1    = 2
		fail2    = 7
	)
	res, err := pdl.Build(13, 5, pdl.WithParityShards(2))
	if err != nil {
		t.Fatal(err)
	}
	diskUnits := 2 * res.Layout.Size
	subject, err := store.Open(res, diskUnits, unitSize, nil)
	if err != nil {
		t.Fatal(err)
	}
	control, err := store.Open(res, diskUnits, unitSize, nil)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(44))
	buf := make([]byte, unitSize)
	writeBoth := func(logical int) {
		rng.Read(buf)
		if err := subject.Write(logical, buf); err != nil {
			t.Error(err)
		}
		if err := control.Write(logical, buf); err != nil {
			t.Error(err)
		}
	}
	for i := 0; i < subject.Capacity(); i++ {
		writeBoth(i)
	}
	if err := subject.Fail(fail1); err != nil {
		t.Fatal(err)
	}
	if err := subject.Fail(fail2); err != nil {
		t.Fatal(err)
	}

	// Two rebuilds back to back, with the writer running throughout: the
	// first rebuild runs with a second disk still down.
	diskBytes := int64(diskUnits) * unitSize
	repl1 := store.NewMemDisk(diskBytes)
	repl2 := store.NewMemDisk(diskBytes)
	var wg sync.WaitGroup
	wg.Add(1)
	rebuildErr := make(chan error, 2)
	go func() {
		defer wg.Done()
		rebuildErr <- subject.Rebuild(repl1)
		rebuildErr <- subject.Rebuild(repl2)
	}()
	for i := 0; i < 6000; i++ {
		writeBoth(rng.Intn(subject.Capacity()))
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if err := <-rebuildErr; err != nil {
			t.Fatal(err)
		}
	}
	if subject.Failed() != -1 {
		t.Fatalf("Failed() = %d after both rebuilds", subject.Failed())
	}
	for i := 0; i < 500; i++ {
		writeBoth(rng.Intn(subject.Capacity()))
	}

	if err := subject.VerifyParity(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, unitSize)
	want := make([]byte, unitSize)
	for logical := 0; logical < subject.Capacity(); logical++ {
		if err := subject.Read(logical, got); err != nil {
			t.Fatal(err)
		}
		if err := control.Read(logical, want); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("logical %d: rebuilt store %x != control %x", logical, got, want)
		}
	}
	gotDisk := make([]byte, diskBytes)
	wantDisk := make([]byte, diskBytes)
	for _, d := range []int{fail1, fail2} {
		if _, err := subject.DiskBackend(d).ReadAt(gotDisk, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if _, err := control.DiskBackend(d).ReadAt(wantDisk, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if !bytes.Equal(gotDisk, wantDisk) {
			t.Fatalf("rebuilt disk %d contents differ from never-failed control", d)
		}
	}
}

// TestTwoFailureVecAndStripePaths drives the batched vector API and the
// byte-offset full-stripe fast path on an RS array, healthy and with two
// disks down, against a flat mirror.
func TestTwoFailureVecAndStripePaths(t *testing.T) {
	const unitSize = 32
	s, _ := mustRS2(t, 9, 4, unitSize)
	mirror := make([]byte, s.Size())
	rng := rand.New(rand.NewSource(5))

	check := func(tag string) {
		t.Helper()
		got := make([]byte, len(mirror))
		if _, err := s.ReadAt(got, 0); err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		if !bytes.Equal(got, mirror) {
			t.Fatalf("%s: store diverges from mirror", tag)
		}
	}
	hammer := func(ops int) {
		t.Helper()
		for i := 0; i < ops; i++ {
			switch rng.Intn(3) {
			case 0: // vector write (sized to sometimes cover whole stripes)
				n := rng.Intn(6) + 1
				vops := make([]store.VecOp, n)
				base := rng.Intn(s.Capacity() - n + 1)
				for j := range vops {
					vops[j] = store.VecOp{Logical: base + j, Buf: payload(make([]byte, unitSize), rng.Int())}
					copy(mirror[(base+j)*unitSize:], vops[j].Buf)
				}
				if err := s.WriteVec(vops); err != nil {
					t.Fatal(err)
				}
			case 1: // byte-offset write across stripes
				off := int64(rng.Intn(int(s.Size())))
				n := rng.Intn(8*unitSize) + 1
				if off+int64(n) > s.Size() {
					n = int(s.Size() - off)
				}
				p := make([]byte, n)
				rng.Read(p)
				if _, err := s.WriteAt(p, off); err != nil {
					t.Fatal(err)
				}
				copy(mirror[off:], p)
			default: // vector read
				n := rng.Intn(6) + 1
				vops := make([]store.VecOp, n)
				for j := range vops {
					vops[j] = store.VecOp{Logical: rng.Intn(s.Capacity()), Buf: make([]byte, unitSize)}
				}
				if err := s.ReadVec(vops); err != nil {
					t.Fatal(err)
				}
				for _, o := range vops {
					if !bytes.Equal(o.Buf, mirror[o.Logical*unitSize:(o.Logical+1)*unitSize]) {
						t.Fatalf("ReadVec logical %d diverges from mirror", o.Logical)
					}
				}
			}
		}
	}

	hammer(300)
	check("healthy")
	if err := s.VerifyParity(); err != nil {
		t.Fatal(err)
	}
	if err := s.Fail(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Fail(6); err != nil {
		t.Fatal(err)
	}
	hammer(300)
	check("two down")

	diskBytes := int64(s.Mapper().DiskUnits()) * unitSize
	if err := s.Rebuild(store.NewMemDisk(diskBytes)); err != nil {
		t.Fatal(err)
	}
	if err := s.Rebuild(store.NewMemDisk(diskBytes)); err != nil {
		t.Fatal(err)
	}
	hammer(100)
	check("rebuilt")
	if err := s.VerifyParity(); err != nil {
		t.Fatal(err)
	}
}

// TestMultiFailValidation pins the failure-budget error paths of the
// multi-parity engine.
func TestMultiFailValidation(t *testing.T) {
	const unitSize = 8
	s, _ := mustRS2(t, 9, 4, unitSize)
	if err := s.Fail(3); err != nil {
		t.Fatal(err)
	}
	if err := s.Fail(3); err == nil {
		t.Error("duplicate Fail accepted")
	}
	if err := s.Fail(5); err != nil {
		t.Fatal(err)
	}
	if err := s.Fail(7); err == nil {
		t.Error("third Fail accepted on a two-parity code")
	}
	if got := s.FailedDisks(); len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Errorf("FailedDisks() = %v, want [3 5]", got)
	}
	st := s.Stats()
	if st.Failed != 3 || len(st.FailedDisks) != 2 {
		t.Errorf("Stats: Failed=%d FailedDisks=%v", st.Failed, st.FailedDisks)
	}
}
