package store_test

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/pdl"
	"repro/pdl/store"
)

// benchGeometry mirrors BENCH_plan.json: ring v=17 k=4, 4 layout copies
// per disk, 4 KiB units (~1 MiB per disk).
const benchUnitSize = 4096

func benchStore(b *testing.B) *store.Store {
	b.Helper()
	res, err := pdl.Build(17, 4)
	if err != nil {
		b.Fatal(err)
	}
	s, err := store.Open(res, 4*res.Layout.Size, benchUnitSize, nil)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, benchUnitSize)
	for i := 0; i < s.Capacity(); i++ {
		if err := s.Write(i, payload(buf, i)); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

// failedHomes returns logical addresses whose home unit lies on disk f,
// i.e. the worst case for degraded reads.
func failedHomes(b *testing.B, s *store.Store, f int) []int {
	b.Helper()
	var homes []int
	for i := 0; i < s.Capacity(); i++ {
		u, err := s.Mapper().Map(i)
		if err != nil {
			b.Fatal(err)
		}
		if u.Disk == f {
			homes = append(homes, i)
		}
	}
	return homes
}

func BenchmarkStoreRead(b *testing.B) {
	s := benchStore(b)
	dst := make([]byte, benchUnitSize)
	b.SetBytes(benchUnitSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Read(i%s.Capacity(), dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreReadParallel(b *testing.B) {
	s := benchStore(b)
	b.SetBytes(benchUnitSize)
	b.ReportAllocs()
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		dst := make([]byte, benchUnitSize)
		for pb.Next() {
			logical := int(next.Add(1)) % s.Capacity()
			if err := s.Read(logical, dst); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkStoreDegradedRead(b *testing.B) {
	s := benchStore(b)
	if err := s.Fail(3); err != nil {
		b.Fatal(err)
	}
	homes := failedHomes(b, s, 3)
	dst := make([]byte, benchUnitSize)
	b.SetBytes(benchUnitSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Read(homes[i%len(homes)], dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreWrite(b *testing.B) {
	s := benchStore(b)
	src := make([]byte, benchUnitSize)
	payload(src, 99)
	b.SetBytes(benchUnitSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Write(i%s.Capacity(), src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreWriteParallel(b *testing.B) {
	s := benchStore(b)
	b.SetBytes(benchUnitSize)
	b.ReportAllocs()
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		src := make([]byte, benchUnitSize)
		payload(src, 7)
		for pb.Next() {
			logical := int(next.Add(1)) % s.Capacity()
			if err := s.Write(logical, src); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkStoreFullStripeWriteAt(b *testing.B) {
	s := benchStore(b)
	// One stripe's data payload (k-1 units), stripe-aligned: takes the
	// Condition 5 no-preread path.
	span := 3 * benchUnitSize
	src := make([]byte, span)
	payload(src, 5)
	stripes := s.Size() / int64(span)
	b.SetBytes(int64(span))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i) % stripes * int64(span)
		if _, err := s.WriteAt(src, off); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreWriteVec measures the batch entry point: 32 sequential
// small writes per call, grouped per stripe with full-stripe promotion
// (compare per-unit ns against BenchmarkStoreWrite).
func BenchmarkStoreWriteVec(b *testing.B) {
	s := benchStore(b)
	const depth = 32
	ops := make([]store.VecOp, depth)
	for j := range ops {
		ops[j].Buf = payload(make([]byte, benchUnitSize), j)
	}
	b.SetBytes(int64(depth * benchUnitSize))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range ops {
			ops[j].Logical = (i*depth + j) % s.Capacity()
		}
		if err := s.WriteVec(ops); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreReadVec measures the read batch entry point: 32
// sequential reads per call, one lock pass per stripe.
func BenchmarkStoreReadVec(b *testing.B) {
	s := benchStore(b)
	const depth = 32
	ops := make([]store.VecOp, depth)
	for j := range ops {
		ops[j].Buf = make([]byte, benchUnitSize)
	}
	b.SetBytes(int64(depth * benchUnitSize))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range ops {
			ops[j].Logical = (i*depth + j) % s.Capacity()
		}
		if err := s.ReadVec(ops); err != nil {
			b.Fatal(err)
		}
	}
}

// benchBackendStore builds the bench-geometry store over real disk
// files, one per disk, created by mk in a fresh temp dir.
func benchBackendStore(b *testing.B, mk func(path string, size int64) (store.Backend, error)) *store.Store {
	b.Helper()
	res, err := pdl.Build(17, 4)
	if err != nil {
		b.Fatal(err)
	}
	diskUnits := 4 * res.Layout.Size
	diskBytes := int64(diskUnits) * benchUnitSize
	dir := b.TempDir()
	backends := make([]store.Backend, res.Layout.V)
	for d := range backends {
		bk, err := mk(filepath.Join(dir, fmt.Sprintf("disk%02d.dat", d)), diskBytes)
		if err != nil {
			b.Fatal(err)
		}
		backends[d] = bk
	}
	s, err := store.Open(res, diskUnits, benchUnitSize, backends)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	buf := make([]byte, benchUnitSize)
	for i := 0; i < s.Capacity(); i++ {
		if err := s.Write(i, payload(buf, i)); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

func benchFileStore(b *testing.B) *store.Store {
	return benchBackendStore(b, func(path string, size int64) (store.Backend, error) {
		return store.CreateFileDisk(path, size)
	})
}

func benchMmapStore(b *testing.B) *store.Store {
	return benchBackendStore(b, func(path string, size int64) (store.Backend, error) {
		return store.CreateMmapDisk(path, size)
	})
}

// The backend comparison pairs: the same healthy unit read/write loops
// as BenchmarkStoreRead/BenchmarkStoreWrite, against file-backed disks
// over positioned I/O (FileDisk) and over a shared memory mapping
// (MmapDisk). BENCH_store.json records the spread.
func BenchmarkStoreReadFileDisk(b *testing.B)  { benchReadLoop(b, benchFileStore(b)) }
func BenchmarkStoreReadMmapDisk(b *testing.B)  { benchReadLoop(b, benchMmapStore(b)) }
func BenchmarkStoreWriteFileDisk(b *testing.B) { benchWriteLoop(b, benchFileStore(b)) }
func BenchmarkStoreWriteMmapDisk(b *testing.B) { benchWriteLoop(b, benchMmapStore(b)) }

func benchReadLoop(b *testing.B, s *store.Store) {
	dst := make([]byte, benchUnitSize)
	b.SetBytes(benchUnitSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Read(i%s.Capacity(), dst); err != nil {
			b.Fatal(err)
		}
	}
}

func benchWriteLoop(b *testing.B, s *store.Store) {
	src := make([]byte, benchUnitSize)
	payload(src, 99)
	b.SetBytes(benchUnitSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Write(i%s.Capacity(), src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreRebuild measures the online reconstruction rate: bytes of
// the failed disk rebuilt per second (no foreground load).
func BenchmarkStoreRebuild(b *testing.B) {
	s := benchStore(b)
	diskBytes := int64(s.Mapper().DiskUnits()) * benchUnitSize
	spare := store.NewMemDisk(diskBytes)
	b.SetBytes(diskBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Fail(3); err != nil {
			b.Fatal(err)
		}
		old := s.DiskBackend(3)
		if err := s.Rebuild(spare); err != nil {
			b.Fatal(err)
		}
		spare = old.(*store.MemDisk)
	}
}
