//go:build !(linux || darwin)

package store

import "os"

// MmapDisk on platforms without a wired-up memory mapping falls back to
// positioned file I/O: the same API (including Flush) over a FileDisk, so
// callers select the backend unconditionally and the conformance suite
// covers whichever implementation the platform provides.
type MmapDisk struct {
	fd *FileDisk
}

// mmapSupported reports whether this build uses a real memory mapping
// (false on the FileDisk-fallback platforms).
const mmapSupported = false

// CreateMmapDisk creates (or truncates) a file of size bytes and wraps it.
func CreateMmapDisk(path string, size int64) (*MmapDisk, error) {
	fd, err := CreateFileDisk(path, size)
	if err != nil {
		return nil, err
	}
	return &MmapDisk{fd: fd}, nil
}

// OpenMmapDisk opens an existing disk file; its size comes from Stat.
func OpenMmapDisk(path string) (*MmapDisk, error) {
	fd, err := OpenFileDisk(path)
	if err != nil {
		return nil, err
	}
	return &MmapDisk{fd: fd}, nil
}

// ReadAt implements io.ReaderAt on the file.
func (d *MmapDisk) ReadAt(p []byte, off int64) (int, error) { return d.fd.ReadAt(p, off) }

// WriteAt implements io.WriterAt on the file.
func (d *MmapDisk) WriteAt(p []byte, off int64) (int, error) { return d.fd.WriteAt(p, off) }

// Size returns the file size recorded at open time.
func (d *MmapDisk) Size() int64 { return d.fd.Size() }

// File returns the underlying file.
func (d *MmapDisk) File() *os.File { return d.fd.File() }

// Flush forces buffered bytes out to stable storage.
func (d *MmapDisk) Flush() error {
	if d.fd == nil {
		return nil
	}
	return d.fd.File().Sync()
}

// Close flushes and closes the file. A second Close is a no-op.
func (d *MmapDisk) Close() error {
	if d.fd == nil {
		return nil
	}
	err := d.Flush()
	if cerr := d.fd.Close(); err == nil {
		err = cerr
	}
	d.fd = nil
	return err
}
