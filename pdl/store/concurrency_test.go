package store_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/pdl/store"
)

// TestConcurrentHammer is the concurrency property test of the ISSUE:
// N goroutines hammer random reads and writes on disjoint slices of the
// logical space (stripes are still shared, so parity read-modify-writes
// contend), healthy first, then with a disk down, then across an online
// rebuild. Afterward VerifyParity must pass and every unit must equal
// the sequentially-maintained per-goroutine model. Run under -race in CI.
func TestConcurrentHammer(t *testing.T) {
	const (
		unitSize   = 32
		goroutines = 8
		opsPerGo   = 1500
	)
	s := mustStore(t, 13, 4, 2, unitSize)

	// models[g][l] is goroutine g's expected payload for logical l (only
	// addresses with l % goroutines == g are touched by g).
	models := make([]map[int][]byte, goroutines)
	for g := range models {
		models[g] = make(map[int][]byte)
	}

	hammer := func(phase int) {
		t.Helper()
		var wg sync.WaitGroup
		errs := make(chan error, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(phase*goroutines + g)))
				buf := make([]byte, unitSize)
				got := make([]byte, unitSize)
				for i := 0; i < opsPerGo; i++ {
					logical := g + goroutines*rng.Intn(s.Capacity()/goroutines)
					if rng.Intn(3) == 0 {
						if err := s.Read(logical, got); err != nil {
							errs <- err
							return
						}
						want, written := models[g][logical]
						if !written {
							want = make([]byte, unitSize)
						}
						if !bytes.Equal(got, want) {
							errs <- fmt.Errorf("goroutine %d phase %d: logical %d: got %x want %x", g, phase, logical, got, want)
							return
						}
						continue
					}
					rng.Read(buf)
					if err := s.Write(logical, buf); err != nil {
						errs <- err
						return
					}
					models[g][logical] = append([]byte(nil), buf...)
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}

	sweep := func(tag string) {
		t.Helper()
		got := make([]byte, unitSize)
		zero := make([]byte, unitSize)
		for logical := 0; logical < s.Capacity(); logical++ {
			if err := s.Read(logical, got); err != nil {
				t.Fatalf("%s: %v", tag, err)
			}
			want, written := models[logical%goroutines][logical]
			if !written {
				want = zero
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: logical %d: got %x want %x", tag, logical, got, want)
			}
		}
	}

	hammer(1)
	if err := s.VerifyParity(); err != nil {
		t.Fatal(err)
	}
	sweep("healthy")

	// Degraded phase: a disk is down, reads of its units go through the
	// survivor XOR path, writes through the degraded plans.
	if err := s.Fail(5); err != nil {
		t.Fatal(err)
	}
	hammer(2)
	sweep("degraded")

	// Rebuild while the hammer keeps running: foreground traffic and the
	// rebuilder interleave on the same stripe locks.
	var wg sync.WaitGroup
	wg.Add(1)
	rebuildErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		rebuildErr <- s.Rebuild(store.NewMemDisk(int64(s.Mapper().DiskUnits()) * unitSize))
	}()
	hammer(3)
	wg.Wait()
	if err := <-rebuildErr; err != nil {
		t.Fatal(err)
	}
	if s.Failed() != -1 {
		t.Fatalf("after rebuild: Failed() = %d", s.Failed())
	}
	if err := s.VerifyParity(); err != nil {
		t.Fatal(err)
	}
	sweep("rebuilt")
}

// TestConcurrentReadAtWriteAt exercises the byte-offset API concurrently
// on disjoint byte ranges, including spans that cross stripes and hit
// the full-stripe path.
func TestConcurrentReadAtWriteAt(t *testing.T) {
	const (
		unitSize   = 64
		goroutines = 6
	)
	s := mustStore(t, 9, 3, 2, unitSize)
	slice := s.Size() / goroutines

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	finals := make([][]byte, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			base := int64(g) * slice
			mirror := make([]byte, slice)
			for i := 0; i < 400; i++ {
				off := int64(rng.Intn(int(slice)))
				n := rng.Intn(5*unitSize) + 1
				if off+int64(n) > slice {
					n = int(slice - off)
				}
				p := make([]byte, n)
				rng.Read(p)
				if _, err := s.WriteAt(p, base+off); err != nil {
					errs <- err
					return
				}
				copy(mirror[off:], p)
				got := make([]byte, n)
				if _, err := s.ReadAt(got, base+off); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, mirror[off:off+int64(n)]) {
					errs <- fmt.Errorf("goroutine %d: ReadAt(%d,%d) diverges", g, base+off, n)
					return
				}
			}
			finals[g] = mirror
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := s.VerifyParity(); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < goroutines; g++ {
		got := make([]byte, slice)
		if _, err := s.ReadAt(got, int64(g)*slice); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, finals[g]) {
			t.Fatalf("slice %d diverged from its writer's mirror", g)
		}
	}
}
