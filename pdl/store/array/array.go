// Package array makes a parity-declustered disk array durable: one
// directory holds the layout (layout.json), a versioned manifest
// (array.json) recording construction parameters, geometry, and per-disk
// state, and one file per disk. Create provisions a fresh array, Open
// reopens it onto a pdl/store Store over the backend of your choice
// (FileDisk or MmapDisk), and Fail/Rebuild persist the degraded and
// rebuilt states through Sync's atomic write-temp-then-rename — so a
// process crash never tears the manifest and a restart never forgets a
// scrubbed disk.
//
// Crash ordering: every state transition orders its steps so a crash
// between any two of them reopens safely. Rebuild writes the
// reconstructed bytes first and flips the manifest last (a
// rebuilt-but-not-recorded disk is served degraded — correct, just
// slower — until the next Rebuild). Fail records the failure first and
// scrubs last (a recorded-but-unscrubbed disk is served degraded with
// its bytes intact; the reverse order could serve scrubbed zeros as
// healthy data after a restart).
//
// The directory format belongs to this package: tools use DiskPath and
// the manifest instead of deriving file names, so a future format bump
// happens in exactly one place.
package array

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/pdl"
	"repro/pdl/layout"
	"repro/pdl/store"
)

// ErrVersion reports a manifest written by a newer format than this
// build reads; it supports errors.Is.
var ErrVersion = errors.New("unsupported manifest format version")

// BackendKind selects the per-disk Backend Open builds.
type BackendKind string

const (
	// File serves disks over positioned file I/O (store.FileDisk).
	File BackendKind = "file"

	// Mmap serves disks over memory-mapped files (store.MmapDisk; a
	// FileDisk fallback on platforms without the mapping).
	Mmap BackendKind = "mmap"
)

// ParseBackend converts a command-line spelling into a BackendKind.
func ParseBackend(s string) (BackendKind, error) {
	switch BackendKind(s) {
	case File, Mmap:
		return BackendKind(s), nil
	}
	return "", fmt.Errorf("array: unknown backend %q (want %q or %q)", s, File, Mmap)
}

// CreateOptions parameterizes Create. V and K are required; the zero
// value of every other field selects a default.
type CreateOptions struct {
	// V is the number of disks; K the parity stripe size.
	V, K int

	// Copies is the number of layout copies per disk (default 1).
	Copies int

	// UnitSize is the stripe-unit payload size in bytes (default 4096).
	UnitSize int

	// Method pins a construction method; empty picks automatically.
	Method string

	// Backend selects the backend the returned array serves from
	// (default File).
	Backend BackendKind

	// ParityShards is the number of parity units per stripe (m): the
	// simultaneous disk failures the array tolerates. 0 and 1 both build
	// the classic single-parity XOR array; m >= 2 runs the default
	// m-failure code (Reed–Solomon) over the declustered placement.
	ParityShards int
}

// OpenOption tunes Open.
type OpenOption func(*openConfig)

type openConfig struct {
	backend BackendKind
}

// WithBackend selects the Backend implementation serving each disk file
// (default File).
func WithBackend(k BackendKind) OpenOption {
	return func(c *openConfig) { c.backend = k }
}

// Array is an open durable array: a pdl/store Store over the directory's
// disk files plus the manifest tracking its persistent state. Fail,
// Rebuild, Sync, and Close are serialized with each other; the Store's
// data path stays fully concurrent.
type Array struct {
	dir     string
	backend BackendKind

	mu  sync.Mutex
	man *Manifest
	s   *store.Store
}

// diskFileName is the canonical disk file name for new arrays. Open
// trusts the manifest, not this pattern: renaming here is a format bump.
func diskFileName(d int) string { return fmt.Sprintf("disk%02d.dat", d) }

// rebuildSuffix marks the staging file a rebuild streams onto before the
// atomic rename over the failed disk's file.
const rebuildSuffix = ".rebuild"

// Create provisions dir as a fresh array: build the layout, write
// layout.json and the zeroed disk files, commit the manifest, and open
// the result. It refuses a directory that already holds an array.
func Create(dir string, opts CreateOptions) (*Array, error) {
	if opts.Copies == 0 {
		opts.Copies = 1
	}
	if opts.UnitSize == 0 {
		opts.UnitSize = 4096
	}
	if opts.Backend == "" {
		opts.Backend = File
	}
	if opts.Copies < 1 {
		return nil, fmt.Errorf("array: Create: copies %d < 1", opts.Copies)
	}
	if opts.UnitSize < 1 {
		return nil, fmt.Errorf("array: Create: unit size %d < 1", opts.UnitSize)
	}
	if _, err := ParseBackend(string(opts.Backend)); err != nil {
		return nil, err
	}
	if _, err := os.Stat(filepath.Join(dir, ManifestName)); err == nil {
		return nil, fmt.Errorf("array: Create: %s already holds an array", dir)
	}
	var bopts []pdl.Option
	if opts.Method != "" {
		bopts = append(bopts, pdl.WithMethod(opts.Method))
	}
	if opts.ParityShards > 1 {
		bopts = append(bopts, pdl.WithParityShards(opts.ParityShards))
	}
	res, err := pdl.Build(opts.V, opts.K, bopts...)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	lf, err := os.Create(filepath.Join(dir, LayoutName))
	if err != nil {
		return nil, err
	}
	if err := res.Layout.WriteJSON(lf); err != nil {
		lf.Close()
		return nil, err
	}
	if err := lf.Close(); err != nil {
		return nil, err
	}
	man := &Manifest{
		Version:      FormatVersion,
		Method:       res.Method,
		V:            opts.V,
		K:            opts.K,
		UnitSize:     opts.UnitSize,
		DiskUnits:    opts.Copies * res.Layout.Size,
		ParityShards: opts.ParityShards,
		Disks:        make([]DiskInfo, opts.V),
	}
	diskBytes := int64(man.DiskUnits) * int64(man.UnitSize)
	for d := 0; d < opts.V; d++ {
		man.Disks[d] = DiskInfo{File: diskFileName(d), State: DiskHealthy}
		fd, err := store.CreateFileDisk(filepath.Join(dir, man.Disks[d].File), diskBytes)
		if err != nil {
			return nil, err
		}
		if err := fd.Close(); err != nil {
			return nil, err
		}
	}
	// The manifest lands last: a crash mid-Create leaves a directory Open
	// rejects (no array.json) instead of a half-provisioned "array".
	if err := writeManifest(dir, man); err != nil {
		return nil, err
	}
	return Open(dir, WithBackend(opts.Backend))
}

// Open reopens the array in dir: manifest, layout, one Backend per disk
// file, and the persisted failure state applied to the Store. Crash
// leftovers (a torn manifest staging file, an unfinished rebuild staging
// file) are removed.
func Open(dir string, opts ...OpenOption) (*Array, error) {
	cfg := openConfig{backend: File}
	for _, o := range opts {
		o(&cfg)
	}
	if _, err := ParseBackend(string(cfg.backend)); err != nil {
		return nil, err
	}
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	// A leftover staging manifest lost the race to the rename; the real
	// array.json just decoded is authoritative. Same for rebuild staging
	// files: an interrupted rebuild never renamed over the scrubbed disk,
	// so the manifest still says failed and the staging bytes are stale.
	os.Remove(filepath.Join(dir, manifestTmp))
	for d := range man.Disks {
		os.Remove(filepath.Join(dir, man.Disks[d].File+rebuildSuffix))
	}
	lf, err := os.Open(filepath.Join(dir, LayoutName))
	if err != nil {
		return nil, err
	}
	l, err := layout.ReadJSON(lf)
	lf.Close()
	if err != nil {
		return nil, err
	}
	if l.V != man.V {
		return nil, fmt.Errorf("array: Open: layout has %d disks, manifest says %d", l.V, man.V)
	}
	if l.Size < 1 || man.DiskUnits%l.Size != 0 {
		return nil, fmt.Errorf("array: Open: disk units %d not a multiple of layout size %d", man.DiskUnits, l.Size)
	}
	mapper, err := pdl.NewMapper(l, man.DiskUnits)
	if err != nil {
		return nil, err
	}
	backends := make([]store.Backend, man.V)
	closeAll := func() {
		for _, b := range backends {
			if b != nil {
				b.Close()
			}
		}
	}
	for d := range backends {
		path := filepath.Join(dir, man.Disks[d].File)
		var b store.Backend
		switch cfg.backend {
		case Mmap:
			b, err = store.OpenMmapDisk(path)
		default:
			b, err = store.OpenFileDisk(path)
		}
		if err != nil {
			closeAll()
			return nil, err
		}
		backends[d] = b
	}
	c, err := man.Code()
	if err != nil {
		closeAll()
		return nil, err
	}
	s, err := store.NewCode(mapper, man.UnitSize, backends, c)
	if err != nil {
		closeAll()
		return nil, err
	}
	for _, f := range man.FailedDisks() {
		if err := s.Fail(f); err != nil {
			s.Close()
			return nil, err
		}
	}
	return &Array{dir: dir, backend: cfg.backend, man: man, s: s}, nil
}

// Store returns the byte engine serving the array.
func (a *Array) Store() *store.Store { return a.s }

// Dir returns the array directory.
func (a *Array) Dir() string { return a.dir }

// Backend returns the BackendKind serving the disk files.
func (a *Array) Backend() BackendKind { return a.backend }

// Manifest returns a copy of the current manifest.
func (a *Array) Manifest() *Manifest {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.man.clone()
}

// DiskPath returns disk d's file path. The manifest owns naming; this is
// the only supported way to locate a disk file.
func (a *Array) DiskPath(d int) (string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if d < 0 || d >= len(a.man.Disks) {
		return "", fmt.Errorf("array: DiskPath(%d): disk outside [0,%d)", d, len(a.man.Disks))
	}
	return filepath.Join(a.dir, a.man.Disks[d].File), nil
}

// Sync atomically rewrites the manifest. Fail and Rebuild sync
// themselves; call it directly only after mutating state by other means.
func (a *Array) Sync() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return writeManifest(a.dir, a.man)
}

// Fail marks disk d failed and makes it true on disk: the store stops
// reading the disk, the disk file is scrubbed (its bytes are genuinely
// gone — everything served afterwards comes from survivor
// reconstruction), and the manifest records the failure so a restart
// reopens degraded instead of serving scrubbed zeros as data. An array
// with m parity shards tolerates up to m simultaneous failures.
func (a *Array) Fail(d int) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.s.Fail(d); err != nil {
		return err
	}
	// The failure is recorded BEFORE the scrub: if we crash (or the
	// manifest write fails) between the two, a restart serves the disk
	// degraded with its bytes still intact — safe. Scrub-then-record
	// would open a window where a restart reads scrubbed zeros as
	// healthy data.
	a.man.Disks[d].State = DiskFailed
	if err := writeManifest(a.dir, a.man); err != nil {
		a.man.Disks[d].State = DiskHealthy
		return err
	}
	// The store has quiesced the disk: no plan reads or writes it now, so
	// truncating the file under the still-open backend is safe (the
	// backend is only closed, never used, after this point).
	path := filepath.Join(a.dir, a.man.Disks[d].File)
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	scrub, err := store.CreateFileDisk(path, st.Size())
	if err != nil {
		return err
	}
	return scrub.Close()
}

// Rebuild reconstructs the lowest-numbered failed disk from the
// survivors onto a staging file, atomically renames it over the scrubbed
// disk file, and records the disk rebuilt — all while foreground traffic
// continues degraded (the store's online rebuild). With several disks
// down, call it once per failure. It returns the reconstruction
// duration.
func (a *Array) Rebuild() (time.Duration, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	failed := a.man.Failed()
	if failed < 0 {
		return 0, fmt.Errorf("array: Rebuild: no failed disk")
	}
	path := filepath.Join(a.dir, a.man.Disks[failed].File)
	staging := path + rebuildSuffix
	diskBytes := int64(a.man.DiskUnits) * int64(a.man.UnitSize)
	var replacement store.Backend
	var err error
	switch a.backend {
	case Mmap:
		replacement, err = store.CreateMmapDisk(staging, diskBytes)
	default:
		replacement, err = store.CreateFileDisk(staging, diskBytes)
	}
	if err != nil {
		return 0, err
	}
	old := a.s.DiskBackend(failed)
	start := time.Now()
	if err := a.s.Rebuild(replacement); err != nil {
		replacement.Close()
		os.Remove(staging)
		return 0, err
	}
	elapsed := time.Since(start)
	// The replacement backend keeps serving across the rename (it holds
	// the inode); the scrubbed file's inode is freed when old closes.
	if err := os.Rename(staging, path); err != nil {
		return elapsed, err
	}
	old.Close()
	a.man.Disks[failed].State = DiskRebuilt
	return elapsed, writeManifest(a.dir, a.man)
}

// Close closes the store and every backend. The manifest is already
// durable (every mutation synced itself), so Close writes nothing.
func (a *Array) Close() error { return a.s.Close() }
