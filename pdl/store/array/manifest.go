package array

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/pdl/code"
)

// FormatVersion is the newest manifest format this package reads and
// writes. Version 2 added the erasure-code fields (codec, parity_shards);
// arrays using the classic defaults are still written as version 1, so
// older binaries keep reading them. Open rejects manifests from a newer
// format with ErrVersion rather than guessing; a future format bump reads
// old versions here, in one place.
const FormatVersion = 2

// ManifestName is the manifest file inside an array directory.
const ManifestName = "array.json"

// LayoutName is the layout file inside an array directory.
const LayoutName = "layout.json"

// manifestTmp is the staging name Sync writes before the atomic rename;
// a crash mid-Sync leaves it behind and Open ignores it.
const manifestTmp = ManifestName + ".tmp"

// DiskState is one disk's recorded condition.
type DiskState string

const (
	// DiskHealthy serves its own bytes.
	DiskHealthy DiskState = "healthy"

	// DiskFailed has lost its bytes (the file is scrubbed): its units are
	// reconstructed from the survivors until a rebuild completes.
	DiskFailed DiskState = "failed"

	// DiskRebuilt serves its own bytes again after a completed rebuild —
	// healthy, with its history recorded.
	DiskRebuilt DiskState = "rebuilt"
)

// DiskInfo is one disk's manifest entry.
type DiskInfo struct {
	// File is the disk's file name inside the array directory. The
	// manifest owns naming: tools never derive disk paths themselves.
	File string `json:"file"`

	// State is the disk's recorded condition.
	State DiskState `json:"state"`
}

// Manifest is the decoded array.json: everything needed to reopen an
// array directory — layout construction parameters, geometry, and
// per-disk state — with a format version first so future formats stay
// recognizable.
type Manifest struct {
	// Version is the manifest format version (FormatVersion when written
	// by this package).
	Version int `json:"version"`

	// Method names the construction that built the layout (informational;
	// the layout itself is read from layout.json).
	Method string `json:"method"`

	// V and K echo the build parameters: array size and parity stripe size.
	V int `json:"v"`
	K int `json:"k"`

	// UnitSize is the stripe-unit payload size in bytes.
	UnitSize int `json:"unit_size"`

	// DiskUnits is each disk's size in units (a multiple of the layout
	// size: the layout-copies factor is DiskUnits/Layout.Size).
	DiskUnits int `json:"disk_units"`

	// Codec names the erasure code governing parity bytes (a
	// repro/pdl/code name). Empty selects the default for ParityShards:
	// "xor" for single parity, "rs" beyond. Format version 2.
	Codec string `json:"codec,omitempty"`

	// ParityShards is the number of parity units per stripe (m): the
	// simultaneous disk failures the array tolerates. 0 and 1 both mean
	// the classic single-parity array. Format version 2.
	ParityShards int `json:"parity_shards,omitempty"`

	// Disks holds one entry per disk, indexed by disk number.
	Disks []DiskInfo `json:"disks"`
}

// parityShards returns the effective parity count (0 reads as the
// classic single parity).
func (m *Manifest) parityShards() int {
	if m.ParityShards < 1 {
		return 1
	}
	return m.ParityShards
}

// Code builds the erasure code the manifest declares: the named codec,
// or the default for the parity count when Codec is empty.
func (m *Manifest) Code() (code.Code, error) {
	if m.Codec == "" {
		return code.Default(m.parityShards()), nil
	}
	return code.New(m.Codec, m.parityShards())
}

// Failed returns the lowest-numbered failed disk, -1 when every disk
// serves its own bytes. (The disk the next Rebuild reconstructs; see
// FailedDisks for the whole set.)
func (m *Manifest) Failed() int {
	for d := range m.Disks {
		if m.Disks[d].State == DiskFailed {
			return d
		}
	}
	return -1
}

// FailedDisks returns every failed disk in increasing order (nil when
// none). DecodeManifest bounds the count by the array's parity shards.
func (m *Manifest) FailedDisks() []int {
	var out []int
	for d := range m.Disks {
		if m.Disks[d].State == DiskFailed {
			out = append(out, d)
		}
	}
	return out
}

// clone returns a deep copy.
func (m *Manifest) clone() *Manifest {
	out := *m
	out.Disks = append([]DiskInfo(nil), m.Disks...)
	return &out
}

// DecodeManifest parses and validates a manifest. It never panics on
// hostile input: truncated, type-skewed, or out-of-range documents return
// errors (FuzzOpenManifest pins this). Version skew beyond FormatVersion
// is ErrVersion.
func DecodeManifest(b []byte) (*Manifest, error) {
	m := &Manifest{}
	if err := json.Unmarshal(b, m); err != nil {
		return nil, fmt.Errorf("array: manifest: %w", err)
	}
	if m.Version < 1 {
		return nil, fmt.Errorf("array: manifest: bad version %d", m.Version)
	}
	if m.Version > FormatVersion {
		return nil, fmt.Errorf("array: manifest: %w: format %d, this build reads <= %d", ErrVersion, m.Version, FormatVersion)
	}
	if m.V < 2 {
		return nil, fmt.Errorf("array: manifest: v=%d, want >= 2", m.V)
	}
	if m.K < 2 || m.K > m.V {
		return nil, fmt.Errorf("array: manifest: k=%d outside [2,%d]", m.K, m.V)
	}
	if m.UnitSize < 1 {
		return nil, fmt.Errorf("array: manifest: unit size %d < 1", m.UnitSize)
	}
	if m.DiskUnits < 1 {
		return nil, fmt.Errorf("array: manifest: disk units %d < 1", m.DiskUnits)
	}
	if int64(m.DiskUnits)*int64(m.UnitSize) > 1<<56 {
		return nil, fmt.Errorf("array: manifest: disk of %d x %d bytes implausibly large", m.DiskUnits, m.UnitSize)
	}
	if m.ParityShards < 0 || m.ParityShards > code.MaxParityShards {
		return nil, fmt.Errorf("array: manifest: parity shards %d outside [0,%d]", m.ParityShards, code.MaxParityShards)
	}
	if m.ParityShards >= m.K {
		return nil, fmt.Errorf("array: manifest: %d parity shards leave no data units in a stripe of %d", m.ParityShards, m.K)
	}
	if m.Version < 2 && (m.ParityShards > 1 || (m.Codec != "" && m.Codec != "xor")) {
		return nil, fmt.Errorf("array: manifest: version %d cannot carry codec %q with %d parity shards (format 2 fields)", m.Version, m.Codec, m.ParityShards)
	}
	if _, err := m.Code(); err != nil {
		return nil, fmt.Errorf("array: manifest: %w", err)
	}
	if len(m.Disks) != m.V {
		return nil, fmt.Errorf("array: manifest: %d disk entries for v=%d", len(m.Disks), m.V)
	}
	var failed []int
	seen := make(map[string]int, len(m.Disks))
	for d := range m.Disks {
		e := &m.Disks[d]
		// Disk files must be plain names inside the array directory: a
		// hostile manifest must not reach outside it.
		if e.File == "" || e.File != filepath.Base(e.File) || e.File == "." || e.File == ".." ||
			strings.ContainsAny(e.File, `/\`) {
			return nil, fmt.Errorf("array: manifest: disk %d: bad file name %q", d, e.File)
		}
		// And they must be distinct: two disks over one file would
		// silently clobber each other's bytes.
		if prev, dup := seen[e.File]; dup {
			return nil, fmt.Errorf("array: manifest: disks %d and %d share file %q", prev, d, e.File)
		}
		seen[e.File] = d
		switch e.State {
		case DiskHealthy, DiskRebuilt:
		case DiskFailed:
			if len(failed) >= m.parityShards() {
				return nil, fmt.Errorf("array: manifest: disks %v and %d failed, but %d parity shards tolerate only %d", failed, d, m.parityShards(), m.parityShards())
			}
			failed = append(failed, d)
		default:
			return nil, fmt.Errorf("array: manifest: disk %d: unknown state %q", d, e.State)
		}
	}
	return m, nil
}

// encode renders the manifest as the canonical on-disk JSON, stamping
// the oldest format version able to represent it: arrays on the classic
// single-parity defaults stay version 1, readable by older binaries.
func (m *Manifest) encode() ([]byte, error) {
	out := *m
	if out.ParityShards > 1 || out.Codec != "" {
		out.Version = 2
	} else {
		out.Version = 1
	}
	b, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("array: manifest: %w", err)
	}
	return append(b, '\n'), nil
}

// writeManifest atomically replaces dir's manifest: write the staging
// file, then rename over array.json, so a crash at any point leaves
// either the old or the new manifest — never a torn one.
func writeManifest(dir string, m *Manifest) error {
	b, err := m.encode()
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestTmp)
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, ManifestName)); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// readManifest loads and validates dir's manifest.
func readManifest(dir string) (*Manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	return DecodeManifest(b)
}
