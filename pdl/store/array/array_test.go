package array_test

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/pdl"
	"repro/pdl/layout"
	"repro/pdl/store/array"
)

// backends are the persistent BackendKinds every lifecycle test runs
// against (Mmap resolves to the platform fallback where unsupported).
var backends = []array.BackendKind{array.File, array.Mmap}

// payload fills a deterministic, unit-distinct pattern.
func payload(buf []byte, seed int) []byte {
	for j := range buf {
		buf[j] = byte(seed*31 + j*7 + 1)
	}
	return buf
}

// refModel rebuilds the layout the array was created with and wraps it in
// the single-threaded layout.Data reference engine.
func refModel(t *testing.T, v, k, unitSize int) *layout.Data {
	t.Helper()
	res, err := pdl.Build(v, k)
	if err != nil {
		t.Fatal(err)
	}
	model, err := layout.NewData(res.Layout, unitSize)
	if err != nil {
		t.Fatal(err)
	}
	return model
}

// TestArrayLifecycleCrashRecovery is the randomized crash/reopen
// property test: a random sequence of unit writes, disk failures, and
// rebuilds, with the array periodically "crashed" (dropped without
// Close) and reopened — after every reopen the array must agree
// byte-for-byte with the layout.Data reference model and remember its
// failure state.
func TestArrayLifecycleCrashRecovery(t *testing.T) {
	for _, kind := range backends {
		t.Run(string(kind), func(t *testing.T) {
			const (
				v, k     = 9, 3
				unitSize = 32
				ops      = 400
			)
			dir := t.TempDir()
			arr, err := array.Create(dir, array.CreateOptions{V: v, K: k, UnitSize: unitSize, Backend: kind})
			if err != nil {
				t.Fatal(err)
			}
			model := refModel(t, v, k, unitSize)
			rng := rand.New(rand.NewSource(7))
			buf := make([]byte, unitSize)
			got := make([]byte, unitSize)
			failed := -1

			check := func(tag string, n int) {
				t.Helper()
				for i := 0; i < n; i++ {
					logical := rng.Intn(arr.Store().Capacity())
					want, err := model.ReadLogical(logical)
					if err != nil {
						t.Fatal(err)
					}
					if err := arr.Store().Read(logical, got); err != nil {
						t.Fatalf("%s: read %d: %v", tag, logical, err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("%s: logical %d: array %x != model %x", tag, logical, got, want)
					}
				}
			}

			for i := 0; i < ops; i++ {
				switch r := rng.Intn(100); {
				case r < 70: // unit write (healthy or degraded)
					logical := rng.Intn(arr.Store().Capacity())
					payload(buf, rng.Int())
					if err := arr.Store().Write(logical, buf); err != nil {
						t.Fatal(err)
					}
					if err := model.WriteLogical(logical, buf); err != nil {
						t.Fatal(err)
					}
				case r < 78: // fail a random disk
					if failed < 0 {
						failed = rng.Intn(v)
						if err := arr.Fail(failed); err != nil {
							t.Fatal(err)
						}
					}
				case r < 84: // rebuild
					if failed >= 0 {
						if _, err := arr.Rebuild(); err != nil {
							t.Fatal(err)
						}
						failed = -1
					}
				default: // crash: drop without Close, reopen
					arr, err = array.Open(dir, array.WithBackend(kind))
					if err != nil {
						t.Fatalf("reopen after crash: %v", err)
					}
					if got := arr.Store().Failed(); got != failed {
						t.Fatalf("reopen forgot failure state: Failed() = %d, want %d", got, failed)
					}
					check("after crash", 20)
				}
			}

			// Settle: rebuild if degraded, then the full sweep and the
			// parity invariant must hold across one more crash/reopen.
			if failed >= 0 {
				if _, err := arr.Rebuild(); err != nil {
					t.Fatal(err)
				}
			}
			arr, err = array.Open(dir, array.WithBackend(kind))
			if err != nil {
				t.Fatal(err)
			}
			defer arr.Close()
			for logical := 0; logical < arr.Store().Capacity(); logical++ {
				want, err := model.ReadLogical(logical)
				if err != nil {
					t.Fatal(err)
				}
				if err := arr.Store().Read(logical, got); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("final sweep: logical %d diverges", logical)
				}
			}
			if err := arr.Store().VerifyParity(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestArrayFailPersistsAcrossCrash pins the headline durability fix: a
// scrubbed disk must never be served as healthy after a restart.
func TestArrayFailPersistsAcrossCrash(t *testing.T) {
	for _, kind := range backends {
		t.Run(string(kind), func(t *testing.T) {
			const (
				v, k     = 7, 3
				unitSize = 64
			)
			dir := t.TempDir()
			arr, err := array.Create(dir, array.CreateOptions{V: v, K: k, UnitSize: unitSize, Backend: kind})
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, unitSize)
			for i := 0; i < arr.Store().Capacity(); i++ {
				if err := arr.Store().Write(i, payload(buf, i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := arr.Fail(2); err != nil {
				t.Fatal(err)
			}
			if m := arr.Manifest(); m.Disks[2].State != array.DiskFailed || m.Failed() != 2 {
				t.Fatalf("manifest after Fail: %+v", m.Disks)
			}

			// Crash (no Close), reopen: still degraded, bytes still correct.
			arr, err = array.Open(dir, array.WithBackend(kind))
			if err != nil {
				t.Fatal(err)
			}
			if arr.Store().Failed() != 2 {
				t.Fatalf("restart forgot the scrubbed disk: Failed() = %d, want 2", arr.Store().Failed())
			}
			got := make([]byte, unitSize)
			for i := 0; i < arr.Store().Capacity(); i++ {
				if err := arr.Store().Read(i, got); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, payload(buf, i)) {
					t.Fatalf("degraded read %d after restart diverges", i)
				}
			}

			// Degraded writes survive another crash too.
			if err := arr.Store().Write(3, payload(buf, 10007)); err != nil {
				t.Fatal(err)
			}
			arr, err = array.Open(dir, array.WithBackend(kind))
			if err != nil {
				t.Fatal(err)
			}
			if err := arr.Store().Read(3, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, payload(buf, 10007)) {
				t.Fatal("degraded write lost across restart")
			}

			// Rebuild, close cleanly, reopen: healthy, history recorded.
			if _, err := arr.Rebuild(); err != nil {
				t.Fatal(err)
			}
			if err := arr.Close(); err != nil {
				t.Fatal(err)
			}
			arr, err = array.Open(dir, array.WithBackend(kind))
			if err != nil {
				t.Fatal(err)
			}
			defer arr.Close()
			if arr.Store().Failed() != -1 {
				t.Fatalf("after rebuild+restart: Failed() = %d, want -1", arr.Store().Failed())
			}
			if m := arr.Manifest(); m.Disks[2].State != array.DiskRebuilt {
				t.Fatalf("rebuild history not recorded: disk 2 state %q", m.Disks[2].State)
			}
			if err := arr.Store().VerifyParity(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTornManifestAndStaleStaging proves the atomic-rename protocol: a
// crash mid-Sync leaves array.json.tmp (possibly garbage) next to a good
// array.json, and a crash mid-Rebuild leaves a stale .rebuild staging
// file — Open must use the committed manifest, ignore and remove both
// leftovers, and serve the committed bytes.
func TestTornManifestAndStaleStaging(t *testing.T) {
	const unitSize = 64
	dir := t.TempDir()
	arr, err := array.Create(dir, array.CreateOptions{V: 7, K: 3, UnitSize: unitSize})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, unitSize)
	for i := 0; i < arr.Store().Capacity(); i++ {
		if err := arr.Store().Write(i, payload(buf, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := arr.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the torn Sync and the interrupted rebuild.
	torn := filepath.Join(dir, array.ManifestName+".tmp")
	if err := os.WriteFile(torn, []byte(`{"version": 9, "truncated`), 0o644); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, "disk03.dat.rebuild")
	if err := os.WriteFile(stale, []byte("stale reconstruction"), 0o644); err != nil {
		t.Fatal(err)
	}

	arr, err = array.Open(dir)
	if err != nil {
		t.Fatalf("Open with torn staging files: %v", err)
	}
	defer arr.Close()
	for _, leftover := range []string{torn, stale} {
		if _, err := os.Stat(leftover); !os.IsNotExist(err) {
			t.Errorf("leftover %s survived Open", filepath.Base(leftover))
		}
	}
	got := make([]byte, unitSize)
	for i := 0; i < arr.Store().Capacity(); i++ {
		if err := arr.Store().Read(i, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload(buf, i)) {
			t.Fatalf("read %d diverges after torn-manifest recovery", i)
		}
	}
	if err := arr.Store().VerifyParity(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenErrors pins the failure modes: version skew, corrupt JSON,
// geometry mismatches, and bad backends all error cleanly.
func TestOpenErrors(t *testing.T) {
	if _, err := array.Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("Open of a non-array directory accepted")
	}

	mk := func(t *testing.T) string {
		dir := t.TempDir()
		arr, err := array.Create(dir, array.CreateOptions{V: 5, K: 3, UnitSize: 16})
		if err != nil {
			t.Fatal(err)
		}
		arr.Close()
		return dir
	}

	t.Run("VersionSkew", func(t *testing.T) {
		dir := mk(t)
		b, err := os.ReadFile(filepath.Join(dir, array.ManifestName))
		if err != nil {
			t.Fatal(err)
		}
		skewed := bytes.Replace(b, []byte(`"version": 1`), []byte(`"version": 99`), 1)
		if bytes.Equal(skewed, b) {
			t.Fatal("version field not found to skew")
		}
		if err := os.WriteFile(filepath.Join(dir, array.ManifestName), skewed, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = array.Open(dir)
		if !errors.Is(err, array.ErrVersion) {
			t.Fatalf("future-format Open: %v, want ErrVersion", err)
		}
	})

	t.Run("CorruptManifest", func(t *testing.T) {
		dir := mk(t)
		if err := os.WriteFile(filepath.Join(dir, array.ManifestName), []byte("{"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := array.Open(dir); err == nil {
			t.Error("corrupt manifest accepted")
		}
	})

	t.Run("TruncatedDisk", func(t *testing.T) {
		dir := mk(t)
		if err := os.Truncate(filepath.Join(dir, "disk01.dat"), 3); err != nil {
			t.Fatal(err)
		}
		if _, err := array.Open(dir); err == nil {
			t.Error("truncated disk file accepted")
		}
	})

	t.Run("BadBackend", func(t *testing.T) {
		dir := mk(t)
		if _, err := array.Open(dir, array.WithBackend("ramdouble")); err == nil {
			t.Error("unknown backend kind accepted")
		}
	})

	t.Run("CreateTwice", func(t *testing.T) {
		dir := mk(t)
		if _, err := array.Create(dir, array.CreateOptions{V: 5, K: 3}); err == nil {
			t.Error("Create over an existing array accepted")
		}
	})
}

// TestDiskPath pins that the manifest owns disk naming.
func TestDiskPath(t *testing.T) {
	dir := t.TempDir()
	arr, err := array.Create(dir, array.CreateOptions{V: 5, K: 3, UnitSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer arr.Close()
	p, err := arr.DiskPath(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("DiskPath(4) = %s: %v", p, err)
	}
	if _, err := arr.DiskPath(5); err == nil {
		t.Error("out-of-range DiskPath accepted")
	}
}
