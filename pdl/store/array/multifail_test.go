package array_test

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"testing"

	"repro/pdl"
	"repro/pdl/layout"
	"repro/pdl/store/array"
)

// lifecycleOps returns the operation count for the randomized lifecycle
// tests: def on a normal run, or PDL_LIFECYCLE_OPS when set (the nightly
// workflow cranks it up for a long soak).
func lifecycleOps(def int) int {
	if v := os.Getenv("PDL_LIFECYCLE_OPS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// TestArrayTwoFailureLifecycle is the two-failure crash/reopen property
// test: a Reed–Solomon array (two parity units per stripe) under a
// random sequence of writes, disk failures (up to two at once, each
// scrubbing the disk file), per-disk rebuilds, and crash/reopen cycles —
// after every reopen the array must remember its whole failed set and
// agree byte-for-byte with the layout.Data reference model.
func TestArrayTwoFailureLifecycle(t *testing.T) {
	for _, kind := range backends {
		t.Run(string(kind), func(t *testing.T) {
			const (
				v, k     = 9, 4
				unitSize = 32
			)
			ops := lifecycleOps(400)
			dir := t.TempDir()
			arr, err := array.Create(dir, array.CreateOptions{V: v, K: k, UnitSize: unitSize, Backend: kind, ParityShards: 2})
			if err != nil {
				t.Fatal(err)
			}
			if got := arr.Store().Code().Name(); got != "rs" {
				t.Fatalf("created array runs %q, want rs", got)
			}
			res, err := pdl.Build(v, k, pdl.WithParityShards(2))
			if err != nil {
				t.Fatal(err)
			}
			model, err := layout.NewData(res.Layout, unitSize)
			if err != nil {
				t.Fatal(err)
			}

			rng := rand.New(rand.NewSource(11))
			buf := make([]byte, unitSize)
			got := make([]byte, unitSize)
			var failed []int
			has := func(d int) bool {
				for _, x := range failed {
					if x == d {
						return true
					}
				}
				return false
			}

			check := func(tag string, n int) {
				t.Helper()
				for i := 0; i < n; i++ {
					logical := rng.Intn(arr.Store().Capacity())
					want, err := model.ReadLogical(logical)
					if err != nil {
						t.Fatal(err)
					}
					if err := arr.Store().Read(logical, got); err != nil {
						t.Fatalf("%s: read %d (failed=%v): %v", tag, logical, failed, err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("%s: logical %d (failed=%v): array %x != model %x", tag, logical, failed, got, want)
					}
				}
			}

			for i := 0; i < ops; i++ {
				switch r := rng.Intn(100); {
				case r < 65: // unit write (healthy or degraded)
					logical := rng.Intn(arr.Store().Capacity())
					payload(buf, rng.Int())
					if err := arr.Store().Write(logical, buf); err != nil {
						t.Fatal(err)
					}
					if err := model.WriteLogical(logical, buf); err != nil {
						t.Fatal(err)
					}
				case r < 78: // fail another disk (up to the code's two)
					if len(failed) < 2 {
						d := rng.Intn(v)
						if has(d) {
							break
						}
						if err := arr.Fail(d); err != nil {
							t.Fatal(err)
						}
						failed = append(failed, d)
						sort.Ints(failed)
					}
				case r < 86: // rebuild one disk (the lowest failed)
					if len(failed) > 0 {
						if _, err := arr.Rebuild(); err != nil {
							t.Fatal(err)
						}
						failed = failed[1:]
					}
				default: // crash: drop without Close, reopen
					arr, err = array.Open(dir, array.WithBackend(kind))
					if err != nil {
						t.Fatalf("reopen after crash (failed=%v): %v", failed, err)
					}
					gotFailed := arr.Store().FailedDisks()
					if len(gotFailed) != len(failed) {
						t.Fatalf("reopen forgot failures: %v, want %v", gotFailed, failed)
					}
					for j := range failed {
						if gotFailed[j] != failed[j] {
							t.Fatalf("reopen forgot failures: %v, want %v", gotFailed, failed)
						}
					}
					check("after crash", 20)
				}
			}

			// Settle: rebuild everything, then the full sweep and the
			// parity invariant must hold across one more crash/reopen.
			for len(failed) > 0 {
				if _, err := arr.Rebuild(); err != nil {
					t.Fatal(err)
				}
				failed = failed[1:]
			}
			arr, err = array.Open(dir, array.WithBackend(kind))
			if err != nil {
				t.Fatal(err)
			}
			defer arr.Close()
			for logical := 0; logical < arr.Store().Capacity(); logical++ {
				want, err := model.ReadLogical(logical)
				if err != nil {
					t.Fatal(err)
				}
				if err := arr.Store().Read(logical, got); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("final sweep: logical %d diverges", logical)
				}
			}
			if err := arr.Store().VerifyParity(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestManifestFormatCompat pins the manifest version contract: default
// single-parity arrays still write format 1 (readable by older
// binaries), Reed–Solomon arrays write format 2, a hand-written version-1
// document decodes, and version-1 documents cannot smuggle format-2
// codec fields.
func TestManifestFormatCompat(t *testing.T) {
	t.Run("XORWritesV1", func(t *testing.T) {
		dir := t.TempDir()
		arr, err := array.Create(dir, array.CreateOptions{V: 5, K: 3, UnitSize: 16})
		if err != nil {
			t.Fatal(err)
		}
		arr.Close()
		b, err := os.ReadFile(filepath.Join(dir, array.ManifestName))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Contains(b, []byte(`"version": 1`)) {
			t.Fatalf("default array wrote a non-v1 manifest:\n%s", b)
		}
		if bytes.Contains(b, []byte("codec")) || bytes.Contains(b, []byte("parity_shards")) {
			t.Fatalf("default array leaked format-2 fields:\n%s", b)
		}
	})

	t.Run("RSWritesV2AndReopens", func(t *testing.T) {
		dir := t.TempDir()
		arr, err := array.Create(dir, array.CreateOptions{V: 9, K: 4, UnitSize: 16, ParityShards: 2})
		if err != nil {
			t.Fatal(err)
		}
		buf := payload(make([]byte, 16), 3)
		if err := arr.Store().Write(0, buf); err != nil {
			t.Fatal(err)
		}
		arr.Close()
		b, err := os.ReadFile(filepath.Join(dir, array.ManifestName))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Contains(b, []byte(`"version": 2`)) || !bytes.Contains(b, []byte(`"parity_shards": 2`)) {
			t.Fatalf("RS array manifest:\n%s", b)
		}
		arr, err = array.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer arr.Close()
		if arr.Store().Code().Name() != "rs" || arr.Store().Code().ParityShards() != 2 {
			t.Fatalf("reopened RS array runs %s/%d", arr.Store().Code().Name(), arr.Store().Code().ParityShards())
		}
		got := make([]byte, 16)
		if err := arr.Store().Read(0, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, buf) {
			t.Fatal("RS array lost bytes across reopen")
		}
	})

	t.Run("V1FixtureDecodes", func(t *testing.T) {
		// The exact shape this package wrote before format 2 existed.
		fixture := []byte(`{
  "version": 1,
  "method": "ring",
  "v": 5,
  "k": 3,
  "unit_size": 16,
  "disk_units": 12,
  "disks": [
    {"file": "disk00.dat", "state": "healthy"},
    {"file": "disk01.dat", "state": "failed"},
    {"file": "disk02.dat", "state": "healthy"},
    {"file": "disk03.dat", "state": "rebuilt"},
    {"file": "disk04.dat", "state": "healthy"}
  ]
}`)
		m, err := array.DecodeManifest(fixture)
		if err != nil {
			t.Fatal(err)
		}
		if m.Failed() != 1 || len(m.FailedDisks()) != 1 {
			t.Fatalf("v1 fixture: Failed=%d FailedDisks=%v", m.Failed(), m.FailedDisks())
		}
		c, err := m.Code()
		if err != nil {
			t.Fatal(err)
		}
		if c.Name() != "xor" || c.ParityShards() != 1 {
			t.Fatalf("v1 fixture code: %s/%d", c.Name(), c.ParityShards())
		}
	})

	t.Run("V1RejectsFormat2Fields", func(t *testing.T) {
		bad := []byte(`{
  "version": 1,
  "method": "ring",
  "v": 9,
  "k": 4,
  "unit_size": 16,
  "disk_units": 12,
  "parity_shards": 2,
  "disks": [
    {"file": "d0", "state": "healthy"}, {"file": "d1", "state": "healthy"},
    {"file": "d2", "state": "healthy"}, {"file": "d3", "state": "healthy"},
    {"file": "d4", "state": "healthy"}, {"file": "d5", "state": "healthy"},
    {"file": "d6", "state": "healthy"}, {"file": "d7", "state": "healthy"},
    {"file": "d8", "state": "healthy"}
  ]
}`)
		if _, err := array.DecodeManifest(bad); err == nil {
			t.Error("version-1 manifest with parity_shards accepted")
		}
	})

	t.Run("FailedBudget", func(t *testing.T) {
		two := []byte(`{
  "version": 2,
  "method": "ring",
  "v": 5,
  "k": 3,
  "unit_size": 16,
  "disk_units": 12,
  "disks": [
    {"file": "d0", "state": "failed"},
    {"file": "d1", "state": "failed"},
    {"file": "d2", "state": "healthy"},
    {"file": "d3", "state": "healthy"},
    {"file": "d4", "state": "healthy"}
  ]
}`)
		if _, err := array.DecodeManifest(two); err == nil {
			t.Error("two failed disks accepted on a single-parity manifest")
		}
		rs := bytes.Replace(two, []byte(`"disk_units": 12,`), []byte(`"disk_units": 12,
  "codec": "rs",
  "parity_shards": 2,`), 1)
		m, err := array.DecodeManifest(rs)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.FailedDisks(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
			t.Fatalf("FailedDisks() = %v, want [0 1]", got)
		}
	})
}
