package array_test

import (
	"encoding/json"
	"testing"

	"repro/pdl/store/array"
)

// FuzzOpenManifest throws arbitrary bytes at the manifest decoder (the
// same entry Open uses): it must error cleanly on hostile, truncated, or
// version-skewed documents — never panic or index out of range — and
// anything it accepts must survive an encode/decode round trip with the
// validated invariants intact. Run as a CI smoke alongside the wire
// protocol's FuzzDecodeRequest.
func FuzzOpenManifest(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"version": 99}`))
	f.Add([]byte(`{"version": 1, "v": 3, "k": 2, "unit_size": 1, "disk_units": 1, "disks": []}`))
	f.Add([]byte(`{"version": 1, "v": 2, "k": 2, "unit_size": 4096, "disk_units": 12,
		"disks": [{"file": "disk00.dat", "state": "healthy"}, {"file": "../escape", "state": "failed"}]}`))
	f.Add([]byte(`{"version": 1, "method": "ring", "v": 3, "k": 3, "unit_size": 16, "disk_units": 3,
		"disks": [{"file": "disk00.dat", "state": "healthy"},
		          {"file": "disk01.dat", "state": "failed"},
		          {"file": "disk02.dat", "state": "rebuilt"}]}`))
	f.Add([]byte(`{"version": 1, "v": 3, "k": 3, "unit_size": 16, "disk_units": 3,
		"disks": [{"file": "a", "state": "failed"}, {"file": "b", "state": "failed"}, {"file": "c", "state": "healthy"}]}`))
	f.Add([]byte(`{"version": 1, "v": 2, "k": 2, "unit_size": 16, "disk_units": 2,
		"disks": [{"file": "same.dat", "state": "healthy"}, {"file": "same.dat", "state": "healthy"}]}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		m, err := array.DecodeManifest(body)
		if err != nil {
			return
		}
		// Accepted manifests satisfy the invariants Open relies on.
		if len(m.Disks) != m.V || m.V < 2 || m.K < 2 || m.K > m.V || m.UnitSize < 1 || m.DiskUnits < 1 {
			t.Fatalf("decoder accepted out-of-invariant manifest: %+v", m)
		}
		if f := m.Failed(); f < -1 || f >= m.V {
			t.Fatalf("Failed() = %d outside [-1,%d)", f, m.V)
		}
		re, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		again, err := array.DecodeManifest(re)
		if err != nil {
			t.Fatalf("re-encoded manifest rejected: %v", err)
		}
		if again.Version != m.Version || again.V != m.V || again.K != m.K ||
			again.UnitSize != m.UnitSize || again.DiskUnits != m.DiskUnits ||
			len(again.Disks) != len(m.Disks) {
			t.Fatalf("round trip diverges:\n in %+v\nout %+v", m, again)
		}
	})
}
