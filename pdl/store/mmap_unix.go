//go:build linux || darwin

package store

import (
	"fmt"
	"io"
	"os"
	"syscall"
)

// MmapDisk is a Backend over a memory-mapped file: reads and writes are
// plain memory copies against the shared mapping (no syscalls on the hot
// path, zero allocations), and the kernel's page cache carries the bytes
// back to the file. Flush forces dirty pages out; Close flushes, unmaps,
// and closes the file. Like the other backends it supports concurrent
// ReadAt/WriteAt on disjoint ranges.
//
// On platforms without mmap support the same type falls back to FileDisk
// semantics (positioned file I/O) so callers build unconditionally.
type MmapDisk struct {
	f    *os.File
	data []byte
}

// mmapSupported reports whether this build uses a real memory mapping
// (false on the FileDisk-fallback platforms).
const mmapSupported = true

// CreateMmapDisk creates (or truncates) a file of size bytes and maps it.
func CreateMmapDisk(path string, size int64) (*MmapDisk, error) {
	if size < 0 {
		return nil, fmt.Errorf("store: CreateMmapDisk: negative size %d", size)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: CreateMmapDisk: %w", err)
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: CreateMmapDisk: %w", err)
	}
	return mmapFile(f, size)
}

// OpenMmapDisk maps an existing disk file; its size comes from Stat.
func OpenMmapDisk(path string) (*MmapDisk, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("store: OpenMmapDisk: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: OpenMmapDisk: %w", err)
	}
	return mmapFile(f, st.Size())
}

func mmapFile(f *os.File, size int64) (*MmapDisk, error) {
	if size == 0 {
		// mmap(2) rejects zero-length mappings; an empty disk needs none.
		return &MmapDisk{f: f}, nil
	}
	if size != int64(int(size)) {
		f.Close()
		return nil, fmt.Errorf("store: mmap: size %d overflows the address space", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: mmap %s: %w", f.Name(), err)
	}
	return &MmapDisk{f: f, data: data}, nil
}

// ReadAt implements io.ReaderAt over the mapping.
func (d *MmapDisk) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("store: MmapDisk.ReadAt: negative offset %d", off)
	}
	if off >= int64(len(d.data)) {
		return 0, io.EOF
	}
	n := copy(p, d.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements io.WriterAt over the mapping. Writes past the fixed
// size fail: the mapping does not grow.
func (d *MmapDisk) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("store: MmapDisk.WriteAt: negative offset %d", off)
	}
	// Overflow-safe: off+len(p) could wrap for offsets near MaxInt64.
	if off > int64(len(d.data)) || int64(len(p)) > int64(len(d.data))-off {
		return 0, fmt.Errorf("store: MmapDisk.WriteAt: [%d,%d+%d) outside disk of %d bytes", off, off, len(p), len(d.data))
	}
	return copy(d.data[off:], p), nil
}

// Size returns the mapped length in bytes.
func (d *MmapDisk) Size() int64 { return int64(len(d.data)) }

// File returns the underlying file.
func (d *MmapDisk) File() *os.File { return d.f }

// Flush forces dirty pages of the mapping out to the file. On Linux and
// macOS the mapping shares the page cache with the file, so fsync covers
// pages dirtied through the mapping.
func (d *MmapDisk) Flush() error {
	if d.f == nil {
		return nil
	}
	return d.f.Sync()
}

// Close flushes, unmaps, and closes the file. A second Close is a no-op.
func (d *MmapDisk) Close() error {
	if d.f == nil {
		return nil
	}
	err := d.Flush()
	if d.data != nil {
		if merr := syscall.Munmap(d.data); err == nil {
			err = merr
		}
		d.data = nil
	}
	if cerr := d.f.Close(); err == nil {
		err = cerr
	}
	d.f = nil
	return err
}
