//go:build !race

package store_test

// raceEnabled reports whether the race detector instruments this build;
// the zero-allocation assertion is skipped under it because sync.Pool
// deliberately drops pooled items at random when racing.
const raceEnabled = false
