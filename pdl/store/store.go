// Package store is the serving engine of the parity-declustered layout
// library: a Store owns one byte Backend per disk (in-memory MemDisk
// slabs or FileDisk files) and executes pdl/plan I/O plans against them —
// healthy and degraded reads, read-modify-write and full-stripe parity
// writes, and an online Rebuild that streams survivor XOR reconstruction
// onto a replacement disk while foreground traffic continues.
//
// The engine is built for concurrency: plan compilation state lives in a
// sync.Pool of per-request scratch (a plan.Planner, a reusable Plan, and
// XOR buffers), so the healthy Read/Write hot path performs zero
// allocations per request; parity atomicity comes from striped per-stripe
// RWMutexes (readers share, writers and the rebuilder serialize per
// stripe); per-disk counters are atomics feeding a Stats snapshot.
//
// Correctness is anchored to pdl/layout's single-threaded Data engine:
// the reference model the store's property tests compare every byte
// against (see TestStoreMatchesDataModel).
package store

import (
	"crypto/subtle"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/pdl"
	"repro/pdl/layout"
	"repro/pdl/obs"
	"repro/pdl/plan"
)

// maxLockStripes bounds the striped-lock table: enough locks that
// concurrent writers on distinct stripes rarely collide, small enough to
// make the rebuild/fail all-locks barrier cheap.
const maxLockStripes = 256

// DiskStats is one disk's operation counters.
type DiskStats struct {
	// Reads and Writes count physical unit-range operations issued.
	Reads, Writes int64

	// ReadBytes and WriteBytes count the bytes those operations moved.
	ReadBytes, WriteBytes int64

	// Degraded counts the physical operations issued on behalf of
	// degraded-mode plans (survivor XOR reads, reconstruct-writes,
	// rebuild traffic).
	Degraded int64
}

// Stats is a point-in-time snapshot of a Store's state.
type Stats struct {
	// Failed is the failed disk, -1 when the array is healthy.
	Failed int

	// Rebuilding reports whether an online Rebuild is in progress.
	Rebuilding bool

	// RebuiltStripes is how many stripes the in-progress Rebuild has
	// copied onto the replacement (0 when no rebuild is running);
	// TotalStripes is the stripe count it is working through.
	RebuiltStripes, TotalStripes int

	// Disks holds per-disk counters, indexed by disk.
	Disks []DiskStats
}

// diskCounters is the atomics-backed stats block, padded to a cache line
// so disks don't false-share under concurrent traffic.
type diskCounters struct {
	reads, writes, readBytes, writeBytes, degraded atomic.Int64
	_                                              [24]byte
}

// scratch is the per-request compilation and XOR state recycled through
// the Store's pool: with it, a steady-state healthy Read or Write
// allocates nothing.
type scratch struct {
	pln   *plan.Planner
	p     plan.Plan
	a, b  []byte
	units []layout.Unit

	// stripes and order are the vec-request grouping state: stripes[i] is
	// the stripe of ops[i], order is the stripe-major permutation of op
	// indexes (see prepareVec).
	stripes []int32
	order   []int32
}

// Store serves reads and writes against real bytes under a
// parity-declustered layout. All methods are safe for concurrent use.
type Store struct {
	mapper   pdl.Mapper
	unitSize int
	capacity int // logical data units
	size     int64
	// minSpan is the smallest stripe's data payload in bytes: the
	// cheapest possible full-stripe write, gating the fast-path probe.
	minSpan int

	// locks are the striped per-stripe RW locks: stripe s is guarded by
	// locks[s&lockMask]. failed, disks, rebuildDst, and rebuilt change
	// only while holding every lock, so holding any one of them (even
	// shared) gives a consistent view of all four.
	locks    []sync.RWMutex
	lockMask int

	// admin serializes Fail/Rebuild state transitions; rebuilding and
	// rebuiltStripes are atomics so Stats and metric scrapes read them
	// without touching the admin lock.
	rebuilding     atomic.Bool
	rebuiltStripes atomic.Int64
	admin          sync.Mutex

	disks []Backend
	// failed is the failed disk (-1 healthy). It is stored only while
	// holding every lock; the atomic lets the hot path compile a plan
	// against a pre-lock guess and revalidate once the stripe lock is
	// held.
	failed     atomic.Int32
	rebuildDst Backend
	// rebuilt[s] records that stripe s has been copied onto rebuildDst;
	// it is read and written only under stripe s's lock, so degraded
	// writes keep already-rebuilt stripes current on the replacement.
	rebuilt []bool

	counters []diskCounters
	// opHist records per-operation wall latency of the public I/O entry
	// points (Read/ReadAt/ReadVec and Write/WriteAt/WriteVec), indexed by
	// histRead/histWrite: a single lock-free histogram record per op.
	opHist [2]obs.Hist
	pool   sync.Pool
}

// opHist indexes.
const (
	histRead = iota
	histWrite
)

// New builds a Store executing plans over mapper against one Backend per
// disk. Each backend must hold at least mapper.DiskUnits()*unitSize
// bytes; unit payloads are unitSize bytes.
func New(mapper pdl.Mapper, unitSize int, disks []Backend) (*Store, error) {
	if mapper == nil {
		return nil, fmt.Errorf("store: New: nil Mapper")
	}
	if unitSize < 1 {
		return nil, fmt.Errorf("store: New: unit size %d < 1", unitSize)
	}
	if len(disks) != mapper.Disks() {
		return nil, fmt.Errorf("store: New: %d backends for %d disks", len(disks), mapper.Disks())
	}
	need := int64(mapper.DiskUnits()) * int64(unitSize)
	for d, b := range disks {
		if b == nil {
			return nil, fmt.Errorf("store: New: nil backend for disk %d", d)
		}
		if b.Size() < need {
			return nil, fmt.Errorf("store: New: disk %d holds %d bytes, layout needs %d", d, b.Size(), need)
		}
	}
	n := 1
	for n < mapper.Stripes() && n < maxLockStripes {
		n <<= 1
	}
	s := &Store{
		mapper:   mapper,
		unitSize: unitSize,
		capacity: mapper.DataUnits(),
		size:     int64(mapper.DataUnits()) * int64(unitSize),
		locks:    make([]sync.RWMutex, n),
		lockMask: n - 1,
		disks:    append([]Backend(nil), disks...),
		rebuilt:  make([]bool, mapper.Stripes()),
		counters: make([]diskCounters, mapper.Disks()),
	}
	s.failed.Store(-1)
	var units []layout.Unit
	for stripe := 0; stripe < mapper.Stripes(); stripe++ {
		var err error
		units, err = mapper.AppendStripeUnits(units[:0], stripe)
		if err != nil {
			return nil, fmt.Errorf("store: New: %w", err)
		}
		if span := (len(units) - 1) * unitSize; s.minSpan == 0 || span < s.minSpan {
			s.minSpan = span
		}
	}
	s.pool.New = func() any {
		return &scratch{
			pln: plan.NewPlanner(mapper),
			a:   make([]byte, unitSize),
			b:   make([]byte, unitSize),
		}
	}
	return s, nil
}

// Open is the convenience constructor over the pdl facade: it builds the
// Mapper for a pdl.Build result on disks of diskUnits units and serves it
// from the given backends. A nil backends slice provisions one MemDisk
// per disk, sized exactly for the geometry.
func Open(res *pdl.Result, diskUnits, unitSize int, backends []Backend) (*Store, error) {
	m, err := res.NewMapper(diskUnits)
	if err != nil {
		return nil, fmt.Errorf("store: Open: %w", err)
	}
	if backends == nil {
		backends = make([]Backend, m.Disks())
		for d := range backends {
			backends[d] = NewMemDisk(int64(diskUnits) * int64(unitSize))
		}
	}
	return New(m, unitSize, backends)
}

// Mapper returns the address translator the store serves.
func (s *Store) Mapper() pdl.Mapper { return s.mapper }

// UnitSize returns the payload size of one stripe unit in bytes.
func (s *Store) UnitSize() int { return s.unitSize }

// Capacity returns the number of addressable logical data units.
func (s *Store) Capacity() int { return s.capacity }

// Size returns the logical byte capacity (Capacity * UnitSize).
func (s *Store) Size() int64 { return s.size }

// Failed returns the failed disk, -1 when healthy.
func (s *Store) Failed() int { return int(s.failed.Load()) }

// DiskBackend returns the Backend currently serving disk d, for tools
// and tests inspecting a quiesced store; the store may swap it during
// Rebuild.
func (s *Store) DiskBackend(d int) Backend {
	s.locks[0].RLock()
	defer s.locks[0].RUnlock()
	return s.disks[d]
}

// Stats snapshots the per-disk counters and failure state.
func (s *Store) Stats() Stats {
	st := Stats{
		Failed:         s.Failed(),
		Rebuilding:     s.rebuilding.Load(),
		RebuiltStripes: int(s.rebuiltStripes.Load()),
		TotalStripes:   s.mapper.Stripes(),
		Disks:          make([]DiskStats, len(s.counters)),
	}
	for d := range s.counters {
		c := &s.counters[d]
		st.Disks[d] = DiskStats{
			Reads:      c.reads.Load(),
			Writes:     c.writes.Load(),
			ReadBytes:  c.readBytes.Load(),
			WriteBytes: c.writeBytes.Load(),
			Degraded:   c.degraded.Load(),
		}
	}
	return st
}

// Close closes every backend, returning the first error.
func (s *Store) Close() error {
	var first error
	for _, b := range s.disks {
		if err := b.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// lockFor returns the striped lock guarding a stripe.
func (s *Store) lockFor(stripe int) *sync.RWMutex { return &s.locks[stripe&s.lockMask] }

// lockAll acquires every striped lock (in order), quiescing all ops; it
// guards failure-state transitions.
func (s *Store) lockAll() {
	for i := range s.locks {
		s.locks[i].Lock()
	}
}

func (s *Store) unlockAll() {
	for i := len(s.locks) - 1; i >= 0; i-- {
		s.locks[i].Unlock()
	}
}

// noteIO bumps one disk's counters for a physical operation of n bytes.
func (s *Store) noteIO(disk int, write, degraded bool, n int) {
	c := &s.counters[disk]
	if write {
		c.writes.Add(1)
		c.writeBytes.Add(int64(n))
	} else {
		c.reads.Add(1)
		c.readBytes.Add(int64(n))
	}
	if degraded {
		c.degraded.Add(1)
	}
}

// byteOff converts a unit position plus an intra-unit offset to a disk
// byte offset.
func (s *Store) byteOff(u layout.Unit, within int) int64 {
	return int64(u.Offset)*int64(s.unitSize) + int64(within)
}

// Fail marks a disk failed: reads of its units go degraded (survivor
// XOR), writes switch to their degraded plans. Only a single failure is
// supported; a second Fail before Rebuild completes is an error.
func (s *Store) Fail(disk int) error {
	if disk < 0 || disk >= len(s.disks) {
		return fmt.Errorf("store: Fail(%d): disk outside [0,%d)", disk, len(s.disks))
	}
	s.admin.Lock()
	defer s.admin.Unlock()
	if s.rebuilding.Load() {
		return fmt.Errorf("store: Fail(%d): rebuild in progress", disk)
	}
	s.lockAll()
	defer s.unlockAll()
	if f := s.failed.Load(); f >= 0 {
		return fmt.Errorf("store: Fail(%d): disk %d already failed", disk, f)
	}
	s.failed.Store(int32(disk))
	clear(s.rebuilt)
	s.rebuiltStripes.Store(0)
	return nil
}

// Read fills dst (exactly UnitSize bytes) with the payload of a logical
// data unit, reconstructing it from survivors when its disk is down.
func (s *Store) Read(logical int, dst []byte) error {
	if len(dst) != s.unitSize {
		return fmt.Errorf("store: Read: dst is %d bytes, want unit size %d", len(dst), s.unitSize)
	}
	start := time.Now()
	sc := s.pool.Get().(*scratch)
	err := s.readUnit(sc, logical, 0, dst)
	s.pool.Put(sc)
	s.opHist[histRead].Record(time.Since(start))
	return err
}

// Write stores src (exactly UnitSize bytes) as the payload of a logical
// data unit, maintaining parity via the compiled small-write (or its
// degraded variant).
func (s *Store) Write(logical int, src []byte) error {
	if len(src) != s.unitSize {
		return fmt.Errorf("store: Write: src is %d bytes, want unit size %d", len(src), s.unitSize)
	}
	start := time.Now()
	sc := s.pool.Get().(*scratch)
	err := s.writeUnit(sc, logical, 0, src)
	s.pool.Put(sc)
	s.opHist[histWrite].Record(time.Since(start))
	return err
}

// ReadAt implements io.ReaderAt over the logical byte space
// [0, Size()), spanning units and stripes as needed.
func (s *Store) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("store: ReadAt: negative offset %d", off)
	}
	start := time.Now()
	defer func() { s.opHist[histRead].Record(time.Since(start)) }()
	sc := s.pool.Get().(*scratch)
	defer s.pool.Put(sc)
	n := 0
	for len(p) > 0 {
		if off >= s.size {
			return n, io.EOF
		}
		logical := int(off / int64(s.unitSize))
		within := int(off % int64(s.unitSize))
		chunk := s.unitSize - within
		if chunk > len(p) {
			chunk = len(p)
		}
		if err := s.readUnit(sc, logical, within, p[:chunk]); err != nil {
			return n, err
		}
		p = p[chunk:]
		off += int64(chunk)
		n += chunk
	}
	return n, nil
}

// WriteAt implements io.WriterAt over the logical byte space. Writes
// covering every data unit of a stripe take the no-preread full-stripe
// path (Condition 5); the rest are per-unit read-modify-writes.
func (s *Store) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("store: WriteAt: negative offset %d", off)
	}
	if off+int64(len(p)) > s.size {
		return 0, fmt.Errorf("store: WriteAt: [%d,%d) outside store of %d bytes", off, off+int64(len(p)), s.size)
	}
	start := time.Now()
	defer func() { s.opHist[histWrite].Record(time.Since(start)) }()
	sc := s.pool.Get().(*scratch)
	defer s.pool.Put(sc)
	n := 0
	for len(p) > 0 {
		logical := int(off / int64(s.unitSize))
		within := int(off % int64(s.unitSize))
		if within == 0 && len(p) >= s.minSpan {
			if done, err := s.tryFullStripe(sc, logical, p); err != nil {
				return n, err
			} else if done > 0 {
				p = p[done:]
				off += int64(done)
				n += done
				continue
			}
		}
		chunk := s.unitSize - within
		if chunk > len(p) {
			chunk = len(p)
		}
		if err := s.writeUnit(sc, logical, within, p[:chunk]); err != nil {
			return n, err
		}
		p = p[chunk:]
		off += int64(chunk)
		n += chunk
	}
	return n, nil
}

// readUnit serves bytes [within, within+len(p)) of one logical unit. The
// plan is compiled against a pre-lock snapshot of the failed disk and
// revalidated once the stripe lock is held (the stripe itself never
// depends on the failure state), so the hot path resolves the stripe
// tables exactly once.
func (s *Store) readUnit(sc *scratch, logical, within int, p []byte) error {
	failed := int(s.failed.Load())
	if err := sc.pln.Read(logical, failed, &sc.p); err != nil {
		return err
	}
	lk := s.lockFor(sc.p.Stripe)
	lk.RLock()
	defer lk.RUnlock()
	if cur := int(s.failed.Load()); cur != failed {
		if err := sc.pln.Read(logical, cur, &sc.p); err != nil {
			return err
		}
	}
	return s.execReadLocked(sc, within, p)
}

// execReadLocked executes the compiled read plan in sc.p against bytes
// [within, within+len(p)) of each unit. The caller holds the stripe's
// lock (shared suffices) and has compiled sc.p under the current failure
// state.
func (s *Store) execReadLocked(sc *scratch, within int, p []byte) error {
	if sc.p.Kind == plan.Read {
		u := sc.p.Steps[0].Unit
		if _, err := s.disks[u.Disk].ReadAt(p, s.byteOff(u, within)); err != nil {
			return fmt.Errorf("store: read disk %d: %w", u.Disk, err)
		}
		s.noteIO(u.Disk, false, false, len(p))
		return nil
	}
	// Degraded: XOR the survivor set's ranges into p.
	clear(p)
	a := sc.a[:len(p)]
	for _, st := range sc.p.Steps {
		if _, err := s.disks[st.Disk].ReadAt(a, s.byteOff(st.Unit, within)); err != nil {
			return fmt.Errorf("store: degraded read disk %d: %w", st.Disk, err)
		}
		subtle.XORBytes(p, p, a)
		s.noteIO(st.Disk, false, true, len(a))
	}
	return nil
}

// writeUnit stores bytes [within, within+len(p)) of one logical unit,
// updating the stripe's parity range to match. Plan compilation follows
// the same pre-lock-compile/revalidate protocol as readUnit.
func (s *Store) writeUnit(sc *scratch, logical, within int, p []byte) error {
	failed := int(s.failed.Load())
	if err := sc.pln.Write(logical, failed, &sc.p); err != nil {
		return err
	}
	lk := s.lockFor(sc.p.Stripe)
	lk.Lock()
	defer lk.Unlock()
	if cur := int(s.failed.Load()); cur != failed {
		if err := sc.pln.Write(logical, cur, &sc.p); err != nil {
			return err
		}
	}
	return s.execWriteLocked(sc, within, p)
}

// execWriteLocked executes the compiled write plan in sc.p against bytes
// [within, within+len(p)) of the addressed unit, updating parity. The
// caller holds the stripe's write lock and has compiled sc.p under the
// current failure state.
func (s *Store) execWriteLocked(sc *scratch, within int, p []byte) error {
	stripe := sc.p.Stripe
	switch sc.p.Kind {
	case plan.SmallWrite:
		// Figure 1 read-modify-write: parity ^= old data ^ new data. The
		// stage 0 steps carry the Parity mark telling the payloads apart.
		data, parity := sc.p.Steps[0].Unit, sc.p.Steps[1].Unit
		if sc.p.Steps[0].Parity {
			data, parity = parity, data
		}
		a, b := sc.a[:len(p)], sc.b[:len(p)]
		if _, err := s.disks[data.Disk].ReadAt(a, s.byteOff(data, within)); err != nil {
			return fmt.Errorf("store: small write read disk %d: %w", data.Disk, err)
		}
		if _, err := s.disks[parity.Disk].ReadAt(b, s.byteOff(parity, within)); err != nil {
			return fmt.Errorf("store: small write read disk %d: %w", parity.Disk, err)
		}
		s.noteIO(data.Disk, false, false, len(a))
		s.noteIO(parity.Disk, false, false, len(b))
		subtle.XORBytes(b, b, a)
		subtle.XORBytes(b, b, p)
		if _, err := s.disks[data.Disk].WriteAt(p, s.byteOff(data, within)); err != nil {
			return fmt.Errorf("store: small write disk %d: %w", data.Disk, err)
		}
		if _, err := s.disks[parity.Disk].WriteAt(b, s.byteOff(parity, within)); err != nil {
			return fmt.Errorf("store: small write disk %d: %w", parity.Disk, err)
		}
		s.noteIO(data.Disk, true, false, len(p))
		s.noteIO(parity.Disk, true, false, len(b))
		return nil

	case plan.ReconstructWrite:
		// Data disk down: new parity range = payload ^ surviving data.
		b := sc.b[:len(p)]
		copy(b, p)
		a := sc.a[:len(p)]
		var parity layout.Unit
		for _, st := range sc.p.Steps {
			if st.Parity {
				parity = st.Unit
				continue
			}
			if _, err := s.disks[st.Disk].ReadAt(a, s.byteOff(st.Unit, within)); err != nil {
				return fmt.Errorf("store: reconstruct write read disk %d: %w", st.Disk, err)
			}
			subtle.XORBytes(b, b, a)
			s.noteIO(st.Disk, false, true, len(a))
		}
		if _, err := s.disks[parity.Disk].WriteAt(b, s.byteOff(parity, within)); err != nil {
			return fmt.Errorf("store: reconstruct write disk %d: %w", parity.Disk, err)
		}
		s.noteIO(parity.Disk, true, true, len(b))
		// The lost unit's new content is the payload itself; keep an
		// already-rebuilt stripe current on the replacement.
		if s.rebuildDst != nil && s.rebuilt[stripe] {
			if _, err := s.rebuildDst.WriteAt(p, s.byteOff(sc.p.Target, within)); err != nil {
				return fmt.Errorf("store: reconstruct write replacement: %w", err)
			}
			s.noteIO(sc.p.Target.Disk, true, true, len(p))
		}
		return nil

	case plan.DataOnlyWrite:
		// Parity disk down: write the data unit; if the stripe is already
		// rebuilt, patch the replacement's parity (parity ^= old ^ new).
		data := sc.p.Steps[0].Unit
		patch := s.rebuildDst != nil && s.rebuilt[stripe]
		a := sc.a[:len(p)]
		if patch {
			if _, err := s.disks[data.Disk].ReadAt(a, s.byteOff(data, within)); err != nil {
				return fmt.Errorf("store: data-only write read disk %d: %w", data.Disk, err)
			}
			s.noteIO(data.Disk, false, true, len(a))
		}
		if _, err := s.disks[data.Disk].WriteAt(p, s.byteOff(data, within)); err != nil {
			return fmt.Errorf("store: data-only write disk %d: %w", data.Disk, err)
		}
		s.noteIO(data.Disk, true, true, len(p))
		if patch {
			b := sc.b[:len(p)]
			off := s.byteOff(sc.p.Target, within)
			if _, err := s.rebuildDst.ReadAt(b, off); err != nil {
				return fmt.Errorf("store: data-only write replacement read: %w", err)
			}
			subtle.XORBytes(b, b, a)
			subtle.XORBytes(b, b, p)
			if _, err := s.rebuildDst.WriteAt(b, off); err != nil {
				return fmt.Errorf("store: data-only write replacement: %w", err)
			}
			s.noteIO(sc.p.Target.Disk, true, true, len(b))
		}
		return nil

	default:
		return fmt.Errorf("store: writeUnit: unexpected plan kind %v", sc.p.Kind)
	}
}

// tryFullStripe writes p's prefix through the Condition 5 full-stripe
// path when logical is the first data unit of its stripe and p covers
// the stripe's whole data payload. It returns the bytes consumed (0 when
// the fast path does not apply).
func (s *Store) tryFullStripe(sc *scratch, logical int, p []byte) (int, error) {
	stripe, _, err := s.mapper.StripeOf(logical)
	if err != nil {
		return 0, err
	}
	units, err := s.mapper.AppendStripeUnits(sc.units[:0], stripe)
	sc.units = units[:0]
	if err != nil {
		return 0, err
	}
	dataUnits := len(units) - 1
	span := dataUnits * s.unitSize
	if len(p) < span {
		return 0, nil
	}
	parity, err := s.mapper.ParityOf(stripe)
	if err != nil {
		return 0, err
	}
	first := -1
	for _, u := range units {
		if u == parity {
			continue
		}
		first, _ = s.mapper.Logical(u)
		break
	}
	if first != logical {
		return 0, nil
	}
	lk := s.lockFor(stripe)
	lk.Lock()
	defer lk.Unlock()
	err = s.writeStripeLocked(sc, stripe, units, parity, func(i int) []byte {
		return p[i*s.unitSize : (i+1)*s.unitSize]
	})
	if err != nil {
		return 0, err
	}
	return span, nil
}

// writeStripeLocked writes one whole stripe with no pre-reads (the
// Condition 5 large-write path): the new parity is the XOR of the new
// data payloads alone. data(i) returns the payload of the stripe's i-th
// data unit in stripe order; units holds the stripe's units (parity
// included) and the caller holds the stripe's write lock.
func (s *Store) writeStripeLocked(sc *scratch, stripe int, units []layout.Unit, parity layout.Unit, data func(int) []byte) error {
	b := sc.b[:s.unitSize]
	clear(b)
	for i := 0; i < len(units)-1; i++ {
		subtle.XORBytes(b, b, data(i))
	}
	failed := int(s.failed.Load())
	redirect := s.rebuildDst != nil && s.rebuilt[stripe]
	idx := 0
	for _, u := range units {
		var payload []byte
		if u == parity {
			payload = b
		} else {
			payload = data(idx)
			idx++
		}
		switch {
		case u.Disk != failed:
			if _, err := s.disks[u.Disk].WriteAt(payload, s.byteOff(u, 0)); err != nil {
				return fmt.Errorf("store: full-stripe write disk %d: %w", u.Disk, err)
			}
			s.noteIO(u.Disk, true, false, len(payload))
		case redirect:
			if _, err := s.rebuildDst.WriteAt(payload, s.byteOff(u, 0)); err != nil {
				return fmt.Errorf("store: full-stripe write replacement: %w", err)
			}
			s.noteIO(u.Disk, true, true, len(payload))
		}
		// A not-yet-rebuilt unit on the failed disk is simply skipped:
		// Rebuild reconstructs it from the survivors just written.
	}
	return nil
}

// Rebuild reconstructs the failed disk's bytes onto replacement, stripe
// by stripe under the per-stripe locks, while foreground reads and
// writes continue degraded; when every stripe is copied, the replacement
// atomically takes the failed disk's slot and the array is healthy
// again. The replaced backend is not closed; the caller owns it.
func (s *Store) Rebuild(replacement Backend) error {
	s.admin.Lock()
	if s.rebuilding.Load() {
		s.admin.Unlock()
		return fmt.Errorf("store: Rebuild: already in progress")
	}
	need := int64(s.mapper.DiskUnits()) * int64(s.unitSize)
	if replacement == nil || replacement.Size() < need {
		s.admin.Unlock()
		return fmt.Errorf("store: Rebuild: replacement smaller than %d bytes", need)
	}
	s.lockAll()
	failed := int(s.failed.Load())
	if failed < 0 {
		s.unlockAll()
		s.admin.Unlock()
		return fmt.Errorf("store: Rebuild: no failed disk")
	}
	clear(s.rebuilt)
	s.rebuiltStripes.Store(0)
	s.rebuildDst = replacement
	s.rebuilding.Store(true)
	s.unlockAll()
	s.admin.Unlock()

	finish := func(swap bool) {
		s.admin.Lock()
		s.lockAll()
		if swap {
			s.disks[failed] = replacement
			s.failed.Store(-1)
		}
		s.rebuildDst = nil
		clear(s.rebuilt)
		s.rebuiltStripes.Store(0)
		s.rebuilding.Store(false)
		s.unlockAll()
		s.admin.Unlock()
	}

	sc := s.pool.Get().(*scratch)
	defer s.pool.Put(sc)
	rb, err := sc.pln.Rebuild(failed)
	if err != nil {
		finish(false)
		return err
	}
	for i := range rb.Plans {
		if err := s.rebuildStripe(sc, &rb.Plans[i]); err != nil {
			finish(false)
			return err
		}
	}
	finish(true)
	return nil
}

// rebuildStripe reconstructs one stripe's lost unit onto the replacement
// under the stripe's write lock.
func (s *Store) rebuildStripe(sc *scratch, pl *plan.Plan) error {
	lk := s.lockFor(pl.Stripe)
	lk.Lock()
	defer lk.Unlock()
	a, b := sc.a[:s.unitSize], sc.b[:s.unitSize]
	clear(b)
	for _, st := range pl.Steps {
		if _, err := s.disks[st.Disk].ReadAt(a, s.byteOff(st.Unit, 0)); err != nil {
			return fmt.Errorf("store: rebuild read disk %d: %w", st.Disk, err)
		}
		subtle.XORBytes(b, b, a)
		s.noteIO(st.Disk, false, true, len(a))
	}
	if _, err := s.rebuildDst.WriteAt(b, s.byteOff(pl.Target, 0)); err != nil {
		return fmt.Errorf("store: rebuild write replacement: %w", err)
	}
	s.noteIO(pl.Target.Disk, true, true, len(b))
	s.rebuilt[pl.Stripe] = true
	s.rebuiltStripes.Add(1)
	return nil
}

// VerifyParity checks every stripe's XOR invariant against the stored
// bytes, taking each stripe's read lock in turn; stripes crossing a
// currently-failed disk are skipped (their lost unit is not available to
// check).
func (s *Store) VerifyParity() error {
	sc := s.pool.Get().(*scratch)
	defer s.pool.Put(sc)
	for stripe := 0; stripe < s.mapper.Stripes(); stripe++ {
		if err := s.verifyStripe(sc, stripe); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) verifyStripe(sc *scratch, stripe int) error {
	lk := s.lockFor(stripe)
	lk.RLock()
	defer lk.RUnlock()
	units, err := s.mapper.AppendStripeUnits(sc.units[:0], stripe)
	sc.units = units[:0]
	if err != nil {
		return err
	}
	failed := int(s.failed.Load())
	for _, u := range units {
		if u.Disk == failed {
			return nil
		}
	}
	a, b := sc.a[:s.unitSize], sc.b[:s.unitSize]
	clear(b)
	for _, u := range units {
		if _, err := s.disks[u.Disk].ReadAt(a, s.byteOff(u, 0)); err != nil {
			return fmt.Errorf("store: verify read disk %d: %w", u.Disk, err)
		}
		subtle.XORBytes(b, b, a)
	}
	for _, x := range b {
		if x != 0 {
			return fmt.Errorf("store: stripe %d parity mismatch", stripe)
		}
	}
	return nil
}
