// Package store is the serving engine of the parity-declustered layout
// library: a Store owns one byte Backend per disk (in-memory MemDisk
// slabs or FileDisk files) and executes pdl/plan I/O plans against them —
// healthy and degraded reads, read-modify-write and full-stripe parity
// writes, and an online Rebuild that streams survivor reconstruction
// onto a replacement disk while foreground traffic continues.
//
// Redundancy is pluggable (repro/pdl/code): single-parity layouts run
// the classic XOR arithmetic, byte-identical to what this engine always
// did, while layouts carrying m parity units per stripe run an
// m-failure-tolerant Reed–Solomon code — the store then serves degraded
// reads and writes, and rebuilds online, with up to m disks down at
// once.
//
// The engine is built for concurrency: plan compilation state lives in a
// sync.Pool of per-request scratch (a plan.Planner, a reusable Plan, and
// parity work buffers), so the healthy Read/Write hot path performs zero
// allocations per request; parity atomicity comes from striped per-stripe
// RWMutexes (readers share, writers and the rebuilder serialize per
// stripe); per-disk counters are atomics feeding a Stats snapshot.
//
// Correctness is anchored to pdl/layout's single-threaded Data engine:
// the reference model the store's property tests compare every byte
// against (see TestStoreMatchesDataModel and
// TestStoreTwoFailureMatchesDataModel).
package store

import (
	"bytes"
	"crypto/subtle"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/pdl"
	"repro/pdl/code"
	"repro/pdl/layout"
	"repro/pdl/obs"
	"repro/pdl/plan"
)

// maxLockStripes bounds the striped-lock table: enough locks that
// concurrent writers on distinct stripes rarely collide, small enough to
// make the rebuild/fail all-locks barrier cheap.
const maxLockStripes = 256

// DiskStats is one disk's operation counters.
type DiskStats struct {
	// Reads and Writes count physical unit-range operations issued.
	Reads, Writes int64

	// ReadBytes and WriteBytes count the bytes those operations moved.
	ReadBytes, WriteBytes int64

	// Degraded counts the physical operations issued on behalf of
	// degraded-mode plans (survivor reconstruction reads,
	// reconstruct-writes, rebuild traffic).
	Degraded int64
}

// Stats is a point-in-time snapshot of a Store's state.
type Stats struct {
	// Failed is the lowest-numbered failed disk, -1 when the array is
	// healthy. (The first disk Rebuild will reconstruct.)
	Failed int

	// FailedDisks lists every currently-failed disk in increasing order;
	// empty when healthy. Multi-parity codes tolerate up to
	// Code().ParityShards() simultaneous entries.
	FailedDisks []int

	// Rebuilding reports whether an online Rebuild is in progress.
	Rebuilding bool

	// RebuiltStripes is how many stripes the in-progress Rebuild has
	// copied onto the replacement (0 when no rebuild is running);
	// TotalStripes is the stripe count it is working through.
	RebuiltStripes, TotalStripes int

	// Disks holds per-disk counters, indexed by disk.
	Disks []DiskStats
}

// diskCounters is the atomics-backed stats block, padded to a cache line
// so disks don't false-share under concurrent traffic.
type diskCounters struct {
	reads, writes, readBytes, writeBytes, degraded atomic.Int64
	_                                              [24]byte
}

// failSet is an immutable snapshot of the failed-disk set, sorted
// increasing. State transitions (Fail, Rebuild completion) allocate a
// fresh value and swap the pointer while holding every stripe lock, so
// the hot path compiles plans against a pre-lock snapshot and
// revalidates with a single pointer compare once the stripe lock is
// held.
type failSet struct {
	disks []int
}

// healthyFails is the shared empty set a healthy Store points at.
var healthyFails = &failSet{}

func (f *failSet) has(d int) bool {
	for _, x := range f.disks {
		if x == d {
			return true
		}
	}
	return false
}

func (f *failSet) first() int {
	if len(f.disks) == 0 {
		return -1
	}
	return f.disks[0]
}

// without returns a new set with one disk removed.
func (f *failSet) without(d int) *failSet {
	out := &failSet{disks: make([]int, 0, len(f.disks))}
	for _, x := range f.disks {
		if x != d {
			out.disks = append(out.disks, x)
		}
	}
	return out
}

// with returns a new set with one disk added, keeping sort order.
func (f *failSet) with(d int) *failSet {
	out := &failSet{disks: make([]int, 0, len(f.disks)+1)}
	for _, x := range f.disks {
		if x < d {
			out.disks = append(out.disks, x)
		}
	}
	out.disks = append(out.disks, d)
	for _, x := range f.disks {
		if x > d {
			out.disks = append(out.disks, x)
		}
	}
	return out
}

// scratch is the per-request compilation and parity state recycled
// through the Store's pool: with it, a steady-state healthy Read or
// Write allocates nothing.
type scratch struct {
	pln   *plan.Planner
	p     plan.Plan
	a, b  []byte
	units []layout.Unit

	// coef is the reconstruction coefficient buffer (one byte per shard
	// of the widest stripe); par holds one work buffer per parity shard.
	coef []byte
	par  [][]byte

	// stripes and order are the vec-request grouping state: stripes[i] is
	// the stripe of ops[i], order is the stripe-major permutation of op
	// indexes (see prepareVec).
	stripes []int32
	order   []int32
}

// Store serves reads and writes against real bytes under a
// parity-declustered layout. All methods are safe for concurrent use.
type Store struct {
	mapper   pdl.Mapper
	unitSize int
	capacity int // logical data units
	size     int64
	codec    code.Code
	pm       int // parity shards per stripe (m)
	// maxShards is the widest stripe's shard count (k+m): the coef
	// buffer size.
	maxShards int
	// minSpan is the smallest stripe's data payload in bytes: the
	// cheapest possible full-stripe write, gating the fast-path probe.
	minSpan int

	// locks are the striped per-stripe RW locks: stripe s is guarded by
	// locks[s&lockMask]. fails, disks, rebuildDst, rebuildDisk, and
	// rebuilt change only while holding every lock, so holding any one of
	// them (even shared) gives a consistent view of all of them.
	locks    []sync.RWMutex
	lockMask int

	// admin serializes Fail/Rebuild state transitions; rebuilding and
	// rebuiltStripes are atomics so Stats and metric scrapes read them
	// without touching the admin lock.
	rebuilding     atomic.Bool
	rebuiltStripes atomic.Int64
	admin          sync.Mutex

	disks []Backend
	// fails is the current failed-disk set (immutable snapshot; see
	// failSet). It is swapped only while holding every lock.
	fails      atomic.Pointer[failSet]
	rebuildDst Backend
	// rebuildDisk is the disk the in-progress Rebuild reconstructs (the
	// lowest failed disk at rebuild start), -1 otherwise.
	rebuildDisk int
	// rebuilt[s] records that stripe s has been copied onto rebuildDst;
	// it is read and written only under stripe s's lock, so degraded
	// writes keep already-rebuilt stripes current on the replacement.
	rebuilt []bool

	counters []diskCounters
	// opHist records per-operation wall latency of the public I/O entry
	// points (Read/ReadAt/ReadVec and Write/WriteAt/WriteVec), indexed by
	// histRead/histWrite: a single lock-free histogram record per op.
	opHist [2]obs.Hist
	pool   sync.Pool
}

// opHist indexes.
const (
	histRead = iota
	histWrite
)

// New builds a Store executing plans over mapper against one Backend per
// disk, running the default erasure code for the layout's parity count
// (XOR for single parity, Reed–Solomon beyond). Each backend must hold
// at least mapper.DiskUnits()*unitSize bytes; unit payloads are unitSize
// bytes.
func New(mapper pdl.Mapper, unitSize int, disks []Backend) (*Store, error) {
	if mapper == nil {
		return nil, fmt.Errorf("store: New: nil Mapper")
	}
	if m := mapper.ParityShards(); m < 1 || m > code.MaxParityShards {
		return nil, fmt.Errorf("store: New: layout carries %d parity units per stripe, supported range [1,%d]", m, code.MaxParityShards)
	}
	return NewCode(mapper, unitSize, disks, code.Default(mapper.ParityShards()))
}

// NewCode is New with an explicit erasure code, whose parity shard count
// must match the layout's parity units per stripe.
func NewCode(mapper pdl.Mapper, unitSize int, disks []Backend, c code.Code) (*Store, error) {
	if mapper == nil {
		return nil, fmt.Errorf("store: New: nil Mapper")
	}
	if unitSize < 1 {
		return nil, fmt.Errorf("store: New: unit size %d < 1", unitSize)
	}
	if c == nil {
		return nil, fmt.Errorf("store: New: nil Code")
	}
	if c.ParityShards() != mapper.ParityShards() {
		return nil, fmt.Errorf("store: New: code %q has %d parity shards, layout carries %d", c.Name(), c.ParityShards(), mapper.ParityShards())
	}
	if len(disks) != mapper.Disks() {
		return nil, fmt.Errorf("store: New: %d backends for %d disks", len(disks), mapper.Disks())
	}
	need := int64(mapper.DiskUnits()) * int64(unitSize)
	for d, b := range disks {
		if b == nil {
			return nil, fmt.Errorf("store: New: nil backend for disk %d", d)
		}
		if b.Size() < need {
			return nil, fmt.Errorf("store: New: disk %d holds %d bytes, layout needs %d", d, b.Size(), need)
		}
	}
	n := 1
	for n < mapper.Stripes() && n < maxLockStripes {
		n <<= 1
	}
	pm := c.ParityShards()
	s := &Store{
		mapper:      mapper,
		unitSize:    unitSize,
		capacity:    mapper.DataUnits(),
		size:        int64(mapper.DataUnits()) * int64(unitSize),
		codec:       c,
		pm:          pm,
		locks:       make([]sync.RWMutex, n),
		lockMask:    n - 1,
		disks:       append([]Backend(nil), disks...),
		rebuildDisk: -1,
		rebuilt:     make([]bool, mapper.Stripes()),
		counters:    make([]diskCounters, mapper.Disks()),
	}
	s.fails.Store(healthyFails)
	var units []layout.Unit
	for stripe := 0; stripe < mapper.Stripes(); stripe++ {
		var err error
		units, err = mapper.AppendStripeUnits(units[:0], stripe)
		if err != nil {
			return nil, fmt.Errorf("store: New: %w", err)
		}
		if k := len(units) - pm; k < 1 || k > c.MaxDataShards() {
			return nil, fmt.Errorf("store: New: stripe %d has %d data units, code %q takes 1..%d", stripe, k, c.Name(), c.MaxDataShards())
		}
		if span := (len(units) - pm) * unitSize; s.minSpan == 0 || span < s.minSpan {
			s.minSpan = span
		}
		if len(units) > s.maxShards {
			s.maxShards = len(units)
		}
	}
	s.pool.New = func() any {
		sc := &scratch{
			pln:  plan.NewPlanner(mapper),
			a:    make([]byte, unitSize),
			b:    make([]byte, unitSize),
			coef: make([]byte, s.maxShards),
			par:  make([][]byte, pm),
		}
		for j := range sc.par {
			sc.par[j] = make([]byte, unitSize)
		}
		return sc
	}
	return s, nil
}

// Open is the convenience constructor over the pdl facade: it builds the
// Mapper for a pdl.Build result on disks of diskUnits units and serves it
// from the given backends. A nil backends slice provisions one MemDisk
// per disk, sized exactly for the geometry.
func Open(res *pdl.Result, diskUnits, unitSize int, backends []Backend) (*Store, error) {
	m, err := res.NewMapper(diskUnits)
	if err != nil {
		return nil, fmt.Errorf("store: Open: %w", err)
	}
	if backends == nil {
		backends = make([]Backend, m.Disks())
		for d := range backends {
			backends[d] = NewMemDisk(int64(diskUnits) * int64(unitSize))
		}
	}
	return New(m, unitSize, backends)
}

// Mapper returns the address translator the store serves.
func (s *Store) Mapper() pdl.Mapper { return s.mapper }

// Code returns the erasure code governing the array's parity bytes.
func (s *Store) Code() code.Code { return s.codec }

// UnitSize returns the payload size of one stripe unit in bytes.
func (s *Store) UnitSize() int { return s.unitSize }

// Capacity returns the number of addressable logical data units.
func (s *Store) Capacity() int { return s.capacity }

// Size returns the logical byte capacity (Capacity * UnitSize).
func (s *Store) Size() int64 { return s.size }

// Failed returns the lowest-numbered failed disk, -1 when healthy. (The
// disk the next Rebuild will reconstruct; see FailedDisks for the whole
// set.)
func (s *Store) Failed() int { return s.fails.Load().first() }

// FailedDisks returns the currently-failed disks in increasing order
// (nil when healthy).
func (s *Store) FailedDisks() []int {
	f := s.fails.Load()
	if len(f.disks) == 0 {
		return nil
	}
	return append([]int(nil), f.disks...)
}

// DiskBackend returns the Backend currently serving disk d, for tools
// and tests inspecting a quiesced store; the store may swap it during
// Rebuild.
func (s *Store) DiskBackend(d int) Backend {
	s.locks[0].RLock()
	defer s.locks[0].RUnlock()
	return s.disks[d]
}

// Stats snapshots the per-disk counters and failure state.
func (s *Store) Stats() Stats {
	st := Stats{
		Failed:         s.Failed(),
		FailedDisks:    s.FailedDisks(),
		Rebuilding:     s.rebuilding.Load(),
		RebuiltStripes: int(s.rebuiltStripes.Load()),
		TotalStripes:   s.mapper.Stripes(),
		Disks:          make([]DiskStats, len(s.counters)),
	}
	for d := range s.counters {
		c := &s.counters[d]
		st.Disks[d] = DiskStats{
			Reads:      c.reads.Load(),
			Writes:     c.writes.Load(),
			ReadBytes:  c.readBytes.Load(),
			WriteBytes: c.writeBytes.Load(),
			Degraded:   c.degraded.Load(),
		}
	}
	return st
}

// Close closes every backend, returning the first error.
func (s *Store) Close() error {
	var first error
	for _, b := range s.disks {
		if err := b.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// lockFor returns the striped lock guarding a stripe.
func (s *Store) lockFor(stripe int) *sync.RWMutex { return &s.locks[stripe&s.lockMask] }

// lockAll acquires every striped lock (in order), quiescing all ops; it
// guards failure-state transitions.
func (s *Store) lockAll() {
	for i := range s.locks {
		s.locks[i].Lock()
	}
}

func (s *Store) unlockAll() {
	for i := len(s.locks) - 1; i >= 0; i-- {
		s.locks[i].Unlock()
	}
}

// noteIO bumps one disk's counters for a physical operation of n bytes.
func (s *Store) noteIO(disk int, write, degraded bool, n int) {
	c := &s.counters[disk]
	if write {
		c.writes.Add(1)
		c.writeBytes.Add(int64(n))
	} else {
		c.reads.Add(1)
		c.readBytes.Add(int64(n))
	}
	if degraded {
		c.degraded.Add(1)
	}
}

// byteOff converts a unit position plus an intra-unit offset to a disk
// byte offset.
func (s *Store) byteOff(u layout.Unit, within int) int64 {
	return int64(u.Offset)*int64(s.unitSize) + int64(within)
}

// Fail marks a disk failed: reads of its units go degraded (survivor
// reconstruction), writes switch to their degraded plans. The store
// tolerates up to Code().ParityShards() simultaneous failures — one for
// the classic XOR arrays, m for an m-parity Reed–Solomon array. Failing
// a disk while a Rebuild is in progress is an error.
func (s *Store) Fail(disk int) error {
	if disk < 0 || disk >= len(s.disks) {
		return fmt.Errorf("store: Fail(%d): disk outside [0,%d)", disk, len(s.disks))
	}
	s.admin.Lock()
	defer s.admin.Unlock()
	if s.rebuilding.Load() {
		return fmt.Errorf("store: Fail(%d): rebuild in progress", disk)
	}
	s.lockAll()
	defer s.unlockAll()
	cur := s.fails.Load()
	if cur.has(disk) {
		return fmt.Errorf("store: Fail(%d): disk %d already failed", disk, disk)
	}
	if len(cur.disks) >= s.pm {
		return fmt.Errorf("store: Fail(%d): disk %d already failed; code %q tolerates %d simultaneous failures", disk, cur.first(), s.codec.Name(), s.pm)
	}
	s.fails.Store(cur.with(disk))
	clear(s.rebuilt)
	s.rebuiltStripes.Store(0)
	return nil
}

// Read fills dst (exactly UnitSize bytes) with the payload of a logical
// data unit, reconstructing it from survivors when its disk is down.
func (s *Store) Read(logical int, dst []byte) error {
	if len(dst) != s.unitSize {
		return fmt.Errorf("store: Read: dst is %d bytes, want unit size %d", len(dst), s.unitSize)
	}
	start := time.Now()
	sc := s.pool.Get().(*scratch)
	err := s.readUnit(sc, logical, 0, dst)
	s.pool.Put(sc)
	s.opHist[histRead].Record(time.Since(start))
	return err
}

// Write stores src (exactly UnitSize bytes) as the payload of a logical
// data unit, maintaining parity via the compiled small-write (or its
// degraded variant).
func (s *Store) Write(logical int, src []byte) error {
	if len(src) != s.unitSize {
		return fmt.Errorf("store: Write: src is %d bytes, want unit size %d", len(src), s.unitSize)
	}
	start := time.Now()
	sc := s.pool.Get().(*scratch)
	err := s.writeUnit(sc, logical, 0, src)
	s.pool.Put(sc)
	s.opHist[histWrite].Record(time.Since(start))
	return err
}

// ReadAt implements io.ReaderAt over the logical byte space
// [0, Size()), spanning units and stripes as needed.
func (s *Store) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("store: ReadAt: negative offset %d", off)
	}
	start := time.Now()
	defer func() { s.opHist[histRead].Record(time.Since(start)) }()
	sc := s.pool.Get().(*scratch)
	defer s.pool.Put(sc)
	n := 0
	for len(p) > 0 {
		if off >= s.size {
			return n, io.EOF
		}
		logical := int(off / int64(s.unitSize))
		within := int(off % int64(s.unitSize))
		chunk := s.unitSize - within
		if chunk > len(p) {
			chunk = len(p)
		}
		if err := s.readUnit(sc, logical, within, p[:chunk]); err != nil {
			return n, err
		}
		p = p[chunk:]
		off += int64(chunk)
		n += chunk
	}
	return n, nil
}

// WriteAt implements io.WriterAt over the logical byte space. Writes
// covering every data unit of a stripe take the no-preread full-stripe
// path (Condition 5); the rest are per-unit read-modify-writes.
func (s *Store) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("store: WriteAt: negative offset %d", off)
	}
	if off+int64(len(p)) > s.size {
		return 0, fmt.Errorf("store: WriteAt: [%d,%d) outside store of %d bytes", off, off+int64(len(p)), s.size)
	}
	start := time.Now()
	defer func() { s.opHist[histWrite].Record(time.Since(start)) }()
	sc := s.pool.Get().(*scratch)
	defer s.pool.Put(sc)
	n := 0
	for len(p) > 0 {
		logical := int(off / int64(s.unitSize))
		within := int(off % int64(s.unitSize))
		if within == 0 && len(p) >= s.minSpan {
			if done, err := s.tryFullStripe(sc, logical, p); err != nil {
				return n, err
			} else if done > 0 {
				p = p[done:]
				off += int64(done)
				n += done
				continue
			}
		}
		chunk := s.unitSize - within
		if chunk > len(p) {
			chunk = len(p)
		}
		if err := s.writeUnit(sc, logical, within, p[:chunk]); err != nil {
			return n, err
		}
		p = p[chunk:]
		off += int64(chunk)
		n += chunk
	}
	return n, nil
}

// readUnit serves bytes [within, within+len(p)) of one logical unit. The
// plan is compiled against a pre-lock snapshot of the failed-disk set
// and revalidated once the stripe lock is held (the stripe itself never
// depends on the failure state), so the hot path resolves the stripe
// tables exactly once.
func (s *Store) readUnit(sc *scratch, logical, within int, p []byte) error {
	fs := s.fails.Load()
	if err := sc.pln.ReadM(logical, fs.disks, &sc.p); err != nil {
		return err
	}
	lk := s.lockFor(sc.p.Stripe)
	lk.RLock()
	defer lk.RUnlock()
	if cur := s.fails.Load(); cur != fs {
		if err := sc.pln.ReadM(logical, cur.disks, &sc.p); err != nil {
			return err
		}
	}
	return s.execReadLocked(sc, within, p)
}

// execReadLocked executes the compiled read plan in sc.p against bytes
// [within, within+len(p)) of each unit. The caller holds the stripe's
// lock (shared suffices) and has compiled sc.p under the current failure
// state.
func (s *Store) execReadLocked(sc *scratch, within int, p []byte) error {
	if sc.p.Kind == plan.Read {
		u := sc.p.Steps[0].Unit
		if _, err := s.disks[u.Disk].ReadAt(p, s.byteOff(u, within)); err != nil {
			return fmt.Errorf("store: read disk %d: %w", u.Disk, err)
		}
		s.noteIO(u.Disk, false, false, len(p))
		return nil
	}
	// Degraded: combine the survivor ranges with the code's
	// reconstruction coefficients (all ones under XOR), skipping
	// zero-weight survivors without reading them.
	coef := sc.coef[:sc.p.DataShards+s.pm]
	if err := s.codec.PlanReconstruct(sc.p.DataShards, sc.p.Missing, sc.p.TargetShard, coef); err != nil {
		return fmt.Errorf("store: degraded read: %w", err)
	}
	clear(p)
	a := sc.a[:len(p)]
	for _, st := range sc.p.Steps {
		w := coef[s.mapper.ShardAt(st.Unit)]
		if w == 0 {
			continue
		}
		if _, err := s.disks[st.Disk].ReadAt(a, s.byteOff(st.Unit, within)); err != nil {
			return fmt.Errorf("store: degraded read disk %d: %w", st.Disk, err)
		}
		code.MulAdd(p, a, w)
		s.noteIO(st.Disk, false, true, len(a))
	}
	return nil
}

// writeUnit stores bytes [within, within+len(p)) of one logical unit,
// updating the stripe's parity range to match. Plan compilation follows
// the same pre-lock-compile/revalidate protocol as readUnit.
func (s *Store) writeUnit(sc *scratch, logical, within int, p []byte) error {
	fs := s.fails.Load()
	if err := sc.pln.WriteM(logical, fs.disks, &sc.p); err != nil {
		return err
	}
	lk := s.lockFor(sc.p.Stripe)
	lk.Lock()
	defer lk.Unlock()
	if cur := s.fails.Load(); cur != fs {
		if err := sc.pln.WriteM(logical, cur.disks, &sc.p); err != nil {
			return err
		}
	}
	return s.execWriteLocked(sc, within, p)
}

// execWriteLocked executes the compiled write plan in sc.p against bytes
// [within, within+len(p)) of the addressed unit, updating parity. The
// caller holds the stripe's write lock and has compiled sc.p under the
// current failure state. Single-parity arrays take the classic XOR
// paths, byte-for-byte and I/O-for-I/O what this engine always issued;
// multi-parity arrays run the generalized coefficient arithmetic.
func (s *Store) execWriteLocked(sc *scratch, within int, p []byte) error {
	if s.pm == 1 {
		return s.execWriteXOR(sc, within, p)
	}
	return s.execWriteMulti(sc, within, p)
}

// execWriteXOR is the classic single-parity write executor.
func (s *Store) execWriteXOR(sc *scratch, within int, p []byte) error {
	stripe := sc.p.Stripe
	switch sc.p.Kind {
	case plan.SmallWrite:
		// Figure 1 read-modify-write: parity ^= old data ^ new data. The
		// stage 0 steps carry the Parity mark telling the payloads apart.
		data, parity := sc.p.Steps[0].Unit, sc.p.Steps[1].Unit
		if sc.p.Steps[0].Parity {
			data, parity = parity, data
		}
		a, b := sc.a[:len(p)], sc.b[:len(p)]
		if _, err := s.disks[data.Disk].ReadAt(a, s.byteOff(data, within)); err != nil {
			return fmt.Errorf("store: small write read disk %d: %w", data.Disk, err)
		}
		if _, err := s.disks[parity.Disk].ReadAt(b, s.byteOff(parity, within)); err != nil {
			return fmt.Errorf("store: small write read disk %d: %w", parity.Disk, err)
		}
		s.noteIO(data.Disk, false, false, len(a))
		s.noteIO(parity.Disk, false, false, len(b))
		subtle.XORBytes(b, b, a)
		subtle.XORBytes(b, b, p)
		if _, err := s.disks[data.Disk].WriteAt(p, s.byteOff(data, within)); err != nil {
			return fmt.Errorf("store: small write disk %d: %w", data.Disk, err)
		}
		if _, err := s.disks[parity.Disk].WriteAt(b, s.byteOff(parity, within)); err != nil {
			return fmt.Errorf("store: small write disk %d: %w", parity.Disk, err)
		}
		s.noteIO(data.Disk, true, false, len(p))
		s.noteIO(parity.Disk, true, false, len(b))
		return nil

	case plan.ReconstructWrite:
		// Data disk down: new parity range = payload ^ surviving data.
		b := sc.b[:len(p)]
		copy(b, p)
		a := sc.a[:len(p)]
		var parity layout.Unit
		for _, st := range sc.p.Steps {
			if st.Parity {
				parity = st.Unit
				continue
			}
			if _, err := s.disks[st.Disk].ReadAt(a, s.byteOff(st.Unit, within)); err != nil {
				return fmt.Errorf("store: reconstruct write read disk %d: %w", st.Disk, err)
			}
			subtle.XORBytes(b, b, a)
			s.noteIO(st.Disk, false, true, len(a))
		}
		if _, err := s.disks[parity.Disk].WriteAt(b, s.byteOff(parity, within)); err != nil {
			return fmt.Errorf("store: reconstruct write disk %d: %w", parity.Disk, err)
		}
		s.noteIO(parity.Disk, true, true, len(b))
		// The lost unit's new content is the payload itself; keep an
		// already-rebuilt stripe current on the replacement.
		if s.rebuildDst != nil && s.rebuilt[stripe] {
			if _, err := s.rebuildDst.WriteAt(p, s.byteOff(sc.p.Target, within)); err != nil {
				return fmt.Errorf("store: reconstruct write replacement: %w", err)
			}
			s.noteIO(sc.p.Target.Disk, true, true, len(p))
		}
		return nil

	case plan.DataOnlyWrite:
		// Parity disk down: write the data unit; if the stripe is already
		// rebuilt, patch the replacement's parity (parity ^= old ^ new).
		data := sc.p.Steps[0].Unit
		patch := s.rebuildDst != nil && s.rebuilt[stripe]
		a := sc.a[:len(p)]
		if patch {
			if _, err := s.disks[data.Disk].ReadAt(a, s.byteOff(data, within)); err != nil {
				return fmt.Errorf("store: data-only write read disk %d: %w", data.Disk, err)
			}
			s.noteIO(data.Disk, false, true, len(a))
		}
		if _, err := s.disks[data.Disk].WriteAt(p, s.byteOff(data, within)); err != nil {
			return fmt.Errorf("store: data-only write disk %d: %w", data.Disk, err)
		}
		s.noteIO(data.Disk, true, true, len(p))
		if patch {
			b := sc.b[:len(p)]
			off := s.byteOff(sc.p.Target, within)
			if _, err := s.rebuildDst.ReadAt(b, off); err != nil {
				return fmt.Errorf("store: data-only write replacement read: %w", err)
			}
			subtle.XORBytes(b, b, a)
			subtle.XORBytes(b, b, p)
			if _, err := s.rebuildDst.WriteAt(b, off); err != nil {
				return fmt.Errorf("store: data-only write replacement: %w", err)
			}
			s.noteIO(sc.p.Target.Disk, true, true, len(b))
		}
		return nil

	default:
		return fmt.Errorf("store: writeUnit: unexpected plan kind %v", sc.p.Kind)
	}
}

// replacementUnit resolves the current stripe's unit on the disk being
// rebuilt, when an already-rebuilt stripe must be kept current on the
// replacement. ok is false when no rebuild is running, the stripe has
// not been rebuilt yet, or the stripe does not cross the rebuild disk.
// The caller holds the stripe's write lock.
func (s *Store) replacementUnit(sc *scratch, stripe int) (u layout.Unit, shard int, ok bool) {
	if s.rebuildDst == nil || !s.rebuilt[stripe] {
		return layout.Unit{}, 0, false
	}
	units, err := s.mapper.AppendStripeUnits(sc.units[:0], stripe)
	sc.units = units[:0]
	if err != nil {
		return layout.Unit{}, 0, false
	}
	for _, su := range units {
		if su.Disk == s.rebuildDisk {
			return su, s.mapper.ShardAt(su), true
		}
	}
	return layout.Unit{}, 0, false
}

// execWriteMulti is the multi-parity write executor: the same plans, but
// parity j absorbs Coef(j, i)-weighted deltas and any subset of the
// stripe's units may be lost (up to m).
func (s *Store) execWriteMulti(sc *scratch, within int, p []byte) error {
	stripe := sc.p.Stripe
	k := sc.p.DataShards
	a, b := sc.a[:len(p)], sc.b[:len(p)]
	switch sc.p.Kind {
	case plan.SmallWrite:
		// Read-modify-write against every surviving parity unit: each
		// absorbs its coefficient-weighted delta.
		home := sc.p.Steps[0].Unit
		homeShard := s.mapper.ShardAt(home)
		if _, err := s.disks[home.Disk].ReadAt(a, s.byteOff(home, within)); err != nil {
			return fmt.Errorf("store: small write read disk %d: %w", home.Disk, err)
		}
		s.noteIO(home.Disk, false, false, len(a))
		subtle.XORBytes(a, a, p) // a = delta
		if _, err := s.disks[home.Disk].WriteAt(p, s.byteOff(home, within)); err != nil {
			return fmt.Errorf("store: small write disk %d: %w", home.Disk, err)
		}
		s.noteIO(home.Disk, true, false, len(p))
		for _, st := range sc.p.Steps {
			if !st.Write || !st.Parity {
				continue
			}
			j := s.mapper.ShardAt(st.Unit) - k
			if _, err := s.disks[st.Disk].ReadAt(b, s.byteOff(st.Unit, within)); err != nil {
				return fmt.Errorf("store: small write read disk %d: %w", st.Disk, err)
			}
			s.noteIO(st.Disk, false, false, len(b))
			s.codec.UpdateParity(j, homeShard, b, a)
			if _, err := s.disks[st.Disk].WriteAt(b, s.byteOff(st.Unit, within)); err != nil {
				return fmt.Errorf("store: small write disk %d: %w", st.Disk, err)
			}
			s.noteIO(st.Disk, true, false, len(b))
		}
		return s.patchReplacementDelta(sc, stripe, homeShard, a, within)

	case plan.DataOnlyWrite:
		// Every parity unit is down: write the data unit; keep a rebuilt
		// stripe's replacement parity current via the delta.
		home := sc.p.Steps[0].Unit
		homeShard := s.mapper.ShardAt(home)
		ru, rs, patch := s.replacementUnit(sc, stripe)
		if patch && rs >= k {
			if _, err := s.disks[home.Disk].ReadAt(a, s.byteOff(home, within)); err != nil {
				return fmt.Errorf("store: data-only write read disk %d: %w", home.Disk, err)
			}
			s.noteIO(home.Disk, false, true, len(a))
			subtle.XORBytes(a, a, p) // a = delta
		}
		if _, err := s.disks[home.Disk].WriteAt(p, s.byteOff(home, within)); err != nil {
			return fmt.Errorf("store: data-only write disk %d: %w", home.Disk, err)
		}
		s.noteIO(home.Disk, true, true, len(p))
		if patch && rs >= k {
			off := s.byteOff(ru, within)
			if _, err := s.rebuildDst.ReadAt(b, off); err != nil {
				return fmt.Errorf("store: data-only write replacement read: %w", err)
			}
			s.codec.UpdateParity(rs-k, homeShard, b, a)
			if _, err := s.rebuildDst.WriteAt(b, off); err != nil {
				return fmt.Errorf("store: data-only write replacement: %w", err)
			}
			s.noteIO(ru.Disk, true, true, len(b))
		}
		return nil

	case plan.ReconstructWrite:
		// Home down, every other data unit alive: each surviving parity
		// is recomputed from scratch — the payload's contribution plus
		// the surviving data's.
		homeShard := sc.p.TargetShard
		for j := 0; j < s.pm; j++ {
			pj := sc.par[j][:len(p)]
			clear(pj)
			code.MulAdd(pj, p, s.codec.Coef(j, homeShard))
		}
		for _, st := range sc.p.Steps {
			if st.Write {
				continue
			}
			if _, err := s.disks[st.Disk].ReadAt(a, s.byteOff(st.Unit, within)); err != nil {
				return fmt.Errorf("store: reconstruct write read disk %d: %w", st.Disk, err)
			}
			s.noteIO(st.Disk, false, true, len(a))
			i := s.mapper.ShardAt(st.Unit)
			for j := 0; j < s.pm; j++ {
				code.MulAdd(sc.par[j][:len(p)], a, s.codec.Coef(j, i))
			}
		}
		for _, st := range sc.p.Steps {
			if !st.Write {
				continue
			}
			j := s.mapper.ShardAt(st.Unit) - k
			if _, err := s.disks[st.Disk].WriteAt(sc.par[j][:len(p)], s.byteOff(st.Unit, within)); err != nil {
				return fmt.Errorf("store: reconstruct write disk %d: %w", st.Disk, err)
			}
			s.noteIO(st.Disk, true, true, len(p))
		}
		// Keep a rebuilt stripe current on the replacement: the home
		// payload directly, or the from-scratch parity value.
		if ru, rs, ok := s.replacementUnit(sc, stripe); ok {
			switch {
			case rs == homeShard:
				if _, err := s.rebuildDst.WriteAt(p, s.byteOff(ru, within)); err != nil {
					return fmt.Errorf("store: reconstruct write replacement: %w", err)
				}
				s.noteIO(ru.Disk, true, true, len(p))
			case rs >= k:
				if _, err := s.rebuildDst.WriteAt(sc.par[rs-k][:len(p)], s.byteOff(ru, within)); err != nil {
					return fmt.Errorf("store: reconstruct write replacement: %w", err)
				}
				s.noteIO(ru.Disk, true, true, len(p))
			}
		}
		return nil

	case plan.DegradedWrite:
		// Home down along with another data unit: reconstruct the old
		// home payload from every survivor, then run the standard delta
		// update against the surviving parity units (whose old values
		// the same pass read).
		homeShard := sc.p.TargetShard
		coef := sc.coef[:k+s.pm]
		if err := s.codec.PlanReconstruct(k, sc.p.Missing, homeShard, coef); err != nil {
			return fmt.Errorf("store: degraded write: %w", err)
		}
		clear(b)
		for _, st := range sc.p.Steps {
			if st.Write {
				continue
			}
			if _, err := s.disks[st.Disk].ReadAt(a, s.byteOff(st.Unit, within)); err != nil {
				return fmt.Errorf("store: degraded write read disk %d: %w", st.Disk, err)
			}
			s.noteIO(st.Disk, false, true, len(a))
			sh := s.mapper.ShardAt(st.Unit)
			if sh >= k {
				copy(sc.par[sh-k][:len(p)], a)
			}
			if w := coef[sh]; w != 0 {
				code.MulAdd(b, a, w)
			}
		}
		subtle.XORBytes(b, b, p) // b = old home ^ payload = delta
		for _, st := range sc.p.Steps {
			if !st.Write {
				continue
			}
			j := s.mapper.ShardAt(st.Unit) - k
			pj := sc.par[j][:len(p)]
			s.codec.UpdateParity(j, homeShard, pj, b)
			if _, err := s.disks[st.Disk].WriteAt(pj, s.byteOff(st.Unit, within)); err != nil {
				return fmt.Errorf("store: degraded write disk %d: %w", st.Disk, err)
			}
			s.noteIO(st.Disk, true, true, len(pj))
		}
		return s.patchReplacementDelta(sc, stripe, homeShard, b, within)

	default:
		return fmt.Errorf("store: writeUnit: unexpected plan kind %v", sc.p.Kind)
	}
}

// patchReplacementDelta keeps an already-rebuilt stripe current on the
// replacement after a delta-style write to data shard homeShard: a
// parity unit on the rebuild disk absorbs the weighted delta; a data
// unit other than the home is untouched by the write and needs nothing.
// (The home unit itself cannot live on the rebuild disk here — callers
// with a lost home patch it explicitly with the payload.)
func (s *Store) patchReplacementDelta(sc *scratch, stripe, homeShard int, delta []byte, within int) error {
	ru, rs, ok := s.replacementUnit(sc, stripe)
	if !ok || rs < sc.p.DataShards {
		return nil
	}
	b := sc.b[:len(delta)]
	if &b[0] == &delta[0] {
		b = sc.a[:len(delta)]
	}
	off := s.byteOff(ru, within)
	if _, err := s.rebuildDst.ReadAt(b, off); err != nil {
		return fmt.Errorf("store: write replacement read: %w", err)
	}
	s.codec.UpdateParity(rs-sc.p.DataShards, homeShard, b, delta)
	if _, err := s.rebuildDst.WriteAt(b, off); err != nil {
		return fmt.Errorf("store: write replacement: %w", err)
	}
	s.noteIO(ru.Disk, true, true, len(b))
	return nil
}

// tryFullStripe writes p's prefix through the Condition 5 full-stripe
// path when logical is the first data unit of its stripe and p covers
// the stripe's whole data payload. It returns the bytes consumed (0 when
// the fast path does not apply).
func (s *Store) tryFullStripe(sc *scratch, logical int, p []byte) (int, error) {
	stripe, _, err := s.mapper.StripeOf(logical)
	if err != nil {
		return 0, err
	}
	units, err := s.mapper.AppendStripeUnits(sc.units[:0], stripe)
	sc.units = units[:0]
	if err != nil {
		return 0, err
	}
	dataUnits := len(units) - s.pm
	span := dataUnits * s.unitSize
	if len(p) < span {
		return 0, nil
	}
	first := -1
	for _, u := range units {
		if s.mapper.ShardAt(u) >= dataUnits {
			continue
		}
		first, _ = s.mapper.Logical(u)
		break
	}
	if first != logical {
		return 0, nil
	}
	lk := s.lockFor(stripe)
	lk.Lock()
	defer lk.Unlock()
	err = s.writeStripeLocked(sc, stripe, units, func(i int) []byte {
		return p[i*s.unitSize : (i+1)*s.unitSize]
	})
	if err != nil {
		return 0, err
	}
	return span, nil
}

// writeStripeLocked writes one whole stripe with no pre-reads (the
// Condition 5 large-write path): the new parity units are encoded from
// the new data payloads alone. data(i) returns the payload of the
// stripe's i-th data unit in stripe order (= data shard i); units holds
// the stripe's units (parity included) and the caller holds the
// stripe's write lock.
func (s *Store) writeStripeLocked(sc *scratch, stripe int, units []layout.Unit, data func(int) []byte) error {
	k := len(units) - s.pm
	// Encode each parity from the new data: parity[j] = sum Coef(j,i) *
	// data(i). Under XOR this is the plain XOR of the payloads.
	for j := 0; j < s.pm; j++ {
		pj := sc.par[j][:s.unitSize]
		clear(pj)
		for i := 0; i < k; i++ {
			code.MulAdd(pj, data(i), s.codec.Coef(j, i))
		}
	}
	fs := s.fails.Load()
	redirect := s.rebuildDst != nil && s.rebuilt[stripe]
	idx := 0
	for _, u := range units {
		var payload []byte
		if sh := s.mapper.ShardAt(u); sh >= k {
			payload = sc.par[sh-k][:s.unitSize]
		} else {
			payload = data(idx)
			idx++
		}
		switch {
		case !fs.has(u.Disk):
			if _, err := s.disks[u.Disk].WriteAt(payload, s.byteOff(u, 0)); err != nil {
				return fmt.Errorf("store: full-stripe write disk %d: %w", u.Disk, err)
			}
			s.noteIO(u.Disk, true, false, len(payload))
		case redirect && u.Disk == s.rebuildDisk:
			if _, err := s.rebuildDst.WriteAt(payload, s.byteOff(u, 0)); err != nil {
				return fmt.Errorf("store: full-stripe write replacement: %w", err)
			}
			s.noteIO(u.Disk, true, true, len(payload))
		}
		// A not-yet-rebuilt unit on a failed disk is simply skipped:
		// Rebuild reconstructs it from the survivors just written.
	}
	return nil
}

// Rebuild reconstructs the lowest-numbered failed disk's bytes onto
// replacement, stripe by stripe under the per-stripe locks, while
// foreground reads and writes continue degraded; when every stripe is
// copied, the replacement atomically takes that disk's slot and the disk
// leaves the failed set. With several disks down (multi-parity codes),
// each Rebuild call reconstructs one disk — call it once per failure.
// The replaced backend is not closed; the caller owns it.
func (s *Store) Rebuild(replacement Backend) error {
	s.admin.Lock()
	if s.rebuilding.Load() {
		s.admin.Unlock()
		return fmt.Errorf("store: Rebuild: already in progress")
	}
	need := int64(s.mapper.DiskUnits()) * int64(s.unitSize)
	if replacement == nil || replacement.Size() < need {
		s.admin.Unlock()
		return fmt.Errorf("store: Rebuild: replacement smaller than %d bytes", need)
	}
	s.lockAll()
	fs := s.fails.Load()
	target := fs.first()
	if target < 0 {
		s.unlockAll()
		s.admin.Unlock()
		return fmt.Errorf("store: Rebuild: no failed disk")
	}
	clear(s.rebuilt)
	s.rebuiltStripes.Store(0)
	s.rebuildDst = replacement
	s.rebuildDisk = target
	s.rebuilding.Store(true)
	s.unlockAll()
	s.admin.Unlock()

	finish := func(swap bool) {
		s.admin.Lock()
		s.lockAll()
		if swap {
			s.disks[target] = replacement
			s.fails.Store(s.fails.Load().without(target))
		}
		s.rebuildDst = nil
		s.rebuildDisk = -1
		clear(s.rebuilt)
		s.rebuiltStripes.Store(0)
		s.rebuilding.Store(false)
		s.unlockAll()
		s.admin.Unlock()
	}

	sc := s.pool.Get().(*scratch)
	defer s.pool.Put(sc)
	rb, err := sc.pln.RebuildM(target, fs.disks)
	if err != nil {
		finish(false)
		return err
	}
	for i := range rb.Plans {
		if err := s.rebuildStripe(sc, &rb.Plans[i]); err != nil {
			finish(false)
			return err
		}
	}
	finish(true)
	return nil
}

// rebuildStripe reconstructs one stripe's lost unit onto the replacement
// under the stripe's write lock.
func (s *Store) rebuildStripe(sc *scratch, pl *plan.Plan) error {
	lk := s.lockFor(pl.Stripe)
	lk.Lock()
	defer lk.Unlock()
	coef := sc.coef[:pl.DataShards+s.pm]
	if err := s.codec.PlanReconstruct(pl.DataShards, pl.Missing, pl.TargetShard, coef); err != nil {
		return fmt.Errorf("store: rebuild stripe %d: %w", pl.Stripe, err)
	}
	a, b := sc.a[:s.unitSize], sc.b[:s.unitSize]
	clear(b)
	for _, st := range pl.Steps {
		w := coef[s.mapper.ShardAt(st.Unit)]
		if w == 0 {
			continue
		}
		if _, err := s.disks[st.Disk].ReadAt(a, s.byteOff(st.Unit, 0)); err != nil {
			return fmt.Errorf("store: rebuild read disk %d: %w", st.Disk, err)
		}
		code.MulAdd(b, a, w)
		s.noteIO(st.Disk, false, true, len(a))
	}
	if _, err := s.rebuildDst.WriteAt(b, s.byteOff(pl.Target, 0)); err != nil {
		return fmt.Errorf("store: rebuild write replacement: %w", err)
	}
	s.noteIO(pl.Target.Disk, true, true, len(b))
	s.rebuilt[pl.Stripe] = true
	s.rebuiltStripes.Add(1)
	return nil
}

// VerifyParity checks every stripe's parity invariant against the stored
// bytes, taking each stripe's read lock in turn; stripes crossing a
// currently-failed disk are skipped (their lost units are not available
// to check).
func (s *Store) VerifyParity() error {
	sc := s.pool.Get().(*scratch)
	defer s.pool.Put(sc)
	for stripe := 0; stripe < s.mapper.Stripes(); stripe++ {
		if err := s.verifyStripe(sc, stripe); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) verifyStripe(sc *scratch, stripe int) error {
	lk := s.lockFor(stripe)
	lk.RLock()
	defer lk.RUnlock()
	units, err := s.mapper.AppendStripeUnits(sc.units[:0], stripe)
	sc.units = units[:0]
	if err != nil {
		return err
	}
	fs := s.fails.Load()
	for _, u := range units {
		if fs.has(u.Disk) {
			return nil
		}
	}
	k := len(units) - s.pm
	a := sc.a[:s.unitSize]
	for j := 0; j < s.pm; j++ {
		clear(sc.par[j][:s.unitSize])
	}
	for _, u := range units {
		sh := s.mapper.ShardAt(u)
		if sh >= k {
			continue
		}
		if _, err := s.disks[u.Disk].ReadAt(a, s.byteOff(u, 0)); err != nil {
			return fmt.Errorf("store: verify read disk %d: %w", u.Disk, err)
		}
		for j := 0; j < s.pm; j++ {
			code.MulAdd(sc.par[j][:s.unitSize], a, s.codec.Coef(j, sh))
		}
	}
	for _, u := range units {
		sh := s.mapper.ShardAt(u)
		if sh < k {
			continue
		}
		if _, err := s.disks[u.Disk].ReadAt(a, s.byteOff(u, 0)); err != nil {
			return fmt.Errorf("store: verify read disk %d: %w", u.Disk, err)
		}
		if !bytes.Equal(a, sc.par[sh-k][:s.unitSize]) {
			return fmt.Errorf("store: stripe %d parity %d mismatch", stripe, sh-k)
		}
	}
	return nil
}
