package store

import (
	"fmt"
	"io"
	"os"
)

// Backend is one disk's byte storage. The Store issues ReadAt/WriteAt
// calls whose ranges it has already bounds-checked and serialized per
// parity stripe; a Backend must support concurrent calls on disjoint
// ranges (MemDisk, FileDisk, and MmapDisk all do).
//
// Every Backend honors the same contract, pinned by the exported
// conformance suite in repro/pdl/store/storetest (new implementations
// must pass it):
//
//   - Size is stable: it never changes over the backend's lifetime.
//   - ReadAt at or past Size returns (0, io.EOF); a read crossing Size
//     returns the available prefix and io.EOF.
//   - WriteAt never grows the disk: a write extending past Size fails
//     without writing anything.
//   - Negative offsets are errors.
type Backend interface {
	io.ReaderAt
	io.WriterAt

	// Size returns the backend's capacity in bytes.
	Size() int64

	// Close releases the backend's resources. The Store's Close calls it
	// on every disk.
	Close() error
}

// MemDisk is a Backend over an in-memory byte slab: the fastest backend
// and the one tests and benchmarks default to.
type MemDisk struct {
	b []byte
}

// NewMemDisk allocates a zeroed in-memory disk of size bytes.
func NewMemDisk(size int64) *MemDisk {
	if size < 0 {
		panic(fmt.Sprintf("store: NewMemDisk: negative size %d", size))
	}
	return &MemDisk{b: make([]byte, size)}
}

// ReadAt implements io.ReaderAt over the slab.
func (d *MemDisk) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("store: MemDisk.ReadAt: negative offset %d", off)
	}
	if off >= int64(len(d.b)) {
		return 0, io.EOF
	}
	n := copy(p, d.b[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements io.WriterAt over the slab. Writes past the fixed
// size fail: a MemDisk does not grow.
func (d *MemDisk) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("store: MemDisk.WriteAt: negative offset %d", off)
	}
	// Overflow-safe: off+len(p) could wrap for offsets near MaxInt64.
	if off > int64(len(d.b)) || int64(len(p)) > int64(len(d.b))-off {
		return 0, fmt.Errorf("store: MemDisk.WriteAt: [%d,%d+%d) outside disk of %d bytes", off, off, len(p), len(d.b))
	}
	return copy(d.b[off:], p), nil
}

// Size returns the slab size in bytes.
func (d *MemDisk) Size() int64 { return int64(len(d.b)) }

// Close is a no-op.
func (d *MemDisk) Close() error { return nil }

// FileDisk is a Backend over an *os.File using positioned I/O
// (ReadAt/WriteAt), so concurrent requests need no seek coordination.
type FileDisk struct {
	f    *os.File
	size int64
}

// CreateFileDisk creates (or truncates) a file of size bytes and wraps it
// as a disk backend.
func CreateFileDisk(path string, size int64) (*FileDisk, error) {
	if size < 0 {
		return nil, fmt.Errorf("store: CreateFileDisk: negative size %d", size)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: CreateFileDisk: %w", err)
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: CreateFileDisk: %w", err)
	}
	return &FileDisk{f: f, size: size}, nil
}

// OpenFileDisk opens an existing disk file; its size comes from Stat.
func OpenFileDisk(path string) (*FileDisk, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("store: OpenFileDisk: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: OpenFileDisk: %w", err)
	}
	return &FileDisk{f: f, size: st.Size()}, nil
}

// ReadAt implements io.ReaderAt on the file.
func (d *FileDisk) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("store: FileDisk.ReadAt: negative offset %d", off)
	}
	if off >= d.size {
		return 0, io.EOF
	}
	return d.f.ReadAt(p, off)
}

// WriteAt implements io.WriterAt on the file. Writes past the recorded
// size fail: a disk does not grow, even though the file could.
func (d *FileDisk) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("store: FileDisk.WriteAt: negative offset %d", off)
	}
	// Overflow-safe: off+len(p) could wrap for offsets near MaxInt64.
	if off > d.size || int64(len(p)) > d.size-off {
		return 0, fmt.Errorf("store: FileDisk.WriteAt: [%d,%d+%d) outside disk of %d bytes", off, off, len(p), d.size)
	}
	return d.f.WriteAt(p, off)
}

// Size returns the file size recorded at open time.
func (d *FileDisk) Size() int64 { return d.size }

// File returns the underlying file (e.g. for Sync).
func (d *FileDisk) File() *os.File { return d.f }

// Close closes the file.
func (d *FileDisk) Close() error { return d.f.Close() }
