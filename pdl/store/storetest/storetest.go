// Package storetest exports the Backend conformance suite: the contract
// every pdl/store Backend must honor (see the Backend doc comment),
// pinned once and run against every implementation. New backends get the
// same guarantees for free:
//
//	func TestMyDisk(t *testing.T) {
//		storetest.TestBackend(t, func(t testing.TB, size int64) store.Backend {
//			d, err := NewMyDisk(filepath.Join(t.TempDir(), "d"), size)
//			if err != nil {
//				t.Fatal(err)
//			}
//			return d
//		})
//	}
//
// The factory returns a fresh, zeroed backend of the requested size; the
// suite closes it. CONTRIBUTING.md requires every new Backend to pass.
package storetest

import (
	"bytes"
	"io"
	"math"
	"sync"
	"testing"

	"repro/pdl/store"
)

// Factory creates a fresh, zero-filled backend of size bytes. Use
// t.TempDir for file-backed implementations so cleanup is automatic;
// fail the test on construction errors.
type Factory func(t testing.TB, size int64) store.Backend

// TestBackend runs the conformance suite against backends produced by mk.
func TestBackend(t *testing.T, mk Factory) {
	t.Run("SizeAndZeroFill", func(t *testing.T) { testSizeAndZeroFill(t, mk) })
	t.Run("RoundTrip", func(t *testing.T) { testRoundTrip(t, mk) })
	t.Run("ShortReadAtTail", func(t *testing.T) { testShortReadAtTail(t, mk) })
	t.Run("ReadPastEnd", func(t *testing.T) { testReadPastEnd(t, mk) })
	t.Run("WriteOutOfRange", func(t *testing.T) { testWriteOutOfRange(t, mk) })
	t.Run("NegativeOffsets", func(t *testing.T) { testNegativeOffsets(t, mk) })
	t.Run("SizeStability", func(t *testing.T) { testSizeStability(t, mk) })
	t.Run("ConcurrentDisjoint", func(t *testing.T) { testConcurrentDisjoint(t, mk) })
}

const suiteSize = 1 << 12 // 4 KiB: small enough to sweep, big enough for edges

func pattern(b []byte, seed int) []byte {
	for i := range b {
		b[i] = byte(seed*131 + i*29 + 3)
	}
	return b
}

func testSizeAndZeroFill(t *testing.T, mk Factory) {
	d := mk(t, suiteSize)
	defer d.Close()
	if got := d.Size(); got != suiteSize {
		t.Fatalf("Size() = %d, want %d", got, suiteSize)
	}
	got := make([]byte, suiteSize)
	if n, err := d.ReadAt(got, 0); n != suiteSize || (err != nil && err != io.EOF) {
		t.Fatalf("full read: n=%d err=%v", n, err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("fresh backend not zero-filled at %d: %#x", i, b)
		}
	}
}

func testRoundTrip(t *testing.T, mk Factory) {
	d := mk(t, suiteSize)
	defer d.Close()
	// Overlapping, unaligned writes; last writer wins.
	writes := []struct {
		off  int64
		n    int
		seed int
	}{
		{0, 64, 1}, {61, 7, 2}, {100, 1, 3}, {suiteSize - 33, 33, 4}, {500, 1000, 5}, {900, 200, 6},
	}
	mirror := make([]byte, suiteSize)
	for _, w := range writes {
		p := pattern(make([]byte, w.n), w.seed)
		if n, err := d.WriteAt(p, w.off); n != w.n || err != nil {
			t.Fatalf("WriteAt(%d, %d): n=%d err=%v", w.off, w.n, n, err)
		}
		copy(mirror[w.off:], p)
	}
	got := make([]byte, suiteSize)
	if n, err := d.ReadAt(got, 0); n != suiteSize || (err != nil && err != io.EOF) {
		t.Fatalf("full read: n=%d err=%v", n, err)
	}
	if !bytes.Equal(got, mirror) {
		t.Fatal("contents diverge from mirror after overlapping writes")
	}
	// Unaligned partial read.
	sub := make([]byte, 123)
	if _, err := d.ReadAt(sub, 611); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sub, mirror[611:611+123]) {
		t.Fatal("partial read diverges from mirror")
	}
}

func testShortReadAtTail(t *testing.T, mk Factory) {
	d := mk(t, suiteSize)
	defer d.Close()
	want := pattern(make([]byte, 40), 7)
	if _, err := d.WriteAt(want, suiteSize-40); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 100)
	n, err := d.ReadAt(got, suiteSize-40)
	if n != 40 || err != io.EOF {
		t.Fatalf("tail read: n=%d err=%v, want 40, io.EOF", n, err)
	}
	if !bytes.Equal(got[:n], want) {
		t.Fatal("tail read returned wrong prefix")
	}
}

func testReadPastEnd(t *testing.T, mk Factory) {
	d := mk(t, suiteSize)
	defer d.Close()
	p := make([]byte, 8)
	if n, err := d.ReadAt(p, suiteSize); n != 0 || err != io.EOF {
		t.Fatalf("ReadAt(size): n=%d err=%v, want 0, io.EOF", n, err)
	}
	if n, err := d.ReadAt(p, suiteSize+100); n != 0 || err != io.EOF {
		t.Fatalf("ReadAt(size+100): n=%d err=%v, want 0, io.EOF", n, err)
	}
	if n, err := d.ReadAt(p, math.MaxInt64-4); n != 0 || err != io.EOF {
		t.Fatalf("ReadAt(MaxInt64-4): n=%d err=%v, want 0, io.EOF", n, err)
	}
}

func testWriteOutOfRange(t *testing.T, mk Factory) {
	d := mk(t, suiteSize)
	defer d.Close()
	canary := pattern(make([]byte, 16), 9)
	if _, err := d.WriteAt(canary, suiteSize-16); err != nil {
		t.Fatal(err)
	}
	// Straddling the end, at the end, past the end, and at an offset
	// whose off+len overflows int64 must all fail (not panic) without
	// writing anything.
	for _, off := range []int64{suiteSize - 8, suiteSize, suiteSize + 8, math.MaxInt64 - 8} {
		if n, err := d.WriteAt(make([]byte, 16), off); err == nil {
			t.Fatalf("WriteAt(%d) crossing size accepted (n=%d)", off, n)
		}
	}
	got := make([]byte, 16)
	if _, err := d.ReadAt(got, suiteSize-16); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, canary) {
		t.Fatal("failed out-of-range write modified the tail")
	}
}

func testNegativeOffsets(t *testing.T, mk Factory) {
	d := mk(t, suiteSize)
	defer d.Close()
	p := make([]byte, 8)
	if _, err := d.ReadAt(p, -1); err == nil || err == io.EOF {
		t.Fatalf("ReadAt(-1) err=%v, want a real error", err)
	}
	if _, err := d.WriteAt(p, -1); err == nil {
		t.Fatal("WriteAt(-1) accepted")
	}
}

func testSizeStability(t *testing.T, mk Factory) {
	d := mk(t, suiteSize)
	defer d.Close()
	probes := func(tag string) {
		t.Helper()
		if got := d.Size(); got != suiteSize {
			t.Fatalf("%s: Size() = %d, want %d", tag, got, suiteSize)
		}
	}
	probes("fresh")
	if _, err := d.WriteAt(pattern(make([]byte, 256), 11), 0); err != nil {
		t.Fatal(err)
	}
	probes("after write")
	d.WriteAt(make([]byte, 64), suiteSize-8) // must fail; must not grow
	probes("after rejected write")
	d.ReadAt(make([]byte, 64), suiteSize+1)
	probes("after past-end read")
}

func testConcurrentDisjoint(t *testing.T, mk Factory) {
	d := mk(t, suiteSize)
	defer d.Close()
	const (
		lanes   = 8
		laneLen = suiteSize / lanes
		rounds  = 50
	)
	var wg sync.WaitGroup
	errs := make(chan error, lanes)
	for lane := 0; lane < lanes; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			off := int64(lane * laneLen)
			buf := make([]byte, laneLen)
			got := make([]byte, laneLen)
			for r := 0; r < rounds; r++ {
				pattern(buf, lane*rounds+r)
				if _, err := d.WriteAt(buf, off); err != nil {
					errs <- err
					return
				}
				if _, err := d.ReadAt(got, off); err != nil && err != io.EOF {
					errs <- err
					return
				}
				if !bytes.Equal(got, buf) {
					t.Errorf("lane %d round %d: readback diverges", lane, r)
					return
				}
			}
		}(lane)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
