package store_test

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/pdl/store"
)

// TestWriteVecMatchesSequential drives random mixed batches (duplicates
// included) through WriteVec/ReadVec and checks every byte against a
// flat mirror maintained in submission order.
func TestWriteVecMatchesSequential(t *testing.T) {
	const unitSize = 32
	s := mustStore(t, 13, 4, 2, unitSize)
	mirror := make([][]byte, s.Capacity())
	for i := range mirror {
		mirror[i] = make([]byte, unitSize)
	}
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 60; round++ {
		n := rng.Intn(48) + 1
		ops := make([]store.VecOp, n)
		for i := range ops {
			logical := rng.Intn(s.Capacity())
			// A third of the rounds write dense sequential runs so full
			// stripes coalesce and the promotion path is exercised.
			if round%3 == 0 {
				logical = (rng.Intn(s.Capacity()-n) + i) % s.Capacity()
			}
			buf := make([]byte, unitSize)
			rng.Read(buf)
			ops[i] = store.VecOp{Logical: logical, Buf: buf}
		}
		if err := s.WriteVec(ops); err != nil {
			t.Fatal(err)
		}
		for _, o := range ops {
			copy(mirror[o.Logical], o.Buf)
		}
		if err := s.VerifyParity(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	got := make([]store.VecOp, s.Capacity())
	for i := range got {
		got[i] = store.VecOp{Logical: i, Buf: make([]byte, unitSize)}
	}
	if err := s.ReadVec(got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !bytes.Equal(got[i].Buf, mirror[i]) {
			t.Fatalf("logical %d diverges from mirror", i)
		}
	}
}

// TestWriteVecPromotion proves the full-stripe promotion happens: a batch
// covering whole stripes must issue zero physical reads (Condition 5 has
// no pre-reads), where the same ops written one by one read twice per op.
func TestWriteVecPromotion(t *testing.T) {
	const unitSize = 64
	s := mustStore(t, 9, 3, 1, unitSize)
	before := totalReads(s)
	// Whole logical space, sequential: every stripe's data units coalesce.
	ops := make([]store.VecOp, s.Capacity())
	for i := range ops {
		ops[i] = store.VecOp{Logical: i, Buf: payload(make([]byte, unitSize), i)}
	}
	if err := s.WriteVec(ops); err != nil {
		t.Fatal(err)
	}
	if got := totalReads(s) - before; got != 0 {
		t.Errorf("full-stripe batch issued %d physical reads, want 0", got)
	}
	if err := s.VerifyParity(); err != nil {
		t.Fatal(err)
	}
	// The fallback path for comparison: the same writes one at a time are
	// read-modify-writes, two pre-reads each.
	before = totalReads(s)
	for i := range ops {
		if err := s.Write(i, ops[i].Buf); err != nil {
			t.Fatal(err)
		}
	}
	if got := totalReads(s) - before; got != int64(2*len(ops)) {
		t.Errorf("unbatched writes issued %d physical reads, want %d", got, 2*len(ops))
	}
}

func totalReads(s *store.Store) int64 {
	var n int64
	for _, d := range s.Stats().Disks {
		n += d.Reads
	}
	return n
}

// TestVecDegraded runs vec traffic with a disk down and across a
// rebuild: degraded batches must stay byte-correct and parity-clean.
func TestVecDegraded(t *testing.T) {
	const unitSize = 16
	s := mustStore(t, 9, 3, 2, unitSize)
	mirror := make([][]byte, s.Capacity())
	ops := make([]store.VecOp, s.Capacity())
	for i := range ops {
		mirror[i] = payload(make([]byte, unitSize), i)
		ops[i] = store.VecOp{Logical: i, Buf: append([]byte(nil), mirror[i]...)}
	}
	if err := s.WriteVec(ops); err != nil {
		t.Fatal(err)
	}
	if err := s.Fail(4); err != nil {
		t.Fatal(err)
	}
	// Degraded reads of everything, batched.
	got := make([]store.VecOp, s.Capacity())
	for i := range got {
		got[i] = store.VecOp{Logical: i, Buf: make([]byte, unitSize)}
	}
	if err := s.ReadVec(got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !bytes.Equal(got[i].Buf, mirror[i]) {
			t.Fatalf("degraded read of logical %d diverges", i)
		}
	}
	// Degraded full-stripe batches (the promoted path skips the failed
	// disk; Rebuild later reconstructs from the survivors written here).
	for i := range ops {
		payload(ops[i].Buf, 1000+i)
		copy(mirror[i], ops[i].Buf)
	}
	if err := s.WriteVec(ops); err != nil {
		t.Fatal(err)
	}
	if err := s.Rebuild(store.NewMemDisk(int64(s.Mapper().DiskUnits()) * unitSize)); err != nil {
		t.Fatal(err)
	}
	if err := s.VerifyParity(); err != nil {
		t.Fatal(err)
	}
	if err := s.ReadVec(got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !bytes.Equal(got[i].Buf, mirror[i]) {
			t.Fatalf("post-rebuild read of logical %d diverges", i)
		}
	}
}

// TestVecErrors pins the validation behavior: bad buffer sizes and bad
// addresses are rejected before any op executes.
func TestVecErrors(t *testing.T) {
	const unitSize = 16
	s := mustStore(t, 9, 3, 1, unitSize)
	if err := s.ReadVec(nil); err != nil {
		t.Errorf("empty ReadVec: %v", err)
	}
	if err := s.WriteVec(nil); err != nil {
		t.Errorf("empty WriteVec: %v", err)
	}
	short := []store.VecOp{{Logical: 0, Buf: make([]byte, unitSize-1)}}
	if err := s.ReadVec(short); err == nil {
		t.Error("ReadVec accepted a short buffer")
	}
	if err := s.WriteVec(short); err == nil {
		t.Error("WriteVec accepted a short buffer")
	}
	oob := []store.VecOp{{Logical: s.Capacity(), Buf: make([]byte, unitSize)}}
	if err := s.ReadVec(oob); err == nil {
		t.Error("ReadVec accepted an out-of-range address")
	}
	if err := s.WriteVec(oob); err == nil {
		t.Error("WriteVec accepted an out-of-range address")
	}
}
