//go:build !race

// The allocs regression gate (CI) for the batch entry points: ReadVec
// and WriteVec promise zero allocations per call in steady state (the
// single-op gate lives in TestHotPathAllocs). Excluded under -race:
// sync.Pool randomly drops items under the race detector.

package store_test

import (
	"testing"

	"repro/pdl/store"
)

func TestVecHotPathAllocs(t *testing.T) {
	const unitSize = 4096
	const depth = 32
	s := mustStore(t, 17, 4, 4, unitSize)
	wops := make([]store.VecOp, depth)
	rops := make([]store.VecOp, depth)
	for j := 0; j < depth; j++ {
		wops[j].Buf = payload(make([]byte, unitSize), j)
		rops[j].Buf = make([]byte, unitSize)
	}
	i := 0
	setAddrs := func(ops []store.VecOp) {
		for j := range ops {
			ops[j].Logical = (i*depth + j) % s.Capacity()
		}
		i++
	}
	// Warm the pool's vec scratch.
	for w := 0; w < 8; w++ {
		setAddrs(wops)
		if err := s.WriteVec(wops); err != nil {
			t.Fatal(err)
		}
		if err := s.ReadVec(rops); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(200, func() {
		setAddrs(wops)
		if err := s.WriteVec(wops); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("WriteVec allocates %v/batch, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		setAddrs(rops)
		if err := s.ReadVec(rops); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("ReadVec allocates %v/batch, want 0", n)
	}
}
