//go:build !race

// The allocs regression gates (CI) for the batch entry points — ReadVec
// and WriteVec promise zero allocations per call in steady state (the
// single-op gate lives in TestHotPathAllocs) — and for the MmapDisk
// healthy read path. Excluded under -race: sync.Pool randomly drops
// items under the race detector.

package store_test

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/pdl"
	"repro/pdl/store"
)

func TestVecHotPathAllocs(t *testing.T) {
	const unitSize = 4096
	const depth = 32
	s := mustStore(t, 17, 4, 4, unitSize)
	wops := make([]store.VecOp, depth)
	rops := make([]store.VecOp, depth)
	for j := 0; j < depth; j++ {
		wops[j].Buf = payload(make([]byte, unitSize), j)
		rops[j].Buf = make([]byte, unitSize)
	}
	i := 0
	setAddrs := func(ops []store.VecOp) {
		for j := range ops {
			ops[j].Logical = (i*depth + j) % s.Capacity()
		}
		i++
	}
	// Warm the pool's vec scratch.
	for w := 0; w < 8; w++ {
		setAddrs(wops)
		if err := s.WriteVec(wops); err != nil {
			t.Fatal(err)
		}
		if err := s.ReadVec(rops); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(200, func() {
		setAddrs(wops)
		if err := s.WriteVec(wops); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("WriteVec allocates %v/batch, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		setAddrs(rops)
		if err := s.ReadVec(rops); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("ReadVec allocates %v/batch, want 0", n)
	}
}

// TestMmapHotPathAllocs pins the acceptance criterion for the mmap
// backend: a healthy Read against MmapDisk disks is a lock, a plan
// lookup, and a memory copy — 0 allocs/op, like MemDisk.
func TestMmapHotPathAllocs(t *testing.T) {
	const unitSize = 4096
	res, err := pdl.Build(17, 4)
	if err != nil {
		t.Fatal(err)
	}
	diskUnits := 4 * res.Layout.Size
	dir := t.TempDir()
	backends := make([]store.Backend, res.Layout.V)
	for d := range backends {
		backends[d], err = store.CreateMmapDisk(filepath.Join(dir, fmt.Sprintf("disk%02d.dat", d)), int64(diskUnits)*unitSize)
		if err != nil {
			t.Fatal(err)
		}
	}
	s, err := store.Open(res, diskUnits, unitSize, backends)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	src := make([]byte, unitSize)
	dst := make([]byte, unitSize)
	payload(src, 7)
	for i := 0; i < 64; i++ {
		if err := s.Write(i%s.Capacity(), src); err != nil {
			t.Fatal(err)
		}
		if err := s.Read(i%s.Capacity(), dst); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	if n := testing.AllocsPerRun(200, func() {
		if err := s.Read(i%s.Capacity(), dst); err != nil {
			t.Fatal(err)
		}
		i++
	}); n != 0 {
		t.Errorf("healthy MmapDisk Read allocates %v/op, want 0", n)
	}
}
