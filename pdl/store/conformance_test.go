package store_test

import (
	"path/filepath"
	"testing"

	"repro/pdl/store"
	"repro/pdl/store/storetest"
)

// TestBackendConformance runs the exported storetest contract suite
// against every shipped Backend, so MemDisk, FileDisk, and MmapDisk (real
// mapping or platform fallback alike) share one pinned behavior.
func TestBackendConformance(t *testing.T) {
	t.Run("MemDisk", func(t *testing.T) {
		storetest.TestBackend(t, func(t testing.TB, size int64) store.Backend {
			return store.NewMemDisk(size)
		})
	})
	t.Run("FileDisk", func(t *testing.T) {
		storetest.TestBackend(t, func(t testing.TB, size int64) store.Backend {
			d, err := store.CreateFileDisk(filepath.Join(t.TempDir(), "disk.dat"), size)
			if err != nil {
				t.Fatal(err)
			}
			return d
		})
	})
	t.Run("MmapDisk", func(t *testing.T) {
		storetest.TestBackend(t, func(t testing.TB, size int64) store.Backend {
			d, err := store.CreateMmapDisk(filepath.Join(t.TempDir(), "disk.dat"), size)
			if err != nil {
				t.Fatal(err)
			}
			return d
		})
	})
}

// TestMmapDiskPersists checks bytes written through the mapping are
// visible to a fresh open (Flush + reopen round trip), and that Close is
// idempotent.
func TestMmapDiskPersists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk.dat")
	const size = 1 << 14
	d, err := store.CreateMmapDisk(path, size)
	if err != nil {
		t.Fatal(err)
	}
	want := payload(make([]byte, 777), 3)
	if _, err := d.WriteAt(want, 4096); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	r, err := store.OpenMmapDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Size() != size {
		t.Fatalf("reopened Size() = %d, want %d", r.Size(), size)
	}
	got := make([]byte, len(want))
	if _, err := r.ReadAt(got, 4096); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("byte %d: %#x != %#x", i, got[i], want[i])
		}
	}
}
