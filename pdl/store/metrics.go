package store

import (
	"strconv"

	"repro/pdl/obs"
)

// RegisterMetrics registers the store's metric families with r under the
// pdl_store_* namespace. The registered series read the same atomics the
// hot paths already maintain, so scraping costs nothing on the I/O path.
// Call once per Store per Registry; registering the same Store twice on
// one Registry panics (duplicate series).
func (s *Store) RegisterMetrics(r *obs.Registry) {
	for d := range s.counters {
		c := &s.counters[d]
		lbl := obs.Label{Key: "disk", Value: strconv.Itoa(d)}
		r.CounterFunc("pdl_store_disk_reads_total",
			"Physical unit-range read operations issued to the disk.",
			c.reads.Load, lbl)
		r.CounterFunc("pdl_store_disk_writes_total",
			"Physical unit-range write operations issued to the disk.",
			c.writes.Load, lbl)
		r.CounterFunc("pdl_store_disk_read_bytes_total",
			"Bytes moved by physical reads from the disk.",
			c.readBytes.Load, lbl)
		r.CounterFunc("pdl_store_disk_write_bytes_total",
			"Bytes moved by physical writes to the disk.",
			c.writeBytes.Load, lbl)
		r.CounterFunc("pdl_store_disk_degraded_total",
			"Physical operations issued to the disk on behalf of degraded-mode work (survivor XOR reads, rebuild traffic).",
			c.degraded.Load, lbl)
	}
	r.GaugeFunc("pdl_store_failed_disk",
		"Index of the lowest failed disk, -1 when the array is healthy.",
		func() int64 { return int64(s.Failed()) })
	r.GaugeFunc("pdl_store_failed_disks",
		"Number of currently-failed disks (multi-parity codes tolerate up to the code's parity count).",
		func() int64 { return int64(len(s.fails.Load().disks)) })
	r.GaugeFunc("pdl_store_rebuilding",
		"1 while an online rebuild is running, else 0.",
		func() int64 {
			if s.rebuilding.Load() {
				return 1
			}
			return 0
		})
	r.GaugeFunc("pdl_store_rebuilt_stripes",
		"Stripes the in-progress rebuild has copied onto the replacement.",
		s.rebuiltStripes.Load)
	r.GaugeFunc("pdl_store_stripes",
		"Total parity stripes in the array layout.",
		func() int64 { return int64(s.mapper.Stripes()) })
	r.GaugeFunc("pdl_store_disks",
		"Disks in the array layout.",
		func() int64 { return int64(s.mapper.Disks()) })
	r.RegisterHist("pdl_store_op_duration_seconds",
		"Wall latency of public store I/O entry points.",
		&s.opHist[histRead], obs.Label{Key: "op", Value: "read"})
	r.RegisterHist("pdl_store_op_duration_seconds",
		"Wall latency of public store I/O entry points.",
		&s.opHist[histWrite], obs.Label{Key: "op", Value: "write"})
}
