package store_test

import (
	"bytes"
	"io"
	"math/rand"
	"sync"
	"testing"

	"repro/pdl"
	"repro/pdl/store"
)

// TestRebuildUnderLoad is the ISSUE's rebuild-under-load check: a disk
// fails mid-workload, the online rebuild runs while a writer keeps
// mutating both the failed store and a never-failed control store with
// the identical operation sequence, and afterwards the rebuilt store
// must match the control byte-exactly — every logical unit and the
// rebuilt disk's raw contents.
func TestRebuildUnderLoad(t *testing.T) {
	const (
		unitSize = 48
		failDisk = 4
	)
	res, err := pdl.Build(13, 4)
	if err != nil {
		t.Fatal(err)
	}
	diskUnits := 2 * res.Layout.Size
	subject, err := store.Open(res, diskUnits, unitSize, nil)
	if err != nil {
		t.Fatal(err)
	}
	control, err := store.Open(res, diskUnits, unitSize, nil)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	buf := make([]byte, unitSize)
	writeBoth := func(logical int) {
		rng.Read(buf)
		if err := subject.Write(logical, buf); err != nil {
			t.Error(err)
		}
		if err := control.Write(logical, buf); err != nil {
			t.Error(err)
		}
	}

	// Warm both stores with the same dataset, then fail a disk
	// mid-workload on the subject only.
	for i := 0; i < subject.Capacity(); i++ {
		writeBoth(i)
	}
	if err := subject.Fail(failDisk); err != nil {
		t.Fatal(err)
	}

	// Writer and rebuilder run concurrently; the writer keeps the two
	// stores in lockstep (same ops, same order) while stripes stream
	// onto the replacement.
	replacement := store.NewMemDisk(int64(diskUnits) * unitSize)
	var wg sync.WaitGroup
	wg.Add(1)
	rebuildErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		rebuildErr <- subject.Rebuild(replacement)
	}()
	for i := 0; i < 4000; i++ {
		writeBoth(rng.Intn(subject.Capacity()))
	}
	wg.Wait()
	if err := <-rebuildErr; err != nil {
		t.Fatal(err)
	}
	if subject.Failed() != -1 {
		t.Fatalf("Failed() = %d after rebuild", subject.Failed())
	}
	// A tail of post-rebuild traffic, still in lockstep.
	for i := 0; i < 500; i++ {
		writeBoth(rng.Intn(subject.Capacity()))
	}

	if err := subject.VerifyParity(); err != nil {
		t.Fatal(err)
	}
	if err := control.VerifyParity(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, unitSize)
	want := make([]byte, unitSize)
	for logical := 0; logical < subject.Capacity(); logical++ {
		if err := subject.Read(logical, got); err != nil {
			t.Fatal(err)
		}
		if err := control.Read(logical, want); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("logical %d: rebuilt store %x != control %x", logical, got, want)
		}
	}
	// The replacement's raw bytes (now serving disk failDisk) must equal
	// the control's never-failed disk byte-for-byte.
	diskBytes := int64(diskUnits) * unitSize
	gotDisk := make([]byte, diskBytes)
	wantDisk := make([]byte, diskBytes)
	if _, err := subject.DiskBackend(failDisk).ReadAt(gotDisk, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if _, err := control.DiskBackend(failDisk).ReadAt(wantDisk, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(gotDisk, wantDisk) {
		t.Fatal("rebuilt disk contents differ from never-failed control")
	}
	if subject.DiskBackend(failDisk) != store.Backend(replacement) {
		t.Error("replacement backend did not take the failed disk's slot")
	}
}
