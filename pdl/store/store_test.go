package store_test

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/pdl"
	"repro/pdl/layout"
	"repro/pdl/store"
)

// mustStore builds a MemDisk-backed store for (v, k) with the given
// number of layout copies per disk.
func mustStore(t *testing.T, v, k, copies, unitSize int) *store.Store {
	t.Helper()
	res, err := pdl.Build(v, k)
	if err != nil {
		t.Fatal(err)
	}
	s, err := store.Open(res, copies*res.Layout.Size, unitSize, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// payload fills a deterministic, unit-distinct pattern.
func payload(buf []byte, seed int) []byte {
	for j := range buf {
		buf[j] = byte(seed*31 + j*7 + 1)
	}
	return buf
}

// TestStoreMatchesDataModel is the reference-model property test: the
// concurrent store, driven sequentially, must agree byte-for-byte with
// pdl/layout's single-threaded Data engine — on healthy reads, degraded
// reads for every failed disk, and the rebuilt disk contents.
func TestStoreMatchesDataModel(t *testing.T) {
	const unitSize = 16
	res, err := pdl.Build(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	l := res.Layout
	s, err := store.Open(res, l.Size, unitSize, nil)
	if err != nil {
		t.Fatal(err)
	}
	model, err := layout.NewData(l, unitSize)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	buf := make([]byte, unitSize)
	got := make([]byte, unitSize)
	for i := 0; i < 4*s.Capacity(); i++ {
		logical := rng.Intn(s.Capacity())
		if rng.Intn(3) == 0 {
			want, err := model.ReadLogical(logical)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Read(logical, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("read logical %d: store %x != model %x", logical, got, want)
			}
			continue
		}
		payload(buf, rng.Int())
		if err := s.Write(logical, buf); err != nil {
			t.Fatal(err)
		}
		if err := model.WriteLogical(logical, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.VerifyParity(); err != nil {
		t.Fatal(err)
	}
	if err := model.VerifyParity(); err != nil {
		t.Fatal(err)
	}

	// Every failure mode: degraded reads must equal the model's, and the
	// online rebuild must reproduce the model's disk bytes exactly.
	for f := 0; f < l.V; f++ {
		if err := s.Fail(f); err != nil {
			t.Fatal(err)
		}
		for logical := 0; logical < s.Capacity(); logical++ {
			want, err := model.DegradedRead(logical, f)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Read(logical, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("disk %d down, logical %d: store %x != model %x", f, logical, got, want)
			}
		}
		replacement := store.NewMemDisk(int64(l.Size) * unitSize)
		if err := s.Rebuild(replacement); err != nil {
			t.Fatal(err)
		}
		if s.Failed() != -1 {
			t.Fatalf("after rebuild of disk %d: Failed() = %d, want -1", f, s.Failed())
		}
		rebuilt := make([]byte, l.Size*unitSize)
		if _, err := replacement.ReadAt(rebuilt, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if !bytes.Equal(rebuilt, model.DiskContents(f)) {
			t.Fatalf("rebuilt disk %d differs from model contents", f)
		}
		if err := s.VerifyParity(); err != nil {
			t.Fatalf("after rebuild of disk %d: %v", f, err)
		}
	}
}

// TestReadWriteAtSpansUnits drives the byte-offset API (including the
// full-stripe fast path and unaligned edges) against a flat mirror of the
// logical space, healthy and degraded.
func TestReadWriteAtSpansUnits(t *testing.T) {
	const unitSize = 32
	s := mustStore(t, 13, 4, 2, unitSize)
	mirror := make([]byte, s.Size())

	rng := rand.New(rand.NewSource(2))
	check := func(tag string) {
		t.Helper()
		got := make([]byte, len(mirror))
		if _, err := s.ReadAt(got, 0); err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		if !bytes.Equal(got, mirror) {
			t.Fatalf("%s: store contents diverge from mirror", tag)
		}
	}
	hammer := func(ops int) {
		for i := 0; i < ops; i++ {
			off := int64(rng.Intn(int(s.Size())))
			n := rng.Intn(6*unitSize) + 1
			if off+int64(n) > s.Size() {
				n = int(s.Size() - off)
			}
			p := make([]byte, n)
			rng.Read(p)
			if _, err := s.WriteAt(p, off); err != nil {
				t.Fatal(err)
			}
			copy(mirror[off:], p)

			roff := int64(rng.Intn(int(s.Size())))
			rn := rng.Intn(6*unitSize) + 1
			if roff+int64(rn) > s.Size() {
				rn = int(s.Size() - roff)
			}
			got := make([]byte, rn)
			if _, err := s.ReadAt(got, roff); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, mirror[roff:roff+int64(rn)]) {
				t.Fatalf("ReadAt(%d,%d) diverges from mirror", roff, rn)
			}
		}
	}

	hammer(300)
	check("healthy")
	if err := s.VerifyParity(); err != nil {
		t.Fatal(err)
	}

	if err := s.Fail(3); err != nil {
		t.Fatal(err)
	}
	hammer(300)
	check("degraded")

	if err := s.Rebuild(store.NewMemDisk(int64(s.Mapper().DiskUnits()) * unitSize)); err != nil {
		t.Fatal(err)
	}
	hammer(100)
	check("rebuilt")
	if err := s.VerifyParity(); err != nil {
		t.Fatal(err)
	}

	// Reading past the end is io.EOF with the available prefix.
	tail := make([]byte, 2*unitSize)
	n, err := s.ReadAt(tail, s.Size()-int64(unitSize))
	if n != unitSize || err != io.EOF {
		t.Fatalf("ReadAt past end: n=%d err=%v, want %d, io.EOF", n, err, unitSize)
	}
	if _, err := s.WriteAt(tail, s.Size()-int64(unitSize)); err == nil {
		t.Fatal("WriteAt past end accepted")
	}
}

// TestFileDiskBackend runs the serve/fail/rebuild cycle against real
// files, and checks reopening the array sees the same bytes.
func TestFileDiskBackend(t *testing.T) {
	const unitSize = 64
	res, err := pdl.Build(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	l := res.Layout
	dir := t.TempDir()
	diskBytes := int64(l.Size) * unitSize
	path := func(d int) string { return filepath.Join(dir, fmt.Sprintf("disk%02d.dat", d)) }
	backends := make([]store.Backend, l.V)
	for d := range backends {
		fd, err := store.CreateFileDisk(path(d), diskBytes)
		if err != nil {
			t.Fatal(err)
		}
		backends[d] = fd
	}
	s, err := store.Open(res, l.Size, unitSize, backends)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, unitSize)
	for i := 0; i < s.Capacity(); i++ {
		if err := s.Write(i, payload(buf, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.VerifyParity(); err != nil {
		t.Fatal(err)
	}
	if err := s.Fail(2); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, unitSize)
	for i := 0; i < s.Capacity(); i++ {
		if err := s.Read(i, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload(buf, i)) {
			t.Fatalf("degraded read %d mismatch", i)
		}
	}
	replacement, err := store.CreateFileDisk(filepath.Join(dir, "replacement.dat"), diskBytes)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Rebuild(replacement); err != nil {
		t.Fatal(err)
	}
	if err := s.VerifyParity(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen from the files (replacement now serves disk 2).
	reopened := make([]store.Backend, l.V)
	for d := range reopened {
		p := path(d)
		if d == 2 {
			p = filepath.Join(dir, "replacement.dat")
		}
		fd, err := store.OpenFileDisk(p)
		if err != nil {
			t.Fatal(err)
		}
		reopened[d] = fd
	}
	s2, err := store.Open(res, l.Size, unitSize, reopened)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i := 0; i < s2.Capacity(); i++ {
		if err := s2.Read(i, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload(buf, i)) {
			t.Fatalf("reopened read %d mismatch", i)
		}
	}
	if err := s2.VerifyParity(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreValidation pins the constructor and operation error paths.
func TestStoreValidation(t *testing.T) {
	const unitSize = 8
	res, err := pdl.Build(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	l := res.Layout
	m, err := res.NewMapper(l.Size)
	if err != nil {
		t.Fatal(err)
	}
	small := make([]store.Backend, l.V)
	for d := range small {
		small[d] = store.NewMemDisk(int64(l.Size)*unitSize - 1)
	}
	if _, err := store.New(m, unitSize, small); err == nil {
		t.Error("undersized backend accepted")
	}
	if _, err := store.New(m, 0, nil); err == nil {
		t.Error("zero unit size accepted")
	}
	if _, err := store.New(m, unitSize, make([]store.Backend, 2)); err == nil {
		t.Error("wrong backend count accepted")
	}

	s := mustStore(t, 9, 3, 1, unitSize)
	buf := make([]byte, unitSize)
	if err := s.Read(-1, buf); err == nil {
		t.Error("negative logical accepted")
	}
	if err := s.Read(s.Capacity(), buf); err == nil {
		t.Error("out-of-range logical accepted")
	}
	if err := s.Write(0, buf[:4]); err == nil {
		t.Error("short payload accepted")
	}
	if err := s.Fail(9); err == nil {
		t.Error("out-of-range Fail accepted")
	}
	if err := s.Rebuild(store.NewMemDisk(int64(l.Size) * unitSize)); err == nil {
		t.Error("Rebuild with no failed disk accepted")
	}
	if err := s.Fail(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Fail(2); err == nil {
		t.Error("second Fail accepted")
	}
	if err := s.Rebuild(store.NewMemDisk(4)); err == nil {
		t.Error("undersized replacement accepted")
	}
	st := s.Stats()
	if st.Failed != 1 || len(st.Disks) != 9 {
		t.Errorf("Stats: failed %d disks %d", st.Failed, len(st.Disks))
	}
}

// TestStatsCount checks the per-disk counters see traffic and degraded
// ops are flagged.
func TestStatsCount(t *testing.T) {
	const unitSize = 8
	s := mustStore(t, 9, 3, 1, unitSize)
	buf := make([]byte, unitSize)
	for i := 0; i < s.Capacity(); i++ {
		if err := s.Write(i, payload(buf, i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	var reads, writes, degraded int64
	for _, d := range st.Disks {
		reads += d.Reads
		writes += d.Writes
		degraded += d.Degraded
	}
	// Every small write is 2 reads + 2 writes.
	if want := int64(2 * s.Capacity()); reads != want || writes != want {
		t.Errorf("healthy traffic: %d reads %d writes, want %d each", reads, writes, want)
	}
	if degraded != 0 {
		t.Errorf("healthy traffic flagged %d degraded ops", degraded)
	}
	if err := s.Fail(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Capacity(); i++ {
		if err := s.Read(i, buf); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); func() int64 {
		var n int64
		for _, d := range st.Disks {
			n += d.Degraded
		}
		return n
	}() == 0 {
		t.Error("degraded reads not counted")
	}
}

// TestHotPathAllocs pins the zero-allocation acceptance criterion for
// steady-state healthy Read and Write on a MemDisk store.
func TestHotPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool randomly drops items under the race detector")
	}
	const unitSize = 4096
	s := mustStore(t, 17, 4, 4, unitSize)
	src := make([]byte, unitSize)
	dst := make([]byte, unitSize)
	payload(src, 7)
	// Warm the pool and the planner scratch.
	for i := 0; i < 64; i++ {
		if err := s.Write(i%s.Capacity(), src); err != nil {
			t.Fatal(err)
		}
		if err := s.Read(i%s.Capacity(), dst); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	if n := testing.AllocsPerRun(200, func() {
		if err := s.Read(i%s.Capacity(), dst); err != nil {
			t.Fatal(err)
		}
		i++
	}); n != 0 {
		t.Errorf("healthy Read allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := s.Write(i%s.Capacity(), src); err != nil {
			t.Fatal(err)
		}
		i++
	}); n != 0 {
		t.Errorf("healthy Write allocates %v/op, want 0", n)
	}
}
