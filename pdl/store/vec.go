package store

import (
	"fmt"
	"slices"
	"time"
)

// VecOp is one unit-granularity operation of a batched request vector
// passed to ReadVec or WriteVec.
type VecOp struct {
	// Logical is the data unit addressed.
	Logical int

	// Buf is the unit payload: the destination for ReadVec, the source
	// for WriteVec. It must be exactly UnitSize bytes.
	Buf []byte
}

// prepareVec validates ops and builds the stripe-major execution order in
// sc.order: ops grouped by stripe, ordered by logical address within a
// stripe (submission order breaking ties, so duplicate writes to one
// address land last-writer-wins).
func (s *Store) prepareVec(op string, sc *scratch, ops []VecOp) error {
	sc.stripes = sc.stripes[:0]
	sc.order = sc.order[:0]
	for i := range ops {
		if len(ops[i].Buf) != s.unitSize {
			return fmt.Errorf("store: %s: op %d: buf is %d bytes, want unit size %d", op, i, len(ops[i].Buf), s.unitSize)
		}
		stripe, _, err := s.mapper.StripeOf(ops[i].Logical)
		if err != nil {
			return fmt.Errorf("store: %s: op %d: %w", op, i, err)
		}
		sc.stripes = append(sc.stripes, int32(stripe))
		sc.order = append(sc.order, int32(i))
	}
	slices.SortFunc(sc.order, func(a, b int32) int {
		if c := int(sc.stripes[a]) - int(sc.stripes[b]); c != 0 {
			return c
		}
		if c := ops[a].Logical - ops[b].Logical; c != 0 {
			return c
		}
		return int(a) - int(b)
	})
	return nil
}

// ReadVec serves a batch of unit reads in one pass: ops are grouped by
// parity stripe and each stripe's lock is acquired once for all of its
// ops, so a batch touching b stripes costs b lock acquisitions instead
// of len(ops). Ops on distinct stripes execute in an unspecified order.
// Like Read, it is zero-allocation in steady state and safe for
// concurrent use. On error some ops may already have completed, and the
// buffers of the failing stripe's ops are undefined (a degraded read
// that fails mid-XOR leaves its partial accumulation behind).
func (s *Store) ReadVec(ops []VecOp) error {
	if len(ops) == 0 {
		return nil
	}
	start := time.Now()
	defer func() { s.opHist[histRead].Record(time.Since(start)) }()
	sc := s.pool.Get().(*scratch)
	defer s.pool.Put(sc)
	if err := s.prepareVec("ReadVec", sc, ops); err != nil {
		return err
	}
	for g := 0; g < len(sc.order); {
		stripe := int(sc.stripes[sc.order[g]])
		end := g + 1
		for end < len(sc.order) && int(sc.stripes[sc.order[end]]) == stripe {
			end++
		}
		lk := s.lockFor(stripe)
		lk.RLock()
		fs := s.fails.Load()
		var err error
		for _, j := range sc.order[g:end] {
			o := &ops[j]
			if err = sc.pln.ReadM(o.Logical, fs.disks, &sc.p); err != nil {
				break
			}
			if err = s.execReadLocked(sc, 0, o.Buf); err != nil {
				break
			}
		}
		lk.RUnlock()
		if err != nil {
			return err
		}
		g = end
	}
	return nil
}

// WriteVec stores a batch of unit writes in one pass: ops are grouped by
// parity stripe, each stripe's write lock is acquired once for all of
// its ops, and — the batching payoff — a group that covers every data
// unit of its stripe is promoted to a single Condition 5 full-stripe
// write (parity from the new payloads alone, no pre-reads) instead of
// len(group) read-modify-writes. Groups that do not cover their stripe,
// or contain duplicate addresses, fall back to per-unit small writes in
// submission order (last writer wins). Ops on distinct stripes execute
// in an unspecified order. Zero-allocation in steady state and safe for
// concurrent use. On error some ops may already have been applied.
func (s *Store) WriteVec(ops []VecOp) error {
	if len(ops) == 0 {
		return nil
	}
	start := time.Now()
	defer func() { s.opHist[histWrite].Record(time.Since(start)) }()
	sc := s.pool.Get().(*scratch)
	defer s.pool.Put(sc)
	if err := s.prepareVec("WriteVec", sc, ops); err != nil {
		return err
	}
	for g := 0; g < len(sc.order); {
		stripe := int(sc.stripes[sc.order[g]])
		end := g + 1
		for end < len(sc.order) && int(sc.stripes[sc.order[end]]) == stripe {
			end++
		}
		lk := s.lockFor(stripe)
		lk.Lock()
		err := s.writeGroupLocked(sc, stripe, ops, sc.order[g:end])
		lk.Unlock()
		if err != nil {
			return err
		}
		g = end
	}
	return nil
}

// writeGroupLocked executes one stripe's slice of a write vector under
// the stripe's (held) write lock, promoting full-stripe coverage to the
// no-preread large-write path.
func (s *Store) writeGroupLocked(sc *scratch, stripe int, ops []VecOp, order []int32) error {
	fs := s.fails.Load()
	if len(order) > 1 {
		units, err := s.mapper.AppendStripeUnits(sc.units[:0], stripe)
		sc.units = units[:0]
		if err != nil {
			return err
		}
		if len(order) == len(units)-s.pm {
			// The stripe's data units hold consecutive logical addresses
			// starting at the first data unit's; the group promotes when
			// its (sorted) addresses are exactly that run.
			k := len(units) - s.pm
			first := -1
			for _, u := range units {
				if s.mapper.ShardAt(u) >= k {
					continue
				}
				first, _ = s.mapper.Logical(u)
				break
			}
			promote := first >= 0
			for i, j := range order {
				if ops[j].Logical != first+i {
					promote = false
					break
				}
			}
			if promote {
				return s.writeStripeLocked(sc, stripe, units, func(i int) []byte {
					return ops[order[i]].Buf
				})
			}
		}
	}
	for _, j := range order {
		o := &ops[j]
		if err := sc.pln.WriteM(o.Logical, fs.disks, &sc.p); err != nil {
			return err
		}
		if err := s.execWriteLocked(sc, 0, o.Buf); err != nil {
			return err
		}
	}
	return nil
}
