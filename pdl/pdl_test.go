package pdl

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/pdl/layout"
)

// TestBuildGrid drives Build over a (v, k) grid spanning the prime-power
// (ring), stairway, and catalog-BIBD regimes, asserting the method that
// fires and the four Holland–Gibson conditions on every result.
func TestBuildGrid(t *testing.T) {
	cases := []struct {
		v, k         int
		methodPrefix string
		maxSpread    int // parity-count spread bound
	}{
		// Prime powers: direct ring layouts, perfect balance.
		{7, 3, "ring", 0},
		{8, 4, "ring", 0},
		{13, 4, "ring", 0},
		{16, 5, "ring", 0},
		{25, 6, "ring", 0},
		// Non-prime-powers with a stairway base.
		{18, 4, "stairway", 1},
		{24, 5, "stairway", 1},
		{12, 3, "stairway", 1},
		// No stairway base (all prime powers < k): catalog BIBD fallback.
		{6, 6, "balanced-bibd", 1},
	}
	for _, c := range cases {
		res, err := Build(c.v, c.k)
		if err != nil {
			t.Errorf("Build(%d,%d): %v", c.v, c.k, err)
			continue
		}
		if !strings.HasPrefix(res.Method, c.methodPrefix) {
			t.Errorf("Build(%d,%d): method %q, want prefix %q", c.v, c.k, res.Method, c.methodPrefix)
		}
		l := res.Layout
		if l.V != c.v {
			t.Errorf("Build(%d,%d): layout has v=%d", c.v, c.k, l.V)
		}
		// Condition 1: reconstructability + structural invariants.
		if err := l.Check(); err != nil {
			t.Errorf("Build(%d,%d): condition 1: %v", c.v, c.k, err)
		}
		// Condition 2: parity assigned and balanced within the bound.
		if !l.ParityAssigned() {
			t.Errorf("Build(%d,%d): parity unassigned", c.v, c.k)
		} else if got := l.ParitySpread(); got > c.maxSpread {
			t.Errorf("Build(%d,%d): parity spread %d > %d", c.v, c.k, got, c.maxSpread)
		}
		// Condition 3: reconstruction workload bounded (every survivor
		// reads at most its whole disk, and some stripe crosses).
		wmin, wmax := l.ReconstructionWorkloadRange()
		if wmax.Num > wmax.Den || wmin.Num < 0 {
			t.Errorf("Build(%d,%d): workload range [%v,%v] out of bounds", c.v, c.k, wmin, wmax)
		}
		// Condition 4: the facade's default constructions stay feasible.
		if !l.Feasible() {
			t.Errorf("Build(%d,%d): infeasible size %d", c.v, c.k, l.Size)
		}
	}
}

// TestBuildMethodRegistry exercises explicit method selection for every
// built-in construction.
func TestBuildMethodRegistry(t *testing.T) {
	for _, name := range []string{"ring", "balanced-bibd", "holland-gibson"} {
		res, err := Build(9, 3, WithMethod(name))
		if err != nil {
			t.Errorf("Build(9,3,%s): %v", name, err)
			continue
		}
		if !strings.HasPrefix(res.Method, name) {
			t.Errorf("Build(9,3,%s): method %q", name, res.Method)
		}
	}
	if res, err := Build(18, 4, WithMethod("stairway"), WithBase(16)); err != nil {
		t.Errorf("stairway base 16: %v", err)
	} else if res.Method != "stairway(q=16)" {
		t.Errorf("stairway base 16: method %q", res.Method)
	}
	if res, err := Build(18, 4, WithMethod("removal")); err != nil {
		t.Errorf("removal: %v", err)
	} else {
		if !strings.HasPrefix(res.Method, "removal(q=19") {
			t.Errorf("removal: method %q", res.Method)
		}
		if res.Layout.V != 18 {
			t.Errorf("removal: v=%d", res.Layout.V)
		}
		if err := res.Layout.Check(); err != nil {
			t.Errorf("removal: %v", err)
		}
	}
	if res, err := Build(8, 4, WithMethod("raid5"), WithRows(14)); err != nil {
		t.Errorf("Build(8,4,raid5): %v", err)
	} else if err := res.Layout.Check(); err != nil {
		t.Errorf("Build(8,4,raid5): %v", err)
	}
	if res, err := Build(8, 4, WithMethod("random"), WithSeed(7)); err != nil {
		t.Errorf("Build(8,4,random): %v", err)
	} else if err := res.Layout.Check(); err != nil {
		t.Errorf("Build(8,4,random): %v", err)
	}
}

func TestRegisterMethod(t *testing.T) {
	if err := RegisterMethod("", nil); err == nil {
		t.Error("empty name accepted")
	}
	if err := RegisterMethod("ring", nil); err == nil {
		t.Error("nil constructor accepted")
	}
	called := false
	if err := RegisterMethod("test-trivial", func(v, k int, o *Options) (*layout.Layout, string, error) {
		called = true
		return buildRing(v, k, o)
	}); err != nil {
		t.Fatal(err)
	}
	if err := RegisterMethod("test-trivial", func(v, k int, o *Options) (*layout.Layout, string, error) {
		return nil, "", nil
	}); err == nil {
		t.Error("duplicate registration accepted")
	}
	res, err := Build(7, 3, WithMethod("test-trivial"))
	if err != nil || !called {
		t.Fatalf("registered method not used: %v (called=%v)", err, called)
	}
	if res.Method != "ring" {
		t.Errorf("method %q", res.Method)
	}
	found := false
	for _, name := range Methods() {
		if name == "test-trivial" {
			found = true
		}
	}
	if !found {
		t.Errorf("Methods() missing registration: %v", Methods())
	}
}

func TestBuildStructuredErrors(t *testing.T) {
	if _, err := Build(5, 9); !errors.Is(err, ErrBadParams) {
		t.Errorf("k > v: got %v", err)
	}
	if _, err := Build(1, 1); !errors.Is(err, ErrBadParams) {
		t.Errorf("degenerate: got %v", err)
	}
	if _, err := Build(9, 3, WithMethod("no-such-method")); !errors.Is(err, ErrNoConstruction) {
		t.Errorf("unknown method: got %v", err)
	}
	// Tuning options a built-in method would ignore are rejected; silently
	// dropping them would hand back a different layout than requested.
	if _, err := Build(18, 4, WithBase(16)); !errors.Is(err, ErrBadParams) {
		t.Errorf("auto + WithBase: got %v", err)
	}
	if _, err := Build(13, 4, WithMethod("ring"), WithBase(16)); !errors.Is(err, ErrBadParams) {
		t.Errorf("ring + WithBase: got %v", err)
	}
	if _, err := Build(8, 4, WithMethod("raid5"), WithSeed(7)); !errors.Is(err, ErrBadParams) {
		t.Errorf("raid5 + WithSeed: got %v", err)
	}
	// Explicit zero values count as passed, too.
	if _, err := Build(8, 4, WithMethod("raid5"), WithSeed(0)); !errors.Is(err, ErrBadParams) {
		t.Errorf("raid5 + WithSeed(0): got %v", err)
	}
	// ...but methods that consume an option accept its zero value.
	if _, err := Build(8, 4, WithMethod("random"), WithSeed(0), WithRows(0)); err != nil {
		t.Errorf("random + WithSeed(0)/WithRows(0): %v", err)
	}
	if _, err := Build(9, 3, WithMethod("balanced-bibd"), WithRows(5)); !errors.Is(err, ErrBadParams) {
		t.Errorf("balanced-bibd + WithRows: got %v", err)
	}
	// M(6)=2, so a ring layout with k=3 cannot exist.
	if _, err := Build(6, 3, WithMethod("ring")); !errors.Is(err, ErrNoConstruction) {
		t.Errorf("ring M(v) violation: got %v", err)
	}
	// The (13,4) ring layout has size 48; a bound of 10 is infeasible.
	if _, err := Build(13, 4, WithMaxSize(10)); !errors.Is(err, ErrInfeasible) {
		t.Errorf("max size: got %v", err)
	}
	if _, err := Build(13, 4, WithMaxSize(48)); err != nil {
		t.Errorf("exact max size rejected: %v", err)
	}
}

func TestBuildParityPolicies(t *testing.T) {
	none, err := Build(13, 4, WithParityPolicy(ParityNone))
	if err != nil {
		t.Fatal(err)
	}
	if none.Layout.ParityAssigned() {
		t.Error("ParityNone left parity assigned")
	}
	flow, err := Build(9, 3, WithMethod("holland-gibson"), WithParityPolicy(ParityFlow))
	if err != nil {
		t.Fatal(err)
	}
	if !flow.Layout.ParityAssigned() || flow.Layout.ParitySpread() > 1 {
		t.Errorf("ParityFlow spread %d", flow.Layout.ParitySpread())
	}
	perfect, err := Build(9, 3, WithMethod("balanced-bibd"), WithParityPolicy(ParityPerfect))
	if err != nil {
		t.Fatal(err)
	}
	if !perfect.Layout.ParityPerfectlyBalanced() {
		t.Error("ParityPerfect not perfectly balanced")
	}
	// (9,3): b=12, lcm(12,9)/12 = 3 copies.
	if perfect.Copies != 3 {
		t.Errorf("copies %d, want 3", perfect.Copies)
	}
}

func TestBuildSparing(t *testing.T) {
	res, err := Build(13, 4, WithSparing())
	if err != nil {
		t.Fatal(err)
	}
	if res.Sparing == nil {
		t.Fatal("no sparing on result")
	}
	if res.Sparing.SpareSpread() > 1 {
		t.Errorf("spare spread %d", res.Sparing.SpareSpread())
	}
	plain, err := Build(13, 4)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Sparing != nil {
		t.Error("sparing present without WithSparing")
	}
}

// TestJSONRoundTrip asserts WriteJSON/ReadJSON equality for every regime
// the facade produces.
func TestJSONRoundTrip(t *testing.T) {
	for _, c := range []struct{ v, k int }{{13, 4}, {18, 4}, {6, 6}} {
		res, err := Build(c.v, c.k)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Layout.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), "\"version\": 1") {
			t.Errorf("(%d,%d): serialized layout missing version field", c.v, c.k)
		}
		got, err := layout.ReadJSON(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, res.Layout) {
			t.Errorf("(%d,%d): JSON round trip not equal", c.v, c.k)
		}
	}
}

func TestJSONVersioning(t *testing.T) {
	// Version 0 (legacy, field absent) still loads.
	legacy := `{"v":2,"size":1,"stripes":[{"units":[[0,0],[1,0]],"parity":0}]}`
	if _, err := layout.ReadJSON(strings.NewReader(legacy)); err != nil {
		t.Errorf("legacy schema rejected: %v", err)
	}
	// A future version is rejected with a descriptive error.
	future := `{"version":99,"v":2,"size":1,"stripes":[{"units":[[0,0],[1,0]],"parity":0}]}`
	if _, err := layout.ReadJSON(strings.NewReader(future)); err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Errorf("future schema: got %v", err)
	}
}

func TestMapperRoundTrip(t *testing.T) {
	res, err := Build(13, 4)
	if err != nil {
		t.Fatal(err)
	}
	diskUnits := res.Layout.Size * 3 // three vertical copies
	m, err := res.NewMapper(diskUnits)
	if err != nil {
		t.Fatal(err)
	}
	if m.DiskUnits() != diskUnits {
		t.Errorf("DiskUnits %d", m.DiskUnits())
	}
	seen := map[layout.Unit]bool{}
	for i := 0; i < m.DataUnits(); i++ {
		u, err := m.Map(i)
		if err != nil {
			t.Fatal(err)
		}
		if seen[u] {
			t.Fatalf("logical %d: unit %v already used", i, u)
		}
		seen[u] = true
		back, ok := m.Logical(u)
		if !ok || back != i {
			t.Fatalf("logical %d -> %v -> %d (ok=%v)", i, u, back, ok)
		}
	}
	if _, err := m.Map(-1); err == nil {
		t.Error("negative logical accepted")
	}
	if _, err := m.Map(m.DataUnits()); err == nil {
		t.Error("out-of-range logical accepted")
	}
	// Parity units have no logical address.
	for i := range res.Layout.Stripes {
		pu, ok := res.Layout.Stripes[i].ParityUnit()
		if !ok {
			t.Fatalf("stripe %d missing parity", i)
		}
		if _, ok := m.Logical(pu); ok {
			t.Errorf("parity unit %v has a logical address", pu)
		}
	}
}

// TestMapperDegraded exercises the degraded-mode lookup: for every
// logical unit and every failed disk, the surviving set must XOR back to
// the lost payload, verified against the byte-accurate Data engine.
func TestMapperDegraded(t *testing.T) {
	res, err := Build(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	l := res.Layout
	m, err := res.NewMapper(l.Size)
	if err != nil {
		t.Fatal(err)
	}
	data, err := layout.NewData(l, 8)
	if err != nil {
		t.Fatal(err)
	}
	n := m.DataUnits()
	if n != data.Mapping().DataUnits() {
		t.Fatalf("mapper has %d data units, data engine %d", n, data.Mapping().DataUnits())
	}
	for i := 0; i < n; i++ {
		payload := make([]byte, 8)
		for j := range payload {
			payload[j] = byte(i*3 + j*17)
		}
		if err := data.WriteLogical(i, payload); err != nil {
			t.Fatal(err)
		}
	}
	read := func(u layout.Unit) []byte {
		if logical, ok := m.Logical(u); ok {
			b, err := data.ReadLogical(logical)
			if err != nil {
				t.Fatal(err)
			}
			return b
		}
		// Parity unit: reconstruct its bytes from the rest of the stripe.
		for si := range l.Stripes {
			s := &l.Stripes[si]
			pu, _ := s.ParityUnit()
			if pu != u {
				continue
			}
			acc := make([]byte, 8)
			for _, du := range s.Units {
				if du == pu {
					continue
				}
				logical, ok := m.Logical(du)
				if !ok {
					t.Fatalf("data unit %v has no logical address", du)
				}
				b, err := data.ReadLogical(logical)
				if err != nil {
					t.Fatal(err)
				}
				for j := range acc {
					acc[j] ^= b[j]
				}
			}
			return acc
		}
		t.Fatalf("unit %v is neither data nor parity", u)
		return nil
	}
	for failed := 0; failed < l.V; failed++ {
		for i := 0; i < n; i++ {
			dr, err := m.DegradedMap(i, failed)
			if err != nil {
				t.Fatal(err)
			}
			want, err := data.ReadLogical(i)
			if err != nil {
				t.Fatal(err)
			}
			if !dr.Degraded {
				if dr.Unit.Disk == failed {
					t.Fatalf("logical %d on failed disk %d but not degraded", i, failed)
				}
				got := read(dr.Unit)
				if !bytes.Equal(got, want) {
					t.Fatalf("failed=%d logical=%d: direct read mismatch", failed, i)
				}
				continue
			}
			if dr.Unit.Disk != failed {
				t.Fatalf("logical %d marked degraded but lives on disk %d != %d", i, dr.Unit.Disk, failed)
			}
			acc := make([]byte, 8)
			for _, su := range dr.Survivors {
				if su.Disk == failed {
					t.Fatalf("survivor %v on failed disk", su)
				}
				b := read(su)
				for j := range acc {
					acc[j] ^= b[j]
				}
			}
			if !bytes.Equal(acc, want) {
				t.Fatalf("failed=%d logical=%d: degraded XOR mismatch", failed, i)
			}
		}
	}
	if _, err := m.DegradedMap(0, -1); err == nil {
		t.Error("bad failed disk accepted")
	}
	if _, err := m.DegradedMap(-1, 0); err == nil {
		t.Error("bad logical accepted")
	}
}

func TestMapperRequiresParity(t *testing.T) {
	res, err := Build(9, 3, WithParityPolicy(ParityNone))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMapper(res.Layout, res.Layout.Size); err == nil {
		t.Error("mapper built without parity")
	}
	full, err := Build(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMapper(full.Layout, full.Layout.Size+1); err == nil {
		t.Error("non-multiple disk size accepted")
	}
}

func TestReportContents(t *testing.T) {
	res, err := Build(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep := Report(res.Layout)
	for _, want := range []string{"condition 1", "condition 2", "condition 3", "condition 4", "feasible"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestCoverage(t *testing.T) {
	for _, r := range Coverage(100) {
		if r.V >= 3 && !r.Covered {
			t.Errorf("v=%d not covered", r.V)
		}
	}
}

func TestMapperZeroSizeLayout(t *testing.T) {
	// Size-0 layouts are constructible through public paths; NewMapper
	// must reject them instead of dividing by zero.
	if _, err := NewMapper(&layout.Layout{V: 2}, 4); err == nil {
		t.Error("zero-size layout accepted")
	}
	empty, err := layout.Assemble(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMapper(empty, 4); err == nil {
		t.Error("empty assembled layout accepted")
	}
}

// TestBuiltinOptionUseInSync guards the pairing between the registry's
// built-in registrations and the option-consumption table: a new built-in
// added to one but not the other would silently skip option validation.
func TestBuiltinOptionUseInSync(t *testing.T) {
	table := map[string]bool{}
	for name := range builtinOptionUse {
		if name == "" {
			continue // automatic selection, not a registry entry
		}
		table[name] = true
	}
	registered := map[string]bool{}
	for _, name := range builtinMethods {
		registered[name] = true
	}
	for name := range table {
		if !registered[name] {
			t.Errorf("builtinOptionUse lists %q, which is not a built-in registration", name)
		}
	}
	for name := range registered {
		if !table[name] {
			t.Errorf("built-in method %q missing from builtinOptionUse", name)
		}
	}
}

func TestBuildBaseDomainErrors(t *testing.T) {
	// A base outside the method's domain is a parameter error (retry with
	// a different base), not mathematical unconstructibility.
	if _, err := Build(18, 4, WithMethod("stairway"), WithBase(18)); !errors.Is(err, ErrBadParams) {
		t.Errorf("stairway base >= v: got %v", err)
	} else if errors.Is(err, ErrNoConstruction) {
		t.Errorf("stairway base >= v double-classified: %v", err)
	}
	if _, err := Build(18, 4, WithMethod("removal"), WithBase(17)); !errors.Is(err, ErrBadParams) {
		t.Errorf("removal base <= v: got %v", err)
	}
	// A valid-domain base that cannot build remains ErrNoConstruction.
	if _, err := Build(18, 4, WithMethod("stairway"), WithBase(15)); !errors.Is(err, ErrNoConstruction) {
		t.Errorf("non-prime-power base: got %v", err)
	}
}

func TestRAID5IgnoresK(t *testing.T) {
	// raid5 stripes always span the whole array; k only sizes the default
	// row count, so k > v is valid there (matching the historical CLI)
	// while stripe-size methods still reject it.
	res, err := Build(8, 16, WithMethod("raid5"))
	if err != nil {
		t.Fatalf("raid5 k>v: %v", err)
	}
	if res.Layout.V != 8 || res.Layout.Size != 16*7 {
		t.Errorf("raid5 k>v: v=%d size=%d", res.Layout.V, res.Layout.Size)
	}
	if _, err := Build(8, 16, WithMethod("ring")); !errors.Is(err, ErrBadParams) {
		t.Errorf("ring k>v: got %v", err)
	}
	if _, err := Build(8, 16); !errors.Is(err, ErrBadParams) {
		t.Errorf("auto k>v: got %v", err)
	}
}

func TestSparingConflictsWithParityNone(t *testing.T) {
	if _, err := Build(13, 4, WithSparing(), WithParityPolicy(ParityNone)); !errors.Is(err, ErrBadParams) {
		t.Errorf("sparing + ParityNone: got %v", err)
	}
}

func TestThirdPartyMethodOwnsKDomain(t *testing.T) {
	// Third-party registrations decide their own (v, k) domain; Build
	// only pre-rejects k > v for the stripe-size built-ins.
	if err := RegisterMethod("test-wide", func(v, k int, o *Options) (*layout.Layout, string, error) {
		return buildRAID5(v, k, o)
	}); err != nil {
		t.Fatal(err)
	}
	res, err := Build(8, 16, WithMethod("test-wide"))
	if err != nil {
		t.Fatalf("third-party k>v: %v", err)
	}
	if res.Layout.V != 8 {
		t.Errorf("v=%d", res.Layout.V)
	}
}
