package pdl

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/pdl/code"
	"repro/pdl/layout"
)

// Result is what Build produces: the layout plus how it was made.
type Result struct {
	// Layout is the constructed parity-declustered layout.
	Layout *layout.Layout

	// Method names the construction that fired, including parameters
	// (e.g. "ring", "stairway(q=16)", "balanced-bibd").
	Method string

	// V and K echo the requested array and stripe size.
	V, K int

	// Copies is the replication factor applied by ParityPerfect (1
	// otherwise).
	Copies int

	// Sparing carries the distributed-sparing assignment when
	// WithSparing was requested, nil otherwise.
	Sparing *Sparing
}

// NewMapper builds the O(1) address translator for the result's layout on
// disks of diskUnits units (a positive multiple of Layout.Size).
func (r *Result) NewMapper(diskUnits int) (Mapper, error) {
	return NewMapper(r.Layout, diskUnits)
}

// Build constructs a parity-declustered layout for an array of v disks
// with parity stripe size k.
//
// With no WithMethod option, Build picks the best construction the paper
// offers: a ring-based layout when v is a prime power, otherwise a
// stairway transformation from the largest prime-power base, falling back
// to a flow-balanced layout over a catalog BIBD. WithMethod pins any
// registered construction (see Methods).
//
// Errors are structured: ErrBadParams for out-of-domain (v, k),
// ErrNoConstruction when no method can realize the parameters, and
// ErrInfeasible when the layout exceeds WithMaxSize. All support
// errors.Is.
func Build(v, k int, opts ...Option) (*Result, error) {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	if v < 2 || k < 2 {
		return nil, fmt.Errorf("pdl: Build(v=%d, k=%d): %w: need v >= 2 and k >= 2", v, k, ErrBadParams)
	}
	// k <= v is the domain of the stripe-size built-ins; whole-array
	// built-ins (anyK) and third-party registrations own their own
	// domain, so the constructor decides there.
	if use, builtin := builtinOptionUse[o.Method]; builtin && !use.anyK && k > v {
		return nil, fmt.Errorf("pdl: Build(v=%d, k=%d): %w: need k <= v", v, k, ErrBadParams)
	}
	if o.Sparing && o.ParityPolicy == ParityNone {
		return nil, fmt.Errorf("pdl: Build(v=%d, k=%d): %w: WithSparing needs assigned parity, which ParityNone strips", v, k, ErrBadParams)
	}
	if o.ParityShards < 0 || o.ParityShards > code.MaxParityShards {
		return nil, fmt.Errorf("pdl: Build(v=%d, k=%d): %w: parity shards %d outside [0,%d]", v, k, ErrBadParams, o.ParityShards, code.MaxParityShards)
	}
	if o.ParityShards > 1 {
		if o.ParityShards >= k {
			return nil, fmt.Errorf("pdl: Build(v=%d, k=%d): %w: %d parity shards leave no data units in a stripe of %d", v, k, ErrBadParams, o.ParityShards, k)
		}
		if o.Sparing {
			return nil, fmt.Errorf("pdl: Build(v=%d, k=%d): %w: WithSparing assumes single parity; combine it with WithParityShards(1) only", v, k, ErrBadParams)
		}
		if o.ParityPolicy == ParityNone {
			return nil, fmt.Errorf("pdl: Build(v=%d, k=%d): %w: WithParityShards needs assigned parity, which ParityNone strips", v, k, ErrBadParams)
		}
	}
	if err := checkOptionUse(v, k, &o); err != nil {
		return nil, err
	}

	var (
		l      *layout.Layout
		method string
		err    error
	)
	if o.Method == "" {
		l, method, err = buildAuto(v, k, &o)
	} else {
		ctor, ok := lookupMethod(o.Method)
		if !ok {
			return nil, fmt.Errorf("pdl: Build(v=%d, k=%d): %w: unknown method %q (registered: %v)",
				v, k, ErrNoConstruction, o.Method, Methods())
		}
		l, method, err = ctor(v, k, &o)
	}
	if err != nil {
		// Constructor errors that are already classified (e.g. a base
		// value out of domain) keep their classification; the rest mean
		// the method cannot realize (v, k).
		if errors.Is(err, ErrBadParams) || errors.Is(err, ErrInfeasible) {
			return nil, fmt.Errorf("pdl: Build(v=%d, k=%d): %w", v, k, err)
		}
		return nil, fmt.Errorf("pdl: Build(v=%d, k=%d): %w: %w", v, k, ErrNoConstruction, err)
	}

	copies := 1
	switch o.ParityPolicy {
	case ParityDefault:
	case ParityNone:
		for i := range l.Stripes {
			l.Stripes[i].Parity = -1
		}
	case ParityFlow:
		if err := core.BalanceParity(l); err != nil {
			return nil, fmt.Errorf("pdl: Build(v=%d, k=%d): parity flow: %w", v, k, err)
		}
	case ParityPerfect:
		if n := core.MinCopiesForPerfectParity(len(l.Stripes), l.V); n > 1 {
			l = layout.Copies(l, n)
			copies = n
		}
		if err := core.BalanceParity(l); err != nil {
			return nil, fmt.Errorf("pdl: Build(v=%d, k=%d): parity flow: %w", v, k, err)
		}
		if !l.ParityPerfectlyBalanced() {
			return nil, fmt.Errorf("pdl: Build(v=%d, k=%d): perfect parity balance not reached with %d copies", v, k, copies)
		}
	default:
		return nil, fmt.Errorf("pdl: Build(v=%d, k=%d): %w: unknown parity policy %d", v, k, ErrBadParams, o.ParityPolicy)
	}

	if o.MaxSize > 0 && l.Size > o.MaxSize {
		return nil, fmt.Errorf("pdl: Build(v=%d, k=%d): %w: method %s produced size %d > %d",
			v, k, ErrInfeasible, method, l.Size, o.MaxSize)
	}

	if o.ParityShards > 1 {
		l.ParityUnits = o.ParityShards
		if err := l.Check(); err != nil {
			return nil, fmt.Errorf("pdl: Build(v=%d, k=%d): %w: method %s cannot carry %d parity units: %w",
				v, k, ErrBadParams, method, o.ParityShards, err)
		}
	}

	res := &Result{Layout: l, Method: method, V: v, K: k, Copies: copies}
	if o.Sparing {
		sp, err := core.DistributedSparing(l)
		if err != nil {
			return nil, fmt.Errorf("pdl: Build(v=%d, k=%d): sparing: %w", v, k, err)
		}
		res.Sparing = (*Sparing)(sp)
	}
	return res, nil
}

// checkOptionUse rejects tuning options the selected built-in method (or
// automatic selection) would ignore.
func checkOptionUse(v, k int, o *Options) error {
	use, builtin := builtinOptionUse[o.Method]
	if !builtin {
		return nil
	}
	methodDesc := fmt.Sprintf("method %q", o.Method)
	if o.Method == "" {
		methodDesc = "automatic selection"
	}
	reject := func(opt, users string) error {
		return fmt.Errorf("pdl: Build(v=%d, k=%d): %w: %s is not used by %s (use %s)",
			v, k, ErrBadParams, opt, methodDesc, users)
	}
	if o.baseSet && !use.base {
		return reject("WithBase", `WithMethod("stairway") or WithMethod("removal")`)
	}
	if o.rowsSet && !use.rows {
		return reject("WithRows", `WithMethod("raid5") or WithMethod("random")`)
	}
	if o.seedSet && !use.seed {
		return reject("WithSeed", `WithMethod("random")`)
	}
	return nil
}

// buildAuto is the default method selection: ring/stairway via the paper's
// coverage result, then the catalog-BIBD flow-balanced fallback.
func buildAuto(v, k int, o *Options) (*layout.Layout, string, error) {
	l, method, err := core.LayoutForAnyV(v, k)
	if err == nil {
		return l, method, nil
	}
	if l, tag, berr := buildBalancedBIBD(v, k, o); berr == nil {
		return l, tag, nil
	}
	return nil, "", err
}
