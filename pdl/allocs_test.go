//go:build !race

// The allocs regression gate (CI): the Mapper hot paths promise zero
// allocations per operation in steady state; a regression fails `go
// test`. Excluded under -race, whose instrumentation changes allocation
// behavior.

package pdl_test

import (
	"testing"

	"repro/pdl"
	"repro/pdl/layout"
)

func TestMapperHotPathAllocs(t *testing.T) {
	res, err := pdl.Build(17, 4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := pdl.NewMapper(res.Layout, 4*res.Layout.Size)
	if err != nil {
		t.Fatal(err)
	}
	units := make([]layout.Unit, 0, 64)
	i := 0
	assertZero := func(name string, f func()) {
		t.Helper()
		// Warm any lazily-grown scratch first.
		for w := 0; w < 8; w++ {
			f()
		}
		if n := testing.AllocsPerRun(200, f); n != 0 {
			t.Errorf("%s allocates %v/op, want 0", name, n)
		}
	}
	assertZero("Map", func() {
		if _, err := m.Map(i % m.DataUnits()); err != nil {
			t.Fatal(err)
		}
		i++
	})
	assertZero("MapRange", func() {
		var err error
		units, err = m.MapRange(units[:0], i%(m.DataUnits()-8), 8)
		if err != nil {
			t.Fatal(err)
		}
		i++
	})
	assertZero("StripeOf", func() {
		if _, _, err := m.StripeOf(i % m.DataUnits()); err != nil {
			t.Fatal(err)
		}
		i++
	})
	assertZero("AppendSurvivors", func() {
		var err error
		units, _, _, err = m.AppendSurvivors(units[:0], i%m.DataUnits(), 3)
		if err != nil {
			t.Fatal(err)
		}
		i++
	})
	assertZero("AppendStripeUnits", func() {
		var err error
		units, err = m.AppendStripeUnits(units[:0], i%m.Stripes())
		if err != nil {
			t.Fatal(err)
		}
		i++
	})
}
