package pdl

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/pdl/layout"
)

// Report summarizes a layout against the paper's four conditions.
func Report(l *layout.Layout) string {
	var b strings.Builder
	fmt.Fprintf(&b, "disks: %d, size: %d units/disk, stripes: %d\n", l.V, l.Size, len(l.Stripes))
	smin, smax := l.StripeSizes()
	fmt.Fprintf(&b, "stripe sizes: [%d, %d]\n", smin, smax)
	if err := l.Check(); err != nil {
		fmt.Fprintf(&b, "condition 1 (reconstructability): VIOLATED: %v\n", err)
	} else {
		fmt.Fprintf(&b, "condition 1 (reconstructability): ok\n")
	}
	if l.ParityAssigned() {
		omin, omax := l.ParityOverheadRange()
		fmt.Fprintf(&b, "condition 2 (parity overhead): [%v, %v], spread %d\n", omin, omax, l.ParitySpread())
	} else {
		fmt.Fprintf(&b, "condition 2 (parity overhead): parity unassigned\n")
	}
	wmin, wmax := l.ReconstructionWorkloadRange()
	fmt.Fprintf(&b, "condition 3 (reconstruction workload): [%v, %v]\n", wmin, wmax)
	fmt.Fprintf(&b, "condition 4 (mapping): table height %d, feasible (<=%d): %v\n",
		l.Size, layout.FeasibleTableSize, l.Feasible())
	return b.String()
}

// Sparing is a layout whose stripes each designate one distributed spare
// unit, disjoint from parity (Section 5); produced by WithSparing or
// DistributedSparing.
type Sparing struct {
	*layout.Layout
	// Spare[i] is the unit index of stripe i's spare.
	Spare []int
}

// internal converts to the implementation type; the structs are
// field-identical, so the conversion is free.
func (s *Sparing) internal() *core.SparedLayout { return (*core.SparedLayout)(s) }

// SpareCounts returns the number of spare units per disk.
func (s *Sparing) SpareCounts() []int { return s.internal().SpareCounts() }

// SpareSpread returns max - min of the per-disk spare counts (Theorem 14
// guarantees at most 1).
func (s *Sparing) SpareSpread() int { return s.internal().SpareSpread() }

// RebuildToSpares simulates reconstructing a failed disk into the spare
// units: writes[d] counts reconstruction writes landing on disk d, and
// spareLost counts stripes whose spare itself was on the failed disk.
func (s *Sparing) RebuildToSpares(failed int) (writes []int, spareLost int, err error) {
	return s.internal().RebuildToSpares(failed)
}

// DistributedSparing assigns one spare unit per stripe of a layout with
// assigned parity, using the Theorem 14 flow so per-disk spare counts are
// within one of each other.
func DistributedSparing(l *layout.Layout) (*Sparing, error) {
	sp, err := core.DistributedSparing(l)
	if err != nil {
		return nil, err
	}
	return (*Sparing)(sp), nil
}

// SelectDistinguished solves the generalized distinguished-unit problem
// (the extension after Theorem 14): choose cs[s] units from each stripe s
// so every disk holds either floor or ceil of its distinguished load.
// Returns, per stripe, the chosen unit indices.
func SelectDistinguished(l *layout.Layout, cs []int) ([][]int, error) {
	return core.SelectDistinguished(l, cs)
}

// CoverageResult summarizes, for one array size v, how a layout is
// reachable: directly (prime-power v) or via a stairway base (q, c, w).
type CoverageResult struct {
	V       int
	Direct  bool // v is a prime power: exact ring layout, no stairway needed
	Q, C, W int  // stairway parameters when !Direct
	Covered bool
}

// Coverage verifies the paper's Section 3.2 claim that every v up to maxV
// admits a direct ring layout or a stairway base, one result per v in
// [2, maxV].
func Coverage(maxV int) []CoverageResult {
	scan := core.CoverageScan(maxV)
	out := make([]CoverageResult, len(scan))
	for i, r := range scan {
		out[i] = CoverageResult(r)
	}
	return out
}
