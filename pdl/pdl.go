// Package pdl is the public API of the parity-declustered layout library,
// a reproduction of Schwabe & Sutherland, "Improved Parity-Declustered
// Layouts for Disk Arrays" (SPAA 1994 / JCSS 1996).
//
// The package tree under repro/pdl is the supported surface; everything
// under repro/internal is implementation detail and not importable by
// other modules:
//
//   - pdl: the Build facade (functional options over a construction-method
//     registry), the Mapper hot path for logical→physical address
//     translation — including degraded mode and allocation-free
//     append-style lookups — structured errors, and the condition report;
//   - pdl/layout: the Layout/Stripe/Unit value types, the four
//     Holland–Gibson condition metrics, address mapping, the XOR data
//     engine, and the versioned JSON interchange format;
//   - pdl/design: balanced incomplete block designs — catalog lookup and
//     the paper's constructions (Theorems 1, 4, 5, 6), resolution, and
//     the size lower bound (Theorem 7);
//   - pdl/plan: the I/O-plan compiler — degraded reads over survivor XOR
//     sets, read-modify-write parity updates, full-stripe writes, and
//     per-stripe rebuild schedules, compiled against a Mapper with zero
//     allocations per request;
//   - pdl/sim: the event-driven disk-array simulator (an execution engine
//     for pdl/plan) and workload generators used for the paper's rebuild
//     and service studies;
//   - pdl/store: the concurrent byte-storage engine — a Store executing
//     plans against per-disk backends (in-memory slabs or files) with
//     degraded serving, online rebuild, and a zero-allocation hot path;
//     store.Open wires a Build result straight into a serving array;
//   - pdl/exp: the paper's full evaluation (figures, tables, simulator
//     studies) as runnable experiments.
//
// Quick start:
//
//	res, err := pdl.Build(24, 5)                // best construction for any v, k
//	fmt.Println(res.Method)                     // e.g. "stairway(q=23)"
//	fmt.Print(pdl.Report(res.Layout))           // the paper's four conditions
//
//	m, err := res.NewMapper(res.Layout.Size)    // O(1) address translation
//	u, err := m.Map(42)                         // logical -> (disk, offset)
//	dr, err := m.DegradedMap(42, u.Disk)        // lookup with a failed disk
//
// Construction can be pinned and tuned with options:
//
//	pdl.Build(18, 4, pdl.WithMethod("stairway"), pdl.WithBase(16))
//	pdl.Build(9, 3, pdl.WithMethod("balanced-bibd"), pdl.WithParityPolicy(pdl.ParityPerfect))
//	pdl.Build(13, 4, pdl.WithSparing())
//	pdl.Build(64, 8, pdl.WithMaxSize(10000))
//
// Failures are structured: errors.Is(err, pdl.ErrNoConstruction) reports
// that no registered method can realize (v, k), and errors.Is(err,
// pdl.ErrInfeasible) reports that the layout exceeded WithMaxSize.
package pdl

import "errors"

var (
	// ErrBadParams reports parameters outside the valid domain
	// (need v >= 2 and 2 <= k <= v).
	ErrBadParams = errors.New("pdl: invalid parameters")

	// ErrNoConstruction reports that no registered construction method can
	// realize the requested (v, k), or that a requested method is unknown
	// or failed.
	ErrNoConstruction = errors.New("pdl: no construction for the requested parameters")

	// ErrInfeasible reports that a constructed layout exceeds the size
	// bound configured with WithMaxSize (Condition 4 feasibility).
	ErrInfeasible = errors.New("pdl: layout exceeds the configured size bound")
)
