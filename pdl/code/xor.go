package code

import "crypto/subtle"

// XOR is the classic single-parity code: one parity unit holding the XOR
// of the stripe's data units. Every generator coefficient is 1, so all of
// its kernels reduce to plain XOR — byte-identical to the arithmetic the
// layout, plan, and store layers used before codes were pluggable, which
// keeps existing arrays readable without translation.
type XOR struct{}

// Name implements Code.
func (XOR) Name() string { return "xor" }

// ParityShards implements Code: XOR tolerates exactly one loss.
func (XOR) ParityShards() int { return 1 }

// MaxDataShards implements Code: XOR places no bound on stripe width.
func (XOR) MaxDataShards() int { return 1 << 30 }

// Coef implements Code: every data shard contributes with coefficient 1.
func (XOR) Coef(j, i int) byte { return 1 }

// EncodeParity implements Code.
func (XOR) EncodeParity(j int, data [][]byte, parity []byte) {
	clear(parity)
	for _, d := range data {
		subtle.XORBytes(parity, parity, d)
	}
}

// UpdateParity implements Code.
func (XOR) UpdateParity(j, i int, parity, delta []byte) {
	subtle.XORBytes(parity, parity, delta)
}

// PlanReconstruct implements Code: the single missing shard is the XOR of
// every survivor (data or parity alike).
func (XOR) PlanReconstruct(k int, missing []int, target int, coef []byte) error {
	if err := checkPlanArgs("xor", k, 1, missing, target); err != nil {
		return err
	}
	for s := 0; s < k+1; s++ {
		coef[s] = 1
	}
	coef[target] = 0
	return nil
}
