package code

import "fmt"

// ReedSolomon is a systematic Cauchy Reed–Solomon code over GF(2^8): m
// parity shards, each a Cauchy-generator combination of the data shards,
// tolerating any m simultaneous shard losses per stripe (MDS). The
// generator is
//
//	Coef(j, i) = 1 / (x_j ^ y_i),  x_j = 255-j,  y_i = i
//
// with the x and y index sets disjoint (i < MaxDataShards() = 256-m keeps
// y below every x), so every square submatrix of the generator is
// invertible — the Cauchy property the reconstruction planner relies on.
// The coefficients are a pure function of (j, i): parity bytes written by
// one process are reconstructable by any other, with nothing to persist
// beyond the code's name and m.
type ReedSolomon struct {
	m int
}

// NewReedSolomon returns the Cauchy Reed–Solomon code with m parity
// shards, 1 <= m <= MaxParityShards.
func NewReedSolomon(m int) (*ReedSolomon, error) {
	if m < 1 || m > MaxParityShards {
		return nil, fmt.Errorf("code: rs: %d parity shards outside [1,%d]", m, MaxParityShards)
	}
	return &ReedSolomon{m: m}, nil
}

// Name implements Code.
func (c *ReedSolomon) Name() string { return "rs" }

// ParityShards implements Code.
func (c *ReedSolomon) ParityShards() int { return c.m }

// MaxDataShards implements Code: the x/y disjointness bound.
func (c *ReedSolomon) MaxDataShards() int { return 256 - c.m }

// Coef implements Code. j must be in [0, ParityShards()) and i in
// [0, MaxDataShards()).
func (c *ReedSolomon) Coef(j, i int) byte { return invTab[(255-j)^i] }

// EncodeParity implements Code. len(data) must be at most MaxDataShards().
func (c *ReedSolomon) EncodeParity(j int, data [][]byte, parity []byte) {
	clear(parity)
	for i, d := range data {
		MulAdd(parity, d, c.Coef(j, i))
	}
}

// UpdateParity implements Code.
func (c *ReedSolomon) UpdateParity(j, i int, parity, delta []byte) {
	MulAdd(parity, delta, c.Coef(j, i))
}

// PlanReconstruct implements Code. Writing D for the missing data shards,
// it picks |D| alive parity rows, inverts the |D| x |D| Cauchy submatrix
// over them (Gauss–Jordan on fixed stack arrays — no allocation), and
// expresses the target as a survivor combination: a missing data target
// is one row of the inverse applied to (parities + alive-data
// contributions); a missing parity target is its generator row with every
// missing data shard substituted by its own expansion.
func (c *ReedSolomon) PlanReconstruct(k int, missing []int, target int, coef []byte) error {
	if err := checkPlanArgs("rs", k, c.m, missing, target); err != nil {
		return err
	}
	if k > c.MaxDataShards() {
		return fmt.Errorf("code: rs: %d data shards, max %d with %d parity", k, c.MaxDataShards(), c.m)
	}
	clear(coef[:k+c.m])
	var d [MaxParityShards]int // missing data shards, ascending
	var dataDown [256]bool
	var parityDown [MaxParityShards]bool
	nd := 0
	for _, s := range missing {
		if s < k {
			d[nd] = s
			dataDown[s] = true
			nd++
		} else {
			parityDown[s-k] = true
		}
	}
	// Trivially, a missing parity with no data missing is re-encoded from
	// the (all-alive) data shards; the general path below also covers it
	// with nd = 0, falling through the inversion as a 0x0 system.
	var rows [MaxParityShards]int // alive parity rows used, one per missing data shard
	nr := 0
	for j := 0; j < c.m && nr < nd; j++ {
		if !parityDown[j] {
			rows[nr] = j
			nr++
		}
	}
	if nr < nd {
		return fmt.Errorf("code: rs: %d data shards lost with only %d parity alive", nd, nr)
	}
	// Invert A[a][b] = Coef(rows[a], d[b]).
	var a, ainv [MaxParityShards][MaxParityShards]byte
	for r := 0; r < nd; r++ {
		for b := 0; b < nd; b++ {
			a[r][b] = c.Coef(rows[r], d[b])
		}
		ainv[r][r] = 1
	}
	for col := 0; col < nd; col++ {
		piv := -1
		for r := col; r < nd; r++ {
			if a[r][col] != 0 {
				piv = r
				break
			}
		}
		if piv < 0 {
			// Unreachable for a Cauchy submatrix; kept as a guard so a
			// future generator change fails loudly instead of mis-decoding.
			return fmt.Errorf("code: rs: singular reconstruction system")
		}
		a[col], a[piv] = a[piv], a[col]
		ainv[col], ainv[piv] = ainv[piv], ainv[col]
		inv := invTab[a[col][col]]
		for j := 0; j < nd; j++ {
			a[col][j] = Mul(a[col][j], inv)
			ainv[col][j] = Mul(ainv[col][j], inv)
		}
		for r := 0; r < nd; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col]
			for j := 0; j < nd; j++ {
				a[r][j] ^= Mul(f, a[col][j])
				ainv[r][j] ^= Mul(f, ainv[col][j])
			}
		}
	}
	// expand folds w times missing data shard d[b]'s survivor expansion
	// d[b] = sum_a ainv[b][a] * (p_rows[a] + sum_{i alive} Coef(rows[a],i) d_i)
	// into coef.
	expand := func(b int, w byte) {
		for r := 0; r < nd; r++ {
			v := Mul(w, ainv[b][r])
			if v == 0 {
				continue
			}
			coef[k+rows[r]] ^= v
			for i := 0; i < k; i++ {
				if !dataDown[i] {
					coef[i] ^= Mul(v, c.Coef(rows[r], i))
				}
			}
		}
	}
	if target < k {
		for b := 0; b < nd; b++ {
			if d[b] == target {
				expand(b, 1)
				return nil
			}
		}
		return fmt.Errorf("code: rs: target %d not tracked", target) // unreachable: checkPlanArgs
	}
	jt := target - k
	for i := 0; i < k; i++ {
		if !dataDown[i] {
			coef[i] = c.Coef(jt, i)
		}
	}
	for b := 0; b < nd; b++ {
		expand(b, c.Coef(jt, d[b]))
	}
	return nil
}
