//go:build !race

package code

import "testing"

// TestCodeHotPathAllocs is the 0 allocs/op regression gate for the code
// kernels the pdl/store hot paths call per request: EncodeParity,
// UpdateParity, PlanReconstruct, and the MulAdd accumulation loop. Build-
// tagged out under -race (the detector's instrumentation allocates), like
// the other gates.
func TestCodeHotPathAllocs(t *testing.T) {
	const k, size = 6, 512
	data := make([][]byte, k)
	for i := range data {
		data[i] = make([]byte, size)
	}
	parity := make([]byte, size)
	delta := make([]byte, size)
	out := make([]byte, size)
	for _, tc := range []struct {
		name string
		m    int
	}{{"xor", 1}, {"rs", 2}, {"rs", 4}} {
		c, err := New(tc.name, tc.m)
		if err != nil {
			t.Fatal(err)
		}
		coef := make([]byte, k+tc.m)
		missing := []int{2}
		if tc.m > 1 {
			missing = []int{2, k + 1}
		}
		run := func(label string, f func()) {
			for i := 0; i < 8; i++ {
				f() // warm
			}
			if avg := testing.AllocsPerRun(200, f); avg != 0 {
				t.Errorf("%s/%d %s: %.1f allocs/op, want 0", tc.name, tc.m, label, avg)
			}
		}
		run("encode", func() {
			for j := 0; j < tc.m; j++ {
				c.EncodeParity(j, data, parity)
			}
		})
		run("update", func() {
			c.UpdateParity(0, 1, parity, delta)
		})
		run("reconstruct", func() {
			if err := c.PlanReconstruct(k, missing, 2, coef); err != nil {
				t.Fatal(err)
			}
			clear(out)
			for s := 0; s < len(coef); s++ {
				MulAdd(out, parity, coef[s])
			}
		})
	}
}
