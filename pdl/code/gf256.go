// Package code implements the erasure codes a parity-declustered array
// can run over its stripes: the parity policy is a Code — how many parity
// units a stripe carries, how they are computed from the data units, how
// they absorb a small-write delta, and how any m lost units are
// reconstructed from survivors. Two implementations ship: XOR (single
// parity, byte-identical to the classic RAID-5 arithmetic every layer
// used before this package existed) and ReedSolomon over GF(2^8), a
// systematic MDS code tolerating up to 8 simultaneous unit losses per
// stripe.
//
// The byte kernels (MulAdd and the per-parity encode/update loops) are
// table-driven — one flat 64 KiB multiplication table, one 256-byte
// inverse table — and allocation-free in steady state, so the pdl/store
// hot paths stay at 0 allocs/op (TestCodeHotPathAllocs pins this). Like
// repro/pdl/layout, this package is part of the public API and depends on
// nothing under internal/.
package code

import "crypto/subtle"

// Poly is the primitive polynomial x^8+x^4+x^3+x^2+1 (0x11d) defining the
// package's GF(2^8) representation — the conventional choice of storage
// erasure codes, fixed forever because generator coefficients derived
// from it are baked into on-disk parity bytes.
const Poly = 0x11d

// Field tables, built once at init: exponentials of the generator 2,
// logarithms, the flat 256x256 product table the byte kernels index, and
// multiplicative inverses.
var (
	expTab [510]byte // expTab[i] = 2^i, doubled so Mul needs no mod
	logTab [256]byte
	mulTab [65536]byte // mulTab[a<<8|b] = a*b
	invTab [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expTab[i] = byte(x)
		expTab[i+255] = byte(x)
		logTab[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= Poly
		}
	}
	for a := 1; a < 256; a++ {
		for b := 1; b < 256; b++ {
			mulTab[a<<8|b] = expTab[int(logTab[a])+int(logTab[b])]
		}
		invTab[a] = expTab[255-int(logTab[a])]
	}
}

// Mul returns the GF(2^8) product a*b.
func Mul(a, b byte) byte { return mulTab[int(a)<<8|int(b)] }

// Inv returns a^-1, with ok=false for a = 0.
func Inv(a byte) (byte, bool) {
	if a == 0 {
		return 0, false
	}
	return invTab[a], true
}

// Div returns a/b, with ok=false for b = 0.
func Div(a, b byte) (byte, bool) {
	if b == 0 {
		return 0, false
	}
	return mulTab[int(a)<<8|int(invTab[b])], true
}

// MulNoTable multiplies by explicit carry-less polynomial arithmetic
// modulo Poly — the reference implementation the tables are cross-checked
// against for all 65536 pairs (see TestGFTablesMatchPolynomial).
func MulNoTable(a, b byte) byte {
	var r int
	x, y := int(a), int(b)
	for i := 0; i < 8; i++ {
		if y&(1<<i) != 0 {
			r ^= x << i
		}
	}
	for i := 15; i >= 8; i-- {
		if r&(1<<i) != 0 {
			r ^= Poly << (i - 8)
		}
	}
	return byte(r)
}

// MulAdd accumulates dst ^= c*src byte-wise: the fundamental erasure-code
// kernel. c = 0 is a no-op and c = 1 a plain XOR, so XOR-coded and
// unit-coefficient work never pays the table walk. src and dst must have
// equal length and may not overlap (dst == src aliasing is allowed only
// for c = 0 or 1).
func MulAdd(dst, src []byte, c byte) {
	switch c {
	case 0:
		return
	case 1:
		subtle.XORBytes(dst, dst, src)
		return
	}
	row := mulTab[int(c)<<8 : int(c)<<8+256]
	if len(src) != len(dst) {
		panic("code: MulAdd: length mismatch")
	}
	for i, s := range src {
		dst[i] ^= row[s]
	}
}
