package code

import (
	"bytes"
	"testing"
)

// FuzzReedSolomonRoundTrip drives the encode/reconstruct pair with
// fuzzer-chosen geometry, payload, and failure mask: whatever the inputs,
// either PlanReconstruct rejects the mask or every missing shard must
// reconstruct byte-identically. Run continuously in CI (10s smoke per PR,
// 2 minutes nightly).
func FuzzReedSolomonRoundTrip(f *testing.F) {
	f.Add(uint8(2), uint8(4), uint8(0b11), []byte("seed payload for the fuzzer"))
	f.Add(uint8(1), uint8(1), uint8(0b1), []byte{0})
	f.Add(uint8(8), uint8(13), uint8(0xff), bytes.Repeat([]byte{0xa5}, 64))
	f.Fuzz(func(t *testing.T, mRaw, kRaw, mask uint8, payload []byte) {
		m := int(mRaw)%MaxParityShards + 1
		c, err := NewReedSolomon(m)
		if err != nil {
			t.Fatalf("NewReedSolomon(%d): %v", m, err)
		}
		k := int(kRaw)%16 + 1
		size := len(payload)/k + 1
		data := make([][]byte, k)
		for i := range data {
			data[i] = make([]byte, size)
			lo := i * size
			for b := 0; b < size && lo+b < len(payload); b++ {
				data[i][b] = payload[lo+b]
			}
		}
		shards := append([][]byte(nil), data...)
		for j := 0; j < m; j++ {
			p := make([]byte, size)
			c.EncodeParity(j, data, p)
			shards = append(shards, p)
		}
		// Build a sorted missing set from the mask, capped at m losses.
		var missing []int
		for s := 0; s < k+m && len(missing) < m; s++ {
			if mask&(1<<(s%8)) != 0 {
				missing = append(missing, s)
			}
		}
		if len(missing) == 0 {
			missing = []int{0}
		}
		coef := make([]byte, k+m)
		for _, target := range missing {
			if err := c.PlanReconstruct(k, missing, target, coef); err != nil {
				t.Fatalf("PlanReconstruct(k=%d, missing=%v, target=%d): %v", k, missing, target, err)
			}
			got := make([]byte, size)
			for s, w := range coef {
				if w != 0 {
					for i := range missing {
						if missing[i] == s {
							t.Fatalf("missing=%v target=%d: plan reads missing shard %d", missing, target, s)
						}
					}
					MulAdd(got, shards[s], w)
				}
			}
			if !bytes.Equal(got, shards[target]) {
				t.Fatalf("m=%d k=%d missing=%v: shard %d round-trip mismatch", m, k, missing, target)
			}
		}
	})
}
