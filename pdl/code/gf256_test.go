package code

import (
	"bytes"
	"testing"

	"repro/internal/algebra"
)

// TestGFTablesMatchPolynomial cross-checks the lookup-table product
// against the carry-less polynomial reference for every one of the 65536
// input pairs, and Div against Mul over the same domain.
func TestGFTablesMatchPolynomial(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			want := MulNoTable(byte(a), byte(b))
			if got := Mul(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%d,%d) = %d, polynomial reference %d", a, b, got, want)
			}
			q, ok := Div(byte(a), byte(b))
			if b == 0 {
				if ok {
					t.Fatalf("Div(%d,0) reported ok", a)
				}
				continue
			}
			if !ok || Mul(q, byte(b)) != byte(a) {
				t.Fatalf("Div(%d,%d) = %d: times %d gives %d", a, b, q, b, Mul(q, byte(b)))
			}
		}
	}
}

// TestGFMatchesAlgebraField cross-checks against internal/algebra's
// independently-constructed GF(2^8): that field may pick a different
// modulus, so the check maps elements through a field isomorphism fixed
// by matching generators (both groups are cyclic of order 255).
func TestGFMatchesAlgebraField(t *testing.T) {
	f := algebra.NewField(256)
	// iso[x] is the algebra-field element corresponding to our x: both
	// sides are powers of their own primitive element, matched by
	// exponent.
	var iso [256]int
	g := f.Primitive()
	acc := f.One()
	for i := 0; i < 255; i++ {
		iso[expTab[i]] = acc
		acc = f.Mul(acc, g)
	}
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got, want := iso[Mul(byte(a), byte(b))], f.Mul(iso[a], iso[b]); got != want {
				t.Fatalf("Mul(%d,%d) maps to %d, algebra field multiplies to %d", a, b, got, want)
			}
		}
	}
}

// TestGFProperties checks the field laws the codes rely on:
// commutativity and distributivity over all pairs, associativity over a
// full deterministic sweep of one operand, and inverses for every
// nonzero element.
func TestGFProperties(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if Mul(byte(a), byte(b)) != Mul(byte(b), byte(a)) {
				t.Fatalf("Mul(%d,%d) not commutative", a, b)
			}
			// Distributivity: a*(b^c) == a*b ^ a*c with c = b+1 mod 256
			// and c = a (two independent sweeps of all pairs).
			for _, c := range []byte{byte(b + 1), byte(a)} {
				if Mul(byte(a), byte(b)^c) != Mul(byte(a), byte(b))^Mul(byte(a), c) {
					t.Fatalf("Mul(%d, %d^%d) breaks distributivity", a, b, c)
				}
			}
			// Associativity: (a*b)*c == a*(b*c) for c stepped over a
			// fixed residue sweep keeps the check O(256^2 * 8).
			for c := byte(1); c != 0; c <<= 1 {
				if Mul(Mul(byte(a), byte(b)), c) != Mul(byte(a), Mul(byte(b), c)) {
					t.Fatalf("Mul(%d,%d,%d) not associative", a, b, c)
				}
			}
		}
	}
	for a := 1; a < 256; a++ {
		inv, ok := Inv(byte(a))
		if !ok || Mul(byte(a), inv) != 1 {
			t.Fatalf("Inv(%d) = %d, ok=%v: product %d", a, inv, ok, Mul(byte(a), inv))
		}
	}
	if _, ok := Inv(0); ok {
		t.Fatalf("Inv(0) reported ok")
	}
}

// TestMulAdd pins the kernel against the scalar definition for the three
// coefficient classes (0, 1, table row).
func TestMulAdd(t *testing.T) {
	src := make([]byte, 257)
	for i := range src {
		src[i] = byte(i * 31)
	}
	for _, c := range []byte{0, 1, 2, 29, 255} {
		dst := make([]byte, len(src))
		for i := range dst {
			dst[i] = byte(i * 7)
		}
		want := make([]byte, len(src))
		for i := range want {
			want[i] = dst[i] ^ Mul(c, src[i])
		}
		MulAdd(dst, src, c)
		if !bytes.Equal(dst, want) {
			t.Fatalf("MulAdd c=%d mismatch", c)
		}
	}
}
