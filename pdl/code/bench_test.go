package code

import (
	"fmt"
	"testing"
)

// BenchmarkCode measures the steady-state byte kernels — full-stripe
// encode, RMW delta update, and single-shard reconstruction — for both
// codes at a 4 KiB unit size. Runs in the CI bench smoke (-benchtime 10x)
// to catch kernels that start allocating or collapse in throughput.
func BenchmarkCode(b *testing.B) {
	const k, size = 6, 4096
	for _, tc := range []struct {
		name string
		m    int
	}{{"xor", 1}, {"rs", 2}} {
		c, err := New(tc.name, tc.m)
		if err != nil {
			b.Fatal(err)
		}
		data := make([][]byte, k)
		for i := range data {
			data[i] = make([]byte, size)
			for j := range data[i] {
				data[i][j] = byte(i*31 + j)
			}
		}
		parity := make([]byte, size)
		delta := make([]byte, size)
		coef := make([]byte, k+tc.m)
		out := make([]byte, size)
		b.Run(fmt.Sprintf("%s/encode", tc.name), func(b *testing.B) {
			b.SetBytes(int64(k * size))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.EncodeParity(tc.m-1, data, parity)
			}
		})
		b.Run(fmt.Sprintf("%s/update", tc.name), func(b *testing.B) {
			b.SetBytes(size)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.UpdateParity(tc.m-1, 3, parity, delta)
			}
		})
		b.Run(fmt.Sprintf("%s/reconstruct", tc.name), func(b *testing.B) {
			missing := []int{1}
			if tc.m > 1 {
				missing = []int{1, 4}
			}
			b.SetBytes(int64(k * size))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := c.PlanReconstruct(k, missing, 1, coef); err != nil {
					b.Fatal(err)
				}
				clear(out)
				for s := 0; s < k; s++ {
					MulAdd(out, data[s%k], coef[s])
				}
			}
		})
	}
}
