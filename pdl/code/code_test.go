package code

import (
	"bytes"
	"math/rand"
	"testing"
)

// encodeAll returns the m parity shards of a data shard set.
func encodeAll(c Code, data [][]byte, size int) [][]byte {
	par := make([][]byte, c.ParityShards())
	for j := range par {
		par[j] = make([]byte, size)
		c.EncodeParity(j, data, par[j])
	}
	return par
}

// reconstruct recovers shard target from the survivors via
// PlanReconstruct. shards holds data then parity; missing entries are
// ignored (the plan's coefficients for them are zero by contract, which
// the call also asserts).
func reconstruct(t *testing.T, c Code, shards [][]byte, k int, missing []int, target, size int) []byte {
	t.Helper()
	coef := make([]byte, k+c.ParityShards())
	if err := c.PlanReconstruct(k, missing, target, coef); err != nil {
		t.Fatalf("PlanReconstruct(k=%d, missing=%v, target=%d): %v", k, missing, target, err)
	}
	for _, s := range missing {
		if coef[s] != 0 {
			t.Fatalf("PlanReconstruct(k=%d, missing=%v, target=%d): nonzero coefficient %d on missing shard %d", k, missing, target, coef[s], s)
		}
	}
	out := make([]byte, size)
	for s, w := range coef {
		MulAdd(out, shards[s], w)
	}
	return out
}

// subsets appends every size-n subset of [0, total) to out.
func subsets(total, n int) [][]int {
	var out [][]int
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) == n {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for s := start; s < total; s++ {
			rec(s+1, append(cur, s))
		}
	}
	rec(0, nil)
	return out
}

// TestReconstructAllMasks encodes random data and, for every code and
// every failure mask of up to m shards, reconstructs every missing shard
// from the survivors and compares byte-for-byte — the MDS property the
// store's two-disk-down serving depends on.
func TestReconstructAllMasks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		name string
		m, k int
	}{
		{"xor", 1, 5},
		{"rs", 1, 5},
		{"rs", 2, 6},
		{"rs", 3, 5},
		{"rs", 4, 4},
	} {
		c, err := New(tc.name, tc.m)
		if err != nil {
			t.Fatal(err)
		}
		const size = 64
		data := make([][]byte, tc.k)
		for i := range data {
			data[i] = make([]byte, size)
			rng.Read(data[i])
		}
		shards := append(append([][]byte(nil), data...), encodeAll(c, data, size)...)
		total := tc.k + tc.m
		for n := 1; n <= tc.m; n++ {
			for _, missing := range subsets(total, n) {
				for _, target := range missing {
					got := reconstruct(t, c, shards, tc.k, missing, target, size)
					if !bytes.Equal(got, shards[target]) {
						t.Fatalf("%s m=%d k=%d: missing %v: shard %d reconstruction mismatch", tc.name, tc.m, tc.k, missing, target)
					}
				}
			}
		}
	}
}

// TestUpdateParityMatchesEncode applies a random series of small-write
// deltas through UpdateParity and checks each parity stays equal to a
// from-scratch re-encode — the RMW invariant behind degraded and healthy
// small writes alike.
func TestUpdateParityMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, c := range []Code{XOR{}, mustRS(t, 2), mustRS(t, 3)} {
		const k, size = 6, 32
		data := make([][]byte, k)
		for i := range data {
			data[i] = make([]byte, size)
			rng.Read(data[i])
		}
		par := encodeAll(c, data, size)
		delta := make([]byte, size)
		for iter := 0; iter < 50; iter++ {
			i := rng.Intn(k)
			newData := make([]byte, size)
			rng.Read(newData)
			for b := range delta {
				delta[b] = data[i][b] ^ newData[b]
			}
			data[i] = newData
			for j := range par {
				c.UpdateParity(j, i, par[j], delta)
			}
		}
		want := encodeAll(c, data, size)
		for j := range par {
			if !bytes.Equal(par[j], want[j]) {
				t.Fatalf("%s: parity %d diverged from re-encode after updates", c.Name(), j)
			}
		}
	}
}

// TestCoefMatchesEncode pins that EncodeParity is exactly the Coef linear
// combination, byte-wise.
func TestCoefMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, c := range []Code{XOR{}, mustRS(t, 2), mustRS(t, 4)} {
		const k, size = 5, 16
		data := make([][]byte, k)
		for i := range data {
			data[i] = make([]byte, size)
			rng.Read(data[i])
		}
		for j := 0; j < c.ParityShards(); j++ {
			want := make([]byte, size)
			for i := range data {
				MulAdd(want, data[i], c.Coef(j, i))
			}
			got := make([]byte, size)
			c.EncodeParity(j, data, got)
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: EncodeParity(%d) differs from Coef combination", c.Name(), j)
			}
		}
	}
}

// TestXORMatchesClassicParity pins the compatibility promise: XOR's
// parity is the plain XOR of the data shards, and its reconstruction the
// plain XOR of all survivors.
func TestXORMatchesClassicParity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const k, size = 4, 32
	data := make([][]byte, k)
	want := make([]byte, size)
	for i := range data {
		data[i] = make([]byte, size)
		rng.Read(data[i])
		for b := range want {
			want[b] ^= data[i][b]
		}
	}
	par := make([]byte, size)
	XOR{}.EncodeParity(0, data, par)
	if !bytes.Equal(par, want) {
		t.Fatalf("XOR parity differs from plain XOR")
	}
	coef := make([]byte, k+1)
	if err := (XOR{}).PlanReconstruct(k, []int{2}, 2, coef); err != nil {
		t.Fatal(err)
	}
	for s, w := range coef {
		want := byte(1)
		if s == 2 {
			want = 0
		}
		if w != want {
			t.Fatalf("XOR reconstruction coefficient for shard %d is %d, want %d", s, w, want)
		}
	}
}

// TestPlanReconstructErrors pins the failure modes: too many losses,
// unsorted or out-of-range masks, a target outside the mask, and more
// data losses than alive parity rows.
func TestPlanReconstructErrors(t *testing.T) {
	rs := mustRS(t, 2)
	coef := make([]byte, 16)
	for _, tc := range []struct {
		name    string
		c       Code
		k       int
		missing []int
		target  int
	}{
		{"too many", rs, 4, []int{0, 1, 2}, 0},
		{"unsorted", rs, 4, []int{3, 1}, 1},
		{"duplicate", rs, 4, []int{1, 1}, 1},
		{"out of range", rs, 4, []int{7}, 7},
		{"negative", rs, 4, []int{-1}, -1},
		{"target not missing", rs, 4, []int{0, 1}, 2},
		{"empty", rs, 4, nil, 0},
		{"xor two losses", XOR{}, 4, []int{0, 1}, 0},
		{"k too large", rs, 255, []int{0}, 0},
	} {
		if err := tc.c.PlanReconstruct(tc.k, tc.missing, tc.target, coef); err == nil {
			t.Fatalf("%s: PlanReconstruct(k=%d, %v, %d) accepted", tc.name, tc.k, tc.missing, tc.target)
		}
	}
}

// TestRegistry pins the name/m registry the manifests persist.
func TestRegistry(t *testing.T) {
	if c, err := New("xor", 1); err != nil || c.Name() != "xor" || c.ParityShards() != 1 {
		t.Fatalf("New(xor,1) = %v, %v", c, err)
	}
	if c, err := New("rs", 3); err != nil || c.Name() != "rs" || c.ParityShards() != 3 {
		t.Fatalf("New(rs,3) = %v, %v", c, err)
	}
	for _, bad := range []struct {
		name string
		m    int
	}{{"xor", 2}, {"xor", 0}, {"rs", 0}, {"rs", 9}, {"crc", 1}} {
		if _, err := New(bad.name, bad.m); err == nil {
			t.Fatalf("New(%q,%d) accepted", bad.name, bad.m)
		}
	}
	if Default(1).Name() != "xor" {
		t.Fatalf("Default(1) is not xor")
	}
	if c := Default(2); c.Name() != "rs" || c.ParityShards() != 2 {
		t.Fatalf("Default(2) is not rs/2")
	}
}

func mustRS(t *testing.T, m int) Code {
	t.Helper()
	c, err := NewReedSolomon(m)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestMaxDataShardsRoundTrip exercises the widest stripe the RS code
// accepts, k = MaxDataShards, with the full m-shard loss.
func TestMaxDataShardsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := mustRS(t, 2)
	k := c.MaxDataShards()
	const size = 8
	data := make([][]byte, k)
	for i := range data {
		data[i] = make([]byte, size)
		rng.Read(data[i])
	}
	shards := append(append([][]byte(nil), data...), encodeAll(c, data, size)...)
	missing := []int{0, k - 1}
	for _, target := range missing {
		if got := reconstruct(t, c, shards, k, missing, target, size); !bytes.Equal(got, shards[target]) {
			t.Fatalf("k=%d: shard %d mismatch", k, target)
		}
	}
}
