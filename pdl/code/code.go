package code

import "fmt"

// MaxParityShards bounds the parity shards any Code may declare. The
// reconstruction planner solves an up-to-m x m system on fixed stack
// arrays (no allocation on the degraded hot path), so the bound is a
// compile-time constant; 8 simultaneous unit losses per stripe is far
// beyond any deployment the paper contemplates.
const MaxParityShards = 8

// Code is a systematic erasure code over the shards of one parity stripe.
// Shards are indexed 0..k-1 for the data units (in stripe order) and
// k..k+m-1 for the m parity units; k may vary per stripe (parity
// declustering mixes stripe sizes), so it is an argument, not a property.
//
// Parity j of a stripe is the linear combination
//
//	parity[j] = sum_i Coef(j, i) * data[i]
//
// over GF(2^8), byte-wise. Every method is safe for concurrent use and
// allocation-free, so serving engines may share one Code across
// goroutines on their hot paths.
type Code interface {
	// Name is the registry identifier recorded in manifests ("xor", "rs").
	Name() string

	// ParityShards returns m, the parity units per stripe — the number of
	// simultaneous unit losses a stripe survives.
	ParityShards() int

	// MaxDataShards returns the largest data shard count k the code
	// supports per stripe.
	MaxDataShards() int

	// Coef returns the generator coefficient of data shard i in parity j.
	Coef(j, i int) byte

	// EncodeParity computes parity j from the full data shard set into
	// parity (overwritten; same length as each data shard).
	EncodeParity(j int, data [][]byte, parity []byte)

	// UpdateParity folds a small-write delta (old data ^ new data) of data
	// shard i into parity j's bytes: parity ^= Coef(j, i) * delta.
	UpdateParity(j, i int, parity, delta []byte)

	// PlanReconstruct computes the survivor combination recovering one
	// missing shard: given the stripe's data shard count k, the sorted
	// missing shard indices (data and parity, at most m of them), and the
	// target (one of missing), it fills coef[s] for every shard s in
	// [0, k+m) such that
	//
	//	value(target) = sum_s coef(s) * value(s)
	//
	// with coef zero on every missing shard (so executors read only
	// survivors, skipping zero-coefficient ones entirely). coef must have
	// length >= k+m. It errors when the losses exceed what the code can
	// repair.
	PlanReconstruct(k int, missing []int, target int, coef []byte) error
}

// New returns the registered Code named name with m parity shards; the
// name/m pair is what array and cluster manifests persist. Known names
// are "xor" (m must be 1) and "rs" (1 <= m <= MaxParityShards).
func New(name string, m int) (Code, error) {
	switch name {
	case "xor":
		if m != 1 {
			return nil, fmt.Errorf("code: xor supports exactly 1 parity shard, not %d", m)
		}
		return XOR{}, nil
	case "rs":
		return NewReedSolomon(m)
	}
	return nil, fmt.Errorf("code: unknown code %q (want \"xor\" or \"rs\")", name)
}

// Default returns the code a layout with m parity units per stripe runs
// when nothing is pinned explicitly: XOR for m = 1 (byte-identical to the
// classic single-parity arithmetic, so existing arrays are unchanged),
// Reed–Solomon otherwise. It panics on m outside [1, MaxParityShards];
// validate configuration before calling.
func Default(m int) Code {
	if m == 1 {
		return XOR{}
	}
	c, err := NewReedSolomon(m)
	if err != nil {
		panic("code: Default: " + err.Error())
	}
	return c
}

// checkPlanArgs validates the shared PlanReconstruct contract: missing
// sorted, in range, at most m entries, containing target.
func checkPlanArgs(name string, k, m int, missing []int, target int) error {
	if k < 1 {
		return fmt.Errorf("code: %s: %d data shards", name, k)
	}
	if len(missing) == 0 || len(missing) > m {
		return fmt.Errorf("code: %s: %d missing shards, tolerates %d", name, len(missing), m)
	}
	hasTarget := false
	for i, s := range missing {
		if s < 0 || s >= k+m {
			return fmt.Errorf("code: %s: missing shard %d outside [0,%d)", name, s, k+m)
		}
		if i > 0 && missing[i-1] >= s {
			return fmt.Errorf("code: %s: missing shards not sorted", name)
		}
		if s == target {
			hasTarget = true
		}
	}
	if !hasTarget {
		return fmt.Errorf("code: %s: target shard %d not among missing", name, target)
	}
	return nil
}
