package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/pdl/obs"
	"repro/pdl/serve"
)

// Options tunes a Client. The zero value selects the defaults.
type Options struct {
	// DialTimeout bounds each shard connect (initial dial and every
	// reconnect). Default 5s.
	DialTimeout time.Duration

	// Retries is how many times a shard operation that failed with a
	// transport error is retried over a fresh connection before the
	// failure surfaces. Server-reported errors (serve.RemoteError) and
	// caller bugs (serve.ErrClientClosed) never retry. Default 2.
	Retries int

	// RetryBackoff is the pause before the first retry, doubling per
	// attempt. Default 25ms.
	RetryBackoff time.Duration

	// Conns is how many TCP connections to open per shard; pipelined
	// operations stripe across them. Zero picks the serve package's
	// CPU-aware default; negative means 1.
	Conns int
}

// DefaultDialTimeout bounds shard connects when Options.DialTimeout is zero.
const DefaultDialTimeout = 5 * time.Second

// DefaultRetries is the per-operation reconnect budget when
// Options.Retries is zero.
const DefaultRetries = 2

// DefaultRetryBackoff is the initial retry pause when
// Options.RetryBackoff is zero.
const DefaultRetryBackoff = 25 * time.Millisecond

func (o *Options) withDefaults() Options {
	out := *o
	if out.DialTimeout <= 0 {
		out.DialTimeout = DefaultDialTimeout
	}
	if out.Retries == 0 {
		out.Retries = DefaultRetries
	}
	if out.Retries < 0 {
		out.Retries = 0
	}
	if out.RetryBackoff <= 0 {
		out.RetryBackoff = DefaultRetryBackoff
	}
	return out
}

// ShardError reports which shard a namespace operation failed on; it
// supports errors.Is/As through Unwrap.
type ShardError struct {
	// Shard is the failing shard's index in placement order.
	Shard int

	// Addr is the shard's endpoint.
	Addr string

	// Err is the underlying failure.
	Err error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("cluster: shard %d (%s): %v", e.Shard, e.Addr, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// shardConn is one shard's connection state and counters. The serve
// connection is replaced on transport failure; everything else persists
// for the client's lifetime.
type shardConn struct {
	idx  int
	addr string

	// mu guards c. A nil c means the last connection broke (or was never
	// dialed); the next operation redials. Dialing holds mu, so
	// concurrent legs to a down shard wait for one reconnect instead of
	// racing their own.
	mu sync.Mutex
	c  *serve.Client

	hist                obs.Hist
	ops                 atomic.Int64
	failures            atomic.Int64
	retries, reconnects atomic.Int64
	down                atomic.Bool
}

// Client serves one byte namespace over the cluster's shards. It is safe
// for concurrent use: spans fan out per shard, and each shard's
// serve.Client pipelines concurrent requests into the server's batch
// path. Each shard is its own failure domain — a degraded or rebuilding
// shard slows only the pieces placed on it.
type Client struct {
	m   *Map
	man *Manifest
	opt Options

	shards []shardConn

	fanPool sync.Pool
}

// fanout is one span operation's reusable scratch: per-shard local byte
// extents and staging buffers. Pooled so the steady-state span path
// allocates nothing.
type fanout struct {
	touched []bool
	lo, hi  []int64
	buf     [][]byte
	errs    []error
	wg      sync.WaitGroup
}

// Open connects to every shard in the manifest and validates the live
// geometry against it: each shard's array unit size must divide
// UnitBytes (so cluster pieces align with server stripe units and whole
// stripes of small pieces can promote to full-stripe writes), and each
// shard's byte capacity must cover its manifest units. Every shard must
// be reachable; shards that die later are redialed per operation.
func Open(man *Manifest, opts Options) (*Client, error) {
	m, err := man.Map()
	if err != nil {
		return nil, err
	}
	c := &Client{m: m, man: man.Clone(), opt: opts.withDefaults()}
	c.shards = make([]shardConn, len(man.Shards))
	c.fanPool.New = func() any {
		n := len(c.shards)
		return &fanout{
			touched: make([]bool, n),
			lo:      make([]int64, n),
			hi:      make([]int64, n),
			buf:     make([][]byte, n),
			errs:    make([]error, n),
		}
	}
	closeAll := func() {
		for s := range c.shards {
			if sc := c.shards[s].c; sc != nil {
				sc.Close()
			}
		}
	}
	for s := range man.Shards {
		sh := &c.shards[s]
		sh.idx = s
		sh.addr = man.Shards[s].Addr
		sc, err := c.dial(sh.addr)
		if err != nil {
			closeAll()
			return nil, &ShardError{Shard: s, Addr: sh.addr, Err: err}
		}
		if err := c.checkGeometry(man, s, sc); err != nil {
			sc.Close()
			closeAll()
			return nil, err
		}
		sh.c = sc
	}
	return c, nil
}

func (c *Client) dial(addr string) (*serve.Client, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.opt.DialTimeout)
	defer cancel()
	if n := c.opt.Conns; n != 0 {
		if n < 1 {
			n = 1
		}
		return serve.DialContext(ctx, addr, serve.WithConns(n))
	}
	return serve.DialContext(ctx, addr)
}

// checkGeometry validates one live shard against its manifest entry.
func (c *Client) checkGeometry(man *Manifest, s int, sc *serve.Client) error {
	unit := int64(sc.UnitSize())
	if unit < 1 || man.UnitBytes%unit != 0 {
		return &ShardError{Shard: s, Addr: man.Shards[s].Addr,
			Err: fmt.Errorf("cluster: array unit %d B does not divide shard-unit %d B", unit, man.UnitBytes)}
	}
	if need := man.Shards[s].Units * man.UnitBytes; sc.Size() < need {
		return &ShardError{Shard: s, Addr: man.Shards[s].Addr,
			Err: fmt.Errorf("cluster: array holds %d B, manifest places %d B", sc.Size(), need)}
	}
	return nil
}

// Map returns the shard map addressing the namespace.
func (c *Client) Map() *Map { return c.m }

// Manifest returns a copy of the manifest the client was opened with.
func (c *Client) Manifest() *Manifest { return c.man.Clone() }

// Size returns the namespace size in bytes.
func (c *Client) Size() int64 { return c.m.Size() }

// UnitBytes returns the shard-unit size in bytes.
func (c *Client) UnitBytes() int64 { return c.m.UnitBytes() }

// Shards returns the number of shards.
func (c *Client) Shards() int { return len(c.shards) }

// Close closes every shard connection. In-flight operations fail.
func (c *Client) Close() error {
	var first error
	for s := range c.shards {
		sh := &c.shards[s]
		sh.mu.Lock()
		if sh.c != nil {
			if err := sh.c.Close(); err != nil && first == nil {
				first = err
			}
			sh.c = nil
		}
		sh.mu.Unlock()
	}
	return first
}

// plan computes each shard's local byte extent for the span [off, off+n):
// the contiguity property of the cycle map (local units are monotone in
// namespace order) means one contiguous [lo, hi) range per shard.
func (c *Client) plan(fo *fanout, off, n int64) {
	for s := range fo.touched {
		fo.touched[s] = false
	}
	u := c.m.unitBytes
	g := off / u
	for n > 0 {
		within := off - g*u
		ln := u - within
		if ln > n {
			ln = n
		}
		s, local := c.m.Locate(g)
		lb := local*u + within
		if !fo.touched[s] {
			fo.touched[s] = true
			fo.lo[s] = lb
		}
		fo.hi[s] = lb + ln
		off += ln
		n -= ln
		g++
	}
}

// stage sizes each touched shard's staging buffer to its extent, growing
// (and keeping) capacity as needed — zero allocation in steady state.
func (c *Client) stage(fo *fanout) {
	for s := range fo.touched {
		if !fo.touched[s] {
			continue
		}
		need := int(fo.hi[s] - fo.lo[s])
		if cap(fo.buf[s]) < need {
			fo.buf[s] = make([]byte, need)
		}
		fo.buf[s] = fo.buf[s][:need]
	}
}

// gather copies the span's bytes from p into the per-shard staging
// buffers (the write direction).
func (c *Client) gather(fo *fanout, p []byte, off int64) {
	u := c.m.unitBytes
	g := off / u
	pi := 0
	for pi < len(p) {
		within := off - g*u
		ln := u - within
		if rest := int64(len(p) - pi); ln > rest {
			ln = rest
		}
		s, local := c.m.Locate(g)
		copy(fo.buf[s][local*u+within-fo.lo[s]:], p[pi:pi+int(ln)])
		pi += int(ln)
		off += ln
		g++
	}
}

// scatter copies the per-shard staging buffers back into p (the read
// direction), skipping shards whose leg failed: their staging bytes are
// not data, and the confirmed-prefix contract still requires the bytes
// before the first failing piece to land in p.
func (c *Client) scatter(fo *fanout, p []byte, off int64) {
	u := c.m.unitBytes
	g := off / u
	pi := 0
	for pi < len(p) {
		within := off - g*u
		ln := u - within
		if rest := int64(len(p) - pi); ln > rest {
			ln = rest
		}
		s, local := c.m.Locate(g)
		if fo.errs[s] == nil {
			from := local*u + within - fo.lo[s]
			copy(p[pi:pi+int(ln)], fo.buf[s][from:from+ln])
		}
		pi += int(ln)
		off += ln
		g++
	}
}

// confirmed returns the span's contiguous byte count before the first
// piece whose shard failed, and the first failure in placement order —
// the same contract as serve.Client spans, one level up.
func (c *Client) confirmed(fo *fanout, off, n int64) (int, error) {
	u := c.m.unitBytes
	g := off / u
	cn := 0
	for n > 0 {
		within := off - g*u
		ln := u - within
		if ln > n {
			ln = n
		}
		s, _ := c.m.Locate(g)
		if err := fo.errs[s]; err != nil {
			return cn, &ShardError{Shard: s, Addr: c.shards[s].addr, Err: err}
		}
		cn += int(ln)
		off += ln
		n -= ln
		g++
	}
	return cn, nil
}

func (c *Client) getFan() *fanout { return c.fanPool.Get().(*fanout) }

func (c *Client) putFan(fo *fanout) {
	for s := range fo.errs {
		fo.errs[s] = nil
	}
	c.fanPool.Put(fo)
}

// ReadAt reads len(p) bytes of the namespace starting at off: the span
// splits by shard and each shard's contiguous local range is fetched
// concurrently over its connection (whose pipelined unit requests feed
// the server's ReadVec batch path). Reads crossing the end of the
// namespace return the available prefix and io.EOF. On a shard failure
// it returns the contiguous byte count confirmed before the first
// failing piece.
func (c *Client) ReadAt(p []byte, off int64) (int, error) {
	return c.ReadAtClass(p, off, serve.Foreground)
}

// ReadAtClass is ReadAt with an explicit priority class.
func (c *Client) ReadAtClass(p []byte, off int64, class serve.Class) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("cluster: ReadAt: negative offset %d", off)
	}
	size := c.m.Size()
	if off >= size {
		return 0, io.EOF
	}
	eof := false
	if off+int64(len(p)) > size {
		p = p[:size-off]
		eof = true
	}
	if len(p) == 0 {
		return 0, nil
	}
	fo := c.getFan()
	c.plan(fo, off, int64(len(p)))
	c.stage(fo)
	for s := range fo.touched {
		if !fo.touched[s] {
			continue
		}
		fo.wg.Add(1)
		go func(s int) {
			defer fo.wg.Done()
			fo.errs[s] = c.shardDo(s, func(sc *serve.Client) error {
				_, err := sc.ReadAtClass(fo.buf[s], fo.lo[s], class)
				return err
			})
		}(s)
	}
	fo.wg.Wait()
	n, err := c.confirmed(fo, off, int64(len(p)))
	c.scatter(fo, p, off)
	c.putFan(fo)
	if err != nil {
		return n, err
	}
	if eof {
		return len(p), io.EOF
	}
	return len(p), nil
}

// WriteAt writes len(p) bytes of the namespace starting at off, split
// and fanned out like ReadAt; a stripe-aligned span's pieces coalesce
// into the shard servers' WriteVec batch path and promote to full-stripe
// writes. Pieces unaligned to a shard's array unit are read-modify-writes
// inside that shard's serve.Client, so a span is not atomic against
// concurrent writers of the same units. On a shard failure it returns
// the contiguous byte count confirmed before the first failing piece.
func (c *Client) WriteAt(p []byte, off int64) (int, error) {
	return c.WriteAtClass(p, off, serve.Foreground)
}

// WriteAtClass is WriteAt with an explicit priority class.
func (c *Client) WriteAtClass(p []byte, off int64, class serve.Class) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("cluster: WriteAt: negative offset %d", off)
	}
	size := c.m.Size()
	if off+int64(len(p)) > size {
		return 0, fmt.Errorf("cluster: WriteAt: [%d,%d) outside namespace of %d bytes", off, off+int64(len(p)), size)
	}
	if len(p) == 0 {
		return 0, nil
	}
	fo := c.getFan()
	c.plan(fo, off, int64(len(p)))
	c.stage(fo)
	c.gather(fo, p, off)
	for s := range fo.touched {
		if !fo.touched[s] {
			continue
		}
		fo.wg.Add(1)
		go func(s int) {
			defer fo.wg.Done()
			fo.errs[s] = c.shardDo(s, func(sc *serve.Client) error {
				_, err := sc.WriteAtClass(fo.buf[s], fo.lo[s], class)
				return err
			})
		}(s)
	}
	fo.wg.Wait()
	n, err := c.confirmed(fo, off, int64(len(p)))
	c.putFan(fo)
	if err != nil {
		return n, err
	}
	return len(p), nil
}

// retryable reports whether a fresh connection could help: transport
// failures yes; server-reported errors (the connection worked) and calls
// on a client the caller closed (a bug) no.
func retryable(err error) bool {
	var remote *serve.RemoteError
	return !errors.As(err, &remote) && !errors.Is(err, serve.ErrClientClosed)
}

// shardDo runs one shard leg with the per-shard retry/reconnect budget
// and records its latency. The budget is per leg, so one flapping shard
// delays only its own pieces.
func (c *Client) shardDo(si int, op func(*serve.Client) error) error {
	sh := &c.shards[si]
	sh.ops.Add(1)
	start := time.Now()
	defer func() { sh.hist.Record(time.Since(start)) }()
	sc, err := sh.get(c)
	for attempt := 0; ; attempt++ {
		if err == nil {
			if err = op(sc); err == nil {
				sh.down.Store(false)
				return nil
			}
		}
		sh.failures.Add(1)
		if !retryable(err) || attempt >= c.opt.Retries {
			if retryable(err) {
				sh.down.Store(true)
			}
			return err
		}
		if sc != nil {
			sh.drop(sc)
			sc = nil
		}
		time.Sleep(c.opt.RetryBackoff << attempt)
		sh.retries.Add(1)
		if sc, err = sh.get(c); err == nil {
			sh.reconnects.Add(1)
		}
	}
}

// get returns the shard's live connection, dialing if the last one broke.
func (sh *shardConn) get(c *Client) (*serve.Client, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.c != nil {
		return sh.c, nil
	}
	sc, err := c.dial(sh.addr)
	if err != nil {
		return nil, err
	}
	// A reconnect revalidates geometry: the endpoint may have been
	// restarted serving a different (or shrunken) array.
	if err := c.checkGeometry(c.man, sh.idx, sc); err != nil {
		sc.Close()
		return nil, err
	}
	sh.c = sc
	return sc, nil
}

// drop discards a connection observed broken; only the first observer
// closes it (later drops of the same pointer are no-ops against a
// replacement dialed in between).
func (sh *shardConn) drop(sc *serve.Client) {
	sh.mu.Lock()
	if sh.c == sc {
		sh.c = nil
	}
	sh.mu.Unlock()
	sc.Close()
}

// ShardStats is one shard's client-side view.
type ShardStats struct {
	// Addr is the shard's endpoint; Units its addressable shard-units.
	Addr  string `json:"addr"`
	Units int64  `json:"units"`

	// State is the live state: down when unreachable, else the server's
	// rebuilding/degraded/healthy condition.
	State ShardState `json:"state"`

	// Ops counts shard legs; Failures leg attempts that errored;
	// Retries legs retried after a transport error; Reconnects redials
	// that succeeded.
	Ops, Failures, Retries, Reconnects int64

	// P50/P95/P99/Mean summarize leg latency (connect + all piece
	// requests + retries) from a lock-free power-of-two histogram
	// (obs.Hist); percentiles resolve to bucket upper bounds.
	P50, P95, P99, Mean time.Duration

	// Server is the shard server's own counters; zero when unreachable.
	Server serve.ServerStats
}

// Stats reports per-shard state and latency. It queries every shard
// concurrently, best-effort: an unreachable shard reports ShardDown with
// zero server counters instead of failing the call.
func (c *Client) Stats() []ShardStats {
	out := make([]ShardStats, len(c.shards))
	var wg sync.WaitGroup
	for s := range c.shards {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sh := &c.shards[s]
			st := &out[s]
			st.Addr = sh.addr
			st.Units = c.m.ShardUnits(s)
			st.Ops = sh.ops.Load()
			st.Failures = sh.failures.Load()
			st.Retries = sh.retries.Load()
			st.Reconnects = sh.reconnects.Load()
			// One snapshot for all four numbers: the Load ordering contract
			// keeps them consistent against concurrent Record calls (count
			// first, so ranks resolve inside the buckets).
			var hs obs.HistSnapshot
			sh.hist.Load(&hs)
			st.P50 = hs.Percentile(50)
			st.P95 = hs.Percentile(95)
			st.P99 = hs.Percentile(99)
			st.Mean = hs.Mean()
			sc, err := sh.get(c)
			if err != nil {
				st.State = ShardDown
				return
			}
			srv, err := sc.Stats()
			if err != nil {
				sh.drop(sc)
				st.State = ShardDown
				return
			}
			st.Server = srv
			switch {
			case srv.Store.Rebuilding:
				st.State = ShardRebuilding
			case srv.Store.FailedDisk >= 0:
				st.State = ShardDegraded
			default:
				st.State = ShardHealthy
			}
		}(s)
	}
	wg.Wait()
	return out
}
