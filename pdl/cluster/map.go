// Package cluster shards one logical byte namespace across many pdlserve
// arrays — the paper's declustering idea applied one level up. Within an
// array, parity declustering spreads one disk's reconstruction load over
// all survivors; across arrays, the cluster layer stripes the namespace
// over N independent shards so each shard is its own failure domain: a
// shard whose array is degraded or rebuilding serves degraded without
// throttling the rest.
//
// Three pieces:
//
//   - Map: a deterministic shard map — a mapper of mappers. Where
//     layout.Mapping translates a logical data unit to (disk, offset)
//     with one table lookup plus constant arithmetic, Map translates a
//     cluster shard-unit to (shard, shard-local unit) the same way: a
//     flattened int32 cycle table plus div/mod. No state is consulted at
//     lookup time, so every client computes identical placements.
//
//   - Manifest: the versioned cluster.json naming the shards (endpoint,
//     capacity in shard-units, recorded state), written atomically
//     (temp + rename) and validated against hostile input, following the
//     array.json discipline of pdl/store/array.
//
//   - Client: ReadAt/WriteAt/Size/Stats over the whole namespace. A span
//     splits by shard, each shard's contiguous local range fans out
//     concurrently over that shard's serve.Client (feeding the server's
//     ReadVec/WriteVec batch path), with bounded per-shard
//     retry/reconnect on transport failure.
package cluster

import (
	"fmt"
	"math"
)

// Policy selects how Map assigns shard-units to shards.
type Policy string

const (
	// RoundRobin stripes shard-units one per shard in manifest order,
	// addressing min(capacity) units on every shard: perfectly balanced
	// load, with capacity above the smallest shard left unaddressed.
	RoundRobin Policy = "round-robin"

	// ByCapacity stripes shard-units proportionally to each shard's
	// capacity (smooth weighted round-robin), addressing every unit of
	// every shard: full capacity, load proportional to size.
	ByCapacity Policy = "capacity"
)

// ParsePolicy converts a command-line or manifest spelling into a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case RoundRobin, ByCapacity:
		return Policy(s), nil
	}
	return "", fmt.Errorf("cluster: unknown policy %q (want %q or %q)", s, RoundRobin, ByCapacity)
}

// maxCycleLen bounds the flattened cycle tables. The cycle length is the
// sum of per-shard weights after gcd reduction, so capacities sharing a
// coarse granularity (the normal case: capacities are whole arrays)
// produce short cycles; pathologically coprime capacities are rejected
// rather than silently allocating huge tables.
const maxCycleLen = 1 << 20

// Map deterministically assigns the shard-units of one byte namespace to
// shards. Placement repeats in cycles: position p of every cycle lands
// on shard cycleShard[p] as that shard's cycleRank[p]-th unit of the
// cycle, so Locate is one div/mod plus two table lookups — the same
// flattened-table idiom as layout.Mapping, one level up.
//
// Unlike a hash ring, the map is exact: every shard-unit has one
// position, local units are contiguous per shard, and a contiguous span
// of the namespace touches one contiguous local byte range per shard
// (which is what lets the Client issue one ReadAt/WriteAt per shard).
type Map struct {
	unitBytes int64

	// cycleShard[p] = shard of cycle position p.
	cycleShard []int32
	// cycleRank[p] = how many earlier positions of the same cycle land
	// on cycleShard[p]: the unit's rank within its shard's cycle share.
	cycleRank []int32
	// perCycle[s] = shard s's units per cycle (its reduced weight).
	perCycle []int32

	cycles     int64 // full cycles in the namespace
	totalUnits int64 // cycles * len(cycleShard)
}

// NewMap builds the shard map for shards with the given capacities (in
// shard-units of unitBytes bytes) under policy.
func NewMap(unitBytes int64, units []int64, policy Policy) (*Map, error) {
	if unitBytes < 1 {
		return nil, fmt.Errorf("cluster: NewMap: unit bytes %d < 1", unitBytes)
	}
	if len(units) < 1 {
		return nil, fmt.Errorf("cluster: NewMap: no shards")
	}
	if _, err := ParsePolicy(string(policy)); err != nil {
		return nil, err
	}
	for s, u := range units {
		if u < 1 {
			return nil, fmt.Errorf("cluster: NewMap: shard %d has %d units, want >= 1", s, u)
		}
	}
	// Reduce capacities to per-cycle weights and a cycle count.
	weights := make([]int64, len(units))
	var cycles int64
	switch policy {
	case RoundRobin:
		cycles = units[0]
		for _, u := range units {
			cycles = min(cycles, u)
		}
		for s := range weights {
			weights[s] = 1
		}
	case ByCapacity:
		cycles = units[0]
		for _, u := range units[1:] {
			cycles = gcd(cycles, u)
		}
		for s, u := range units {
			weights[s] = u / cycles
		}
	}
	var cycleLen int64
	for _, w := range weights {
		cycleLen += w
	}
	if cycleLen > maxCycleLen {
		return nil, fmt.Errorf("cluster: NewMap: cycle of %d positions exceeds %d — shard capacities too coprime; round them to a common granularity", cycleLen, maxCycleLen)
	}
	total := cycles * cycleLen
	if total > math.MaxInt64/unitBytes {
		return nil, fmt.Errorf("cluster: NewMap: %d units of %d bytes overflow the byte namespace", total, unitBytes)
	}
	m := &Map{
		unitBytes:  unitBytes,
		cycleShard: make([]int32, cycleLen),
		cycleRank:  make([]int32, cycleLen),
		perCycle:   make([]int32, len(units)),
		cycles:     cycles,
		totalUnits: total,
	}
	// Smooth weighted round-robin: each position, every shard earns its
	// weight of credit and the richest shard (lowest index on ties) takes
	// the position, paying the full cycle back. Equal weights degenerate
	// to plain round-robin; unequal weights interleave heavy shards
	// smoothly instead of in blocks, so a span's fan-out stays wide.
	credit := make([]int64, len(units))
	rank := make([]int32, len(units))
	for p := range m.cycleShard {
		best := 0
		for s := range credit {
			credit[s] += weights[s]
			if credit[s] > credit[best] {
				best = s
			}
		}
		credit[best] -= cycleLen
		m.cycleShard[p] = int32(best)
		m.cycleRank[p] = rank[best]
		rank[best]++
	}
	for s, w := range weights {
		m.perCycle[s] = int32(w)
	}
	return m, nil
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Shards returns the number of shards.
func (m *Map) Shards() int { return len(m.perCycle) }

// UnitBytes returns the shard-unit size in bytes.
func (m *Map) UnitBytes() int64 { return m.unitBytes }

// Units returns the number of addressable shard-units in the namespace.
func (m *Map) Units() int64 { return m.totalUnits }

// Size returns the namespace size in bytes.
func (m *Map) Size() int64 { return m.totalUnits * m.unitBytes }

// ShardUnits returns the number of addressable shard-units placed on
// shard s (under RoundRobin this can be less than the shard's capacity).
func (m *Map) ShardUnits(s int) int64 { return m.cycles * int64(m.perCycle[s]) }

// Locate translates a shard-unit of the namespace to its shard and
// shard-local unit: one div/mod plus two table lookups, no allocation.
// Like layout.Mapping's raw accessors, it does not revalidate — unit
// must be in [0, Units()).
func (m *Map) Locate(unit int64) (shard int, local int64) {
	cycleLen := int64(len(m.cycleShard))
	cycle, pos := unit/cycleLen, unit%cycleLen
	s := m.cycleShard[pos]
	return int(s), cycle*int64(m.perCycle[s]) + int64(m.cycleRank[pos])
}

// LocateRange walks the byte span [off, off+n) in placement order,
// calling fn once per piece — the span's overlap with one shard-unit —
// with the shard, the shard-local byte offset, the namespace byte
// offset, and the piece length. It allocates nothing itself; the span
// must lie within [0, Size()) and fn must not be nil.
func (m *Map) LocateRange(off, n int64, fn func(shard int, local, spanOff int64, n int)) {
	u := m.unitBytes
	g := off / u
	for n > 0 {
		within := off - g*u
		ln := u - within
		if ln > n {
			ln = n
		}
		s, local := m.Locate(g)
		fn(s, local*u+within, off, int(ln))
		off += ln
		n -= ln
		g++
	}
}
