package cluster

import (
	"strconv"

	"repro/pdl/obs"
)

// RegisterMetrics registers the client's per-shard counters and latency
// histograms with r under the pdl_cluster_* namespace. The series read
// the same atomics the fan-out path maintains, so scraping costs nothing
// on span operations. Call once per Client per Registry.
func (c *Client) RegisterMetrics(r *obs.Registry) {
	for s := range c.shards {
		sh := &c.shards[s]
		lbl := obs.Label{Key: "shard", Value: strconv.Itoa(s)}
		r.CounterFunc("pdl_cluster_shard_ops_total",
			"Span legs dispatched to the shard.",
			sh.ops.Load, lbl)
		r.CounterFunc("pdl_cluster_shard_failures_total",
			"Shard leg attempts that errored.",
			sh.failures.Load, lbl)
		r.CounterFunc("pdl_cluster_shard_retries_total",
			"Shard legs retried after a transport error.",
			sh.retries.Load, lbl)
		r.CounterFunc("pdl_cluster_shard_reconnects_total",
			"Shard redials that succeeded.",
			sh.reconnects.Load, lbl)
		r.GaugeFunc("pdl_cluster_shard_down",
			"1 while the shard's last retryable failure has not been followed by a success.",
			func() int64 {
				if sh.down.Load() {
					return 1
				}
				return 0
			}, lbl)
		r.RegisterHist("pdl_cluster_shard_latency_seconds",
			"Shard leg latency: connect plus all piece requests plus retries.",
			&sh.hist, lbl)
	}
	r.GaugeFunc("pdl_cluster_shards",
		"Shards in the namespace placement.",
		func() int64 { return int64(len(c.shards)) })
}
