package cluster_test

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/pdl"
	"repro/pdl/cluster"
	"repro/pdl/serve"
	"repro/pdl/store"
)

// shardStoreUnit is the array stripe-unit size every test shard serves;
// shard-unit sizes in tests are multiples of it so cluster pieces align
// with server units.
const shardStoreUnit = 32

// testShard is one in-process pdlserve endpoint: a MemDisk-backed
// declustered store behind a batching frontend behind a TCP server on an
// ephemeral loopback port. The store and frontend outlive server
// restarts, so tests can kill and revive the network face of a shard
// while its data persists — exactly what a crashed-and-restarted
// pdlserve looks like to the cluster client.
type testShard struct {
	t         testing.TB
	store     *store.Store
	front     *serve.Frontend
	addr      string
	diskBytes int64 // replacement-disk size for Rebuild

	// mu orders srv/done handoffs between a test goroutine restarting
	// the server and the cleanup stopping it.
	mu   sync.Mutex
	srv  *serve.Server
	done chan error
}

// startShard provisions a shard whose array holds at least needBytes,
// built from storeUnit-sized stripe units.
func startShard(t testing.TB, needBytes int64, storeUnit int, cfg serve.Config) *testShard {
	t.Helper()
	res, err := pdl.Build(13, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Scale whole layout copies until the logical capacity covers the
	// manifest's placement.
	copies := 1
	var s *store.Store
	for {
		s, err = store.Open(res, copies*res.Layout.Size, storeUnit, nil)
		if err != nil {
			t.Fatal(err)
		}
		if s.Size() >= needBytes {
			break
		}
		s.Close()
		copies *= 2
	}
	ts := &testShard{
		t:         t,
		store:     s,
		front:     serve.New(s, cfg),
		diskBytes: int64(copies*res.Layout.Size) * int64(storeUnit),
	}
	t.Cleanup(func() {
		ts.stopServer()
		ts.front.Close()
		s.Close()
	})
	ts.listen("127.0.0.1:0")
	return ts
}

// listen starts (or restarts) the shard's TCP server on addr.
func (ts *testShard) listen(addr string) {
	ts.t.Helper()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		ts.t.Fatal(err)
	}
	ts.addr = ln.Addr().String()
	srv := serve.NewServer(ts.front)
	done := make(chan error, 1)
	ts.mu.Lock()
	ts.srv, ts.done = srv, done
	ts.mu.Unlock()
	go func() { done <- srv.Serve(ln) }()
}

// stopServer kills the shard's network face; the store keeps its bytes.
func (ts *testShard) stopServer() {
	ts.mu.Lock()
	srv, done := ts.srv, ts.done
	ts.srv = nil
	ts.mu.Unlock()
	if srv == nil {
		return
	}
	srv.Close()
	if err := <-done; err != nil {
		ts.t.Errorf("shard %s: Serve: %v", ts.addr, err)
	}
}

// restartServer revives the shard on its previous port, like a restarted
// pdlserve process reopening the same array.
func (ts *testShard) restartServer() {
	ts.t.Helper()
	ts.mu.Lock()
	running := ts.srv != nil
	ts.mu.Unlock()
	if running {
		ts.t.Fatal("restartServer: server still running")
	}
	// The old listener is closed, so the port is free to rebind; retry
	// briefly in case the close is still settling.
	addr := ts.addr
	for i := 0; ; i++ {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			if i < 50 {
				time.Sleep(10 * time.Millisecond)
				continue
			}
			ts.t.Fatal(err)
		}
		srv := serve.NewServer(ts.front)
		done := make(chan error, 1)
		ts.mu.Lock()
		ts.srv, ts.done = srv, done
		ts.mu.Unlock()
		go func() { done <- srv.Serve(ln) }()
		return
	}
}

// testCluster is a full in-process cluster: N shards and the manifest
// placing shardUnits[s] shard-units on each.
type testCluster struct {
	shards []*testShard
	man    *cluster.Manifest
}

// startCluster provisions len(shardUnits) shards (arrays of
// shardStoreUnit stripe units) and a manifest striping unitBytes-sized
// shard-units over them under the given policy.
func startCluster(t testing.TB, unitBytes int64, shardUnits []int64, policy cluster.Policy, cfg serve.Config) *testCluster {
	return startClusterUnit(t, shardStoreUnit, unitBytes, shardUnits, policy, cfg)
}

// startClusterUnit is startCluster with an explicit array stripe-unit
// size (benchmarks use realistic units; tests use tiny ones for churn).
func startClusterUnit(t testing.TB, storeUnit int, unitBytes int64, shardUnits []int64, policy cluster.Policy, cfg serve.Config) *testCluster {
	t.Helper()
	tc := &testCluster{man: &cluster.Manifest{
		Version:   cluster.FormatVersion,
		UnitBytes: unitBytes,
		Policy:    policy,
	}}
	for _, units := range shardUnits {
		ts := startShard(t, units*unitBytes, storeUnit, cfg)
		tc.shards = append(tc.shards, ts)
		tc.man.Shards = append(tc.man.Shards, cluster.ShardInfo{
			Addr:  ts.addr,
			Units: units,
			State: cluster.ShardHealthy,
		})
	}
	return tc
}

// open connects a cluster client to the harness.
func (tc *testCluster) open(t testing.TB, opts cluster.Options) *cluster.Client {
	t.Helper()
	c, err := cluster.Open(tc.man, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}
