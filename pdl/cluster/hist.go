package cluster

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// latHist is a fixed, lock-free latency histogram: one power-of-two
// nanosecond bucket per bit length. Unlike sim.LatencyRecorder it stores
// no samples, so a long-lived cluster client records forever in O(1)
// memory with a single atomic add per observation — nothing on the
// fan-out hot path allocates or locks for it.
type latHist struct {
	buckets [64]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

func (h *latHist) record(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 1 {
		ns = 1
	}
	h.buckets[bits.Len64(uint64(ns))-1].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// percentile returns the p-th percentile (0 < p <= 100) by nearest rank,
// resolved to its bucket's upper bound (a conservative estimate within
// 2x), or 0 with no observations.
func (h *latHist) percentile(p float64) time.Duration {
	n := h.count.Load()
	if n == 0 || p <= 0 || p > 100 {
		return 0
	}
	rank := int64(p/100*float64(n) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for b := range h.buckets {
		seen += h.buckets[b].Load()
		if seen >= rank {
			return time.Duration(int64(1) << (b + 1))
		}
	}
	return time.Duration(int64(1) << 62)
}

// mean returns the average observed latency, or 0 with no observations.
func (h *latHist) mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}
