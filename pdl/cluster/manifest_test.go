package cluster_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/pdl/cluster"
)

func validManifest() *cluster.Manifest {
	return &cluster.Manifest{
		Version:   cluster.FormatVersion,
		UnitBytes: 4096,
		Policy:    cluster.ByCapacity,
		Shards: []cluster.ShardInfo{
			{Addr: "10.0.0.1:9911", Units: 128, State: cluster.ShardHealthy},
			{Addr: "10.0.0.2:9911", Units: 128, State: cluster.ShardDegraded},
			{Addr: "10.0.0.3:9911", Units: 256, State: cluster.ShardHealthy},
		},
	}
}

// TestDecodeManifest walks the validation surface: hostile, truncated,
// and out-of-range documents error cleanly; version skew is ErrVersion.
func TestDecodeManifest(t *testing.T) {
	bad := []struct {
		name string
		doc  string
	}{
		{"empty", ``},
		{"truncated", `{"version": 1,`},
		{"null", `null`},
		{"no-version", `{"unit_bytes": 4096, "shards": [{"addr": "a:1", "units": 4}]}`},
		{"zero-unit", `{"version": 1, "unit_bytes": 0, "shards": [{"addr": "a:1", "units": 4}]}`},
		{"huge-unit", `{"version": 1, "unit_bytes": 1073741825, "shards": [{"addr": "a:1", "units": 4}]}`},
		{"no-shards", `{"version": 1, "unit_bytes": 4096, "shards": []}`},
		{"empty-addr", `{"version": 1, "unit_bytes": 4096, "shards": [{"addr": "", "units": 4}]}`},
		{"space-addr", `{"version": 1, "unit_bytes": 4096, "shards": [{"addr": "a b:1", "units": 4}]}`},
		{"dup-addr", `{"version": 1, "unit_bytes": 4096, "shards": [{"addr": "a:1", "units": 4}, {"addr": "a:1", "units": 4}]}`},
		{"zero-units", `{"version": 1, "unit_bytes": 4096, "shards": [{"addr": "a:1", "units": 0}]}`},
		{"bad-state", `{"version": 1, "unit_bytes": 4096, "shards": [{"addr": "a:1", "units": 4, "state": "onfire"}]}`},
		{"bad-policy", `{"version": 1, "unit_bytes": 4096, "policy": "hash", "shards": [{"addr": "a:1", "units": 4}]}`},
		{"implausible", `{"version": 1, "unit_bytes": 1073741824, "shards": [{"addr": "a:1", "units": 281474976710656}]}`},
		{"v1-codec-rs", `{"version": 1, "unit_bytes": 4096, "shards": [{"addr": "a:1", "units": 4, "codec": "rs", "parity_shards": 2}]}`},
		{"v1-parity-2", `{"version": 1, "unit_bytes": 4096, "shards": [{"addr": "a:1", "units": 4, "parity_shards": 2}]}`},
		{"bad-codec", `{"version": 2, "unit_bytes": 4096, "shards": [{"addr": "a:1", "units": 4, "codec": "raid6"}]}`},
		{"neg-parity", `{"version": 2, "unit_bytes": 4096, "shards": [{"addr": "a:1", "units": 4, "parity_shards": -1}]}`},
		{"huge-parity", `{"version": 2, "unit_bytes": 4096, "shards": [{"addr": "a:1", "units": 4, "codec": "rs", "parity_shards": 9}]}`},
		{"xor-parity-2", `{"version": 2, "unit_bytes": 4096, "shards": [{"addr": "a:1", "units": 4, "codec": "xor", "parity_shards": 2}]}`},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if m, err := cluster.DecodeManifest([]byte(tc.doc)); err == nil {
				t.Fatalf("decoder accepted %q: %+v", tc.doc, m)
			}
		})
	}

	// Version skew is typed.
	_, err := cluster.DecodeManifest([]byte(`{"version": 3, "unit_bytes": 4096, "shards": [{"addr": "a:1", "units": 4}]}`))
	if !errors.Is(err, cluster.ErrVersion) {
		t.Fatalf("future version: got %v, want ErrVersion", err)
	}

	// Empty policy and state default to capacity/healthy.
	m, err := cluster.DecodeManifest([]byte(`{"version": 1, "unit_bytes": 4096, "shards": [{"addr": "a:1", "units": 4}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if m.Policy != cluster.ByCapacity || m.Shards[0].State != cluster.ShardHealthy {
		t.Fatalf("defaults not applied: policy %q state %q", m.Policy, m.Shards[0].State)
	}
}

// TestManifestFileRoundTrip writes atomically and reopens identically;
// a leftover staging file never shadows the real manifest.
func TestManifestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, cluster.ManifestName)
	m := validManifest()
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	// A stale staging file (crash between write and rename) is ignored.
	if err := os.WriteFile(path+".tmp", []byte("torn garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := cluster.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.UnitBytes != m.UnitBytes || got.Policy != m.Policy || len(got.Shards) != len(m.Shards) {
		t.Fatalf("round trip diverges:\n in %+v\nout %+v", m, got)
	}
	for s := range m.Shards {
		if got.Shards[s] != m.Shards[s] {
			t.Fatalf("shard %d diverges: %+v != %+v", s, got.Shards[s], m.Shards[s])
		}
	}

	// Overwrite is atomic: the new manifest replaces the old whole.
	m.Shards[1].State = cluster.ShardHealthy
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err = cluster.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shards[1].State != cluster.ShardHealthy {
		t.Fatalf("overwrite not visible: %+v", got.Shards[1])
	}

	// WriteFile refuses an invalid manifest instead of clobbering a
	// good one with it.
	bad := validManifest()
	bad.Shards[0].Units = 0
	if err := bad.WriteFile(path); err == nil {
		t.Fatal("WriteFile accepted invalid manifest")
	}
	if _, err := cluster.ReadFile(path); err != nil {
		t.Fatalf("good manifest damaged by refused write: %v", err)
	}
}

// TestManifestCodecFields pins the format-2 codec info contract:
// manifests without codec info keep writing format 1, recording an RS
// shard bumps the written format to 2, and the fields survive the file
// round trip.
func TestManifestCodecFields(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, cluster.ManifestName)

	// Default manifest: no codec info, written as format 1.
	m := validManifest()
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"version": 1`)) {
		t.Fatalf("codec-free manifest not written as format 1:\n%s", b)
	}
	if bytes.Contains(b, []byte("codec")) || bytes.Contains(b, []byte("parity_shards")) {
		t.Fatalf("codec-free manifest leaked format-2 fields:\n%s", b)
	}

	// Recording a two-parity Reed-Solomon shard bumps the file to
	// format 2, and everything round-trips.
	m.Shards[1].Codec = "rs"
	m.Shards[1].ParityShards = 2
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	b, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"version": 2`)) || !bytes.Contains(b, []byte(`"codec": "rs"`)) {
		t.Fatalf("RS manifest:\n%s", b)
	}
	got, err := cluster.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shards[1].Codec != "rs" || got.Shards[1].ParityShards != 2 {
		t.Fatalf("round trip lost codec info: %+v", got.Shards[1])
	}
	if got.Shards[0].Codec != "" || got.Shards[0].ParityShards != 0 {
		t.Fatalf("codec info bled into shard 0: %+v", got.Shards[0])
	}
}

// TestManifestMap builds the shard map from the manifest geometry.
func TestManifestMap(t *testing.T) {
	m := validManifest()
	mp, err := m.Map()
	if err != nil {
		t.Fatal(err)
	}
	if mp.Shards() != 3 || mp.Units() != 128+128+256 || mp.UnitBytes() != 4096 {
		t.Fatalf("map geometry: shards %d units %d unitBytes %d", mp.Shards(), mp.Units(), mp.UnitBytes())
	}
}
