package cluster_test

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/pdl/cluster"
	"repro/pdl/serve"
)

// BenchmarkClusterLocate is the address-translation hot path: one
// div/mod plus two int32 table lookups per shard-unit.
func BenchmarkClusterLocate(b *testing.B) {
	m, err := cluster.NewMap(1<<16, []int64{1 << 20, 2 << 20, 3 << 20, 2 << 20}, cluster.ByCapacity)
	if err != nil {
		b.Fatal(err)
	}
	units := m.Units()
	b.ReportAllocs()
	var sink int64
	for i := 0; i < b.N; i++ {
		s, local := m.Locate(int64(i) % units)
		sink += int64(s) + local
	}
	_ = sink
}

// benchCluster stripes spans over 3 live in-process shards through the
// full network path. The per-op allocations reported here are the
// per-shard network bookkeeping (goroutine spawn + serve client call
// state) on top of the zero-alloc span machinery; BENCH_cluster.json
// records them.
func benchCluster(b *testing.B, span int64, write bool) {
	const unitBytes = 4096
	tc := startClusterUnit(b, 4096, unitBytes, []int64{64, 64, 64}, cluster.ByCapacity,
		serve.Config{QueueDepth: 64, FlushDelay: -1})
	c := tc.open(b, cluster.Options{})
	size := c.Size()

	p := make([]byte, span)
	rng := rand.New(rand.NewSource(1))
	rng.Read(p)
	if _, err := c.WriteAt(p, 0); err != nil {
		b.Fatal(err)
	}
	// Unit-aligned offsets: whole-unit spans are the designed hot path
	// (pieces coalesce into full-stripe writes server-side).
	offs := make([]int64, 256)
	for i := range offs {
		offs[i] = rng.Int63n((size-span)/unitBytes+1) * unitBytes
	}
	b.SetBytes(span)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if write {
			_, err = c.WriteAt(p, offs[i%len(offs)])
		} else {
			_, err = c.ReadAt(p, offs[i%len(offs)])
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterReadAt(b *testing.B) {
	for _, span := range []int64{4096, 65536} {
		b.Run(fmt.Sprintf("span=%d", span), func(b *testing.B) {
			benchCluster(b, span, false)
		})
	}
}

func BenchmarkClusterWriteAt(b *testing.B) {
	for _, span := range []int64{4096, 65536} {
		b.Run(fmt.Sprintf("span=%d", span), func(b *testing.B) {
			benchCluster(b, span, true)
		})
	}
}

// BenchmarkClusterTCP drives pipelined 64 KiB spans from concurrent
// goroutines over the full sharded network path — the cluster-level
// counterpart of BenchmarkServeTCPWrite, exercising the wire-v2
// streaming frames and multi-connection striping end to end.
func BenchmarkClusterTCP(b *testing.B) {
	const (
		unitBytes = 4096
		span      = 65536
		clients   = 16
	)
	tc := startClusterUnit(b, 4096, unitBytes, []int64{64, 64, 64}, cluster.ByCapacity,
		serve.Config{QueueDepth: 64, FlushDelay: -1})
	c := tc.open(b, cluster.Options{})
	size := c.Size()
	slots := (size-span)/unitBytes + 1

	seed := make([]byte, span)
	rand.New(rand.NewSource(1)).Read(seed)
	if _, err := c.WriteAt(seed, 0); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(span)
	b.ReportAllocs()
	b.ResetTimer()
	var next atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			p := make([]byte, span)
			rng.Read(p)
			for {
				n := next.Add(1) - 1
				if n >= int64(b.N) {
					return
				}
				off := (n * 17 % slots) * unitBytes
				if _, err := c.WriteAt(p, off); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		b.Fatal(err)
	}
}
