package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/pdl/code"
)

// FormatVersion is the newest manifest format this package reads and
// writes. Decoding rejects manifests from a newer format with
// ErrVersion rather than guessing; a future format bump reads old
// versions here, in one place.
//
// Format 2 added the per-shard codec info fields (codec,
// parity_shards). Manifests that do not use them are still written as
// format 1, so clusters of classic XOR shards stay readable by older
// binaries.
const FormatVersion = 2

// ManifestName is the conventional manifest file name.
const ManifestName = "cluster.json"

// manifestTmpSuffix is the staging suffix WriteFile writes before the
// atomic rename; a crash mid-write leaves it behind, harmlessly.
const manifestTmpSuffix = ".tmp"

// ErrVersion reports a manifest written by a newer format than this
// build reads; it supports errors.Is.
var ErrVersion = errors.New("unsupported cluster manifest format version")

// ShardState is one shard's recorded condition. It is observational —
// the shard map never consults it — recorded so operators and tools see
// the cluster's last known shape without dialing every endpoint.
type ShardState string

const (
	// ShardHealthy serves with all disks up.
	ShardHealthy ShardState = "healthy"

	// ShardDegraded serves with a failed disk, reconstructing that
	// disk's units from survivor XOR on every read.
	ShardDegraded ShardState = "degraded"

	// ShardRebuilding serves degraded while an online rebuild streams
	// the failed disk onto a replacement.
	ShardRebuilding ShardState = "rebuilding"

	// ShardDown was unreachable when the state was recorded.
	ShardDown ShardState = "down"
)

func validShardState(s ShardState) bool {
	switch s {
	case ShardHealthy, ShardDegraded, ShardRebuilding, ShardDown:
		return true
	}
	return false
}

// ShardInfo is one shard's manifest entry.
type ShardInfo struct {
	// Addr is the shard's pdlserve endpoint (host:port).
	Addr string `json:"addr"`

	// Units is the shard's capacity in shard-units of UnitBytes bytes.
	Units int64 `json:"units"`

	// State is the shard's recorded condition.
	State ShardState `json:"state"`

	// Codec names the erasure code the shard's array runs ("xor",
	// "rs"). Like State it is observational — placement never consults
	// it — recorded so operators see each shard's failure tolerance
	// without dialing it. Empty means unrecorded (a classic single-
	// parity shard, or a manifest written before format 2).
	Codec string `json:"codec,omitempty"`

	// ParityShards is how many simultaneous disk failures the shard's
	// array tolerates. Zero means unrecorded and reads as 1, the only
	// tolerance that existed before format 2.
	ParityShards int `json:"parity_shards,omitempty"`
}

// Manifest is the decoded cluster.json: everything needed to address the
// namespace — shard-unit size, placement policy, and the shard list in
// placement order — with a format version first so future formats stay
// recognizable. Shard order is part of the address space: reordering
// entries reshuffles placement.
type Manifest struct {
	// Version is the manifest format version (FormatVersion when written
	// by this package).
	Version int `json:"version"`

	// UnitBytes is the shard-unit size: the granularity at which the
	// namespace stripes across shards. It must be a multiple of every
	// shard's array unit size (Open enforces this against the live
	// endpoints) so cluster pieces align with server stripe units.
	UnitBytes int64 `json:"unit_bytes"`

	// Policy selects the placement policy.
	Policy Policy `json:"policy"`

	// Shards lists the shards in placement order.
	Shards []ShardInfo `json:"shards"`
}

// maxUnitBytes bounds UnitBytes against hostile manifests: 1 GiB per
// shard-unit is far beyond any sane striping granularity.
const maxUnitBytes = 1 << 30

// Map builds the shard map the manifest describes.
func (m *Manifest) Map() (*Map, error) {
	units := make([]int64, len(m.Shards))
	for s := range m.Shards {
		units[s] = m.Shards[s].Units
	}
	return NewMap(m.UnitBytes, units, m.Policy)
}

// Clone returns a deep copy, so callers can derive a modified manifest
// (say, updated shard states) without aliasing the original's shard list.
func (m *Manifest) Clone() *Manifest {
	out := *m
	out.Shards = append([]ShardInfo(nil), m.Shards...)
	return &out
}

// DecodeManifest parses and validates a manifest. It never panics on
// hostile input: truncated, type-skewed, or out-of-range documents
// return errors (FuzzDecodeClusterManifest pins this). Version skew
// beyond FormatVersion is ErrVersion. An empty policy decodes as
// ByCapacity, the default this package writes.
func DecodeManifest(b []byte) (*Manifest, error) {
	m := &Manifest{}
	if err := json.Unmarshal(b, m); err != nil {
		return nil, fmt.Errorf("cluster: manifest: %w", err)
	}
	if m.Version < 1 {
		return nil, fmt.Errorf("cluster: manifest: bad version %d", m.Version)
	}
	if m.Version > FormatVersion {
		return nil, fmt.Errorf("cluster: manifest: %w: format %d, this build reads <= %d", ErrVersion, m.Version, FormatVersion)
	}
	if m.UnitBytes < 1 || m.UnitBytes > maxUnitBytes {
		return nil, fmt.Errorf("cluster: manifest: unit bytes %d outside [1,%d]", m.UnitBytes, int64(maxUnitBytes))
	}
	if m.Policy == "" {
		m.Policy = ByCapacity
	}
	if _, err := ParsePolicy(string(m.Policy)); err != nil {
		return nil, err
	}
	if len(m.Shards) < 1 {
		return nil, errors.New("cluster: manifest: no shards")
	}
	seen := make(map[string]int, len(m.Shards))
	var total int64
	for s := range m.Shards {
		e := &m.Shards[s]
		if e.Addr == "" || strings.ContainsAny(e.Addr, " \t\r\n") {
			return nil, fmt.Errorf("cluster: manifest: shard %d: bad addr %q", s, e.Addr)
		}
		// Two shards on one endpoint would double-count its bytes: every
		// placement would write the same array twice under different
		// local offsets and the capacities would lie.
		if prev, dup := seen[e.Addr]; dup {
			return nil, fmt.Errorf("cluster: manifest: shards %d and %d share addr %q", prev, s, e.Addr)
		}
		seen[e.Addr] = s
		if e.Units < 1 {
			return nil, fmt.Errorf("cluster: manifest: shard %d: %d units, want >= 1", s, e.Units)
		}
		if e.State == "" {
			e.State = ShardHealthy
		}
		if !validShardState(e.State) {
			return nil, fmt.Errorf("cluster: manifest: shard %d: unknown state %q", s, e.State)
		}
		if e.ParityShards < 0 || e.ParityShards > code.MaxParityShards {
			return nil, fmt.Errorf("cluster: manifest: shard %d: parity shards %d outside [0,%d]", s, e.ParityShards, code.MaxParityShards)
		}
		// Format 1 predates the codec fields: a version-1 document
		// carrying more than the implicit single-parity XOR tolerance is
		// corrupt or hand-skewed, not old.
		if m.Version < 2 && (e.ParityShards > 1 || (e.Codec != "" && e.Codec != "xor")) {
			return nil, fmt.Errorf("cluster: manifest: shard %d: version %d cannot carry codec %q / parity shards %d (format 2 fields)", s, m.Version, e.Codec, e.ParityShards)
		}
		if e.Codec != "" {
			ps := e.ParityShards
			if ps == 0 {
				ps = 1
			}
			if _, err := code.New(e.Codec, ps); err != nil {
				return nil, fmt.Errorf("cluster: manifest: shard %d: %w", s, err)
			}
		}
		if e.Units > (1<<56)/m.UnitBytes {
			return nil, fmt.Errorf("cluster: manifest: shard %d: %d x %d bytes implausibly large", s, e.Units, m.UnitBytes)
		}
		total += e.Units
		if total > (1<<56)/m.UnitBytes {
			return nil, fmt.Errorf("cluster: manifest: %d total units of %d bytes implausibly large", total, m.UnitBytes)
		}
	}
	// The map construction enforces the remaining geometry (cycle table
	// bounds); running it here means an accepted manifest always opens.
	if _, err := m.Map(); err != nil {
		return nil, err
	}
	return m, nil
}

// encode renders the manifest as the canonical on-disk JSON, stamped
// with the oldest format version that can represent it: format 1
// unless some shard records codec info, so clusters of classic XOR
// shards stay readable by pre-format-2 binaries.
func (m *Manifest) encode() ([]byte, error) {
	out := m.Clone()
	out.Version = 1
	for s := range out.Shards {
		if e := &out.Shards[s]; e.Codec != "" || e.ParityShards > 1 {
			out.Version = 2
			break
		}
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("cluster: manifest: %w", err)
	}
	return append(b, '\n'), nil
}

// WriteFile atomically replaces path with the manifest: write a staging
// file beside it, then rename, so a crash at any point leaves either the
// old or the new manifest — never a torn one.
func (m *Manifest) WriteFile(path string) error {
	if _, err := DecodeManifest(mustEncode(m)); err != nil {
		return fmt.Errorf("cluster: WriteFile: refusing to write invalid manifest: %w", err)
	}
	b, err := m.encode()
	if err != nil {
		return err
	}
	tmp := path + manifestTmpSuffix
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

func mustEncode(m *Manifest) []byte {
	b, err := m.encode()
	if err != nil {
		return nil
	}
	return b
}

// ReadFile loads and validates the manifest at path. A leftover staging
// file beside it is ignored (it lost the race to the rename).
func ReadFile(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := DecodeManifest(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return m, nil
}
