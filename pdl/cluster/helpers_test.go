package cluster

import "testing"

// testFanClient builds a Client with the span machinery wired but no
// network: exactly what plan/stage/gather/scatter/confirmed touch.
func testFanClient(t *testing.T, unitBytes int64, units []int64, policy Policy) *Client {
	t.Helper()
	m, err := NewMap(unitBytes, units, policy)
	if err != nil {
		t.Fatal(err)
	}
	c := &Client{m: m, shards: make([]shardConn, len(units))}
	c.fanPool.New = func() any {
		n := len(c.shards)
		return &fanout{
			touched: make([]bool, n),
			lo:      make([]int64, n),
			hi:      make([]int64, n),
			buf:     make([][]byte, n),
			errs:    make([]error, n),
		}
	}
	return c
}
