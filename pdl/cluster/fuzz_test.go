package cluster_test

import (
	"encoding/json"
	"testing"

	"repro/pdl/cluster"
)

// FuzzDecodeClusterManifest throws arbitrary bytes at the cluster.json
// decoder: it must error cleanly on hostile, truncated, or
// version-skewed documents — never panic or index out of range — and
// anything it accepts must build a shard map and survive an
// encode/decode round trip with the validated invariants intact. Run as
// a CI smoke alongside FuzzDecodeRequest and FuzzOpenManifest.
func FuzzDecodeClusterManifest(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"version": 99}`))
	f.Add([]byte(`{"version": 1, "unit_bytes": 4096, "shards": []}`))
	f.Add([]byte(`{"version": 1, "unit_bytes": 4096, "policy": "round-robin",
		"shards": [{"addr": "a:1", "units": 8}, {"addr": "b:1", "units": 16}]}`))
	f.Add([]byte(`{"version": 1, "unit_bytes": 65536, "policy": "capacity",
		"shards": [{"addr": "a:1", "units": 3, "state": "healthy"},
		           {"addr": "b:1", "units": 5, "state": "degraded"},
		           {"addr": "c:1", "units": 7, "state": "rebuilding"},
		           {"addr": "d:1", "units": 9, "state": "down"}]}`))
	f.Add([]byte(`{"version": 1, "unit_bytes": 16,
		"shards": [{"addr": "a:1", "units": 2097152}, {"addr": "b:1", "units": 2097153}]}`))
	f.Add([]byte(`{"version": 1, "unit_bytes": 4096,
		"shards": [{"addr": "a:1", "units": 4}, {"addr": "a:1", "units": 4}]}`))
	f.Add([]byte(`{"version": 2, "unit_bytes": 4096,
		"shards": [{"addr": "a:1", "units": 8, "codec": "rs", "parity_shards": 2},
		           {"addr": "b:1", "units": 8}]}`))
	f.Add([]byte(`{"version": 1, "unit_bytes": 4096,
		"shards": [{"addr": "a:1", "units": 4, "codec": "rs", "parity_shards": 2}]}`))
	f.Add([]byte(`{"version": 2, "unit_bytes": 4096,
		"shards": [{"addr": "a:1", "units": 4, "codec": "raid6", "parity_shards": -3}]}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		m, err := cluster.DecodeManifest(body)
		if err != nil {
			return
		}
		// Accepted manifests satisfy the invariants Open relies on.
		if m.Version < 1 || m.Version > cluster.FormatVersion || m.UnitBytes < 1 || len(m.Shards) < 1 {
			t.Fatalf("decoder accepted out-of-invariant manifest: %+v", m)
		}
		mp, err := m.Map()
		if err != nil {
			t.Fatalf("accepted manifest does not map: %v", err)
		}
		if mp.Shards() != len(m.Shards) || mp.Size() < 1 {
			t.Fatalf("map geometry inconsistent: %d shards, %d bytes", mp.Shards(), mp.Size())
		}
		re, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		again, err := cluster.DecodeManifest(re)
		if err != nil {
			t.Fatalf("re-encoded manifest rejected: %v", err)
		}
		if again.Version != m.Version || again.UnitBytes != m.UnitBytes ||
			again.Policy != m.Policy || len(again.Shards) != len(m.Shards) {
			t.Fatalf("round trip diverges:\n in %+v\nout %+v", m, again)
		}
	})
}
