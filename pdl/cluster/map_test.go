package cluster_test

import (
	"testing"

	"repro/pdl/cluster"
)

// TestMapCoverage is the map's core property test: under both policies
// and a spread of capacities, Locate is a bijection from namespace
// shard-units onto per-shard local unit ranges — every shard's local
// units are hit exactly once, in increasing order (the contiguity
// property the client's one-ReadAt-per-shard fan-out relies on).
func TestMapCoverage(t *testing.T) {
	cases := []struct {
		name   string
		units  []int64
		policy cluster.Policy
	}{
		{"equal-rr", []int64{8, 8, 8}, cluster.RoundRobin},
		{"unequal-rr", []int64{8, 5, 9}, cluster.RoundRobin},
		{"single", []int64{7}, cluster.ByCapacity},
		{"equal-cap", []int64{6, 6, 6, 6}, cluster.ByCapacity},
		{"weighted", []int64{4, 8, 12}, cluster.ByCapacity},
		{"coprime", []int64{3, 5, 7}, cluster.ByCapacity},
		{"skewed", []int64{1, 1, 30}, cluster.ByCapacity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := cluster.NewMap(16, tc.units, tc.policy)
			if err != nil {
				t.Fatal(err)
			}
			// Expected addressable units per shard.
			want := make([]int64, len(tc.units))
			var total int64
			switch tc.policy {
			case cluster.RoundRobin:
				lo := tc.units[0]
				for _, u := range tc.units {
					lo = min(lo, u)
				}
				for s := range want {
					want[s] = lo
				}
				total = lo * int64(len(tc.units))
			case cluster.ByCapacity:
				for s, u := range tc.units {
					want[s] = u
					total += u
				}
			}
			if m.Units() != total {
				t.Fatalf("Units() = %d, want %d", m.Units(), total)
			}
			if m.Size() != total*16 {
				t.Fatalf("Size() = %d, want %d", m.Size(), total*16)
			}
			for s := range want {
				if got := m.ShardUnits(s); got != want[s] {
					t.Fatalf("ShardUnits(%d) = %d, want %d", s, got, want[s])
				}
			}
			// Bijection + monotonicity: walking the namespace in order,
			// each shard's local units appear as 0,1,2,... exactly once.
			next := make([]int64, len(tc.units))
			for u := int64(0); u < m.Units(); u++ {
				s, local := m.Locate(u)
				if s < 0 || s >= len(tc.units) {
					t.Fatalf("unit %d: shard %d out of range", u, s)
				}
				if local != next[s] {
					t.Fatalf("unit %d: shard %d local %d, want %d (not contiguous)", u, s, local, next[s])
				}
				next[s]++
			}
			for s := range next {
				if next[s] != want[s] {
					t.Fatalf("shard %d covered %d locals, want %d", s, next[s], want[s])
				}
			}
		})
	}
}

// TestMapRoundRobinOrder pins the equal-weight degenerate case: plain
// round-robin in shard order, so placement is obvious and stable.
func TestMapRoundRobinOrder(t *testing.T) {
	m, err := cluster.NewMap(4, []int64{5, 5, 5}, cluster.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	for u := int64(0); u < m.Units(); u++ {
		s, local := m.Locate(u)
		if s != int(u%3) || local != u/3 {
			t.Fatalf("Locate(%d) = (%d,%d), want (%d,%d)", u, s, local, u%3, u/3)
		}
	}
}

// TestMapInterleaving checks smooth weighting: with weights 1:3, the
// heavy shard never takes a whole cycle in one block (the light shard
// appears within every window of 4).
func TestMapInterleaving(t *testing.T) {
	m, err := cluster.NewMap(4, []int64{2, 6}, cluster.ByCapacity)
	if err != nil {
		t.Fatal(err)
	}
	window := 0
	for u := int64(0); u < m.Units(); u++ {
		s, _ := m.Locate(u)
		if s == 0 {
			window = 0
		} else if window++; window >= 4 {
			t.Fatalf("shard 1 took %d consecutive units at %d: not interleaved", window, u)
		}
	}
}

// TestLocateRange checks the piece decomposition: pieces tile the span
// exactly, never cross a shard-unit boundary, and agree with Locate.
func TestLocateRange(t *testing.T) {
	const unit = 16
	m, err := cluster.NewMap(unit, []int64{4, 8, 12}, cluster.ByCapacity)
	if err != nil {
		t.Fatal(err)
	}
	spans := []struct{ off, n int64 }{
		{0, m.Size()},
		{0, 1},
		{unit - 1, 2},
		{unit, unit},
		{3, 5 * unit},
		{m.Size() - 1, 1},
		{7, m.Size() - 7},
	}
	for _, sp := range spans {
		off := sp.off
		left := sp.n
		m.LocateRange(sp.off, sp.n, func(shard int, local, spanOff int64, n int) {
			if spanOff != off {
				t.Fatalf("span [%d,%d): piece at %d, want %d (not tiling)", sp.off, sp.off+sp.n, spanOff, off)
			}
			if n < 1 || int64(n) > unit {
				t.Fatalf("piece length %d outside (0,%d]", n, unit)
			}
			if spanOff/unit != (spanOff+int64(n)-1)/unit {
				t.Fatalf("piece [%d,%d) crosses a shard-unit boundary", spanOff, spanOff+int64(n))
			}
			ws, wl := m.Locate(spanOff / unit)
			if shard != ws || local != wl*unit+spanOff%unit {
				t.Fatalf("piece at %d: (%d,%d), Locate says (%d,%d)", spanOff, shard, local, ws, wl*unit+spanOff%unit)
			}
			off += int64(n)
			left -= int64(n)
		})
		if left != 0 {
			t.Fatalf("span [%d,%d): %d bytes not covered", sp.off, sp.off+sp.n, left)
		}
	}
}

// TestNewMapValidation rejects hostile or nonsensical geometry.
func TestNewMapValidation(t *testing.T) {
	cases := []struct {
		name      string
		unitBytes int64
		units     []int64
		policy    cluster.Policy
	}{
		{"zero-unit", 0, []int64{4}, cluster.ByCapacity},
		{"no-shards", 16, nil, cluster.ByCapacity},
		{"zero-capacity", 16, []int64{4, 0}, cluster.ByCapacity},
		{"negative-capacity", 16, []int64{-1}, cluster.ByCapacity},
		{"bad-policy", 16, []int64{4}, cluster.Policy("hash-ring")},
		{"coprime-blowup", 16, []int64{1 << 21, 1<<21 + 1}, cluster.ByCapacity},
		{"byte-overflow", 1 << 30, []int64{1 << 33}, cluster.ByCapacity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := cluster.NewMap(tc.unitBytes, tc.units, tc.policy); err == nil {
				t.Fatalf("NewMap(%d, %v, %q) accepted", tc.unitBytes, tc.units, tc.policy)
			}
		})
	}
}
