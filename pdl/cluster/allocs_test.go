//go:build !race

// The allocs regression gate (CI) for the cluster client: the span
// machinery — locate, per-shard extent planning, staging, gather,
// scatter, and the confirmed-prefix accounting — runs at zero
// allocations per span in steady state. A full networked ReadAt/WriteAt
// additionally pays per-shard network bookkeeping (one goroutine spawn
// per touched shard and the serve client's own pooled call state);
// BenchmarkClusterReadAt records that residual in BENCH_cluster.json.
// Excluded under -race: sync.Pool randomly drops items under the race
// detector.

package cluster

import (
	"testing"
)

func TestSpanHotPathAllocs(t *testing.T) {
	const unitBytes = 4096
	c := testFanClient(t, unitBytes, []int64{64, 128, 192}, ByCapacity)
	m := c.m

	if n := testing.AllocsPerRun(500, func() {
		m.Locate(137)
	}); n != 0 {
		t.Errorf("Locate allocates %v/op, want 0", n)
	}

	// An unaligned span over several shard-units, warm pool and staging.
	p := make([]byte, 3*unitBytes)
	off := int64(unitBytes/2 + 3)
	roundTrip := func() {
		fo := c.getFan()
		c.plan(fo, off, int64(len(p)))
		c.stage(fo)
		c.gather(fo, p, off)
		c.scatter(fo, p, off)
		if _, err := c.confirmed(fo, off, int64(len(p))); err != nil {
			t.Fatal(err)
		}
		c.putFan(fo)
	}
	roundTrip()
	if n := testing.AllocsPerRun(500, roundTrip); n != 0 {
		t.Errorf("span plan/stage/gather/scatter/confirm allocates %v/op, want 0", n)
	}
}
