package cluster_test

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"time"

	"repro/pdl/cluster"
	"repro/pdl/serve"
)

// TestClusterProperty is the client's core correctness test: random
// reads and writes at arbitrary (unaligned) offsets and lengths against
// a live multi-shard cluster must behave exactly like the same
// operations against one flat byte slice. Run under both policies.
func TestClusterProperty(t *testing.T) {
	for _, policy := range []cluster.Policy{cluster.ByCapacity, cluster.RoundRobin} {
		t.Run(string(policy), func(t *testing.T) {
			const unitBytes = 64 // 2 array units per shard-unit
			tc := startCluster(t, unitBytes, []int64{8, 12, 16}, policy, serve.Config{QueueDepth: 16, FlushDelay: -1})
			c := tc.open(t, cluster.Options{})

			if c.Shards() != 3 {
				t.Fatalf("Shards() = %d, want 3", c.Shards())
			}
			size := c.Size()
			if want := c.Map().Units() * unitBytes; size != want {
				t.Fatalf("Size() = %d, want %d", size, want)
			}

			mirror := make([]byte, size)
			rng := rand.New(rand.NewSource(int64(len(policy)) * 41))
			buf := make([]byte, 5*unitBytes)
			for op := 0; op < 400; op++ {
				off := rng.Int63n(size)
				n := 1 + rng.Int63n(int64(len(buf)))
				if off+n > size {
					n = size - off
				}
				p := buf[:n]
				if rng.Intn(2) == 0 {
					rng.Read(p)
					if wn, err := c.WriteAt(p, off); err != nil || wn != len(p) {
						t.Fatalf("op %d: WriteAt(%d B @ %d) = %d, %v", op, n, off, wn, err)
					}
					copy(mirror[off:], p)
				} else {
					if rn, err := c.ReadAt(p, off); err != nil || rn != len(p) {
						t.Fatalf("op %d: ReadAt(%d B @ %d) = %d, %v", op, n, off, rn, err)
					}
					if !bytes.Equal(p, mirror[off:off+n]) {
						t.Fatalf("op %d: read [%d,%d) diverges from mirror", op, off, off+n)
					}
				}
			}

			// Full-namespace sweep, bit-exact against the mirror.
			all := make([]byte, size)
			if n, err := c.ReadAt(all, 0); err != nil || int64(n) != size {
				t.Fatalf("sweep: %d, %v", n, err)
			}
			if !bytes.Equal(all, mirror) {
				t.Fatal("namespace diverges from mirror after random traffic")
			}

			// Every shard's array still satisfies parity.
			for s, ts := range tc.shards {
				if err := ts.store.VerifyParity(); err != nil {
					t.Fatalf("shard %d parity: %v", s, err)
				}
			}
		})
	}
}

// TestClusterBounds pins edge semantics: EOF-prefix reads, rejected
// writes past the end, negative offsets, and empty spans.
func TestClusterBounds(t *testing.T) {
	const unitBytes = 64
	tc := startCluster(t, unitBytes, []int64{4, 4}, cluster.ByCapacity, serve.Config{FlushDelay: -1})
	c := tc.open(t, cluster.Options{})
	size := c.Size()

	pattern := make([]byte, size)
	for i := range pattern {
		pattern[i] = byte(i*7 + 3)
	}
	if _, err := c.WriteAt(pattern, 0); err != nil {
		t.Fatal(err)
	}

	// Read crossing the end returns the available prefix and io.EOF.
	p := make([]byte, 100)
	n, err := c.ReadAt(p, size-10)
	if n != 10 || err != io.EOF {
		t.Fatalf("tail read = %d, %v; want 10, EOF", n, err)
	}
	if !bytes.Equal(p[:10], pattern[size-10:]) {
		t.Fatal("tail read bytes diverge")
	}
	// At or past the end: immediate EOF.
	if n, err := c.ReadAt(p, size); n != 0 || err != io.EOF {
		t.Fatalf("read at end = %d, %v; want 0, EOF", n, err)
	}
	// Negative offsets are errors, not EOF.
	if _, err := c.ReadAt(p, -1); err == nil || err == io.EOF {
		t.Fatalf("negative read offset: %v", err)
	}
	// Writes never extend the namespace.
	if _, err := c.WriteAt(p, size-10); err == nil {
		t.Fatal("write past end accepted")
	}
	if _, err := c.WriteAt(p, -1); err == nil {
		t.Fatal("negative write offset accepted")
	}
	// Empty spans are cheap no-ops.
	if n, err := c.ReadAt(nil, 0); n != 0 || err != nil {
		t.Fatalf("empty read = %d, %v", n, err)
	}
	if n, err := c.WriteAt(nil, 0); n != 0 || err != nil {
		t.Fatalf("empty write = %d, %v", n, err)
	}
}

// TestOpenValidation: Open refuses geometry the live shards cannot
// serve, identifying the offending shard.
func TestOpenValidation(t *testing.T) {
	tc := startCluster(t, 64, []int64{4, 4}, cluster.ByCapacity, serve.Config{FlushDelay: -1})

	// Shard-unit not a multiple of the array's stripe unit.
	man := tc.man.Clone()
	man.UnitBytes = shardStoreUnit + 8
	var se *cluster.ShardError
	if _, err := cluster.Open(man, cluster.Options{}); !errors.As(err, &se) {
		t.Fatalf("misaligned unit: %v, want ShardError", err)
	}

	// Manifest placing more bytes than the shard's array holds (rounded
	// to shard 0's 4 units so the map itself still builds).
	man = tc.man.Clone()
	over := tc.shards[1].store.Size()/man.UnitBytes + 1
	man.Shards[1].Units = (over + 3) / 4 * 4
	se = nil
	if _, err := cluster.Open(man, cluster.Options{}); !errors.As(err, &se) || se.Shard != 1 {
		t.Fatalf("oversized placement: %v, want ShardError on shard 1", err)
	}

	// An unreachable shard fails Open (strict connect), naming the shard.
	man = tc.man.Clone()
	man.Shards[0].Addr = "127.0.0.1:1"
	se = nil
	if _, err := cluster.Open(man, cluster.Options{DialTimeout: 500 * time.Millisecond}); !errors.As(err, &se) || se.Shard != 0 {
		t.Fatalf("unreachable shard: %v, want ShardError on shard 0", err)
	}
}

// TestClusterStats: per-shard stats reflect traffic and live server
// state, including a degraded shard.
func TestClusterStats(t *testing.T) {
	tc := startCluster(t, 64, []int64{6, 6, 6}, cluster.RoundRobin, serve.Config{FlushDelay: -1})
	c := tc.open(t, cluster.Options{})

	p := make([]byte, c.Size())
	if _, err := c.WriteAt(p, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadAt(p, 0); err != nil {
		t.Fatal(err)
	}

	if err := tc.shards[1].store.Fail(2); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if len(st) != 3 {
		t.Fatalf("%d shard stats, want 3", len(st))
	}
	for s, ss := range st {
		if ss.Addr != tc.shards[s].addr {
			t.Errorf("shard %d addr %q, want %q", s, ss.Addr, tc.shards[s].addr)
		}
		if ss.Ops == 0 || ss.P50 == 0 || ss.Mean == 0 {
			t.Errorf("shard %d: no traffic recorded: %+v", s, ss)
		}
		want := cluster.ShardHealthy
		if s == 1 {
			want = cluster.ShardDegraded
		}
		if ss.State != want {
			t.Errorf("shard %d state %q, want %q", s, ss.State, want)
		}
		if ss.Server.Frontend.Submitted == 0 {
			t.Errorf("shard %d: server counters empty", s)
		}
	}

	// A degraded shard still serves: reads reconstruct through parity.
	if _, err := c.ReadAt(p, 0); err != nil {
		t.Fatalf("degraded read: %v", err)
	}
}
