package cluster

import (
	"sync"
	"testing"
	"time"
)

// TestStatsHistRace pins the fix for the non-atomic histogram read in
// Client.Stats: percentiles used to walk the buckets while shardDo legs
// recorded into them, and a rank computed from a newer count could run
// off the older bucket copy. On the shared obs.Hist the snapshot's
// ordering contract (count loaded before buckets) makes that impossible;
// this hammers Stats against concurrent recording under -race and checks
// the percentiles stay resolvable.
func TestStatsHistRace(t *testing.T) {
	c := testFanClient(t, 4096, []int64{64, 128}, ByCapacity)
	// No reachable shards: Stats probes fail fast (zero dial timeout) and
	// report ShardDown, which is fine — the histogram read is the point.
	c.man = &Manifest{Version: FormatVersion, UnitBytes: 4096,
		Shards: []ShardInfo{{Addr: "127.0.0.1:1"}, {Addr: "127.0.0.1:1"}}}
	c.opt.DialTimeout = time.Nanosecond

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for s := range c.shards {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sh := &c.shards[s]
			ns := int64(1)
			for {
				select {
				case <-stop:
					return
				default:
					sh.ops.Add(1)
					sh.hist.RecordNanos(ns)
					ns = ns<<1 | 1
					if ns > 1<<30 {
						ns = 1
					}
				}
			}
		}(s)
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		for _, st := range c.Stats() {
			if st.Ops > 0 && st.P99 == 0 {
				t.Fatalf("shard %s: p99 = 0 with %d ops: rank ran off the buckets", st.Addr, st.Ops)
			}
		}
	}
	close(stop)
	wg.Wait()
}
