package cluster_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/pdl/cluster"
	"repro/pdl/serve"
)

// TestShardReconnect: a shard server dies and comes back on the same
// port (a restarted pdlserve); in-budget operations ride the per-shard
// retry/reconnect path transparently, and Stats records the reconnect.
func TestShardReconnect(t *testing.T) {
	const unitBytes = 64
	tc := startCluster(t, unitBytes, []int64{6, 6}, cluster.ByCapacity, serve.Config{FlushDelay: -1})
	c := tc.open(t, cluster.Options{
		DialTimeout:  2 * time.Second,
		Retries:      6,
		RetryBackoff: 10 * time.Millisecond,
	})

	pattern := make([]byte, c.Size())
	for i := range pattern {
		pattern[i] = byte(i*11 + 5)
	}
	if _, err := c.WriteAt(pattern, 0); err != nil {
		t.Fatal(err)
	}

	// Kill shard 1's server; its store (and bytes) survive. Revive it
	// shortly after — within the read's retry budget.
	tc.shards[1].stopServer()
	go func() {
		time.Sleep(50 * time.Millisecond)
		tc.shards[1].restartServer()
	}()

	got := make([]byte, c.Size())
	if _, err := c.ReadAt(got, 0); err != nil {
		t.Fatalf("read across restart: %v", err)
	}
	if !bytes.Equal(got, pattern) {
		t.Fatal("bytes diverge after shard restart")
	}

	st := c.Stats()
	if st[1].Retries == 0 || st[1].Reconnects == 0 {
		t.Fatalf("shard 1 stats show no retry/reconnect: %+v", st[1])
	}
	if st[0].Retries != 0 {
		t.Fatalf("healthy shard 0 retried: %+v", st[0])
	}
}

// TestShardDownExhaustsBudget: with a shard gone for good, the retry
// budget runs out and the failure surfaces as a ShardError naming the
// shard, with the confirmed-prefix count for the span. Healthy shards
// keep serving their own pieces.
func TestShardDownExhaustsBudget(t *testing.T) {
	const unitBytes = 64
	tc := startCluster(t, unitBytes, []int64{6, 6}, cluster.ByCapacity, serve.Config{FlushDelay: -1})
	c := tc.open(t, cluster.Options{
		DialTimeout:  200 * time.Millisecond,
		Retries:      1,
		RetryBackoff: 5 * time.Millisecond,
	})

	pattern := make([]byte, c.Size())
	for i := range pattern {
		pattern[i] = byte(i*3 + 1)
	}
	if _, err := c.WriteAt(pattern, 0); err != nil {
		t.Fatal(err)
	}
	tc.shards[1].stopServer()

	// A namespace-wide read fails on shard 1 but confirms the contiguous
	// prefix before its first piece: under capacity policy with equal
	// weights the cycle is [0 1], so exactly the first shard-unit.
	got := make([]byte, c.Size())
	n, err := c.ReadAt(got, 0)
	var se *cluster.ShardError
	if !errors.As(err, &se) || se.Shard != 1 {
		t.Fatalf("read with dead shard: %d, %v; want ShardError on shard 1", n, err)
	}
	if n != unitBytes {
		t.Fatalf("confirmed prefix %d, want %d", n, unitBytes)
	}
	if !bytes.Equal(got[:n], pattern[:n]) {
		t.Fatal("confirmed prefix bytes diverge")
	}

	// A span placed entirely on the healthy shard is untouched by the
	// other failure domain: shard 0 owns even shard-units.
	if _, err := c.ReadAt(got[:unitBytes], 2*unitBytes); err != nil {
		t.Fatalf("healthy-shard read: %v", err)
	}
	if !bytes.Equal(got[:unitBytes], pattern[2*unitBytes:3*unitBytes]) {
		t.Fatal("healthy-shard bytes diverge")
	}

	// Stats reports the dead shard down, best-effort, without failing.
	st := c.Stats()
	if st[1].State != cluster.ShardDown {
		t.Fatalf("shard 1 state %q, want down", st[1].State)
	}
	if st[0].State != cluster.ShardHealthy {
		t.Fatalf("shard 0 state %q, want healthy", st[0].State)
	}
}
