package cluster_test

import (
	"bytes"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/pdl/cluster"
	"repro/pdl/serve"
	"repro/pdl/store"
)

// TestClusterSoak is the cluster's mid-traffic failure drill, run under
// -race in CI: workers on disjoint namespace slices hammer random spans
// through one shared client while one shard's disk fails and rebuilds
// online. The other shards are separate failure domains, so no operation
// may error at any point; afterward every slice must match its worker's
// mirror bit-exact and every shard's array must satisfy parity.
func TestClusterSoak(t *testing.T) {
	const (
		unitBytes = 64
		workers   = 6
	)
	// PDL_SOAK_OPS lengthens the drill for the nightly -race soak.
	opsPer := 200
	if v := os.Getenv("PDL_SOAK_OPS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			opsPer = n
		}
	}
	tc := startCluster(t, unitBytes, []int64{24, 36, 48}, cluster.ByCapacity,
		serve.Config{QueueDepth: 32, FlushDelay: 100 * time.Microsecond})
	c := tc.open(t, cluster.Options{})
	size := c.Size()

	// Disjoint half-open slices. Boundaries align to the 32 B array unit
	// (sub-unit writes are read-modify-write inside a shard, so two
	// workers sharing one array unit would race) but deliberately NOT to
	// the 64 B shard-unit, so worker spans cross shard boundaries
	// constantly.
	bounds := make([]int64, workers+1)
	for w := 1; w < workers; w++ {
		b := size * int64(w) / workers
		b -= b % shardStoreUnit
		if b%unitBytes == 0 {
			b += shardStoreUnit
		}
		bounds[w] = b
	}
	bounds[workers] = size

	mirrors := make([][]byte, workers)
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		lo, hi := bounds[w], bounds[w+1]
		mirrors[w] = make([]byte, hi-lo)
		wg.Add(1)
		go func(w int, lo, hi int64, mirror []byte) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*977 + 11))
			buf := make([]byte, 4*unitBytes)
			for op := 0; op < opsPer; op++ {
				span := hi - lo
				off := lo + rng.Int63n(span)
				n := 1 + rng.Int63n(int64(len(buf)))
				if off+n > hi {
					n = hi - off
				}
				p := buf[:n]
				if rng.Intn(2) == 0 {
					rng.Read(p)
					if _, err := c.WriteAt(p, off); err != nil {
						errc <- err
						return
					}
					copy(mirror[off-lo:], p)
				} else {
					if _, err := c.ReadAt(p, off); err != nil {
						errc <- err
						return
					}
					if !bytes.Equal(p, mirror[off-lo:off-lo+n]) {
						t.Errorf("worker %d: read [%d,%d) diverges mid-soak", w, off, off+n)
						return
					}
				}
			}
		}(w, lo, hi, mirrors[w])
	}

	// Mid-traffic: shard 1 loses a disk, serves degraded, then rebuilds
	// online onto a fresh replacement — all while spans keep landing on it.
	victim := tc.shards[1]
	time.Sleep(2 * time.Millisecond)
	if err := victim.store.Fail(3); err != nil {
		t.Error(err)
	}
	time.Sleep(2 * time.Millisecond)
	if err := victim.store.Rebuild(store.NewMemDisk(victim.diskBytes)); err != nil {
		t.Error(err)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatalf("operation failed during single-shard degradation: %v", err)
	}

	// Final sweep: the namespace equals the concatenated worker mirrors.
	got := make([]byte, size)
	if _, err := c.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		if !bytes.Equal(got[bounds[w]:bounds[w+1]], mirrors[w]) {
			t.Fatalf("worker %d slice [%d,%d) diverges after soak", w, bounds[w], bounds[w+1])
		}
	}
	// Every shard — including the rebuilt one — satisfies parity.
	for s, ts := range tc.shards {
		if err := ts.store.VerifyParity(); err != nil {
			t.Fatalf("shard %d parity after soak: %v", s, err)
		}
	}
	if failed := victim.store.Failed(); failed != -1 {
		t.Fatalf("victim shard still degraded: disk %d", failed)
	}
}
