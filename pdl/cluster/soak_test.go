package cluster_test

import (
	"testing"
	"time"

	"repro/pdl/cluster"
	"repro/pdl/scenario"
	"repro/pdl/scenario/scenariotest"
	"repro/pdl/serve"
)

// TestClusterSoak is the cluster's mid-traffic failure drill, run under
// -race in CI, scripted through the scenario engine: workers hammer
// 96-byte spans through one shared client — a multiple of the 32 B
// array unit (two workers sharing one would race on its read-modify-
// write) but deliberately unaligned with the 64 B shard-unit, so ops
// cross shard boundaries constantly — while shard 1 loses a disk and
// rebuilds online, both over the admin wire. The other shards are
// separate failure domains, so no operation may error in any phase
// (the zero-value SLO forbids errors); verify mode checks every read
// against the model and sweeps at the end, and the harness audits
// every shard's parity after the run. PDL_SCENARIO_OPS lengthens each
// phase for the nightly soak.
func TestClusterSoak(t *testing.T) {
	tc := scenariotest.StartCluster(t, scenariotest.Array{}, 64, []int64{24, 36, 48},
		cluster.ByCapacity, serve.Config{QueueDepth: 32, FlushDelay: 100 * time.Microsecond})
	tgt := tc.NewCluster(t, 96, cluster.Options{})
	ops := scenariotest.Ops(1000)
	load := scenario.Load{Workers: 6, Ops: ops, WriteFrac: 0.5}
	sc := &scenario.Scenario{
		Name:   "cluster-soak",
		Seed:   0x50AC,
		Verify: true,
		Phases: []scenario.Phase{
			{Name: "healthy", Load: load, SLO: &scenario.SLO{}},
			{
				Name:   "degraded",
				Load:   load,
				Events: []scenario.Event{{Action: scenario.ActFail, Shard: 1, Disk: 3, AtOps: ops / 10}},
				SLO:    &scenario.SLO{},
			},
			{
				Name:   "rebuild",
				Load:   load,
				Events: []scenario.Event{{Action: scenario.ActRebuild, Shard: 1, AtOps: ops / 10}},
				SLO:    &scenario.SLO{RequireHealthy: true},
			},
			{Name: "rebuilt", Load: load, SLO: &scenario.SLO{RequireHealthy: true}},
		},
	}
	rep := scenariotest.Run(t, sc, tgt)
	for i := range rep.Phases {
		if rep.Phases[i].Errors != 0 {
			t.Fatalf("phase %q saw %d errors during single-shard degradation",
				rep.Phases[i].Name, rep.Phases[i].Errors)
		}
	}
}
