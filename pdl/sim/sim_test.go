package sim_test

import (
	"testing"

	"repro/pdl"
	"repro/pdl/layout"
	"repro/pdl/plan"
	"repro/pdl/sim"
)

func newArray(t *testing.T, cfg sim.Config) *sim.Array {
	t.Helper()
	res, err := pdl.Build(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sim.New(res.Layout, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestExecuteStageBarrier pins the engine's dependency semantics: stage 1
// steps start only after every stage 0 step finished, even on idle disks.
func TestExecuteStageBarrier(t *testing.T) {
	a := newArray(t, sim.Config{ServiceTime: 5})
	p := plan.Plan{Steps: []plan.Step{
		{Unit: layout.Unit{Disk: 0}, Stage: 0},
		{Unit: layout.Unit{Disk: 1}, Stage: 0},
		{Unit: layout.Unit{Disk: 2}, Write: true, Stage: 1},
	}}
	done := a.Execute(&p, 10)
	// Reads finish at 15; the write starts at 15 and finishes at 20.
	if done != 20 {
		t.Errorf("completion %d, want 20", done)
	}
	if a.Stats[2].Writes != 1 || a.Stats[0].Reads != 1 || a.Stats[1].Reads != 1 {
		t.Errorf("stats not charged per step: %+v", a.Stats)
	}
}

// TestExecuteQueuesPerDisk pins FIFO queueing: two same-stage steps on
// one disk serialize.
func TestExecuteQueuesPerDisk(t *testing.T) {
	a := newArray(t, sim.Config{ServiceTime: 3})
	p := plan.Plan{Steps: []plan.Step{
		{Unit: layout.Unit{Disk: 4}, Stage: 0},
		{Unit: layout.Unit{Disk: 4}, Stage: 0},
	}}
	if done := a.Execute(&p, 0); done != 6 {
		t.Errorf("two serialized reads complete at %d, want 6", done)
	}
}

// TestConvenienceMethodsMatchExplicitPlans drives the same operations
// through the convenience methods and through Planner+Execute on a twin
// array, expecting identical completion times and disk stats.
func TestConvenienceMethodsMatchExplicitPlans(t *testing.T) {
	auto := newArray(t, sim.Config{})
	manual := newArray(t, sim.Config{})
	if err := auto.Fail(2); err != nil {
		t.Fatal(err)
	}
	if err := manual.Fail(2); err != nil {
		t.Fatal(err)
	}
	var p plan.Plan
	var tick int64
	for logical := 0; logical < auto.DataUnits(); logical += 3 {
		wantRead, err := auto.ReadLogical(logical, tick)
		if err != nil {
			t.Fatal(err)
		}
		if err := manual.Planner().Read(logical, manual.Failed, &p); err != nil {
			t.Fatal(err)
		}
		if got := manual.Execute(&p, tick); got != wantRead {
			t.Fatalf("logical %d: explicit read plan completes at %d, ReadLogical at %d", logical, got, wantRead)
		}
		wantWrite, err := auto.WriteLogical(logical, tick)
		if err != nil {
			t.Fatal(err)
		}
		if err := manual.Planner().Write(logical, manual.Failed, &p); err != nil {
			t.Fatal(err)
		}
		if got := manual.Execute(&p, tick); got != wantWrite {
			t.Fatalf("logical %d: explicit write plan completes at %d, WriteLogical at %d", logical, got, wantWrite)
		}
		tick += 2
	}
	for d := range auto.Stats {
		if auto.Stats[d] != manual.Stats[d] {
			t.Fatalf("disk %d stats diverge: %+v vs %+v", d, auto.Stats[d], manual.Stats[d])
		}
	}
}

// TestRebuildOfflineMatchesPlanSchedule checks the simulator's rebuild
// read counts equal the compiled schedule's.
func TestRebuildOfflineMatchesPlanSchedule(t *testing.T) {
	a := newArray(t, sim.Config{Copies: 2})
	rb, err := a.Planner().Rebuild(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.RebuildOffline(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for d, n := range res.PerDiskReads {
		if rb.Reads[d] != n {
			t.Errorf("disk %d: schedule %d reads, simulator %d", d, rb.Reads[d], n)
		}
		if a.Stats[d].Reads != n {
			t.Errorf("disk %d: stats %d reads, result %d", d, a.Stats[d].Reads, n)
		}
	}
	if res.MaxSurvivorReads != rb.MaxSurvivorReads() {
		t.Errorf("max survivor reads %d vs schedule %d", res.MaxSurvivorReads, rb.MaxSurvivorReads())
	}
}
