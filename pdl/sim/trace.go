package sim

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// The trace format is the bridge between live serving and the scenario
// engine: a serve.Frontend records the request stream it actually
// admitted into a compact binary trace, and the engine (or pdlserve
// loadgen -replay) replays it later against any target — with the
// original inter-arrival timing, or scaled by a speed multiplier.
//
// Format (version 1), little-endian varints throughout:
//
//	"PDLT" magic | u8 version | uvarint unitSize
//	per op: u8 flags (bit0 write, bit1 background) |
//	        uvarint logical | uvarint delta-nanos since previous op
//
// The stream is append-only and self-delimiting: a reader consumes ops
// until EOF, so a truncated trace yields its complete prefix.

// traceMagic brands a trace stream.
const traceMagic = "PDLT"

// TraceVersion is the newest trace format this package reads and
// writes. Decoding rejects traces from a newer format with
// ErrTraceVersion rather than guessing.
const TraceVersion = 1

// ErrTraceVersion reports a trace written by a newer format than this
// build reads; it supports errors.Is.
var ErrTraceVersion = errors.New("unsupported trace format version")

// maxTraceUnitSize bounds the recorded unit size against hostile
// traces (1 GiB is far beyond any sane stripe unit).
const maxTraceUnitSize = 1 << 30

// maxTraceLogical bounds a recorded address against hostile traces.
const maxTraceLogical = 1 << 56

// Trace flag bits.
const (
	traceFlagWrite      = 1 << 0
	traceFlagBackground = 1 << 1
	traceFlagMax        = traceFlagWrite | traceFlagBackground
)

// TraceOp is one recorded request: the operation, whether it rode the
// background class, and its arrival delay after the previous op.
type TraceOp struct {
	Op

	// Background marks an op admitted on the maintenance class.
	Background bool

	// Delta is the inter-arrival time since the previous recorded op
	// (zero for the first). Replay sleeps Delta/speed between ops.
	Delta time.Duration
}

// Trace is a fully-decoded request trace.
type Trace struct {
	// UnitSize is the payload size the recording server served; replay
	// targets should serve the same unit size for a faithful replay.
	UnitSize int

	// Ops is the request stream in arrival order.
	Ops []TraceOp
}

// Duration is the trace's recorded wall-clock span: the sum of every
// inter-arrival delta.
func (t *Trace) Duration() time.Duration {
	var d time.Duration
	for i := range t.Ops {
		d += t.Ops[i].Delta
	}
	return d
}

// TraceWriter streams ops into the binary trace format. It is safe for
// concurrent use: a serve.Frontend records from many submitter
// goroutines, and arrival order is whatever order they reach the
// writer's lock — the order the server admitted them.
type TraceWriter struct {
	mu   sync.Mutex
	bw   *bufio.Writer
	last time.Time
	n    int64
	err  error
	tmp  [2 * binary.MaxVarintLen64]byte
}

// NewTraceWriter starts a version-1 trace on w for a server of the
// given unit size. Call Flush when recording ends.
func NewTraceWriter(w io.Writer, unitSize int) (*TraceWriter, error) {
	if unitSize < 1 || unitSize > maxTraceUnitSize {
		return nil, fmt.Errorf("sim: trace: unit size %d outside [1,%d]", unitSize, maxTraceUnitSize)
	}
	tw := &TraceWriter{bw: bufio.NewWriter(w)}
	var hdr []byte
	hdr = append(hdr, traceMagic...)
	hdr = append(hdr, TraceVersion)
	hdr = binary.AppendUvarint(hdr, uint64(unitSize))
	if _, err := tw.bw.Write(hdr); err != nil {
		return nil, fmt.Errorf("sim: trace: %w", err)
	}
	return tw, nil
}

// Record appends one op stamped at time now. The first recorded op
// carries a zero delta; later deltas are measured from the previous
// Record call's stamp. Errors are sticky and also returned by Flush.
func (tw *TraceWriter) Record(kind OpKind, logical int, background bool, now time.Time) error {
	if logical < 0 || int64(logical) >= maxTraceLogical {
		return fmt.Errorf("sim: trace: logical %d out of range", logical)
	}
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if tw.err != nil {
		return tw.err
	}
	var delta time.Duration
	if tw.n > 0 {
		if delta = now.Sub(tw.last); delta < 0 {
			delta = 0
		}
	}
	tw.last = now
	tw.n++
	var flags byte
	if kind == Write {
		flags |= traceFlagWrite
	}
	if background {
		flags |= traceFlagBackground
	}
	if err := tw.bw.WriteByte(flags); err != nil {
		tw.err = fmt.Errorf("sim: trace: %w", err)
		return tw.err
	}
	b := binary.AppendUvarint(tw.tmp[:0], uint64(logical))
	b = binary.AppendUvarint(b, uint64(delta.Nanoseconds()))
	if _, err := tw.bw.Write(b); err != nil {
		tw.err = fmt.Errorf("sim: trace: %w", err)
	}
	return tw.err
}

// Ops returns how many ops have been recorded.
func (tw *TraceWriter) Ops() int64 {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	return tw.n
}

// Flush drains buffered bytes to the underlying writer and reports any
// sticky recording error. The writer stays usable afterward.
func (tw *TraceWriter) Flush() error {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if tw.err != nil {
		return tw.err
	}
	if err := tw.bw.Flush(); err != nil {
		tw.err = fmt.Errorf("sim: trace: %w", err)
	}
	return tw.err
}

// DecodeTrace parses a complete binary trace. It never panics on
// hostile input: truncated headers, flag garbage, or out-of-range
// fields return errors (FuzzDecodeTrace pins this). A stream truncated
// mid-op returns the decoded prefix alongside io.ErrUnexpectedEOF.
func DecodeTrace(b []byte) (*Trace, error) {
	if len(b) < len(traceMagic)+1 {
		return nil, errors.New("sim: trace: short header")
	}
	if string(b[:len(traceMagic)]) != traceMagic {
		return nil, errors.New("sim: trace: bad magic")
	}
	version := b[len(traceMagic)]
	if version < 1 {
		return nil, fmt.Errorf("sim: trace: bad version %d", version)
	}
	if version > TraceVersion {
		return nil, fmt.Errorf("sim: trace: %w: format %d, this build reads <= %d", ErrTraceVersion, version, TraceVersion)
	}
	rest := b[len(traceMagic)+1:]
	unit, n := binary.Uvarint(rest)
	if n <= 0 || unit < 1 || unit > maxTraceUnitSize {
		return nil, fmt.Errorf("sim: trace: bad unit size")
	}
	rest = rest[n:]
	t := &Trace{UnitSize: int(unit)}
	for len(rest) > 0 {
		flags := rest[0]
		rest = rest[1:]
		if flags > traceFlagMax {
			return t, fmt.Errorf("sim: trace: op %d: bad flags %#x", len(t.Ops), flags)
		}
		logical, n := binary.Uvarint(rest)
		if n <= 0 {
			return t, fmt.Errorf("sim: trace: op %d: %w", len(t.Ops), io.ErrUnexpectedEOF)
		}
		rest = rest[n:]
		delta, n := binary.Uvarint(rest)
		if n <= 0 {
			return t, fmt.Errorf("sim: trace: op %d: %w", len(t.Ops), io.ErrUnexpectedEOF)
		}
		rest = rest[n:]
		if logical >= maxTraceLogical {
			return t, fmt.Errorf("sim: trace: op %d: logical %d out of range", len(t.Ops), logical)
		}
		if delta > uint64(int64(1)<<62) {
			return t, fmt.Errorf("sim: trace: op %d: delta %d out of range", len(t.Ops), delta)
		}
		kind := Read
		if flags&traceFlagWrite != 0 {
			kind = Write
		}
		t.Ops = append(t.Ops, TraceOp{
			Op:         Op{Kind: kind, Logical: int(logical)},
			Background: flags&traceFlagBackground != 0,
			Delta:      time.Duration(delta),
		})
	}
	return t, nil
}

// ReadTrace is DecodeTrace over a reader.
func ReadTrace(r io.Reader) (*Trace, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("sim: trace: %w", err)
	}
	return DecodeTrace(b)
}

// Encode renders the trace back into the binary format, so recorded
// streams can be edited programmatically and re-saved. It emits the
// deltas verbatim (including a nonzero first delta, which a TraceWriter
// never produces but the format can carry), so decode→encode is
// byte-exact for every decodable trace.
func (t *Trace) Encode() ([]byte, error) {
	if t.UnitSize < 1 || t.UnitSize > maxTraceUnitSize {
		return nil, fmt.Errorf("sim: trace: unit size %d outside [1,%d]", t.UnitSize, maxTraceUnitSize)
	}
	var b []byte
	b = append(b, traceMagic...)
	b = append(b, TraceVersion)
	b = binary.AppendUvarint(b, uint64(t.UnitSize))
	for i := range t.Ops {
		op := &t.Ops[i]
		if op.Logical < 0 || int64(op.Logical) >= maxTraceLogical {
			return nil, fmt.Errorf("sim: trace: op %d: logical %d out of range", i, op.Logical)
		}
		if op.Delta < 0 {
			return nil, fmt.Errorf("sim: trace: op %d: negative delta %v", i, op.Delta)
		}
		var flags byte
		if op.Kind == Write {
			flags |= traceFlagWrite
		}
		if op.Background {
			flags |= traceFlagBackground
		}
		b = append(b, flags)
		b = binary.AppendUvarint(b, uint64(op.Logical))
		b = binary.AppendUvarint(b, uint64(op.Delta.Nanoseconds()))
	}
	return b, nil
}

// TraceGenerator replays a trace's op stream through the Generator
// interface, ignoring timing (the scenario engine handles pacing when
// timing matters). It wraps around at the end of the trace.
type TraceGenerator struct {
	t   *Trace
	pos int
}

// NewTraceGenerator returns a Generator cycling through t's ops. The
// trace must be non-empty.
func NewTraceGenerator(t *Trace) *TraceGenerator {
	if len(t.Ops) == 0 {
		panic("sim: NewTraceGenerator: empty trace")
	}
	return &TraceGenerator{t: t}
}

// Next implements Generator.
func (g *TraceGenerator) Next() Op {
	op := g.t.Ops[g.pos].Op
	g.pos = (g.pos + 1) % len(g.t.Ops)
	return op
}

// Name implements Generator.
func (g *TraceGenerator) Name() string {
	return fmt.Sprintf("trace(%d ops)", len(g.t.Ops))
}
