package sim

import (
	"fmt"
	"math"
	"strings"
)

// OpKind distinguishes reads from writes.
type OpKind int

const (
	// Read is a data-unit read.
	Read OpKind = iota
	// Write is a data-unit write (read-modify-write at the array).
	Write
)

// Op is one client operation on a logical data unit.
type Op struct {
	Kind    OpKind
	Logical int
}

// Generator produces a deterministic operation stream.
type Generator interface {
	// Next returns the next operation.
	Next() Op
	// Name identifies the generator in experiment tables.
	Name() string
}

// RNG is a xorshift64* pseudorandom generator: deterministic, seedable,
// dependency-free. The zero value is invalid; use NewRNG.
type RNG struct {
	state uint64
}

// NewRNG returns a seeded generator.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next raw value.
func (r *RNG) Uint64() uint64 {
	r.state ^= r.state >> 12
	r.state ^= r.state << 25
	r.state ^= r.state >> 27
	return r.state * 2685821657736338717
}

// Intn returns a value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("sim: Intn(%d): n must be positive", n))
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Uniform generates uniformly random addresses with the given write
// fraction (0 = read-only, 1 = write-only).
type Uniform struct {
	rng       *RNG
	n         int
	writeFrac float64
}

// NewUniform returns a uniform generator over n logical units.
func NewUniform(n int, writeFrac float64, seed uint64) *Uniform {
	if n < 1 {
		panic("sim: NewUniform: n must be >= 1")
	}
	if writeFrac < 0 || writeFrac > 1 {
		panic("sim: NewUniform: write fraction outside [0,1]")
	}
	return &Uniform{rng: NewRNG(seed), n: n, writeFrac: writeFrac}
}

// Next implements Generator.
func (u *Uniform) Next() Op {
	kind := Read
	if u.rng.Float64() < u.writeFrac {
		kind = Write
	}
	return Op{Kind: kind, Logical: u.rng.Intn(u.n)}
}

// Name implements Generator.
func (u *Uniform) Name() string { return fmt.Sprintf("uniform(w=%.2f)", u.writeFrac) }

// Sequential generates a sequential scan, wrapping at n.
type Sequential struct {
	n, pos int
	kind   OpKind
}

// NewSequential returns a sequential generator (all reads or all writes).
func NewSequential(n int, kind OpKind) *Sequential {
	if n < 1 {
		panic("sim: NewSequential: n must be >= 1")
	}
	return &Sequential{n: n, kind: kind}
}

// Next implements Generator.
func (s *Sequential) Next() Op {
	op := Op{Kind: s.kind, Logical: s.pos}
	s.pos = (s.pos + 1) % s.n
	return op
}

// Name implements Generator.
func (s *Sequential) Name() string { return "sequential" }

// Zipf generates Zipf-skewed addresses (hot spots), with exponent theta
// (0 = uniform, ~1 = classic web skew) and the given write fraction.
type Zipf struct {
	rng       *RNG
	cdf       []float64
	writeFrac float64
	theta     float64
}

// NewZipf returns a Zipf generator over n logical units.
func NewZipf(n int, theta, writeFrac float64, seed uint64) *Zipf {
	if n < 1 {
		panic("sim: NewZipf: n must be >= 1")
	}
	if theta < 0 {
		panic("sim: NewZipf: theta must be >= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), theta)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{rng: NewRNG(seed), cdf: cdf, writeFrac: writeFrac, theta: theta}
}

// Next implements Generator.
func (z *Zipf) Next() Op {
	kind := Read
	if z.rng.Float64() < z.writeFrac {
		kind = Write
	}
	u := z.rng.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return Op{Kind: kind, Logical: lo}
}

// Name implements Generator.
func (z *Zipf) Name() string { return fmt.Sprintf("zipf(θ=%.2f,w=%.2f)", z.theta, z.writeFrac) }

// Mix interleaves several generators with fixed weights — e.g. a mostly
// sequential backup stream plus a Zipf online workload. Selection is
// deterministic from the seed.
type Mix struct {
	rng  *RNG
	gens []Generator
	cum  []float64
}

// NewMix returns a weighted mix of generators. Weights must be positive;
// they are normalized internally.
func NewMix(seed uint64, gens []Generator, weights []float64) *Mix {
	if len(gens) == 0 || len(gens) != len(weights) {
		panic("sim: NewMix: need matching non-empty generators and weights")
	}
	total := 0.0
	for _, w := range weights {
		if w <= 0 {
			panic("sim: NewMix: weights must be positive")
		}
		total += w
	}
	cum := make([]float64, len(weights))
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cum[i] = acc
	}
	cum[len(cum)-1] = 1.0
	return &Mix{rng: NewRNG(seed), gens: gens, cum: cum}
}

// Next implements Generator.
func (m *Mix) Next() Op {
	u := m.rng.Float64()
	for i, c := range m.cum {
		if u < c {
			return m.gens[i].Next()
		}
	}
	return m.gens[len(m.gens)-1].Next()
}

// Name implements Generator.
func (m *Mix) Name() string {
	names := make([]string, len(m.gens))
	for i, g := range m.gens {
		names[i] = g.Name()
	}
	return fmt.Sprintf("mix(%s)", strings.Join(names, "+"))
}
