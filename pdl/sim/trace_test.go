package sim

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

// TestTraceRoundTrip records a mixed stream and decodes it back
// byte-exact: kinds, classes, addresses, and inter-arrival deltas.
func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, 4096)
	if err != nil {
		t.Fatal(err)
	}
	type rec struct {
		kind    OpKind
		logical int
		bg      bool
		delta   time.Duration
	}
	recs := []rec{
		{Read, 0, false, 0},
		{Write, 7, false, 125 * time.Microsecond},
		{Write, 1 << 20, true, 3 * time.Second},
		{Read, 42, true, 0},
		{Read, 999999, false, time.Nanosecond},
	}
	at := time.Unix(1000, 0)
	for i, r := range recs {
		if i > 0 {
			at = at.Add(r.delta)
		}
		if err := tw.Record(r.kind, r.logical, r.bg, at); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := tw.Ops(); got != int64(len(recs)) {
		t.Fatalf("Ops() = %d, want %d", got, len(recs))
	}

	tr, err := DecodeTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if tr.UnitSize != 4096 {
		t.Fatalf("unit size = %d, want 4096", tr.UnitSize)
	}
	if len(tr.Ops) != len(recs) {
		t.Fatalf("decoded %d ops, want %d", len(tr.Ops), len(recs))
	}
	for i, r := range recs {
		op := tr.Ops[i]
		if op.Kind != r.kind || op.Logical != r.logical || op.Background != r.bg || op.Delta != r.delta {
			t.Errorf("op %d = %+v, want %+v", i, op, r)
		}
	}
	if want := 3*time.Second + 125*time.Microsecond + time.Nanosecond; tr.Duration() != want {
		t.Errorf("Duration() = %v, want %v", tr.Duration(), want)
	}

	// Encode reproduces the original bytes exactly.
	again, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, buf.Bytes()) {
		t.Error("Encode() diverges from the recorded bytes")
	}
}

// TestTraceTruncated proves a stream cut mid-op yields its complete
// prefix plus io.ErrUnexpectedEOF — a crashed recorder loses at most
// the op it was writing.
func TestTraceTruncated(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, 64)
	if err != nil {
		t.Fatal(err)
	}
	at := time.Unix(0, 0)
	for i := 0; i < 10; i++ {
		at = at.Add(time.Millisecond)
		if err := tw.Record(Write, 1000+i, false, at); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	tr, err := DecodeTrace(full[:len(full)-1])
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated decode err = %v, want ErrUnexpectedEOF", err)
	}
	if len(tr.Ops) != 9 {
		t.Fatalf("truncated decode kept %d ops, want 9", len(tr.Ops))
	}
}

// TestTraceHostile pins the validation errors: bad magic, version skew,
// flag garbage, and out-of-range fields never panic.
func TestTraceHostile(t *testing.T) {
	cases := map[string][]byte{
		"empty":      nil,
		"short":      []byte("PD"),
		"bad magic":  []byte("XXXX\x01\x40"),
		"version 0":  []byte("PDLT\x00\x40"),
		"bad unit":   []byte("PDLT\x01\x00"),
		"bad flags":  append([]byte("PDLT\x01\x40"), 0xFF, 0, 0),
		"cut varint": append([]byte("PDLT\x01\x40"), 0x01, 0x80),
		"huge address": append([]byte("PDLT\x01\x40"),
			0x01, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F, 0x00),
	}
	for name, b := range cases {
		if _, err := DecodeTrace(b); err == nil {
			t.Errorf("%s: decode accepted hostile input", name)
		}
	}
	skew := []byte("PDLT\x09\x40")
	if _, err := DecodeTrace(skew); !errors.Is(err, ErrTraceVersion) {
		t.Errorf("version skew err = %v, want ErrTraceVersion", err)
	}
}

// TestTraceGenerator replays the op stream through the Generator
// interface, wrapping at the end.
func TestTraceGenerator(t *testing.T) {
	tr := &Trace{UnitSize: 32, Ops: []TraceOp{
		{Op: Op{Kind: Read, Logical: 3}},
		{Op: Op{Kind: Write, Logical: 5}},
	}}
	g := NewTraceGenerator(tr)
	want := []Op{{Read, 3}, {Write, 5}, {Read, 3}}
	for i, w := range want {
		if got := g.Next(); got != w {
			t.Errorf("op %d = %+v, want %+v", i, got, w)
		}
	}
	if g.Name() == "" {
		t.Error("empty Name")
	}
}

// FuzzDecodeTrace pins that hostile trace bytes never panic the
// decoder, and that whatever decodes re-encodes to an equal trace.
func FuzzDecodeTrace(f *testing.F) {
	var buf bytes.Buffer
	tw, _ := NewTraceWriter(&buf, 512)
	at := time.Unix(0, 0)
	for i := 0; i < 5; i++ {
		at = at.Add(time.Duration(i) * time.Millisecond)
		tw.Record(OpKind(i%2), i*17, i%3 == 0, at)
	}
	tw.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte("PDLT\x01\x40"))
	f.Add([]byte("PDLT\x02\x40\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, b []byte) {
		tr, err := DecodeTrace(b)
		if err != nil {
			return
		}
		enc, err := tr.Encode()
		if err != nil {
			t.Fatalf("decoded trace failed to encode: %v", err)
		}
		tr2, err := DecodeTrace(enc)
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		if tr.UnitSize != tr2.UnitSize || len(tr.Ops) != len(tr2.Ops) {
			t.Fatalf("round trip diverges: %d/%d ops", len(tr.Ops), len(tr2.Ops))
		}
		for i := range tr.Ops {
			if tr.Ops[i] != tr2.Ops[i] {
				t.Fatalf("op %d diverges: %+v vs %+v", i, tr.Ops[i], tr2.Ops[i])
			}
		}
	})
}
