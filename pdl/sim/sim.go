// Package sim is the event-driven disk-array simulator the paper's
// evaluation runs on: offline and online rebuild, client workloads
// (healthy or degraded), latency statistics, and deterministic workload
// generators, all driven by a pdl/layout.Layout.
//
// The simulator is an execution engine for pdl/plan: every client
// operation is compiled into a physical I/O plan by a plan.Planner and
// executed against the timing model, so the request logic (degraded
// fan-out, read-modify-write ordering, rebuild schedules) lives in the
// reusable plan layer rather than in the simulator.
//
// The time model is timestamp propagation: a request issued at time t to
// disk d starts at max(t, d.busyUntil) and occupies the disk for
// ServiceTime ticks. Plan stages propagate completion times (a small
// write's parity write waits for its two reads). This is a deterministic,
// work-conserving approximation of a FIFO disk queue — sufficient for the
// relative comparisons the paper makes (who wins and by what factor), not
// for absolute latency calibration.
package sim

import (
	"fmt"

	"repro/pdl"
	"repro/pdl/layout"
	"repro/pdl/plan"
)

// Config parametrizes the array model.
type Config struct {
	// ServiceTime is ticks per unit read or write. Default 1.
	ServiceTime int64
	// Seek, when non-nil, adds a positioning cost on top of ServiceTime:
	// Base + PerUnit * |offset - head| ticks, with the head left at the
	// request's offset. This is the seek-aware ablation model; nil keeps
	// the constant-service model.
	Seek *SeekParams
	// Copies tiles the layout vertically: each disk holds Copies * Size
	// units (the paper's multiple-copies-for-larger-disks deployment).
	// Default 1.
	Copies int
}

// SeekParams describes the optional seek-distance cost model.
type SeekParams struct {
	Base    int64
	PerUnit float64
}

// DiskStats accumulates per-disk counters.
type DiskStats struct {
	Reads, Writes int64
	BusyTime      int64
}

// Array simulates a disk array under a layout. It executes pdl/plan
// plans; the convenience methods (ReadLogical, WriteLogical, ...) compile
// and execute in one call.
type Array struct {
	L       *layout.Layout
	Mapping *layout.Mapping
	// Mapper is the address translator plans are compiled against
	// (geometry Copies * layout size).
	Mapper pdl.Mapper
	cfg    Config
	pln    *plan.Planner
	// scratch is the reusable per-operation plan.
	scratch plan.Plan
	// busyUntil per disk.
	busyUntil []int64
	// head tracks each disk's last serviced offset (seek model).
	head  []int
	Stats []DiskStats
	// Failed marks a failed disk (-1 = healthy array).
	Failed int
}

// New builds a simulator for a layout with assigned parity.
func New(l *layout.Layout, cfg Config) (*Array, error) {
	m, err := layout.NewMapping(l)
	if err != nil {
		return nil, err
	}
	if cfg.ServiceTime <= 0 {
		cfg.ServiceTime = 1
	}
	if cfg.Copies <= 0 {
		cfg.Copies = 1
	}
	mapper, err := pdl.NewMapperFromMapping(m, l.Size*cfg.Copies)
	if err != nil {
		return nil, err
	}
	return &Array{
		L:         l,
		Mapping:   m,
		Mapper:    mapper,
		cfg:       cfg,
		pln:       plan.NewPlanner(mapper),
		busyUntil: make([]int64, l.V),
		head:      make([]int, l.V),
		Stats:     make([]DiskStats, l.V),
		Failed:    -1,
	}, nil
}

// Planner returns the plan compiler the array executes. It shares the
// array's Mapper; use it to inspect the plans behind the convenience
// methods (e.g. for tracing).
func (a *Array) Planner() *plan.Planner { return a.pln }

// Reset clears disk state and statistics.
func (a *Array) Reset() {
	for i := range a.busyUntil {
		a.busyUntil[i] = 0
		a.head[i] = 0
		a.Stats[i] = DiskStats{}
	}
	a.Failed = -1
}

// Fail marks a disk as failed; subsequent reads of its units go degraded.
func (a *Array) Fail(disk int) error {
	if disk < 0 || disk >= a.L.V {
		return fmt.Errorf("sim: Fail(%d): disk out of range", disk)
	}
	a.Failed = disk
	return nil
}

// Issue schedules one unit operation at a specific offset of a disk at
// earliest time t and returns its completion time, applying the seek
// model when configured. It is the engine's scheduling primitive; plans
// are sequences of Issue calls with stage barriers.
func (a *Array) Issue(disk, offset int, t int64, write bool) int64 {
	start := t
	if a.busyUntil[disk] > start {
		start = a.busyUntil[disk]
	}
	service := a.cfg.ServiceTime
	if a.cfg.Seek != nil {
		dist := offset - a.head[disk]
		if dist < 0 {
			dist = -dist
		}
		service += a.cfg.Seek.Base + int64(a.cfg.Seek.PerUnit*float64(dist))
		a.head[disk] = offset
	}
	finish := start + service
	a.busyUntil[disk] = finish
	if write {
		a.Stats[disk].Writes++
	} else {
		a.Stats[disk].Reads++
	}
	a.Stats[disk].BusyTime += service
	return finish
}

// Execute runs a compiled plan starting at time t and returns its
// completion time. Steps within a stage are issued concurrently (subject
// to per-disk queueing); each stage starts when the previous stage's last
// step finished.
func (a *Array) Execute(p *plan.Plan, t int64) int64 {
	stageStart := t
	stageEnd := t
	var cur uint8
	for i := range p.Steps {
		s := &p.Steps[i]
		if s.Stage != cur {
			cur = s.Stage
			stageStart = stageEnd
		}
		if f := a.Issue(s.Disk, s.Offset, stageStart, s.Write); f > stageEnd {
			stageEnd = f
		}
	}
	return stageEnd
}

// DiskUnits returns the simulated per-disk capacity in units.
func (a *Array) DiskUnits() int { return a.L.Size * a.cfg.Copies }

// DataUnits returns the logical data capacity across all copies.
func (a *Array) DataUnits() int { return a.Mapping.DataUnits() * a.cfg.Copies }

// ReadLogical simulates a client read arriving at time t and returns its
// completion time. Healthy path: one unit read. Degraded path (unit on the
// failed disk): read every surviving unit of the stripe (XOR
// reconstruction on the fly).
func (a *Array) ReadLogical(logical int, t int64) (int64, error) {
	if err := a.pln.Read(logical, a.Failed, &a.scratch); err != nil {
		return 0, err
	}
	return a.Execute(&a.scratch, t), nil
}

// WriteLogical simulates a client small write arriving at time t: read old
// data and old parity, then write new data and new parity (the Figure 1
// read-modify-write). Degraded variants:
//   - data disk failed: reconstruct-write — read surviving data units of
//     the stripe, then write parity only;
//   - parity disk failed: write data only.
//
// Returns the completion time.
func (a *Array) WriteLogical(logical int, t int64) (int64, error) {
	if err := a.pln.Write(logical, a.Failed, &a.scratch); err != nil {
		return 0, err
	}
	return a.Execute(&a.scratch, t), nil
}

// WriteFullStripe simulates a large write covering every data unit of the
// stripe holding `logical` (the Condition 5 "Large Write Optimization"):
// parity is computed from the new data alone, so the stripe's k units are
// written with NO pre-reads — k writes vs 4 ops per unit for small
// writes. Returns the completion time.
func (a *Array) WriteFullStripe(logical int, t int64) (int64, error) {
	if err := a.pln.FullStripeWrite(logical, a.Failed, &a.scratch); err != nil {
		return 0, err
	}
	return a.Execute(&a.scratch, t), nil
}

// RebuildResult reports an offline reconstruction.
type RebuildResult struct {
	Failed       int
	PerDiskReads []int64
	// MaxSurvivorReads is the bottleneck read count (determines rebuild
	// time when disks run in parallel).
	MaxSurvivorReads int64
	// SurvivorFraction is the bottleneck fraction of a surviving disk read.
	SurvivorFraction float64
	// Makespan is the simulated completion time.
	Makespan int64
}

// RebuildOffline simulates reconstructing a failed disk with no competing
// traffic: every stripe crossing the failed disk reads all its surviving
// units (writes to the replacement disk are not modeled — the paper's
// metric is survivor read load).
func (a *Array) RebuildOffline(failed int, start int64) (RebuildResult, error) {
	rb, err := a.pln.Rebuild(failed)
	if err != nil {
		return RebuildResult{}, fmt.Errorf("sim: RebuildOffline: %w", err)
	}
	res := RebuildResult{Failed: failed, PerDiskReads: rb.Reads}
	var makespan int64
	for i := range rb.Plans {
		if f := a.Execute(&rb.Plans[i], start); f > makespan {
			makespan = f
		}
	}
	res.MaxSurvivorReads = rb.MaxSurvivorReads()
	res.SurvivorFraction = float64(res.MaxSurvivorReads) / float64(a.DiskUnits())
	res.Makespan = makespan - start
	return res, nil
}

// WorkloadResult reports a served client workload.
type WorkloadResult struct {
	Ops          int
	TotalLatency int64
	MaxLatency   int64
	// Completion is the time the last operation finished.
	Completion int64
	// PerDiskBusy is each disk's total busy time.
	PerDiskBusy []int64
	// Latencies holds every operation latency for percentile reporting.
	Latencies *LatencyRecorder
}

// AvgLatency returns mean operation latency in ticks.
func (r WorkloadResult) AvgLatency() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.TotalLatency) / float64(r.Ops)
}

// serveOne compiles and executes one client operation at time t.
func (a *Array) serveOne(op Op, t int64) (int64, error) {
	switch op.Kind {
	case Read:
		return a.ReadLogical(op.Logical, t)
	case Write:
		return a.WriteLogical(op.Logical, t)
	}
	return t, nil
}

// ServeWorkload issues n operations from gen, one every interArrival
// ticks, and reports latency statistics. Run Fail beforehand to measure
// degraded mode.
func (a *Array) ServeWorkload(gen Generator, n int, interArrival int64) (WorkloadResult, error) {
	res := WorkloadResult{Ops: n, PerDiskBusy: make([]int64, a.L.V), Latencies: &LatencyRecorder{}}
	var t int64
	for i := 0; i < n; i++ {
		done, err := a.serveOne(gen.Next(), t)
		if err != nil {
			return res, err
		}
		lat := done - t
		res.Latencies.Record(lat)
		res.TotalLatency += lat
		if lat > res.MaxLatency {
			res.MaxLatency = lat
		}
		if done > res.Completion {
			res.Completion = done
		}
		t += interArrival
	}
	for d := range res.PerDiskBusy {
		res.PerDiskBusy[d] = a.Stats[d].BusyTime
	}
	return res, nil
}

// RebuildOnline simulates reconstruction competing with a client workload:
// client ops arrive every interArrival ticks while rebuild reads for the
// failed disk are issued in the gaps (one stripe per client op, round
// robin), modeling a rebuild throttled to client activity. Returns the
// client result and the rebuild result.
func (a *Array) RebuildOnline(gen Generator, nOps int, interArrival int64, failed int) (WorkloadResult, RebuildResult, error) {
	if err := a.Fail(failed); err != nil {
		return WorkloadResult{}, RebuildResult{}, err
	}
	rb, err := a.pln.Rebuild(failed)
	if err != nil {
		return WorkloadResult{}, RebuildResult{}, fmt.Errorf("sim: RebuildOnline: %w", err)
	}
	cres := WorkloadResult{Ops: nOps, PerDiskBusy: make([]int64, a.L.V), Latencies: &LatencyRecorder{}}
	rres := RebuildResult{Failed: failed, PerDiskReads: rb.Reads}
	var t int64
	nextStripe := 0
	var rebuildDone int64
	for i := 0; i < nOps; i++ {
		done, err := a.serveOne(gen.Next(), t)
		if err != nil {
			return cres, rres, err
		}
		lat := done - t
		cres.Latencies.Record(lat)
		cres.TotalLatency += lat
		if lat > cres.MaxLatency {
			cres.MaxLatency = lat
		}
		if done > cres.Completion {
			cres.Completion = done
		}
		// Issue one rebuild stripe in the gap.
		if nextStripe < len(rb.Plans) {
			if f := a.Execute(&rb.Plans[nextStripe], t); f > rebuildDone {
				rebuildDone = f
			}
			nextStripe++
		}
		t += interArrival
	}
	// Drain remaining rebuild stripes.
	for ; nextStripe < len(rb.Plans); nextStripe++ {
		if f := a.Execute(&rb.Plans[nextStripe], t); f > rebuildDone {
			rebuildDone = f
		}
	}
	rres.MaxSurvivorReads = rb.MaxSurvivorReads()
	rres.SurvivorFraction = float64(rres.MaxSurvivorReads) / float64(a.DiskUnits())
	rres.Makespan = rebuildDone
	for d := range cres.PerDiskBusy {
		cres.PerDiskBusy[d] = a.Stats[d].BusyTime
	}
	return cres, rres, nil
}

// ParityContention serves a pure small-write workload and returns the
// maximum and mean per-disk write counts — the Condition 2 bottleneck
// measure: disks holding more parity absorb more parity-update writes.
func (a *Array) ParityContention(gen Generator, n int) (maxWrites int64, meanWrites float64, err error) {
	if _, err := a.ServeWorkload(gen, n, 1); err != nil {
		return 0, 0, err
	}
	var total int64
	for d := range a.Stats {
		w := a.Stats[d].Writes
		total += w
		if w > maxWrites {
			maxWrites = w
		}
	}
	return maxWrites, float64(total) / float64(a.L.V), nil
}
