// Package sim is the public surface of the event-driven disk-array
// simulator the paper's evaluation runs on: offline and online rebuild,
// client workloads (healthy or degraded), and latency statistics, all
// driven by a pdl/layout.Layout.
package sim

import (
	"repro/internal/disksim"
	"repro/internal/workload"
	"repro/pdl/layout"
)

// Array is a simulated disk array governed by a layout.
type Array = disksim.Array

// Config tunes the simulator (service time, seek model, copies per disk).
type Config = disksim.Config

// SeekParams enables the seek-aware service-time model.
type SeekParams = disksim.SeekParams

// DiskStats accumulates per-disk counters during a run.
type DiskStats = disksim.DiskStats

// RebuildResult reports a reconstruction run (survivor reads, makespan).
type RebuildResult = disksim.RebuildResult

// WorkloadResult reports a client-workload run (latency distribution).
type WorkloadResult = disksim.WorkloadResult

// LatencyRecorder collects latencies and reports percentiles.
type LatencyRecorder = disksim.LatencyRecorder

// New builds a simulated array over a layout with assigned parity.
func New(l *layout.Layout, cfg Config) (*Array, error) {
	return disksim.New(l, cfg)
}

// Generator produces a stream of client operations.
type Generator = workload.Generator

// Op is one client operation (read or write of a logical unit).
type Op = workload.Op

// OpKind distinguishes reads from writes.
type OpKind = workload.OpKind

// Operation kinds.
const (
	Read  = workload.Read
	Write = workload.Write
)

// NewUniform returns a uniformly random workload over n logical units
// with the given write fraction, deterministic for a fixed seed.
func NewUniform(n int, writeFrac float64, seed uint64) Generator {
	return workload.NewUniform(n, writeFrac, seed)
}

// NewSequential returns a sequential scan workload over n logical units.
func NewSequential(n int, kind OpKind) Generator {
	return workload.NewSequential(n, kind)
}

// NewZipf returns a Zipf-skewed (hot-spot) workload over n logical units
// with exponent theta, deterministic for a fixed seed.
func NewZipf(n int, theta, writeFrac float64, seed uint64) Generator {
	return workload.NewZipf(n, theta, writeFrac, seed)
}
