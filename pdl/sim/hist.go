package sim

import "sort"

// LatencyRecorder accumulates operation latencies and reports percentiles.
// It stores raw samples (simulations here are small); Percentile uses the
// nearest-rank method.
type LatencyRecorder struct {
	samples []int64
	sorted  bool
}

// Record adds one latency sample.
func (r *LatencyRecorder) Record(lat int64) {
	r.samples = append(r.samples, lat)
	r.sorted = false
}

// Count returns the number of samples.
func (r *LatencyRecorder) Count() int { return len(r.samples) }

// Percentile returns the p-th percentile (0 < p <= 100) by nearest rank,
// or 0 with no samples.
func (r *LatencyRecorder) Percentile(p float64) int64 {
	if len(r.samples) == 0 || p <= 0 || p > 100 {
		return 0
	}
	if !r.sorted {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
		r.sorted = true
	}
	rank := int(p/100*float64(len(r.samples))+0.9999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(r.samples) {
		rank = len(r.samples) - 1
	}
	return r.samples[rank]
}

// Mean returns the average latency.
func (r *LatencyRecorder) Mean() float64 {
	if len(r.samples) == 0 {
		return 0
	}
	var total int64
	for _, s := range r.samples {
		total += s
	}
	return float64(total) / float64(len(r.samples))
}
