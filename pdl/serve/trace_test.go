package serve_test

import (
	"bytes"
	"context"
	"testing"

	"repro/pdl/serve"
	"repro/pdl/sim"
)

// TestFrontendRecordTrace attaches a trace recorder to a Frontend,
// drives a mixed request stream through it, and asserts the decoded
// trace reproduces that stream: kinds, classes, and addresses in
// admission order, at the server's unit size.
func TestFrontendRecordTrace(t *testing.T) {
	const unitSize = 64
	f := mustFrontend(t, 13, 4, 2, unitSize, serve.Config{FlushDelay: -1})
	ctx := context.Background()
	buf := make([]byte, unitSize)

	// A few unrecorded ops first: recording starts where RecordTrace is
	// called, not at Frontend birth.
	for i := 0; i < 3; i++ {
		if err := f.Write(ctx, i, payload(buf, i)); err != nil {
			t.Fatal(err)
		}
	}

	var rec bytes.Buffer
	tw, err := sim.NewTraceWriter(&rec, unitSize)
	if err != nil {
		t.Fatal(err)
	}
	f.RecordTrace(tw)

	type sub struct {
		kind    serve.Kind
		logical int
		class   serve.Class
	}
	subs := []sub{
		{serve.Write, 5, serve.Foreground},
		{serve.Read, 5, serve.Foreground},
		{serve.Write, 9, serve.Background},
		{serve.Read, 0, serve.Background},
		{serve.Read, 5, serve.Foreground},
	}
	for _, s := range subs {
		err := f.Do(ctx, serve.Op{Kind: s.kind, Logical: s.logical, Class: s.class, Buf: payload(buf, s.logical)})
		if err != nil {
			t.Fatal(err)
		}
	}

	// Detach, then prove post-detach ops are not recorded.
	f.RecordTrace(nil)
	if err := f.Write(ctx, 1, payload(buf, 1)); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if tw.Ops() != int64(len(subs)) {
		t.Fatalf("recorded %d ops, want %d", tw.Ops(), len(subs))
	}

	tr, err := sim.DecodeTrace(rec.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if tr.UnitSize != unitSize {
		t.Fatalf("trace unit size = %d, want %d", tr.UnitSize, unitSize)
	}
	if len(tr.Ops) != len(subs) {
		t.Fatalf("decoded %d ops, want %d", len(tr.Ops), len(subs))
	}
	for i, s := range subs {
		op := tr.Ops[i]
		wantKind := sim.Read
		if s.kind == serve.Write {
			wantKind = sim.Write
		}
		if op.Kind != wantKind || op.Logical != s.logical || op.Background != (s.class == serve.Background) {
			t.Errorf("op %d = %+v, want %+v", i, op, s)
		}
	}
}
