package serve_test

import (
	"bufio"
	"bytes"
	"net"
	"sync"
	"testing"

	"repro/pdl/serve"
	"repro/pdl/serve/wire"
)

// rawV1Client speaks wire v1 by hand over one TCP connection — the
// protocol exactly as the previous client generation emitted it (plain
// OpInfo with Arg 0, one frame per request, synchronous) — so the tests
// prove a v2 server still serves v1 peers bit-for-bit.
type rawV1Client struct {
	conn net.Conn
	br   *bufio.Reader
	id   uint64
}

func dialRawV1(t *testing.T, addr string) *rawV1Client {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &rawV1Client{conn: conn, br: bufio.NewReader(conn)}
}

// do sends one v1 request frame and decodes the one response frame.
func (r *rawV1Client) do(t *testing.T, op uint8, arg uint64, payload []byte) wire.Response {
	t.Helper()
	r.id++
	frame := wire.AppendRequest(nil, &wire.Request{ID: r.id, Op: op, Arg: arg, Payload: payload})
	if _, err := r.conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	body, err := wire.ReadFrame(r.br, nil)
	if err != nil {
		t.Fatal(err)
	}
	var resp wire.Response
	if err := wire.DecodeResponse(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != r.id {
		t.Fatalf("response id %d for request %d", resp.ID, r.id)
	}
	return resp
}

// TestInteropV1ClientAgainstV2Server drives a hand-rolled v1 client
// against the current server: the plain Info payload (no version
// extension), unit writes and reads, and error responses must all be
// exactly what a v1 peer expects.
func TestInteropV1ClientAgainstV2Server(t *testing.T) {
	const unitSize = 64
	f := mustFrontend(t, 13, 4, 1, unitSize, serve.Config{QueueDepth: 8, FlushDelay: -1})
	addr := startServer(t, f)
	rc := dialRawV1(t, addr)

	// Info with Arg 0 (no hello) must answer the 20-byte v1 payload.
	resp := rc.do(t, wire.OpInfo, 0, nil)
	if resp.Status != wire.StatusOK {
		t.Fatalf("info status %d: %s", resp.Status, resp.Payload)
	}
	var in wire.Info
	if err := wire.DecodeInfo(resp.Payload, &in); err != nil {
		t.Fatalf("info payload is not plain v1: %v (%d bytes)", err, len(resp.Payload))
	}
	if in.UnitSize != unitSize || in.Capacity != f.Store().Capacity() {
		t.Fatalf("v1 info diverges: %+v", in)
	}

	// Unit write and read round-trip.
	want := payload(make([]byte, unitSize), 7)
	if resp := rc.do(t, wire.OpWrite, 3, want); resp.Status != wire.StatusOK {
		t.Fatalf("write status %d: %s", resp.Status, resp.Payload)
	}
	resp = rc.do(t, wire.OpRead, 3, nil)
	if resp.Status != wire.StatusOK || !bytes.Equal(resp.Payload, want) {
		t.Fatalf("read diverges: status %d, %d bytes", resp.Status, len(resp.Payload))
	}

	// Server-side errors still come back as v1 StatusErr frames.
	if resp := rc.do(t, wire.OpRead, uint64(f.Store().Capacity()+1), nil); resp.Status != wire.StatusErr {
		t.Fatalf("out-of-range read: status %d, want StatusErr", resp.Status)
	}
}

// startV1Server runs a minimal wire-v1 server — ReadFrame + full
// DecodeRequest, one response frame per request, no v2 ops, and Info
// answered with the plain payload whatever Arg says — the behavior of
// the previous server generation. Unit payloads land in an in-memory
// map guarded by mu.
func startV1Server(t *testing.T, unitSize, capacity int) (addr string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var mu sync.Mutex
	units := make(map[int][]byte)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				br := bufio.NewReader(conn)
				var frame []byte
				for {
					body, err := wire.ReadFrame(br, frame)
					if err != nil {
						return
					}
					frame = body
					var req wire.Request
					if err := wire.DecodeRequest(body, &req); err != nil {
						return
					}
					resp := wire.Response{ID: req.ID, Status: wire.StatusOK}
					switch req.Op {
					case wire.OpInfo:
						// A v1 server ignores Arg: always the plain payload.
						resp.Payload = wire.AppendInfo(nil, &wire.Info{
							UnitSize: unitSize, Capacity: capacity, Disks: 13, Failed: -1,
						})
					case wire.OpRead:
						mu.Lock()
						b, ok := units[int(req.Arg)]
						mu.Unlock()
						if !ok {
							b = make([]byte, unitSize)
						}
						resp.Payload = b
					case wire.OpWrite:
						b := append([]byte(nil), req.Payload...)
						mu.Lock()
						units[int(req.Arg)] = b
						mu.Unlock()
					default:
						// v2 ops (spans, chunks) are unknown to a v1 server.
						resp.Status = wire.StatusErr
						resp.Payload = []byte("unknown op")
					}
					if _, err := conn.Write(wire.AppendResponse(nil, &resp)); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// TestInteropV2ClientAgainstV1Server dials a v1-only server with the
// current client: the handshake must downgrade (version 1, no
// features), and spans — which would use streaming frames against a v2
// server — must fall back to per-unit ops and still move the right
// bytes.
func TestInteropV2ClientAgainstV1Server(t *testing.T) {
	const unitSize, capacity = 64, 256
	addr := startV1Server(t, unitSize, capacity)
	c, err := serve.Dial(addr, serve.WithConns(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	if v := c.ProtocolVersion(); v != wire.Version1 {
		t.Fatalf("negotiated version %d against a v1 server", v)
	}
	if feats := c.Features(); feats != 0 {
		t.Fatalf("negotiated features %#x against a v1 server", feats)
	}
	if c.UnitSize() != unitSize || c.Capacity() != capacity {
		t.Fatalf("geometry diverges: unit %d capacity %d", c.UnitSize(), c.Capacity())
	}

	// Unit ops.
	want := payload(make([]byte, unitSize), 3)
	if err := c.Write(5, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, unitSize)
	if err := c.Read(5, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("unit round trip diverges")
	}

	// A big unaligned span: stream-eligible geometry, but the downgraded
	// client must route it through per-unit ops the v1 server understands.
	span := payload(make([]byte, 20*unitSize+17), 9)
	const off = int64(3*unitSize + 5)
	if n, err := c.WriteAt(span, off); err != nil || n != len(span) {
		t.Fatalf("span WriteAt: n=%d err=%v", n, err)
	}
	back := make([]byte, len(span))
	if n, err := c.ReadAt(back, off); err != nil || n != len(span) {
		t.Fatalf("span ReadAt: n=%d err=%v", n, err)
	}
	if !bytes.Equal(back, span) {
		t.Fatal("span round trip diverges through the v1 fallback")
	}
}
