package serve_test

import (
	"bytes"
	"io"
	"math/rand"
	"net"
	"testing"

	"repro/pdl"
	"repro/pdl/serve"
	"repro/pdl/store"
)

// spanHarness starts a MemDisk-backed server and a client for span tests.
func spanHarness(t *testing.T) *serve.Client {
	t.Helper()
	res, err := pdl.Build(13, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := store.Open(res, 2*res.Layout.Size, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	front := serve.New(s, serve.Config{QueueDepth: 32})
	t.Cleanup(func() { front.Close() })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(front)
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	c, err := serve.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestClientSpans drives the client-side striping path: random
// ReadAt/WriteAt spans (unaligned heads and tails, multi-stripe middles)
// over the wire against a flat mirror of the logical space.
func TestClientSpans(t *testing.T) {
	c := spanHarness(t)
	unit := c.UnitSize()
	size := c.Size()
	mirror := make([]byte, size)

	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 120; i++ {
		off := int64(rng.Intn(int(size)))
		n := rng.Intn(8*unit) + 1
		if off+int64(n) > size {
			n = int(size - off)
		}
		p := make([]byte, n)
		rng.Read(p)
		wn, err := c.WriteAt(p, off)
		if err != nil || wn != n {
			t.Fatalf("WriteAt(%d, %d): n=%d err=%v", off, n, wn, err)
		}
		copy(mirror[off:], p)

		roff := int64(rng.Intn(int(size)))
		rn := rng.Intn(8*unit) + 1
		if roff+int64(rn) > size {
			rn = int(size - roff)
		}
		got := make([]byte, rn)
		gn, err := c.ReadAt(got, roff)
		if err != nil || gn != rn {
			t.Fatalf("ReadAt(%d, %d): n=%d err=%v", roff, rn, gn, err)
		}
		if !bytes.Equal(got, mirror[roff:roff+int64(rn)]) {
			t.Fatalf("ReadAt(%d, %d) diverges from mirror", roff, rn)
		}
	}

	// A whole-array span in one call each way.
	big := make([]byte, size)
	rng.Read(big)
	if n, err := c.WriteAt(big, 0); err != nil || int64(n) != size {
		t.Fatalf("full WriteAt: n=%d err=%v", n, err)
	}
	copy(mirror, big)
	got := make([]byte, size)
	if n, err := c.ReadAt(got, 0); err != nil || int64(n) != size {
		t.Fatalf("full ReadAt: n=%d err=%v", n, err)
	}
	if !bytes.Equal(got, mirror) {
		t.Fatal("full-span round trip diverges")
	}

	// Span requests coalesce on the server: the batch counters must show
	// multi-op batches, not one batch per unit.
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Frontend.Batches == 0 || st.Frontend.BatchedOps <= st.Frontend.Batches {
		t.Errorf("span traffic did not batch: %d ops in %d batches", st.Frontend.BatchedOps, st.Frontend.Batches)
	}

	// EOF edges mirror store.ReadAt: crossing the end returns the prefix
	// and io.EOF; at or past the end returns 0, io.EOF.
	tail := make([]byte, 2*unit)
	n, err := c.ReadAt(tail, size-int64(unit))
	if n != unit || err != io.EOF {
		t.Fatalf("ReadAt past end: n=%d err=%v, want %d, io.EOF", n, err, unit)
	}
	if !bytes.Equal(tail[:unit], mirror[size-int64(unit):]) {
		t.Fatal("tail prefix diverges")
	}
	if n, err := c.ReadAt(tail, size); n != 0 || err != io.EOF {
		t.Fatalf("ReadAt(size): n=%d err=%v, want 0, io.EOF", n, err)
	}
	if _, err := c.WriteAt(tail, size-int64(unit)); err == nil {
		t.Fatal("WriteAt past end accepted")
	}
	if _, err := c.ReadAt(tail, -1); err == nil {
		t.Fatal("negative ReadAt accepted")
	}

	// Degraded spans: the same striping must serve from survivor XOR.
	if err := c.Fail(4); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, mirror) {
		t.Fatal("degraded full-span read diverges")
	}
}
