package wire_test

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/pdl/serve/wire"
)

// FuzzDecodeRequest throws arbitrary bodies at the request decoder: it
// must never panic, and everything it accepts must re-encode to the
// same body (the round-trip property). The v2 ops ride the same body
// format, so they are covered here too; accepted span ops additionally
// have their count payload decoded, and the header-only decoder
// (DecodeRequestHeader, the server's streaming read path) must agree
// with the full decoder on every accepted frame. Run as a CI smoke
// with -fuzztime 10s.
func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, wire.ReqHeaderLen))
	for _, seed := range []wire.Request{
		{ID: 1, Op: wire.OpInfo},
		{ID: 2, Op: wire.OpInfo, Arg: wire.EncodeHello(wire.Version2, wire.FeatStreams)},
		{ID: 42, Op: wire.OpRead, Class: 1, Arg: 7},
		{ID: 9, Op: wire.OpWrite, Arg: 3, Payload: []byte("payload")},
		{ID: 8, Op: wire.OpStats, Class: 200, Arg: ^uint64(0)},
		{ID: 7, Op: wire.OpReadSpan, Arg: 5, Payload: wire.AppendSpanCount(nil, 16)},
		{ID: 6, Op: wire.OpWriteSpan, Arg: 5, Payload: wire.AppendSpanCount(nil, 1<<20)},
		{ID: 6, Op: wire.OpWriteChunk, Arg: 5, Payload: bytes.Repeat([]byte{0xAA}, 128)},
		{ID: 5, Op: wire.OpReadSpan, Arg: 0, Payload: wire.AppendSpanCount(nil, wire.MaxSpanUnits)},
	} {
		f.Add(wire.AppendRequest(nil, &seed)[4:])
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		var req wire.Request
		if err := wire.DecodeRequest(body, &req); err != nil {
			return
		}
		re := wire.AppendRequest(nil, &req)
		if !bytes.Equal(re[4:], body) {
			t.Fatalf("round trip diverges:\n in %x\nout %x", body, re[4:])
		}
		var again wire.Request
		if err := wire.DecodeRequest(re[4:], &again); err != nil {
			t.Fatalf("re-encoded body rejected: %v", err)
		}

		// The header-only decoder must agree with the full decoder.
		var hreq wire.Request
		n, err := wire.DecodeRequestHeader(re[:wire.ReqFrameHeaderLen], &hreq)
		if err != nil {
			t.Fatalf("header decoder rejects an accepted frame: %v", err)
		}
		if n != len(req.Payload) || hreq.ID != req.ID || hreq.Op != req.Op || hreq.Class != req.Class || hreq.Arg != req.Arg {
			t.Fatalf("header decoder diverges: n=%d %+v vs %+v", n, hreq, req)
		}

		// Span ops: the count payload decoder must never panic, and an
		// accepted count must re-encode identically.
		if req.Op == wire.OpReadSpan || req.Op == wire.OpWriteSpan {
			count, err := wire.DecodeSpanCount(req.Payload)
			if err != nil {
				return
			}
			if !bytes.Equal(wire.AppendSpanCount(nil, count), req.Payload) {
				t.Fatalf("span count round trip diverges: %d from %x", count, req.Payload)
			}
		}
	})
}

// FuzzWriteStream drives the chunked write-stream sequencer with
// hostile frame sequences — wrong-offset chunks, ragged lengths,
// over-count chunks, frames interleaved across two stream ids — and
// checks its invariants: consumed units never exceed the declared
// count, accepted chunks are exactly sequential, Done() iff every unit
// arrived, and a rejected chunk leaves the stream state untouched. The
// input encodes a frame script: each 11-byte record is
// stream(1) argDelta(2) units(8... truncated) — see parse below. Run
// as a CI smoke with -fuzztime 10s.
func FuzzWriteStream(f *testing.F) {
	// A clean two-chunk stream, an interleaved pair, and a hostile mix.
	f.Add(uint16(4), uint16(8), []byte{0, 0, 0, 2, 0, 0, 0, 2, 1, 0, 0, 8})
	f.Add(uint16(1), uint16(1), []byte{0, 0, 0, 1, 1, 0, 0, 1, 0, 0, 1, 1})
	f.Add(uint16(3), uint16(0), []byte{0, 255, 255, 9, 0, 0, 0, 0, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, count0, count1 uint16, script []byte) {
		const unit = 16
		streams := [2]wire.WriteStream{
			{Start: 100, Count: int(count0)},
			{Start: 5000, Count: int(count1)},
		}
		consumed := [2]int{}
		for len(script) >= 4 {
			rec := script[:4]
			script = script[4:]
			s := int(rec[0]) & 1
			ws := &streams[s]
			// argDelta biases around the expected next unit so the fuzzer
			// can find both the valid path and near-miss offsets.
			argDelta := int(int8(rec[1]))
			arg := uint64(ws.Next() + argDelta)
			// Payload length in bytes: units*unit plus a possible ragged
			// remainder bit.
			n := int(binary.BigEndian.Uint16(rec[2:4]))
			before := *ws
			k, err := ws.Consume(arg, n, unit)
			if err != nil {
				if *ws != before {
					t.Fatalf("rejected chunk mutated stream: %+v -> %+v", before, *ws)
				}
				continue
			}
			if argDelta != 0 {
				t.Fatalf("non-sequential chunk accepted: delta %d", argDelta)
			}
			if n%unit != 0 || n == 0 || k != n/unit {
				t.Fatalf("ragged chunk accepted: n=%d k=%d", n, k)
			}
			consumed[s] += k
			if consumed[s] > int(ws.Count) {
				t.Fatalf("stream %d over-consumed: %d of %d units", s, consumed[s], ws.Count)
			}
			if ws.Remaining() != ws.Count-consumed[s] {
				t.Fatalf("remaining diverges: %d vs %d", ws.Remaining(), ws.Count-consumed[s])
			}
			if ws.Done() != (consumed[s] == ws.Count) {
				t.Fatalf("Done()=%v with %d of %d units", ws.Done(), consumed[s], ws.Count)
			}
		}
	})
}
