package wire_test

import (
	"bytes"
	"testing"

	"repro/pdl/serve/wire"
)

// FuzzDecodeRequest throws arbitrary bodies at the request decoder: it
// must never panic, and everything it accepts must re-encode to the
// same body (the round-trip property). Run as a CI smoke with
// -fuzztime 10s.
func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, wire.ReqHeaderLen))
	for _, seed := range []wire.Request{
		{ID: 1, Op: wire.OpInfo},
		{ID: 42, Op: wire.OpRead, Class: 1, Arg: 7},
		{ID: 9, Op: wire.OpWrite, Arg: 3, Payload: []byte("payload")},
		{ID: 8, Op: wire.OpStats, Class: 200, Arg: ^uint64(0)},
	} {
		f.Add(wire.AppendRequest(nil, &seed)[4:])
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		var req wire.Request
		if err := wire.DecodeRequest(body, &req); err != nil {
			return
		}
		re := wire.AppendRequest(nil, &req)
		if !bytes.Equal(re[4:], body) {
			t.Fatalf("round trip diverges:\n in %x\nout %x", body, re[4:])
		}
		var again wire.Request
		if err := wire.DecodeRequest(re[4:], &again); err != nil {
			t.Fatalf("re-encoded body rejected: %v", err)
		}
	})
}
