package wire_test

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"repro/pdl/serve/wire"
)

func TestRequestRoundTrip(t *testing.T) {
	cases := []wire.Request{
		{ID: 1, Op: wire.OpInfo},
		{ID: 42, Op: wire.OpRead, Class: 1, Arg: 7},
		{ID: 1 << 60, Op: wire.OpWrite, Arg: 99, Payload: []byte("unit payload bytes")},
		{ID: 3, Op: wire.OpFail, Arg: 5},
		{ID: 4, Op: wire.OpRebuild},
		{ID: 5, Op: wire.OpStats},
	}
	for _, want := range cases {
		frame := wire.AppendRequest(nil, &want)
		if got := binary.BigEndian.Uint32(frame); int(got) != len(frame)-4 {
			t.Fatalf("op %d: length prefix %d, frame body %d", want.Op, got, len(frame)-4)
		}
		var got wire.Request
		if err := wire.DecodeRequest(frame[4:], &got); err != nil {
			t.Fatalf("op %d: %v", want.Op, err)
		}
		if got.ID != want.ID || got.Op != want.Op || got.Class != want.Class || got.Arg != want.Arg || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("op %d: round trip diverges: %+v vs %+v", want.Op, got, want)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []wire.Response{
		{ID: 9, Status: wire.StatusOK},
		{ID: 10, Status: wire.StatusOK, Payload: bytes.Repeat([]byte{0xAB}, 4096)},
		{ID: 11, Status: wire.StatusErr, Payload: []byte("disk 3 on fire")},
	}
	for _, want := range cases {
		frame := wire.AppendResponse(nil, &want)
		var got wire.Response
		if err := wire.DecodeResponse(frame[4:], &got); err != nil {
			t.Fatal(err)
		}
		if got.ID != want.ID || got.Status != want.Status || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("round trip diverges: %+v vs %+v", got, want)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	var req wire.Request
	if err := wire.DecodeRequest(make([]byte, wire.ReqHeaderLen-1), &req); err == nil {
		t.Error("short request body accepted")
	}
	bad := wire.AppendRequest(nil, &wire.Request{ID: 1, Op: 200})
	if err := wire.DecodeRequest(bad[4:], &req); err == nil {
		t.Error("unknown op accepted")
	}
	var resp wire.Response
	if err := wire.DecodeResponse(make([]byte, wire.RespHeaderLen-1), &resp); err == nil {
		t.Error("short response body accepted")
	}
	badResp := wire.AppendResponse(nil, &wire.Response{ID: 1, Status: 9})
	if err := wire.DecodeResponse(badResp[4:], &resp); err == nil {
		t.Error("unknown status accepted")
	}
}

func TestReadFrame(t *testing.T) {
	var stream []byte
	stream = wire.AppendRequest(stream, &wire.Request{ID: 1, Op: wire.OpRead, Arg: 3})
	stream = wire.AppendRequest(stream, &wire.Request{ID: 2, Op: wire.OpWrite, Arg: 4, Payload: []byte("abc")})
	br := bufio.NewReader(bytes.NewReader(stream))
	var buf []byte
	for want := uint64(1); want <= 2; want++ {
		body, err := wire.ReadFrame(br, buf)
		if err != nil {
			t.Fatal(err)
		}
		buf = body
		var req wire.Request
		if err := wire.DecodeRequest(body, &req); err != nil {
			t.Fatal(err)
		}
		if req.ID != want {
			t.Fatalf("frame order: got id %d want %d", req.ID, want)
		}
	}
	if _, err := wire.ReadFrame(br, buf); err != io.EOF {
		t.Fatalf("EOF: %v", err)
	}

	// Hostile length prefix.
	huge := binary.BigEndian.AppendUint32(nil, wire.MaxFrame+1)
	if _, err := wire.ReadFrame(bufio.NewReader(bytes.NewReader(huge)), nil); !errors.Is(err, wire.ErrFrameTooLarge) {
		t.Fatalf("oversized frame: %v", err)
	}

	// Truncated body.
	trunc := binary.BigEndian.AppendUint32(nil, 10)
	trunc = append(trunc, 1, 2, 3)
	if _, err := wire.ReadFrame(bufio.NewReader(bytes.NewReader(trunc)), nil); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated frame: %v", err)
	}
}

func TestInfoRoundTrip(t *testing.T) {
	want := wire.Info{UnitSize: 4096, Capacity: 123456, Disks: 17, Failed: -1}
	b := wire.AppendInfo(nil, &want)
	var got wire.Info
	if err := wire.DecodeInfo(b, &got); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip diverges: %+v vs %+v", got, want)
	}
	if err := wire.DecodeInfo(b[:len(b)-1], &got); err == nil {
		t.Error("short info accepted")
	}
}

func TestHelloRoundTrip(t *testing.T) {
	// A v1 client's Arg 0 decodes as version 1, no features.
	if v, f := wire.DecodeHello(0); v != wire.Version1 || f != 0 {
		t.Fatalf("zero arg: got v%d feats %#x", v, f)
	}
	arg := wire.EncodeHello(wire.Version2, wire.FeatStreams)
	if arg == 0 {
		t.Fatal("v2 hello encodes to zero — indistinguishable from a v1 client")
	}
	if v, f := wire.DecodeHello(arg); v != wire.Version2 || f != wire.FeatStreams {
		t.Fatalf("hello round trip: got v%d feats %#x", v, f)
	}
}

func TestInfoAny(t *testing.T) {
	want := wire.Info{UnitSize: 1024, Capacity: 99, Disks: 5, Failed: 2}

	// Plain v1 payload decodes as version 1, no features.
	var got wire.Info
	v, feats, err := wire.DecodeInfoAny(wire.AppendInfo(nil, &want), &got)
	if err != nil || v != wire.Version1 || feats != 0 || got != want {
		t.Fatalf("v1 payload: v%d feats %#x info %+v err %v", v, feats, got, err)
	}

	// Extended payload carries version + accepted features.
	b := wire.AppendInfoV2(nil, &want, wire.Version2, wire.FeatStreams)
	got = wire.Info{}
	v, feats, err = wire.DecodeInfoAny(b, &got)
	if err != nil || v != wire.Version2 || feats != wire.FeatStreams || got != want {
		t.Fatalf("v2 payload: v%d feats %#x info %+v err %v", v, feats, got, err)
	}

	// Anything else is rejected.
	if _, _, err := wire.DecodeInfoAny(b[:len(b)-1], &got); err == nil {
		t.Error("truncated extended info accepted")
	}
	if _, _, err := wire.DecodeInfoAny(append(b, 0), &got); err == nil {
		t.Error("oversized info accepted")
	}
}

func TestHeaderDecoders(t *testing.T) {
	req := wire.Request{ID: 77, Op: wire.OpWriteChunk, Class: 1, Arg: 12, Payload: bytes.Repeat([]byte{0xCD}, 64)}
	frame := wire.AppendRequest(nil, &req)
	var got wire.Request
	n, err := wire.DecodeRequestHeader(frame[:wire.ReqFrameHeaderLen], &got)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(req.Payload) || got.ID != req.ID || got.Op != req.Op || got.Class != req.Class || got.Arg != req.Arg {
		t.Fatalf("request header decode diverges: n=%d %+v", n, got)
	}
	// Split encoding matches the one-shot encoding.
	split := wire.AppendRequestHeader(nil, &req, len(req.Payload))
	if !bytes.Equal(split, frame[:wire.ReqFrameHeaderLen]) {
		t.Fatalf("AppendRequestHeader diverges from AppendRequest prefix:\n%x\n%x", split, frame[:wire.ReqFrameHeaderLen])
	}

	resp := wire.Response{ID: 78, Status: wire.StatusChunk, Payload: bytes.Repeat([]byte{0xEF}, 32)}
	rframe := wire.AppendResponse(nil, &resp)
	var gotR wire.Response
	n, err = wire.DecodeResponseHeader(rframe[:wire.RespFrameHeaderLen], &gotR)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(resp.Payload) || gotR.ID != resp.ID || gotR.Status != resp.Status {
		t.Fatalf("response header decode diverges: n=%d %+v", n, gotR)
	}
	splitR := wire.AppendResponseHeader(nil, resp.ID, resp.Status, len(resp.Payload))
	if !bytes.Equal(splitR, rframe[:wire.RespFrameHeaderLen]) {
		t.Fatalf("AppendResponseHeader diverges:\n%x\n%x", splitR, rframe[:wire.RespFrameHeaderLen])
	}

	// Hostile length prefixes.
	huge := binary.BigEndian.AppendUint32(nil, wire.MaxFrame+1)
	huge = append(huge, make([]byte, wire.ReqHeaderLen)...)
	if _, err := wire.DecodeRequestHeader(huge, &got); !errors.Is(err, wire.ErrFrameTooLarge) {
		t.Fatalf("oversized request header: %v", err)
	}
	tiny := binary.BigEndian.AppendUint32(nil, wire.ReqHeaderLen-1)
	tiny = append(tiny, make([]byte, wire.ReqHeaderLen)...)
	if _, err := wire.DecodeRequestHeader(tiny, &got); err == nil {
		t.Error("undersized request body length accepted")
	}
}

func TestSpanCount(t *testing.T) {
	b := wire.AppendSpanCount(nil, 12345)
	if n, err := wire.DecodeSpanCount(b); err != nil || n != 12345 {
		t.Fatalf("span count round trip: %d %v", n, err)
	}
	if _, err := wire.DecodeSpanCount(b[:3]); err == nil {
		t.Error("short span payload accepted")
	}
	if _, err := wire.DecodeSpanCount(wire.AppendSpanCount(nil, 0)); err == nil {
		t.Error("zero span count accepted")
	}
	if _, err := wire.DecodeSpanCount(wire.AppendSpanCount(nil, wire.MaxSpanUnits+1)); err == nil {
		t.Error("oversized span count accepted")
	}
}

func TestWriteStream(t *testing.T) {
	const unit = 64
	ws := wire.WriteStream{Start: 10, Count: 5}

	// Sequential whole-unit chunks are accepted, anything else rejected.
	if k, err := ws.Consume(10, 2*unit, unit); err != nil || k != 2 {
		t.Fatalf("first chunk: k=%d err=%v", k, err)
	}
	if _, err := ws.Consume(10, unit, unit); err == nil {
		t.Error("replayed chunk accepted")
	}
	if _, err := ws.Consume(12, unit-1, unit); err == nil {
		t.Error("ragged chunk accepted")
	}
	if _, err := ws.Consume(12, 0, unit); err == nil {
		t.Error("empty chunk accepted")
	}
	if _, err := ws.Consume(12, 4*unit, unit); err == nil {
		t.Error("over-count chunk accepted")
	}
	if k, err := ws.Consume(12, 3*unit, unit); err != nil || k != 3 {
		t.Fatalf("final chunk: k=%d err=%v", k, err)
	}
	if !ws.Done() || ws.Remaining() != 0 {
		t.Fatalf("stream not done after count units: remaining %d", ws.Remaining())
	}
	if _, err := ws.Consume(15, unit, unit); err == nil {
		t.Error("chunk past end accepted")
	}
}
