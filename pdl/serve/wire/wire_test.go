package wire_test

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"repro/pdl/serve/wire"
)

func TestRequestRoundTrip(t *testing.T) {
	cases := []wire.Request{
		{ID: 1, Op: wire.OpInfo},
		{ID: 42, Op: wire.OpRead, Class: 1, Arg: 7},
		{ID: 1 << 60, Op: wire.OpWrite, Arg: 99, Payload: []byte("unit payload bytes")},
		{ID: 3, Op: wire.OpFail, Arg: 5},
		{ID: 4, Op: wire.OpRebuild},
		{ID: 5, Op: wire.OpStats},
	}
	for _, want := range cases {
		frame := wire.AppendRequest(nil, &want)
		if got := binary.BigEndian.Uint32(frame); int(got) != len(frame)-4 {
			t.Fatalf("op %d: length prefix %d, frame body %d", want.Op, got, len(frame)-4)
		}
		var got wire.Request
		if err := wire.DecodeRequest(frame[4:], &got); err != nil {
			t.Fatalf("op %d: %v", want.Op, err)
		}
		if got.ID != want.ID || got.Op != want.Op || got.Class != want.Class || got.Arg != want.Arg || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("op %d: round trip diverges: %+v vs %+v", want.Op, got, want)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []wire.Response{
		{ID: 9, Status: wire.StatusOK},
		{ID: 10, Status: wire.StatusOK, Payload: bytes.Repeat([]byte{0xAB}, 4096)},
		{ID: 11, Status: wire.StatusErr, Payload: []byte("disk 3 on fire")},
	}
	for _, want := range cases {
		frame := wire.AppendResponse(nil, &want)
		var got wire.Response
		if err := wire.DecodeResponse(frame[4:], &got); err != nil {
			t.Fatal(err)
		}
		if got.ID != want.ID || got.Status != want.Status || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("round trip diverges: %+v vs %+v", got, want)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	var req wire.Request
	if err := wire.DecodeRequest(make([]byte, wire.ReqHeaderLen-1), &req); err == nil {
		t.Error("short request body accepted")
	}
	bad := wire.AppendRequest(nil, &wire.Request{ID: 1, Op: 200})
	if err := wire.DecodeRequest(bad[4:], &req); err == nil {
		t.Error("unknown op accepted")
	}
	var resp wire.Response
	if err := wire.DecodeResponse(make([]byte, wire.RespHeaderLen-1), &resp); err == nil {
		t.Error("short response body accepted")
	}
	badResp := wire.AppendResponse(nil, &wire.Response{ID: 1, Status: 9})
	if err := wire.DecodeResponse(badResp[4:], &resp); err == nil {
		t.Error("unknown status accepted")
	}
}

func TestReadFrame(t *testing.T) {
	var stream []byte
	stream = wire.AppendRequest(stream, &wire.Request{ID: 1, Op: wire.OpRead, Arg: 3})
	stream = wire.AppendRequest(stream, &wire.Request{ID: 2, Op: wire.OpWrite, Arg: 4, Payload: []byte("abc")})
	br := bufio.NewReader(bytes.NewReader(stream))
	var buf []byte
	for want := uint64(1); want <= 2; want++ {
		body, err := wire.ReadFrame(br, buf)
		if err != nil {
			t.Fatal(err)
		}
		buf = body
		var req wire.Request
		if err := wire.DecodeRequest(body, &req); err != nil {
			t.Fatal(err)
		}
		if req.ID != want {
			t.Fatalf("frame order: got id %d want %d", req.ID, want)
		}
	}
	if _, err := wire.ReadFrame(br, buf); err != io.EOF {
		t.Fatalf("EOF: %v", err)
	}

	// Hostile length prefix.
	huge := binary.BigEndian.AppendUint32(nil, wire.MaxFrame+1)
	if _, err := wire.ReadFrame(bufio.NewReader(bytes.NewReader(huge)), nil); !errors.Is(err, wire.ErrFrameTooLarge) {
		t.Fatalf("oversized frame: %v", err)
	}

	// Truncated body.
	trunc := binary.BigEndian.AppendUint32(nil, 10)
	trunc = append(trunc, 1, 2, 3)
	if _, err := wire.ReadFrame(bufio.NewReader(bytes.NewReader(trunc)), nil); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated frame: %v", err)
	}
}

func TestInfoRoundTrip(t *testing.T) {
	want := wire.Info{UnitSize: 4096, Capacity: 123456, Disks: 17, Failed: -1}
	b := wire.AppendInfo(nil, &want)
	var got wire.Info
	if err := wire.DecodeInfo(b, &got); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip diverges: %+v vs %+v", got, want)
	}
	if err := wire.DecodeInfo(b[:len(b)-1], &got); err == nil {
		t.Error("short info accepted")
	}
}
