// Package wire defines the length-prefixed binary protocol between
// serve.Client and serve.Server.
//
// Every message is one frame: a 4-byte big-endian body length, then the
// body. A request body is
//
//	id(8) op(1) class(1) arg(8) payload(...)
//
// and a response body is
//
//	id(8) status(1) payload(...)
//
// all integers big-endian. id correlates a response with its request, so
// a connection may have many requests in flight and responses may arrive
// in any order. arg carries the operand (logical unit for OpRead/OpWrite,
// disk for OpFail, unused otherwise). payload carries the unit bytes for
// OpWrite requests and OpRead responses, the error text for StatusErr
// responses, and op-specific encodings elsewhere (see the serve package).
//
// # Versioning
//
// The frame format above is wire version 1 and never changes. Version 2
// adds capabilities negotiated in-band on the existing OpInfo handshake,
// so the two directions stay compatible without an extra round trip:
//
//   - A v2 client encodes a hello (its version and proposed feature
//     bits) into OpInfo's otherwise-unused Arg. A v1 client sends Arg 0.
//   - A v2 server answering a hello appends its version and the accepted
//     feature intersection to the Info payload (DecodeInfoAny handles
//     both lengths). Answering Arg 0 — a v1 client — it sends the plain
//     v1 Info, so old clients decode exactly what they always did.
//   - A v1 server ignores Arg and answers the plain Info; the v2 client
//     sees no extension and downgrades to the v1 feature set.
//
// Negotiated features gate everything new: a client must not send a v2
// op unless the handshake accepted the corresponding feature bit.
//
// # Chunked span streams (FeatStreams)
//
// Version 2's FeatStreams moves a large unit-aligned span as a stream of
// bounded chunk frames instead of per-unit request/response pairs:
//
//   - OpReadSpan (Arg = first logical unit, payload = 4-byte unit
//     count): the server answers with ordered StatusChunk frames, each
//     carrying one or more whole units (at most MaxChunk bytes, floor
//     one unit), sharing the request id. The stream ends implicitly when
//     count units have been delivered, or terminally with StatusErr.
//   - OpWriteSpan (Arg = first logical unit, payload = 4-byte unit
//     count) opens a write stream. The data follows in OpWriteChunk
//     frames with the same id, each carrying whole units with Arg = the
//     chunk's first logical unit, strictly sequential (WriteStream is
//     the canonical sequencing validator). One response — StatusOK or
//     StatusErr — acknowledges the whole stream.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Request ops.
const (
	// OpInfo asks for the array geometry; the response payload is an Info.
	// Arg 0 is a v1 client; a v2 client sends EncodeHello and the server
	// answers with the extended Info (see DecodeInfoAny).
	OpInfo uint8 = 1 + iota

	// OpRead reads the logical unit in Arg; the response payload is the
	// unit's bytes.
	OpRead

	// OpWrite writes Payload (one unit) to the logical unit in Arg.
	OpWrite

	// OpFail marks disk Arg failed.
	OpFail

	// OpRebuild rebuilds the failed disk onto a fresh replacement.
	OpRebuild

	// OpStats asks for server statistics; the response payload is JSON.
	OpStats

	// OpReadSpan (v2, FeatStreams) streams Payload's unit count back as
	// StatusChunk frames starting at logical unit Arg.
	OpReadSpan

	// OpWriteSpan (v2, FeatStreams) opens a write stream of Payload's
	// unit count starting at logical unit Arg.
	OpWriteSpan

	// OpWriteChunk (v2, FeatStreams) carries one write stream's next
	// chunk: whole units, Arg = the chunk's first logical unit.
	OpWriteChunk

	opMax = OpWriteChunk
)

// Response statuses.
const (
	// StatusOK carries the op's result payload.
	StatusOK uint8 = iota

	// StatusErr carries the error text as the payload.
	StatusErr

	// StatusChunk (v2, FeatStreams) carries one ordered chunk of an
	// OpReadSpan stream; the frame id names the stream.
	StatusChunk
)

// Protocol versions negotiated on the OpInfo handshake.
const (
	// Version1 is the original fixed-format protocol.
	Version1 uint8 = 1

	// Version2 adds the hello handshake and feature-gated ops.
	Version2 uint8 = 2
)

// Feature bits proposed and accepted in the hello handshake.
const (
	// FeatStreams enables the chunked span stream ops (OpReadSpan,
	// OpWriteSpan, OpWriteChunk, StatusChunk).
	FeatStreams uint64 = 1 << 0

	// Features is every feature this package implements — what a v2
	// endpoint proposes and the mask it accepts.
	Features = FeatStreams

	// helloFeatMask bounds the feature bits representable in a hello.
	helloFeatMask = 1<<56 - 1
)

const (
	// ReqHeaderLen is a request body's fixed prefix length.
	ReqHeaderLen = 8 + 1 + 1 + 8

	// RespHeaderLen is a response body's fixed prefix length.
	RespHeaderLen = 8 + 1

	// ReqFrameHeaderLen is a request frame's fixed prefix — the 4-byte
	// length plus the fixed request header — the unit a streaming reader
	// consumes before the payload.
	ReqFrameHeaderLen = 4 + ReqHeaderLen

	// RespFrameHeaderLen is a response frame's fixed prefix.
	RespFrameHeaderLen = 4 + RespHeaderLen

	// MaxFrame is the largest frame body either side accepts: it bounds
	// memory per connection against hostile length prefixes while
	// leaving room for a 1 MiB unit payload plus headers.
	MaxFrame = 1<<20 + ReqHeaderLen

	// MaxChunk is the most payload bytes one stream chunk frame carries.
	// Chunks hold whole units, so the effective bound is the largest
	// unit multiple <= MaxChunk, with a floor of one unit (a unit larger
	// than MaxChunk travels as one single-unit chunk; MaxFrame still
	// bounds it).
	MaxChunk = 256 << 10

	// SpanCountLen is the encoded span unit-count length (the OpReadSpan
	// and OpWriteSpan payload).
	SpanCountLen = 4

	// MaxSpanUnits bounds one span stream's unit count against hostile
	// or absurd requests; real spans segment well below it.
	MaxSpanUnits = 1 << 28
)

// EncodeHello packs a client's protocol version and proposed feature
// bits into OpInfo's Arg. The result is never zero for version >= 1, so
// a v2 hello is always distinguishable from a v1 client's Arg 0.
func EncodeHello(version uint8, features uint64) uint64 {
	return uint64(version)<<56 | (features & helloFeatMask)
}

// DecodeHello unpacks an OpInfo Arg. Arg 0 — a v1 client — decodes as
// (Version1, 0).
func DecodeHello(arg uint64) (version uint8, features uint64) {
	if arg == 0 {
		return Version1, 0
	}
	return uint8(arg >> 56), arg & helloFeatMask
}

// Request is a decoded request frame. Payload aliases the decode buffer;
// copy it to retain it past the next frame.
type Request struct {
	ID      uint64
	Op      uint8
	Class   uint8
	Arg     uint64
	Payload []byte
}

// Response is a decoded response frame. Payload aliases the decode
// buffer; copy it to retain it past the next frame.
type Response struct {
	ID      uint64
	Status  uint8
	Payload []byte
}

// AppendRequest appends r as a complete frame (length prefix included).
func AppendRequest(dst []byte, r *Request) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(ReqHeaderLen+len(r.Payload)))
	dst = binary.BigEndian.AppendUint64(dst, r.ID)
	dst = append(dst, r.Op, r.Class)
	dst = binary.BigEndian.AppendUint64(dst, r.Arg)
	return append(dst, r.Payload...)
}

// DecodeRequest parses a request body (frame minus the length prefix)
// into r. r.Payload aliases body.
func DecodeRequest(body []byte, r *Request) error {
	if len(body) < ReqHeaderLen {
		return fmt.Errorf("wire: request body %d bytes, want >= %d", len(body), ReqHeaderLen)
	}
	r.ID = binary.BigEndian.Uint64(body)
	r.Op = body[8]
	r.Class = body[9]
	r.Arg = binary.BigEndian.Uint64(body[10:])
	r.Payload = body[ReqHeaderLen:]
	if r.Op < OpInfo || r.Op > opMax {
		return fmt.Errorf("wire: unknown op %d", r.Op)
	}
	return nil
}

// DecodeRequestHeader parses a request frame's fixed prefix (length
// plus header, ReqFrameHeaderLen bytes) into r and returns the payload
// length still to be read. r.Payload is left nil: the caller reads the
// payload into a buffer of its choosing — the zero-copy receive path.
func DecodeRequestHeader(hdr []byte, r *Request) (payloadLen int, err error) {
	if len(hdr) < ReqFrameHeaderLen {
		return 0, fmt.Errorf("wire: request frame header %d bytes, want %d", len(hdr), ReqFrameHeaderLen)
	}
	n := binary.BigEndian.Uint32(hdr)
	if n > MaxFrame {
		return 0, ErrFrameTooLarge
	}
	if n < ReqHeaderLen {
		return 0, fmt.Errorf("wire: request body %d bytes, want >= %d", n, ReqHeaderLen)
	}
	r.ID = binary.BigEndian.Uint64(hdr[4:])
	r.Op = hdr[12]
	r.Class = hdr[13]
	r.Arg = binary.BigEndian.Uint64(hdr[14:])
	r.Payload = nil
	if r.Op < OpInfo || r.Op > opMax {
		return 0, fmt.Errorf("wire: unknown op %d", r.Op)
	}
	return int(n) - ReqHeaderLen, nil
}

// AppendRequestHeader appends a request frame's fixed prefix for a
// payload of payloadLen bytes sent separately (via writev): the frame is
// valid once exactly payloadLen payload bytes follow.
func AppendRequestHeader(dst []byte, r *Request, payloadLen int) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(ReqHeaderLen+payloadLen))
	dst = binary.BigEndian.AppendUint64(dst, r.ID)
	dst = append(dst, r.Op, r.Class)
	return binary.BigEndian.AppendUint64(dst, r.Arg)
}

// AppendResponse appends r as a complete frame (length prefix included).
func AppendResponse(dst []byte, r *Response) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(RespHeaderLen+len(r.Payload)))
	dst = binary.BigEndian.AppendUint64(dst, r.ID)
	dst = append(dst, r.Status)
	return append(dst, r.Payload...)
}

// DecodeResponse parses a response body (frame minus the length prefix)
// into r. r.Payload aliases body.
func DecodeResponse(body []byte, r *Response) error {
	if len(body) < RespHeaderLen {
		return fmt.Errorf("wire: response body %d bytes, want >= %d", len(body), RespHeaderLen)
	}
	r.ID = binary.BigEndian.Uint64(body)
	r.Status = body[8]
	r.Payload = body[RespHeaderLen:]
	if r.Status > StatusChunk {
		return fmt.Errorf("wire: unknown status %d", r.Status)
	}
	return nil
}

// DecodeResponseHeader parses a response frame's fixed prefix (length
// plus header, RespFrameHeaderLen bytes) into r and returns the payload
// length still to be read, which the caller reads directly into its
// destination buffer — the zero-copy receive path.
func DecodeResponseHeader(hdr []byte, r *Response) (payloadLen int, err error) {
	if len(hdr) < RespFrameHeaderLen {
		return 0, fmt.Errorf("wire: response frame header %d bytes, want %d", len(hdr), RespFrameHeaderLen)
	}
	n := binary.BigEndian.Uint32(hdr)
	if n > MaxFrame {
		return 0, ErrFrameTooLarge
	}
	if n < RespHeaderLen {
		return 0, fmt.Errorf("wire: response body %d bytes, want >= %d", n, RespHeaderLen)
	}
	r.ID = binary.BigEndian.Uint64(hdr[4:])
	r.Status = hdr[12]
	r.Payload = nil
	if r.Status > StatusChunk {
		return 0, fmt.Errorf("wire: unknown status %d", r.Status)
	}
	return int(n) - RespHeaderLen, nil
}

// AppendResponseHeader appends a response frame's fixed prefix for a
// payload of payloadLen bytes sent separately (via writev).
func AppendResponseHeader(dst []byte, id uint64, status uint8, payloadLen int) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(RespHeaderLen+payloadLen))
	dst = binary.BigEndian.AppendUint64(dst, id)
	return append(dst, status)
}

// AppendSpanCount appends a span stream's unit count — the OpReadSpan
// and OpWriteSpan payload.
func AppendSpanCount(dst []byte, count int) []byte {
	return binary.BigEndian.AppendUint32(dst, uint32(count))
}

// DecodeSpanCount parses an OpReadSpan/OpWriteSpan payload.
func DecodeSpanCount(payload []byte) (count int, err error) {
	if len(payload) != SpanCountLen {
		return 0, fmt.Errorf("wire: span payload %d bytes, want %d", len(payload), SpanCountLen)
	}
	count = int(binary.BigEndian.Uint32(payload))
	if count < 1 || count > MaxSpanUnits {
		return 0, fmt.Errorf("wire: span count %d outside [1,%d]", count, MaxSpanUnits)
	}
	return count, nil
}

// WriteStream validates and sequences one v2 write stream's chunks: the
// canonical chunked-stream decoder the server runs per open stream (and
// the fuzz target hammers). Chunks must carry whole units, stay inside
// the declared count, and arrive strictly sequentially.
type WriteStream struct {
	// Start is the stream's first logical unit; Count its declared
	// length in units.
	Start, Count int

	consumed int
}

// Remaining returns the units not yet consumed.
func (w *WriteStream) Remaining() int { return w.Count - w.consumed }

// Next returns the logical unit the next chunk must start at.
func (w *WriteStream) Next() int { return w.Start + w.consumed }

// Done reports whether every declared unit has been consumed.
func (w *WriteStream) Done() bool { return w.consumed >= w.Count }

// Consume validates one chunk frame — arg is the frame's Arg, n its
// payload length, unit the array's unit size — and accounts its units,
// returning how many it carried. A non-nil error means the stream is
// violated (the chunk was not consumed).
func (w *WriteStream) Consume(arg uint64, n, unit int) (k int, err error) {
	if unit <= 0 {
		return 0, fmt.Errorf("wire: stream unit size %d", unit)
	}
	if n < unit || n%unit != 0 {
		return 0, fmt.Errorf("wire: stream chunk %d bytes, want a positive multiple of unit %d", n, unit)
	}
	k = n / unit
	if k > w.Remaining() {
		return 0, fmt.Errorf("wire: stream chunk of %d units exceeds remaining %d", k, w.Remaining())
	}
	if want := w.Next(); arg != uint64(want) {
		return 0, fmt.Errorf("wire: stream chunk starts at unit %d, want %d", arg, want)
	}
	w.consumed += k
	return k, nil
}

// ErrFrameTooLarge reports a length prefix above MaxFrame — a corrupt or
// hostile peer.
var ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")

// ReadFrame reads one frame body from r, reusing buf when it has the
// capacity; it returns the body (len == the frame's length prefix).
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

// Info is the geometry handshake payload answering OpInfo.
type Info struct {
	// UnitSize is the payload size of one stripe unit in bytes.
	UnitSize int

	// Capacity is the number of addressable logical data units.
	Capacity int

	// Disks is the number of disks in the array.
	Disks int

	// Failed is the failed disk, -1 when healthy.
	Failed int
}

// infoLen is the encoded Info size: unit(4) capacity(8) disks(4) failed(4).
const infoLen = 4 + 8 + 4 + 4

// infoExtLen is the v2 extension: version(1) features(8).
const infoExtLen = 1 + 8

// AppendInfo appends the v1 Info encoding.
func AppendInfo(dst []byte, in *Info) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(in.UnitSize))
	dst = binary.BigEndian.AppendUint64(dst, uint64(in.Capacity))
	dst = binary.BigEndian.AppendUint32(dst, uint32(in.Disks))
	return binary.BigEndian.AppendUint32(dst, uint32(int32(in.Failed)))
}

// AppendInfoV2 appends the extended Info a v2 server sends a v2 client:
// the v1 encoding plus the server's version and accepted feature bits.
func AppendInfoV2(dst []byte, in *Info, version uint8, features uint64) []byte {
	dst = AppendInfo(dst, in)
	dst = append(dst, version)
	return binary.BigEndian.AppendUint64(dst, features)
}

// DecodeInfo parses a v1 Info encoding.
func DecodeInfo(body []byte, in *Info) error {
	if len(body) != infoLen {
		return fmt.Errorf("wire: info payload %d bytes, want %d", len(body), infoLen)
	}
	in.UnitSize = int(binary.BigEndian.Uint32(body))
	in.Capacity = int(binary.BigEndian.Uint64(body[4:]))
	in.Disks = int(binary.BigEndian.Uint32(body[12:]))
	in.Failed = int(int32(binary.BigEndian.Uint32(body[16:])))
	return nil
}

// DecodeInfoAny parses either Info encoding: the plain v1 payload (a v1
// server, or a v2 server answering a v1 client) decodes with version
// Version1 and no features; the extended payload carries the server's
// version and the accepted feature intersection.
func DecodeInfoAny(body []byte, in *Info) (version uint8, features uint64, err error) {
	switch len(body) {
	case infoLen:
		return Version1, 0, DecodeInfo(body, in)
	case infoLen + infoExtLen:
		if err := DecodeInfo(body[:infoLen], in); err != nil {
			return 0, 0, err
		}
		version = body[infoLen]
		features = binary.BigEndian.Uint64(body[infoLen+1:])
		if version < Version1 {
			return 0, 0, fmt.Errorf("wire: info version %d", version)
		}
		return version, features, nil
	default:
		return 0, 0, fmt.Errorf("wire: info payload %d bytes, want %d or %d", len(body), infoLen, infoLen+infoExtLen)
	}
}
