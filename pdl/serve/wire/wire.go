// Package wire defines the length-prefixed binary protocol between
// serve.Client and serve.Server.
//
// Every message is one frame: a 4-byte big-endian body length, then the
// body. A request body is
//
//	id(8) op(1) class(1) arg(8) payload(...)
//
// and a response body is
//
//	id(8) status(1) payload(...)
//
// all integers big-endian. id correlates a response with its request, so
// a connection may have many requests in flight and responses may arrive
// in any order. arg carries the operand (logical unit for OpRead/OpWrite,
// disk for OpFail, unused otherwise). payload carries the unit bytes for
// OpWrite requests and OpRead responses, the error text for StatusErr
// responses, and op-specific encodings elsewhere (see the serve package).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Request ops.
const (
	// OpInfo asks for the array geometry; the response payload is an Info.
	OpInfo uint8 = 1 + iota

	// OpRead reads the logical unit in Arg; the response payload is the
	// unit's bytes.
	OpRead

	// OpWrite writes Payload (one unit) to the logical unit in Arg.
	OpWrite

	// OpFail marks disk Arg failed.
	OpFail

	// OpRebuild rebuilds the failed disk onto a fresh replacement.
	OpRebuild

	// OpStats asks for server statistics; the response payload is JSON.
	OpStats

	opMax = OpStats
)

// Response statuses.
const (
	// StatusOK carries the op's result payload.
	StatusOK uint8 = iota

	// StatusErr carries the error text as the payload.
	StatusErr
)

const (
	// ReqHeaderLen is a request body's fixed prefix length.
	ReqHeaderLen = 8 + 1 + 1 + 8

	// RespHeaderLen is a response body's fixed prefix length.
	RespHeaderLen = 8 + 1

	// MaxFrame is the largest frame body either side accepts: it bounds
	// memory per connection against hostile length prefixes while
	// leaving room for a 1 MiB unit payload plus headers.
	MaxFrame = 1<<20 + ReqHeaderLen
)

// Request is a decoded request frame. Payload aliases the decode buffer;
// copy it to retain it past the next frame.
type Request struct {
	ID      uint64
	Op      uint8
	Class   uint8
	Arg     uint64
	Payload []byte
}

// Response is a decoded response frame. Payload aliases the decode
// buffer; copy it to retain it past the next frame.
type Response struct {
	ID      uint64
	Status  uint8
	Payload []byte
}

// AppendRequest appends r as a complete frame (length prefix included).
func AppendRequest(dst []byte, r *Request) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(ReqHeaderLen+len(r.Payload)))
	dst = binary.BigEndian.AppendUint64(dst, r.ID)
	dst = append(dst, r.Op, r.Class)
	dst = binary.BigEndian.AppendUint64(dst, r.Arg)
	return append(dst, r.Payload...)
}

// DecodeRequest parses a request body (frame minus the length prefix)
// into r. r.Payload aliases body.
func DecodeRequest(body []byte, r *Request) error {
	if len(body) < ReqHeaderLen {
		return fmt.Errorf("wire: request body %d bytes, want >= %d", len(body), ReqHeaderLen)
	}
	r.ID = binary.BigEndian.Uint64(body)
	r.Op = body[8]
	r.Class = body[9]
	r.Arg = binary.BigEndian.Uint64(body[10:])
	r.Payload = body[ReqHeaderLen:]
	if r.Op < OpInfo || r.Op > opMax {
		return fmt.Errorf("wire: unknown op %d", r.Op)
	}
	return nil
}

// AppendResponse appends r as a complete frame (length prefix included).
func AppendResponse(dst []byte, r *Response) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(RespHeaderLen+len(r.Payload)))
	dst = binary.BigEndian.AppendUint64(dst, r.ID)
	dst = append(dst, r.Status)
	return append(dst, r.Payload...)
}

// DecodeResponse parses a response body (frame minus the length prefix)
// into r. r.Payload aliases body.
func DecodeResponse(body []byte, r *Response) error {
	if len(body) < RespHeaderLen {
		return fmt.Errorf("wire: response body %d bytes, want >= %d", len(body), RespHeaderLen)
	}
	r.ID = binary.BigEndian.Uint64(body)
	r.Status = body[8]
	r.Payload = body[RespHeaderLen:]
	if r.Status != StatusOK && r.Status != StatusErr {
		return fmt.Errorf("wire: unknown status %d", r.Status)
	}
	return nil
}

// ErrFrameTooLarge reports a length prefix above MaxFrame — a corrupt or
// hostile peer.
var ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")

// ReadFrame reads one frame body from r, reusing buf when it has the
// capacity; it returns the body (len == the frame's length prefix).
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

// Info is the geometry handshake payload answering OpInfo.
type Info struct {
	// UnitSize is the payload size of one stripe unit in bytes.
	UnitSize int

	// Capacity is the number of addressable logical data units.
	Capacity int

	// Disks is the number of disks in the array.
	Disks int

	// Failed is the failed disk, -1 when healthy.
	Failed int
}

// infoLen is the encoded Info size: unit(4) capacity(8) disks(4) failed(4).
const infoLen = 4 + 8 + 4 + 4

// AppendInfo appends the Info encoding.
func AppendInfo(dst []byte, in *Info) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(in.UnitSize))
	dst = binary.BigEndian.AppendUint64(dst, uint64(in.Capacity))
	dst = binary.BigEndian.AppendUint32(dst, uint32(in.Disks))
	return binary.BigEndian.AppendUint32(dst, uint32(int32(in.Failed)))
}

// DecodeInfo parses an Info encoding.
func DecodeInfo(body []byte, in *Info) error {
	if len(body) != infoLen {
		return fmt.Errorf("wire: info payload %d bytes, want %d", len(body), infoLen)
	}
	in.UnitSize = int(binary.BigEndian.Uint32(body))
	in.Capacity = int(binary.BigEndian.Uint64(body[4:]))
	in.Disks = int(binary.BigEndian.Uint32(body[12:]))
	in.Failed = int(int32(binary.BigEndian.Uint32(body[16:])))
	return nil
}
