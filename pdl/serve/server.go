package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/pdl/serve/wire"
	"repro/pdl/store"
)

// ServerStats is the JSON payload answering wire.OpStats.
type ServerStats struct {
	// Store is the byte engine's per-disk counters and failure state.
	Store StoreStats `json:"store"`

	// Frontend is the batching front end's counters.
	Frontend Stats `json:"frontend"`
}

// StoreStats mirrors store.Stats for the wire (kept separate so the
// protocol schema is explicit and stable).
type StoreStats struct {
	FailedDisk int `json:"failed_disk"`

	// FailedDisks lists every currently-failed disk in increasing order
	// (multi-parity arrays tolerate several at once); absent when
	// healthy, so pre-multi-failure clients see an unchanged schema.
	FailedDisks []int `json:"failed_disks,omitempty"`

	// Codec and ParityShards describe the array's erasure code ("xor"
	// with 1 parity shard, "rs" with up to code.MaxParityShards).
	// Omitted by pre-codec servers, so Codec == "" reads as classic
	// single-parity XOR.
	Codec          string `json:"codec,omitempty"`
	ParityShards   int    `json:"parity_shards,omitempty"`
	Rebuilding     bool   `json:"rebuilding"`
	RebuiltStripes int    `json:"rebuilt_stripes"`
	TotalStripes   int    `json:"total_stripes"`
	Reads          int64  `json:"reads"`
	Writes         int64  `json:"writes"`
	ReadBytes      int64  `json:"read_bytes"`
	WriteBytes     int64  `json:"write_bytes"`
	Degraded       int64  `json:"degraded"`
}

const (
	// srvReadBufSize is the per-connection read buffer: big enough that
	// a burst of pipelined unit frames drains in one syscall.
	srvReadBufSize = 64 << 10

	// maxRespBatch bounds how many responses one writev gathers (each
	// contributes up to two iovecs; Linux caps a writev at 1024).
	maxRespBatch = 64

	// maxConnSpans bounds concurrent OpReadSpan streams per connection:
	// each holds a chunk buffer and a goroutine, and a hostile client
	// could otherwise open them for the price of a 26-byte frame.
	maxConnSpans = 32

	// maxOpenStreams bounds open write streams per connection, for the
	// same reason.
	maxOpenStreams = 256
)

// Server carries the wire protocol over TCP connections, submitting
// client requests to a Frontend. Requests from every connection share
// the frontend's queues, so independent clients coalesce into the same
// batches.
//
// The data path is zero-copy on both sides of the socket: request
// payloads are read into reference-counted pooled buffers that flow
// into store.WriteVec without an intermediate copy (the buffer recycles
// only when every unit op that aliases it has completed), and response
// payloads go out as header+payload iovec pairs via net.Buffers
// (writev), recycling only after the gather write lands.
type Server struct {
	// Replacement provisions the spare backend a wire.OpRebuild rebuilds
	// onto. Nil defaults to a fresh MemDisk sized for the geometry.
	// Ignored when RebuildDisk is set.
	Replacement func() (store.Backend, error)

	// FailDisk, when non-nil, handles wire.OpFail instead of the store's
	// in-memory Fail. Durable servers point it at array.Fail so the
	// scrub and the persisted failure state survive a restart.
	FailDisk func(disk int) error

	// RebuildDisk, when non-nil, handles wire.OpRebuild instead of the
	// default rebuild-onto-Replacement. Durable servers point it at
	// array.Rebuild so the reconstructed bytes and the manifest state
	// land on disk. The server still serializes rebuild requests.
	RebuildDisk func() error

	// NoDelay is applied (explicitly) to every accepted TCP connection.
	// NewServer sets it true — request/response frames are latency
	// bound and the server already batches writes via writev — but it
	// can be cleared before Serve for WAN experiments.
	NoDelay bool

	// ReadBuffer and WriteBuffer, when positive, size the kernel socket
	// buffers (SO_RCVBUF/SO_SNDBUF) of every accepted TCP connection.
	// Zero keeps the OS defaults.
	ReadBuffer  int
	WriteBuffer int

	front *Frontend
	unit  int

	mu     sync.Mutex
	lns    map[net.Listener]struct{}
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	ctx    context.Context
	cancel context.CancelFunc

	// rebuilding gates OpRebuild: one replacement disk is provisioned at
	// a time, so a burst of rebuild frames cannot amplify a few bytes of
	// input into many disk-sized allocations.
	rebuilding atomic.Bool

	// connsAccepted, readSpans, and writeStreams count accepted
	// connections and opened wire v2 span streams over the server's life.
	connsAccepted atomic.Int64
	readSpans     atomic.Int64
	writeStreams  atomic.Int64

	bufPool   sync.Pool // *[]byte unit payload buffers
	chunkPool sync.Pool // *[]byte read-span chunk buffers
	respPool  sync.Pool // *srvResp
	reqPool   sync.Pool // *srvReq with a prebuilt completion closure
	framePool sync.Pool // *frameBuf refcounted request payload buffers
}

// NewServer returns a Server submitting to front. Serve it on one or
// more listeners; Close stops them all.
func NewServer(front *Frontend) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		NoDelay: true,
		front:   front,
		unit:    front.Store().UnitSize(),
		lns:     make(map[net.Listener]struct{}),
		conns:   make(map[net.Conn]struct{}),
		ctx:     ctx,
		cancel:  cancel,
	}
	unit := s.unit
	s.bufPool.New = func() any {
		b := make([]byte, unit)
		return &b
	}
	chunk := s.chunkUnits() * unit
	s.chunkPool.New = func() any {
		b := make([]byte, chunk)
		return &b
	}
	s.respPool.New = func() any { return new(srvResp) }
	s.reqPool.New = func() any {
		sr := new(srvReq)
		// The closure is allocated once per pooled object and reused for
		// every request it carries — the per-request completion-closure
		// alloc this replaces was a third of the TCP path's allocs/op.
		sr.cb = func(err error) { sr.complete(err) }
		return sr
	}
	s.framePool.New = func() any { return &frameBuf{pool: &s.framePool} }
	return s
}

// chunkUnits is how many whole units one read-span chunk carries.
func (s *Server) chunkUnits() int {
	cu := wire.MaxChunk / s.unit
	if cu < 1 {
		cu = 1
	}
	return cu
}

// Serve accepts connections on ln until Close (or a listener error) and
// handles each on its own goroutines. It blocks; run it in a goroutine.
// After Close it returns nil.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			delete(s.lns, ln)
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.connsAccepted.Add(1)
		go s.handle(conn)
	}
}

// Close stops all listeners and connections and waits for the handlers.
// The Frontend and Store stay open (the caller owns them).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for ln := range s.lns {
		ln.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
	return nil
}

// frameBuf is a reference-counted pooled request payload buffer. The
// reader holds one reference while dispatching; each unit write op that
// aliases the payload holds another until its completion runs, so the
// buffer cannot recycle while the store still reads from it.
type frameBuf struct {
	pool *sync.Pool
	refs atomic.Int32
	b    []byte
}

func (fb *frameBuf) retain(n int32) { fb.refs.Add(n) }

func (fb *frameBuf) release() {
	if fb.refs.Add(-1) == 0 {
		fb.pool.Put(fb)
	}
}

// getFrame returns a frame buffer sized to n with one reference held.
func (s *Server) getFrame(n int) *frameBuf {
	fb := s.framePool.Get().(*frameBuf)
	if cap(fb.b) < n {
		fb.b = make([]byte, n)
	}
	fb.b = fb.b[:n]
	fb.refs.Store(1)
	return fb
}

// srvResp is one queued response: a fixed header plus a payload that
// goes out as its own iovec. unitBuf/chunkBuf, when set, are pooled
// buffers the payload aliases — returned to their pools only after the
// writev that sends them lands (or the connection is known broken).
type srvResp struct {
	hdr      [wire.RespFrameHeaderLen]byte
	payload  []byte
	unitBuf  *[]byte
	chunkBuf *[]byte
}

func (s *Server) getResp(id uint64, status uint8, payload []byte) *srvResp {
	r := s.respPool.Get().(*srvResp)
	wire.AppendResponseHeader(r.hdr[:0], id, status, len(payload))
	r.payload = payload
	return r
}

// srvReq is one in-flight unit op's pooled completion state. cb is
// prebuilt at pool time and forwards to complete, so submitting an op
// allocates nothing.
type srvReq struct {
	s   *Server
	st  *connState
	id  uint64
	fb  *frameBuf // write: payload alias reference, released on completion
	buf *[]byte   // read: pooled unit buffer the store fills
	ws  *wstream  // stream write: per-span state, nil for plain unit ops
	cb  func(error)
}

func (s *Server) getReq(st *connState, id uint64) *srvReq {
	sr := s.reqPool.Get().(*srvReq)
	sr.s = s
	sr.st = st
	sr.id = id
	return sr
}

func (s *Server) putReq(sr *srvReq) {
	sr.s = nil
	sr.st = nil
	sr.fb = nil
	sr.buf = nil
	sr.ws = nil
	s.reqPool.Put(sr)
}

// complete is every unit op's completion: respond (or account the
// stream), release the aliased buffers, recycle, and drop the pending
// count last so the writer cannot close under a response in flight.
func (sr *srvReq) complete(err error) {
	s, st := sr.s, sr.st
	switch {
	case sr.ws != nil:
		sr.fb.release()
		sr.ws.unitDone(err)
	case sr.fb != nil:
		sr.fb.release()
		if err != nil {
			st.respondErr(sr.id, err)
		} else {
			st.send(s.getResp(sr.id, wire.StatusOK, nil))
		}
	default:
		if err != nil {
			s.bufPool.Put(sr.buf)
			st.respondErr(sr.id, err)
		} else {
			r := s.getResp(sr.id, wire.StatusOK, *sr.buf)
			r.unitBuf = sr.buf
			st.send(r)
		}
	}
	s.putReq(sr)
	st.pending.Done()
}

// connState is one connection's server-side state. streams is owned by
// the reader goroutine; pending counts every in-flight submission whose
// completion will still queue a response.
type connState struct {
	s       *Server
	out     chan *srvResp
	pending sync.WaitGroup
	streams map[uint64]*wstream
	spanSem chan struct{}
}

func (st *connState) send(r *srvResp) { st.out <- r }

func (st *connState) respondErr(id uint64, err error) {
	if err == nil {
		err = errors.New("unknown error")
	}
	st.send(st.s.getResp(id, wire.StatusErr, []byte(err.Error())))
}

// wstream is one open write stream. The reader goroutine owns the
// sequencing state (wire.WriteStream, seen, poisoned); outstanding
// carries one token per in-flight unit op plus one reader token dropped
// when the final chunk has been submitted — whoever drops it to zero
// sends the single stream response.
type wstream struct {
	wire.WriteStream
	st    *connState
	id    uint64
	class Class

	seen     int  // units arrived (reader-owned), valid or drained
	poisoned bool // reader-owned: respond sent early, drain the rest

	outstanding atomic.Int64
	responded   atomic.Bool
	errMu       sync.Mutex
	firstErr    error
}

func (ws *wstream) fail(err error) {
	ws.errMu.Lock()
	if ws.firstErr == nil {
		ws.firstErr = err
	}
	ws.errMu.Unlock()
}

func (ws *wstream) unitDone(err error) {
	if err != nil {
		ws.fail(err)
	}
	ws.drop()
}

// drop releases one outstanding token; the last one answers the stream.
func (ws *wstream) drop() {
	if ws.outstanding.Add(-1) != 0 {
		return
	}
	if !ws.responded.CompareAndSwap(false, true) {
		return
	}
	ws.errMu.Lock()
	err := ws.firstErr
	ws.errMu.Unlock()
	if err != nil {
		ws.st.respondErr(ws.id, err)
	} else {
		ws.st.send(ws.st.s.getResp(ws.id, wire.StatusOK, nil))
	}
}

// handle runs one connection: a reader loop decoding and submitting
// requests, and a writer goroutine gathering completed responses into
// writev batches.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(s.NoDelay)
		if s.ReadBuffer > 0 {
			tc.SetReadBuffer(s.ReadBuffer)
		}
		if s.WriteBuffer > 0 {
			tc.SetWriteBuffer(s.WriteBuffer)
		}
	}
	st := &connState{
		s:       s,
		out:     make(chan *srvResp, 256),
		spanSem: make(chan struct{}, maxConnSpans),
	}
	var writerDone sync.WaitGroup
	writerDone.Add(1)
	go func() {
		defer writerDone.Done()
		st.writeLoop(conn)
	}()

	br := bufio.NewReaderSize(conn, srvReadBufSize)
	var hdr [wire.ReqFrameHeaderLen]byte
	var req wire.Request
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			break
		}
		pl, err := wire.DecodeRequestHeader(hdr[:], &req)
		if err != nil {
			// A malformed frame means a broken peer; drop the connection
			// (the request id cannot be trusted for an error reply).
			break
		}
		var fb *frameBuf
		req.Payload = nil
		if pl > 0 {
			fb = s.getFrame(pl)
			if _, err := io.ReadFull(br, fb.b); err != nil {
				fb.release()
				break
			}
			req.Payload = fb.b
		}
		ok := s.dispatch(st, &req, fb)
		if fb != nil {
			fb.release()
		}
		if !ok {
			break
		}
	}
	// In-flight completions still queue responses; close the channel
	// only after they all land.
	st.pending.Wait()
	close(st.out)
	writerDone.Wait()
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// writeLoop drains st.out, gathering up to maxRespBatch responses into
// one net.Buffers writev of header+payload iovecs. Pooled payload
// buffers are released only after the gather write returns, so the
// kernel never reads from a recycled buffer.
func (st *connState) writeLoop(conn net.Conn) {
	// bufs lives behind one stable pointer: Buffers.WriteTo has a pointer
	// receiver, so a stack header would escape and allocate per writev.
	bufs := new(net.Buffers)
	batch := make([]*srvResp, 0, maxRespBatch)
	broken := false
	for r := range st.out {
		batch = append(batch[:0], r)
		// Yield before collecting: completions arrive in frontend-batch
		// bursts, and letting the completing goroutine finish its burst
		// turns per-response writevs into per-burst writevs (see the
		// client writeLoop for the same trick).
		runtime.Gosched()
	collect:
		for len(batch) < maxRespBatch {
			select {
			case r2, ok := <-st.out:
				if !ok {
					break collect
				}
				batch = append(batch, r2)
			default:
				break collect
			}
		}
		if !broken {
			iov := (*bufs)[:0]
			for _, b := range batch {
				iov = append(iov, b.hdr[:])
				if len(b.payload) > 0 {
					iov = append(iov, b.payload)
				}
			}
			*bufs = iov
			if _, err := bufs.WriteTo(conn); err != nil {
				broken = true
			}
			// WriteTo consumed *bufs; clear the backing array so pooled
			// payloads are not pinned until the next batch.
			for i := range iov {
				iov[i] = nil
			}
			*bufs = iov
		}
		for i, b := range batch {
			st.release(b)
			batch[i] = nil
		}
	}
}

func (st *connState) release(r *srvResp) {
	s := st.s
	if r.unitBuf != nil {
		s.bufPool.Put(r.unitBuf)
		r.unitBuf = nil
	}
	if r.chunkBuf != nil {
		s.chunkPool.Put(r.chunkBuf)
		r.chunkBuf = nil
	}
	r.payload = nil
	s.respPool.Put(r)
}

// dispatch routes one decoded request. req.Payload aliases fb's buffer;
// handlers that hand it to the store retain fb per aliasing op. A false
// return drops the connection (hostile or broken peer).
func (s *Server) dispatch(st *connState, req *wire.Request, fb *frameBuf) bool {
	stt := s.front.Store()
	switch req.Op {
	case wire.OpInfo:
		info := wire.Info{
			UnitSize: stt.UnitSize(),
			Capacity: stt.Capacity(),
			Disks:    stt.Mapper().Disks(),
			Failed:   stt.Failed(),
		}
		// Arg carries a v2 client's hello; a v1 client's Arg is 0 and
		// gets the plain v1 payload it expects.
		if v, feats := wire.DecodeHello(req.Arg); v >= wire.Version2 {
			st.send(s.getResp(req.ID, wire.StatusOK, wire.AppendInfoV2(nil, &info, wire.Version2, feats&wire.Features)))
		} else {
			st.send(s.getResp(req.ID, wire.StatusOK, wire.AppendInfo(nil, &info)))
		}

	case wire.OpRead:
		bp := s.bufPool.Get().(*[]byte)
		sr := s.getReq(st, req.ID)
		sr.buf = bp
		st.pending.Add(1)
		if err := s.front.Go(s.ctx, Op{Kind: Read, Class: Class(req.Class), Logical: int(req.Arg), Buf: *bp}, sr.cb); err != nil {
			s.bufPool.Put(bp)
			s.putReq(sr)
			st.pending.Done()
			st.respondErr(req.ID, err)
		}

	case wire.OpWrite:
		if len(req.Payload) != s.unit {
			st.respondErr(req.ID, fmt.Errorf("write payload %d bytes, want unit size %d", len(req.Payload), s.unit))
			return true
		}
		// The store writes straight from the read buffer: no copy. The
		// op's reference keeps it alive until the completion runs.
		fb.retain(1)
		sr := s.getReq(st, req.ID)
		sr.fb = fb
		st.pending.Add(1)
		if err := s.front.Go(s.ctx, Op{Kind: Write, Class: Class(req.Class), Logical: int(req.Arg), Buf: req.Payload}, sr.cb); err != nil {
			fb.release()
			s.putReq(sr)
			st.pending.Done()
			st.respondErr(req.ID, err)
		}

	case wire.OpReadSpan:
		count, err := wire.DecodeSpanCount(req.Payload)
		if err != nil {
			st.respondErr(req.ID, err)
			return true
		}
		capa := stt.Capacity()
		if req.Arg >= uint64(capa) || count > capa-int(req.Arg) {
			st.respondErr(req.ID, fmt.Errorf("span [%d,+%d) outside capacity %d", req.Arg, count, capa))
			return true
		}
		st.spanSem <- struct{}{} // backpressure: bounded concurrent spans
		st.pending.Add(1)
		s.readSpans.Add(1)
		go s.readSpan(st, req.ID, Class(req.Class), int(req.Arg), count)

	case wire.OpWriteSpan:
		count, err := wire.DecodeSpanCount(req.Payload)
		if err != nil {
			// Without a parseable count the stream cannot be drained;
			// drop the connection.
			st.respondErr(req.ID, err)
			return false
		}
		if st.streams == nil {
			st.streams = make(map[uint64]*wstream)
		}
		if len(st.streams) >= maxOpenStreams {
			return false
		}
		if _, dup := st.streams[req.ID]; dup {
			return false
		}
		ws := &wstream{
			WriteStream: wire.WriteStream{Start: int(req.Arg), Count: count},
			st:          st,
			id:          req.ID,
			class:       Class(req.Class),
		}
		ws.outstanding.Store(1) // the reader's token
		capa := stt.Capacity()
		if req.Arg >= uint64(capa) || count > capa-int(req.Arg) {
			// Answer now, but keep the stream registered poisoned: the
			// client may have pipelined chunk frames before seeing the
			// error, and they must drain by count, not kill the conn.
			ws.poisoned = true
			ws.responded.Store(true)
			st.respondErr(req.ID, fmt.Errorf("span [%d,+%d) outside capacity %d", req.Arg, count, capa))
		}
		st.streams[req.ID] = ws
		s.writeStreams.Add(1)

	case wire.OpWriteChunk:
		ws, ok := st.streams[req.ID]
		if !ok {
			return false // chunk for a stream never opened: broken peer
		}
		return s.writeChunk(st, ws, req, fb)

	case wire.OpFail:
		fail := stt.Fail
		if s.FailDisk != nil {
			fail = s.FailDisk
		}
		if err := fail(int(req.Arg)); err != nil {
			st.respondErr(req.ID, err)
		} else {
			st.send(s.getResp(req.ID, wire.StatusOK, nil))
		}

	case wire.OpRebuild:
		id := req.ID
		st.pending.Add(1)
		go func() {
			defer st.pending.Done()
			if err := s.rebuild(); err != nil {
				st.respondErr(id, err)
			} else {
				st.send(s.getResp(id, wire.StatusOK, nil))
			}
		}()

	case wire.OpStats:
		b, err := json.Marshal(s.stats())
		if err != nil {
			st.respondErr(req.ID, err)
		} else {
			st.send(s.getResp(req.ID, wire.StatusOK, b))
		}

	default:
		st.respondErr(req.ID, fmt.Errorf("unknown op %d", req.Op))
	}
	return true
}

// writeChunk feeds one OpWriteChunk frame into its stream: validate the
// sequencing, then submit each unit as a write op whose buffer aliases
// the frame payload (fb holds one reference per unit until that unit's
// completion runs).
func (s *Server) writeChunk(st *connState, ws *wstream, req *wire.Request, fb *frameBuf) bool {
	unit := s.unit
	if ws.poisoned {
		// The stream already answered (early error); drain the client's
		// remaining pipelined chunks by unit count.
		if len(req.Payload) < unit {
			return false // cannot make progress: broken peer
		}
		ws.seen += len(req.Payload) / unit
		if ws.seen >= ws.Count {
			delete(st.streams, req.ID)
		}
		return true
	}
	k, err := ws.Consume(req.Arg, len(req.Payload), unit)
	if err != nil {
		// Sequencing violation: answer once, then drain the rest of the
		// declared count (the client may have pipelined ahead).
		if ws.responded.CompareAndSwap(false, true) {
			st.respondErr(req.ID, err)
		}
		ws.poisoned = true
		adv := len(req.Payload) / unit
		if adv < 1 {
			adv = 1
		}
		ws.seen += adv
		if ws.seen >= ws.Count {
			delete(st.streams, req.ID)
		}
		return true
	}
	fb.retain(int32(k))
	for i := 0; i < k; i++ {
		sr := s.getReq(st, req.ID)
		sr.fb = fb
		sr.ws = ws
		st.pending.Add(1)
		ws.outstanding.Add(1)
		buf := req.Payload[i*unit : (i+1)*unit]
		if err := s.front.Go(s.ctx, Op{Kind: Write, Class: ws.class, Logical: int(req.Arg) + i, Buf: buf}, sr.cb); err != nil {
			fb.release()
			s.putReq(sr)
			st.pending.Done()
			ws.fail(err)
			ws.drop()
		}
	}
	ws.seen += k
	if ws.seen >= ws.Count {
		// Final chunk submitted: drop the reader token so the last unit
		// completion (or this drop, if all already landed) answers.
		delete(st.streams, req.ID)
		ws.drop()
	}
	return true
}

// readSpan streams count units starting at start back as ordered
// StatusChunk frames. Each chunk is a pooled buffer scatter-filled by
// per-unit read ops through the frontend's batch path, handed to the
// writer as one iovec, and recycled after its writev lands.
func (s *Server) readSpan(st *connState, id uint64, class Class, start, count int) {
	defer func() {
		<-st.spanSem
		st.pending.Done()
	}()
	unit := s.unit
	cu := s.chunkUnits()
	cbp := s.chunkPool.Get().(*[]byte)
	for done := 0; done < count; {
		k := min(cu, count-done)
		chunk := (*cbp)[:k*unit]
		var wg sync.WaitGroup
		var errMu sync.Mutex
		var firstErr error
		cb := func(err error) {
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
			wg.Done()
		}
		for i := 0; i < k; i++ {
			wg.Add(1)
			if err := s.front.Go(s.ctx, Op{Kind: Read, Class: class, Logical: start + done + i, Buf: chunk[i*unit : (i+1)*unit]}, cb); err != nil {
				cb(err)
			}
		}
		wg.Wait()
		errMu.Lock()
		err := firstErr
		errMu.Unlock()
		if err != nil {
			s.chunkPool.Put(cbp)
			st.respondErr(id, err)
			return
		}
		r := s.getResp(id, wire.StatusChunk, chunk)
		r.chunkBuf = cbp
		st.send(r)
		// The writer owns that buffer now; take a fresh one.
		cbp = s.chunkPool.Get().(*[]byte)
		done += k
	}
	s.chunkPool.Put(cbp)
}

func (s *Server) rebuild() error {
	st := s.front.Store()
	// Validate before provisioning: the replacement is a disk-sized
	// allocation, and a hostile peer can send rebuild frames for free.
	if st.Failed() < 0 {
		return errors.New("rebuild: no failed disk")
	}
	if !s.rebuilding.CompareAndSwap(false, true) {
		return errors.New("rebuild: already in progress")
	}
	defer s.rebuilding.Store(false)
	if s.RebuildDisk != nil {
		return s.RebuildDisk()
	}
	var rep store.Backend
	var err error
	if s.Replacement != nil {
		rep, err = s.Replacement()
	} else {
		rep = store.NewMemDisk(int64(st.Mapper().DiskUnits()) * int64(st.UnitSize()))
	}
	if err != nil {
		return err
	}
	if err := st.Rebuild(rep); err != nil {
		rep.Close()
		return err
	}
	return nil
}

func (s *Server) stats() ServerStats {
	st := s.front.Store().Stats()
	out := ServerStats{Frontend: s.front.Stats()}
	out.Store.FailedDisk = st.Failed
	out.Store.FailedDisks = st.FailedDisks
	c := s.front.Store().Code()
	out.Store.Codec = c.Name()
	out.Store.ParityShards = c.ParityShards()
	out.Store.Rebuilding = st.Rebuilding
	out.Store.RebuiltStripes = st.RebuiltStripes
	out.Store.TotalStripes = st.TotalStripes
	for _, d := range st.Disks {
		out.Store.Reads += d.Reads
		out.Store.Writes += d.Writes
		out.Store.ReadBytes += d.ReadBytes
		out.Store.WriteBytes += d.WriteBytes
		out.Store.Degraded += d.Degraded
	}
	return out
}
