package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/pdl/serve/wire"
	"repro/pdl/store"
)

// ServerStats is the JSON payload answering wire.OpStats.
type ServerStats struct {
	// Store is the byte engine's per-disk counters and failure state.
	Store StoreStats `json:"store"`

	// Frontend is the batching front end's counters.
	Frontend Stats `json:"frontend"`
}

// StoreStats mirrors store.Stats for the wire (kept separate so the
// protocol schema is explicit and stable).
type StoreStats struct {
	FailedDisk int   `json:"failed_disk"`
	Rebuilding bool  `json:"rebuilding"`
	Reads      int64 `json:"reads"`
	Writes     int64 `json:"writes"`
	ReadBytes  int64 `json:"read_bytes"`
	WriteBytes int64 `json:"write_bytes"`
	Degraded   int64 `json:"degraded"`
}

// Server carries the wire protocol over TCP connections, submitting
// client requests to a Frontend. Requests from every connection share
// the frontend's queues, so independent clients coalesce into the same
// batches.
type Server struct {
	// Replacement provisions the spare backend a wire.OpRebuild rebuilds
	// onto. Nil defaults to a fresh MemDisk sized for the geometry.
	// Ignored when RebuildDisk is set.
	Replacement func() (store.Backend, error)

	// FailDisk, when non-nil, handles wire.OpFail instead of the store's
	// in-memory Fail. Durable servers point it at array.Fail so the
	// scrub and the persisted failure state survive a restart.
	FailDisk func(disk int) error

	// RebuildDisk, when non-nil, handles wire.OpRebuild instead of the
	// default rebuild-onto-Replacement. Durable servers point it at
	// array.Rebuild so the reconstructed bytes and the manifest state
	// land on disk. The server still serializes rebuild requests.
	RebuildDisk func() error

	front *Frontend

	mu     sync.Mutex
	lns    map[net.Listener]struct{}
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	ctx    context.Context
	cancel context.CancelFunc

	// rebuilding gates OpRebuild: one replacement disk is provisioned at
	// a time, so a burst of rebuild frames cannot amplify a few bytes of
	// input into many disk-sized allocations.
	rebuilding atomic.Bool

	bufPool  sync.Pool // unit payload buffers
	respPool sync.Pool // encoded response frames
}

// NewServer returns a Server submitting to front. Serve it on one or
// more listeners; Close stops them all.
func NewServer(front *Frontend) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		front:  front,
		lns:    make(map[net.Listener]struct{}),
		conns:  make(map[net.Conn]struct{}),
		ctx:    ctx,
		cancel: cancel,
	}
	unit := front.Store().UnitSize()
	s.bufPool.New = func() any {
		b := make([]byte, unit)
		return &b
	}
	s.respPool.New = func() any {
		b := make([]byte, 0, wire.RespHeaderLen+unit+4)
		return &b
	}
	return s
}

// Serve accepts connections on ln until Close (or a listener error) and
// handles each on its own goroutines. It blocks; run it in a goroutine.
// After Close it returns nil.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			delete(s.lns, ln)
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Close stops all listeners and connections and waits for the handlers.
// The Frontend and Store stay open (the caller owns them).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for ln := range s.lns {
		ln.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
	return nil
}

// handle runs one connection: a reader loop decoding and submitting
// requests, and a writer goroutine serializing completed responses
// (flushed when the queue momentarily drains, so TCP writes batch too).
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	out := make(chan *[]byte, 256)
	var writerDone sync.WaitGroup
	writerDone.Add(1)
	go func() {
		defer writerDone.Done()
		bw := bufio.NewWriter(conn)
		broken := false
		for b := range out {
			if !broken {
				if _, err := bw.Write(*b); err != nil {
					broken = true
				} else if len(out) == 0 {
					if err := bw.Flush(); err != nil {
						broken = true
					}
				}
			}
			s.respPool.Put(b)
		}
	}()

	// pending tracks in-flight submissions whose completions will still
	// write to out; the channel closes only after they all land.
	var pending sync.WaitGroup
	br := bufio.NewReader(conn)
	var frame []byte
	for {
		body, err := wire.ReadFrame(br, frame)
		if err != nil {
			break
		}
		frame = body
		var req wire.Request
		if err := wire.DecodeRequest(body, &req); err != nil {
			// A malformed body means a broken peer; drop the connection
			// (the request id cannot be trusted for an error reply).
			break
		}
		s.dispatch(out, &pending, &req)
	}
	pending.Wait()
	close(out)
	writerDone.Wait()
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// dispatch routes one decoded request. req.Payload aliases the reader's
// frame buffer and must be copied before the handler returns.
func (s *Server) dispatch(out chan<- *[]byte, pending *sync.WaitGroup, req *wire.Request) {
	st := s.front.Store()
	switch req.Op {
	case wire.OpInfo:
		info := wire.Info{
			UnitSize: st.UnitSize(),
			Capacity: st.Capacity(),
			Disks:    st.Mapper().Disks(),
			Failed:   st.Failed(),
		}
		var buf [24]byte
		s.respond(out, req.ID, wire.StatusOK, wire.AppendInfo(buf[:0], &info))

	case wire.OpRead:
		bp := s.bufPool.Get().(*[]byte)
		id := req.ID
		pending.Add(1)
		err := s.front.Go(s.ctx, Op{Kind: Read, Class: Class(req.Class), Logical: int(req.Arg), Buf: *bp}, func(err error) {
			if err != nil {
				s.respondErr(out, id, err)
			} else {
				s.respond(out, id, wire.StatusOK, *bp)
			}
			s.bufPool.Put(bp)
			pending.Done()
		})
		if err != nil {
			s.bufPool.Put(bp)
			pending.Done()
			s.respondErr(out, id, err)
		}

	case wire.OpWrite:
		if len(req.Payload) != st.UnitSize() {
			s.respondErr(out, req.ID, fmt.Errorf("write payload %d bytes, want unit size %d", len(req.Payload), st.UnitSize()))
			return
		}
		bp := s.bufPool.Get().(*[]byte)
		copy(*bp, req.Payload)
		id := req.ID
		pending.Add(1)
		err := s.front.Go(s.ctx, Op{Kind: Write, Class: Class(req.Class), Logical: int(req.Arg), Buf: *bp}, func(err error) {
			if err != nil {
				s.respondErr(out, id, err)
			} else {
				s.respond(out, id, wire.StatusOK, nil)
			}
			s.bufPool.Put(bp)
			pending.Done()
		})
		if err != nil {
			s.bufPool.Put(bp)
			pending.Done()
			s.respondErr(out, id, err)
		}

	case wire.OpFail:
		fail := st.Fail
		if s.FailDisk != nil {
			fail = s.FailDisk
		}
		if err := fail(int(req.Arg)); err != nil {
			s.respondErr(out, req.ID, err)
		} else {
			s.respond(out, req.ID, wire.StatusOK, nil)
		}

	case wire.OpRebuild:
		id := req.ID
		pending.Add(1)
		go func() {
			defer pending.Done()
			if err := s.rebuild(); err != nil {
				s.respondErr(out, id, err)
			} else {
				s.respond(out, id, wire.StatusOK, nil)
			}
		}()

	case wire.OpStats:
		b, err := json.Marshal(s.stats())
		if err != nil {
			s.respondErr(out, req.ID, err)
		} else {
			s.respond(out, req.ID, wire.StatusOK, b)
		}

	default:
		s.respondErr(out, req.ID, fmt.Errorf("unknown op %d", req.Op))
	}
}

func (s *Server) rebuild() error {
	st := s.front.Store()
	// Validate before provisioning: the replacement is a disk-sized
	// allocation, and a hostile peer can send rebuild frames for free.
	if st.Failed() < 0 {
		return errors.New("rebuild: no failed disk")
	}
	if !s.rebuilding.CompareAndSwap(false, true) {
		return errors.New("rebuild: already in progress")
	}
	defer s.rebuilding.Store(false)
	if s.RebuildDisk != nil {
		return s.RebuildDisk()
	}
	var rep store.Backend
	var err error
	if s.Replacement != nil {
		rep, err = s.Replacement()
	} else {
		rep = store.NewMemDisk(int64(st.Mapper().DiskUnits()) * int64(st.UnitSize()))
	}
	if err != nil {
		return err
	}
	if err := st.Rebuild(rep); err != nil {
		rep.Close()
		return err
	}
	return nil
}

func (s *Server) stats() ServerStats {
	st := s.front.Store().Stats()
	out := ServerStats{Frontend: s.front.Stats()}
	out.Store.FailedDisk = st.Failed
	out.Store.Rebuilding = st.Rebuilding
	for _, d := range st.Disks {
		out.Store.Reads += d.Reads
		out.Store.Writes += d.Writes
		out.Store.ReadBytes += d.ReadBytes
		out.Store.WriteBytes += d.WriteBytes
		out.Store.Degraded += d.Degraded
	}
	return out
}

// respond encodes and queues one response frame.
func (s *Server) respond(out chan<- *[]byte, id uint64, status uint8, payload []byte) {
	bp := s.respPool.Get().(*[]byte)
	*bp = wire.AppendResponse((*bp)[:0], &wire.Response{ID: id, Status: status, Payload: payload})
	out <- bp
}

func (s *Server) respondErr(out chan<- *[]byte, id uint64, err error) {
	if err == nil {
		err = errors.New("unknown error")
	}
	s.respond(out, id, wire.StatusErr, []byte(err.Error()))
}
