package serve

import "repro/pdl/obs"

// RegisterMetrics registers the frontend's metric families with r under
// the pdl_serve_* namespace. The series read the atomics the submit,
// batch, and completion paths already maintain plus the two per-class
// latency histograms, so scraping costs nothing on those paths.
func (f *Frontend) RegisterMetrics(r *obs.Registry) {
	fg := obs.Label{Key: "class", Value: "foreground"}
	bg := obs.Label{Key: "class", Value: "background"}
	r.CounterFunc("pdl_serve_submitted_total",
		"Requests admitted to the frontend queues.",
		func() int64 { return f.submitted.Load() - f.background.Load() }, fg)
	r.CounterFunc("pdl_serve_submitted_total",
		"Requests admitted to the frontend queues.",
		f.background.Load, bg)
	r.CounterFunc("pdl_serve_completed_total",
		"Requests completed (both classes).",
		f.completed.Load)
	r.CounterFunc("pdl_serve_rejected_total",
		"Submissions refused at admission (validation, cancellation, closed).",
		f.rejected.Load)
	r.CounterFunc("pdl_serve_batches_total",
		"Batches dispatched to the store.",
		f.batches.Load)
	r.CounterFunc("pdl_serve_batched_ops_total",
		"Requests carried by dispatched batches (ratio to batches is the coalescing factor).",
		f.batchedOps.Load)
	r.CounterFunc("pdl_serve_flush_total",
		"Batch dispatches by flush reason.",
		f.flushFull.Load, obs.Label{Key: "reason", Value: "full"})
	r.CounterFunc("pdl_serve_flush_total",
		"Batch dispatches by flush reason.",
		f.flushDL.Load, obs.Label{Key: "reason", Value: "deadline"})
	r.GaugeFunc("pdl_serve_queue_depth",
		"Requests waiting in the class's submission queue.",
		func() int64 { return int64(len(f.fg)) }, fg)
	r.GaugeFunc("pdl_serve_queue_depth",
		"Requests waiting in the class's submission queue.",
		func() int64 { return int64(len(f.bg)) }, bg)
	r.RegisterHist("pdl_serve_latency_seconds",
		"End-to-end request latency, admission to completion.",
		&f.latHist[Foreground], fg)
	r.RegisterHist("pdl_serve_latency_seconds",
		"End-to-end request latency, admission to completion.",
		&f.latHist[Background], bg)
}

// RegisterMetrics registers the server's connection and wire v2 stream
// counters with r.
func (s *Server) RegisterMetrics(r *obs.Registry) {
	r.CounterFunc("pdl_serve_conns_accepted_total",
		"TCP connections accepted over the server's life.",
		s.connsAccepted.Load)
	r.GaugeFunc("pdl_serve_open_conns",
		"Currently open server connections.",
		func() int64 {
			s.mu.Lock()
			n := len(s.conns)
			s.mu.Unlock()
			return int64(n)
		})
	r.CounterFunc("pdl_serve_read_spans_total",
		"Wire v2 OpReadSpan streams started on the server.",
		s.readSpans.Load)
	r.CounterFunc("pdl_serve_write_streams_total",
		"Wire v2 OpWriteSpan streams opened on the server.",
		s.writeStreams.Load)
}

// RegisterMetrics registers the client's request and wire v2 stream
// counters with r. labels qualify every series — pass an endpoint label
// when one process holds clients to several servers so the series do not
// collide.
func (c *Client) RegisterMetrics(r *obs.Registry, labels ...obs.Label) {
	r.CounterFunc("pdl_serve_client_requests_total",
		"Unit requests started by the client.",
		c.requests.Load, labels...)
	r.CounterFunc("pdl_serve_client_read_spans_total",
		"Wire v2 OpReadSpan streams opened by the client.",
		c.readSpans.Load, labels...)
	r.CounterFunc("pdl_serve_client_write_streams_total",
		"Wire v2 OpWriteSpan streams opened by the client.",
		c.writeStreams.Load, labels...)
	r.GaugeFunc("pdl_serve_client_conns",
		"TCP connections the client striped its requests across at dial time.",
		func() int64 { return int64(len(c.conns)) }, labels...)
}
