package serve_test

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/pdl/serve"
	"repro/pdl/serve/wire"
)

// rawV2Conn speaks the v2 framing by hand so tests can send frame
// sequences the real client never emits — out-of-range spans, stale
// chunk ids — and observe exactly how the server answers.
type rawV2Conn struct {
	conn net.Conn
	br   *bufio.Reader
}

func dialRawV2(t *testing.T, addr string) *rawV2Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &rawV2Conn{conn: conn, br: bufio.NewReader(conn)}
}

func (r *rawV2Conn) send(t *testing.T, req *wire.Request) {
	t.Helper()
	if _, err := r.conn.Write(wire.AppendRequest(nil, req)); err != nil {
		t.Fatal(err)
	}
}

func (r *rawV2Conn) recv(t *testing.T) wire.Response {
	t.Helper()
	body, err := wire.ReadFrame(r.br, nil)
	if err != nil {
		t.Fatal(err)
	}
	var resp wire.Response
	if err := wire.DecodeResponse(body, &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestWriteStreamEarlyErrorDrains sends an out-of-range write span with
// its chunks already pipelined behind it — the way the real client
// races ahead — and checks the server answers the span once with an
// error, absorbs every pipelined chunk, and keeps serving the
// connection afterwards.
func TestWriteStreamEarlyErrorDrains(t *testing.T) {
	const unitSize = 32
	f := mustFrontend(t, 13, 4, 1, unitSize, serve.Config{QueueDepth: 8, FlushDelay: -1})
	addr := startServer(t, f)
	rc := dialRawV2(t, addr)

	capa := f.Store().Capacity()
	const count = 4
	start := capa - 2 // span sticks out past the end: rejected at open
	rc.send(t, &wire.Request{ID: 1, Op: wire.OpWriteSpan, Arg: uint64(start),
		Payload: wire.AppendSpanCount(nil, count)})
	chunk := payload(make([]byte, 2*unitSize), 1)
	rc.send(t, &wire.Request{ID: 1, Op: wire.OpWriteChunk, Arg: uint64(start), Payload: chunk})
	rc.send(t, &wire.Request{ID: 1, Op: wire.OpWriteChunk, Arg: uint64(start + 2), Payload: chunk})

	resp := rc.recv(t)
	if resp.ID != 1 || resp.Status != wire.StatusErr {
		t.Fatalf("span open: id %d status %d, want StatusErr", resp.ID, resp.Status)
	}

	// The connection survived the poisoned stream: a normal unit write
	// still round-trips.
	want := payload(make([]byte, unitSize), 2)
	rc.send(t, &wire.Request{ID: 2, Op: wire.OpWrite, Arg: 0, Payload: want})
	if resp := rc.recv(t); resp.ID != 2 || resp.Status != wire.StatusOK {
		t.Fatalf("write after poisoned stream: id %d status %d", resp.ID, resp.Status)
	}
	rc.send(t, &wire.Request{ID: 3, Op: wire.OpRead, Arg: 0})
	if resp := rc.recv(t); resp.Status != wire.StatusOK || !bytes.Equal(resp.Payload, want) {
		t.Fatal("read after poisoned stream diverges")
	}
}

// TestWriteChunkUnknownStreamDropsConn sends a chunk for a stream that
// was never opened: the server cannot sequence it, so the connection
// must drop (a broken peer, not a recoverable error).
func TestWriteChunkUnknownStreamDropsConn(t *testing.T) {
	const unitSize = 32
	f := mustFrontend(t, 13, 4, 1, unitSize, serve.Config{QueueDepth: 8, FlushDelay: -1})
	addr := startServer(t, f)
	rc := dialRawV2(t, addr)

	rc.send(t, &wire.Request{ID: 99, Op: wire.OpWriteChunk, Arg: 0,
		Payload: make([]byte, unitSize)})
	rc.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := wire.ReadFrame(rc.br, nil); err == nil {
		t.Fatal("server answered a chunk for an unopened stream; want dropped connection")
	}
}

// TestStreamMissequencedChunk opens a valid stream, then sends a chunk
// at the wrong offset: the server must answer the stream id once with
// an error, drain the remaining declared units, and keep the
// connection serving.
func TestStreamMissequencedChunk(t *testing.T) {
	const unitSize = 32
	f := mustFrontend(t, 13, 4, 1, unitSize, serve.Config{QueueDepth: 8, FlushDelay: -1})
	addr := startServer(t, f)
	rc := dialRawV2(t, addr)

	const count = 4
	rc.send(t, &wire.Request{ID: 7, Op: wire.OpWriteSpan, Arg: 0,
		Payload: wire.AppendSpanCount(nil, count)})
	chunk := payload(make([]byte, 2*unitSize), 3)
	// Wrong offset: chunk claims unit 1, stream expects unit 0.
	rc.send(t, &wire.Request{ID: 7, Op: wire.OpWriteChunk, Arg: 1, Payload: chunk})
	rc.send(t, &wire.Request{ID: 7, Op: wire.OpWriteChunk, Arg: 3, Payload: chunk})

	if resp := rc.recv(t); resp.ID != 7 || resp.Status != wire.StatusErr {
		t.Fatalf("missequenced stream: id %d status %d, want StatusErr", resp.ID, resp.Status)
	}
	rc.send(t, &wire.Request{ID: 8, Op: wire.OpInfo})
	if resp := rc.recv(t); resp.ID != 8 || resp.Status != wire.StatusOK {
		t.Fatal("connection did not survive a missequenced stream")
	}
}

// TestPipelinedCancelBufferSafety closes the client while a crowd of
// goroutines has span reads and writes in flight, then immediately
// scribbles over every caller-owned buffer. If the connection reader
// (or any pooled-buffer recycling) still touched a buffer after its
// call completed, the race detector catches the overlap — this is the
// regression gate for the zero-copy invariant that a payload buffer is
// never written after its caller has been released.
func TestPipelinedCancelBufferSafety(t *testing.T) {
	const unitSize = 64
	f := mustFrontend(t, 13, 4, 2, unitSize, serve.Config{QueueDepth: 16, FlushDelay: -1})
	addr := startServer(t, f)
	c, err := serve.Dial(addr, serve.WithConns(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	size := c.Size()
	const workers = 16
	span := int(size / workers / 2)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := payload(make([]byte, span), g)
			off := int64(g) * int64(span)
			<-start
			for i := 0; ; i++ {
				var err error
				if g%2 == 0 {
					_, err = c.WriteAt(buf, off)
				} else {
					_, err = c.ReadAt(buf, off)
				}
				// The call returned: the client must have released the
				// buffer entirely. Scribble over it at once — any late
				// ReadFull into it (or writev still holding it as an
				// iovec) is a race-detector hit.
				for j := range buf {
					buf[j] = byte(i)
				}
				if err != nil {
					if !errors.Is(err, serve.ErrClientClosed) && !errors.Is(err, io.EOF) {
						var re *serve.RemoteError
						if errors.As(err, &re) {
							t.Errorf("worker %d: unexpected remote error: %v", g, err)
						}
					}
					return
				}
			}
		}(g)
	}
	close(start)
	time.Sleep(20 * time.Millisecond) // let the pipeline fill
	c.Close()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("workers did not unwind after Close")
	}
}

// TestStreamRoundTripLarge pushes a span large enough to split into
// multiple stream segments across multiple connections and checks the
// bytes against a mirror — the v2 data path end to end.
func TestStreamRoundTripLarge(t *testing.T) {
	const unitSize = 64
	f := mustFrontend(t, 13, 4, 4, unitSize, serve.Config{QueueDepth: 16, FlushDelay: -1})
	addr := startServer(t, f)
	c, err := serve.Dial(addr, serve.WithConns(3))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if c.ProtocolVersion() != wire.Version2 || c.Features()&wire.FeatStreams == 0 {
		t.Fatalf("handshake: v%d feats %#x, want v2 streams", c.ProtocolVersion(), c.Features())
	}

	size := c.Size()
	span := int(size - 2*unitSize - 11)
	want := payload(make([]byte, span), 5)
	const off = int64(unitSize + 3) // unaligned head and tail around the stream
	if n, err := c.WriteAt(want, off); err != nil || n != span {
		t.Fatalf("WriteAt: n=%d err=%v", n, err)
	}
	got := make([]byte, span)
	if n, err := c.ReadAt(got, off); err != nil || n != span {
		t.Fatalf("ReadAt: n=%d err=%v", n, err)
	}
	if !bytes.Equal(got, want) {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("diverges at byte %d of %d", i, span)
			}
		}
	}
}
