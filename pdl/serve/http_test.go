package serve_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/pdl/obs"
	"repro/pdl/serve"
	"repro/pdl/store"
)

// slowDisk throttles WriteAt so an online rebuild onto it stays
// observable: the mid-rebuild scrape below needs a window where
// 0 < rebuilt_stripes < total.
type slowDisk struct {
	store.Backend
	delay time.Duration
}

func (d *slowDisk) WriteAt(p []byte, off int64) (int, error) {
	time.Sleep(d.delay)
	return d.Backend.WriteAt(p, off)
}

// metricValue finds series name{...} in a Prometheus exposition and
// returns its value; label is a substring the label set must contain
// ("" matches any series of the family).
func metricValue(t *testing.T, text, name, label string) (float64, bool) {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + `(\{[^}]*\})? (\S+)$`)
	for _, m := range re.FindAllStringSubmatch(text, -1) {
		if label != "" && !strings.Contains(m[1], label) {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			t.Fatalf("%s: bad value %q", name, m[2])
		}
		return v, true
	}
	return 0, false
}

// TestMetricsEndToEnd is the acceptance path for the obs stack: serve an
// instrumented frontend over HTTP, fail a disk, scrape /metrics in the
// middle of an online rebuild under foreground load, and check the
// exposition carries per-disk degraded counters, rebuild progress, and
// foreground latency buckets.
func TestMetricsEndToEnd(t *testing.T) {
	const unitSize = 512
	f := mustFrontend(t, 9, 3, 1, unitSize, serve.Config{FlushDelay: -1})
	s := f.Store()
	reg := obs.NewRegistry()
	s.RegisterMetrics(reg)
	f.RegisterMetrics(reg)
	h := obs.NewHandler(reg)
	h.AddStatus("array", func() any {
		st := s.Stats()
		return map[string]any{"failed_disk": st.Failed, "rebuilding": st.Rebuilding}
	})
	web := httptest.NewServer(h)
	defer web.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(web.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		return string(b), resp.Header.Get("Content-Type")
	}

	ctx := context.Background()
	buf := make([]byte, unitSize)
	capacity := s.Capacity()
	for i := 0; i < capacity; i++ {
		if err := f.Write(ctx, i, payload(buf, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Fail(0); err != nil {
		t.Fatal(err)
	}
	// Degraded foreground reads: units on disk 0 reconstruct by survivor
	// XOR, charging degraded ops to the surviving disks.
	for i := 0; i < capacity; i++ {
		if err := f.Read(ctx, i, buf); err != nil {
			t.Fatal(err)
		}
	}

	// Rebuild onto a throttled replacement so the scrape below lands
	// mid-rebuild, with foreground load still running.
	need := int64(s.Mapper().DiskUnits()) * unitSize
	rebuilt := make(chan error, 1)
	go func() {
		rebuilt <- s.Rebuild(&slowDisk{Backend: store.NewMemDisk(need), delay: time.Millisecond})
	}()
	stopLoad := make(chan struct{})
	loadDone := make(chan struct{})
	go func() {
		defer close(loadDone)
		b := make([]byte, unitSize)
		for i := 0; ; i++ {
			select {
			case <-stopLoad:
				return
			default:
				if err := f.Read(ctx, i%capacity, b); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	var midText string
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("never observed a mid-rebuild scrape")
		}
		text, ctype := get("/metrics")
		if !strings.Contains(ctype, "version=0.0.4") {
			t.Fatalf("content type %q is not exposition format 0.0.4", ctype)
		}
		total, _ := metricValue(t, text, "pdl_store_stripes", "")
		prog, _ := metricValue(t, text, "pdl_store_rebuilt_stripes", "")
		if r, ok := metricValue(t, text, "pdl_store_rebuilding", ""); ok && r == 1 && prog > 0 && prog < total {
			midText = text
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stopLoad)
	<-loadDone

	// Per-disk degraded counters: the survivor XOR charged some disk.
	if v, ok := metricValue(t, midText, "pdl_store_disk_degraded_total", `disk="1"`); !ok || v <= 0 {
		t.Errorf("pdl_store_disk_degraded_total{disk=1} = %v, want > 0", v)
	}
	// Foreground latency histogram: buckets present and counting.
	if !strings.Contains(midText, `pdl_serve_latency_seconds_bucket{class="foreground",le="`) {
		t.Error("no foreground latency buckets in mid-rebuild exposition")
	}
	if v, ok := metricValue(t, midText, "pdl_serve_latency_seconds_count", `class="foreground"`); !ok || v <= 0 {
		t.Errorf("foreground latency count = %v, want > 0", v)
	}

	if err := <-rebuilt; err != nil {
		t.Fatal(err)
	}
	text, _ := get("/metrics")
	if v, _ := metricValue(t, text, "pdl_store_rebuilding", ""); v != 0 {
		t.Errorf("pdl_store_rebuilding = %v after rebuild, want 0", v)
	}
	if v, _ := metricValue(t, text, "pdl_store_failed_disk", ""); v != -1 {
		t.Errorf("pdl_store_failed_disk = %v after rebuild, want -1", v)
	}

	// /statusz carries the status sections and the metric snapshot;
	// /healthz answers.
	statusz, ctype := get("/statusz")
	if !strings.Contains(ctype, "application/json") {
		t.Errorf("statusz content type %q", ctype)
	}
	var status map[string]json.RawMessage
	if err := json.Unmarshal([]byte(statusz), &status); err != nil {
		t.Fatalf("statusz is not JSON: %v", err)
	}
	for _, key := range []string{"array", "metrics"} {
		if _, ok := status[key]; !ok {
			t.Errorf("statusz missing %q section", key)
		}
	}
	if body, _ := get("/healthz"); body != "ok\n" {
		t.Errorf("healthz = %q", body)
	}
}
