package serve_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/pdl"
	"repro/pdl/serve"
	"repro/pdl/store"
)

// Bench geometry: ring v=17 k=4, 4 layout copies per disk, 1 KiB units,
// MemDisk backends — the BENCH_serve.json configuration. The batched/
// unbatched pair differs only in QueueDepth: 1 disables coalescing
// (every request is its own batch), 32 is the acceptance configuration.
const (
	benchUnit     = 1024
	benchDepth    = 32
	benchInflight = 256
)

func benchFrontend(b *testing.B, depth int) *serve.Frontend {
	b.Helper()
	res, err := pdl.Build(17, 4)
	if err != nil {
		b.Fatal(err)
	}
	s, err := store.Open(res, 4*res.Layout.Size, benchUnit, nil)
	if err != nil {
		b.Fatal(err)
	}
	f := serve.New(s, serve.Config{QueueDepth: depth, FlushDelay: 100 * time.Microsecond})
	b.Cleanup(func() {
		f.Close()
		s.Close()
	})
	buf := make([]byte, benchUnit)
	for i := 0; i < s.Capacity(); i++ {
		if err := s.Write(i, buf); err != nil {
			b.Fatal(err)
		}
	}
	return f
}

// benchAsyncWrite drives b.N pipelined small writes (sequential
// addresses, benchInflight in flight) through the frontend — the same
// submission pattern the TCP server uses.
func benchAsyncWrite(b *testing.B, depth int) {
	f := benchFrontend(b, depth)
	capacity := f.Store().Capacity()
	src := make([]byte, benchUnit)
	sem := make(chan struct{}, benchInflight)
	var wg sync.WaitGroup
	ctx := context.Background()
	cb := func(err error) {
		if err != nil {
			b.Error(err)
		}
		<-sem
		wg.Done()
	}
	b.SetBytes(benchUnit)
	b.ReportAllocs()
	b.ResetTimer()
	wg.Add(b.N)
	for i := 0; i < b.N; i++ {
		sem <- struct{}{}
		if err := f.Go(ctx, serve.Op{Kind: serve.Write, Logical: i % capacity, Buf: src}, cb); err != nil {
			b.Fatal(err)
		}
	}
	wg.Wait()
}

// BenchmarkServeWriteUnbatched is the no-coalescing baseline (queue
// depth 1): every small write is a full read-modify-write pass.
func BenchmarkServeWriteUnbatched(b *testing.B) { benchAsyncWrite(b, 1) }

// BenchmarkServeWriteBatched is the acceptance configuration (queue
// depth 32): sequential small writes coalesce per stripe and whole
// stripes promote to no-preread Condition 5 writes. The BENCH_serve
// criterion: ≥ 2× BenchmarkServeWriteUnbatched.
func BenchmarkServeWriteBatched(b *testing.B) { benchAsyncWrite(b, benchDepth) }

// BenchmarkServeReadBatched measures pipelined reads at queue depth 32
// (reads coalesce into one lock pass per stripe; no promotion applies).
func BenchmarkServeReadBatched(b *testing.B) {
	f := benchFrontend(b, benchDepth)
	capacity := f.Store().Capacity()
	sem := make(chan struct{}, benchInflight)
	bufs := make([][]byte, benchInflight)
	for i := range bufs {
		bufs[i] = make([]byte, benchUnit)
	}
	var wg sync.WaitGroup
	ctx := context.Background()
	cb := func(err error) {
		if err != nil {
			b.Error(err)
		}
		<-sem
		wg.Done()
	}
	b.SetBytes(benchUnit)
	b.ReportAllocs()
	b.ResetTimer()
	wg.Add(b.N)
	for i := 0; i < b.N; i++ {
		sem <- struct{}{}
		if err := f.Go(ctx, serve.Op{Kind: serve.Read, Logical: i % capacity, Buf: bufs[i%benchInflight]}, cb); err != nil {
			b.Fatal(err)
		}
	}
	wg.Wait()
}

// BenchmarkServeDo measures the synchronous single-request path
// (immediate flush): the per-request latency floor of the frontend.
func BenchmarkServeDo(b *testing.B) {
	res, err := pdl.Build(17, 4)
	if err != nil {
		b.Fatal(err)
	}
	s, err := store.Open(res, 4*res.Layout.Size, benchUnit, nil)
	if err != nil {
		b.Fatal(err)
	}
	f := serve.New(s, serve.Config{FlushDelay: -1})
	b.Cleanup(func() {
		f.Close()
		s.Close()
	})
	src := make([]byte, benchUnit)
	ctx := context.Background()
	b.SetBytes(benchUnit)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Write(ctx, i%s.Capacity(), src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeTCPWrite measures the full network path: pipelined unit
// writes from concurrent client goroutines over a real localhost TCP
// connection into the batching frontend.
func BenchmarkServeTCPWrite(b *testing.B) {
	f := benchFrontend(b, benchDepth)
	addr := startServer(b, f)
	c, err := serve.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	capacity := f.Store().Capacity()
	// More in-flight requests than QueueDepth, so batches flush on full
	// rather than waiting out the deadline timer.
	const clients = 64
	var next atomic.Int64
	b.SetBytes(benchUnit)
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := make([]byte, benchUnit)
			for {
				n := int(next.Add(1)) - 1
				if n >= b.N {
					return
				}
				if err := c.Write(n%capacity, src); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		b.Fatal(err)
	}
}
