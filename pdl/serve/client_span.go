package serve

import (
	"fmt"
	"io"

	"repro/pdl/serve/wire"
)

// spanWindow bounds how many unit requests a ReadAt/WriteAt span keeps
// in flight at once: enough concurrency to fill server batches (and,
// for stripe-aligned writes, whole Condition 5 full-stripe promotions),
// bounded so one huge span cannot monopolize client memory or starve
// the connection.
const spanWindow = 64

// Size returns the server's logical byte capacity (Capacity × UnitSize).
func (c *Client) Size() int64 {
	in := c.geom()
	return int64(in.Capacity) * int64(in.UnitSize)
}

// Failed returns the failed disk, -1 when the array is healthy, as of
// the last geometry refresh: the handshake, this client's own Fail or
// Rebuild, or an explicit RefreshInfo. State changed by other clients is
// visible after RefreshInfo (or in Stats).
func (c *Client) Failed() int { return c.geom().Failed }

// flight is one in-progress unit op of a striped span.
type flight struct {
	cl *call

	// scratch is the full-unit buffer a partial read landed in; its
	// [within, within+len(out)) range is copied to out on completion.
	// nil for aligned ops that read directly into the span buffer.
	scratch []byte
	out     []byte
	within  int

	// n is the span bytes this op accounts for.
	n int
}

// ReadAt reads len(p) bytes from the logical byte space starting at off,
// striping the span into unit-granularity requests pipelined over the
// connection — concurrent in-flight units land in the server frontend's
// queues together and coalesce into ReadVec batch passes. Reads crossing
// the end of the array return the available prefix and io.EOF. On a
// request failure it returns the contiguous byte count confirmed before
// the failing offset.
func (c *Client) ReadAt(p []byte, off int64) (int, error) {
	return c.ReadAtClass(p, off, Foreground)
}

// ReadAtClass is ReadAt with an explicit priority class.
func (c *Client) ReadAtClass(p []byte, off int64, class Class) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("serve: ReadAt: negative offset %d", off)
	}
	in := c.geom()
	unit := int64(in.UnitSize)
	size := int64(in.Capacity) * unit
	if off >= size {
		return 0, io.EOF
	}
	eof := false
	if off+int64(len(p)) > size {
		p = p[:size-off]
		eof = true
	}
	var window []flight
	n := 0
	var firstErr error
	drain := func(all bool) {
		for len(window) > 0 && (all || len(window) >= spanWindow) {
			f := window[0]
			window = window[1:]
			err := c.wait(f.cl)
			if err == nil && f.scratch != nil {
				copy(f.out, f.scratch[f.within:f.within+len(f.out)])
			}
			if err != nil && firstErr == nil {
				firstErr = err
			}
			if firstErr == nil {
				n += f.n
			}
		}
	}
	for len(p) > 0 && firstErr == nil {
		logical := off / unit
		within := int(off % unit)
		chunk := int(min(unit-int64(within), int64(len(p))))
		f := flight{out: p[:chunk], within: within, n: chunk}
		dst := p[:chunk]
		if chunk != int(unit) {
			f.scratch = make([]byte, unit)
			dst = f.scratch
		}
		cl, err := c.start(wire.OpRead, class, uint64(logical), nil, dst, nil)
		if err != nil {
			firstErr = err
			break
		}
		f.cl = cl
		window = append(window, f)
		p = p[chunk:]
		off += int64(chunk)
		drain(false)
	}
	drain(true)
	if firstErr != nil {
		return n, firstErr
	}
	if eof {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt writes len(p) bytes to the logical byte space starting at off,
// striping the span into unit-granularity requests pipelined over the
// connection so the server frontend coalesces them into WriteVec batch
// passes — a stripe-aligned span's units arrive together and promote to
// single Condition 5 full-stripe writes. Unit-unaligned head and tail
// edges are client-side read-modify-writes, so a span is not atomic
// against concurrent writers of the same units. On a request failure it
// returns the contiguous byte count confirmed before the failing offset.
func (c *Client) WriteAt(p []byte, off int64) (int, error) {
	return c.WriteAtClass(p, off, Foreground)
}

// WriteAtClass is WriteAt with an explicit priority class.
func (c *Client) WriteAtClass(p []byte, off int64, class Class) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("serve: WriteAt: negative offset %d", off)
	}
	in := c.geom()
	unit := int64(in.UnitSize)
	size := int64(in.Capacity) * unit
	if off+int64(len(p)) > size {
		return 0, fmt.Errorf("serve: WriteAt: [%d,%d) outside array of %d bytes", off, off+int64(len(p)), size)
	}
	n := 0
	// Unaligned head (or a short write inside one unit): read-modify-write.
	if within := int(off % unit); within != 0 || int64(len(p)) < unit {
		chunk := int(min(unit-int64(within), int64(len(p))))
		if err := c.rmwUnit(off/unit, within, p[:chunk], class); err != nil {
			return 0, err
		}
		n += chunk
		off += int64(chunk)
		p = p[chunk:]
	}
	// Aligned middle: pipelined full-unit writes. The wire encoder copies
	// the payload before start returns, so p is not retained.
	var window []flight
	var firstErr error
	drain := func(all bool) {
		for len(window) > 0 && (all || len(window) >= spanWindow) {
			f := window[0]
			window = window[1:]
			if err := c.wait(f.cl); err != nil && firstErr == nil {
				firstErr = err
			}
			if firstErr == nil {
				n += f.n
			}
		}
	}
	for int64(len(p)) >= unit && firstErr == nil {
		cl, err := c.start(wire.OpWrite, class, uint64(off/unit), p[:unit], nil, nil)
		if err != nil {
			firstErr = err
			break
		}
		window = append(window, flight{cl: cl, n: int(unit)})
		p = p[unit:]
		off += unit
		drain(false)
	}
	drain(true)
	if firstErr != nil {
		return n, firstErr
	}
	// Unaligned tail.
	if len(p) > 0 {
		if err := c.rmwUnit(off/unit, 0, p, class); err != nil {
			return n, err
		}
		n += len(p)
	}
	return n, nil
}

// rmwUnit writes bytes [within, within+len(chunk)) of one logical unit
// by reading the unit, patching the range, and writing it back.
func (c *Client) rmwUnit(logical int64, within int, chunk []byte, class Class) error {
	buf := make([]byte, c.UnitSize())
	if err := c.do(wire.OpRead, class, uint64(logical), nil, buf, nil); err != nil {
		return err
	}
	copy(buf[within:], chunk)
	return c.do(wire.OpWrite, class, uint64(logical), buf, nil, nil)
}
