package serve

import (
	"fmt"
	"io"

	"repro/pdl/serve/wire"
)

// spanWindow bounds how many unit requests a ReadAt/WriteAt span keeps
// in flight at once on the v1 unit-op path: enough concurrency to fill
// server batches (and, for stripe-aligned writes, whole Condition 5
// full-stripe promotions), bounded so one huge span cannot monopolize
// client memory or starve the connection.
const spanWindow = 64

const (
	// streamMinUnits is the smallest aligned middle worth a v2 stream;
	// below it the pipelined unit path is just as good and cheaper to
	// set up.
	streamMinUnits = 4

	// maxSegUnits caps one stream segment. Spans larger than this split
	// into several segments striped round-robin across the client's
	// connections, so a single big span uses every TCP window.
	maxSegUnits = 256
)

// streamChunkBytes is the largest whole-unit chunk payload (floor one
// unit — a unit above wire.MaxChunk travels as a single-unit chunk).
func streamChunkBytes(unit int) int {
	cb := wire.MaxChunk / unit * unit
	if cb < unit {
		cb = unit
	}
	return cb
}

// Size returns the server's logical byte capacity (Capacity × UnitSize).
func (c *Client) Size() int64 {
	in := c.geom()
	return int64(in.Capacity) * int64(in.UnitSize)
}

// Failed returns the failed disk, -1 when the array is healthy, as of
// the last geometry refresh: the handshake, this client's own Fail or
// Rebuild, or an explicit RefreshInfo. State changed by other clients is
// visible after RefreshInfo (or in Stats).
func (c *Client) Failed() int { return c.geom().Failed }

// flight is one in-progress unit op of a striped span.
type flight struct {
	cl *call

	// scratch is the full-unit buffer a partial read landed in; its
	// [within, within+len(out)) range is copied to out on completion.
	// nil for aligned ops that read directly into the span buffer.
	scratch []byte
	out     []byte
	within  int

	// n is the span bytes this op accounts for.
	n int
}

// streamEligible reports whether a span's aligned middle is big enough
// for the v2 chunked-stream path (and the handshake accepted it).
func (c *Client) streamEligible(plen int, off int64, unit int) bool {
	if !c.useStreams || unit <= 0 {
		return false
	}
	head := 0
	if w := int(off % int64(unit)); w != 0 {
		head = min(unit-w, plen)
	}
	return (plen-head)/unit >= streamMinUnits
}

// ReadAt reads len(p) bytes from the logical byte space starting at off.
// Against a v2 server, large unit-aligned middles move as chunked read
// streams (one OpReadSpan per segment, segments striped across the
// client's connections, chunk payloads landing directly in p); the
// unit-unaligned edges — and everything, against a v1 server — stripe
// into unit-granularity requests pipelined over the connections, which
// the server frontend coalesces into ReadVec batch passes. Reads
// crossing the end of the array return the available prefix and io.EOF.
// On a request failure it returns the contiguous byte count confirmed
// before the failing offset.
func (c *Client) ReadAt(p []byte, off int64) (int, error) {
	return c.ReadAtClass(p, off, Foreground)
}

// ReadAtClass is ReadAt with an explicit priority class.
func (c *Client) ReadAtClass(p []byte, off int64, class Class) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("serve: ReadAt: negative offset %d", off)
	}
	in := c.geom()
	unit := int64(in.UnitSize)
	size := int64(in.Capacity) * unit
	if off >= size {
		return 0, io.EOF
	}
	eof := false
	if off+int64(len(p)) > size {
		p = p[:size-off]
		eof = true
	}
	var n int
	var err error
	if c.streamEligible(len(p), off, in.UnitSize) {
		n, err = c.readAtStream(p, off, in.UnitSize, class)
	} else {
		n, err = c.readAtUnits(p, off, unit, class)
	}
	if err != nil {
		return n, err
	}
	if eof {
		return n, io.EOF
	}
	return n, nil
}

// readAtStream is the v2 path: synchronous partial-unit head and tail,
// aligned middle as pipelined read-stream segments.
func (c *Client) readAtStream(p []byte, off int64, unit int, class Class) (int, error) {
	n := 0
	if w := int(off % int64(unit)); w != 0 {
		chunk := min(unit-w, len(p))
		scratch := make([]byte, unit)
		if err := c.do(wire.OpRead, class, uint64(off/int64(unit)), nil, scratch, nil); err != nil {
			return 0, err
		}
		copy(p[:chunk], scratch[w:w+chunk])
		n += chunk
		off += int64(chunk)
		p = p[chunk:]
	}
	midUnits := len(p) / unit
	mid := p[:midUnits*unit]
	tail := p[midUnits*unit:]
	startUnit := int(off / int64(unit))

	type seg struct {
		cl    *call
		bytes int
	}
	segs := make([]seg, 0, (midUnits+maxSegUnits-1)/maxSegUnits)
	var firstErr error
	for u := 0; u < midUnits; u += maxSegUnits {
		k := min(maxSegUnits, midUnits-u)
		cl, err := c.startReadSpan(c.pick(), startUnit+u, k, mid[u*unit:(u+k)*unit], class)
		if err != nil {
			firstErr = err
			break
		}
		segs = append(segs, seg{cl, k * unit})
	}
	// Wait for every started segment, even past a failure: later
	// segments' chunks land in p, which the caller owns again the moment
	// we return.
	for _, sg := range segs {
		recv, err := c.waitSpan(sg.cl)
		if firstErr == nil {
			if err != nil {
				n += recv * unit // the stream's confirmed ordered prefix
				firstErr = err
			} else {
				n += sg.bytes
			}
		}
	}
	if firstErr != nil {
		return n, firstErr
	}
	if len(tail) > 0 {
		scratch := make([]byte, unit)
		if err := c.do(wire.OpRead, class, uint64(startUnit+midUnits), nil, scratch, nil); err != nil {
			return n, err
		}
		copy(tail, scratch[:len(tail)])
		n += len(tail)
	}
	return n, nil
}

// readAtUnits is the v1 path: every unit its own pipelined request.
// p is already clamped to the array.
func (c *Client) readAtUnits(p []byte, off, unit int64, class Class) (int, error) {
	var window []flight
	n := 0
	var firstErr error
	drain := func(all bool) {
		for len(window) > 0 && (all || len(window) >= spanWindow) {
			f := window[0]
			window = window[1:]
			err := c.wait(f.cl)
			if err == nil && f.scratch != nil {
				copy(f.out, f.scratch[f.within:f.within+len(f.out)])
			}
			if err != nil && firstErr == nil {
				firstErr = err
			}
			if firstErr == nil {
				n += f.n
			}
		}
	}
	for len(p) > 0 && firstErr == nil {
		logical := off / unit
		within := int(off % unit)
		chunk := int(min(unit-int64(within), int64(len(p))))
		f := flight{out: p[:chunk], within: within, n: chunk}
		dst := p[:chunk]
		if chunk != int(unit) {
			f.scratch = make([]byte, unit)
			dst = f.scratch
		}
		cl, err := c.start(wire.OpRead, class, uint64(logical), nil, dst, nil)
		if err != nil {
			firstErr = err
			break
		}
		f.cl = cl
		window = append(window, f)
		p = p[chunk:]
		off += int64(chunk)
		drain(false)
	}
	drain(true)
	return n, firstErr
}

// WriteAt writes len(p) bytes to the logical byte space starting at off.
// Against a v2 server, large unit-aligned middles move as chunked write
// streams (one OpWriteSpan + OpWriteChunk sequence per segment, striped
// across the connections, chunk payloads sent as iovecs straight from
// p); the edges — and everything, against a v1 server — stripe into
// unit-granularity requests pipelined so the server frontend coalesces
// them into WriteVec batch passes, with stripe-aligned spans promoting
// to single Condition 5 full-stripe writes. Unit-unaligned head and
// tail edges are client-side read-modify-writes, so a span is not
// atomic against concurrent writers of the same units. On a request
// failure it returns the contiguous byte count confirmed before the
// failing offset.
func (c *Client) WriteAt(p []byte, off int64) (int, error) {
	return c.WriteAtClass(p, off, Foreground)
}

// WriteAtClass is WriteAt with an explicit priority class.
func (c *Client) WriteAtClass(p []byte, off int64, class Class) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("serve: WriteAt: negative offset %d", off)
	}
	in := c.geom()
	unit := int64(in.UnitSize)
	size := int64(in.Capacity) * unit
	if off+int64(len(p)) > size {
		return 0, fmt.Errorf("serve: WriteAt: [%d,%d) outside array of %d bytes", off, off+int64(len(p)), size)
	}
	if c.streamEligible(len(p), off, in.UnitSize) {
		return c.writeAtStream(p, off, in.UnitSize, class)
	}
	return c.writeAtUnits(p, off, unit, class)
}

// writeAtStream is the v2 path: synchronous read-modify-write edges,
// aligned middle as pipelined write-stream segments.
func (c *Client) writeAtStream(p []byte, off int64, unit int, class Class) (int, error) {
	n := 0
	if w := int(off % int64(unit)); w != 0 {
		chunk := min(unit-w, len(p))
		if err := c.rmwUnit(off/int64(unit), w, p[:chunk], class); err != nil {
			return 0, err
		}
		n += chunk
		off += int64(chunk)
		p = p[chunk:]
	}
	midUnits := len(p) / unit
	mid := p[:midUnits*unit]
	tail := p[midUnits*unit:]
	startUnit := int(off / int64(unit))

	type seg struct {
		cl    *call
		bytes int
	}
	segs := make([]seg, 0, (midUnits+maxSegUnits-1)/maxSegUnits)
	var firstErr error
	for u := 0; u < midUnits; u += maxSegUnits {
		k := min(maxSegUnits, midUnits-u)
		cl, err := c.startWriteSpan(c.pick(), startUnit+u, mid[u*unit:(u+k)*unit], unit, class)
		if err != nil {
			firstErr = err
			break
		}
		segs = append(segs, seg{cl, k * unit})
	}
	// Wait for every started segment even past a failure: their chunk
	// frames alias p, which the caller owns again once we return.
	for _, sg := range segs {
		_, err := c.waitSpan(sg.cl)
		if firstErr == nil {
			if err != nil {
				// The server applies a write stream all-or-error; a failed
				// segment confirms none of its bytes.
				firstErr = err
			} else {
				n += sg.bytes
			}
		}
	}
	if firstErr != nil {
		return n, firstErr
	}
	if len(tail) > 0 {
		if err := c.rmwUnit(int64(startUnit+midUnits), 0, tail, class); err != nil {
			return n, err
		}
		n += len(tail)
	}
	return n, nil
}

// writeAtUnits is the v1 path: read-modify-write edges and pipelined
// full-unit writes. The span is already validated against the array.
func (c *Client) writeAtUnits(p []byte, off, unit int64, class Class) (int, error) {
	n := 0
	// Unaligned head (or a short write inside one unit): read-modify-write.
	if within := int(off % unit); within != 0 || int64(len(p)) < unit {
		chunk := int(min(unit-int64(within), int64(len(p))))
		if err := c.rmwUnit(off/unit, within, p[:chunk], class); err != nil {
			return 0, err
		}
		n += chunk
		off += int64(chunk)
		p = p[chunk:]
	}
	// Aligned middle: pipelined full-unit writes. Payload frames alias p
	// until each call completes; p stays valid because we drain every
	// in-flight call before returning.
	var window []flight
	var firstErr error
	drain := func(all bool) {
		for len(window) > 0 && (all || len(window) >= spanWindow) {
			f := window[0]
			window = window[1:]
			if err := c.wait(f.cl); err != nil && firstErr == nil {
				firstErr = err
			}
			if firstErr == nil {
				n += f.n
			}
		}
	}
	for int64(len(p)) >= unit && firstErr == nil {
		cl, err := c.start(wire.OpWrite, class, uint64(off/unit), p[:unit], nil, nil)
		if err != nil {
			firstErr = err
			break
		}
		window = append(window, flight{cl: cl, n: int(unit)})
		p = p[unit:]
		off += unit
		drain(false)
	}
	drain(true)
	if firstErr != nil {
		return n, firstErr
	}
	// Unaligned tail.
	if len(p) > 0 {
		if err := c.rmwUnit(off/unit, 0, p, class); err != nil {
			return n, err
		}
		n += len(p)
	}
	return n, nil
}

// startReadSpan opens one OpReadSpan stream on cn: the server answers
// with ordered chunk frames the reader lands directly in dst.
func (c *Client) startReadSpan(cn *cconn, startUnit, units int, dst []byte, class Class) (*call, error) {
	if err := cn.err(); err != nil {
		return nil, err
	}
	c.readSpans.Add(1)
	cl := c.getCall()
	cl.dst = dst
	cl.units = units
	cl.unit = len(dst) / units
	id := cn.pend.put(cl)
	fr := c.framePool.Get().(*frame)
	h := wire.AppendRequestHeader(fr.hdr[:0], &wire.Request{ID: id, Op: wire.OpReadSpan, Class: uint8(class), Arg: uint64(startUnit)}, wire.SpanCountLen)
	h = wire.AppendSpanCount(h, units)
	fr.hn = len(h)
	fr.payload = nil
	if err := cn.enqueue(fr, id); err != nil {
		c.putCall(cl)
		return nil, err
	}
	return cl, nil
}

// startWriteSpan opens one OpWriteSpan stream on cn and enqueues its
// chunk frames, whose payloads alias p (no copy): the caller must keep
// p valid until the call completes.
func (c *Client) startWriteSpan(cn *cconn, startUnit int, p []byte, unit int, class Class) (*call, error) {
	if err := cn.err(); err != nil {
		return nil, err
	}
	units := len(p) / unit
	c.writeStreams.Add(1)
	cl := c.getCall()
	id := cn.pend.put(cl)
	fr := c.framePool.Get().(*frame)
	h := wire.AppendRequestHeader(fr.hdr[:0], &wire.Request{ID: id, Op: wire.OpWriteSpan, Class: uint8(class), Arg: uint64(startUnit)}, wire.SpanCountLen)
	h = wire.AppendSpanCount(h, units)
	fr.hn = len(h)
	fr.payload = nil
	if err := cn.enqueue(fr, id); err != nil {
		c.putCall(cl)
		return nil, err
	}
	cb := streamChunkBytes(unit)
	for off := 0; off < len(p); off += cb {
		n := min(cb, len(p)-off)
		cfr := c.framePool.Get().(*frame)
		ch := wire.AppendRequestHeader(cfr.hdr[:0], &wire.Request{ID: id, Op: wire.OpWriteChunk, Class: uint8(class), Arg: uint64(startUnit + off/unit)}, n)
		cfr.hn = len(ch)
		cfr.payload = p[off : off+n]
		if err := cn.enqueue(cfr, id); err != nil {
			// The connection died and we re-own the call; the partial
			// stream dies with the connection.
			c.putCall(cl)
			return nil, err
		}
	}
	return cl, nil
}

// rmwUnit writes bytes [within, within+len(chunk)) of one logical unit
// by reading the unit, patching the range, and writing it back.
func (c *Client) rmwUnit(logical int64, within int, chunk []byte, class Class) error {
	buf := make([]byte, c.UnitSize())
	if err := c.do(wire.OpRead, class, uint64(logical), nil, buf, nil); err != nil {
		return err
	}
	copy(buf[within:], chunk)
	return c.do(wire.OpWrite, class, uint64(logical), buf, nil, nil)
}
