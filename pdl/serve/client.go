package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/pdl/serve/wire"
)

// RemoteError is a failure reported by the server over the wire: the
// connection is fine, the server answered, and the answer was an error.
// It is not a transport failure, so retrying over a fresh connection
// cannot help.
type RemoteError struct {
	// Msg is the server's error text.
	Msg string
}

func (e *RemoteError) Error() string { return "serve: remote: " + e.Msg }

// ErrClientClosed reports a call on a Client whose Close was already
// called — a caller bug, not a connection failure. Transport failures
// (the server died, the network broke) surface as other errors, so a
// pooling caller like pdl/cluster can tell retryable shard loss (redial)
// from misuse (don't). It supports errors.Is.
var ErrClientClosed = errors.New("serve: client closed")

// call is one in-flight request's completion state.
type call struct {
	dst  []byte  // read destination (copied from the response payload)
	out  *[]byte // generic payload destination (stats), copied
	done chan error
}

// Client speaks the wire protocol over one connection. It is safe for
// concurrent use: goroutines' requests are pipelined over the shared
// connection and matched to responses by id, so N concurrent callers
// give the server N requests to coalesce into batches.
type Client struct {
	conn   net.Conn
	closed atomic.Bool

	// infoMu guards info, the server geometry: set by the handshake and
	// refreshed after Fail/Rebuild acks (or by RefreshInfo), so Failed
	// and Size track same-session state changes made through this client.
	infoMu sync.RWMutex
	info   wire.Info

	wmu sync.Mutex
	bw  *bufio.Writer
	enc []byte

	mu      sync.Mutex
	pending map[uint64]*call
	nextID  uint64
	sticky  error

	callPool sync.Pool
}

// Dial connects to a serve.Server and performs the geometry handshake.
func Dial(addr string) (*Client, error) {
	return DialContext(context.Background(), addr)
}

// DialContext is Dial bounded by ctx: a deadline or cancellation aborts
// the TCP connect (callers like pdl/cluster use it to put a dial timeout
// on every shard, so one unreachable endpoint cannot hang a fan-out).
func DialContext(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: dial: %w", err)
	}
	return NewClient(conn)
}

// NewClient wraps an established connection (from Dial, or any net.Conn
// speaking the protocol) and performs the geometry handshake.
func NewClient(conn net.Conn) (*Client, error) {
	c := &Client{
		conn:    conn,
		bw:      bufio.NewWriter(conn),
		pending: make(map[uint64]*call),
	}
	c.callPool.New = func() any { return &call{done: make(chan error, 1)} }
	go c.reader()
	if err := c.RefreshInfo(); err != nil {
		conn.Close()
		return nil, fmt.Errorf("serve: handshake: %w", err)
	}
	return c, nil
}

// RefreshInfo re-issues the geometry handshake, updating what UnitSize,
// Capacity, Disks, Size, and Failed report. Fail and Rebuild call it
// after their acks; call it directly to observe state changes made by
// other clients of the same server.
func (c *Client) RefreshInfo() error {
	var raw []byte
	if err := c.do(wire.OpInfo, Foreground, 0, nil, nil, &raw); err != nil {
		return err
	}
	var in wire.Info
	if err := wire.DecodeInfo(raw, &in); err != nil {
		return err
	}
	c.infoMu.Lock()
	c.info = in
	c.infoMu.Unlock()
	return nil
}

// geom snapshots the current geometry.
func (c *Client) geom() wire.Info {
	c.infoMu.RLock()
	in := c.info
	c.infoMu.RUnlock()
	return in
}

// UnitSize returns the server's stripe-unit payload size in bytes.
func (c *Client) UnitSize() int { return c.geom().UnitSize }

// Capacity returns the server's number of addressable logical units.
func (c *Client) Capacity() int { return c.geom().Capacity }

// Disks returns the server's disk count.
func (c *Client) Disks() int { return c.geom().Disks }

// Close closes the connection; in-flight and later calls fail with
// ErrClientClosed.
func (c *Client) Close() error {
	c.closed.Store(true)
	return c.conn.Close()
}

// Read fills dst (UnitSize bytes) with a logical unit's payload.
func (c *Client) Read(logical int, dst []byte) error {
	return c.ReadClass(logical, dst, Foreground)
}

// ReadClass is Read with an explicit priority class.
func (c *Client) ReadClass(logical int, dst []byte, class Class) error {
	if unit := c.UnitSize(); len(dst) != unit {
		return fmt.Errorf("serve: Read: dst is %d bytes, want unit size %d", len(dst), unit)
	}
	return c.do(wire.OpRead, class, uint64(logical), nil, dst, nil)
}

// Write stores src (UnitSize bytes) as a logical unit's payload.
func (c *Client) Write(logical int, src []byte) error {
	return c.WriteClass(logical, src, Foreground)
}

// WriteClass is Write with an explicit priority class.
func (c *Client) WriteClass(logical int, src []byte, class Class) error {
	if unit := c.UnitSize(); len(src) != unit {
		return fmt.Errorf("serve: Write: src is %d bytes, want unit size %d", len(src), unit)
	}
	return c.do(wire.OpWrite, class, uint64(logical), src, nil, nil)
}

// Fail marks a server disk failed; the array serves degraded after. On
// success the geometry is refreshed, so Failed reports the new state; a
// refresh error is returned even though the server-side Fail succeeded.
func (c *Client) Fail(disk int) error {
	if err := c.do(wire.OpFail, Foreground, uint64(disk), nil, nil, nil); err != nil {
		return err
	}
	return c.RefreshInfo()
}

// Rebuild reconstructs the failed disk onto a fresh replacement on the
// server, blocking until the array is healthy again. On success the
// geometry is refreshed, so Failed reports the rebuilt state; a refresh
// error is returned even though the server-side rebuild succeeded.
func (c *Client) Rebuild() error {
	if err := c.do(wire.OpRebuild, Foreground, 0, nil, nil, nil); err != nil {
		return err
	}
	return c.RefreshInfo()
}

// Stats fetches the server's store and frontend counters.
func (c *Client) Stats() (ServerStats, error) {
	var raw []byte
	var st ServerStats
	if err := c.do(wire.OpStats, Foreground, 0, nil, nil, &raw); err != nil {
		return st, err
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		return st, fmt.Errorf("serve: Stats: %w", err)
	}
	return st, nil
}

// do issues one request and blocks for its response.
func (c *Client) do(op uint8, class Class, arg uint64, payload, dst []byte, out *[]byte) error {
	cl, err := c.start(op, class, arg, payload, dst, out)
	if err != nil {
		return err
	}
	return c.wait(cl)
}

// start registers and sends one request without blocking for its
// response; the returned call must be handed to wait exactly once.
// Concurrent starts pipeline over the shared connection, which is how
// ReadAt/WriteAt spans reach the server's batch path: the in-flight unit
// ops land in the frontend queues together and coalesce into
// ReadVec/WriteVec passes.
func (c *Client) start(op uint8, class Class, arg uint64, payload, dst []byte, out *[]byte) (*call, error) {
	cl := c.callPool.Get().(*call)
	cl.dst = dst
	cl.out = out

	c.mu.Lock()
	if c.sticky != nil {
		err := c.sticky
		c.mu.Unlock()
		c.callPool.Put(cl)
		return nil, err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = cl
	c.mu.Unlock()

	c.wmu.Lock()
	c.enc = wire.AppendRequest(c.enc[:0], &wire.Request{ID: id, Op: op, Class: uint8(class), Arg: arg, Payload: payload})
	_, werr := c.bw.Write(c.enc)
	if werr == nil {
		werr = c.bw.Flush()
	}
	c.wmu.Unlock()
	if werr != nil {
		if c.closed.Load() {
			werr = ErrClientClosed
		}
		c.mu.Lock()
		if _, mine := c.pending[id]; mine {
			delete(c.pending, id)
			c.mu.Unlock()
			c.callPool.Put(cl)
			return nil, fmt.Errorf("serve: send: %w", werr)
		}
		// The reader already completed (or failed) this call; the caller
		// still waits so the done channel drains before pooling.
		c.mu.Unlock()
	}
	return cl, nil
}

// wait blocks for a started call's response and recycles the call.
func (c *Client) wait(cl *call) error {
	err := <-cl.done
	cl.dst, cl.out = nil, nil
	c.callPool.Put(cl)
	return err
}

// reader dispatches response frames to their waiting calls; on transport
// failure every pending and future call gets the error.
func (c *Client) reader() {
	br := bufio.NewReader(c.conn)
	var frame []byte
	for {
		body, err := wire.ReadFrame(br, frame)
		if err != nil {
			// A read error after Close is the expected teardown, not a
			// transport failure: type it so callers can tell the two apart.
			if c.closed.Load() {
				c.fail(ErrClientClosed)
			} else {
				c.fail(fmt.Errorf("serve: connection: %w", err))
			}
			return
		}
		frame = body
		var resp wire.Response
		if err := wire.DecodeResponse(body, &resp); err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		cl, ok := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if !ok {
			c.fail(fmt.Errorf("serve: response for unknown request %d", resp.ID))
			return
		}
		var cerr error
		switch {
		case resp.Status == wire.StatusErr:
			cerr = &RemoteError{Msg: string(resp.Payload)}
		case cl.dst != nil:
			if len(resp.Payload) != len(cl.dst) {
				cerr = fmt.Errorf("serve: response payload %d bytes, want %d", len(resp.Payload), len(cl.dst))
			} else {
				copy(cl.dst, resp.Payload)
			}
		case cl.out != nil:
			*cl.out = append([]byte(nil), resp.Payload...)
		}
		cl.done <- cerr
	}
}

// fail poisons the client: pending calls complete with err, later calls
// return it immediately.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.sticky == nil {
		c.sticky = err
	}
	calls := c.pending
	c.pending = make(map[uint64]*call)
	c.mu.Unlock()
	for _, cl := range calls {
		cl.done <- err
	}
}
